package metaleak

import (
	"bytes"
	"strings"
	"testing"
)

// These tests exercise the public facade end to end: everything a library
// user can reach without touching internal packages.

func TestFacadeCovertT(t *testing.T) {
	sys := NewSystem(ConfigSCT())
	trojan := NewAttacker(sys, 0, false)
	spy := NewAttacker(sys, 1, false)
	ch, err := NewCovertT(trojan, spy, 0)
	if err != nil {
		t.Fatal(err)
	}
	bits := []bool{true, false, true, true, false, false, true, false}
	got := ch.Send(bits)
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d flipped", i)
		}
	}
}

func TestFacadeJPEGAttack(t *testing.T) {
	sys := NewSystem(ConfigSCT())
	attacker := NewAttacker(sys, 0, false)
	frames, err := attacker.PlaceVictimPages(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := attacker.NewDualMonitor(frames[0], frames[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	jv := &JPEGVictim{Proc: NewProc(sys, 1), RPage: frames[0], NbitsPage: frames[1]}
	im, err := Synthetic("circle", 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	var rec []bool
	iv := &Interleave{
		Before: dm.Evict,
		After:  func() { rec = append(rec, !dm.Classify()) },
	}
	_, oracle, err := jv.Encode(im, iv)
	if err != nil {
		t.Fatal(err)
	}
	if acc := TraceAccuracy(rec, oracle.NonZero); acc < 0.95 {
		t.Fatalf("stealing accuracy %.3f", acc)
	}
	img := ImageFromTrace(rec, oracle.W, oracle.H, oracle.Quality)
	if sim := PixelSimilarity(img, OracleImage(oracle)); sim < 0.9 {
		t.Fatalf("similarity %.3f", sim)
	}
}

func TestFacadeRSAHelpers(t *testing.T) {
	e := IntFromHex("b5")
	bits := BitsOfExponent(e)
	if len(bits) != 8 || bits[0] != 1 {
		t.Fatalf("bits = %v", bits)
	}
	if BitAccuracy(bits, bits) != 1 || AlignedAccuracy(bits, bits) != 1 {
		t.Fatal("self accuracy not 1")
	}
	p := RandomPrime(5, 48)
	if p.BitLen() != 48 {
		t.Fatalf("prime bitlen %d", p.BitLen())
	}
	if NewInt(42).Uint64() != 42 {
		t.Fatal("NewInt broken")
	}
}

func TestFacadeVictimConstructors(t *testing.T) {
	sys := NewSystem(ConfigSCT())
	p := NewProc(sys, 0)
	if jv := NewJPEGVictim(p); jv.RPage == jv.NbitsPage {
		t.Fatal("jpeg victim pages collide")
	}
	if rv := NewRSAVictim(p); rv.SqrPage == rv.MulPage {
		t.Fatal("rsa victim pages collide")
	}
	if kv := NewKeyLoadVictim(p); kv.ShiftPage == kv.SubPage {
		t.Fatal("keyload victim pages collide")
	}
}

func TestFacadeSGXCounterMonitorImpractical(t *testing.T) {
	// §VIII-B: MetaLeak-C is impractical on SGX — 56-bit minors. The
	// monitor still constructs; saturating is what's impossible. Assert
	// the width.
	sys := NewSystem(ConfigSGX())
	a := NewAttacker(sys, 0, true)
	cm, err := a.NewCounterMonitor(PageID(64), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cm.MinorMax() != 1<<56-1 {
		t.Fatalf("SGX minor max = %d", cm.MinorMax())
	}
}

func TestFacadeSyntheticKinds(t *testing.T) {
	for _, kind := range []string{"gradient", "circle", "stripes", "checker", "text"} {
		im, err := Synthetic(kind, 16, 16)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if im.W != 16 || im.H != 16 {
			t.Fatalf("%s: wrong size", kind)
		}
	}
	if _, err := Synthetic("bogus", 8, 8); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (Cycles, Cycles) {
		sys := NewSystem(ConfigSCT())
		p := sys.AllocPage(0)
		cold := sys.TimedRead(0, p.Block(0))
		sys.Flush(0, p.Block(0))
		return cold, sys.TimedRead(0, p.Block(0))
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic latencies: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestFacadeTraceRecorder(t *testing.T) {
	sys := NewSystem(ConfigSCT())
	rec := NewTraceRecorder(16)
	detach := rec.Attach(sys.System)
	p := sys.AllocPage(0)
	sys.Read(0, p.Block(0))
	detach()
	if rec.Total() != 1 {
		t.Fatalf("recorded %d events", rec.Total())
	}
	if !strings.Contains(rec.Summary(), "path 4") {
		t.Fatalf("summary: %s", rec.Summary())
	}
}

func TestFacadeProbeLevels(t *testing.T) {
	// A smaller region/tree keeps the full-level survey fast; the
	// full-size sweep is Fig. 12's job.
	dp := ConfigSCT()
	dp.SecurePages = 1 << 16
	dp.TreeArities = []int{32, 16, 16}
	sys := NewSystem(dp)
	vp := sys.AllocPage(1)
	a := NewAttacker(sys, 0, false)
	reports := a.ProbeLevels(vp, 4)
	if len(reports) != 3 {
		t.Fatalf("reports: %+v", reports)
	}
	for _, rep := range reports {
		if rep.Err != nil || rep.Gap <= 0 {
			t.Fatalf("level %d: %+v", rep.Level, rep)
		}
	}
}

func TestFacadeImageIO(t *testing.T) {
	im, _ := Synthetic("circle", 24, 24)
	var pgm, jfif bytes.Buffer
	if err := WritePGM(&pgm, im); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&pgm)
	if err != nil || back.W != 24 {
		t.Fatalf("pgm: %v", err)
	}
	if err := WriteJPEG(&jfif, im, 80); err != nil {
		t.Fatal(err)
	}
	dec, err := ReadJPEG(&jfif)
	if err != nil || dec.W != 24 || dec.H != 24 {
		t.Fatalf("jfif: %v", err)
	}
}

func TestFacadeColorJPEG(t *testing.T) {
	im, err := SyntheticRGB("circle", 24, 16)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteColorJPEG(&buf, im, 80); err != nil {
		t.Fatal(err)
	}
	dec, err := ReadColorJPEG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != 24 || dec.H != 16 {
		t.Fatalf("decoded %dx%d", dec.W, dec.H)
	}
}
