// Package metaleak is a production-quality reproduction of "MetaLeak:
// Uncovering Side Channels in Secure Processor Architectures Exploiting
// Metadata" (Chowdhuryy, Zheng, Yao — ISCA 2024).
//
// It provides, as a library:
//
//   - a deterministic cycle-level simulator of secure processor
//     architectures: counter-mode encryption (GC/MoC/SC schemes),
//     MAC authentication, and integrity trees (hash tree, split-counter
//     tree, SGX integrity tree) behind a faithful memory controller with
//     metadata caching, DRAM banking, and lazy tree updates;
//   - the MetaLeak attack framework: the mEvict+mReload and
//     mPreset+mOverflow primitives, the MetaLeak-T and MetaLeak-C covert
//     channels, and the end-to-end case-study attacks;
//   - the victim substrates: a baseline JPEG codec with libjpeg's leaky
//     entropy loop, and a from-scratch multi-precision integer library
//     with libgcrypt-style square-and-multiply and mbedTLS-style binary
//     extended-GCD key loading;
//   - experiment drivers regenerating every table and figure of the
//     paper's evaluation (see internal/experiments and cmd/metaleak).
//
// Quickstart:
//
//	sys := metaleak.NewSystem(metaleak.ConfigSCT())
//	page := sys.AllocPage(0)
//	_, res := sys.Read(0, page.Block(0)) // cold: Fig. 5 path 4
//	fmt.Println(res.Latency, res.Report.Path)
//
// All timing is simulated cycles: results are exactly reproducible and
// independent of the host machine (Go's GC and scheduler make wall-clock
// timing side channels impractical, so the simulator is the substrate —
// see DESIGN.md for the substitution rationale).
package metaleak

import (
	"metaleak/internal/arch"
	"metaleak/internal/core"
	"metaleak/internal/jpeg"
	"metaleak/internal/machine"
	"metaleak/internal/mpi"
	"metaleak/internal/victim"
)

// Re-exported machine configuration and construction.
type (
	// DesignPoint describes one complete secure-processor configuration.
	DesignPoint = machine.DesignPoint
	// System is an assembled simulated machine.
	System = machine.System
	// CounterKind selects the encryption counter scheme (§IV-A).
	CounterKind = machine.CounterKind
	// TreeKind selects the integrity tree design (§IV-C).
	TreeKind = machine.TreeKind
)

// Counter schemes and integrity trees (§IV).
const (
	CounterGC  = machine.CounterGC
	CounterMoC = machine.CounterMoC
	CounterSC  = machine.CounterSC
	TreeHT     = machine.TreeHT
	TreeSCT    = machine.TreeSCT
	TreeSIT    = machine.TreeSIT
)

// NewSystem builds the simulated secure processor for a design point.
func NewSystem(dp DesignPoint) *System { return machine.NewSystem(dp) }

// ConfigSCT returns the paper's primary simulated design (Table I top).
func ConfigSCT() DesignPoint { return machine.ConfigSCT() }

// ConfigHT returns the hash-tree design (Table I).
func ConfigHT() DesignPoint { return machine.ConfigHT() }

// ConfigSGX returns the SGX hardware calibration (Table I bottom).
func ConfigSGX() DesignPoint { return machine.ConfigSGX() }

// Re-exported simulator vocabulary.
type (
	// Addr is a simulated physical address.
	Addr = arch.Addr
	// BlockID identifies a 64-byte block.
	BlockID = arch.BlockID
	// PageID identifies a 4-KiB page.
	PageID = arch.PageID
	// Cycles counts simulated processor cycles.
	Cycles = arch.Cycles
)

// Re-exported attack framework (§VI).
type (
	// Attacker is one attacking process and its toolkit.
	Attacker = core.Attacker
	// Monitor is the mEvict+mReload primitive bound to one shared node.
	Monitor = core.Monitor
	// MonitorSpec parameterizes monitor construction.
	MonitorSpec = core.MonitorSpec
	// CounterMonitor is the mPreset+mOverflow primitive.
	CounterMonitor = core.CounterMonitor
	// DualMonitor classifies victim steps between two watched pages.
	DualMonitor = core.DualMonitor
	// CovertT is the MetaLeak-T covert channel.
	CovertT = core.CovertT
	// CovertC is the MetaLeak-C covert channel.
	CovertC = core.CovertC
	// EvictionSet is a set of attacker blocks displacing one metadata set.
	EvictionSet = core.EvictionSet
)

// NewAttacker binds an attacker to a core of the system.
func NewAttacker(sys *System, coreID int, privileged bool) *Attacker {
	return core.NewAttacker(sys.System, sys.Ctrl, coreID, privileged)
}

// NewCovertT builds a MetaLeak-T covert channel between two attackers.
func NewCovertT(trojan, spy *Attacker, level int) (*CovertT, error) {
	return core.NewCovertT(trojan, spy, level)
}

// NewCovertC builds a MetaLeak-C covert channel between two attackers.
func NewCovertC(trojan, spy *Attacker, anchor PageID, childLevel int) (*CovertC, error) {
	return core.NewCovertC(trojan, spy, anchor, childLevel)
}

// Re-exported victim layer (§VIII).
type (
	// Proc is a victim process on the machine.
	Proc = victim.Proc
	// Interleave is the attacker's per-step synchronization handle.
	Interleave = victim.Interleave
	// JPEGVictim is the libjpeg-style image compression victim.
	JPEGVictim = victim.JPEGVictim
	// RSAVictim is the libgcrypt-style square-and-multiply victim.
	RSAVictim = victim.RSAVictim
	// KeyLoadVictim is the mbedTLS-style private-key-loading victim.
	KeyLoadVictim = victim.KeyLoadVictim
	// CoefTrace is a JPEG victim's ground-truth coefficient trace.
	CoefTrace = victim.CoefTrace
	// Op labels one leaky victim operation.
	Op = victim.Op
)

// NewProc binds a victim process to a core.
func NewProc(sys *System, coreID int) *Proc { return victim.NewProc(sys.System, coreID) }

// NewJPEGVictim builds a JPEG victim with freshly allocated variable pages.
func NewJPEGVictim(p *Proc) *JPEGVictim { return victim.NewJPEGVictim(p) }

// NewRSAVictim builds an RSA victim with freshly allocated function pages.
func NewRSAVictim(p *Proc) *RSAVictim { return victim.NewRSAVictim(p) }

// NewKeyLoadVictim builds a key-loading victim with fresh function pages.
func NewKeyLoadVictim(p *Proc) *KeyLoadVictim { return victim.NewKeyLoadVictim(p) }

// Re-exported substrates useful to library users.
type (
	// Image is an 8-bit grayscale image.
	Image = jpeg.Image
	// Int is an arbitrary-precision integer (the mpi substrate).
	Int = mpi.Int
)

// Synthetic generates a deterministic test image (see jpeg.Synthetic).
func Synthetic(kind string, w, h int) (*Image, error) {
	return jpeg.Synthetic(jpeg.SyntheticKind(kind), w, h)
}

// Victim operation labels (§VIII-B).
const (
	OpSquare   = victim.OpSquare
	OpMultiply = victim.OpMultiply
	OpShift    = victim.OpShift
	OpSub      = victim.OpSub
)

// VolumeMonitor is the mEvict+mReload variant for randomized metadata
// caches (volume-based eviction, §IX-B / Fig. 18).
type VolumeMonitor = core.VolumeMonitor

// LevelReport is the attacker's per-level reconnaissance result (see
// Attacker.ProbeLevels).
type LevelReport = core.LevelReport
