// Defenses demo (§IX): the same attack, against three machines —
// undefended, with per-domain integrity trees, and with a
// MIRAGE-randomized metadata cache. Shows what each defence stops, what
// it costs, and what survives.
package main

import (
	"fmt"

	"metaleak"
)

func main() {
	fmt.Println("== 1. undefended SCT: MetaLeak-T works ==")
	{
		sys := metaleak.NewSystem(metaleak.ConfigSCT())
		victimPage := sys.AllocPage(1)
		attacker := metaleak.NewAttacker(sys, 0, false)
		m, err := attacker.NewMonitor(victimPage, 0)
		if err != nil {
			fmt.Println("unexpected:", err)
			return
		}
		m.Calibrate(8)
		correct := 0
		for i := 0; i < 20; i++ {
			m.Evict()
			if i%2 == 0 {
				sys.Flush(1, victimPage.Block(0))
				sys.Touch(1, victimPage.Block(0))
			}
			got, _ := m.Reload()
			if got == (i%2 == 0) {
				correct++
			}
		}
		fmt.Printf("monitor on the victim's tree leaf: %d/20 rounds correct\n\n", correct)
	}

	fmt.Println("== 2. per-domain trees (§IX-C): construction fails ==")
	{
		dp := metaleak.ConfigSCT()
		dp.SecurePages = 1 << 20
		dp.IsolatedDomains = 4
		sys := metaleak.NewSystem(dp)
		victimPage := sys.AllocPage(1)
		attacker := metaleak.NewAttacker(sys, 0, true) // even privileged
		_, err := attacker.NewMonitor(victimPage, 0)
		fmt.Printf("monitor construction: %v\n", err)
		// The defended machine still computes and still detects tampering.
		p := sys.AllocPage(2)
		sys.WriteThrough(2, p.Block(0), [64]byte{42})
		got, _ := sys.Read(2, p.Block(0))
		fmt.Printf("honest execution intact: read back %d\n\n", got[0])
	}

	fmt.Println("== 3. MIRAGE metadata cache (§IX-B): slowed, not stopped ==")
	{
		dp := metaleak.ConfigSCT()
		dp.SecurePages = 1 << 16
		dp.MetaKB = 16
		dp.RandomizedMeta = true
		dp.FastCrypto = true
		sys := metaleak.NewSystem(dp)
		victimPage := sys.AllocPage(1)
		attacker := metaleak.NewAttacker(sys, 0, false)
		if _, err := attacker.NewMonitor(victimPage, 0); err != nil {
			fmt.Printf("conflict-based mEvict: %v\n", err)
		}
		vm, err := attacker.NewVolumeMonitor(victimPage, 0, 800)
		if err != nil {
			fmt.Println("unexpected:", err)
			return
		}
		vm.Calibrate(8)
		correct := 0
		start := sys.Now()
		for i := 0; i < 20; i++ {
			vm.Evict()
			if i%2 == 0 {
				sys.Flush(1, victimPage.Block(0))
				sys.Touch(1, victimPage.Block(0))
			}
			got, _ := vm.Reload()
			if got == (i%2 == 0) {
				correct++
			}
		}
		fmt.Printf("volume-based mEvict (800 accesses/round): %d/20 rounds correct at %d cycles/round\n",
			correct, (sys.Now()-start)/20)
	}
}
