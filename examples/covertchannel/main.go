// Covert channel demo: a trojan and a spy on different cores, sharing no
// memory, exchange a message through security metadata alone — first via
// shared integrity tree node caching state (MetaLeak-T, mEvict+mReload),
// then via tree counter modulation (MetaLeak-C, mPreset+mOverflow).
package main

import (
	"fmt"
	"log"

	"metaleak"
)

const message = "META"

func main() {
	runT()
	runC()
}

func runT() {
	fmt.Println("== MetaLeak-T: bits through tree-node caching state ==")
	sys := metaleak.NewSystem(metaleak.ConfigSCT())
	trojan := metaleak.NewAttacker(sys, 0, false)
	spy := metaleak.NewAttacker(sys, 1, false)
	ch, err := metaleak.NewCovertT(trojan, spy, 0)
	if err != nil {
		log.Fatal(err)
	}

	start := sys.Now()
	decoded := ch.SendString(message)
	fmt.Printf("sent %q, spy decoded %q (accuracy %.1f%%, %.0f cycles/bit)\n\n",
		message, decoded, 100*ch.Accuracy(), ch.CyclesPerBit(sys.Now()-start))
}

func runC() {
	fmt.Println("== MetaLeak-C: 7-bit symbols through counter overflow ==")
	dp := metaleak.ConfigSCT()
	dp.FastCrypto = true // many saturating writes per symbol
	sys := metaleak.NewSystem(dp)
	trojan := metaleak.NewAttacker(sys, 0, false)
	spy := metaleak.NewAttacker(sys, 1, false)
	ch, err := metaleak.NewCovertC(trojan, spy, metaleak.PageID(1<<13), 0)
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := ch.SendBytes([]byte(message))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sent %q, spy decoded %q (accuracy %.1f%%)\n",
		message, string(decoded), 100*ch.Accuracy())
	fmt.Printf("probe writes per symbol (m): %v\n", ch.Trace)
}
