// RSA leak demo (the §VIII-B1 case study on the SGX calibration): a
// victim enclave runs libgcrypt-style square-and-multiply modular
// exponentiation; a privileged attacker single-steps it (SGX-Step) and
// watches the square and multiply function pages through their shared
// L1 integrity tree nodes, recovering the private exponent bit by bit.
package main

import (
	"fmt"
	"log"

	"metaleak"
)

func main() {
	sys := metaleak.NewSystem(metaleak.ConfigSGX())

	// Privileged attacker: controls EPC page placement and steps the
	// victim. In SGX the L0 tree node covers exactly one page, so sharing
	// starts at L1 (groups of 8 consecutive EPC pages).
	attacker := metaleak.NewAttacker(sys, 0, true)
	frames, err := attacker.PlaceVictimPages(1, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	dm, err := attacker.NewDualMonitor(frames[0], frames[1], 1)
	if err != nil {
		log.Fatal(err)
	}

	proc := metaleak.NewProc(sys, 1)
	rv := &metaleak.RSAVictim{Proc: proc, SqrPage: frames[0], MulPage: frames[1]}

	secret := metaleak.IntFromHex("c3a5f10e9b7d2468ace13579bdf02468")
	modulus := metaleak.IntFromHex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")

	var ops []metaleak.Op
	iv := &metaleak.Interleave{
		Before: dm.Evict, // mEvict on each single-stepped iteration
		After: func() {
			if dm.Classify() {
				ops = append(ops, metaleak.OpSquare)
			} else {
				ops = append(ops, metaleak.OpMultiply)
			}
		},
	}
	_, oracleOps := rv.ModExp(metaleak.NewInt(0x10001), secret, modulus, iv)

	bits := metaleak.ExponentFromOps(ops)
	want := metaleak.BitsOfExponent(secret)
	fmt.Printf("victim performed %d square/multiply operations\n", len(oracleOps))
	fmt.Printf("operation trace accuracy: %.1f%%\n", 100*metaleak.OpAccuracy(ops, oracleOps))
	fmt.Printf("recovered exponent bits:  %.1f%% of %d bits\n",
		100*metaleak.AlignedAccuracy(bits, want), len(want))

	recovered := bitsToHex(bits)
	fmt.Printf("secret exponent: %s\n", secret)
	fmt.Printf("recovered:       %s\n", recovered)
}

func bitsToHex(bits []uint) string {
	v := metaleak.NewInt(0)
	for _, b := range bits {
		v = v.Shl(1)
		if b == 1 {
			v = v.Add(metaleak.NewInt(1))
		}
	}
	return v.String()
}
