// Quickstart: build a simulated secure processor (split-counter tree
// design), watch the four metadata access paths of Fig. 5 appear in read
// latencies, and see the integrity machinery genuinely detect tampering.
package main

import (
	"fmt"

	"metaleak"
)

func main() {
	sys := metaleak.NewSystem(metaleak.ConfigSCT())
	page := sys.AllocPage(0)
	b := page.Block(0)

	fmt.Println("-- the four access paths (Fig. 5) --")
	_, res := sys.Read(0, b)
	fmt.Printf("cold read:            %4d cycles (path %d, %d tree levels loaded)\n",
		res.Latency, res.Report.Path, res.Report.TreeLevelsLoaded)
	_, res = sys.Read(0, b)
	fmt.Printf("hot read:             %4d cycles (path %d)\n", res.Latency, res.Report.Path)
	sys.Flush(0, b)
	_, res = sys.Read(0, b)
	fmt.Printf("counter cached:       %4d cycles (path %d)\n", res.Latency, res.Report.Path)
	neighbour := sys.AllocPage(0)
	_, res = sys.Read(0, neighbour.Block(0))
	fmt.Printf("tree leaf cached:     %4d cycles (path %d)\n", res.Latency, res.Report.Path)

	fmt.Println("\n-- encryption is real --")
	var secret [64]byte
	copy(secret[:], "attack at dawn")
	sys.Write(0, b, secret)
	sys.Flush(0, b) // ciphertext now in (simulated) DRAM
	got, _ := sys.Read(0, b)
	fmt.Printf("round trip: %q\n", string(got[:14]))

	fmt.Println("\n-- tampering is really detected --")
	for _, tamper := range []struct {
		name string
		do   func()
	}{
		{"bit flip (spoofing)", func() { sys.Ctrl.TamperFlipBit(b, 100) }},
		{"stale data (replay)", func() {
			snap := sys.Ctrl.Snapshot(b)
			sys.Write(0, b, [64]byte{9})
			sys.Flush(0, b)
			sys.Ctrl.TamperReplay(snap)
		}},
	} {
		before := sys.TamperDetections()
		tamper.do()
		sys.Flush(0, b)
		sys.Read(0, b)
		fmt.Printf("%-22s detected=%v\n", tamper.name+":", sys.TamperDetections() > before)
		// Restore a clean block for the next round.
		sys.Write(0, b, secret)
		sys.Flush(0, b)
		sys.Read(0, b)
	}

	st := sys.Ctrl.Stats()
	fmt.Printf("\ncontroller: %d reads, %d writes, %d counter misses, %d tree node loads\n",
		st.Reads, st.Writes, st.CounterMisses, st.TreeNodeLoads)
}
