// Image leak demo (the §VIII-A1 case study): a victim compresses an image
// with the libjpeg-style encoder inside the protected region; an attacker
// on another core — with no access to the image or the victim's memory —
// reconstructs it by watching two shared integrity tree nodes with
// mEvict+mReload.
package main

import (
	"fmt"
	"log"
	"os"

	"metaleak"
)

// loadImage returns the victim's secret image: a PGM file given as the
// first argument (e.g. from cmd/mktrace), or the built-in "ML" pattern.
func loadImage() (*metaleak.Image, error) {
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return metaleak.ReadPGM(f)
	}
	return metaleak.Synthetic("text", 48, 48)
}

func main() {
	sys := metaleak.NewSystem(metaleak.ConfigSCT())

	// Attacker: place the victim's two variable pages (page massaging),
	// then build the dual monitor over their leaf tree nodes.
	attacker := metaleak.NewAttacker(sys, 0, false)
	frames, err := attacker.PlaceVictimPages(1, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	dm, err := attacker.NewDualMonitor(frames[0], frames[1], 0)
	if err != nil {
		log.Fatal(err)
	}

	// Victim: compile-time pinned r and nbits pages, real JPEG encoding.
	proc := metaleak.NewProc(sys, 1)
	jv := &metaleak.JPEGVictim{Proc: proc, RPage: frames[0], NbitsPage: frames[1]}

	im, err := loadImage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("victim's secret image:")
	fmt.Println(im.ASCII(48))

	var recovered []bool
	iv := &metaleak.Interleave{
		Before: dm.Evict,
		After:  func() { recovered = append(recovered, !dm.Classify()) },
	}
	_, oracle, err := jv.Encode(im, iv)
	if err != nil {
		log.Fatal(err)
	}

	rec := metaleak.ImageFromTrace(recovered, oracle.W, oracle.H, oracle.Quality)
	fmt.Println("attacker's reconstruction (from metadata timing alone):")
	fmt.Println(rec.ASCII(48))
	fmt.Printf("stealing accuracy vs oracle: %.1f%% over %d coefficients\n",
		100*metaleak.TraceAccuracy(recovered, oracle.NonZero), len(oracle.NonZero))
}
