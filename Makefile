# Verification gate. `make check` is the command CI runs: the tree must
# build, pass vet, satisfy the determinism contract (cmd/metalint), and
# pass the race-enabled test suite.

GO ?= go

.PHONY: check build vet metalint test dispatch-race fuzz-smoke bench

check: vet metalint test dispatch-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

metalint:
	$(GO) run ./cmd/metalint ./...

test:
	$(GO) test -race ./...

# The distributed-dispatch property tests, re-run uncached so the
# byte-identity and revocation invariants are exercised on every check
# even when the surrounding packages are unchanged.
dispatch-race:
	$(GO) test -race -count=1 -run Dispatch ./internal/dispatch ./internal/experiments ./cmd/metaleak

# Ten seconds of coverage-guided fuzzing per parser-shaped surface:
# cheap enough for CI, long enough to catch a decoder regression.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzTraceRoundTrip -fuzztime=10s ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzProtocolRoundTrip -fuzztime=10s ./internal/dispatch

# Sequential vs GOMAXPROCS-parallel wall-clock over the full experiment
# registry: the speedup the spec/trial/merge harness buys on this
# machine (the outputs are byte-identical either way).
bench:
	$(GO) test -run='^$$' -bench='^BenchmarkRunAll' -benchtime=1x .
