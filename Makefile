# Verification gate. `make check` is the command CI runs: the tree must
# build, pass vet, satisfy the determinism contract (cmd/metalint), and
# pass the race-enabled test suite.

GO ?= go

.PHONY: check build vet metalint test fuzz-smoke bench

check: vet metalint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

metalint:
	$(GO) run ./cmd/metalint ./...

test:
	$(GO) test -race ./...

# Ten seconds of coverage-guided fuzzing on the trace codec: cheap
# enough for CI, long enough to catch a decoder regression.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzTraceRoundTrip -fuzztime=10s ./internal/trace

# Sequential vs GOMAXPROCS-parallel wall-clock over the full experiment
# registry: the speedup the spec/trial/merge harness buys on this
# machine (the outputs are byte-identical either way).
bench:
	$(GO) test -run='^$$' -bench='^BenchmarkRunAll' -benchtime=1x .
