# Verification gate. `make check` is the command CI runs: the tree must
# build, pass vet, satisfy the determinism contract (cmd/metalint), and
# pass the race-enabled test suite.

GO ?= go

.PHONY: check build vet metalint lint-inventory secretflow-test test dispatch-race fuzz-smoke hunt-smoke bench bench-json bench-gate

check: vet metalint lint-inventory secretflow-test test dispatch-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

metalint:
	$(GO) run ./cmd/metalint -strict-directives ./...

# The leakage contract: regenerating the secret-taint inventory from
# the tree must reproduce the committed leakage-inventory.json byte for
# byte. A leak site appearing (new secret-dependent code) or vanishing
# (a gadget silently fixed or a directive gone stale) both fail here.
lint-inventory:
	$(GO) run ./cmd/metalint -inventory /tmp/metalint-inventory.json ./...
	diff leakage-inventory.json /tmp/metalint-inventory.json

# The secretflow golden tests, re-run uncached: the fixture diagnostics,
# the inventory golden, and the stale-directive scan are exercised on
# every check even when internal/analysis is unchanged.
secretflow-test:
	$(GO) test -count=1 -run 'Secretflow|Directive|Relativize|Golden' ./internal/analysis

test:
	$(GO) test -race ./...

# The distributed-dispatch and sweep-service property tests, re-run
# uncached so the byte-identity, revocation, supervision, and cache
# invariants are exercised on every check even when the surrounding
# packages are unchanged.
dispatch-race:
	$(GO) test -race -count=1 -run 'Dispatch|Serve|Supervis|DialRetry|ResultCache|CellFingerprint|Hunt|JobSession' \
		./internal/dispatch ./internal/experiments ./internal/serve ./cmd/metaleak

# Ten seconds of coverage-guided fuzzing per parser-shaped surface:
# cheap enough for CI, long enough to catch a decoder regression.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzTraceRoundTrip -fuzztime=10s ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzTraceDiff -fuzztime=10s ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzProtocolRoundTrip -fuzztime=10s ./internal/dispatch

# The differential-fuzzer smoke: a fixed 2-config x 4-program x 2-pair
# grid must reproduce the committed verdict CSV byte for byte, at any
# -par width and through the distributed dispatch path. Regenerate the
# golden (after auditing the diff) by copying /tmp/hunt-smoke.csv over
# internal/hunt/testdata/smoke.csv.
HUNT_SMOKE = hunt -configs sct,ht -programs 4 -pairs 2 -seed 42

hunt-smoke:
	$(GO) run ./cmd/metaleak $(HUNT_SMOKE) 2>/dev/null > /tmp/hunt-smoke.csv
	diff internal/hunt/testdata/smoke.csv /tmp/hunt-smoke.csv
	$(GO) run ./cmd/metaleak $(HUNT_SMOKE) -par 1 2>/dev/null | diff /tmp/hunt-smoke.csv -
	$(GO) run ./cmd/metaleak $(HUNT_SMOKE) -workers 2 2>/dev/null | diff /tmp/hunt-smoke.csv -

# Sequential vs GOMAXPROCS-parallel wall-clock over the full experiment
# registry: the speedup the spec/trial/merge harness buys on this
# machine (the outputs are byte-identical either way).
bench:
	$(GO) test -run='^$$' -bench='^BenchmarkRunAll' -benchtime=1x .

# Substrate microbenchmarks + fixed-grid sweep throughput as a
# machine-readable record (DESIGN.md §11). bench-json refreshes the
# current PR's committed record; bench-gate re-measures and fails if any
# microbenchmark's ns/op regressed >10% against the newest committed
# BENCH_*.json. Host-time measurements: outside the determinism contract.
BENCH_LATEST = $(lastword $(sort $(wildcard BENCH_*.json)))

bench-json:
	$(GO) run ./cmd/metaleak bench -baseline -out BENCH_8.json

bench-gate:
	@test -n "$(BENCH_LATEST)" || { echo "bench-gate: no committed BENCH_*.json to compare against"; exit 1; }
	$(GO) run ./cmd/metaleak bench -gate $(BENCH_LATEST)
