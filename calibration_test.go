package metaleak

import (
	"testing"

	"metaleak/internal/arch"
)

// TestAccessPathCalibration sanity-checks that the four Fig. 5 access
// paths produce the ordered, well-separated latency bands of Fig. 6.
func TestAccessPathCalibration(t *testing.T) {
	sys := NewSystem(ConfigSCT())
	p := sys.AllocPage(0)
	b := p.Block(0)

	// Path 4 (cold): everything misses.
	lat4 := sys.TimedRead(0, b)
	// Path 1: immediate re-read hits L1.
	lat1 := sys.TimedRead(0, b)
	// Path 2: flush data only; counter and tree remain cached.
	sys.Flush(0, b)
	lat2 := sys.TimedRead(0, b)
	t.Logf("path1=%d path2=%d path4(cold)=%d", lat1, lat2, lat4)

	if !(lat1 < lat2 && lat2 < lat4) {
		t.Fatalf("latency bands not ordered: %d %d %d", lat1, lat2, lat4)
	}
	if sys.TamperDetections() != 0 {
		t.Fatalf("unexpected tamper detections: %d", sys.TamperDetections())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	sys := NewSystem(ConfigSCT())
	p := sys.AllocPage(0)
	b := p.Block(3)
	var data [64]byte
	for i := range data {
		data[i] = byte(i * 7)
	}
	sys.Write(0, b, data)
	sys.Flush(0, b) // forces encryption + writeback
	got, _ := sys.Read(0, b)
	if got != data {
		t.Fatalf("round trip mismatch: got %v", got[:8])
	}
	if sys.TamperDetections() != 0 {
		t.Fatalf("tamper detections on honest run: %d", sys.TamperDetections())
	}
	_ = arch.BlockSize
}
