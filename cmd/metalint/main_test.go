package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metaleak/internal/analysis"
)

func TestListExitsClean(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d, want 0", code)
	}
}

// captureStderr runs fn with os.Stderr redirected into a buffer.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	fn()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var code int
	msg := captureStderr(t, func() {
		code = run([]string{"-only", "no-such-analyzer"})
	})
	if code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if !strings.Contains(msg, `unknown analyzer "no-such-analyzer"`) {
		t.Errorf("error does not name the bad analyzer:\n%s", msg)
	}
	// The error must list every registered analyzer so the fix is
	// right there in the message.
	for _, a := range analysis.All {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error does not mention registered analyzer %q:\n%s", a.Name, msg)
		}
	}
}

func TestFindModule(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/mod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	root, module, err := findModule(sub)
	if err != nil {
		t.Fatal(err)
	}
	if module != "example.com/mod" {
		t.Errorf("module = %q, want example.com/mod", module)
	}
	// Resolve symlinks before comparing: t.TempDir may sit behind one.
	wantRoot, _ := filepath.EvalSymlinks(dir)
	gotRoot, _ := filepath.EvalSymlinks(root)
	if gotRoot != wantRoot {
		t.Errorf("root = %q, want %q", gotRoot, wantRoot)
	}
}

func TestFindModuleMissing(t *testing.T) {
	// A temp dir outside any module must fail cleanly. t.TempDir lives
	// under /tmp, which has no go.mod above it on any sane system.
	if _, _, err := findModule(t.TempDir()); err == nil {
		t.Skip("a go.mod exists above the temp dir; environment-specific")
	}
}

func TestGateOnOwnTree(t *testing.T) {
	// The repo must stay metalint-clean — including no stale
	// directives: this is the same invariant `make check` enforces,
	// kept inside `go test` so plain test runs catch a regression too.
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if code := run([]string{"-C", "../..", "-strict-directives"}); code != 0 {
		t.Fatalf("metalint -strict-directives on its own tree exited %d, want 0", code)
	}
}

func TestInventoryMatchesCommitted(t *testing.T) {
	// The committed leakage-inventory.json is the leakage contract:
	// regenerating it from the tree must be a no-op. A new leak site
	// (or a vanished one) shows up here as a diff before CI sees it.
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	tmp := filepath.Join(t.TempDir(), "inventory.json")
	if code := run([]string{"-C", "../..", "-inventory", tmp}); code != 0 {
		t.Fatalf("metalint -inventory exited %d, want 0", code)
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "leakage-inventory.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("regenerated inventory differs from committed leakage-inventory.json; re-run `go run ./cmd/metalint -inventory leakage-inventory.json ./...`")
	}
}
