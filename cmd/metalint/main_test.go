package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestListExitsClean(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("-list exited %d, want 0", code)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	if code := run([]string{"-only", "no-such-analyzer"}); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
}

func TestFindModule(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/mod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	root, module, err := findModule(sub)
	if err != nil {
		t.Fatal(err)
	}
	if module != "example.com/mod" {
		t.Errorf("module = %q, want example.com/mod", module)
	}
	// Resolve symlinks before comparing: t.TempDir may sit behind one.
	wantRoot, _ := filepath.EvalSymlinks(dir)
	gotRoot, _ := filepath.EvalSymlinks(root)
	if gotRoot != wantRoot {
		t.Errorf("root = %q, want %q", gotRoot, wantRoot)
	}
}

func TestFindModuleMissing(t *testing.T) {
	// A temp dir outside any module must fail cleanly. t.TempDir lives
	// under /tmp, which has no go.mod above it on any sane system.
	if _, _, err := findModule(t.TempDir()); err == nil {
		t.Skip("a go.mod exists above the temp dir; environment-specific")
	}
}

func TestGateOnOwnTree(t *testing.T) {
	// The repo must stay metalint-clean: this is the same invariant
	// `make check` enforces, kept inside `go test` so plain test runs
	// catch a regression too.
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if code := run([]string{"-C", "../.."}); code != 0 {
		t.Fatalf("metalint on its own tree exited %d, want 0", code)
	}
}
