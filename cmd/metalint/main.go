// Command metalint enforces the simulator's determinism contract: all
// timing is simulated cycles, all randomness is seeded, all iteration
// that feeds results is ordered. It loads every package of the module
// with full type information (standard library only — no external
// analysis frameworks) and runs the analyzers of internal/analysis.
//
// Usage:
//
//	metalint [-json] [-only a,b] [pattern ...]   # default pattern ./...
//	metalint -list                               # describe the analyzers
//
// Exit codes (the verification-gate contract — metalint never rewrites
// source, so a non-zero exit always means human attention):
//
//	0  no findings
//	1  findings reported
//	2  the tree failed to load or type-check
//
// Findings are suppressed case by case with a directive comment on the
// flagged line or the line directly above it:
//
//	//metalint:allow <analyzer>[,<analyzer>...] [reason]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"metaleak/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("metalint", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", "", "run as if launched from this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "metalint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	start := *dir
	if start == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(os.Stderr, "metalint:", err)
			return 2
		}
		start = wd
	}
	root, module, err := findModule(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metalint:", err)
		return 2
	}

	loader := analysis.NewLoader(analysis.Config{Dir: root, Module: module})
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metalint:", err)
		return 2
	}
	if errs := analysis.FirstTypeErrors(pkgs, 10); len(errs) > 0 {
		fmt.Fprintln(os.Stderr, "metalint: tree does not type-check; findings would be unreliable:")
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "  "+e)
		}
		return 2
	}

	res := analysis.Run(pkgs, analyzers)
	res.Relativize(root)
	if *asJSON {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "metalint:", err)
			return 2
		}
	} else {
		if err := res.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "metalint:", err)
			return 2
		}
		if n := len(res.Diagnostics); n > 0 {
			fmt.Fprintf(os.Stderr, "metalint: %d finding(s)", n)
			if res.Suppressed > 0 {
				fmt.Fprintf(os.Stderr, " (%d suppressed by //metalint:allow)", res.Suppressed)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, readErr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if readErr == nil {
			m := moduleRE.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("%s/go.mod has no module directive", dir)
			}
			return dir, string(m[1]), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
