// Command metalint enforces the simulator's determinism contract: all
// timing is simulated cycles, all randomness is seeded, all iteration
// that feeds results is ordered. It loads every package of the module
// with full type information (standard library only — no external
// analysis frameworks) and runs the analyzers of internal/analysis.
//
// Usage:
//
//	metalint [-json] [-only a,b] [pattern ...]   # default pattern ./...
//	metalint -inventory leaks.json               # write the leakage inventory
//	metalint -strict-directives                  # stale directives fail the run
//	metalint -list                               # describe the analyzers
//
// Exit codes (the verification-gate contract — metalint never rewrites
// source, so a non-zero exit always means human attention):
//
//	0  no findings
//	1  findings reported (or stale directives under -strict-directives)
//	2  the tree failed to load or type-check
//
// Findings are suppressed case by case with a directive comment on the
// flagged line or the line directly above it:
//
//	//metalint:allow <analyzer>[,<analyzer>...] [reason]
//
// The secretflow analyzer adds two more directive kinds with the same
// placement rule: //metalint:secret <name>[,...] marks declarations as
// taint sources, and //metalint:leaky <channel> [reason] declares a
// secret-dependent site as part of the leakage contract. The leaky
// sites are emitted by -inventory as sorted JSON and diffed in CI
// against the committed leakage-inventory.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"metaleak/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("metalint", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", "", "run as if launched from this directory")
	inventory := fs.String("inventory", "", "write the leakage inventory (declared //metalint:leaky sites) to this file, or - for stdout")
	strictDirectives := fs.Bool("strict-directives", false, "treat stale or malformed //metalint: directives as findings (exit 1)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				var known []string
				for _, reg := range analysis.All {
					known = append(known, reg.Name)
				}
				fmt.Fprintf(os.Stderr, "metalint: unknown analyzer %q; registered analyzers: %s\n",
					name, strings.Join(known, ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	start := *dir
	if start == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(os.Stderr, "metalint:", err)
			return 2
		}
		start = wd
	}
	root, module, err := findModule(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metalint:", err)
		return 2
	}

	loader := analysis.NewLoader(analysis.Config{Dir: root, Module: module})
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metalint:", err)
		return 2
	}
	if errs := analysis.FirstTypeErrors(pkgs, 10); len(errs) > 0 {
		fmt.Fprintln(os.Stderr, "metalint: tree does not type-check; findings would be unreliable:")
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "  "+e)
		}
		return 2
	}

	res := analysis.Run(pkgs, analyzers)
	res.Relativize(root)

	if *inventory != "" {
		out := os.Stdout
		if *inventory != "-" {
			f, err := os.Create(*inventory)
			if err != nil {
				fmt.Fprintln(os.Stderr, "metalint:", err)
				return 2
			}
			defer f.Close()
			out = f
		}
		if err := res.WriteInventory(out); err != nil {
			fmt.Fprintln(os.Stderr, "metalint:", err)
			return 2
		}
	}

	// Stale-directive warnings always print; -strict-directives turns
	// them into failures so exceptions cannot outlive the code they
	// excused.
	for _, d := range res.Stale {
		fmt.Fprintln(os.Stderr, "metalint: "+d.String())
	}

	if *asJSON {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "metalint:", err)
			return 2
		}
	} else {
		if err := res.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "metalint:", err)
			return 2
		}
		if n := len(res.Diagnostics); n > 0 {
			fmt.Fprintf(os.Stderr, "metalint: %d finding(s)", n)
			if res.Suppressed > 0 {
				fmt.Fprintf(os.Stderr, " (%d suppressed by //metalint:allow)", res.Suppressed)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	if *strictDirectives && len(res.Stale) > 0 {
		fmt.Fprintf(os.Stderr, "metalint: %d stale directive(s) with -strict-directives\n", len(res.Stale))
		return 1
	}
	return 0
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, readErr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if readErr == nil {
			m := moduleRE.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("%s/go.mod has no module directive", dir)
			}
			return dir, string(m[1]), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
