package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected to a pipe and returns the output.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan struct{})
	var out []byte
	go func() {
		defer close(done)
		out, _ = io.ReadAll(r)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	<-done
	return string(out), runErr
}

func TestListCommand(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig6", "fig18", "defiso", "ablnoise"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunTable1(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"run", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SCT") || !strings.Contains(out, "SGX") {
		t.Fatalf("table1 output:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"run", "-json", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ID": "table1"`) {
		t.Fatalf("json output:\n%s", out)
	}
}

// TestInterleavedFlags pins the CLI contract the CI smoke test relies
// on: flags may follow positional arguments (`run fig6 -par 4 -json`).
func TestInterleavedFlags(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{"run", "table1", "-json", "-par", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ID": "table1"`) {
		t.Fatalf("interleaved-flag output:\n%s", out)
	}
}

// TestParallelMatchesSequential asserts the -par flag never changes the
// bytes the CLI emits — only how fast they are produced.
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := capture(t, func() error {
		return run(context.Background(), []string{"run", "-json", "-par", "1", "ablminor"})
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := capture(t, func() error {
		return run(context.Background(), []string{"run", "ablminor", "-json", "-par", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("-par 4 output differs from -par 1:\n--- par 1 ---\n%s--- par 4 ---\n%s", seq, par)
	}
}

func TestErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"run", "nosuch"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run(ctx, []string{"run"}); err == nil {
		t.Fatal("missing ids accepted")
	}
	if err := run(ctx, []string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run(ctx, []string{"trace", "nosuch"}); err == nil {
		t.Fatal("unknown trace victim accepted")
	}
	if err := run(ctx, []string{"trace"}); err == nil {
		t.Fatal("missing trace victim accepted")
	}
	if err := run(ctx, []string{"trace", "replay"}); err == nil {
		t.Fatal("missing replay file accepted")
	}
	if err := run(ctx, []string{"sweep", "-configs", ""}); err == nil {
		t.Fatal("empty sweep axis accepted")
	}
	if err := run(ctx, []string{"sweep", "-minor", "x"}); err == nil {
		t.Fatal("malformed sweep axis accepted")
	}
}

func TestTraceCommand(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"trace", "rsa"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "events recorded") {
		t.Fatalf("trace output:\n%s", out)
	}
}

// TestTraceBinaryRoundTrip dumps a binary trace with -bin and replays
// it; the replayed per-path summary must match the live one.
func TestTraceBinaryRoundTrip(t *testing.T) {
	file := filepath.Join(t.TempDir(), "rsa.mlt1")
	live, err := capture(t, func() error {
		return run(context.Background(), []string{"trace", "rsa", "-bin", file})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(live, "wrote ") {
		t.Fatalf("no binary dump confirmation:\n%s", live)
	}
	replayed, err := capture(t, func() error {
		return run(context.Background(), []string{"trace", "replay", file, "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The live summary (minus the dump confirmation line) must reappear.
	summary := live[:strings.Index(live, "wrote ")]
	if !strings.HasPrefix(replayed, summary) {
		t.Fatalf("replay summary diverges:\n--- live ---\n%s--- replay ---\n%s", summary, replayed)
	}
	if !strings.Contains(replayed, "seq,cycle,core,block") {
		t.Fatalf("replay -csv missing CSV header:\n%s", replayed)
	}
}

// TestSweepCommand runs a tiny grid and checks the CSV shape and that a
// broken cell reports in its row instead of aborting the sweep.
func TestSweepCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{
			"sweep", "-configs", "sct,bogus", "-seeds", "1", "-bits", "20", "-par", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 cells, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "config,minor_bits") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(lines[2], "unknown config") {
		t.Fatalf("broken cell did not report in-row:\n%s", out)
	}
	jsonOut, err := capture(t, func() error {
		return run(context.Background(), []string{
			"sweep", "-configs", "sct", "-seeds", "2", "-bits", "20", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut, `"Rows"`) || !strings.Contains(jsonOut, `"Points"`) {
		t.Fatalf("sweep -json missing rows/points:\n%s", jsonOut)
	}
}
