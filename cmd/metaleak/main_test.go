package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected to a pipe and returns the output.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestListCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig6", "fig18", "defiso", "ablnoise"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunTable1(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"run", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SCT") || !strings.Contains(out, "SGX") {
		t.Fatalf("table1 output:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"run", "-json", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ID": "table1"`) {
		t.Fatalf("json output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{"run", "nosuch"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"run"}); err == nil {
		t.Fatal("missing ids accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run([]string{"trace", "nosuch"}); err == nil {
		t.Fatal("unknown trace victim accepted")
	}
	if err := run([]string{"trace"}); err == nil {
		t.Fatal("missing trace victim accepted")
	}
}

func TestTraceCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"trace", "rsa"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "events recorded") {
		t.Fatalf("trace output:\n%s", out)
	}
}
