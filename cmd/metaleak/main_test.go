package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected to a pipe and returns the output.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan struct{})
	var out []byte
	go func() {
		defer close(done)
		out, _ = io.ReadAll(r)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	<-done
	return string(out), runErr
}

func TestListCommand(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig6", "fig18", "defiso", "ablnoise"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunTable1(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"run", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SCT") || !strings.Contains(out, "SGX") {
		t.Fatalf("table1 output:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"run", "-json", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ID": "table1"`) {
		t.Fatalf("json output:\n%s", out)
	}
}

// TestInterleavedFlags pins the CLI contract the CI smoke test relies
// on: flags may follow positional arguments (`run fig6 -par 4 -json`).
func TestInterleavedFlags(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{"run", "table1", "-json", "-par", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ID": "table1"`) {
		t.Fatalf("interleaved-flag output:\n%s", out)
	}
}

// TestParallelMatchesSequential asserts the -par flag never changes the
// bytes the CLI emits — only how fast they are produced.
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := capture(t, func() error {
		return run(context.Background(), []string{"run", "-json", "-par", "1", "ablminor"})
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := capture(t, func() error {
		return run(context.Background(), []string{"run", "ablminor", "-json", "-par", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("-par 4 output differs from -par 1:\n--- par 1 ---\n%s--- par 4 ---\n%s", seq, par)
	}
}

func TestErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"run", "nosuch"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run(ctx, []string{"run"}); err == nil {
		t.Fatal("missing ids accepted")
	}
	if err := run(ctx, []string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run(ctx, []string{"trace", "nosuch"}); err == nil {
		t.Fatal("unknown trace victim accepted")
	}
	if err := run(ctx, []string{"trace"}); err == nil {
		t.Fatal("missing trace victim accepted")
	}
	if err := run(ctx, []string{"trace", "replay"}); err == nil {
		t.Fatal("missing replay file accepted")
	}
	if err := run(ctx, []string{"sweep", "-configs", ""}); err == nil {
		t.Fatal("empty sweep axis accepted")
	}
	if err := run(ctx, []string{"sweep", "-minor", "x"}); err == nil {
		t.Fatal("malformed sweep axis accepted")
	}
}

func TestTraceCommand(t *testing.T) {
	out, err := capture(t, func() error { return run(context.Background(), []string{"trace", "rsa"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "events recorded") {
		t.Fatalf("trace output:\n%s", out)
	}
}

// TestTraceBinaryRoundTrip dumps a binary trace with -bin and replays
// it; the replayed per-path summary must match the live one.
func TestTraceBinaryRoundTrip(t *testing.T) {
	file := filepath.Join(t.TempDir(), "rsa.mlt1")
	live, err := capture(t, func() error {
		return run(context.Background(), []string{"trace", "rsa", "-bin", file})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(live, "wrote ") {
		t.Fatalf("no binary dump confirmation:\n%s", live)
	}
	replayed, err := capture(t, func() error {
		return run(context.Background(), []string{"trace", "replay", file, "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The live summary (minus the dump confirmation line) must reappear.
	summary := live[:strings.Index(live, "wrote ")]
	if !strings.HasPrefix(replayed, summary) {
		t.Fatalf("replay summary diverges:\n--- live ---\n%s--- replay ---\n%s", summary, replayed)
	}
	if !strings.Contains(replayed, "seq,cycle,core,block") {
		t.Fatalf("replay -csv missing CSV header:\n%s", replayed)
	}
}

// TestSweepSetMatchesAxisFlag pins the acceptance contract: an
// axis-backed field override is remapped onto the axis, so
// `-set MinorBits=6` emits byte-identical output to `-minor 6`.
func TestSweepSetMatchesAxisFlag(t *testing.T) {
	base := []string{"sweep", "-configs", "sct", "-seeds", "1", "-bits", "20"}
	viaAxis, err := capture(t, func() error {
		return run(context.Background(), append(append([]string{}, base...), "-minor", "6"))
	})
	if err != nil {
		t.Fatal(err)
	}
	viaSet, err := capture(t, func() error {
		return run(context.Background(), append(append([]string{}, base...), "-set", "MinorBits=6"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if viaAxis != viaSet {
		t.Fatalf("-set MinorBits=6 differs from -minor 6:\n--- minor ---\n%s--- set ---\n%s", viaAxis, viaSet)
	}
	if !strings.Contains(viaSet, "sct,6,") {
		t.Fatalf("override not reflected in the rows:\n%s", viaSet)
	}
}

// TestSweepSetErrors covers the -set failure modes: conflicts with an
// explicit axis flag, the reserved Seed field, unknown fields, and
// malformed overrides.
func TestSweepSetErrors(t *testing.T) {
	ctx := context.Background()
	for _, args := range [][]string{
		{"sweep", "-minor", "6", "-set", "MinorBits=7"},
		{"sweep", "-meta", "64", "-set", "MetaKB=128"},
		{"sweep", "-noise", "100", "-set", "NoiseInterval=200"},
		{"sweep", "-set", "Seed=4"},
		{"sweep", "-set", "NoSuchField=1", "-seeds", "1", "-bits", "20"},
		{"sweep", "-set", "broken"},
		{"sweep", "-json", "-long"},
	} {
		if err := run(ctx, args); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestSweepRejectsSilentAxisValues: -minor 0 used to run the 7-bit
// default machine labeled as width 0; it must be rejected.
func TestSweepRejectsSilentAxisValues(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"sweep", "-minor", "0"}); err == nil {
		t.Fatal("sweep -minor 0 accepted")
	}
	if err := run(ctx, []string{"sweep", "-meta", "0"}); err == nil {
		t.Fatal("sweep -meta 0 accepted")
	}
}

// TestSweepSGXMinorNA: the sgx design point ignores the minor width, so
// a sgx × minor grid collapses to one row per point, labeled na.
func TestSweepSGXMinorNA(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{
			"sweep", "-configs", "sgx", "-minor", "6,7", "-seeds", "1", "-bits", "20"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 collapsed row, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "sgx,na,") {
		t.Fatalf("sgx row not marked na:\n%s", out)
	}
}

// TestSweepLongFormat checks -long: one (cell, metric, value) row per
// measurement.
func TestSweepLongFormat(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{
			"sweep", "-configs", "sct", "-seeds", "1", "-bits", "20", "-long"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "config,minor_bits,meta_kb,noise,rep,seed,metric,value" {
		t.Fatalf("long header:\n%s", out)
	}
	if len(lines) != 4 {
		t.Fatalf("want header + 3 metric rows, got %d lines:\n%s", len(lines), out)
	}
	for i, metric := range []string{"covert_accuracy", "cycles_per_bit", "monitor_accuracy"} {
		if !strings.Contains(lines[i+1], ","+metric+",") {
			t.Fatalf("line %d missing metric %s:\n%s", i+1, metric, out)
		}
	}
}

// TestSweepCheckpointResume drives the CLI's durability path: a
// checkpointed run, a resume from a truncated checkpoint (the exact
// file state a kill mid-grid leaves behind, thanks to the atomic
// per-cell rewrites), and a fingerprint mismatch.
func TestSweepCheckpointResume(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "cp.jsonl")
	args := []string{"sweep", "-configs", "sct", "-minor", "6,7", "-seeds", "2", "-bits", "20"}
	withCp := append(append([]string{}, args...), "-checkpoint", cp)

	full, err := capture(t, func() error { return run(context.Background(), args) })
	if err != nil {
		t.Fatal(err)
	}
	checkpointed, err := capture(t, func() error { return run(context.Background(), withCp) })
	if err != nil {
		t.Fatal(err)
	}
	if checkpointed != full {
		t.Fatalf("checkpointed output differs from plain run:\n--- plain ---\n%s--- checkpointed ---\n%s", full, checkpointed)
	}

	// Truncate the checkpoint to header + 2 completed cells — the state
	// after an interruption — and resume at two worker counts.
	data, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("checkpoint too short to truncate:\n%s", data)
	}
	for _, par := range []string{"1", "4"} {
		if err := os.WriteFile(cp, []byte(strings.Join(lines[:3], "")), 0o644); err != nil {
			t.Fatal(err)
		}
		resumed, err := capture(t, func() error {
			return run(context.Background(), append(append([]string{}, withCp...), "-par", par))
		})
		if err != nil {
			t.Fatal(err)
		}
		if resumed != full {
			t.Fatalf("-par %s resume differs from uninterrupted run:\n--- full ---\n%s--- resumed ---\n%s", par, full, resumed)
		}
	}

	// A different seed is a different sweep: the checkpoint must refuse.
	err = run(context.Background(), append(append([]string{}, withCp...), "-seed", "99"))
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched checkpoint accepted: %v", err)
	}
}

// TestReplayBinReEmits: `trace replay FILE -bin OUT` re-emits the
// normalized trace instead of silently ignoring -bin.
func TestReplayBinReEmits(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.mlt1")
	reemit := filepath.Join(dir, "reemit.mlt1")
	if _, err := capture(t, func() error {
		return run(context.Background(), []string{"trace", "rsa", "-bin", orig})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run(context.Background(), []string{"trace", "replay", orig, "-bin", reemit})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote ") {
		t.Fatalf("no re-emit confirmation:\n%s", out)
	}
	a, err := os.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(reemit)
	if err != nil {
		t.Fatal(err)
	}
	// The original was already normalized (oldest-first), so the
	// re-emitted encoding round-trips byte-identically.
	if string(a) != string(b) {
		t.Fatalf("re-emitted trace differs: %d vs %d bytes", len(a), len(b))
	}
}

// TestSweepCommand runs a tiny grid and checks the CSV shape and that a
// broken cell reports in its row instead of aborting the sweep.
func TestSweepCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{
			"sweep", "-configs", "sct,bogus", "-seeds", "1", "-bits", "20", "-par", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 cells, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "config,minor_bits") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(lines[2], "unknown config") {
		t.Fatalf("broken cell did not report in-row:\n%s", out)
	}
	jsonOut, err := capture(t, func() error {
		return run(context.Background(), []string{
			"sweep", "-configs", "sct", "-seeds", "2", "-bits", "20", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut, `"Rows"`) || !strings.Contains(jsonOut, `"Points"`) {
		t.Fatalf("sweep -json missing rows/points:\n%s", jsonOut)
	}
}
