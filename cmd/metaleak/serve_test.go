package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeCommandEndToEnd drives the full production stack of the
// sweep service: `metaleak serve` with real subprocess workers (the
// TestMain intercept re-executes this binary as `metaleak worker`),
// token auth on both the HTTP and dispatch surfaces, a submitted sweep
// whose CSV is byte-identical to `metaleak sweep -par 2`, a
// resubmission served entirely from cache, and a graceful drain.
func TestServeCommandEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a serve process tree")
	}
	// Reserve a port for the HTTP listener (close-then-reuse; the tiny
	// race is acceptable in tests).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	const token = "cli-test-token"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", addr, "-workers", "2",
			"-state", t.TempDir(), "-token", token})
	}()

	base := "http://" + addr
	client := &http.Client{}
	call := func(method, path, body string) (int, []byte) {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, data
	}

	// Wait for the service to come up.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never became healthy: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Wrong token → 401.
	if resp, err := client.Get(base + "/v1/status"); err != nil || resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated status: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	spec := `{"Configs":["sct"],"MinorBits":[7],"MetaKB":[64],"Noise":[0],` +
		`"Seeds":2,"Seed":31,"Bits":8,"Set":["SecurePages=16384","FastCrypto=true"]}`
	code, body := call("POST", "/v1/sweeps", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, body)
	}
	var sub struct{ ID string }
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	code, served := call("GET", "/v1/sweeps/"+sub.ID+"/csv?wait=1", "")
	if code != http.StatusOK {
		t.Fatalf("csv: %d: %s", code, served)
	}
	want, err := capture(t, func() error {
		return run(context.Background(), []string{"sweep", "-configs", "sct", "-minor", "7",
			"-meta", "64", "-noise", "0", "-seeds", "2", "-seed", "31", "-bits", "8",
			"-set", "SecurePages=16384", "-set", "FastCrypto=true", "-par", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, []byte(want)) {
		t.Fatalf("served CSV differs from `sweep -par 2`:\n--- serve ---\n%s--- cli ---\n%s", served, want)
	}

	// Identical spec again: a fresh run, fully cache-served.
	code, body = call("POST", "/v1/sweeps", spec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: %d: %s", code, body)
	}
	var again struct{ ID string }
	json.Unmarshal(body, &again)
	if again.ID == sub.ID {
		t.Fatalf("finished run reused; want a fresh cache-served run")
	}
	if code, rerun := call("GET", "/v1/sweeps/"+again.ID+"/csv?wait=1", ""); code != http.StatusOK || !bytes.Equal(rerun, served) {
		t.Fatalf("cache-served rerun: %d:\n%s", code, rerun)
	}
	code, body = call("GET", "/v1/sweeps/"+again.ID, "")
	var st struct{ Cached, Computed int }
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || st.Computed != 0 || st.Cached != 2 {
		t.Fatalf("resubmission status: %d %s", code, body)
	}

	// Graceful drain: cancel the command's context (the CLI's SIGTERM
	// path) and expect a clean exit.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not drain after cancel")
	}
}
