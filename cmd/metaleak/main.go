// Command metaleak regenerates the paper's tables and figures on the
// simulated secure processors.
//
// Usage:
//
//	metaleak list
//	metaleak run <id>... | all   [-full] [-seed N] [-json]
//	metaleak report              [-full] [-seed N]
//	metaleak trace jpeg|rsa      [-csv]
//
// Experiment IDs follow the paper: table1, fig6, fig7, fig8, fig11,
// fig12, fig14, fig15, fig15c, fig16, fig17, fig18; the design-space
// ablations ablctr, abltree, ablmeta, ablminor, ablnoise, ablsec; and the
// §IX defence evaluations defiso, defrand, defladder.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"metaleak/internal/experiments"
	"metaleak/internal/jpeg"
	"metaleak/internal/machine"
	"metaleak/internal/mpi"
	"metaleak/internal/trace"
	"metaleak/internal/victim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metaleak:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	case "run":
		fs := flag.NewFlagSet("run", flag.ContinueOnError)
		full := fs.Bool("full", false, "paper-scale sample counts (slow)")
		seed := fs.Uint64("seed", 0, "experiment seed")
		asJSON := fs.Bool("json", false, "emit results as JSON")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		ids := fs.Args()
		if len(ids) == 0 {
			usage()
			return fmt.Errorf("run: no experiment ids")
		}
		if len(ids) == 1 && ids[0] == "all" {
			ids = experiments.IDs()
		}
		opts := experiments.Default()
		if *full {
			opts = experiments.Full()
		}
		opts.Seed = *seed
		for _, id := range ids {
			fn, ok := experiments.Registry[id]
			if !ok {
				return fmt.Errorf("unknown experiment %q (try 'metaleak list')", id)
			}
			// Wall-clock time here is operator progress output only — it
			// never feeds results, which are all in simulated cycles. This
			// is the one sanctioned use, suppressed for cmd/metalint by the
			// directive below; the syntax is
			//
			//	//metalint:allow <analyzer>[,<analyzer>...] [reason]
			//
			// on the flagged line or the line directly above it.
			//metalint:allow wallclock operator-facing experiment runtime
			start := time.Now()
			res, err := fn(opts)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			if *asJSON {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if err := enc.Encode(res); err != nil {
					return err
				}
			} else {
				fmt.Print(res)
				//metalint:allow wallclock operator-facing experiment runtime
				fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
			}
		}
		return nil
	case "report":
		fs := flag.NewFlagSet("report", flag.ContinueOnError)
		full := fs.Bool("full", false, "paper-scale sample counts (slow)")
		seed := fs.Uint64("seed", 0, "experiment seed")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		opts := experiments.Default()
		if *full {
			opts = experiments.Full()
		}
		opts.Seed = *seed
		md, err := experiments.Report(opts)
		if err != nil {
			return err
		}
		fmt.Print(md)
		return nil
	case "trace":
		fs := flag.NewFlagSet("trace", flag.ContinueOnError)
		csv := fs.Bool("csv", false, "dump the retained events as CSV")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("trace: need a victim (jpeg or rsa)")
		}
		return runTrace(fs.Arg(0), *csv)
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// runTrace executes one victim on the SCT machine with an access recorder
// attached and prints the per-path summary (optionally the raw CSV).
func runTrace(kind string, csv bool) error {
	dp := machine.ConfigSCT()
	dp.SecurePages = 1 << 16
	sys := machine.NewSystem(dp)
	rec := trace.New(4096)
	rec.Attach(sys.System)
	proc := victim.NewProc(sys.System, 0)
	switch kind {
	case "jpeg":
		jv := victim.NewJPEGVictim(proc)
		im, err := jpeg.Synthetic(jpeg.PatternCircle, 32, 32)
		if err != nil {
			return err
		}
		if _, _, err := jv.Encode(im, nil); err != nil {
			return err
		}
	case "rsa":
		rv := victim.NewRSAVictim(proc)
		rv.ModExp(mpi.New(3), mpi.FromHex("deadbeefcafef00d"), mpi.FromHex("ffffffffffffffc5"), nil)
	default:
		return fmt.Errorf("trace: unknown victim %q (jpeg or rsa)", kind)
	}
	fmt.Print(rec.Summary())
	if csv {
		return rec.WriteCSV(os.Stdout)
	}
	return nil
}

func usage() {
	fmt.Println("usage: metaleak list | run <id>...|all [-full] [-seed N] [-json] | report [-full] | trace jpeg|rsa [-csv]")
}
