// Command metaleak regenerates the paper's tables and figures on the
// simulated secure processors.
//
// Usage:
//
//	metaleak list
//	metaleak run <id>... | all   [-full] [-seed N] [-json] [-par N]
//	metaleak report              [-full] [-seed N] [-par N]
//	metaleak sweep               [-configs sct,ht] [-minor 6,7] [-meta 64,256]
//	                             [-noise 0,8000] [-seeds N] [-seed N] [-bits N]
//	                             [-set Field=value]... [-checkpoint FILE]
//	                             [-json|-long] [-par N]
//	                             [-workers N] [-listen ADDR] [-lease-timeout D] [-token T]
//	metaleak hunt                [-configs sct,ht] [-programs N] [-pairs N] [-ops N]
//	                             [-secret-len N] [-seed N] [-set Field=value]...
//	                             [-checkpoint FILE] [-inventory FILE] [-json] [-par N]
//	                             [-workers N] [-listen ADDR] [-lease-timeout D] [-token T]
//	metaleak worker -connect ADDR [-id NAME] [-hb D] [-token T] [-dial-retries N]
//	metaleak serve               [-addr ADDR] [-workers N] [-token T] [-state DIR]
//	                             [-worker-listen ADDR] [-lease-timeout D] [-retries N]
//	                             [-revive N] [-trial-timeout D]
//	metaleak trace jpeg|rsa      [-csv] [-bin FILE]
//	metaleak trace replay FILE   [-csv] [-bin OUT]
//	metaleak chaos               [-seed N] [-v]
//	metaleak bench               [-json] [-out FILE] [-gate FILE [-tol PCT]]
//
// Flags may be interleaved with positional arguments (`run fig6 -par 4`
// works). -par bounds how many trials run concurrently; results are
// byte-identical for every value, including 1 (the historic sequential
// behaviour). sweep's -checkpoint appends each completed cell to FILE
// and a rerun with the same axes resumes from it (a trailing line torn
// by a crash is salvaged and its cell re-run); -set overrides any
// DesignPoint field per cell; -long emits one (cell, metric, value) CSV
// row per measurement. run and sweep take -faults SPEC (a seeded fault
// plan, DESIGN.md §8: machine: entries corrupt metadata and must be
// detected, harness: entries fail trials and tear checkpoints),
// -retries N (failed cells retry, then quarantine), and
// -trial-timeout D (per-attempt deadline); chaos self-tests the fault
// engine end to end. sweep's -workers N shards the grid over N local
// worker processes (work-stealing leases over a private unix socket);
// -listen ADDR additionally accepts `metaleak worker -connect ADDR`
// processes from other machines. Distribution is pure scheduling:
// output stays byte-identical to -par runs, including when a worker is
// killed mid-run (its leased cells revoke after -lease-timeout or on
// disconnect and re-deal against the -retries budget). serve is the
// persistent sweep service: HTTP clients submit sweep specs, stream
// rows as they settle, and fetch CSV/JSON byte-identical to the CLI's;
// a supervised local worker fleet respawns dead workers with backoff,
// revoked leases are absorbed by a -revive budget, and a
// content-addressed cell cache plus per-sweep checkpoints make
// resubmitted or overlapping grids reuse every cell already computed.
// hunt is the differential leakage fuzzer (DESIGN.md §13): every cell
// runs one seeded random victim program twice under two secrets on the
// same machine seed and diffs the observation-projected metadata
// traces; any divergence is a side channel, classified to a named
// channel and judged against the design point's leakage contract, with
// -inventory FILE cross-checking discovered channels against the
// secretflow static leak-site inventory.
// Experiment IDs follow the paper: table1, fig6, fig7, fig8,
// fig11, fig12, fig14, fig15, fig15c, fig16, fig17, fig18; the
// design-space ablations ablctr, abltree, ablmeta, ablminor, ablnoise,
// ablsec; and the §IX defence evaluations defiso, defrand, defladder.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"metaleak/internal/arch"
	"metaleak/internal/experiments"
	"metaleak/internal/faults"
	"metaleak/internal/jpeg"
	"metaleak/internal/machine"
	"metaleak/internal/mpi"
	"metaleak/internal/runner"
	"metaleak/internal/trace"
	"metaleak/internal/victim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metaleak:", err)
		os.Exit(1)
	}
}

// parseInterleaved parses fs against args, collecting positional
// arguments that may be interleaved with flags. Go's flag package stops
// at the first positional; re-parsing the remainder makes both
// `run -par 4 fig6` and `run fig6 -par 4` work.
func parseInterleaved(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		args = fs.Args()
		if len(args) == 0 {
			return pos, nil
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	case "run":
		return runCmd(ctx, args[1:])
	case "report":
		return reportCmd(ctx, args[1:])
	case "sweep":
		return sweepCmd(ctx, args[1:])
	case "hunt":
		return huntCmd(ctx, args[1:])
	case "worker":
		return workerCmd(ctx, args[1:])
	case "serve":
		return serveCmd(ctx, args[1:])
	case "trace":
		return traceCmd(args[1:])
	case "chaos":
		return chaosCmd(ctx, args[1:])
	case "bench":
		return benchCmd(args[1:])
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func runCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	full := fs.Bool("full", false, "paper-scale sample counts (slow)")
	seed := fs.Uint64("seed", 0, "experiment seed")
	asJSON := fs.Bool("json", false, "emit results as JSON")
	par := fs.Int("par", 0, "max trials in flight (0 = GOMAXPROCS; output is identical for every value)")
	faultSpec := fs.String("faults", "", "harness fault plan (harness:KIND@TRIAL[xN] entries; see DESIGN.md §8)")
	retries := fs.Int("retries", 0, "extra attempts for a failed trial")
	trialTimeout := fs.Duration("trial-timeout", 0, "per-attempt trial deadline (0 = none)")
	ids, err := parseInterleaved(fs, args)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		usage()
		return fmt.Errorf("run: no experiment ids")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	var harness *faults.Harness
	if *faultSpec != "" {
		plan, err := faults.Parse(*faultSpec)
		if err != nil {
			return fmt.Errorf("run: %w", err)
		}
		if plan.HasMachine() {
			return fmt.Errorf("run: machine-level fault entries attach to design points; use `sweep -faults` (or -set FaultSpec=...), which routes them into every cell's machine")
		}
		harness = plan.NewHarness()
	}
	pol := runner.Policy{Workers: *par, Timeout: *trialTimeout, Retries: *retries}
	if *retries > 0 {
		pol.Backoff = runner.ExpBackoff(50 * time.Millisecond)
	}
	opts := experiments.Default()
	if *full {
		opts = experiments.Full()
	}
	opts.Seed = *seed
	for _, id := range ids {
		if _, ok := experiments.Registry[id]; !ok {
			return fmt.Errorf("unknown experiment %q (try 'metaleak list')", id)
		}
		// Wall-clock time here is operator progress output only — it
		// never feeds results, which are all in simulated cycles. This
		// is the one sanctioned use, suppressed for cmd/metalint by the
		// directive below; the syntax is
		//
		//	//metalint:allow <analyzer>[,<analyzer>...] [reason]
		//
		// on the flagged line or the line directly above it.
		//metalint:allow wallclock operator-facing experiment runtime
		start := time.Now()
		res, err := experiments.RunPolicy(ctx, id, opts, pol, harness)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return err
			}
		} else {
			fmt.Print(res)
			//metalint:allow wallclock operator-facing experiment runtime
			fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
	return nil
}

func reportCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	full := fs.Bool("full", false, "paper-scale sample counts (slow)")
	seed := fs.Uint64("seed", 0, "experiment seed")
	par := fs.Int("par", 0, "max trials in flight (0 = GOMAXPROCS)")
	if _, err := parseInterleaved(fs, args); err != nil {
		return err
	}
	opts := experiments.Default()
	if *full {
		opts = experiments.Full()
	}
	opts.Seed = *seed
	md, err := experiments.ReportContext(ctx, opts, *par)
	if err != nil {
		return err
	}
	fmt.Print(md)
	return nil
}

// multiFlag collects a repeatable string flag (-set A=1 -set B=2).
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// listFlag parses a comma-separated list of unsigned integers.
func listFlag(s string) ([]uint64, error) {
	var out []uint64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func sweepCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	configs := fs.String("configs", "sct", "comma-separated design points (sct,ht,sgx)")
	minor := fs.String("minor", "7", "comma-separated minor counter widths")
	meta := fs.String("meta", "256", "comma-separated metadata cache sizes (KiB)")
	noise := fs.String("noise", "0", "comma-separated noise burst intervals (cycles, 0 = off)")
	seeds := fs.Int("seeds", 3, "replications per grid point")
	seed := fs.Uint64("seed", 0, "base seed")
	bits := fs.Int("bits", 120, "covert transmission length per cell")
	asJSON := fs.Bool("json", false, "emit rows and aggregates as JSON (default CSV)")
	long := fs.Bool("long", false, "emit long-format CSV: one (cell, metric, value) row per measurement")
	par := fs.Int("par", 0, "max cells in flight (0 = GOMAXPROCS)")
	checkpoint := fs.String("checkpoint", "", "persist completed cells to FILE and resume from it on rerun")
	workers := fs.Int("workers", 0, "distributed: spawn N local `metaleak worker` processes and deal cells to them over a private socket")
	listen := fs.String("listen", "", "distributed: accept remote `metaleak worker -connect` processes on ADDR (host:port, unix:PATH, or /path)")
	leaseTimeout := fs.Duration("lease-timeout", 10*time.Second, "distributed: silence window after which a worker's leased cells revoke and re-deal")
	token := fs.String("token", os.Getenv("METALEAK_TOKEN"), "distributed: shared auth token workers must present (default $METALEAK_TOKEN; empty = no auth)")
	faultSpec := fs.String("faults", "", "fault plan (DESIGN.md §8): machine: entries corrupt metadata in every cell's machine, harness: entries fail trials and tear checkpoints")
	retries := fs.Int("retries", 0, "extra attempts for a failed cell before quarantine")
	trialTimeout := fs.Duration("trial-timeout", 0, "per-attempt cell deadline (0 = none)")
	var sets multiFlag
	fs.Var(&sets, "set", "DesignPoint field override Field=value (repeatable, e.g. -set FastCrypto=true)")
	if _, err := parseInterleaved(fs, args); err != nil {
		return err
	}
	if *asJSON && *long {
		return fmt.Errorf("sweep: -long is a CSV shape; drop -json (its rows are already structured)")
	}
	axes := experiments.SweepAxes{Seeds: *seeds, Seed: *seed, Bits: *bits}
	for _, c := range strings.Split(*configs, ",") {
		if c = strings.TrimSpace(c); c != "" {
			axes.Configs = append(axes.Configs, c)
		}
	}
	minors, err := listFlag(*minor)
	if err != nil {
		return fmt.Errorf("sweep: -minor: %w", err)
	}
	for _, m := range minors {
		axes.MinorBits = append(axes.MinorBits, uint(m))
	}
	metas, err := listFlag(*meta)
	if err != nil {
		return fmt.Errorf("sweep: -meta: %w", err)
	}
	for _, m := range metas {
		axes.MetaKB = append(axes.MetaKB, int(m))
	}
	noises, err := listFlag(*noise)
	if err != nil {
		return fmt.Errorf("sweep: -noise: %w", err)
	}
	for _, n := range noises {
		axes.Noise = append(axes.Noise, arch.Cycles(n))
	}
	if len(axes.Configs) == 0 || len(axes.MinorBits) == 0 || len(axes.MetaKB) == 0 || len(axes.Noise) == 0 {
		return fmt.Errorf("sweep: every axis needs at least one value")
	}
	explicit := explicitFlags(fs)
	if err := applySetFlags(&axes, sets, explicit); err != nil {
		return err
	}
	distributed := *workers > 0 || *listen != ""
	if distributed && explicit["par"] {
		return fmt.Errorf("sweep: -par is the single-process pool width; with -workers/-listen concurrency is the attached worker count, drop -par")
	}
	if !distributed && explicit["lease-timeout"] {
		return fmt.Errorf("sweep: -lease-timeout only applies to distributed runs; add -workers N or -listen ADDR")
	}
	if !distributed && explicit["token"] {
		return fmt.Errorf("sweep: -token authenticates dispatch workers; add -workers N or -listen ADDR")
	}
	var harness *faults.Harness
	var harnessSpec string
	if *faultSpec != "" {
		plan, err := faults.Parse(*faultSpec)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if plan.HasMachine() {
			// Machine-level entries are design-point state: route them
			// through the override path so they join the sweep's identity
			// (and the checkpoint fingerprint) like any other -set field.
			for _, s := range axes.Set {
				if strings.HasPrefix(s, "FaultSpec=") {
					return fmt.Errorf("sweep: -faults machine entries conflict with -set FaultSpec; pass the plan once")
				}
			}
			axes.Set = append(axes.Set, "FaultSpec="+plan.MachineSpec())
		}
		if plan.HasDisconnect() && !distributed {
			return fmt.Errorf("sweep: harness:disconnect faults drop dispatch workers; they need a distributed run (-workers N or -listen ADDR)")
		}
		harness = plan.NewHarness()
		harnessSpec = plan.HarnessSpec()
	}
	sweepOpts := experiments.SweepOptions{
		Workers:    *par,
		Checkpoint: *checkpoint,
		Timeout:    *trialTimeout,
		Retries:    *retries,
		Faults:     harness,
		Log: func(format string, logArgs ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", logArgs...)
		},
	}
	if *retries > 0 {
		sweepOpts.Backoff = runner.ExpBackoff(50 * time.Millisecond)
	}

	var rows []experiments.SweepRow
	if distributed {
		dopts := experiments.DispatchOptions{LeaseTimeout: *leaseTimeout, HarnessSpec: harnessSpec, Token: *token}
		rows, err = sweepDistributed(ctx, axes, sweepOpts, dopts, *workers, *listen)
	} else {
		rows, err = experiments.SweepOpts(ctx, axes, sweepOpts)
	}
	if err != nil {
		if (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && len(rows) > 0 {
			// Interrupted mid-grid: report the completed rows before
			// surfacing the cancellation.
			if emitErr := emitSweep(axes, rows, *asJSON, *long); emitErr != nil {
				return emitErr
			}
			total := len(axes.Cells())
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "# sweep interrupted: %d/%d cells done, checkpointed to %s; rerun the same command to resume\n",
					len(rows), total, *checkpoint)
			} else {
				fmt.Fprintf(os.Stderr, "# sweep interrupted: %d/%d cells done (no -checkpoint: a rerun starts over)\n",
					len(rows), total)
			}
		}
		return err
	}
	return emitSweep(axes, rows, *asJSON, *long)
}

// explicitFlags returns the set of flags the user passed on the command
// line (as opposed to defaults).
func explicitFlags(fs *flag.FlagSet) map[string]bool {
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	return explicit
}

// applySetFlags folds -set overrides into the axes. Fields the sweep
// grid owns as axes (MinorBits, MetaKB, NoiseInterval) are remapped
// onto the axis itself — so `-set MinorBits=6` is exactly `-minor 6`,
// labels, seeds and all — and conflict with an explicit axis flag
// rather than silently losing to it. Everything else passes through to
// the per-cell design-point overrides.
func applySetFlags(axes *experiments.SweepAxes, sets []string, explicit map[string]bool) error {
	for _, s := range sets {
		ov, err := machine.ParseOverride(s)
		if err != nil {
			return fmt.Errorf("sweep: -set: %w", err)
		}
		switch ov.Field {
		case "MinorBits":
			if explicit["minor"] {
				return fmt.Errorf("sweep: -set MinorBits conflicts with -minor; the minor width is a grid axis, set it once")
			}
			v, err := strconv.ParseUint(ov.Value, 10, 0)
			if err != nil {
				return fmt.Errorf("sweep: -set %s: %w", s, err)
			}
			axes.MinorBits = []uint{uint(v)}
		case "MetaKB":
			if explicit["meta"] {
				return fmt.Errorf("sweep: -set MetaKB conflicts with -meta; the metadata size is a grid axis, set it once")
			}
			v, err := strconv.Atoi(ov.Value)
			if err != nil {
				return fmt.Errorf("sweep: -set %s: %w", s, err)
			}
			axes.MetaKB = []int{v}
		case "NoiseInterval":
			if explicit["noise"] {
				return fmt.Errorf("sweep: -set NoiseInterval conflicts with -noise; the noise interval is a grid axis, set it once")
			}
			v, err := strconv.ParseUint(ov.Value, 10, 64)
			if err != nil {
				return fmt.Errorf("sweep: -set %s: %w", s, err)
			}
			axes.Noise = []arch.Cycles{arch.Cycles(v)}
		case "Seed":
			return fmt.Errorf("sweep: set the base seed with -seed (per-cell machine seeds are derived from it)")
		default:
			axes.Set = append(axes.Set, s)
		}
	}
	return nil
}

// emitSweep renders rows (wide CSV, long CSV, or JSON) on stdout and
// the per-point aggregates on stderr.
func emitSweep(axes experiments.SweepAxes, rows []experiments.SweepRow, asJSON, long bool) error {
	if asJSON {
		return experiments.WriteSweepJSON(os.Stdout, axes, rows)
	}
	if err := experiments.WriteRowsCSV(os.Stdout, rows, long); err != nil {
		return err
	}
	for _, p := range axes.Aggregate(rows) {
		fmt.Fprintf(os.Stderr, "# %s minor=%s meta=%dKiB noise=%d: covert %.3f±%.3f monitor %.3f±%.3f (n=%d, %d failed)\n",
			p.Config, p.MinorLabel(), p.MetaKB, p.Noise,
			p.Covert.Mean, p.Covert.Std(), p.Monitor.Mean, p.Monitor.Std(), p.Covert.N, p.Errs)
	}
	return nil
}

func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	csvOut := fs.Bool("csv", false, "dump the retained events as CSV")
	binFile := fs.String("bin", "", "also dump the retained events as a binary MLT1 trace to FILE")
	pos, err := parseInterleaved(fs, args)
	if err != nil {
		return err
	}
	if len(pos) >= 1 && pos[0] == "replay" {
		if len(pos) != 2 {
			return fmt.Errorf("trace replay: need a trace file")
		}
		return runReplay(pos[1], *csvOut, *binFile)
	}
	if len(pos) != 1 {
		return fmt.Errorf("trace: need a victim (jpeg or rsa) or 'replay FILE'")
	}
	return runTrace(pos[0], *csvOut, *binFile)
}

// runTrace executes one victim on the SCT machine with an access recorder
// attached and prints the per-path summary (optionally the raw CSV and a
// binary MLT1 dump for later replay).
func runTrace(kind string, csvOut bool, binFile string) error {
	dp := machine.ConfigSCT()
	dp.SecurePages = 1 << 16
	sys := machine.NewSystem(dp)
	rec := trace.New(4096)
	rec.Attach(sys.System)
	proc := victim.NewProc(sys.System, 0)
	switch kind {
	case "jpeg":
		jv := victim.NewJPEGVictim(proc)
		im, err := jpeg.Synthetic(jpeg.PatternCircle, 32, 32)
		if err != nil {
			return err
		}
		if _, _, err := jv.Encode(im, nil); err != nil {
			return err
		}
	case "rsa":
		rv := victim.NewRSAVictim(proc)
		rv.ModExp(mpi.New(3), mpi.FromHex("deadbeefcafef00d"), mpi.FromHex("ffffffffffffffc5"), nil)
	default:
		return fmt.Errorf("trace: unknown victim %q (jpeg or rsa)", kind)
	}
	fmt.Print(rec.Summary())
	if binFile != "" {
		data, err := rec.MarshalBinary()
		if err != nil {
			return err
		}
		if err := os.WriteFile(binFile, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d events (%d bytes) to %s\n", len(rec.Events()), len(data), binFile)
	}
	if csvOut {
		return rec.WriteCSV(os.Stdout)
	}
	return nil
}

// runReplay loads a binary MLT1 trace and re-renders its summary — the
// archived trace is re-analyzable without re-running the simulation.
// With -bin OUT the normalized trace (decoded, oldest-first, re-delta-
// encoded) is written back out, so a replay can also canonicalize a
// foreign or hand-edited trace file.
func runReplay(file string, csvOut bool, binFile string) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	var rec trace.Recorder
	if err := rec.UnmarshalBinary(data); err != nil {
		var de *trace.DecodeError
		if errors.As(err, &de) && de.Record >= 0 {
			return fmt.Errorf("trace replay %s: file is truncated or corrupt at byte %d of %d, record %d: %w",
				file, de.Offset, len(data), de.Record, de.Err)
		}
		return fmt.Errorf("trace replay %s: %w", file, err)
	}
	fmt.Print(rec.Summary())
	if binFile != "" {
		out, err := rec.MarshalBinary()
		if err != nil {
			return err
		}
		if err := os.WriteFile(binFile, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d events (%d bytes) to %s\n", len(rec.Events()), len(out), binFile)
	}
	if csvOut {
		return rec.WriteCSV(os.Stdout)
	}
	return nil
}

func usage() {
	fmt.Println(`usage: metaleak list
       metaleak run <id>...|all [-full] [-seed N] [-json] [-par N]
       metaleak report [-full] [-seed N] [-par N]
       metaleak sweep [-configs sct,ht,sgx] [-minor 6,7] [-meta 64,256] [-noise 0,8000]
                      [-seeds N] [-seed N] [-bits N] [-set Field=value]...
                      [-checkpoint FILE] [-json|-long] [-par N]
                      [-workers N] [-listen ADDR] [-lease-timeout D] [-token T]
       metaleak hunt [-configs sct,ht,sgx] [-programs N] [-pairs N] [-ops N]
                     [-secret-len N] [-seed N] [-set Field=value]...
                     [-checkpoint FILE] [-inventory FILE] [-json] [-par N]
                     [-workers N] [-listen ADDR] [-lease-timeout D] [-token T]
       metaleak worker -connect ADDR [-id NAME] [-hb D] [-token T] [-dial-retries N]
       metaleak serve [-addr ADDR] [-workers N] [-token T] [-state DIR]
                      [-worker-listen ADDR] [-lease-timeout D] [-retries N] [-revive N]
       metaleak trace jpeg|rsa [-csv] [-bin FILE]
       metaleak trace replay FILE [-csv] [-bin OUT]
       metaleak chaos [-seed N] [-v]
       metaleak bench [-json] [-out FILE] [-gate FILE [-tol PCT]] [-baseline]

run and sweep accept -faults SPEC (fault plan, DESIGN.md §8),
-retries N, and -trial-timeout D; chaos self-tests the fault engine.
sweep -workers/-listen distributes cells across worker processes with
byte-identical output (DESIGN.md §9); worker attaches this machine to
a remote sweep coordinator. serve is the persistent sweep service
(DESIGN.md §12): submit specs over HTTP, stream rows as they settle,
share a content-addressed result cache across sweeps, and let a
supervised worker fleet self-heal through crashes. hunt is the
differential leakage fuzzer (DESIGN.md §13): seeded random victim
programs run twice under two secrets, trace divergence = side channel,
checked against each design point's leakage contract.`)
}
