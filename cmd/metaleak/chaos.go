package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"metaleak/internal/experiments"
)

// chaosCmd is the fault-engine self-test: it runs the machine-level
// tamper-detection matrix (every secure config × every metadata class ×
// both access directions must detect its injected corruption), the
// harness-level sweep invariants (recovery, quarantine, crash/resume
// byte-identity), the distributed-dispatch invariants (worker-count
// identity, drop/re-lease recovery, drop quarantine), and the
// self-healing service invariants (flap recovery under supervision,
// cache-served resubmission, overlapping-grid reuse), and exits
// non-zero on any violation. CI runs it as the chaos smoke gate.
func chaosCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	seed := fs.Uint64("seed", 0xC4A05, "chaos seed (fault plans and machines derive from it)")
	verbose := fs.Bool("v", false, "print every matrix cell, not just escapes")
	if _, err := parseInterleaved(fs, args); err != nil {
		return err
	}

	outcomes := experiments.ChaosMatrix(*seed)
	escapes := 0
	for _, o := range outcomes {
		if o.Escaped() {
			escapes++
			fmt.Printf("ESCAPE   %-16s %-10s %-5s injected=%d detected=%d undelivered=%d\n",
				o.Config, o.Class, o.Op(), o.Injected, o.Detected, o.Undelivered)
		} else if *verbose {
			fmt.Printf("detected %-16s %-10s %-5s injected=%d detected=%d\n",
				o.Config, o.Class, o.Op(), o.Injected, o.Detected)
		}
	}
	fmt.Printf("machine matrix: %d cells, %d silent escapes\n", len(outcomes), escapes)

	dir, err := os.MkdirTemp("", "metaleak-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := experiments.ChaosSweep(ctx, dir, *seed); err != nil {
		return err
	}
	fmt.Println("harness sweep: recovery, quarantine, and crash/resume invariants hold")

	if err := experiments.ChaosDispatch(ctx, *seed); err != nil {
		return err
	}
	fmt.Println("dispatch sweep: identity, drop/re-lease, and drop-quarantine invariants hold")

	if err := experiments.ChaosServe(ctx, dir, *seed); err != nil {
		return err
	}
	fmt.Println("serve sweep: flap-recovery, cache-identity, and overlap-reuse invariants hold")

	if escapes > 0 {
		return fmt.Errorf("chaos: %d injected corruptions escaped detection", escapes)
	}
	return nil
}
