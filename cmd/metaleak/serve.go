package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"time"

	"metaleak/internal/serve"
)

// serveCmd runs the sweep service (DESIGN.md §12): an HTTP/JSON
// front-end over the dispatch coordinator with a supervised local
// worker fleet, per-sweep checkpoints, and a content-addressed result
// cache shared across submissions. SIGTERM/SIGINT drains gracefully:
// HTTP stops accepting, the in-flight sweep's settled rows are already
// checkpointed, and resubmitting the same spec after a restart resumes
// from them.
func serveCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8990", "HTTP listen address")
	workerListen := fs.String("worker-listen", "127.0.0.1:0", "worker listener bind address, rebound per sweep (resolved address published in /v1/status for external `metaleak worker -connect`)")
	workers := fs.Int("workers", 2, "supervised local worker processes (0 = external workers only)")
	token := fs.String("token", os.Getenv("METALEAK_TOKEN"), "shared auth token: HTTP bearer + worker handshake (default $METALEAK_TOKEN; empty = no auth)")
	state := fs.String("state", "", "state directory for the cell cache and sweep checkpoints (default: a fresh temp dir, printed at startup)")
	cacheMax := fs.Int64("cache-max-bytes", 0, "cell cache size cap: past it the oldest entries evict and the file compacts (0 = unbounded)")
	leaseTimeout := fs.Duration("lease-timeout", 10*time.Second, "silence window after which a worker's leased cells revoke and re-deal")
	retries := fs.Int("retries", 1, "extra attempts for a failed cell before quarantine")
	revive := fs.Int("revive", 16, "per-cell budget of worker-death revocations absorbed without consuming attempts (supervised fleets flap; deaths are not measurements)")
	trialTimeout := fs.Duration("trial-timeout", 0, "per-attempt cell deadline (0 = none)")
	if _, err := parseInterleaved(fs, args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("serve: -workers %d: must be >= 0", *workers)
	}
	if *revive < 0 {
		return fmt.Errorf("serve: -revive %d: must be >= 0", *revive)
	}
	if *cacheMax < 0 {
		return fmt.Errorf("serve: -cache-max-bytes %d: must be >= 0 (0 = unbounded)", *cacheMax)
	}

	stateDir := *state
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "metaleak-serve-*")
		if err != nil {
			return err
		}
		stateDir = dir
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	logf := func(format string, logArgs ...any) {
		fmt.Fprintf(os.Stderr, "# "+format+"\n", logArgs...)
	}
	s, err := serve.New(serve.Config{
		Token:         *token,
		StateDir:      stateDir,
		CacheMaxBytes: *cacheMax,
		WorkerAddr:    *workerListen,
		Workers:       *workers,
		LeaseTimeout:  *leaseTimeout,
		Retries:       *retries,
		Revive:        *revive,
		TrialTimeout:  *trialTimeout,
		Log:           logf,
		SpawnWorker: func(ctx context.Context, slot, attempt int, waddr string) error {
			// This binary re-invoked as a worker. METALEAK_WORKER lets a
			// test binary recognize the re-invocation; the token travels by
			// env, not argv — argv is visible in ps.
			cmd := exec.CommandContext(ctx, self, "worker",
				"-connect", waddr,
				"-id", fmt.Sprintf("serve-w%d.%d", slot, attempt),
				"-dial-retries", "8")
			env := append(os.Environ(), "METALEAK_WORKER=1")
			if *token != "" {
				env = append(env, "METALEAK_TOKEN="+*token)
			}
			cmd.Env = env
			cmd.Stderr = os.Stderr
			return cmd.Run()
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logf("serve: listening on http://%s (state %s, %d local workers)", ln.Addr(), stateDir, *workers)
	httpSrv := &http.Server{Handler: s.Handler()}
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx) }()
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Serve(ln) }()

	select {
	case err := <-httpDone:
		return fmt.Errorf("serve: http: %w", err)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting requests (bounded — streaming
	// clients are cut off, their sweeps' rows are checkpointed), then
	// wait for the run loop to settle and close the cache.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		httpSrv.Close()
	}
	err = <-runDone
	logf("serve: drained (state kept in %s)", stateDir)
	return err
}
