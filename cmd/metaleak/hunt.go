package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"metaleak/internal/experiments"
	"metaleak/internal/faults"
	"metaleak/internal/hunt"
	"metaleak/internal/machine"
	"metaleak/internal/runner"
)

// huntCmd is the CLI face of the differential leakage fuzzer: expand a
// (config x program x secret-pair) grid, run every pair twice, and emit
// one verdict row per cell. It shares the sweep's execution machinery —
// -par, -checkpoint, -set, -faults, -workers/-listen — and its
// byte-identical-output contract.
func huntCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("hunt", flag.ContinueOnError)
	configs := fs.String("configs", "sct", "comma-separated design points (sct,ht,sgx)")
	programs := fs.Int("programs", 4, "generated victim programs per config")
	pairs := fs.Int("pairs", 2, "differential secret pairs per program")
	ops := fs.Int("ops", 64, "operations per generated program")
	secretLen := fs.Int("secret-len", 8, "secret length in bytes")
	seed := fs.Uint64("seed", 0, "base seed (programs, secrets and machines all derive from it)")
	asJSON := fs.Bool("json", false, "emit rows and summary as JSON (default CSV)")
	par := fs.Int("par", 0, "max cells in flight (0 = GOMAXPROCS; output is identical for every value)")
	checkpoint := fs.String("checkpoint", "", "persist completed cells to FILE and resume from it on rerun")
	inventory := fs.String("inventory", "", "cross-check discovered channels against a secretflow leakage inventory FILE")
	workers := fs.Int("workers", 0, "distributed: spawn N local `metaleak worker` processes and deal cells to them over a private socket")
	listen := fs.String("listen", "", "distributed: accept remote `metaleak worker -connect` processes on ADDR (host:port, unix:PATH, or /path)")
	leaseTimeout := fs.Duration("lease-timeout", 10*time.Second, "distributed: silence window after which a worker's leased cells revoke and re-deal")
	token := fs.String("token", os.Getenv("METALEAK_TOKEN"), "distributed: shared auth token workers must present (default $METALEAK_TOKEN; empty = no auth)")
	faultSpec := fs.String("faults", "", "fault plan (DESIGN.md §8): machine: entries corrupt metadata in every cell's machine, harness: entries fail trials and tear checkpoints")
	retries := fs.Int("retries", 0, "extra attempts for a failed cell before quarantine")
	trialTimeout := fs.Duration("trial-timeout", 0, "per-attempt cell deadline (0 = none)")
	var sets multiFlag
	fs.Var(&sets, "set", "DesignPoint field override Field=value (repeatable, e.g. -set Contract=\"allow=lat,time\")")
	if _, err := parseInterleaved(fs, args); err != nil {
		return err
	}

	axes := experiments.HuntAxes{
		Programs:  *programs,
		Pairs:     *pairs,
		Ops:       *ops,
		SecretLen: *secretLen,
		Seed:      *seed,
	}
	for _, c := range strings.Split(*configs, ",") {
		if c = strings.TrimSpace(c); c != "" {
			axes.Configs = append(axes.Configs, c)
		}
	}
	if len(axes.Configs) == 0 {
		return fmt.Errorf("hunt: -configs needs at least one design point")
	}
	// Unlike sweep, hunt has no grid axes to remap -set values onto: every
	// override passes straight through to the per-cell design point. The
	// machine seed stays cell-owned, as in sweep.
	for _, s := range sets {
		ov, err := machine.ParseOverride(s)
		if err != nil {
			return fmt.Errorf("hunt: -set: %w", err)
		}
		if ov.Field == "Seed" {
			return fmt.Errorf("hunt: set the base seed with -seed (per-cell machine seeds are derived from it)")
		}
		axes.Set = append(axes.Set, s)
	}

	explicit := explicitFlags(fs)
	distributed := *workers > 0 || *listen != ""
	if distributed && explicit["par"] {
		return fmt.Errorf("hunt: -par is the single-process pool width; with -workers/-listen concurrency is the attached worker count, drop -par")
	}
	if !distributed && explicit["lease-timeout"] {
		return fmt.Errorf("hunt: -lease-timeout only applies to distributed runs; add -workers N or -listen ADDR")
	}
	if !distributed && explicit["token"] {
		return fmt.Errorf("hunt: -token authenticates dispatch workers; add -workers N or -listen ADDR")
	}

	var harness *faults.Harness
	var harnessSpec string
	if *faultSpec != "" {
		plan, err := faults.Parse(*faultSpec)
		if err != nil {
			return fmt.Errorf("hunt: %w", err)
		}
		if plan.HasMachine() {
			for _, s := range axes.Set {
				if strings.HasPrefix(s, "FaultSpec=") {
					return fmt.Errorf("hunt: -faults machine entries conflict with -set FaultSpec; pass the plan once")
				}
			}
			axes.Set = append(axes.Set, "FaultSpec="+plan.MachineSpec())
		}
		if plan.HasDisconnect() && !distributed {
			return fmt.Errorf("hunt: harness:disconnect faults drop dispatch workers; they need a distributed run (-workers N or -listen ADDR)")
		}
		harness = plan.NewHarness()
		harnessSpec = plan.HarnessSpec()
	}

	opts := experiments.SweepOptions{
		Workers:    *par,
		Checkpoint: *checkpoint,
		Timeout:    *trialTimeout,
		Retries:    *retries,
		Faults:     harness,
		Log: func(format string, logArgs ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", logArgs...)
		},
	}
	if *retries > 0 {
		opts.Backoff = runner.ExpBackoff(50 * time.Millisecond)
	}

	var rows []experiments.HuntRow
	var err error
	if distributed {
		dopts := experiments.DispatchOptions{LeaseTimeout: *leaseTimeout, HarnessSpec: harnessSpec, Token: *token}
		rows, err = huntDistributed(ctx, axes, opts, dopts, *workers, *listen)
	} else {
		rows, err = experiments.HuntOpts(ctx, axes, opts)
	}
	if err != nil {
		if (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && len(rows) > 0 {
			if emitErr := emitHunt(rows, *asJSON, *inventory); emitErr != nil {
				return emitErr
			}
			total := len(axes.Cells())
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "# hunt interrupted: %d/%d cells done, checkpointed to %s; rerun the same command to resume\n",
					len(rows), total, *checkpoint)
			} else {
				fmt.Fprintf(os.Stderr, "# hunt interrupted: %d/%d cells done (no -checkpoint: a rerun starts over)\n",
					len(rows), total)
			}
		}
		return err
	}
	return emitHunt(rows, *asJSON, *inventory)
}

// emitHunt renders rows (CSV or JSON) on stdout, the divergence summary
// on stderr, and — with an inventory file — the static/dynamic
// cross-check report.
func emitHunt(rows []experiments.HuntRow, asJSON bool, inventoryPath string) error {
	sum := experiments.Summarize(rows)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Rows    []experiments.HuntRow
			Summary experiments.HuntSummary
		}{rows, sum}); err != nil {
			return err
		}
	} else {
		w := csv.NewWriter(os.Stdout)
		if err := w.Write(experiments.HuntCSVHeader()); err != nil {
			return err
		}
		for _, r := range rows {
			if err := w.Write(r.CSVRecord()); err != nil {
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "# hunt: %d cells, %d diverged, %d contract violations, %d missing required, %d errors\n",
		sum.Cells, sum.Diverged, sum.Violations, sum.Missing, sum.Errs)
	for _, ch := range hunt.Channels() {
		if n := sum.Channels[ch]; n > 0 {
			fmt.Fprintf(os.Stderr, "#   %-16s %d\n", ch, n)
		}
	}
	if inventoryPath == "" {
		return nil
	}
	counts, err := hunt.LoadInventory(inventoryPath)
	if err != nil {
		return fmt.Errorf("hunt: -inventory: %w", err)
	}
	var channels []string
	for _, ch := range hunt.Channels() {
		if sum.Channels[ch] > 0 {
			channels = append(channels, ch)
		}
	}
	for _, r := range hunt.CrossCheck(channels, counts) {
		if r.Sites == 0 {
			fmt.Fprintf(os.Stderr, "# cross-check %-16s UNPREDICTED: no committed leak site maps to it (looked for %s)\n",
				r.Channel, strings.Join(r.Static, ","))
		} else {
			fmt.Fprintf(os.Stderr, "# cross-check %-16s predicted by %d static sites (%s)\n",
				r.Channel, r.Sites, strings.Join(r.Static, ","))
		}
	}
	return nil
}

// huntDistributed is the hunt twin of sweepDistributed: same fleet
// setup, hunt dispatch engine.
func huntDistributed(ctx context.Context, axes experiments.HuntAxes, opts experiments.SweepOptions, dopts experiments.DispatchOptions, workers int, listen string) ([]experiments.HuntRow, error) {
	var rows []experiments.HuntRow
	err := runWithFleet(ctx, workers, listen, dopts.Token, func(ctx context.Context, ln net.Listener) error {
		var err error
		rows, err = experiments.HuntDispatch(ctx, axes, opts, dopts, ln)
		return err
	})
	return rows, err
}
