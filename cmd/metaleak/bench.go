package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"metaleak/internal/bench"
)

// benchCmd runs the substrate microbenchmarks and the fixed-grid sweep
// throughput measurement (host time — explicitly outside the determinism
// contract, see DESIGN.md §11) and emits or gates the machine-readable
// performance record committed as BENCH_<pr>.json.
func benchCmd(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the record as JSON on stdout")
	out := fs.String("out", "", "write the JSON record to FILE")
	gate := fs.String("gate", "", "compare against the committed record in FILE; exit non-zero on >tol regression")
	tol := fs.Float64("tol", 10, "gate tolerance: maximum tolerated ns/op regression, in percent")
	baseline := fs.Bool("baseline", false, "embed the recorded pre-PR-8 seed measurements as the record's baseline")
	if _, err := parseInterleaved(fs, args); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "# bench: running substrate microbenchmarks (host time; results vary by machine)")
	rec, err := bench.Run()
	if err != nil {
		return err
	}
	if *baseline {
		rec.Baseline = bench.SeedBaseline()
	}
	names := make([]string, 0, len(rec.Benchmarks))
	for name := range rec.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := rec.Benchmarks[name]
		fmt.Fprintf(os.Stderr, "# %-18s %12.0f ns/op %8d B/op %6d allocs/op\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	fmt.Fprintf(os.Stderr, "# %-18s %12.2f cells/sec (%d-cell fixed grid)\n",
		"Sweep", rec.Sweep.CellsPerSec, rec.Sweep.Cells)

	if *asJSON || *out != "" {
		blob, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		blob = append(blob, '\n')
		if *asJSON {
			if _, err := os.Stdout.Write(blob); err != nil {
				return fmt.Errorf("bench: %w", err)
			}
		}
		if *out != "" {
			if err := os.WriteFile(*out, blob, 0o644); err != nil {
				return fmt.Errorf("bench: %w", err)
			}
			fmt.Fprintf(os.Stderr, "# bench: wrote %s\n", *out)
		}
	}

	if *gate != "" {
		blob, err := os.ReadFile(*gate)
		if err != nil {
			return fmt.Errorf("bench: gate: %w", err)
		}
		var prev bench.Record
		if err := json.Unmarshal(blob, &prev); err != nil {
			return fmt.Errorf("bench: gate: %s: %w", *gate, err)
		}
		if prev.Schema != bench.Schema {
			return fmt.Errorf("bench: gate: %s has schema %q, want %q", *gate, prev.Schema, bench.Schema)
		}
		regs := bench.Gate(prev, rec, *tol/100)
		if len(regs) == 0 {
			fmt.Fprintf(os.Stderr, "# bench: gate PASS against %s (tolerance %.0f%%)\n", *gate, *tol)
			return nil
		}
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "# bench: REGRESSION %s\n", r)
		}
		return fmt.Errorf("bench: %d benchmark(s) regressed more than %.0f%% vs %s", len(regs), *tol, *gate)
	}
	return nil
}
