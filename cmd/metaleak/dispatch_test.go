package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestMain intercepts the worker re-execution `sweep -workers N`
// performs: sweepDistributed spawns os.Executable() — in tests, this
// test binary — with METALEAK_WORKER=1 and `worker -connect ADDR`
// args. The intercept turns that re-execution into a real metaleak
// worker process, so the distributed CLI tests exercise the genuine
// multi-process path: separate address spaces, the wire protocol, and
// the unix-socket rendezvous.
func TestMain(m *testing.M) {
	if os.Getenv("METALEAK_WORKER") == "1" && len(os.Args) > 1 && os.Args[1] == "worker" {
		if err := run(context.Background(), os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "metaleak:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestDispatchWorkersMatchPar is the CLI face of the byte-identity
// property: `sweep -workers 2` (two real subprocess workers over a
// private unix socket) emits exactly the bytes `sweep -par 2` does,
// in wide, long, and JSON renderings.
func TestDispatchWorkersMatchPar(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	base := []string{"sweep", "-configs", "sct", "-minor", "6,7", "-seeds", "2", "-bits", "8",
		"-set", "FastCrypto=true"}
	for _, render := range [][]string{nil, {"-long"}, {"-json"}} {
		args := append(append([]string{}, base...), render...)
		par, err := capture(t, func() error {
			return run(context.Background(), append(append([]string{}, args...), "-par", "2"))
		})
		if err != nil {
			t.Fatalf("%v -par 2: %v", render, err)
		}
		dist, err := capture(t, func() error {
			return run(context.Background(), append(append([]string{}, args...), "-workers", "2"))
		})
		if err != nil {
			t.Fatalf("%v -workers 2: %v", render, err)
		}
		if dist != par {
			t.Fatalf("%v: -workers 2 output differs from -par 2:\n--- par ---\n%s--- workers ---\n%s",
				render, par, dist)
		}
	}
}

// TestDispatchWorkersDisconnectFault: the chaos grammar's
// harness:disconnect kills the worker holding the named cell. With
// subprocess workers each process carries its own fault counters, so
// every lease of the marked cell dies: the cell exhausts its budget
// and quarantines with one fixed disconnect message per revoked
// lease, while every other cell's row is untouched and no cell is
// lost. (Invisible recovery — drop once, retry succeeds — needs the
// shared in-process harness and is covered by the chaos driver.)
func TestDispatchWorkersDisconnectFault(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	base := []string{"sweep", "-configs", "sct", "-seeds", "2", "-bits", "8",
		"-set", "FastCrypto=true"}
	clean, err := capture(t, func() error {
		return run(context.Background(), append(append([]string{}, base...), "-par", "2"))
	})
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := capture(t, func() error {
		return run(context.Background(), append(append([]string{}, base...),
			"-workers", "2", "-retries", "1", "-faults", "harness:disconnect@1x1"))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cell 0's row (and the header) must be untouched; cell 1's row must
	// be the quarantine report with the fixed, worker-anonymous message.
	cleanLines := strings.SplitN(clean, "\n", 3)
	droppedLines := strings.SplitN(dropped, "\n", 3)
	if cleanLines[0] != droppedLines[0] || cleanLines[1] != droppedLines[1] {
		t.Fatalf("unaffected rows perturbed:\n--- clean ---\n%s--- dropped ---\n%s", clean, dropped)
	}
	want := "\"worker disconnected mid-lease\nworker disconnected mid-lease\",2,true"
	if !strings.Contains(droppedLines[2], want) {
		t.Fatalf("cell 1 not quarantined as expected:\n%s", dropped)
	}
	if n, want := strings.Count(dropped, "sct,"), strings.Count(clean, "sct,"); n != want {
		t.Fatalf("lost cells: %d rows, want %d:\n%s", n, want, dropped)
	}
}

// TestDispatchFlagValidation pins the CLI's guardrails around the
// distributed flags.
func TestDispatchFlagValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"sweep", "-workers", "2", "-par", "4"}, "drop -par"},
		{[]string{"sweep", "-lease-timeout", "5s"}, "only applies to distributed"},
		{[]string{"sweep", "-faults", "harness:disconnect@0x1"}, "distributed run"},
		{[]string{"sweep", "-token", "t0k"}, "add -workers"},
		{[]string{"worker"}, "-connect ADDR is required"},
		{[]string{"worker", "-connect", "127.0.0.1:1"}, "connect"},
		{[]string{"worker", "-connect", "127.0.0.1:1", "-hb", "0s"}, "must be positive"},
		{[]string{"worker", "-connect", "127.0.0.1:1", "-hb", "-1s"}, "must be positive"},
		{[]string{"worker", "-connect", "127.0.0.1:1", "-dial-retries", "-1"}, "must be >= 0"},
		{[]string{"serve", "-workers", "-1"}, "must be >= 0"},
		{[]string{"serve", "-revive", "-2"}, "must be >= 0"},
	}
	for _, tc := range cases {
		err := run(ctx, tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: err = %v, want mention of %q", tc.args, err, tc.want)
		}
	}
}
