package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"metaleak/internal/dispatch"
	"metaleak/internal/experiments"
	"metaleak/internal/runner"
)

// This file is the CLI face of distributed sweeps: the `worker`
// subcommand (one process pulling leased cells from a coordinator) and
// the coordinator-side glue `sweep -workers N` / `sweep -listen ADDR`
// uses to spawn and supervise local workers.

// workerCmd attaches this process to a coordinator: dial, hand the job
// to the engine its Kind names (sweep or hunt), then pull and run cells
// until drained. It is started implicitly by `sweep -workers N` /
// `hunt -workers N` (over a private unix socket) or explicitly on other
// machines against -listen.
func workerCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	connect := fs.String("connect", "", "coordinator address (host:port for TCP, unix:PATH or /path for a unix socket)")
	id := fs.String("id", "", "worker name in coordinator logs (default w<pid>)")
	hb := fs.Duration("hb", time.Second, "heartbeat interval (keep well under the coordinator's -lease-timeout)")
	token := fs.String("token", os.Getenv("METALEAK_TOKEN"), "shared auth token the coordinator requires (default $METALEAK_TOKEN; prefer the env var — argv is visible in ps)")
	dialRetries := fs.Int("dial-retries", 0, "extra dial attempts with exponential backoff before giving up (0 = single attempt)")
	if _, err := parseInterleaved(fs, args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("worker: -connect ADDR is required")
	}
	if *hb <= 0 {
		return fmt.Errorf("worker: -hb %v: the heartbeat interval must be positive (it is the coordinator's only liveness signal)", *hb)
	}
	if *dialRetries < 0 {
		return fmt.Errorf("worker: -dial-retries %d: must be >= 0", *dialRetries)
	}
	if *id == "" {
		*id = fmt.Sprintf("w%d", os.Getpid())
	}
	conn, err := dispatch.DialRetry(ctx, *connect, *dialRetries, runner.ExpBackoff(100*time.Millisecond))
	if err != nil {
		return err
	}
	w := &dispatch.Worker{ID: *id, Heartbeat: *hb, Token: *token, Init: experiments.NewJobSession}
	return w.Run(ctx, conn)
}

// runWithFleet sets up a coordinator worker fleet and hands its
// listener to body (which takes ownership of it): listening on listen
// for remote workers, spawning `workers` local worker processes (this
// binary re-invoked as `metaleak worker` over a private unix socket),
// or both. With only local workers, all of them exiting before body
// returns cancels the run instead of hanging the coordinator forever.
// Both distributed engines — sweep and hunt — run through it; the
// engine is picked worker-side by the job's Kind (NewJobSession).
func runWithFleet(ctx context.Context, workers int, listen, token string, body func(ctx context.Context, ln net.Listener) error) error {
	var ln net.Listener
	addr := listen
	if listen != "" {
		var err error
		ln, err = dispatch.Listen(listen)
		if err != nil {
			return err
		}
	} else {
		dir, err := os.MkdirTemp("", "metaleak-dispatch-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		addr = filepath.Join(dir, "coord.sock")
		ln, err = dispatch.Listen(addr)
		if err != nil {
			return err
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var cmds []*exec.Cmd
	if workers > 0 {
		self, err := os.Executable()
		if err != nil {
			ln.Close()
			return err
		}
		// METALEAK_WORKER lets a test binary recognize the re-invocation
		// (TestMain intercepts it); the production binary ignores it. The
		// auth token travels by env, not argv — argv is visible in ps.
		env := []string{"METALEAK_WORKER=1"}
		if token != "" {
			env = append(env, "METALEAK_TOKEN="+token)
		}
		cmds, err = dispatch.SpawnLocal(ctx, workers, self,
			[]string{"worker", "-connect", addr}, env, os.Stderr)
		if err != nil {
			ln.Close()
			return err
		}
		go func() {
			for _, c := range cmds {
				c.Wait()
			}
			if listen == "" {
				// No remote workers can ever attach: a grid with work left
				// and no workers would wait forever.
				cancel()
			}
		}()
	}
	return body(ctx, ln)
}

// sweepDistributed runs the sweep through the dispatch coordinator on a
// runWithFleet worker fleet.
func sweepDistributed(ctx context.Context, axes experiments.SweepAxes, opts experiments.SweepOptions, dopts experiments.DispatchOptions, workers int, listen string) ([]experiments.SweepRow, error) {
	var rows []experiments.SweepRow
	err := runWithFleet(ctx, workers, listen, dopts.Token, func(ctx context.Context, ln net.Listener) error {
		var err error
		rows, err = experiments.SweepDispatch(ctx, axes, opts, dopts, ln)
		return err
	})
	return rows, err
}
