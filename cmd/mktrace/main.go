// Command mktrace generates victim fixtures for offline analysis: the
// synthetic test images (as PGM), deterministic RSA key material from the
// mpi substrate, and ground-truth leakage traces (coefficient activity for
// the JPEG victim, square/multiply sequences for the RSA victim) as the
// oracle against which attack traces are scored.
//
// Usage:
//
//	mktrace image <pattern> <size>        # PGM to stdout
//	mktrace jpeg-file <pattern> <size>    # real baseline .jpg to stdout
//	mktrace jpeg-color <pattern> <size>   # YCbCr 4:4:4 color .jpg to stdout
//	mktrace key <bits> [seed]             # RSA p, q, d for e=65537
//	mktrace jpeg-oracle <pattern> <size>  # 0/1 per AC coefficient
//	mktrace rsa-oracle <expbits> [seed]   # S/M operation string
package main

import (
	"fmt"
	"os"
	"strconv"

	"metaleak/internal/arch"
	"metaleak/internal/jpeg"
	"metaleak/internal/mpi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mktrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: mktrace image|jpeg-file|jpeg-color|key|jpeg-oracle|rsa-oracle ...")
	}
	switch args[0] {
	case "image":
		im, err := imageArg(args[1:])
		if err != nil {
			return err
		}
		return writePGM(im)
	case "jpeg-file":
		return encodeJPEGFile(args[1:])
	case "jpeg-color":
		if len(args) < 3 {
			return fmt.Errorf("need <pattern> <size>")
		}
		size, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		im, err := jpeg.SyntheticRGB(jpeg.SyntheticKind(args[1]), size, size)
		if err != nil {
			return err
		}
		return jpeg.EncodeColorFile(os.Stdout, im, 75)
	case "jpeg-oracle":
		im, err := imageArg(args[1:])
		if err != nil {
			return err
		}
		enc := &jpeg.Encoder{Quality: 75}
		res, err := enc.Encode(im)
		if err != nil {
			return err
		}
		for _, blk := range res.Blocks {
			for k := 1; k < 64; k++ {
				if blk[jpeg.NaturalOrder(k)] == 0 {
					fmt.Print("0")
				} else {
					fmt.Print("1")
				}
			}
			fmt.Println()
		}
		return nil
	case "key":
		bits, seed, err := intSeedArgs(args[1:])
		if err != nil {
			return err
		}
		rng := arch.NewRNG(seed)
		p := mpi.RandomPrime(rng, bits)
		q := mpi.RandomPrime(rng, bits)
		e := mpi.New(65537)
		phi := p.Sub(mpi.New(1)).Mul(q.Sub(mpi.New(1)))
		d, ok := mpi.ModInverse(e, phi, nil)
		if !ok {
			return fmt.Errorf("no inverse for e; try another seed")
		}
		fmt.Printf("p = %s\nq = %s\nn = %s\ne = %s\nd = %s\n", p, q, p.Mul(q), e, d)
		return nil
	case "rsa-oracle":
		bits, seed, err := intSeedArgs(args[1:])
		if err != nil {
			return err
		}
		rng := arch.NewRNG(seed)
		exp := mpi.Random(rng, bits)
		var trace []byte
		mpi.ModExp(mpi.New(3), exp, mpi.Random(rng, 2*bits).Add(mpi.New(1)), &mpi.Hooks{
			Square:   func() { trace = append(trace, 'S') },
			Multiply: func() { trace = append(trace, 'M') },
		})
		fmt.Printf("exponent = %s\ntrace    = %s\n", exp, trace)
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func imageArg(args []string) (*jpeg.Image, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("need <pattern> <size>")
	}
	size, err := strconv.Atoi(args[1])
	if err != nil {
		return nil, err
	}
	return jpeg.Synthetic(jpeg.SyntheticKind(args[0]), size, size)
}

func intSeedArgs(args []string) (int, uint64, error) {
	if len(args) < 1 {
		return 0, 0, fmt.Errorf("need <bits> [seed]")
	}
	bits, err := strconv.Atoi(args[0])
	if err != nil {
		return 0, 0, err
	}
	seed := uint64(1)
	if len(args) > 1 {
		s, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return 0, 0, err
		}
		seed = s
	}
	return bits, seed, nil
}

func writePGM(im *jpeg.Image) error {
	return jpeg.WritePGM(os.Stdout, im)
}

// encodeJPEGFile writes a real .jpg for the pattern (used by the
// "jpeg-file" subcommand).
func encodeJPEGFile(args []string) error {
	im, err := imageArg(args)
	if err != nil {
		return err
	}
	enc := &jpeg.Encoder{Quality: 75}
	return enc.EncodeFile(os.Stdout, im)
}
