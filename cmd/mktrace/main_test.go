package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<22)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestImagePGM(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"image", "circle", "16"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "P5\n16 16\n255\n") {
		t.Fatalf("pgm header: %q", out[:20])
	}
}

func TestJPEGFileMagic(t *testing.T) {
	for _, sub := range []string{"jpeg-file", "jpeg-color"} {
		out, err := capture(t, func() error { return run([]string{sub, "stripes", "16"}) })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) < 4 || out[0] != 0xff || out[1] != 0xd8 {
			t.Fatalf("%s: not a JPEG", sub)
		}
	}
}

func TestKeyGeneration(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"key", "48", "2"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"p =", "q =", "n =", "d ="} {
		if !strings.Contains(out, field) {
			t.Fatalf("key output missing %s:\n%s", field, out)
		}
	}
}

func TestOracles(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"jpeg-oracle", "circle", "16"}) })
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "\n") != 4 { // four 8x8 blocks
		t.Fatalf("jpeg oracle lines:\n%s", out)
	}
	out, err = capture(t, func() error { return run([]string{"rsa-oracle", "16", "3"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trace") || !strings.Contains(out, "S") {
		t.Fatalf("rsa oracle:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"image"},
		{"image", "nope", "8"},
		{"key"},
		{"key", "x"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
