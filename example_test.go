package metaleak_test

import (
	"fmt"

	"metaleak"
)

// ExampleNewSystem shows the four metadata access paths of Fig. 5.
func ExampleNewSystem() {
	sys := metaleak.NewSystem(metaleak.ConfigSCT())
	page := sys.AllocPage(0)
	b := page.Block(0)

	_, cold := sys.Read(0, b) // everything misses: full tree walk
	_, hot := sys.Read(0, b)  // L1 hit
	sys.Flush(0, b)
	_, warm := sys.Read(0, b) // data misses, counter still on-chip

	fmt.Println("cold path:", cold.Report.Path, "levels:", cold.Report.TreeLevelsLoaded)
	fmt.Println("hot path:", hot.Report.Path)
	fmt.Println("warm path:", warm.Report.Path)
	// Output:
	// cold path: 4 levels: 6
	// hot path: 1
	// warm path: 2
}

// ExampleNewCovertT transmits a bit across cores through integrity tree
// node caching state — no shared memory anywhere.
func ExampleNewCovertT() {
	sys := metaleak.NewSystem(metaleak.ConfigSCT())
	trojan := metaleak.NewAttacker(sys, 0, false)
	spy := metaleak.NewAttacker(sys, 1, false)
	ch, err := metaleak.NewCovertT(trojan, spy, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(ch.SendBit(true), ch.SendBit(false))
	// Output:
	// true false
}

// ExampleAttacker_ProbeLevels surveys which tree levels carry signal for
// a victim page.
func ExampleAttacker_ProbeLevels() {
	dp := metaleak.ConfigSCT()
	dp.SecurePages = 1 << 16
	dp.TreeArities = []int{32, 16, 16}
	sys := metaleak.NewSystem(dp)
	victimPage := sys.AllocPage(1)
	attacker := metaleak.NewAttacker(sys, 0, false)
	for _, rep := range attacker.ProbeLevels(victimPage, 4) {
		fmt.Printf("L%d signal: %v\n", rep.Level, rep.Gap > 0)
	}
	// Output:
	// L0 signal: true
	// L1 signal: true
	// L2 signal: true
}

// ExampleSynthetic renders a deterministic test pattern.
func ExampleSynthetic() {
	im, _ := metaleak.Synthetic("checker", 16, 16)
	fmt.Println(im.W, im.H, len(im.Pix))
	// Output:
	// 16 16 256
}
