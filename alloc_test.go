package metaleak

import "testing"

// TestSecureReadSteadyStateAllocs pins the steady-state secure read path
// (flush + path-2 read of a warmed block) at zero heap allocations per
// access. The hot loop — counter fetch, tree walk, GHASH MAC, decrypt —
// works entirely out of reusable controller and engine scratch state; a
// regression here shows up long before it is visible in ns/op.
func TestSecureReadSteadyStateAllocs(t *testing.T) {
	sys := NewSystem(ConfigSCT())
	p := sys.AllocPage(0)
	blk := p.Block(0)
	// Warm: materialize the block, its counter and tree path, and grow all
	// lazily-sized maps and scratch buffers past their steady-state size.
	for i := 0; i < 64; i++ {
		sys.Flush(0, blk)
		sys.Read(0, blk)
	}
	avg := testing.AllocsPerRun(200, func() {
		sys.Flush(0, blk)
		sys.Read(0, blk)
	})
	if avg > 0 {
		t.Fatalf("steady-state secure read allocates %.2f objects per access; want 0", avg)
	}
}
