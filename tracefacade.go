package metaleak

import (
	"metaleak/internal/sim"
	"metaleak/internal/trace"
)

// Access tracing, re-exported from internal/trace.

type (
	// TraceEvent describes one completed demand access.
	TraceEvent = sim.TraceEvent
	// TraceRecorder captures recent accesses in a ring buffer.
	TraceRecorder = trace.Recorder
)

// NewTraceRecorder builds a recorder holding up to capacity events;
// attach it with rec.Attach(sys.System) or sys.SetTraceHook(rec.Hook()).
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.New(capacity) }
