module metaleak

go 1.22
