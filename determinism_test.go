package metaleak

import (
	"bytes"
	"fmt"
	"testing"
)

// TestCovertChannelDeterminism is the dynamic guard behind what
// cmd/metalint enforces statically: one seed, one result. It runs a
// small MetaLeak-T covert-channel experiment twice with the same seed
// and requires the two runs to be byte-identical — the decoded message,
// the final cycle count, the tamper counter, and the full access trace
// in both CSV and binary form. Any wall-clock dependence, unseeded
// randomness, or map-order effect in a simulation path shows up here as
// a diff.
func TestCovertChannelDeterminism(t *testing.T) {
	run := func(seed uint64) []byte {
		dp := ConfigSCT()
		dp.Seed = seed
		sys := NewSystem(dp)
		rec := NewTraceRecorder(1 << 14)
		rec.Attach(sys.System)

		trojan := NewAttacker(sys, 0, false)
		spy := NewAttacker(sys, 1, false)
		ch, err := NewCovertT(trojan, spy, 0)
		if err != nil {
			t.Fatal(err)
		}
		decoded := ch.SendString("OK")

		var buf bytes.Buffer
		fmt.Fprintf(&buf, "decoded=%q accuracy=%v now=%d tampered=%d events=%d\n",
			decoded, ch.Accuracy(), sys.Now(), sys.TamperDetections(), rec.Total())
		if err := rec.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		bin, err := rec.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(bin)
		return buf.Bytes()
	}

	first := run(0xC0FFEE)
	second := run(0xC0FFEE)
	if !bytes.Equal(first, second) {
		max := len(first)
		if len(second) < max {
			max = len(second)
		}
		at := max
		for i := 0; i < max; i++ {
			if first[i] != second[i] {
				at = i
				break
			}
		}
		t.Fatalf("two runs with one seed diverge (lengths %d vs %d, first diff at byte %d): determinism contract broken",
			len(first), len(second), at)
	}
}
