package metaleak

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"metaleak/internal/experiments"
)

// TestCovertChannelDeterminism is the dynamic guard behind what
// cmd/metalint enforces statically: one seed, one result. It runs a
// small MetaLeak-T covert-channel experiment twice with the same seed
// and requires the two runs to be byte-identical — the decoded message,
// the final cycle count, the tamper counter, and the full access trace
// in both CSV and binary form. Any wall-clock dependence, unseeded
// randomness, or map-order effect in a simulation path shows up here as
// a diff.
func TestCovertChannelDeterminism(t *testing.T) {
	run := func(seed uint64) []byte {
		dp := ConfigSCT()
		dp.Seed = seed
		sys := NewSystem(dp)
		rec := NewTraceRecorder(1 << 14)
		rec.Attach(sys.System)

		trojan := NewAttacker(sys, 0, false)
		spy := NewAttacker(sys, 1, false)
		ch, err := NewCovertT(trojan, spy, 0)
		if err != nil {
			t.Fatal(err)
		}
		decoded := ch.SendString("OK")

		var buf bytes.Buffer
		fmt.Fprintf(&buf, "decoded=%q accuracy=%v now=%d tampered=%d events=%d\n",
			decoded, ch.Accuracy(), sys.Now(), sys.TamperDetections(), rec.Total())
		if err := rec.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		bin, err := rec.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(bin)
		return buf.Bytes()
	}

	first := run(0xC0FFEE)
	second := run(0xC0FFEE)
	requireIdentical(t, first, second)
}

// requireIdentical fails with the position of the first diverging byte.
func requireIdentical(t *testing.T, first, second []byte) {
	t.Helper()
	if bytes.Equal(first, second) {
		return
	}
	max := len(first)
	if len(second) < max {
		max = len(second)
	}
	at := max
	for i := 0; i < max; i++ {
		if first[i] != second[i] {
			at = i
			break
		}
	}
	t.Fatalf("two runs with one seed diverge (lengths %d vs %d, first diff at byte %d): determinism contract broken",
		len(first), len(second), at)
}

// TestCounterOverflowDeterminism extends the dynamic guard to the
// MetaLeak-C (counter-overflow) channel: the mPreset/mOverflow machinery
// exercises the counter and re-encryption paths the MetaLeak-T test
// never touches, and those paths must be just as seed-deterministic.
func TestCounterOverflowDeterminism(t *testing.T) {
	run := func(seed uint64) []byte {
		dp := ConfigSCT()
		dp.Seed = seed
		dp.FastCrypto = true // each symbol costs ~128 saturating writes
		sys := NewSystem(dp)
		trojan := NewAttacker(sys, 0, false)
		spy := NewAttacker(sys, 1, false)
		ch, err := NewCovertC(trojan, spy, PageID(1<<13), 0)
		if err != nil {
			t.Fatal(err)
		}
		sent := []int{3, 0, ch.MaxSymbol(), 42, 7, 1}
		got, err := ch.Send(sent)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "decoded=%v accuracy=%v trace=%v now=%d tampered=%d\n",
			got, ch.Accuracy(), ch.Trace, sys.Now(), sys.TamperDetections())
		return buf.Bytes()
	}
	requireIdentical(t, run(0xBEEF), run(0xBEEF))
}

// TestDefenseConfigDeterminism runs the dynamic guard on a defence
// configuration — the MIRAGE-randomized metadata cache with a
// volume-based monitor — whose skewed-placement and flooding code paths
// draw far more from the seeded RNGs than the baseline design.
func TestDefenseConfigDeterminism(t *testing.T) {
	run := func(seed uint64) []byte {
		dp := ConfigSCT()
		dp.Seed = seed
		dp.RandomizedMeta = true
		dp.SecurePages = 1 << 14
		dp.MetaKB = 16
		dp.FastCrypto = true
		sys := NewSystem(dp)
		victimPage := sys.AllocPage(1)
		attacker := NewAttacker(sys, 0, false)
		vm, err := attacker.NewVolumeMonitor(victimPage, 0, 800)
		if err != nil {
			t.Fatal(err)
		}
		vm.Calibrate(10)
		correct := 0
		for i := 0; i < 20; i++ {
			vm.Evict()
			want := i%2 == 0
			if want {
				sys.Flush(1, victimPage.Block(0))
				sys.Touch(1, victimPage.Block(0))
			}
			got, lat := vm.Reload()
			if got == want {
				correct++
			}
			_ = lat
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "correct=%d now=%d\n", correct, sys.Now())
		return buf.Bytes()
	}
	requireIdentical(t, run(0xD1CE), run(0xD1CE))
}

// TestParallelRunDeterminism asserts the spec/trial/merge harness'
// central contract end to end: running an experiment with four workers
// produces byte-for-byte the output of the sequential run. Fig. 18 is
// the most trial-rich spec in the registry, so it exercises real
// out-of-order completion under -race.
func TestParallelRunDeterminism(t *testing.T) {
	o := experiments.Options{
		Samples: 120, Bits: 24, Symbols: 4, ImageSize: 16,
		ExpBits: 24, PrimeBits: 32, Trials: 3, Seed: 41,
	}
	marshal := func(workers int) []byte {
		res, err := experiments.Run(context.Background(), "fig18", o, workers)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	requireIdentical(t, marshal(1), marshal(4))
}
