package metaleak

import (
	"io"

	"metaleak/internal/arch"
	"metaleak/internal/jpeg"
	"metaleak/internal/mpi"
	"metaleak/internal/reconstruct"
	"metaleak/internal/victim"
)

// Attacker post-processing, re-exported from internal/reconstruct.

// ImageFromTrace rebuilds an image from a leaked zero/non-zero AC
// coefficient trace (the attacker's local pipeline of §VIII-A1).
func ImageFromTrace(nonZero []bool, w, h, quality int) *Image {
	return reconstruct.ImageFromTrace(nonZero, w, h, quality)
}

// OracleImage renders the ground-truth reconstruction for a victim trace.
func OracleImage(tr *CoefTrace) *Image { return reconstruct.OracleImage(tr) }

// TraceAccuracy is the paper's stealing accuracy of a recovered
// coefficient trace against the oracle.
func TraceAccuracy(got, oracle []bool) float64 {
	return reconstruct.TraceAccuracy(got, oracle)
}

// OpAccuracy scores a recovered operation trace against the oracle's.
func OpAccuracy(got, oracle []Op) float64 {
	return reconstruct.OpAccuracy([]victim.Op(got), []victim.Op(oracle))
}

// ExponentFromOps decodes a square-and-multiply trace into exponent bits.
func ExponentFromOps(ops []Op) []uint {
	return reconstruct.ExponentFromOps(ops)
}

// BitsOfExponent returns an exponent's bits MSB-first.
func BitsOfExponent(e Int) []uint { return reconstruct.BitsOfExponent(e) }

// BitAccuracy scores recovered bits positionally against the true ones.
func BitAccuracy(got, want []uint) float64 { return reconstruct.BitAccuracy(got, want) }

// AlignedAccuracy scores recovered bits with edit-distance alignment.
func AlignedAccuracy(got, want []uint) float64 { return reconstruct.AlignedAccuracy(got, want) }

// PixelSimilarity reports a [0,1] similarity between two images.
func PixelSimilarity(a, b *Image) float64 { return reconstruct.PixelSimilarity(a, b) }

// NewInt returns an Int with the given value (mpi substrate).
func NewInt(v uint64) Int { return mpi.New(v) }

// IntFromHex parses a hexadecimal Int; it panics on invalid input.
func IntFromHex(s string) Int { return mpi.FromHex(s) }

// RandomPrime generates a probable prime of the given bit length using a
// deterministic seeded generator.
func RandomPrime(seed uint64, bits int) Int {
	return mpi.RandomPrime(arch.NewRNG(seed), bits)
}

// ReadPGM parses a binary PGM (P5) image.
func ReadPGM(r io.Reader) (*Image, error) { return jpeg.ReadPGM(r) }

// WritePGM serializes an image as binary PGM (P5).
func WritePGM(w io.Writer, im *Image) error { return jpeg.WritePGM(w, im) }

// WriteJPEG compresses the image at the given quality and writes a real
// baseline JFIF file.
func WriteJPEG(w io.Writer, im *Image, quality int) error {
	return (&jpeg.Encoder{Quality: quality}).EncodeFile(w, im)
}

// ReadJPEG decodes a JFIF file written by WriteJPEG.
func ReadJPEG(r io.Reader) (*Image, error) { return jpeg.DecodeFile(r) }

// ImageRGB is an 8-bit RGB image (the color-codec substrate).
type ImageRGB = jpeg.ImageRGB

// SyntheticRGB generates a deterministic color test pattern.
func SyntheticRGB(kind string, w, h int) (*ImageRGB, error) {
	return jpeg.SyntheticRGB(jpeg.SyntheticKind(kind), w, h)
}

// WriteColorJPEG writes a baseline YCbCr 4:4:4 JFIF file.
func WriteColorJPEG(w io.Writer, im *ImageRGB, quality int) error {
	return jpeg.EncodeColorFile(w, im, quality)
}

// ReadColorJPEG decodes a JFIF file written by WriteColorJPEG.
func ReadColorJPEG(r io.Reader) (*ImageRGB, error) { return jpeg.DecodeColorFile(r) }
