package metaleak

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md §3 maps each to its experiment). Benchmarks print
// the regenerated rows once (the figure payload) and then time repeated
// runs; go test -bench=. -benchmem at the repo root reproduces the whole
// evaluation.

import (
	"context"
	"runtime"
	"testing"

	"metaleak/internal/experiments"
)

// benchOpts keeps benchmark iterations affordable while still exercising
// the full pipelines.
func benchOpts() experiments.Options {
	o := experiments.Default()
	o.Samples = 400
	o.Bits = 60
	o.Symbols = 12
	o.ImageSize = 24
	o.ExpBits = 64
	o.PrimeBits = 64
	o.Trials = 10
	return o
}

// runExperiment prints the result once, then re-runs per benchmark
// iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	if _, ok := experiments.Registry[id]; !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	ctx := context.Background()
	o := benchOpts()
	res, err := experiments.Run(ctx, id, o, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + res.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Seed = uint64(i + 1)
		if _, err := experiments.Run(ctx, id, o, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// runAll regenerates the whole evaluation at the given trial
// parallelism; BenchmarkRunAllSequential vs BenchmarkRunAllParallel is
// the `make bench` speedup measurement for the sweep engine.
func runAll(b *testing.B, workers int) {
	b.Helper()
	ctx := context.Background()
	o := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Seed = uint64(i + 1)
		for _, id := range experiments.IDs() {
			if _, err := experiments.Run(ctx, id, o, workers); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRunAllSequential runs every experiment with one worker.
func BenchmarkRunAllSequential(b *testing.B) { runAll(b, 1) }

// BenchmarkRunAllParallel runs every experiment with GOMAXPROCS workers.
func BenchmarkRunAllParallel(b *testing.B) { runAll(b, runtime.GOMAXPROCS(0)) }

// BenchmarkTable1Config regenerates Table I.
func BenchmarkTable1Config(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig6AccessPathLatency regenerates Fig. 6 (read latency across
// the four metadata access paths, simulated SCT and HT designs).
func BenchmarkFig6AccessPathLatency(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7SGXLatency regenerates Fig. 7 (access-path latencies on
// the SGX/SIT calibration).
func BenchmarkFig7SGXLatency(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8OverflowLatency regenerates Fig. 8 (read latency bands
// with and without tree counter overflow).
func BenchmarkFig8OverflowLatency(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig11CovertT regenerates Fig. 11 (MetaLeak-T covert channel
// accuracy on SCT and SGX).
func BenchmarkFig11CovertT(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12LevelSweep regenerates Fig. 12 (mEvict+mReload interval
// and coverage per exploited tree level).
func BenchmarkFig12LevelSweep(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig14CovertC regenerates Fig. 14 (MetaLeak-C covert channel).
func BenchmarkFig14CovertC(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15ImageLeak regenerates Fig. 15 (libjpeg image
// reconstruction with MetaLeak-T).
func BenchmarkFig15ImageLeak(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig15CWriteLeak regenerates the §VIII-A2 companion result
// (zero-coefficient recovery with MetaLeak-C).
func BenchmarkFig15CWriteLeak(b *testing.B) { runExperiment(b, "fig15c") }

// BenchmarkFig16RSALeak regenerates Fig. 16 (RSA exponent recovery).
func BenchmarkFig16RSALeak(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17KeyLoadLeak regenerates Fig. 17 (mbedTLS shift/sub trace
// recovery).
func BenchmarkFig17KeyLoadLeak(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig18Mirage regenerates Fig. 18 (eviction accuracy under the
// MIRAGE randomized cache).
func BenchmarkFig18Mirage(b *testing.B) { runExperiment(b, "fig18") }

// BenchmarkAblationCounterSchemes compares GC/MoC/SC overflow behaviour
// (the §IV-A design space).
func BenchmarkAblationCounterSchemes(b *testing.B) { runExperiment(b, "ablctr") }

// BenchmarkAblationTrees compares HT/SCT/SIT verification latency and the
// existence of the overflow channel (§IV-C design space).
func BenchmarkAblationTrees(b *testing.B) { runExperiment(b, "abltree") }

// BenchmarkAblationMetaCache sweeps the metadata cache size (§IX-C
// discussion).
func BenchmarkAblationMetaCache(b *testing.B) { runExperiment(b, "ablmeta") }

// ---------------------------------------------------------------------------
// Substrate microbenchmarks: the cost drivers behind the experiments.
// ---------------------------------------------------------------------------

// BenchmarkSecureRead measures one full secure-memory read (path 2).
func BenchmarkSecureRead(b *testing.B) {
	sys := NewSystem(ConfigSCT())
	p := sys.AllocPage(0)
	blk := p.Block(0)
	sys.Read(0, blk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Flush(0, blk)
		sys.Read(0, blk)
	}
}

// BenchmarkSecureWrite measures one write-through (counter increment +
// encrypt + MAC).
func BenchmarkSecureWrite(b *testing.B) {
	sys := NewSystem(ConfigSCT())
	p := sys.AllocPage(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.WriteThrough(0, p.Block(i%64), [64]byte{byte(i)})
	}
}

// BenchmarkMEvictReloadRound measures one Monitor round (the Fig. 12 L0
// interval in host time).
func BenchmarkMEvictReloadRound(b *testing.B) {
	sys := NewSystem(ConfigSCT())
	a := NewAttacker(sys, 0, false)
	vic := sys.AllocPage(1)
	m, err := a.NewMonitor(vic, 0)
	if err != nil {
		b.Fatal(err)
	}
	m.Calibrate(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Evict()
		m.Reload()
	}
}

// BenchmarkCounterBump measures one MetaLeak-C bump.
func BenchmarkCounterBump(b *testing.B) {
	dp := ConfigSCT()
	dp.FastCrypto = true
	sys := NewSystem(dp)
	a := NewAttacker(sys, 0, false)
	cm, err := a.NewCounterMonitor(PageID(1<<12), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Bump()
	}
}

// BenchmarkAblationSecureOverhead compares secure designs to the
// unprotected baseline.
func BenchmarkAblationSecureOverhead(b *testing.B) { runExperiment(b, "ablsec") }

// BenchmarkDefenseIsolation evaluates the §IX-C per-domain-tree defence.
func BenchmarkDefenseIsolation(b *testing.B) { runExperiment(b, "defiso") }

// BenchmarkDefenseRandomizedMeta deploys MIRAGE as the metadata cache and
// contrasts conflict-based vs volume-based mEvict (§IX-B).
func BenchmarkDefenseRandomizedMeta(b *testing.B) { runExperiment(b, "defrand") }

// BenchmarkAblationMinorWidth sweeps the split-counter minor width.
func BenchmarkAblationMinorWidth(b *testing.B) { runExperiment(b, "ablminor") }

// BenchmarkDefenseLadder contrasts square-and-multiply with the
// Montgomery-ladder victim under the same attack.
func BenchmarkDefenseLadder(b *testing.B) { runExperiment(b, "defladder") }

// BenchmarkAblationNoise sweeps background traffic intensity.
func BenchmarkAblationNoise(b *testing.B) { runExperiment(b, "ablnoise") }
