// Package sim assembles the simulated machine: cores with private caches,
// a shared LLC, and the secure memory controller of package secmem, plus
// the page allocator and the deterministic background-noise generator.
//
// The cache hierarchy is exclusive (a block lives in exactly one of L1, L2,
// L3, or memory), which keeps write-back semantics exact with a single copy
// of every line. The threat model (§III) prohibits data sharing between
// distrusting processes, and the simulator enforces it: a page has one
// owner and only the owner's core may touch it, so no cross-core coherence
// is needed — exactly the regime in which MetaLeak operates.
//
// All time is simulated: the System owns a global cycle clock advanced by
// every access. TimedRead is the rdtscp-wrapped load of the attacker.
package sim

import (
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/cache"
	"metaleak/internal/crypto"
	"metaleak/internal/secmem"
)

// Config parameterizes the machine around the memory controller.
type Config struct {
	Cores int
	L1    cache.Config
	L2    cache.Config
	L3    cache.Config

	// SecurePages bounds the allocatable secure region (it must match the
	// tree's counter-block coverage; the facade enforces this).
	SecurePages int

	// DomainPages, when non-zero, partitions the region into fixed
	// per-core domains of this many pages (the §IX-C isolation defence):
	// core c may only own frames in [c*DomainPages, (c+1)*DomainPages).
	DomainPages int

	// SocketOf assigns each core to a socket (nil: all on socket 0). The
	// memory controller and secure metadata live on socket 0; cores on
	// other sockets pay CrossSocketLatency per off-core access — the
	// cross-socket setting of the paper's covert channels (§VI-A).
	SocketOf           []int
	CrossSocketLatency arch.Cycles

	// NoiseInterval injects a background-traffic burst roughly every this
	// many cycles (0 disables noise). Bursts are jittered so they cannot
	// phase-lock with attack loops. Noise runs on the last core against
	// its own pages, perturbing the shared L3, metadata cache, and DRAM.
	NoiseInterval arch.Cycles
	// NoisePages is the background process's working set.
	NoisePages int

	Seed uint64
}

// Core is one processor core with its private (exclusive) L1 and L2.
type Core struct {
	id int
	l1 *cache.Cache
	l2 *cache.Cache
}

// System is the simulated machine.
type System struct {
	cfg   Config
	now   arch.Cycles
	cores []*Core
	l3    *cache.Cache
	mc    *secmem.Controller

	// data is the architectural plaintext view of memory. The controller
	// holds only ciphertext; this map is what programs read and write.
	data map[arch.BlockID]crypto.Block
	// dirty tracks blocks whose cached copy differs from the encrypted
	// backing store.
	dirty map[arch.BlockID]bool

	alloc     allocator
	rng       *arch.RNG
	traceHook func(TraceEvent)
	accessSeq uint64
	noiseCore int
	noiseBase arch.PageID
	nextNoise arch.Cycles
	inNoise   bool
	tampered  uint64
}

// New builds a system around a pre-built secure memory controller.
func New(cfg Config, mc *secmem.Controller) *System {
	if cfg.Cores < 1 {
		panic("sim: need at least one core")
	}
	s := &System{
		cfg:   cfg,
		mc:    mc,
		l3:    cache.New(cfg.L3),
		data:  make(map[arch.BlockID]crypto.Block),
		dirty: make(map[arch.BlockID]bool),
		rng:   arch.NewRNG(cfg.Seed ^ 0x5157),
	}
	for i := 0; i < cfg.Cores; i++ {
		l1cfg, l2cfg := cfg.L1, cfg.L2
		l1cfg.Seed, l2cfg.Seed = cfg.Seed+uint64(i)*2+1, cfg.Seed+uint64(i)*2+2
		s.cores = append(s.cores, &Core{id: i, l1: cache.New(l1cfg), l2: cache.New(l2cfg)})
	}
	s.alloc.init(cfg.SecurePages)
	s.noiseCore = cfg.Cores - 1
	if cfg.NoiseInterval > 0 && cfg.NoisePages > 0 {
		s.noiseBase = s.allocRange(s.noiseCore, cfg.NoisePages)
		s.nextNoise = cfg.NoiseInterval
	}
	return s
}

// Now returns the current simulated time.
func (s *System) Now() arch.Cycles { return s.now }

// MC exposes the secure memory controller.
func (s *System) MC() *secmem.Controller { return s.mc }

// L3 exposes the shared last-level cache.
func (s *System) L3() *cache.Cache { return s.l3 }

// TamperDetections returns how many integrity violations the machine has
// flagged (the simulated machine would halt; we count instead so tests can
// assert both presence and absence).
func (s *System) TamperDetections() uint64 { return s.tampered }

// Core returns core i (diagnostics).
func (s *System) Core(i int) *Core { return s.cores[i] }

// ---------------------------------------------------------------------------
// Page allocation. Frames are handed out sequentially (the OS buddy
// allocator analogue); AllocFrame grants a *specific* frame, modelling the
// per-core free-list massaging of §VIII-A1 (unprivileged) or direct EPC
// placement control (privileged SGX attacker).
// ---------------------------------------------------------------------------

type allocator struct {
	limit int
	owner map[arch.PageID]int
}

func (a *allocator) init(limit int) {
	a.limit = limit
	a.owner = make(map[arch.PageID]int)
}

// domainRange returns the frame range core may own ([0, limit) without
// isolation).
func (s *System) domainRange(core int) (lo, hi arch.PageID) {
	if s.cfg.DomainPages == 0 {
		return 0, arch.PageID(s.alloc.limit)
	}
	lo = arch.PageID(core * s.cfg.DomainPages)
	hi = lo + arch.PageID(s.cfg.DomainPages)
	if int(hi) > s.alloc.limit {
		hi = arch.PageID(s.alloc.limit)
	}
	return lo, hi
}

// AllocPage hands the next free frame (within the core's domain, when
// isolation is on) to the owner core.
func (s *System) AllocPage(core int) arch.PageID {
	lo, hi := s.domainRange(core)
	for p := lo; p < hi; p++ {
		if _, taken := s.alloc.owner[p]; !taken {
			s.alloc.owner[p] = core
			return p
		}
	}
	panic("sim: secure region (or domain) exhausted")
}

// AllocFrame grants a specific frame (page-placement control). It reports
// an error if the frame is already owned, out of range, or — under the
// §IX-C isolation defence — outside the core's domain: not even a
// privileged attacker can place its pages in another domain's slice,
// because the per-domain trees make foreign frames unverifiable.
func (s *System) AllocFrame(core int, frame arch.PageID) error {
	if int(frame) >= s.alloc.limit {
		return fmt.Errorf("sim: frame %d outside secure region (%d pages)", frame, s.alloc.limit)
	}
	if lo, hi := s.domainRange(core); frame < lo || frame >= hi {
		return fmt.Errorf("sim: frame %d outside core %d's domain [%d,%d)", frame, core, lo, hi)
	}
	if o, taken := s.alloc.owner[frame]; taken {
		return fmt.Errorf("sim: frame %d already owned by core %d", frame, o)
	}
	s.alloc.owner[frame] = core
	return nil
}

// Owner returns the owning core of a frame (-1 if unallocated).
func (s *System) Owner(frame arch.PageID) int {
	if o, ok := s.alloc.owner[frame]; ok {
		return o
	}
	return -1
}

func (s *System) allocRange(core, n int) arch.PageID {
	first := s.AllocPage(core)
	for i := 1; i < n; i++ {
		s.AllocPage(core)
	}
	return first
}

// checkOwner panics on a cross-domain data access — the regime the threat
// model forbids, so hitting this is a bug in attack or victim code.
func (s *System) checkOwner(core int, b arch.BlockID) {
	if o, ok := s.alloc.owner[b.Page()]; !ok || o != core {
		panic(fmt.Sprintf("sim: core %d touched page %d owned by %d", core, b.Page(), s.Owner(b.Page())))
	}
}

// SecurePages returns the size of the allocatable secure region in pages.
func (s *System) SecurePages() int { return s.cfg.SecurePages }

// TraceEvent describes one demand access, delivered to the trace hook as
// it completes. Hooks must not touch the system re-entrantly.
type TraceEvent struct {
	Seq        uint64
	Now        arch.Cycles // completion time
	Core       int
	Block      arch.BlockID
	Write      bool
	Latency    arch.Cycles
	Path       secmem.Path
	TreeLevels int
	Overflow   bool // encryption or tree counter overflow during the access
}

// SetTraceHook installs (or, with nil, removes) a per-access observer.
func (s *System) SetTraceHook(fn func(TraceEvent)) { s.traceHook = fn }

// emitTrace reports a completed access to the hook, if any.
func (s *System) emitTrace(core int, b arch.BlockID, write bool, res AccessResult) {
	if s.traceHook == nil {
		return
	}
	s.traceHook(TraceEvent{
		Seq:        s.accessSeq,
		Now:        s.now,
		Core:       core,
		Block:      b,
		Write:      write,
		Latency:    res.Latency,
		Path:       res.Report.Path,
		TreeLevels: res.Report.TreeLevelsLoaded,
		Overflow:   res.Report.Overflow || res.Report.TreeOverflow,
	})
}

// remotePenalty returns the interconnect cost a core pays to reach the
// shared LLC and memory controller on socket 0.
func (s *System) remotePenalty(core int) arch.Cycles {
	if s.cfg.SocketOf == nil || core >= len(s.cfg.SocketOf) || s.cfg.SocketOf[core] == 0 {
		return 0
	}
	return s.cfg.CrossSocketLatency
}
