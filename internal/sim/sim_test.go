package sim

import (
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/cache"
	"metaleak/internal/crypto"
	"metaleak/internal/ctr"
	"metaleak/internal/dram"
	"metaleak/internal/itree"
	"metaleak/internal/secmem"
)

func newSys(t *testing.T, noiseInterval arch.Cycles) *System {
	t.Helper()
	engCfg := crypto.Config{AESLatency: 20, HashLatency: 12}
	mc := secmem.New(secmem.Config{
		DRAM:          dram.DefaultConfig(),
		Meta:          cache.Config{Name: "meta", SizeBytes: 64 * 1024, Ways: 8, HitLatency: 2},
		Engine:        engCfg,
		QueueDelay:    10,
		MACLatency:    30,
		TreeStepDelay: 30,
	}, ctr.NewSC(ctr.SCConfig{}), itree.NewVTree(itree.VTreeConfig{
		Name: "SCT", Arities: []int{32, 16}, MinorBits: 7, CounterBlocks: 1 << 12,
	}, crypto.New(engCfg)))
	return New(Config{
		Cores:         2,
		L1:            cache.Config{Name: "L1", SizeBytes: 4 * 1024, Ways: 2, HitLatency: 1},
		L2:            cache.Config{Name: "L2", SizeBytes: 16 * 1024, Ways: 4, HitLatency: 10},
		L3:            cache.Config{Name: "L3", SizeBytes: 64 * 1024, Ways: 8, HitLatency: 29},
		SecurePages:   1 << 12,
		NoiseInterval: noiseInterval,
		NoisePages:    8,
		Seed:          1,
	}, mc)
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := newSys(t, 0)
	p := s.AllocPage(0)
	b := p.Block(0)
	var data crypto.Block
	copy(data[:], "hello metadata world")
	s.Write(0, b, data)
	got, _ := s.Read(0, b)
	if got != data {
		t.Fatal("cached round trip failed")
	}
	s.Flush(0, b)
	got, res := s.Read(0, b)
	if got != data {
		t.Fatal("post-flush round trip failed")
	}
	if res.Report.Path == secmem.PathCacheHit {
		t.Fatal("post-flush read did not reach the controller")
	}
}

func TestByteAccessors(t *testing.T) {
	s := newSys(t, 0)
	p := s.AllocPage(0)
	a := p.Addr() + 100
	s.StoreByte(0, a, 0xAB)
	v, _ := s.LoadByte(0, a)
	if v != 0xAB {
		t.Fatalf("byte = %#x", v)
	}
	// Neighbouring byte untouched.
	v2, _ := s.LoadByte(0, a+1)
	if v2 != 0 {
		t.Fatalf("neighbour byte = %#x", v2)
	}
}

func TestExclusiveHierarchySingleCopy(t *testing.T) {
	s := newSys(t, 0)
	p := s.AllocPage(0)
	b := p.Block(0)
	s.Read(0, b)
	c := s.Core(0)
	inL1 := c.l1.Contains(b)
	inL2 := c.l2.Contains(b)
	inL3 := s.l3.Contains(b)
	count := 0
	for _, present := range []bool{inL1, inL2, inL3} {
		if present {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("block present in %d levels, want exactly 1", count)
	}
	if !inL1 {
		t.Fatal("fresh fill not in L1")
	}
}

func TestDirtyDataSurvivesDemotionAndEviction(t *testing.T) {
	s := newSys(t, 0)
	p := s.AllocPage(0)
	b := p.Block(0)
	var data crypto.Block
	data[0] = 0x5A
	s.Write(0, b, data)
	// Thrash: force b all the way out of the hierarchy naturally (the
	// caches total ~84 KiB; a few hundred distinct pages of reads suffice).
	for i := 0; i < 2000; i++ {
		pg := arch.PageID(1024 + i%2048)
		if s.Owner(pg) == -1 {
			if err := s.AllocFrame(0, pg); err != nil {
				t.Fatal(err)
			}
		}
		s.Read(0, pg.Block(i%arch.BlocksPerPage))
	}
	got, _ := s.Read(0, b)
	if got != data {
		t.Fatal("dirty data lost through natural eviction")
	}
	if s.TamperDetections() != 0 {
		t.Fatal("tamper flagged on honest traffic")
	}
}

func TestLatencyBandsOrdered(t *testing.T) {
	s := newSys(t, 0)
	p := s.AllocPage(0)
	b := p.Block(0)
	cold := s.TimedRead(0, b)
	hot := s.TimedRead(0, b)
	s.Flush(0, b)
	warmMeta := s.TimedRead(0, b)
	if !(hot < warmMeta && warmMeta < cold) {
		t.Fatalf("bands not ordered: hot=%d warmMeta=%d cold=%d", hot, warmMeta, cold)
	}
}

func TestOwnershipGuardPanics(t *testing.T) {
	s := newSys(t, 0)
	p := s.AllocPage(0) // owned by core 0
	defer func() {
		if recover() == nil {
			t.Fatal("cross-domain access did not panic")
		}
	}()
	s.Read(1, p.Block(0))
}

func TestAllocFrameConflicts(t *testing.T) {
	s := newSys(t, 0)
	if err := s.AllocFrame(0, 42); err != nil {
		t.Fatal(err)
	}
	if err := s.AllocFrame(1, 42); err == nil {
		t.Fatal("double allocation allowed")
	}
	if err := s.AllocFrame(0, arch.PageID(s.SecurePages())); err == nil {
		t.Fatal("out-of-range frame allowed")
	}
	if s.Owner(42) != 0 || s.Owner(43) != -1 {
		t.Fatal("ownership bookkeeping wrong")
	}
}

func TestWriteThroughCarriesMCReport(t *testing.T) {
	s := newSys(t, 0)
	p := s.AllocPage(0)
	res := s.WriteThrough(0, p.Block(0), crypto.Block{1})
	if res.Report.Path == secmem.PathCacheHit {
		t.Fatal("write-through did not surface the controller report")
	}
	if s.MC().Stats().Writes == 0 {
		t.Fatal("no controller write recorded")
	}
}

func TestWriteThroughSurfacesOverflow(t *testing.T) {
	s := newSys(t, 0)
	p := s.AllocPage(0)
	b := p.Block(0)
	sawOverflow := false
	for i := 0; i < 130; i++ {
		res := s.WriteThrough(0, b, crypto.Block{byte(i)})
		if res.Report.Overflow {
			sawOverflow = true
			if res.Report.Reencrypted == 0 {
				t.Fatal("overflow without re-encryption")
			}
		}
	}
	if !sawOverflow {
		t.Fatal("no encryption counter overflow in 130 write-throughs")
	}
}

func TestNoiseProcessRuns(t *testing.T) {
	s := newSys(t, 500)
	p := s.AllocPage(0)
	for i := 0; i < 200; i++ {
		s.Flush(0, p.Block(i%64))
		s.Read(0, p.Block(i%64))
	}
	// Noise allocated its pages to the last core and must have issued
	// traffic by now.
	if s.Owner(s.noiseBase) != s.noiseCore {
		t.Fatal("noise pages not allocated")
	}
	if s.nextNoise == 500 {
		t.Fatal("noise timer never advanced")
	}
}

func TestIdleAdvancesClock(t *testing.T) {
	s := newSys(t, 0)
	before := s.Now()
	s.Idle(1234)
	if s.Now() != before+1234 {
		t.Fatal("Idle did not advance the clock")
	}
}

func TestFlushPageWritesBackAll(t *testing.T) {
	s := newSys(t, 0)
	p := s.AllocPage(0)
	for i := 0; i < arch.BlocksPerPage; i++ {
		s.Write(0, p.Block(i), crypto.Block{byte(i)})
	}
	writesBefore := s.MC().Stats().Writes
	s.FlushPage(0, p)
	if got := s.MC().Stats().Writes - writesBefore; got != arch.BlocksPerPage {
		t.Fatalf("%d controller writes after page flush, want %d", got, arch.BlocksPerPage)
	}
}

func TestCrossSocketPenalty(t *testing.T) {
	mkSys := func(socketOf []int) *System {
		engCfg := crypto.Config{AESLatency: 20, HashLatency: 12}
		mc := secmem.New(secmem.Config{
			DRAM:          dram.DefaultConfig(),
			Meta:          cache.Config{Name: "meta", SizeBytes: 64 * 1024, Ways: 8, HitLatency: 2},
			Engine:        engCfg,
			QueueDelay:    10,
			MACLatency:    30,
			TreeStepDelay: 30,
		}, ctr.NewSC(ctr.SCConfig{}), itree.NewVTree(itree.VTreeConfig{
			Name: "SCT", Arities: []int{32, 16}, MinorBits: 7, CounterBlocks: 1 << 12,
		}, crypto.New(engCfg)))
		return New(Config{
			Cores:              2,
			L1:                 cache.Config{Name: "L1", SizeBytes: 4 * 1024, Ways: 2, HitLatency: 1},
			L2:                 cache.Config{Name: "L2", SizeBytes: 16 * 1024, Ways: 4, HitLatency: 10},
			L3:                 cache.Config{Name: "L3", SizeBytes: 64 * 1024, Ways: 8, HitLatency: 29},
			SecurePages:        1 << 12,
			SocketOf:           socketOf,
			CrossSocketLatency: 120,
			Seed:               5,
		}, mc)
	}
	local := mkSys(nil)
	remote := mkSys([]int{0, 1})
	pl := local.AllocPage(1)
	pr := remote.AllocPage(1)
	latLocal := local.TimedRead(1, pl.Block(0))
	latRemote := remote.TimedRead(1, pr.Block(0))
	if latRemote != latLocal+120 {
		t.Fatalf("cross-socket read %d, local %d (want +120)", latRemote, latLocal)
	}
	// L1 hits pay no interconnect cost.
	if h := remote.TimedRead(1, pr.Block(0)); h != 1 {
		t.Fatalf("remote L1 hit cost %d", h)
	}
}
