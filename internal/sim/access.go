package sim

import (
	"metaleak/internal/arch"
	"metaleak/internal/cache"
	"metaleak/internal/crypto"
	"metaleak/internal/secmem"
)

// AccessResult describes one demand access from a core's point of view.
type AccessResult struct {
	Latency arch.Cycles
	Report  secmem.Report // Path == PathCacheHit for on-chip hits
}

// access walks the exclusive hierarchy for the block. On a full miss the
// secure memory controller services the fill and its plaintext is compared
// against the architectural view (a mismatch would mean the functional
// encryption layer is broken — asserted in tests via TamperDetections).
func (s *System) access(core int, b arch.BlockID, write bool) (result AccessResult) {
	s.checkOwner(core, b)
	s.maybeNoise(core)
	s.accessSeq++
	defer func() { s.emitTrace(core, b, write, result) }()
	c := s.cores[core]
	var lat arch.Cycles

	lat += c.l1.HitLatency()
	if c.l1.Access(b, write) {
		s.now += lat
		return AccessResult{Latency: lat, Report: secmem.Report{Path: secmem.PathCacheHit, Latency: lat}}
	}
	lat += c.l2.HitLatency()
	if c.l2.Access(b, false) {
		// Exclusive hierarchy: promote to L1, demoting the L1 victim here.
		wasDirty := s.removeLine(c.l2, b)
		s.fillL1(c, b, wasDirty || write)
		s.now += lat
		return AccessResult{Latency: lat, Report: secmem.Report{Path: secmem.PathCacheHit, Latency: lat}}
	}
	// Leaving the core's private caches: remote-socket cores pay the
	// interconnect hop to reach the shared LLC / memory controller.
	lat += s.remotePenalty(core)
	lat += s.l3.HitLatency()
	if s.l3.Access(b, false) {
		wasDirty := s.removeLine(s.l3, b)
		s.fillL1(c, b, wasDirty || write)
		s.now += lat
		return AccessResult{Latency: lat, Report: secmem.Report{Path: secmem.PathCacheHit, Latency: lat}}
	}

	// Full miss: the secure memory controller services it.
	plain, rep := s.mc.Read(s.now+lat, b)
	if rep.Tampered {
		s.tampered++
	}
	if _, ok := s.data[b]; !ok {
		s.data[b] = plain
	}
	lat += rep.Latency
	s.fillL1(c, b, write)
	s.now += lat
	rep.Latency = lat
	return AccessResult{Latency: lat, Report: rep}
}

// removeLine pulls a block out of a cache, returning its dirty state.
func (s *System) removeLine(c *cache.Cache, b arch.BlockID) bool {
	_, dirty := c.Invalidate(b)
	return dirty
}

// fillL1 inserts a block into L1 and demotes evictions down the exclusive
// hierarchy: L1 victim -> L2, L2 victim -> L3, L3 victim -> memory (if
// dirty, through the secure write path).
func (s *System) fillL1(c *Core, b arch.BlockID, dirty bool) {
	if dirty {
		s.dirty[b] = true
	}
	ev1, has1 := c.l1.Insert(b, dirty)
	if !has1 {
		return
	}
	ev2, has2 := c.l2.Insert(ev1.Block, ev1.Dirty)
	if !has2 {
		return
	}
	ev3, has3 := s.l3.Insert(ev2.Block, ev2.Dirty)
	if !has3 {
		return
	}
	if ev3.Dirty {
		s.writeback(ev3.Block)
	}
}

// writeback pushes a dirty block's plaintext through the secure write
// path, returning the controller's report.
func (s *System) writeback(b arch.BlockID) secmem.Report {
	rep := s.mc.Write(s.now, b, s.data[b])
	if rep.Tampered {
		s.tampered++
	}
	delete(s.dirty, b)
	s.now += rep.Latency
	return rep
}

// ---------------------------------------------------------------------------
// Public memory operations.
// ---------------------------------------------------------------------------

// Read performs a demand load of the block, returning its plaintext
// contents and the access result.
func (s *System) Read(core int, b arch.BlockID) (crypto.Block, AccessResult) {
	res := s.access(core, b, false)
	return s.data[b], res
}

// LoadByte loads one byte.
func (s *System) LoadByte(core int, a arch.Addr) (byte, AccessResult) {
	blk, res := s.Read(core, a.Block())
	return blk[a.Offset()], res
}

// TimedRead is the attacker's measured load: it returns only the latency
// (the rdtscp-wrapped access of every cache attack).
func (s *System) TimedRead(core int, b arch.BlockID) arch.Cycles {
	return s.access(core, b, false).Latency
}

// Write performs a demand store of a full block.
func (s *System) Write(core int, b arch.BlockID, data crypto.Block) AccessResult {
	res := s.access(core, b, true)
	s.data[b] = data
	return res
}

// StoreByte stores one byte.
func (s *System) StoreByte(core int, a arch.Addr, v byte) AccessResult {
	res := s.access(core, a.Block(), true)
	blk := s.data[a.Block()]
	blk[a.Offset()] = v
	s.data[a.Block()] = blk
	return res
}

// Touch performs a read without returning data (victim instruction
// fetches and marker loads).
func (s *System) Touch(core int, b arch.BlockID) AccessResult {
	return s.access(core, b, false)
}

// Flush removes the block from the entire hierarchy, writing it back
// through the secure path if dirty — the cache-cleansing operation the
// threat model (§III) grants: victims flush their own secrets' lines, and
// attackers flush their own probe lines. Cross-domain flushes are rejected
// by page ownership like any access.
func (s *System) Flush(core int, b arch.BlockID) {
	s.FlushReport(core, b)
}

// FlushReport is Flush returning the memory controller's write-back
// report (ok=false when the line was clean and no write-back happened).
func (s *System) FlushReport(core int, b arch.BlockID) (secmem.Report, bool) {
	s.checkOwner(core, b)
	c := s.cores[core]
	dirty := false
	if p, d := c.l1.Invalidate(b); p {
		dirty = dirty || d
	}
	if p, d := c.l2.Invalidate(b); p {
		dirty = dirty || d
	}
	if p, d := s.l3.Invalidate(b); p {
		dirty = dirty || d
	}
	var rep secmem.Report
	wrote := false
	if dirty || s.dirty[b] {
		rep = s.writeback(b)
		wrote = true
		// An explicit flush that reaches memory is exactly what a
		// memory-bus observer sees (the §III write-through victim
		// model), so it joins the trace stream like a demand miss. This
		// is where write-path metadata effects — counter overflow above
		// all — become trace-visible; demand accesses only ever read
		// from the controller.
		s.accessSeq++
		s.emitTrace(core, b, true, AccessResult{Latency: rep.Latency, Report: rep})
	}
	s.now += 10 // clflush-like cost
	return rep, wrote
}

// FlushPage flushes every block of a page.
func (s *System) FlushPage(core int, p arch.PageID) {
	for i := 0; i < arch.BlocksPerPage; i++ {
		s.Flush(core, p.Block(i))
	}
}

// WriteThrough performs a store and immediately flushes it to memory —
// the persistent-memory programming model (§III) in which victim writes
// reach the MC promptly. The returned result carries the memory
// controller's write report (overflow events and the write-path latency).
func (s *System) WriteThrough(core int, b arch.BlockID, data crypto.Block) AccessResult {
	res := s.Write(core, b, data)
	rep, wrote := s.FlushReport(core, b)
	if wrote {
		rep.Latency += res.Latency
		res.Report = rep
		res.Latency = rep.Latency
	}
	return res
}

// Idle advances simulated time without memory activity.
func (s *System) Idle(d arch.Cycles) { s.now += d }

// maybeNoise runs the background process when its jittered timer expires:
// a short burst of reads/writes/flushes over its own pages. Jittered
// cycle-based scheduling (rather than access counting) prevents the noise
// from phase-locking with an attack loop's regular access pattern.
func (s *System) maybeNoise(requester int) {
	if s.cfg.NoiseInterval == 0 || s.cfg.NoisePages == 0 || s.inNoise {
		return
	}
	if requester == s.noiseCore || s.now < s.nextNoise {
		return
	}
	s.inNoise = true
	burst := 1 + s.rng.Intn(4)
	for i := 0; i < burst; i++ {
		p := s.noiseBase + arch.PageID(s.rng.Intn(s.cfg.NoisePages))
		b := p.Block(s.rng.Intn(arch.BlocksPerPage))
		if s.rng.Bool(0.3) {
			s.access(s.noiseCore, b, true)
			s.data[b] = crypto.Block{}
		} else {
			s.access(s.noiseCore, b, false)
		}
		// Flush often enough that the noise generates memory (and
		// metadata) traffic, not just cache hits.
		if s.rng.Bool(0.4) {
			s.Flush(s.noiseCore, b)
		}
	}
	iv := uint64(s.cfg.NoiseInterval)
	s.nextNoise = s.now + arch.Cycles(iv/2+s.rng.Uint64()%iv)
	s.inNoise = false
}
