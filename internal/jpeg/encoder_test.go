package jpeg

import (
	"strings"
	"testing"
	"testing/quick"
)

// encodeSingle runs encode_one_block on a hand-built coefficient block
// and decodes it back.
func encodeSingle(t *testing.T, block [dctSize2]int) [dctSize2]int {
	t.Helper()
	e := &Encoder{}
	w := &bitWriter{}
	if _, err := e.encodeOneBlock(w, &block, 0); err != nil {
		t.Fatal(err)
	}
	res := &Result{W: 8, H: 8, Quality: 75, Data: w.flush()}
	blocks, err := DecodeBlocks(res)
	if err != nil {
		t.Fatal(err)
	}
	return blocks[0]
}

func TestEncodeOneBlockZRLRuns(t *testing.T) {
	// A coefficient 40 zigzag positions after the last non-zero forces two
	// ZRL (16-zero-run) symbols — the encoder branch plain images rarely hit.
	var block [dctSize2]int
	block[0] = 5
	block[jpegNaturalOrder[1]] = 3
	block[jpegNaturalOrder[42]] = -7
	if got := encodeSingle(t, block); got != block {
		t.Fatalf("ZRL round trip mismatch:\n%v\n%v", got, block)
	}
}

func TestEncodeOneBlockTrailingEOB(t *testing.T) {
	var block [dctSize2]int
	block[0] = -100
	block[jpegNaturalOrder[1]] = 1
	if got := encodeSingle(t, block); got != block {
		t.Fatal("EOB round trip mismatch")
	}
}

func TestEncodeOneBlockAllZero(t *testing.T) {
	var block [dctSize2]int
	if got := encodeSingle(t, block); got != block {
		t.Fatal("all-zero block mismatch")
	}
}

func TestEncodeOneBlockMaxMagnitudes(t *testing.T) {
	var block [dctSize2]int
	block[0] = 1023
	block[jpegNaturalOrder[1]] = -1023
	block[jpegNaturalOrder[63]] = 1023
	if got := encodeSingle(t, block); got != block {
		t.Fatal("max-magnitude round trip mismatch")
	}
}

func TestEncodeOneBlockOutOfRangeCoefficient(t *testing.T) {
	var block [dctSize2]int
	block[jpegNaturalOrder[1]] = 2000 // needs 11 bits > MAX_COEF_BITS
	e := &Encoder{}
	w := &bitWriter{}
	if _, err := e.encodeOneBlock(w, &block, 0); err == nil {
		t.Fatal("accepted out-of-range AC coefficient")
	}
}

// Property: any block of in-range coefficients round-trips exactly
// through encode_one_block + entropy decode.
func TestQuickEncodeOneBlockRoundTrip(t *testing.T) {
	f := func(raw [dctSize2]int16) bool {
		var block [dctSize2]int
		for i, v := range raw {
			block[i] = int(v) % 1024 // clamp into the 10-bit AC range
		}
		e := &Encoder{}
		w := &bitWriter{}
		if _, err := e.encodeOneBlock(w, &block, 0); err != nil {
			return false
		}
		res := &Result{W: 8, H: 8, Quality: 75, Data: w.flush()}
		blocks, err := DecodeBlocks(res)
		if err != nil {
			return false
		}
		return blocks[0] == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz-ish robustness: decoding arbitrary bytes must error or terminate,
// never panic or loop.
func TestDecodeRandomBytesNoPanic(t *testing.T) {
	f := func(junk []byte) bool {
		res := &Result{W: 16, H: 16, Quality: 75, Data: junk}
		defer func() {
			if recover() != nil {
				t.Fatal("decoder panicked on junk input")
			}
		}()
		_, _ = DecodeBlocks(res)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDCDifferenceChaining(t *testing.T) {
	// Two blocks with different DCs: the decoder must undo difference
	// coding across blocks.
	e := &Encoder{}
	w := &bitWriter{}
	var b1, b2 [dctSize2]int
	b1[0] = 100
	b2[0] = -50
	last, err := e.encodeOneBlock(w, &b1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.encodeOneBlock(w, &b2, last); err != nil {
		t.Fatal(err)
	}
	res := &Result{W: 16, H: 8, Quality: 75, Data: w.flush()}
	blocks, err := DecodeBlocks(res)
	if err != nil {
		t.Fatal(err)
	}
	if blocks[0][0] != 100 || blocks[1][0] != -50 {
		t.Fatalf("DC chain decoded as %d, %d", blocks[0][0], blocks[1][0])
	}
}

func TestEncoderErrorMentionsPackage(t *testing.T) {
	var block [dctSize2]int
	block[jpegNaturalOrder[2]] = 5000
	e := &Encoder{}
	w := &bitWriter{}
	_, err := e.encodeOneBlock(w, &block, 0)
	if err == nil || !strings.HasPrefix(err.Error(), "jpeg:") {
		t.Fatalf("error style: %v", err)
	}
}
