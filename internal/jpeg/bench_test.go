package jpeg

import "testing"

func BenchmarkFDCT(b *testing.B) {
	var in [dctSize2]float64
	for i := range in {
		in[i] = float64(i%255) - 128
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FDCT(&in)
	}
}

func BenchmarkEncode64x64(b *testing.B) {
	im, _ := Synthetic(PatternCircle, 64, 64)
	enc := &Encoder{Quality: 75}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(im); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode64x64(b *testing.B) {
	im, _ := Synthetic(PatternCircle, 64, 64)
	res, err := (&Encoder{Quality: 75}).Encode(im)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(res); err != nil {
			b.Fatal(err)
		}
	}
}
