package jpeg

import "math"

// dctSize2 is the number of samples in one block (DCTSIZE2 in libjpeg).
const dctSize2 = 64

// cosTable[u][x] = cos((2x+1)uπ/16), precomputed once.
var cosTable [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

func alpha(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

// FDCT computes the 8×8 forward type-II DCT of a (level-shifted) sample
// block, in row-major order.
func FDCT(in *[dctSize2]float64) [dctSize2]float64 {
	var tmp, out [dctSize2]float64
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += in[y*8+x] * cosTable[u][x]
			}
			tmp[y*8+u] = s * alpha(u) / 2
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * cosTable[v][y]
			}
			out[v*8+u] = s * alpha(v) / 2
		}
	}
	return out
}

// IDCT inverts FDCT.
func IDCT(in *[dctSize2]float64) [dctSize2]float64 {
	var tmp, out [dctSize2]float64
	// Columns.
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += alpha(v) * in[v*8+u] * cosTable[v][y]
			}
			tmp[y*8+u] = s / 2
		}
	}
	// Rows.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += alpha(u) * tmp[y*8+u] * cosTable[u][x]
			}
			out[y*8+x] = s / 2
		}
	}
	return out
}
