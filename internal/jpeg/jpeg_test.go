package jpeg

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDCTInverts(t *testing.T) {
	f := func(raw [dctSize2]int8) bool {
		var in [dctSize2]float64
		for i, v := range raw {
			in[i] = float64(v)
		}
		coefs := FDCT(&in)
		back := IDCT(&coefs)
		for i := range back {
			if math.Abs(back[i]-in[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDCTEnergyCompactionOnFlatBlock(t *testing.T) {
	var in [dctSize2]float64
	for i := range in {
		in[i] = 50
	}
	coefs := FDCT(&in)
	if math.Abs(coefs[0]-400) > 1e-6 { // 8 * 50
		t.Fatalf("DC = %f want 400", coefs[0])
	}
	for i := 1; i < dctSize2; i++ {
		if math.Abs(coefs[i]) > 1e-9 {
			t.Fatalf("AC[%d] = %g on flat block", i, coefs[i])
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for _, v := range jpegNaturalOrder {
		if v < 0 || v >= dctSize2 || seen[v] {
			t.Fatalf("natural order not a permutation at %d", v)
		}
		seen[v] = true
	}
	// Known anchors.
	if jpegNaturalOrder[0] != 0 || jpegNaturalOrder[1] != 1 || jpegNaturalOrder[2] != 8 {
		t.Fatal("zigzag head wrong")
	}
	if jpegNaturalOrder[63] != 63 {
		t.Fatal("zigzag tail wrong")
	}
}

func TestHuffmanTablesCanonical(t *testing.T) {
	for _, tbl := range []*huffTable{dcTable, acTable} {
		// No code is a prefix of another (canonical property).
		for s1, c1 := range tbl.code {
			for s2, c2 := range tbl.code {
				if s1 == s2 {
					continue
				}
				l1, l2 := tbl.size[s1], tbl.size[s2]
				if l1 <= l2 && c1 == c2>>(l2-l1) {
					t.Fatalf("code for %#x is a prefix of %#x", s1, s2)
				}
			}
		}
	}
	if len(acTable.code) != 162 {
		t.Fatalf("AC table has %d symbols", len(acTable.code))
	}
	if len(dcTable.code) != 12 {
		t.Fatalf("DC table has %d symbols", len(dcTable.code))
	}
}

func TestMagnitudeBitsExtendRoundTrip(t *testing.T) {
	for v := -1023; v <= 1023; v++ {
		nbits, bits := magnitudeBits(v)
		if got := extend(bits, nbits); got != v {
			t.Fatalf("extend(magnitude(%d)) = %d", v, got)
		}
	}
	if n, _ := magnitudeBits(0); n != 0 {
		t.Fatal("magnitude of 0 not 0 bits")
	}
	if n, _ := magnitudeBits(-1); n != 1 {
		t.Fatal("magnitude of -1 not 1 bit")
	}
	if n, _ := magnitudeBits(1023); n != 10 {
		t.Fatal("magnitude of 1023 not 10 bits")
	}
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	f := func(vals []uint16, lens []uint8) bool {
		w := &bitWriter{}
		var want []uint32
		var sizes []uint8
		for i, v := range vals {
			if i >= len(lens) {
				break
			}
			n := lens[i]%16 + 1
			w.write(uint32(v), n)
			want = append(want, uint32(v)&(1<<n-1))
			sizes = append(sizes, n)
		}
		r := &bitReader{buf: w.flush()}
		for i, n := range sizes {
			got, err := r.readBits(n)
			if err != nil || got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTripCoefficients(t *testing.T) {
	for _, kind := range []SyntheticKind{PatternGradient, PatternCircle, PatternStripes, PatternChecker, PatternText} {
		im, err := Synthetic(kind, 64, 48)
		if err != nil {
			t.Fatal(err)
		}
		enc := &Encoder{Quality: 75}
		res, err := enc.Encode(im)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		blocks, err := DecodeBlocks(res)
		if err != nil {
			t.Fatalf("%s: decode: %v", kind, err)
		}
		if len(blocks) != len(res.Blocks) {
			t.Fatalf("%s: %d blocks decoded, want %d", kind, len(blocks), len(res.Blocks))
		}
		for i := range blocks {
			if blocks[i] != res.Blocks[i] {
				t.Fatalf("%s: block %d coefficient mismatch", kind, i)
			}
		}
	}
}

func psnr(a, b *Image) float64 {
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func TestLossyRoundTripQuality(t *testing.T) {
	im, _ := Synthetic(PatternGradient, 64, 64)
	enc := &Encoder{Quality: 90}
	res, err := enc.Encode(im)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(res)
	if err != nil {
		t.Fatal(err)
	}
	if p := psnr(im, out); p < 30 {
		t.Fatalf("PSNR %f too low for quality 90", p)
	}
}

func TestHooksFireMatchingCoefficients(t *testing.T) {
	im, _ := Synthetic(PatternCircle, 32, 32)
	var zeros, nonzeros int
	enc := &Encoder{
		Quality: 75,
		Hooks: &Hooks{
			ZeroCoef:    func(k int) { zeros++ },
			NonzeroCoef: func(k, nbits int) { nonzeros++ },
		},
	}
	res, err := enc.Encode(im)
	if err != nil {
		t.Fatal(err)
	}
	// Count ground truth from the quantized blocks.
	wantZero, wantNonzero := 0, 0
	for _, b := range res.Blocks {
		for k := 1; k < dctSize2; k++ {
			if b[jpegNaturalOrder[k]] == 0 {
				wantZero++
			} else {
				wantNonzero++
			}
		}
	}
	if zeros != wantZero || nonzeros != wantNonzero {
		t.Fatalf("hooks: %d/%d want %d/%d", zeros, nonzeros, wantZero, wantNonzero)
	}
}

func TestASCIIRendering(t *testing.T) {
	im, _ := Synthetic(PatternChecker, 32, 32)
	s := im.ASCII(32)
	if len(s) == 0 {
		t.Fatal("empty ASCII art")
	}
}

func TestSyntheticUnknownKind(t *testing.T) {
	if _, err := Synthetic("nope", 8, 8); err == nil {
		t.Fatal("expected error")
	}
}

func TestQuantTableQualityMonotonic(t *testing.T) {
	q50 := QuantTable(50)
	q90 := QuantTable(90)
	for i := range q50 {
		if q90[i] > q50[i] {
			t.Fatalf("higher quality has coarser quantizer at %d", i)
		}
	}
	q1 := QuantTable(1)
	for i := range q1 {
		if q1[i] < 1 || q1[i] > 255 {
			t.Fatalf("quant[%d] = %d out of range", i, q1[i])
		}
	}
}

func TestPGMRoundTrip(t *testing.T) {
	im, _ := Synthetic(PatternCircle, 20, 12)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("size %dx%d", got.W, got.H)
	}
	for i := range im.Pix {
		if got.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

func TestPGMComments(t *testing.T) {
	raw := "P5 # magic\n# a comment line\n 2 # width\n2\n255\n\x01\x02\x03\x04"
	im, err := ReadPGM(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 2 || im.Pix[3] != 4 {
		t.Fatalf("parsed %dx%d %v", im.W, im.H, im.Pix)
	}
}

func TestPGMMaxvalScaling(t *testing.T) {
	raw := "P5\n1 1\n15\n\x0f" // maxval 15, pixel 15 -> 255
	im, err := ReadPGM(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if im.Pix[0] != 255 {
		t.Fatalf("scaled pixel %d", im.Pix[0])
	}
}

func TestPGMErrors(t *testing.T) {
	for _, raw := range []string{
		"P2\n1 1\n255\nx",      // ASCII PGM unsupported
		"P5\n0 1\n255\n",       // zero width
		"P5\n1 1\n70000\n\x00", // bad maxval
		"P5\n2 2\n255\n\x01",   // short data
	} {
		if _, err := ReadPGM(strings.NewReader(raw)); err == nil {
			t.Fatalf("accepted invalid PGM %q", raw)
		}
	}
}
