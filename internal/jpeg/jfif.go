package jpeg

import (
	"bytes"
	"fmt"
	"io"
)

// JFIF container support: EncodeFile wraps the entropy-coded segment in a
// standard baseline JPEG file (SOI/APP0/DQT/SOF0/DHT/SOS/EOI with 0xFF
// byte stuffing), so the victim's output is a real image any viewer
// opens; DecodeFile reads the files this package writes (single-component
// baseline with the Annex-K tables), closing the loop for tests.

// jpegMarkers used by the writer/reader.
const (
	mSOI  = 0xd8
	mEOI  = 0xd9
	mAPP0 = 0xe0
	mDQT  = 0xdb
	mSOF0 = 0xc0
	mDHT  = 0xc4
	mSOS  = 0xda
)

// EncodeFile compresses the image and writes a complete JFIF file.
func (e *Encoder) EncodeFile(w io.Writer, im *Image) error {
	res, err := e.Encode(im)
	if err != nil { //metalint:leaky out-of-model encode error propagation
		return err
	}
	return WriteJFIF(w, res)
}

// WriteJFIF serializes an encode Result as a JFIF file.
func WriteJFIF(w io.Writer, res *Result) error {
	var buf bytes.Buffer
	marker := func(m byte) { buf.Write([]byte{0xff, m}) }
	segment := func(m byte, payload []byte) {
		marker(m)
		n := len(payload) + 2
		buf.WriteByte(byte(n >> 8))
		buf.WriteByte(byte(n))
		buf.Write(payload)
	}

	marker(mSOI)
	// APP0 "JFIF" v1.1, no density, no thumbnail.
	segment(mAPP0, []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0})
	// DQT: table 0, 8-bit precision, in zigzag order.
	quant := QuantTable(res.Quality)
	dqt := make([]byte, 1+dctSize2)
	for k := 0; k < dctSize2; k++ {
		dqt[1+k] = byte(quant[jpegNaturalOrder[k]])
	}
	segment(mDQT, dqt)
	// SOF0: baseline, 8-bit, single component (id 1, 1x1 sampling, Tq 0).
	sof := []byte{
		8,
		byte(res.H >> 8), byte(res.H),
		byte(res.W >> 8), byte(res.W),
		1,
		1, 0x11, 0,
	}
	segment(mSOF0, sof)
	// DHT: DC table class 0 id 0, AC table class 1 id 0 (Annex K).
	dht := []byte{0x00}
	for _, c := range dcLumCounts {
		dht = append(dht, byte(c))
	}
	dht = append(dht, dcLumValues...)
	dht = append(dht, 0x10)
	for _, c := range acLumCounts {
		dht = append(dht, byte(c))
	}
	dht = append(dht, acLumValues...)
	segment(mDHT, dht)
	// SOS: one component, DC/AC table 0, full spectral range.
	segment(mSOS, []byte{1, 1, 0x00, 0, 63, 0})
	// Entropy data with byte stuffing: 0xFF -> 0xFF 0x00.
	for _, b := range res.Data { //metalint:leaky access-sequence scan length depends on the entropy-coded stream
		buf.WriteByte(b)
		if b == 0xff { //metalint:leaky access-sequence 0xFF stuffing follows the entropy-coded bytes
			buf.WriteByte(0x00)
		}
	}
	marker(mEOI)

	_, err := w.Write(buf.Bytes())
	return err
}

// DecodeFile reads a JFIF file written by this package and returns the
// decoded image. It validates the structure it depends on (baseline,
// single component, the Annex-K Huffman tables) and rejects anything else.
func DecodeFile(r io.Reader) (*Image, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 4 || data[0] != 0xff || data[1] != mSOI {
		return nil, fmt.Errorf("jpeg: missing SOI")
	}
	pos := 2
	var res Result
	var quant [dctSize2]int
	haveSOF, haveDQT := false, false
	for pos+4 <= len(data) {
		if data[pos] != 0xff {
			return nil, fmt.Errorf("jpeg: expected marker at %d", pos)
		}
		m := data[pos+1]
		if m == mEOI {
			return nil, fmt.Errorf("jpeg: EOI before SOS")
		}
		segLen := int(data[pos+2])<<8 | int(data[pos+3])
		if segLen < 2 {
			return nil, fmt.Errorf("jpeg: segment %#x with invalid length %d", m, segLen)
		}
		if pos+2+segLen > len(data) {
			return nil, fmt.Errorf("jpeg: truncated segment %#x", m)
		}
		payload := data[pos+4 : pos+2+segLen]
		switch m {
		case mAPP0:
			// informational only
		case mDQT:
			if len(payload) != 1+dctSize2 || payload[0] != 0 {
				return nil, fmt.Errorf("jpeg: unsupported DQT")
			}
			for k := 0; k < dctSize2; k++ {
				quant[jpegNaturalOrder[k]] = int(payload[1+k])
			}
			haveDQT = true
		case mSOF0:
			if len(payload) != 9 || payload[0] != 8 || payload[5] != 1 {
				return nil, fmt.Errorf("jpeg: unsupported SOF0 (baseline single-component only)")
			}
			res.H = int(payload[1])<<8 | int(payload[2])
			res.W = int(payload[3])<<8 | int(payload[4])
			if res.W <= 0 || res.H <= 0 || res.W*res.H > 1<<24 {
				return nil, fmt.Errorf("jpeg: unreasonable dimensions %dx%d", res.W, res.H)
			}
			haveSOF = true
		case mDHT:
			// The reader relies on the Annex-K tables; verify the file
			// carries exactly them.
			want := []byte{0x00}
			for _, c := range dcLumCounts {
				want = append(want, byte(c))
			}
			want = append(want, dcLumValues...)
			want = append(want, 0x10)
			for _, c := range acLumCounts {
				want = append(want, byte(c))
			}
			want = append(want, acLumValues...)
			if !bytes.Equal(payload, want) {
				return nil, fmt.Errorf("jpeg: non-standard Huffman tables")
			}
		case mSOS:
			if !haveSOF || !haveDQT {
				return nil, fmt.Errorf("jpeg: SOS before SOF/DQT")
			}
			// De-stuff the entropy data up to EOI.
			body := data[pos+2+segLen:]
			var ecs []byte
			for i := 0; i < len(body); i++ {
				if body[i] != 0xff {
					ecs = append(ecs, body[i])
					continue
				}
				if i+1 < len(body) && body[i+1] == 0x00 {
					ecs = append(ecs, 0xff)
					i++
					continue
				}
				if i+1 >= len(body) {
					return nil, fmt.Errorf("jpeg: scan ends in a bare 0xFF")
				}
				if body[i+1] == mEOI {
					res.Data = ecs
					return decodeWithQuant(&res, &quant)
				}
				return nil, fmt.Errorf("jpeg: unexpected marker %#x in scan", body[i+1])
			}
			return nil, fmt.Errorf("jpeg: missing EOI")
		default:
			return nil, fmt.Errorf("jpeg: unsupported marker %#x", m)
		}
		pos += 2 + segLen
	}
	return nil, fmt.Errorf("jpeg: no SOS segment")
}

// decodeWithQuant entropy-decodes and renders with an explicit table
// (the file's DQT rather than a quality factor).
func decodeWithQuant(res *Result, quant *[dctSize2]int) (*Image, error) {
	res.Quality = 0 // not used below
	blocks, err := DecodeBlocks(res)
	if err != nil {
		return nil, err
	}
	im := NewImage(res.W, res.H)
	bw := (res.W + 7) / 8
	for i, block := range blocks { //metalint:leaky out-of-model decode-side render path (ground-truth tooling)
		bx, by := i%bw, i/bw
		var coefs [dctSize2]float64
		for j := 0; j < dctSize2; j++ {
			coefs[j] = float64(block[j] * quant[j])
		}
		samples := IDCT(&coefs)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v := samples[y*8+x] + 128
				if v < 0 { //metalint:leaky out-of-model decode-side render path (ground-truth tooling)
					v = 0
				}
				if v > 255 { //metalint:leaky out-of-model decode-side render path (ground-truth tooling)
					v = 255
				}
				im.Set(bx*8+x, by*8+y, uint8(v))
			}
		}
	}
	return im, nil
}
