package jpeg

import "fmt"

// huffTable is a canonical Huffman code table built from an Annex-C
// (counts, values) specification.
type huffTable struct {
	code map[byte]uint32 // symbol -> code (MSB-aligned within size bits)
	size map[byte]uint8  // symbol -> code length in bits
	// decode lookup: (length, code) -> symbol
	dec map[uint32]byte // key = length<<24 | code
}

// buildHuff derives canonical codes per ITU-T T.81 Annex C.
func buildHuff(counts [16]int, values []byte) *huffTable {
	t := &huffTable{
		code: make(map[byte]uint32),
		size: make(map[byte]uint8),
		dec:  make(map[uint32]byte),
	}
	code := uint32(0)
	vi := 0
	for l := 1; l <= 16; l++ {
		for k := 0; k < counts[l-1]; k++ {
			sym := values[vi]
			vi++
			t.code[sym] = code
			t.size[sym] = uint8(l)
			t.dec[uint32(l)<<24|code] = sym
			code++
		}
		code <<= 1
	}
	return t
}

var dcTable = buildHuff(dcLumCounts, dcLumValues)
var acTable = buildHuff(acLumCounts, acLumValues)

// bitWriter accumulates an entropy-coded segment MSB-first.
type bitWriter struct {
	buf  []byte
	acc  uint32
	bits uint
}

func (w *bitWriter) write(code uint32, n uint8) {
	w.acc = w.acc<<n | (code & (1<<n - 1))
	w.bits += uint(n)
	for w.bits >= 8 {
		w.bits -= 8
		w.buf = append(w.buf, byte(w.acc>>w.bits))
	}
}

// flush pads the final partial byte with 1-bits (T.81 §F.1.2.3).
func (w *bitWriter) flush() []byte {
	if w.bits > 0 {
		pad := 8 - w.bits
		w.acc = w.acc<<pad | (1<<pad - 1)
		w.buf = append(w.buf, byte(w.acc))
		w.bits = 0
	}
	return w.buf
}

// bitReader consumes an entropy-coded segment MSB-first.
type bitReader struct {
	buf  []byte
	pos  int
	acc  uint32
	bits uint
}

func (r *bitReader) readBit() (uint32, error) {
	if r.bits == 0 {
		if r.pos >= len(r.buf) { //metalint:leaky out-of-model decode-side bit reader (ground-truth tooling)
			return 0, fmt.Errorf("jpeg: bitstream exhausted")
		}
		r.acc = uint32(r.buf[r.pos])
		r.pos++
		r.bits = 8
	}
	r.bits--
	return (r.acc >> r.bits) & 1, nil
}

func (r *bitReader) readBits(n uint8) (uint32, error) {
	var v uint32
	for i := uint8(0); i < n; i++ { //metalint:leaky out-of-model decode-side bit reader (ground-truth tooling)
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// decodeSymbol walks the canonical code table bit by bit.
func (r *bitReader) decodeSymbol(t *huffTable) (byte, error) {
	var code uint32
	for l := uint32(1); l <= 16; l++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		if sym, ok := t.dec[l<<24|code]; ok { //metalint:leaky out-of-model decode-side Huffman table walk (ground-truth tooling)
			return sym, nil
		}
	}
	return 0, fmt.Errorf("jpeg: invalid Huffman code")
}

// magnitudeBits returns (nbits, appended bits) for a coefficient value
// per T.81 §F.1.2.1: nbits is the category, and negative values are coded
// as value-1 in nbits bits.
func magnitudeBits(v int) (uint8, uint32) {
	nbits := uint8(0)
	a := v
	if a < 0 { //metalint:leaky access-sequence sign branch of the coefficient being entropy-coded
		a = -a
	}
	for t := a; t > 0; t >>= 1 { //metalint:leaky trip-count magnitude loop: one iteration per significant coefficient bit
		nbits++
	}
	if v < 0 { //metalint:leaky access-sequence negative-value adjustment while entropy coding
		v--
	}
	return nbits, uint32(v) & (1<<nbits - 1)
}

// extend inverts magnitudeBits per T.81 §F.2.2.1.
func extend(v uint32, nbits uint8) int {
	if nbits == 0 { //metalint:leaky out-of-model decode-side magnitude extension (ground-truth tooling)
		return 0
	}
	if v < 1<<(nbits-1) { //metalint:leaky out-of-model decode-side magnitude extension (ground-truth tooling)
		return int(v) - (1 << nbits) + 1
	}
	return int(v)
}
