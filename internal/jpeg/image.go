// Package jpeg is a from-scratch baseline JPEG (ITU-T T.81) grayscale
// codec: forward/inverse DCT, quality-scaled quantization, zigzag
// ordering, and Annex-K Huffman entropy coding, including a bit-exact
// reimplementation of libjpeg's encode_one_block() entropy loop — the
// Listing 1 gadget whose zero/non-zero coefficient branches MetaLeak
// observes.
//
// The codec is real: Encode produces a decodable entropy stream and Decode
// inverts it (tests round-trip through both). The Hooks fire exactly where
// libjpeg touches the run-length counter r (zero coefficient) and the
// magnitude variable nbits (non-zero coefficient), letting the victim
// layer pin those two variables to distinct simulated pages.
package jpeg

import "fmt"

// Image is an 8-bit grayscale image.
type Image struct {
	W, H int
	//metalint:secret Pix -- the image content: what the secmem channel reconstructs from coefficient metadata
	Pix []uint8
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y); out-of-range coordinates clamp to the
// edge (the block padding rule used by encoders).
func (im *Image) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-range coordinates are ignored.
func (im *Image) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H { //metalint:leaky out-of-model pixel store guard; coordinates derive from data only on the decode path
		return
	}
	im.Pix[y*im.W+x] = v //metalint:leaky out-of-model pixel store guard; coordinates derive from data only on the decode path
}

// BlocksWide returns the number of 8-pixel block columns.
func (im *Image) BlocksWide() int { return (im.W + 7) / 8 }

// BlocksHigh returns the number of 8-pixel block rows.
func (im *Image) BlocksHigh() int { return (im.H + 7) / 8 }

// ASCII renders the image as character art (darker pixels → denser
// glyphs), for terminal display in examples.
func (im *Image) ASCII(cols int) string {
	if cols <= 0 || cols > im.W {
		cols = im.W
	}
	ramp := []byte(" .:-=+*#%@")
	sx := im.W / cols
	if sx < 1 {
		sx = 1
	}
	sy := sx * 2 // terminal cells are ~2x taller than wide
	out := make([]byte, 0, (im.W/sx+1)*(im.H/sy+1))
	for y := 0; y < im.H; y += sy {
		for x := 0; x < im.W; x += sx {
			// Average the cell.
			var sum, n int
			for dy := 0; dy < sy && y+dy < im.H; dy++ {
				for dx := 0; dx < sx && x+dx < im.W; dx++ {
					sum += int(im.At(x+dx, y+dy))
					n++
				}
			}
			v := sum / n
			out = append(out, ramp[(255-v)*(len(ramp)-1)/255]) //metalint:leaky out-of-model ASCII-art rendering (diagnostic display)
		}
		out = append(out, '\n')
	}
	return string(out)
}

// SyntheticKind names a generated test pattern.
type SyntheticKind string

// Synthetic image kinds used by tests, examples, and the Fig. 15
// experiment (stand-ins for the paper's input photographs).
const (
	PatternGradient SyntheticKind = "gradient"
	PatternCircle   SyntheticKind = "circle"
	PatternStripes  SyntheticKind = "stripes"
	PatternChecker  SyntheticKind = "checker"
	PatternText     SyntheticKind = "text"
)

// Synthetic generates a deterministic test image.
func Synthetic(kind SyntheticKind, w, h int) (*Image, error) {
	im := NewImage(w, h)
	switch kind {
	case PatternGradient:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				im.Set(x, y, uint8((x*255/max(1, w-1)+y*255/max(1, h-1))/2))
			}
		}
	case PatternCircle:
		cx, cy := w/2, h/2
		r2 := (min(w, h) / 3) * (min(w, h) / 3)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				d := (x-cx)*(x-cx) + (y-cy)*(y-cy)
				if d < r2 {
					im.Set(x, y, 230)
				} else {
					im.Set(x, y, 30)
				}
			}
		}
	case PatternStripes:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if (x/6)%2 == 0 {
					im.Set(x, y, 220)
				} else {
					im.Set(x, y, 40)
				}
			}
		}
	case PatternChecker:
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if (x/8+y/8)%2 == 0 {
					im.Set(x, y, 235)
				} else {
					im.Set(x, y, 20)
				}
			}
		}
	case PatternText:
		// Block letters "ML" drawn with rectangles.
		fill := func(x0, y0, x1, y1 int) {
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					im.Set(x, y, 240)
				}
			}
		}
		for i := range im.Pix { //metalint:leaky out-of-model fresh-image fill; bound is w*h, tainted only via the instance-insensitive Pix field channel
			im.Pix[i] = 25 //metalint:leaky out-of-model fresh-image fill; bound is w*h, tainted only via the instance-insensitive Pix field channel
		}
		uw := w / 10
		// M
		fill(uw, h/5, 2*uw, 4*h/5)
		fill(3*uw, h/5, 4*uw, 4*h/5)
		fill(uw, h/5, 4*uw, h/5+h/8)
		fill(2*uw+uw/2-uw/4, h/5, 2*uw+uw/2+uw/4, 3*h/5)
		// L
		fill(6*uw, h/5, 7*uw, 4*h/5)
		fill(6*uw, 4*h/5-h/8, 9*uw, 4*h/5)
	default:
		return nil, fmt.Errorf("jpeg: unknown synthetic pattern %q", kind)
	}
	return im, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
