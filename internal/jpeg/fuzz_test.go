package jpeg

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the parser-shaped surfaces. Under plain `go
// test` they run the seed corpus; `go test -fuzz=FuzzX` explores further.

func FuzzDecodeFile(f *testing.F) {
	// Seed with a valid file and a few mutations.
	im, _ := Synthetic(PatternCircle, 16, 16)
	var buf bytes.Buffer
	if err := (&Encoder{Quality: 75}).EncodeFile(&buf, im); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{0xff, 0xd8, 0xff, 0xd9})
	f.Add([]byte{})
	trunc := append([]byte{}, valid[:len(valid)/2]...)
	f.Add(trunc)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are fine. If it parses, the image must
		// have sane dimensions.
		im, err := DecodeFile(bytes.NewReader(data))
		if err == nil && (im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H) {
			t.Fatalf("parsed image with bad geometry: %dx%d", im.W, im.H)
		}
	})
}

func FuzzReadPGM(f *testing.F) {
	im, _ := Synthetic(PatternStripes, 8, 8)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("P5\n1 1\n255\nX"))
	f.Add([]byte("P5 # c\n2 2\n15\nabcd"))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := ReadPGM(bytes.NewReader(data))
		if err == nil && (im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H) {
			t.Fatalf("parsed PGM with bad geometry: %dx%d", im.W, im.H)
		}
	})
}

func FuzzEntropyDecode(f *testing.F) {
	im, _ := Synthetic(PatternChecker, 16, 16)
	res, err := (&Encoder{Quality: 60}).Encode(im)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(res.Data)
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &Result{W: 16, H: 16, Quality: 60, Data: data}
		blocks, err := DecodeBlocks(r)
		if err == nil && len(blocks) != 4 {
			t.Fatalf("decoded %d blocks for a 4-block image", len(blocks))
		}
	})
}
