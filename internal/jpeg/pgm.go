package jpeg

import (
	"bufio"
	"fmt"
	"io"
)

// WritePGM serializes the image as binary PGM (P5), the format cmd/mktrace
// emits and external tools read.
func WritePGM(w io.Writer, im *Image) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	_, err := w.Write(im.Pix)
	return err
}

// ReadPGM parses a binary PGM (P5) image, accepting the comments and
// whitespace the format allows. It lets the examples and experiments run
// the victims on user-supplied images instead of the synthetic patterns.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" {
		return nil, fmt.Errorf("jpeg: not a binary PGM (magic %q)", magic)
	}
	var dims [3]int
	for i := range dims {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(tok, "%d", &dims[i]); err != nil {
			return nil, fmt.Errorf("jpeg: bad PGM header token %q", tok)
		}
	}
	w, h, maxv := dims[0], dims[1], dims[2]
	if w <= 0 || h <= 0 || w*h > 1<<26 {
		return nil, fmt.Errorf("jpeg: unreasonable PGM dimensions %dx%d", w, h)
	}
	if maxv <= 0 || maxv > 255 {
		return nil, fmt.Errorf("jpeg: unsupported PGM maxval %d", maxv)
	}
	im := NewImage(w, h)
	if _, err := io.ReadFull(br, im.Pix); err != nil { //metalint:leaky out-of-model PGM diagnostic dump of pixel data
		return nil, fmt.Errorf("jpeg: short PGM pixel data: %w", err)
	}
	if maxv != 255 {
		for i, v := range im.Pix { //metalint:leaky out-of-model PGM diagnostic dump of pixel data
			im.Pix[i] = uint8(int(v) * 255 / maxv) //metalint:leaky out-of-model PGM diagnostic dump of pixel data
		}
	}
	return im, nil
}

// pgmToken returns the next whitespace-delimited token, skipping
// '#' comments. The final whitespace after the maxval token is consumed,
// as the format requires.
func pgmToken(br *bufio.Reader) (string, error) {
	tok := make([]byte, 0, 8)
	inComment := false
	for {
		c, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case inComment:
			if c == '\n' {
				inComment = false
			}
		case c == '#':
			inComment = true
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, c)
		}
	}
}
