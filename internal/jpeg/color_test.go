package jpeg

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestYCbCrRoundTrip(t *testing.T) {
	f := func(r, g, b uint8) bool {
		yy, cb, cr := rgbToYCbCr(r, g, b)
		r2, g2, b2 := ycbcrToRGB(yy, cb, cr)
		// Fixed-point-free float conversion is near-exact.
		return absInt(int(r)-int(r2)) <= 1 && absInt(int(g)-int(g2)) <= 1 && absInt(int(b)-int(b2)) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func psnrRGB(a, b *ImageRGB) float64 {
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func TestColorFileRoundTrip(t *testing.T) {
	for _, q := range []int{60, 85} {
		im, err := SyntheticRGB(PatternCircle, 40, 24)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeColorFile(&buf, im, q); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeColorFile(&buf)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if got.W != im.W || got.H != im.H {
			t.Fatalf("size %dx%d", got.W, got.H)
		}
		if p := psnrRGB(im, got); p < 22 {
			t.Fatalf("q=%d: PSNR %.1f", q, p)
		}
	}
}

func TestColorFileStructure(t *testing.T) {
	im, _ := SyntheticRGB(PatternStripes, 16, 16)
	var buf bytes.Buffer
	if err := EncodeColorFile(&buf, im, 75); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if b[0] != 0xff || b[1] != mSOI || b[len(b)-1] != mEOI {
		t.Fatal("missing SOI/EOI")
	}
	// Grayscale reader must reject the 3-component file.
	if _, err := DecodeFile(bytes.NewReader(b)); err == nil {
		t.Fatal("grayscale reader accepted a color file")
	}
}

func TestColorImageAccessors(t *testing.T) {
	im := NewImageRGB(4, 4)
	im.Set(1, 2, 10, 20, 30)
	r, g, b := im.At(1, 2)
	if r != 10 || g != 20 || b != 30 {
		t.Fatal("pixel round trip")
	}
	// Clamping.
	if r, _, _ := im.At(-5, 100); r != 0 {
		t.Fatal("clamped read broken")
	}
	im.Set(-1, -1, 9, 9, 9) // ignored, no panic
}

func TestChromaQuantCoarserThanLuma(t *testing.T) {
	lq, cq := QuantTable(75), ChromaQuantTable(75)
	// Chroma quantization is coarser in the high frequencies.
	if cq[63] < lq[63] {
		t.Fatalf("chroma high-freq quant %d finer than luma %d", cq[63], lq[63])
	}
	for i, v := range cq {
		if v < 1 || v > 255 {
			t.Fatalf("chroma quant[%d]=%d", i, v)
		}
	}
}

func TestDecodeColorRejectsGarbage(t *testing.T) {
	for _, raw := range [][]byte{
		{},
		{0xff, 0xd8, 0xff, 0xd9},
		{0xff, 0xd8, 0xff, 0xc0, 0x00, 0x02},
	} {
		if _, err := DecodeColorFile(bytes.NewReader(raw)); err == nil {
			t.Fatalf("garbage accepted: %x", raw)
		}
	}
}

func FuzzDecodeColorFile(f *testing.F) {
	im, _ := SyntheticRGB(PatternCircle, 16, 16)
	var buf bytes.Buffer
	if err := EncodeColorFile(&buf, im, 70); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := DecodeColorFile(bytes.NewReader(data))
		if err == nil && (im.W <= 0 || im.H <= 0 || len(im.Pix) != 3*im.W*im.H) {
			t.Fatalf("parsed color image with bad geometry: %dx%d", im.W, im.H)
		}
	})
}
