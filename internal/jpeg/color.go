package jpeg

import (
	"bytes"
	"fmt"
	"io"
	"math"
)

// Color support: YCbCr 4:4:4 baseline encoding. Each MCU carries one Y,
// one Cb and one Cr block; chroma uses the Annex-K chroma quantization
// table and (for simplicity, which the format permits) the same Annex-K
// luminance Huffman tables as Y. DecodeColorFile reads the files
// EncodeColorFile writes, closing the loop for tests.

// ImageRGB is an 8-bit RGB image (3 bytes per pixel).
type ImageRGB struct {
	W, H int
	Pix  []uint8
}

// NewImageRGB allocates a black RGB image.
func NewImageRGB(w, h int) *ImageRGB {
	return &ImageRGB{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// At returns the pixel at (x, y), clamping out-of-range coordinates.
func (im *ImageRGB) At(x, y int) (r, g, b uint8) {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y >= im.H {
		y = im.H - 1
	}
	i := 3 * (y*im.W + x)
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set writes the pixel at (x, y); out-of-range coordinates are ignored.
func (im *ImageRGB) Set(x, y int, r, g, b uint8) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	i := 3 * (y*im.W + x)
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// SyntheticRGB generates a deterministic color test pattern: the
// grayscale pattern in the green channel, with red/blue gradients.
func SyntheticRGB(kind SyntheticKind, w, h int) (*ImageRGB, error) {
	g, err := Synthetic(kind, w, h)
	if err != nil {
		return nil, err
	}
	im := NewImageRGB(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y,
				uint8(x*255/max(1, w-1)),
				g.At(x, y),
				uint8(y*255/max(1, h-1)))
		}
	}
	return im, nil
}

// rgbToYCbCr applies the JFIF conversion.
func rgbToYCbCr(r, g, b uint8) (yy, cb, cr float64) {
	rf, gf, bf := float64(r), float64(g), float64(b)
	yy = 0.299*rf + 0.587*gf + 0.114*bf
	cb = 128 - 0.168736*rf - 0.331264*gf + 0.5*bf
	cr = 128 + 0.5*rf - 0.418688*gf - 0.081312*bf
	return
}

// ycbcrToRGB inverts rgbToYCbCr with clamping.
func ycbcrToRGB(yy, cb, cr float64) (uint8, uint8, uint8) {
	r := yy + 1.402*(cr-128)
	g := yy - 0.344136*(cb-128) - 0.714136*(cr-128)
	b := yy + 1.772*(cb-128)
	clamp := func(v float64) uint8 {
		if v < 0 { //metalint:leaky access-sequence sample clamp branches on pixel-derived values on the encode path
			return 0
		}
		if v > 255 { //metalint:leaky access-sequence sample clamp branches on pixel-derived values on the encode path
			return 255
		}
		return uint8(v + 0.5)
	}
	return clamp(r), clamp(g), clamp(b)
}

// stdChromaQuant is the Annex-K chrominance quantization table.
var stdChromaQuant = [dctSize2]int{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// ChromaQuantTable returns the chroma table scaled for an IJG quality
// factor.
func ChromaQuantTable(quality int) [dctSize2]int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	scale := 200 - 2*quality
	if quality < 50 {
		scale = 5000 / quality
	}
	var t [dctSize2]int
	for i, q := range stdChromaQuant {
		v := (q*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		t[i] = v
	}
	return t
}

// quantizePlane extracts and quantizes one component's block at (bx, by)
// from a plane sampler.
func quantizePlane(sample func(x, y int) float64, bx, by int, quant *[dctSize2]int) [dctSize2]int {
	var s [dctSize2]float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			s[y*8+x] = sample(bx*8+x, by*8+y) - 128
		}
	}
	coefs := FDCT(&s)
	var out [dctSize2]int
	for i := 0; i < dctSize2; i++ {
		out[i] = int(math.Round(coefs[i] / float64(quant[i])))
	}
	return out
}

// EncodeColorFile writes a baseline YCbCr 4:4:4 JFIF file.
func EncodeColorFile(w io.Writer, im *ImageRGB, quality int) error {
	if quality == 0 {
		quality = 75
	}
	lumaQ := QuantTable(quality)
	chromaQ := ChromaQuantTable(quality)

	// Entropy-encode interleaved MCUs (Y, Cb, Cr), per-component DC
	// prediction, shared Huffman tables.
	e := &Encoder{}
	bw := &bitWriter{}
	lastDC := [3]int{}
	bwid, bhig := (im.W+7)/8, (im.H+7)/8
	samplers := [3]func(x, y int) float64{
		func(x, y int) float64 { yy, _, _ := rgbToYCbCr(im.At(x, y)); return yy },
		func(x, y int) float64 { _, cb, _ := rgbToYCbCr(im.At(x, y)); return cb },
		func(x, y int) float64 { _, _, cr := rgbToYCbCr(im.At(x, y)); return cr },
	}
	quants := [3]*[dctSize2]int{&lumaQ, &chromaQ, &chromaQ}
	for by := 0; by < bhig; by++ {
		for bx := 0; bx < bwid; bx++ {
			for comp := 0; comp < 3; comp++ {
				block := quantizePlane(samplers[comp], bx, by, quants[comp])
				dc, err := e.encodeOneBlock(bw, &block, lastDC[comp])
				if err != nil { //metalint:leaky out-of-model encode error propagation
					return err
				}
				lastDC[comp] = dc
			}
		}
	}

	var buf bytes.Buffer
	marker := func(m byte) { buf.Write([]byte{0xff, m}) }
	segment := func(m byte, payload []byte) {
		marker(m)
		n := len(payload) + 2
		buf.WriteByte(byte(n >> 8))
		buf.WriteByte(byte(n))
		buf.Write(payload)
	}
	marker(mSOI)
	segment(mAPP0, []byte{'J', 'F', 'I', 'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0})
	writeDQT := func(id byte, q *[dctSize2]int) {
		p := make([]byte, 1+dctSize2)
		p[0] = id
		for k := 0; k < dctSize2; k++ {
			p[1+k] = byte(q[jpegNaturalOrder[k]])
		}
		segment(mDQT, p)
	}
	writeDQT(0, &lumaQ)
	writeDQT(1, &chromaQ)
	sof := []byte{
		8,
		byte(im.H >> 8), byte(im.H),
		byte(im.W >> 8), byte(im.W),
		3,
		1, 0x11, 0, // Y: 1x1, luma quant
		2, 0x11, 1, // Cb: 1x1, chroma quant
		3, 0x11, 1, // Cr
	}
	segment(mSOF0, sof)
	dht := []byte{0x00}
	for _, c := range dcLumCounts {
		dht = append(dht, byte(c))
	}
	dht = append(dht, dcLumValues...)
	dht = append(dht, 0x10)
	for _, c := range acLumCounts {
		dht = append(dht, byte(c))
	}
	dht = append(dht, acLumValues...)
	segment(mDHT, dht)
	segment(mSOS, []byte{3, 1, 0x00, 2, 0x00, 3, 0x00, 0, 63, 0})
	for _, b := range bw.flush() { //metalint:leaky access-sequence entropy-coded byte count depends on image content
		buf.WriteByte(b)
		if b == 0xff { //metalint:leaky access-sequence 0xFF byte stuffing follows the entropy-coded bytes
			buf.WriteByte(0x00)
		}
	}
	marker(mEOI)
	_, err := w.Write(buf.Bytes())
	return err
}

// DecodeColorFile reads the YCbCr files EncodeColorFile writes.
func DecodeColorFile(r io.Reader) (*ImageRGB, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 4 || data[0] != 0xff || data[1] != mSOI {
		return nil, fmt.Errorf("jpeg: missing SOI")
	}
	pos := 2
	var quant [2][dctSize2]int
	var width, height int
	haveSOF := false
	for pos+4 <= len(data) {
		if data[pos] != 0xff {
			return nil, fmt.Errorf("jpeg: expected marker at %d", pos)
		}
		m := data[pos+1]
		if m == mEOI {
			return nil, fmt.Errorf("jpeg: EOI before SOS")
		}
		segLen := int(data[pos+2])<<8 | int(data[pos+3])
		if segLen < 2 || pos+2+segLen > len(data) {
			return nil, fmt.Errorf("jpeg: bad segment %#x", m)
		}
		payload := data[pos+4 : pos+2+segLen]
		switch m {
		case mAPP0, mDHT: // tables are fixed by construction; DHT validated implicitly by decode
		case mDQT:
			if len(payload) != 1+dctSize2 || payload[0] > 1 {
				return nil, fmt.Errorf("jpeg: unsupported DQT")
			}
			id := payload[0]
			for k := 0; k < dctSize2; k++ {
				quant[id][jpegNaturalOrder[k]] = int(payload[1+k])
			}
		case mSOF0:
			if len(payload) != 15 || payload[0] != 8 || payload[5] != 3 {
				return nil, fmt.Errorf("jpeg: not a 3-component baseline file")
			}
			height = int(payload[1])<<8 | int(payload[2])
			width = int(payload[3])<<8 | int(payload[4])
			if width <= 0 || height <= 0 || width*height > 1<<24 {
				return nil, fmt.Errorf("jpeg: unreasonable dimensions %dx%d", width, height)
			}
			haveSOF = true
		case mSOS:
			if !haveSOF {
				return nil, fmt.Errorf("jpeg: SOS before SOF")
			}
			body := data[pos+2+segLen:]
			var ecs []byte
			for i := 0; i < len(body); i++ {
				if body[i] != 0xff {
					ecs = append(ecs, body[i])
					continue
				}
				if i+1 >= len(body) {
					return nil, fmt.Errorf("jpeg: scan ends in a bare 0xFF")
				}
				if body[i+1] == 0x00 {
					ecs = append(ecs, 0xff)
					i++
					continue
				}
				if body[i+1] == mEOI {
					return decodeColorScan(ecs, width, height, &quant)
				}
				return nil, fmt.Errorf("jpeg: unexpected marker %#x in scan", body[i+1])
			}
			return nil, fmt.Errorf("jpeg: missing EOI")
		default:
			return nil, fmt.Errorf("jpeg: unsupported marker %#x", m)
		}
		pos += 2 + segLen
	}
	return nil, fmt.Errorf("jpeg: no SOS segment")
}

// decodeColorScan entropy-decodes interleaved YCbCr MCUs and renders RGB.
func decodeColorScan(ecs []byte, width, height int, quant *[2][dctSize2]int) (*ImageRGB, error) {
	br := &bitReader{buf: ecs}
	bwid, bhig := (width+7)/8, (height+7)/8
	im := NewImageRGB(width, height)
	lastDC := [3]int{}
	qsel := [3]int{0, 1, 1}
	for by := 0; by < bhig; by++ {
		for bx := 0; bx < bwid; bx++ {
			var planes [3][dctSize2]float64
			for comp := 0; comp < 3; comp++ {
				block, dc, err := decodeOneBlock(br, lastDC[comp])
				if err != nil {
					return nil, err
				}
				lastDC[comp] = dc
				var coefs [dctSize2]float64
				for j := 0; j < dctSize2; j++ {
					coefs[j] = float64(block[j] * quant[qsel[comp]][j])
				}
				planes[comp] = IDCT(&coefs)
			}
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					i := y*8 + x
					r, g, b := ycbcrToRGB(planes[0][i]+128, planes[1][i]+128, planes[2][i]+128)
					im.Set(bx*8+x, by*8+y, r, g, b)
				}
			}
		}
	}
	return im, nil
}
