package jpeg

// Decode inverts Encode: it entropy-decodes the coefficient blocks,
// dequantizes, and applies the inverse DCT. It exists both to prove the
// encoder emits a valid stream (round-trip tests) and as the back half of
// the attacker's local reconstruction pipeline (§VIII-A1).
func Decode(res *Result) (*Image, error) {
	blocks, err := DecodeBlocks(res)
	if err != nil {
		return nil, err
	}
	return RenderBlocks(blocks, res.W, res.H, res.Quality), nil
}

// DecodeBlocks entropy-decodes the quantized coefficient blocks from the
// bitstream.
func DecodeBlocks(res *Result) ([][dctSize2]int, error) {
	r := &bitReader{buf: res.Data}
	nBlocks := ((res.W + 7) / 8) * ((res.H + 7) / 8)
	out := make([][dctSize2]int, 0, nBlocks)
	lastDC := 0
	for i := 0; i < nBlocks; i++ {
		block, dc, err := decodeOneBlock(r, lastDC)
		if err != nil {
			return nil, err
		}
		lastDC = dc
		out = append(out, block)
	}
	return out, nil
}

// decodeOneBlock entropy-decodes one 8×8 block given the previous DC
// value, returning the block and the new DC predictor.
func decodeOneBlock(r *bitReader, lastDC int) ([dctSize2]int, int, error) {
	var block [dctSize2]int
	// DC.
	sym, err := r.decodeSymbol(dcTable)
	if err != nil {
		return block, 0, err
	}
	bits, err := r.readBits(sym)
	if err != nil {
		return block, 0, err
	}
	lastDC += extend(bits, sym)
	block[0] = lastDC
	// AC.
	k := 1
	for k < dctSize2 { //metalint:leaky out-of-model decode-side ground-truth tooling; consumes the victim's own bitstream
		sym, err := r.decodeSymbol(acTable)
		if err != nil {
			return block, 0, err
		}
		if sym == 0x00 { //metalint:leaky out-of-model EOB marker; decode-side ground-truth tooling on the victim's own bitstream
			break
		}
		run, size := int(sym>>4), sym&0xf
		if sym == 0xf0 { //metalint:leaky out-of-model ZRL marker; decode-side ground-truth tooling on the victim's own bitstream
			k += 16
			continue
		}
		k += run
		if k >= dctSize2 { //metalint:leaky out-of-model decode-side ground-truth tooling; consumes the victim's own bitstream
			break
		}
		bits, err := r.readBits(size)
		if err != nil {
			return block, 0, err
		}
		block[jpegNaturalOrder[k]] = extend(bits, size) //metalint:leaky out-of-model decode-side ground-truth tooling; consumes the victim's own bitstream
		k++
	}
	return block, lastDC, nil
}

// RenderBlocks dequantizes and inverse-transforms coefficient blocks into
// an image.
func RenderBlocks(blocks [][dctSize2]int, w, h, quality int) *Image {
	quant := QuantTable(quality)
	im := NewImage(w, h)
	bw := (w + 7) / 8
	for i, block := range blocks { //metalint:leaky out-of-model decode-side ground-truth tooling; consumes the victim's own bitstream
		bx, by := i%bw, i/bw
		var coefs [dctSize2]float64
		for j := 0; j < dctSize2; j++ {
			coefs[j] = float64(block[j] * quant[j])
		}
		samples := IDCT(&coefs)
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v := samples[y*8+x] + 128
				if v < 0 { //metalint:leaky out-of-model decode-side ground-truth tooling; consumes the victim's own bitstream
					v = 0
				}
				if v > 255 { //metalint:leaky out-of-model decode-side ground-truth tooling; consumes the victim's own bitstream
					v = 255
				}
				im.Set(bx*8+x, by*8+y, uint8(v))
			}
		}
	}
	return im
}
