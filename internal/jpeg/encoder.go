package jpeg

import (
	"fmt"
	"math"
)

// maxCoefBits is MAX_COEF_BITS for 8-bit baseline JPEG: AC magnitudes fit
// in 10 bits (DC differences in 11).
const maxCoefBits = 10

// Hooks fire inside encode_one_block exactly where libjpeg's Listing-1
// gadget touches its leaky variables: ZeroCoef when the run-length counter
// r is incremented (zero coefficient, line 6), NonzeroCoef when nbits is
// computed and range-checked (non-zero coefficient, line 10).
type Hooks struct {
	BlockStart  func(bx, by int)
	ZeroCoef    func(k int)
	NonzeroCoef func(k, nbits int)
}

func (h *Hooks) blockStart(bx, by int) {
	if h != nil && h.BlockStart != nil {
		h.BlockStart(bx, by)
	}
}
func (h *Hooks) zero(k int) {
	if h != nil && h.ZeroCoef != nil {
		h.ZeroCoef(k)
	}
}
func (h *Hooks) nonzero(k, nbits int) {
	if h != nil && h.NonzeroCoef != nil {
		h.NonzeroCoef(k, nbits)
	}
}

// Encoder compresses grayscale images with baseline JPEG entropy coding.
type Encoder struct {
	Quality int // IJG quality factor, default 75
	Hooks   *Hooks
}

// Result carries the entropy-coded segment plus the quantized coefficient
// blocks (for oracle comparison in the case studies).
type Result struct {
	W, H    int
	Quality int
	Data    []byte
	// Blocks holds quantized coefficients in row-major (natural) order,
	// one entry per 8×8 block, blocks in raster order.
	Blocks [][dctSize2]int
}

// QuantizeBlock level-shifts, transforms and quantizes one 8×8 tile of
// the image at block coordinates (bx, by).
func QuantizeBlock(im *Image, bx, by int, quant *[dctSize2]int) [dctSize2]int {
	var samples [dctSize2]float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			samples[y*8+x] = float64(im.At(bx*8+x, by*8+y)) - 128
		}
	}
	coefs := FDCT(&samples)
	var out [dctSize2]int
	for i := 0; i < dctSize2; i++ {
		out[i] = int(math.Round(coefs[i] / float64(quant[i])))
	}
	return out
}

// Encode compresses the image, firing hooks per coefficient.
func (e *Encoder) Encode(im *Image) (*Result, error) {
	q := e.Quality
	if q == 0 {
		q = 75
	}
	quant := QuantTable(q)
	res := &Result{W: im.W, H: im.H, Quality: q}
	w := &bitWriter{}
	lastDC := 0
	for by := 0; by < im.BlocksHigh(); by++ {
		for bx := 0; bx < im.BlocksWide(); bx++ {
			e.Hooks.blockStart(bx, by)
			block := QuantizeBlock(im, bx, by, &quant)
			res.Blocks = append(res.Blocks, block)
			var err error
			lastDC, err = e.encodeOneBlock(w, &block, lastDC)
			if err != nil { //metalint:leaky out-of-model encode error propagation
				return nil, err
			}
		}
	}
	res.Data = w.flush()
	return res, nil
}

// encodeOneBlock is the Listing 1 gadget: libjpeg's Huffman entropy
// encoder for one block. The zero branch increments the run counter r;
// the non-zero branch computes nbits and checks it against MAX_COEF_BITS.
func (e *Encoder) encodeOneBlock(w *bitWriter, block *[dctSize2]int, lastDC int) (int, error) {
	// DC coefficient: difference coding.
	dc := block[0]
	diff := dc - lastDC
	nbits, bits := magnitudeBits(diff)
	if nbits > maxCoefBits+1 {
		return 0, fmt.Errorf("jpeg: DC difference out of range")
	}
	w.write(dcTable.code[nbits], dcTable.size[nbits])
	if nbits > 0 {
		w.write(bits, nbits)
	}

	// Encode the AC coefficients (the leaky loop).
	r := 0
	for k := 1; k < dctSize2; k++ {
		if block[jpegNaturalOrder[k]] == 0 { //metalint:leaky access-sequence Listing 1: the zero-coefficient skip the secmem channel observes via the r/nbits stores
			r++ // touches r's page
			e.Hooks.zero(k)
		} else {
			for r > 15 {
				w.write(acTable.code[0xf0], acTable.size[0xf0]) // ZRL
				r -= 16
			}
			v := block[jpegNaturalOrder[k]]
			nbits, bits := magnitudeBits(v)
			e.Hooks.nonzero(k, int(nbits)) // touches nbits's page
			// Check for out-of-range coefficient.
			if int(nbits) > maxCoefBits {
				return 0, fmt.Errorf("jpeg: AC coefficient %d out of range", v)
			}
			sym := byte(r<<4) | nbits
			w.write(acTable.code[sym], acTable.size[sym])
			w.write(bits, nbits)
			r = 0
		}
	}
	if r > 0 {
		w.write(acTable.code[0x00], acTable.size[0x00]) // EOB
	}
	return dc, nil
}
