package jpeg

import (
	"bytes"
	"testing"
)

func TestJFIFRoundTrip(t *testing.T) {
	for _, q := range []int{50, 75, 90} {
		im, _ := Synthetic(PatternCircle, 40, 24)
		var buf bytes.Buffer
		enc := &Encoder{Quality: q}
		if err := enc.EncodeFile(&buf, im); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeFile(&buf)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if got.W != im.W || got.H != im.H {
			t.Fatalf("q=%d: size %dx%d", q, got.W, got.H)
		}
		if p := psnr(im, got); p < 25 {
			t.Fatalf("q=%d: PSNR %.1f too low", q, p)
		}
	}
}

func TestJFIFStructure(t *testing.T) {
	im, _ := Synthetic(PatternStripes, 16, 16)
	var buf bytes.Buffer
	if err := (&Encoder{Quality: 75}).EncodeFile(&buf, im); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if b[0] != 0xff || b[1] != mSOI {
		t.Fatal("missing SOI")
	}
	if b[len(b)-2] != 0xff || b[len(b)-1] != mEOI {
		t.Fatal("missing EOI")
	}
	// Every 0xFF inside the entropy segment must be stuffed or a marker;
	// scan for bare 0xFF followed by a non-(0x00|marker) — the parser
	// would reject it anyway, so just re-parse.
	if _, err := DecodeFile(bytes.NewReader(b)); err != nil {
		t.Fatalf("self-parse failed: %v", err)
	}
}

func TestJFIFByteStuffing(t *testing.T) {
	// Find an image whose entropy stream contains 0xFF (common) and make
	// sure stuffing round-trips.
	found := false
	for i := 0; i < 30 && !found; i++ {
		im, _ := Synthetic(PatternChecker, 24+8*i%32, 24)
		res, err := (&Encoder{Quality: 40 + i}).Encode(im)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.IndexByte(res.Data, 0xff) < 0 {
			continue
		}
		found = true
		var buf bytes.Buffer
		if err := WriteJFIF(&buf, res); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeFile(&buf); err != nil {
			t.Fatalf("stuffed stream failed to parse: %v", err)
		}
	}
	if !found {
		t.Skip("no 0xFF byte appeared in any entropy stream")
	}
}

func TestDecodeFileRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{0xff, 0xd8},                   // SOI only
		{0x00, 0x01, 0x02},             // no SOI
		{0xff, 0xd8, 0xff, 0xd9},       // EOI before SOS
		{0xff, 0xd8, 0xff, 0xfe, 0x00}, // truncated segment
	}
	for i, c := range cases {
		if _, err := DecodeFile(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestDecodeFileRejectsForeignTables(t *testing.T) {
	im, _ := Synthetic(PatternCircle, 16, 16)
	var buf bytes.Buffer
	if err := (&Encoder{Quality: 75}).EncodeFile(&buf, im); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt one byte inside the DHT payload.
	idx := bytes.Index(b, []byte{0xff, mDHT})
	if idx < 0 {
		t.Fatal("no DHT segment")
	}
	b[idx+6] ^= 1
	if _, err := DecodeFile(bytes.NewReader(b)); err == nil {
		t.Fatal("modified Huffman tables accepted")
	}
}

func TestJFIFNonMultipleOf8Dimensions(t *testing.T) {
	// Edge padding: dimensions that are not block multiples round-trip
	// with the partial blocks clamped, not dropped.
	for _, wh := range [][2]int{{20, 12}, {9, 31}, {8, 8}, {7, 7}} {
		im, _ := Synthetic(PatternGradient, wh[0], wh[1])
		var buf bytes.Buffer
		if err := (&Encoder{Quality: 85}).EncodeFile(&buf, im); err != nil {
			t.Fatalf("%v: %v", wh, err)
		}
		got, err := DecodeFile(&buf)
		if err != nil {
			t.Fatalf("%v: %v", wh, err)
		}
		if got.W != wh[0] || got.H != wh[1] {
			t.Fatalf("%v: decoded %dx%d", wh, got.W, got.H)
		}
		if p := psnr(im, got); p < 20 {
			t.Fatalf("%v: PSNR %.1f", wh, p)
		}
	}
}
