package runner

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// This file is the runner's failure policy: per-attempt deadlines,
// bounded retries with a deterministic backoff schedule, and stall
// detection. It is the one place in the repo where wall-clock time is
// legitimate — it schedules and polices *host* work (trials that hang,
// crash, or flake), never simulated time, which stays in arch.Cycles
// inside each trial's private machine. Determinism is preserved where
// it matters: which attempt succeeds and what error a trial settles
// with are functions of the trial and the policy, not of scheduling.

// ErrStalled reports a trial that exceeded its per-attempt deadline.
// The attempt's goroutine is abandoned, not killed (Go cannot preempt
// it); a late result from an abandoned attempt is discarded.
var ErrStalled = errors.New("trial stalled past deadline")

// Policy bounds how trials fail. The zero value reproduces the bare
// pool exactly: no deadline, no retries.
type Policy struct {
	// Workers caps concurrent trials; <= 0 selects GOMAXPROCS.
	Workers int
	// Timeout is the per-attempt deadline; 0 disables stall detection.
	Timeout time.Duration
	// Retries is how many extra attempts a failed trial gets; an
	// attempt's failure (error, panic, or stall) consumes one.
	Retries int
	// Backoff, when non-nil, returns the pause before retry attempt n
	// (n = 2 for the first retry). The schedule is a pure function of
	// the attempt number — deterministic by construction.
	Backoff func(attempt int) time.Duration
}

// ExpBackoff returns the standard deterministic backoff schedule:
// base before the first retry, doubling per retry, capped at 32×base.
// No jitter — the retry cadence must be reproducible, and the trials
// are local work, not a shared service needing decorrelation.
func ExpBackoff(base time.Duration) func(int) time.Duration {
	return func(attempt int) time.Duration {
		shift := attempt - 2
		if shift < 0 {
			shift = 0
		}
		if shift > 5 {
			shift = 5
		}
		return base << shift
	}
}

// RunAllPolicy is RunAllFunc under a failure policy: each trial gets
// 1+Retries attempts, each attempt bounded by Timeout, with Backoff
// pauses between attempts. Results and errors stay index-aligned and
// onDone still fires exactly once per trial slot as it settles.
func RunAllPolicy(ctx context.Context, trials []Trial, pol Policy, onDone func(i int, result any, err error)) ([]any, []error) {
	return runPool(ctx, trials, pol, onDone)
}

// runAttempts drives one trial through the policy's attempt budget and
// returns its settled result. A trial that exhausts the budget settles
// with every attempt's error joined (in attempt order) — not just the
// last attempt's — so retry diagnostics are lossless; a single-attempt
// failure settles with that attempt's error untouched.
func runAttempts(ctx context.Context, t Trial, i int, pol Policy) (any, error) {
	var last error
	var underlying []error
	made := 0
	for attempt := 1; attempt <= 1+pol.Retries; attempt++ {
		if attempt > 1 && pol.Backoff != nil {
			sleepCtx(ctx, pol.Backoff(attempt))
		}
		if err := ctx.Err(); err != nil {
			// Cancelled between attempts: settle with the cancellation, not
			// the stale attempt errors — resume will re-run the trial anyway.
			return nil, &TrialError{Index: i, Err: err, Attempts: made}
		}
		made++
		res, err := runDeadline(t, i, pol.Timeout)
		if err == nil {
			return res, nil
		}
		last = err
		underlying = append(underlying, attemptErr(err))
	}
	var te *TrialError
	if !errors.As(last, &te) {
		te = &TrialError{Index: i, Err: last}
	}
	te.Attempts = made
	if made > 1 {
		te.AttemptErrs = underlying
		te.Err = errors.Join(underlying...)
	}
	return nil, te
}

// attemptErr strips one attempt's TrialError envelope so the joined
// multi-attempt error reads "cause\ncause\n..." instead of repeating
// the "trial N:" prefix per line.
func attemptErr(err error) error {
	var te *TrialError
	if errors.As(err, &te) && te.Err != nil {
		return te.Err
	}
	return err
}

// runDeadline executes one attempt, bounded by d when d > 0. The
// attempt runs on its own goroutine so a stall can be abandoned; a
// stalled attempt keeps running until it returns on its own (injected
// stalls expire; organic ones hold their goroutine, which is the honest
// cost of no preemption) and its late result is dropped.
func runDeadline(t Trial, i int, d time.Duration) (any, error) {
	if d <= 0 {
		return runOne(t, i)
	}
	type settled struct {
		res any
		err error
	}
	ch := make(chan settled, 1)
	go func() {
		res, err := runOne(t, i)
		ch <- settled{res, err}
	}()
	timer := time.NewTimer(d) //metalint:allow wallclock per-attempt deadline polices host work, not simulated time
	defer timer.Stop()
	select {
	case s := <-ch:
		return s.res, s.err
	case <-timer.C:
		return nil, &TrialError{Index: i, Err: fmt.Errorf("%w (%v)", ErrStalled, d)}
	}
}

// sleepCtx pauses for d or until ctx is cancelled, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d) //metalint:allow wallclock retry backoff paces host work between attempts
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
}
