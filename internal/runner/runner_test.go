package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// squareTrials builds n trials returning their squared index, with a
// deterministic per-trial side effect counter to verify each ran once.
func squareTrials(n int, ran []int32) []Trial {
	trials := make([]Trial, n)
	for i := 0; i < n; i++ {
		i := i
		trials[i] = func() (any, error) {
			ran[i]++
			return i * i, nil
		}
	}
	return trials
}

// TestWorkerCountInvariance runs one trial set at 1, 2, and 8 workers
// and requires identical assembled results — the property the
// experiment layer's determinism contract rests on.
func TestWorkerCountInvariance(t *testing.T) {
	const n = 64
	var want []any
	for _, workers := range []int{1, 2, 8} {
		ran := make([]int32, n)
		results, err := Run(context.Background(), squareTrials(n, ran), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("workers=%d: trial %d ran %d times", workers, i, c)
			}
		}
		if want == nil {
			want = results
			continue
		}
		if !reflect.DeepEqual(results, want) {
			t.Fatalf("workers=%d: results differ from workers=1", workers)
		}
	}
}

// TestErrorIsolation checks that a failing trial reports its error in
// its own slot while every other trial still runs and succeeds, and
// that Run's joined error is deterministic (index order).
func TestErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	trials := []Trial{
		func() (any, error) { return "a", nil },
		func() (any, error) { return nil, boom },
		func() (any, error) { return "c", nil },
		func() (any, error) { return nil, fmt.Errorf("late failure") },
	}
	results, errs := RunAll(context.Background(), trials, 4)
	if results[0] != "a" || results[2] != "c" {
		t.Fatalf("healthy trials lost: %v", results)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy trials errored: %v", errs)
	}
	var te *TrialError
	if !errors.As(errs[1], &te) || te.Index != 1 || !errors.Is(errs[1], boom) {
		t.Fatalf("trial 1 error malformed: %v", errs[1])
	}

	_, err := Run(context.Background(), trials, 4)
	want := "trial 1: boom\ntrial 3: late failure"
	if err == nil || err.Error() != want {
		t.Fatalf("joined error not in index order:\n got %q\nwant %q", err, want)
	}
}

// TestPanicContainment checks that a panicking trial surfaces as a
// TrialError with a captured stack, without deadlocking the pool or
// poisoning its siblings.
func TestPanicContainment(t *testing.T) {
	trials := []Trial{
		func() (any, error) { return 1, nil },
		func() (any, error) { panic("kaboom") },
		func() (any, error) { return 3, nil },
	}
	results, errs := RunAll(context.Background(), trials, 2)
	if results[0] != 1 || results[2] != 3 {
		t.Fatalf("siblings of the panicking trial lost: %v", results)
	}
	var te *TrialError
	if !errors.As(errs[1], &te) {
		t.Fatalf("panic not converted to TrialError: %v", errs[1])
	}
	if te.Index != 1 || len(te.Stack) == 0 {
		t.Fatalf("panic TrialError incomplete: index=%d stack=%d bytes", te.Index, len(te.Stack))
	}
	if want := "trial 1: panic: kaboom"; te.Error() != want {
		t.Fatalf("panic error string %q, want %q (stack must stay out of Error())", te.Error(), want)
	}
}

// TestCancellation cancels mid-sweep: trials already started finish,
// not-yet-started trials are skipped with the context error, and the
// call returns promptly (no send to a full channel, no leaked workers).
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 16
	release := make(chan struct{})
	started := make(chan int, n)
	trials := make([]Trial, n)
	for i := 0; i < n; i++ {
		i := i
		trials[i] = func() (any, error) {
			started <- i
			<-release
			return i, nil
		}
	}

	var wg sync.WaitGroup
	var results []any
	var errs []error
	wg.Add(1)
	go func() {
		defer wg.Done()
		results, errs = RunAll(ctx, trials, 2)
	}()

	// Two trials are in flight (2 workers). Cancel, then let them finish.
	<-started
	<-started
	cancel()
	close(release)
	wg.Wait()

	completed, skipped := 0, 0
	for i := range trials {
		switch {
		case errs[i] == nil:
			if results[i] != i {
				t.Fatalf("trial %d completed with wrong result %v", i, results[i])
			}
			completed++
		case errors.Is(errs[i], context.Canceled):
			skipped++
		default:
			t.Fatalf("trial %d: unexpected error %v", i, errs[i])
		}
	}
	if completed != 2 {
		t.Fatalf("expected exactly the 2 in-flight trials to complete, got %d", completed)
	}
	if skipped != n-2 {
		t.Fatalf("expected %d trials skipped with ctx error, got %d", n-2, skipped)
	}

	// Run must report the cancellation as an error, partial results intact.
	if _, err := Run(ctx, []Trial{func() (any, error) { return nil, nil }}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx: %v", err)
	}
}

// TestCompletionCallback checks RunAllFunc's onDone contract: exactly
// one call per trial slot, carrying the same result/error the returned
// slices hold, serialized (no interleaving), and covering trials
// skipped by cancellation.
func TestCompletionCallback(t *testing.T) {
	const n = 32
	ran := make([]int32, n)
	trials := squareTrials(n, ran)
	trials[5] = func() (any, error) { return nil, errors.New("boom") }

	calls := make([]int, n)
	var inCallback bool
	results, errs := RunAllFunc(context.Background(), trials, 4, func(i int, res any, err error) {
		if inCallback {
			t.Error("onDone reentered: callbacks must be serialized")
		}
		inCallback = true
		defer func() { inCallback = false }()
		calls[i]++
		if i == 5 {
			if err == nil || !strings.Contains(err.Error(), "boom") {
				t.Errorf("trial 5 callback err = %v", err)
			}
		} else if err != nil || res != i*i {
			t.Errorf("trial %d callback got (%v, %v)", i, res, err)
		}
	})
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("trial %d: onDone called %d times", i, c)
		}
	}
	if results[3] != 9 || errs[5] == nil {
		t.Fatalf("returned slices disagree with callbacks: %v %v", results[3], errs[5])
	}

	// On a cancelled context, every slot still gets its callback, with
	// an error that unwraps to the context error — the signal the
	// checkpoint layer uses to avoid persisting phantom failures.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cancelled := 0
	RunAllFunc(ctx, squareTrials(4, make([]int32, 4)), 2, func(i int, res any, err error) {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("trial %d on cancelled ctx: err = %v", i, err)
		}
		cancelled++
	})
	if cancelled != 4 {
		t.Fatalf("cancelled trials got %d callbacks, want 4", cancelled)
	}
}

// TestWorkerDefaults covers the workers<=0 (GOMAXPROCS) path and the
// empty trial slice.
func TestWorkerDefaults(t *testing.T) {
	results, err := Run(context.Background(), nil, 0)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty run: %v %v", results, err)
	}
	ran := make([]int32, 3)
	if _, err := Run(context.Background(), squareTrials(3, ran), -1); err != nil {
		t.Fatal(err)
	}
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("trial %d ran %d times under default workers", i, c)
		}
	}
}
