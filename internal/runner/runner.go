// Package runner is the deterministic parallel sweep engine behind the
// experiment layer: it executes independent trials on a bounded worker
// pool and assembles their results in trial-index order, so the output
// of a run is byte-identical for any worker count.
//
// The contract that makes this safe is the spec/trial/merge shape of
// internal/experiments: every trial builds its own machine from a seed
// derived from the experiment seed and the trial's identity, shares no
// mutable state with its siblings, and the merge step that consumes the
// results is pure. The runner then only has to guarantee ordering —
// trials may *complete* in any order, but results are always *consumed*
// in index order — and containment: a trial that fails or panics
// reports an error instead of killing the sweep.
//
// Wall-clock time never appears here; the runner schedules host work,
// it does not participate in simulated time, which lives entirely
// inside each trial's private machine.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Trial is one independent unit of work. Implementations must not share
// mutable state with other trials scheduled in the same call.
type Trial func() (any, error)

// TrialError records the failure of one trial: an ordinary error, a
// captured panic, or cancellation before the trial started.
type TrialError struct {
	// Index is the trial's position in the submitted slice.
	Index int
	// Err is the underlying failure.
	Err error
	// Stack holds the goroutine stack if the trial panicked. It is kept
	// out of Error() so error strings stay deterministic (stack dumps
	// embed addresses).
	Stack []byte
	// Attempts is how many attempts the trial consumed before settling
	// with this error (0 when it never started). Like Stack it stays out
	// of Error(): retry counts are reporting metadata, not identity.
	Attempts int
	// AttemptErrs holds every attempt's underlying error in attempt
	// order when the trial exhausted a retry budget (nil for
	// single-attempt failures). Err joins them, so diagnostics keep all
	// attempts, not just the last.
	AttemptErrs []error
}

func (e *TrialError) Error() string { return fmt.Sprintf("trial %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TrialError) Unwrap() error { return e.Err }

// RunAll executes the trials with at most `workers` running at once and
// returns results and errors index-aligned with the input: results[i]
// and errs[i] belong to trials[i] no matter which worker ran it or
// when it finished. A failed or panicking trial occupies its error slot
// and the sweep continues; after ctx is cancelled, in-flight trials run
// to completion (trials are not preemptible) and not-yet-started trials
// report ctx's error without running.
//
// workers <= 0 selects runtime.GOMAXPROCS(0).
func RunAll(ctx context.Context, trials []Trial, workers int) ([]any, []error) {
	return RunAllFunc(ctx, trials, workers, nil)
}

// RunAllFunc is RunAll with a per-trial completion callback. onDone,
// when non-nil, is invoked exactly once per trial slot as it settles —
// with the trial's result or error, including trials skipped after
// cancellation (their err wraps ctx's error) — so a caller can
// checkpoint completed work incrementally instead of waiting for the
// whole pool to drain. Calls arrive in completion order, not index
// order, serialized by an internal mutex: onDone needs no locking of
// its own, but it runs on the worker's goroutine, so a slow callback
// stalls that worker.
func RunAllFunc(ctx context.Context, trials []Trial, workers int, onDone func(i int, result any, err error)) ([]any, []error) {
	return runPool(ctx, trials, Policy{Workers: workers}, onDone)
}

// runPool is the one worker-pool implementation behind RunAll,
// RunAllFunc, and RunAllPolicy. The zero policy reproduces the bare
// pool: a single attempt per trial, no deadline.
func runPool(ctx context.Context, trials []Trial, pol Policy, onDone func(i int, result any, err error)) ([]any, []error) {
	results := make([]any, len(trials))
	errs := make([]error, len(trials))
	if len(trials) == 0 {
		return results, errs
	}
	workers := pol.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(trials) {
		workers = len(trials)
	}

	report := func(int) {}
	if onDone != nil {
		var mu sync.Mutex
		report = func(i int) {
			mu.Lock()
			defer mu.Unlock()
			onDone(i, results[i], errs[i])
		}
	}

	// Work distribution is a prefilled channel of indices: workers pull
	// the next index when free, so a slow trial never blocks the rest of
	// the queue behind it. Each worker writes only results[i]/errs[i] for
	// the indices it pulled — disjoint slots, no locking; the WaitGroup
	// provides the happens-before edge to the reader.
	idx := make(chan int, len(trials))
	for i := range trials {
		idx <- i
	}
	close(idx)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					errs[i] = &TrialError{Index: i, Err: err}
				} else {
					results[i], errs[i] = runAttempts(ctx, trials[i], i, pol)
				}
				report(i)
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// Run executes the trials like RunAll and folds any failures into a
// single error, joined in trial-index order (deterministic regardless
// of completion order). The results slice is returned even on error so
// callers that tolerate partial failure can inspect the survivors.
func Run(ctx context.Context, trials []Trial, workers int) ([]any, error) {
	results, errs := RunAll(ctx, trials, workers)
	var failed []error
	for _, err := range errs {
		if err != nil {
			failed = append(failed, err)
		}
	}
	if len(failed) > 0 {
		return results, errors.Join(failed...)
	}
	return results, nil
}

// runOne executes a single trial with panic containment: a panicking
// trial surfaces as a TrialError carrying the stack instead of tearing
// down the pool.
func runOne(t Trial, i int) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &TrialError{Index: i, Err: fmt.Errorf("panic: %v", r), Stack: debug.Stack()}
		}
	}()
	res, err = t()
	if err != nil {
		err = &TrialError{Index: i, Err: err}
	}
	return res, err
}
