package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestPolicyRetriesRecover: a trial that fails its first attempts
// succeeds within the retry budget, and the recovery is invisible in
// the result.
func TestPolicyRetriesRecover(t *testing.T) {
	calls := 0
	trials := []Trial{func() (any, error) {
		calls++
		if calls < 3 {
			return nil, fmt.Errorf("flake %d", calls)
		}
		return "ok", nil
	}}
	res, errs := RunAllPolicy(context.Background(), trials, Policy{Workers: 1, Retries: 2}, nil)
	if errs[0] != nil || res[0] != "ok" || calls != 3 {
		t.Fatalf("res=%v err=%v calls=%d", res[0], errs[0], calls)
	}
}

// TestPolicyRetriesExhausted: the settled error joins every attempt's
// error in attempt order (the pre-fix bug kept only the last attempt's,
// so lease-retry diagnostics were lossy), with the attempt count and
// the per-attempt slice recorded out-of-band.
func TestPolicyRetriesExhausted(t *testing.T) {
	calls := 0
	trials := []Trial{func() (any, error) {
		calls++
		return nil, fmt.Errorf("attempt %d failed", calls)
	}}
	_, errs := RunAllPolicy(context.Background(), trials, Policy{Workers: 1, Retries: 2}, nil)
	var te *TrialError
	if !errors.As(errs[0], &te) {
		t.Fatalf("err = %v", errs[0])
	}
	if te.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", te.Attempts)
	}
	want := "trial 0: attempt 1 failed\nattempt 2 failed\nattempt 3 failed"
	if got := te.Error(); got != want {
		t.Errorf("error = %q, want %q", got, want)
	}
	if len(te.AttemptErrs) != 3 {
		t.Fatalf("AttemptErrs = %v, want 3 entries", te.AttemptErrs)
	}
	for i, ae := range te.AttemptErrs {
		if want := fmt.Sprintf("attempt %d failed", i+1); ae.Error() != want {
			t.Errorf("AttemptErrs[%d] = %q, want %q", i, ae, want)
		}
	}
}

// TestPolicySingleAttemptErrorUntouched: without retries the settled
// error is exactly the attempt's error — no join, no AttemptErrs — so
// retry-free runs keep their historic byte-identical error strings.
func TestPolicySingleAttemptErrorUntouched(t *testing.T) {
	trials := []Trial{func() (any, error) { return nil, errors.New("always") }}
	_, errs := RunAllPolicy(context.Background(), trials, Policy{Workers: 1}, nil)
	var te *TrialError
	if !errors.As(errs[0], &te) {
		t.Fatalf("err = %v", errs[0])
	}
	if got := te.Error(); got != "trial 0: always" {
		t.Errorf("error = %q, want %q", got, "trial 0: always")
	}
	if te.AttemptErrs != nil {
		t.Errorf("AttemptErrs = %v, want nil for a single attempt", te.AttemptErrs)
	}
}

// TestPolicyRetriesMixedKinds: stalls and panics join alongside plain
// errors, each attempt keeping its own cause line.
func TestPolicyRetriesMixedKinds(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var calls atomic.Int32
	trials := []Trial{func() (any, error) {
		switch calls.Add(1) {
		case 1:
			<-release // stalls
			return nil, nil
		case 2:
			panic("boom")
		default:
			return nil, errors.New("plain")
		}
	}}
	pol := Policy{Workers: 1, Timeout: 20 * time.Millisecond, Retries: 2}
	_, errs := RunAllPolicy(context.Background(), trials, pol, nil)
	var te *TrialError
	if !errors.As(errs[0], &te) {
		t.Fatalf("err = %v", errs[0])
	}
	if !errors.Is(te, ErrStalled) {
		t.Errorf("joined error lost the stall: %v", te)
	}
	if len(te.AttemptErrs) != 3 {
		t.Fatalf("AttemptErrs = %v, want 3 entries", te.AttemptErrs)
	}
	if got := te.AttemptErrs[1].Error(); got != "panic: boom" {
		t.Errorf("AttemptErrs[1] = %q, want %q", got, "panic: boom")
	}
	if got := te.AttemptErrs[2].Error(); got != "plain" {
		t.Errorf("AttemptErrs[2] = %q, want %q", got, "plain")
	}
}

// TestPolicyRetriesPanic: panics consume attempts like errors.
func TestPolicyRetriesPanic(t *testing.T) {
	calls := 0
	trials := []Trial{func() (any, error) {
		calls++
		if calls == 1 {
			panic("once")
		}
		return calls, nil
	}}
	res, errs := RunAllPolicy(context.Background(), trials, Policy{Workers: 1, Retries: 1}, nil)
	if errs[0] != nil || res[0] != 2 {
		t.Fatalf("res=%v err=%v", res[0], errs[0])
	}
}

// TestPolicyTimeoutStall: a stalled trial settles as ErrStalled instead
// of hanging the pool, and a retry can recover it.
func TestPolicyTimeoutStall(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	// The stalled attempt's goroutine is abandoned, not killed, so it
	// races the retry for the counter unless it is atomic.
	var calls atomic.Int32
	trials := []Trial{func() (any, error) {
		if calls.Add(1) == 1 {
			<-release // stalls until test cleanup
		}
		return "ok", nil
	}}
	pol := Policy{Workers: 1, Timeout: 20 * time.Millisecond, Retries: 1}
	res, errs := RunAllPolicy(context.Background(), trials, pol, nil)
	if errs[0] != nil || res[0] != "ok" {
		t.Fatalf("res=%v err=%v", res[0], errs[0])
	}

	// Without retries the stall is the settled error.
	release2 := make(chan struct{})
	defer close(release2)
	trials = []Trial{func() (any, error) { <-release2; return nil, nil }}
	_, errs = RunAllPolicy(context.Background(), trials, Policy{Workers: 1, Timeout: 20 * time.Millisecond}, nil)
	if !errors.Is(errs[0], ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", errs[0])
	}
}

// TestPolicyBackoffCancellation: a context cancelled during backoff
// settles promptly with the cancellation.
func TestPolicyBackoffCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	trials := []Trial{func() (any, error) {
		cancel()
		return nil, errors.New("fail then wait")
	}}
	pol := Policy{Workers: 1, Retries: 3, Backoff: func(int) time.Duration { return time.Hour }}
	done := make(chan []error, 1)
	go func() {
		_, errs := RunAllPolicy(ctx, trials, pol, nil)
		done <- errs
	}()
	select {
	case errs := <-done:
		if !errors.Is(errs[0], context.Canceled) {
			t.Fatalf("err = %v, want Canceled", errs[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backoff ignored cancellation")
	}
}

// TestExpBackoffSchedule pins the deterministic schedule.
func TestExpBackoffSchedule(t *testing.T) {
	b := ExpBackoff(10 * time.Millisecond)
	want := []time.Duration{
		10 * time.Millisecond,  // attempt 2 (first retry)
		20 * time.Millisecond,  // attempt 3
		40 * time.Millisecond,  // attempt 4
		80 * time.Millisecond,  // attempt 5
		160 * time.Millisecond, // attempt 6
		320 * time.Millisecond, // attempt 7 (cap)
		320 * time.Millisecond, // attempt 8 (capped)
	}
	for i, w := range want {
		if got := b(i + 2); got != w {
			t.Errorf("backoff(attempt %d) = %v, want %v", i+2, got, w)
		}
	}
}

// TestZeroPolicyMatchesRunAll: the zero policy reproduces the bare
// pool's behaviour exactly.
func TestZeroPolicyMatchesRunAll(t *testing.T) {
	trials := []Trial{
		func() (any, error) { return 1, nil },
		func() (any, error) { return nil, errors.New("bad") },
		func() (any, error) { panic("boom") },
	}
	ra, ea := RunAll(context.Background(), trials, 2)
	rp, ep := RunAllPolicy(context.Background(), trials, Policy{Workers: 2}, nil)
	for i := range trials {
		if ra[i] != rp[i] {
			t.Errorf("trial %d results differ: %v vs %v", i, ra[i], rp[i])
		}
		switch {
		case ea[i] == nil && ep[i] == nil:
		case ea[i] == nil || ep[i] == nil || ea[i].Error() != ep[i].Error():
			t.Errorf("trial %d errors differ: %v vs %v", i, ea[i], ep[i])
		}
	}
}
