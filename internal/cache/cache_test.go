package cache

import (
	"testing"
	"testing/quick"

	"metaleak/internal/arch"
)

func mk(t *testing.T, size, ways int, pol Policy) *Cache {
	t.Helper()
	return New(Config{Name: "t", SizeBytes: size, Ways: ways, HitLatency: 1, Policy: pol})
}

func TestMissThenHit(t *testing.T) {
	c := mk(t, 8*64, 2, LRU)
	b := arch.BlockID(5)
	if c.Access(b, false) {
		t.Fatal("cold access hit")
	}
	c.Insert(b, false)
	if !c.Access(b, false) {
		t.Fatal("warm access missed")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 1 set, 2 ways.
	c := mk(t, 2*64, 2, LRU)
	a, b, d := arch.BlockID(0), arch.BlockID(1), arch.BlockID(2)
	c.Insert(a, false)
	c.Insert(b, false)
	c.Access(a, false) // a more recent than b
	ev, had := c.Insert(d, false)
	if !had || ev.Block != b {
		t.Fatalf("expected b evicted, got %+v had=%v", ev, had)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := mk(t, 1*64, 1, LRU)
	c.Insert(arch.BlockID(1), true)
	ev, had := c.Insert(arch.BlockID(2), false)
	if !had || !ev.Dirty || ev.Block != 1 {
		t.Fatalf("dirty eviction not reported: %+v", ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writeback count = %d", c.Stats().Writebacks)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := mk(t, 1*64, 1, LRU)
	c.Insert(arch.BlockID(1), false)
	c.Access(arch.BlockID(1), true)
	_, dirty := c.Invalidate(arch.BlockID(1))
	if !dirty {
		t.Fatal("write hit did not mark line dirty")
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	c := mk(t, 2*64, 2, LRU)
	c.Insert(arch.BlockID(0), false)
	c.Insert(arch.BlockID(1), false)
	// Re-inserting 0 must not evict and must refresh LRU position.
	if _, had := c.Insert(arch.BlockID(0), true); had {
		t.Fatal("re-insert evicted")
	}
	ev, _ := c.Insert(arch.BlockID(2), false)
	if ev.Block != 1 {
		t.Fatalf("expected 1 evicted, got %d", ev.Block)
	}
	// The refreshed line must have merged the dirty flag.
	_, dirty := c.Invalidate(arch.BlockID(0))
	if !dirty {
		t.Fatal("re-insert lost dirty flag")
	}
}

func TestSetIndexDistinctSets(t *testing.T) {
	c := mk(t, 4*64, 1, LRU) // 4 sets, direct mapped
	// Blocks 0..3 map to different sets; inserting all must evict none.
	for i := 0; i < 4; i++ {
		if _, had := c.Insert(arch.BlockID(i), false); had {
			t.Fatalf("block %d caused eviction", i)
		}
	}
	// Block 4 collides with block 0.
	ev, had := c.Insert(arch.BlockID(4), false)
	if !had || ev.Block != 0 {
		t.Fatalf("expected block 0 evicted, got %+v", ev)
	}
}

func TestFlushAllWritesBackDirty(t *testing.T) {
	c := mk(t, 4*64, 2, LRU)
	c.Insert(arch.BlockID(1), true)
	c.Insert(arch.BlockID(2), false)
	var flushed []arch.BlockID
	c.FlushAll(func(b arch.BlockID) { flushed = append(flushed, b) })
	if len(flushed) != 1 || flushed[0] != 1 {
		t.Fatalf("flushed = %v", flushed)
	}
	if c.Contains(1) || c.Contains(2) {
		t.Fatal("flush left lines valid")
	}
}

func TestRandomPolicyStaysWithinWays(t *testing.T) {
	c := mk(t, 4*64, 4, Random) // 1 set, 4 ways
	for i := 0; i < 100; i++ {
		c.Insert(arch.BlockID(i), false)
		if n := c.Occupancy(arch.BlockID(0)); n > 4 {
			t.Fatalf("occupancy %d exceeds ways", n)
		}
	}
}

// Property: occupancy never exceeds associativity and a just-inserted
// block is always resident.
func TestQuickOccupancyInvariant(t *testing.T) {
	c := mk(t, 64*64, 8, LRU)
	f := func(blocks []uint16) bool {
		for _, raw := range blocks {
			b := arch.BlockID(raw)
			c.Insert(b, raw%3 == 0)
			if !c.Contains(b) {
				return false
			}
			if c.Occupancy(b) > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: an eviction set of `ways` distinct conflicting blocks always
// evicts the target under LRU — the primitive mEvict relies on.
func TestQuickEvictionSetAlwaysEvicts(t *testing.T) {
	f := func(seed uint8) bool {
		c := mk(t, 128*64, 8, LRU) // 16 sets
		target := arch.BlockID(seed)
		c.Insert(target, false)
		set := c.SetIndex(target)
		// 8 distinct conflicting blocks (same set, different tags).
		for i := 1; i <= 8; i++ {
			b := target + arch.BlockID(16*i)
			if c.SetIndex(b) != set {
				return false
			}
			c.Insert(b, false)
		}
		return !c.Contains(target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-power-of-two sets")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 3 * 64, Ways: 1, HitLatency: 1})
}

func TestNewRejectsNonDivisibleGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-divisible geometry")
		}
	}()
	// 24 KiB + 64 B over 3 ways truncates to a power-of-two set count
	// (128) while silently dropping capacity; it must be rejected loudly.
	New(Config{Name: "bad", SizeBytes: 24*1024 + 64, Ways: 3})
}
