// Package cache implements the set-associative caches of the simulated
// machine: the private L1/L2, the shared L3, and the memory controller's
// shared metadata cache that holds encryption counter blocks and integrity
// tree node blocks.
//
// A Cache tracks block identity and dirtiness only; block contents live in
// the secure memory controller's backing store. Evictions are reported to
// the caller so the controller can perform write-backs (which is where the
// lazy integrity tree update of §V of the paper happens).
package cache

import (
	"fmt"

	"metaleak/internal/arch"
)

// Policy selects the replacement policy for a cache.
type Policy int

const (
	// LRU replaces the least recently used way.
	LRU Policy = iota
	// Random replaces a uniformly random way.
	Random
)

// Config describes one cache instance.
type Config struct {
	Name       string      // for diagnostics ("L1", "meta", ...)
	SizeBytes  int         // total capacity
	Ways       int         // associativity
	HitLatency arch.Cycles // access latency on hit
	Policy     Policy
	Seed       uint64 // RNG seed for Random policy
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / arch.BlockSize / c.Ways }

// Eviction describes a block displaced by an Insert.
type Eviction struct {
	Block arch.BlockID
	Dirty bool
}

// Stats counts cache events since construction.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

type line struct {
	block   arch.BlockID
	valid   bool
	dirty   bool
	lastUse uint64
}

// Cache is a set-associative cache. It is not safe for concurrent use; the
// simulator is single-threaded by design (determinism).
type Cache struct {
	cfg   Config
	sets  [][]line
	tick  uint64
	rng   *arch.RNG
	stats Stats
}

// New builds a cache from the configuration. It panics on a configuration
// that does not describe a whole power-of-two number of sets, since the
// index function relies on it, or whose size is not an exact multiple of
// BlockSize×Ways — integer truncation in Sets() would otherwise silently
// shrink capacity whenever the truncated set count happens to land on a
// power of two.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache %s: invalid config %+v", cfg.Name, cfg))
	}
	if cfg.SizeBytes%(arch.BlockSize*cfg.Ways) != 0 {
		panic(fmt.Sprintf("cache %s: size %d B is not a multiple of block size %d x %d ways",
			cfg.Name, cfg.SizeBytes, arch.BlockSize, cfg.Ways))
	}
	n := cfg.Sets()
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, n))
	}
	sets := make([][]line, n)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, rng: arch.NewRNG(cfg.Seed ^ 0xcafe)}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetIndex returns the set a block maps to.
func (c *Cache) SetIndex(b arch.BlockID) int {
	return int(uint64(b) & uint64(len(c.sets)-1))
}

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() arch.Cycles { return c.cfg.HitLatency }

func (c *Cache) find(b arch.BlockID) (int, int) {
	si := c.SetIndex(b)
	for wi := range c.sets[si] {
		if c.sets[si][wi].valid && c.sets[si][wi].block == b {
			return si, wi
		}
	}
	return si, -1
}

// Contains reports whether the block is present without updating
// replacement state. It exists for the simulator's introspection and for
// tests; real accesses go through Access/Insert.
func (c *Cache) Contains(b arch.BlockID) bool {
	_, wi := c.find(b)
	return wi >= 0
}

// Access looks up the block, updating replacement state and statistics.
// If write is true and the block hits, the line is marked dirty.
// It returns whether the access hit.
func (c *Cache) Access(b arch.BlockID, write bool) bool {
	si, wi := c.find(b)
	if wi < 0 {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.tick++
	c.sets[si][wi].lastUse = c.tick
	if write {
		c.sets[si][wi].dirty = true
	}
	return true
}

// Insert places the block into the cache (after a miss) and returns the
// eviction it caused, if any. If the block is already present the line is
// refreshed in place and no eviction occurs. The dirty flag marks the newly
// inserted line (true for write allocations).
func (c *Cache) Insert(b arch.BlockID, dirty bool) (Eviction, bool) {
	si, wi := c.find(b)
	c.tick++
	if wi >= 0 {
		c.sets[si][wi].lastUse = c.tick
		c.sets[si][wi].dirty = c.sets[si][wi].dirty || dirty
		return Eviction{}, false
	}
	// Choose a victim: an invalid way if one exists, else by policy.
	victim := -1
	for i := range c.sets[si] {
		if !c.sets[si][i].valid {
			victim = i
			break
		}
	}
	var ev Eviction
	evicted := false
	if victim < 0 {
		switch c.cfg.Policy {
		case Random:
			victim = c.rng.Intn(c.cfg.Ways)
		default: // LRU
			victim = 0
			for i := 1; i < c.cfg.Ways; i++ {
				if c.sets[si][i].lastUse < c.sets[si][victim].lastUse {
					victim = i
				}
			}
		}
		l := c.sets[si][victim]
		ev = Eviction{Block: l.block, Dirty: l.dirty}
		evicted = true
		c.stats.Evictions++
		if l.dirty {
			c.stats.Writebacks++
		}
	}
	c.sets[si][victim] = line{block: b, valid: true, dirty: dirty, lastUse: c.tick}
	return ev, evicted
}

// Invalidate removes the block if present and returns whether it was dirty.
// Unlike a natural eviction the caller decides what to do with the dirty
// state (a flush instruction writes back; an attack helper may drop it).
func (c *Cache) Invalidate(b arch.BlockID) (wasPresent, wasDirty bool) {
	si, wi := c.find(b)
	if wi < 0 {
		return false, false
	}
	dirty := c.sets[si][wi].dirty
	c.sets[si][wi] = line{}
	return true, dirty
}

// FlushAll invalidates every line, invoking fn (if non-nil) for each dirty
// line before it is dropped so the caller can write it back.
func (c *Cache) FlushAll(fn func(arch.BlockID)) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := c.sets[si][wi]
			if l.valid && l.dirty && fn != nil {
				fn(l.block)
			}
			c.sets[si][wi] = line{}
		}
	}
}

// Occupancy returns the number of valid lines in the set that the given
// block maps to — used by tests and by eviction-set construction.
func (c *Cache) Occupancy(b arch.BlockID) int {
	si := c.SetIndex(b)
	n := 0
	for _, l := range c.sets[si] {
		if l.valid {
			n++
		}
	}
	return n
}

// BlocksInSet returns the valid blocks currently resident in the set that
// the given block maps to, in way order. Diagnostic use only.
func (c *Cache) BlocksInSet(b arch.BlockID) []arch.BlockID {
	si := c.SetIndex(b)
	var out []arch.BlockID
	for _, l := range c.sets[si] {
		if l.valid {
			out = append(out, l.block)
		}
	}
	return out
}
