package machine

import (
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/crypto"
	"metaleak/internal/ctr"
	"metaleak/internal/itree"
)

// buildScheme constructs the encryption counter scheme for a design point.
func buildScheme(dp DesignPoint) ctr.Scheme {
	switch dp.Counter {
	case CounterSC, "":
		return ctr.NewSC(ctr.SCConfig{MinorBits: dp.MinorBits})
	case CounterMoC:
		return ctr.NewMoC(ctr.MoCConfig{Bits: dp.MoCBits})
	case CounterGC:
		return ctr.NewGC(ctr.GCConfig{Bits: dp.GCBits})
	default:
		panic(fmt.Sprintf("machine: unknown counter scheme %q", dp.Counter))
	}
}

// counterBlocksFor computes how many counter blocks the tree must cover
// for the design point's secure region.
func counterBlocksFor(dp DesignPoint) int {
	dataBlocks := dp.SecurePages * arch.BlocksPerPage
	switch dp.Counter {
	case CounterSC, "":
		return dp.SecurePages // one counter block per page
	default:
		return dataBlocks / 8 // eight 64-bit counters/snapshots per block
	}
}

// buildTree constructs the integrity tree for a design point. The hasher
// is a standalone engine with the same configuration the controller will
// use, so tree hashes and controller hashes agree.
func buildTree(dp DesignPoint, _ ctr.Scheme) itree.Tree {
	h := crypto.New(crypto.Config{AESLatency: 20, HashLatency: dp.HashLat, Fast: dp.FastCrypto})
	nCB := counterBlocksFor(dp)
	switch dp.Tree {
	case TreeSCT, "":
		ar := dp.TreeArities
		if ar == nil {
			ar = []int{32, 16, 16, 16, 16, 16}
		}
		bits := dp.MinorBits
		if bits == 0 {
			bits = 7
		}
		cfg := itree.VTreeConfig{
			Name: "SCT", Arities: ar, MinorBits: bits, CounterBlocks: nCB,
		}
		if dp.IsolatedDomains > 0 {
			return itree.NewPartitioned(cfg, dp.IsolatedDomains, h)
		}
		return itree.NewVTree(cfg, h)
	case TreeSIT:
		ar := dp.TreeArities
		if ar == nil {
			ar = []int{8, 8, 8}
		}
		cfg := itree.VTreeConfig{
			Name: "SIT", Arities: ar, MinorBits: 56, CounterBlocks: nCB,
		}
		if dp.IsolatedDomains > 0 {
			return itree.NewPartitioned(cfg, dp.IsolatedDomains, h)
		}
		return itree.NewVTree(cfg, h)
	case TreeHT:
		if dp.IsolatedDomains > 0 {
			panic("machine: isolated domains require a version tree (SCT/SIT)")
		}
		ar := dp.TreeArities
		if ar == nil {
			ar = []int{8, 8, 8, 8, 8, 8}
		}
		return itree.NewHTree(itree.HTreeConfig{Arities: ar, CounterBlocks: nCB}, h)
	default:
		panic(fmt.Sprintf("machine: unknown tree %q", dp.Tree))
	}
}
