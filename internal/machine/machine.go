// Package machine assembles complete simulated secure processors from
// design points — the builder behind the public metaleak facade. It is a
// reproduction of "MetaLeak: Uncovering Side
// Channels in Secure Processor Architectures Exploiting Metadata"
// (Chowdhuryy, Zheng, Yao — ISCA 2024) as a deterministic, cycle-level
// secure-processor simulator plus the full attack framework.
//
// The package exposes:
//
//   - design points (DesignPoint / ConfigSCT, ConfigHT, ConfigSGX, and the
//     §IV ablation variants) describing a complete secure processor;
//   - NewSystem, which builds the simulated machine (cores, caches, secure
//     memory controller, encryption counters, integrity tree);
//   - the MetaLeak attack primitives and end-to-end attacks re-exported
//     from the internal packages.
//
// All timing is simulated cycles — results are exactly reproducible and
// independent of the host (Go's GC and runtime make wall-clock timing side
// channels impractical, so the simulator is the faithful substrate; see
// DESIGN.md).
package machine

import (
	"metaleak/internal/arch"
	"metaleak/internal/cache"
	"metaleak/internal/crypto"
	"metaleak/internal/dram"
	"metaleak/internal/faults"
	"metaleak/internal/mirage"
	"metaleak/internal/secmem"
	"metaleak/internal/sim"
)

// CounterKind selects the encryption counter scheme of §IV-A.
type CounterKind string

// Counter schemes.
const (
	CounterGC  CounterKind = "GC"  // one global counter, whole-memory groups
	CounterMoC CounterKind = "MoC" // one counter per block
	CounterSC  CounterKind = "SC"  // split counters: major per page + 7-bit minors
)

// TreeKind selects the integrity tree design of §IV-C.
type TreeKind string

// Integrity trees.
const (
	TreeHT  TreeKind = "HT"  // 8-ary Bonsai Merkle hash tree
	TreeSCT TreeKind = "SCT" // split-counter tree (VAULT-style)
	TreeSIT TreeKind = "SIT" // SGX integrity tree (monolithic counters)
)

// DesignPoint describes one complete secure-processor configuration — the
// simulator equivalent of a row in Table I.
type DesignPoint struct {
	Name string

	Counter     CounterKind
	MinorBits   uint // SC/SCT minor width (default 7)
	MoCBits     uint // MoC counter width (default 56)
	GCBits      uint // GC counter width (default 32)
	Tree        TreeKind
	TreeArities []int // stored-level fan-ins, leaf first

	SecurePages int // size of the protected region, in pages

	Cores int
	// NoiseInterval enables background traffic: one jittered burst roughly
	// every this many cycles (0 = off).
	NoiseInterval arch.Cycles
	NoisePages    int
	Seed          uint64

	// SGX marks the SGX calibration (slower EPC path latencies, privileged
	// attacker model in the attack layer).
	SGX bool

	// Insecure builds the unprotected baseline: no encryption, MAC,
	// counters, or integrity tree. Used by the overhead ablation.
	Insecure bool

	// SocketOf assigns cores to sockets (nil: single socket); cores off
	// socket 0 pay a cross-socket hop to reach the shared LLC/MC.
	SocketOf []int

	// RandomizedMeta organizes the metadata cache as a MIRAGE instance
	// (the §IX-B defence deployed): conflict-based mEvict becomes
	// impossible; only volume-based eviction remains.
	RandomizedMeta bool

	// IsolatedDomains enables the §IX-C defence: the secure region is
	// split into this many fixed per-core domains, each covered by its own
	// integrity tree with a private on-chip root. Requires a version tree
	// (SCT/SIT) and SecurePages divisible by the domain count.
	IsolatedDomains int

	// FastCrypto swaps AES/GHASH for fast keyed mixers. Functional
	// properties (tamper detection) are preserved; use for very long
	// sweeps only.
	FastCrypto bool

	// Contract overrides the design point's derived leakage contract
	// (internal/contract grammar, DESIGN.md §13): what an attacker at
	// the memory controller may observe, which of it the design admits
	// leaking, and which channels its attack model requires to be live.
	// Empty derives the default contract for the design; "none" declares
	// a design that admits no leakage at all (every divergence is a
	// violation). Settable per sweep/hunt cell via `-set Contract=...`.
	Contract string

	// FaultSpec attaches a machine-level fault plan (internal/faults
	// grammar, machine: entries only): planned corruptions of off-chip
	// metadata that the controller's verification must catch. The plan
	// resolves against Seed, so it participates in reproducibility and
	// checkpoint fingerprints like every other design knob. NewSystem
	// panics on a malformed spec; the CLI validates specs up front.
	FaultSpec string

	// Latency model knobs (zero values select the calibrated defaults).
	QueueDelay arch.Cycles
	MACLatency arch.Cycles
	MetaHit    arch.Cycles
	HashLat    arch.Cycles
	TreeStep   arch.Cycles
	DRAM       dram.Config
	MetaKB     int // metadata cache size (Table I: 256 KB)
	MetaWays   int
}

// ConfigSCT returns the paper's primary simulated design: split-counter
// encryption with a split-counter tree (VAULT), Table I top half.
func ConfigSCT() DesignPoint {
	return DesignPoint{
		Name:        "SCT",
		Counter:     CounterSC,
		MinorBits:   7,
		Tree:        TreeSCT,
		TreeArities: []int{32, 16, 16, 16, 16, 16},
		SecurePages: 1 << 24, // 64 GiB of protected memory
		Cores:       4,
		MetaKB:      256,
		MetaWays:    8,
	}
}

// ConfigHT returns the hash-tree design (Rogers et al. BMT), Table I.
func ConfigHT() DesignPoint {
	dp := ConfigSCT()
	dp.Name = "HT"
	dp.Tree = TreeHT
	dp.TreeArities = []int{8, 8, 8, 8, 8, 8}
	return dp
}

// ConfigSGX returns the SGX hardware calibration: 56-bit monolithic
// encryption counters and the 8-ary 4-level SGX integrity tree over a
// 128 MiB EPC, with the slower measured latency bands of Fig. 7.
func ConfigSGX() DesignPoint {
	return DesignPoint{
		Name:        "SGX",
		Counter:     CounterMoC,
		MoCBits:     56,
		Tree:        TreeSIT,
		TreeArities: []int{8, 8, 8},
		SecurePages: 1 << 15, // 128 MiB EPC
		Cores:       4,
		SGX:         true,
		MetaKB:      64,
		MetaWays:    8,
		QueueDelay:  20,
		MACLatency:  30,
		HashLat:     40,
		DRAM: func() dram.Config {
			d := dram.DefaultConfig()
			d.RowHit = 50
			d.RowMiss = 70
			d.RowConflict = 100
			d.WriteLat = 50
			return d
		}(),
	}
}

// System is the assembled machine: the simulator plus handles to its
// parts and the design point that built it.
type System struct {
	*sim.System
	DP   DesignPoint
	Ctrl *secmem.Controller
}

// NewSystem builds the simulated secure processor for a design point.
func NewSystem(dp DesignPoint) *System {
	if dp.Cores == 0 {
		dp.Cores = 4
	}
	if dp.SecurePages == 0 {
		dp.SecurePages = 1 << 20
	}
	if dp.MetaKB == 0 {
		dp.MetaKB = 256
	}
	if dp.MetaWays == 0 {
		dp.MetaWays = 8
	}
	if dp.QueueDelay == 0 {
		dp.QueueDelay = 10
	}
	if dp.MACLatency == 0 {
		dp.MACLatency = 30
	}
	if dp.MetaHit == 0 {
		dp.MetaHit = 2
	}
	if dp.HashLat == 0 {
		dp.HashLat = 12
	}
	if dp.TreeStep == 0 {
		dp.TreeStep = 30
		if dp.SGX {
			dp.TreeStep = 80
		}
	}
	if dp.DRAM.Banks() == 0 {
		dp.DRAM = dram.DefaultConfig()
	}

	scheme := buildScheme(dp)
	tree := buildTree(dp, scheme)

	mcCfg := secmem.Config{
		DRAM: dp.DRAM,
		Meta: cache.Config{
			Name:       "meta",
			SizeBytes:  dp.MetaKB * 1024,
			Ways:       dp.MetaWays,
			HitLatency: dp.MetaHit,
			Seed:       dp.Seed + 77,
		},
		Engine: crypto.Config{
			AESLatency:  20,
			HashLatency: dp.HashLat,
			Fast:        dp.FastCrypto,
		},
		QueueDelay:    dp.QueueDelay,
		MACLatency:    dp.MACLatency,
		TreeStepDelay: dp.TreeStep,
		Plain:         dp.Insecure,
	}
	if dp.RandomizedMeta {
		blocks := dp.MetaKB * 1024 / arch.BlockSize
		mcCfg.RandomizedMeta = &mirage.Config{
			DataBlocks: blocks,
			Sets:       blocks / 16, // two skews of 8 base ways
			BaseWays:   8,
			ExtraWays:  6,
			Seed:       dp.Seed + 99,
		}
	}
	mc := secmem.New(mcCfg, scheme, tree)
	if dp.FaultSpec != "" {
		if inj := faults.MustParse(dp.FaultSpec).Injector(dp.Seed); inj != nil {
			mc.SetInjector(inj)
		}
	}

	l3Hit := arch.Cycles(29)
	if dp.SGX {
		l3Hit = 49
	}
	domainPages := 0
	if dp.IsolatedDomains > 0 {
		domainPages = dp.SecurePages / dp.IsolatedDomains
	}
	simCfg := sim.Config{
		Cores:              dp.Cores,
		L1:                 cache.Config{Name: "L1", SizeBytes: 32 * 1024, Ways: 8, HitLatency: 1},
		L2:                 cache.Config{Name: "L2", SizeBytes: 1024 * 1024, Ways: 4, HitLatency: 10},
		L3:                 cache.Config{Name: "L3", SizeBytes: 8 * 1024 * 1024, Ways: 16, HitLatency: l3Hit},
		SecurePages:        dp.SecurePages,
		DomainPages:        domainPages,
		SocketOf:           dp.SocketOf,
		CrossSocketLatency: 120,
		NoiseInterval:      dp.NoiseInterval,
		NoisePages:         dp.NoisePages,
		Seed:               dp.Seed,
	}
	return &System{System: sim.New(simCfg, mc), DP: dp, Ctrl: mc}
}
