package machine

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// Design-point overrides: a small reflection-backed setter that turns
// "Field=value" strings into DesignPoint mutations. This is what gives
// the sweep CLI every ablation axis the struct exposes without growing a
// flag per field — `-set FastCrypto=true`, `-set Cores=8`,
// `-set TreeArities=8,8,8` — while keeping the failure modes typed so
// callers can tell "no such field" from "field exists but is not
// settable from a string" (e.g. the nested DRAM config).

// ErrUnknownField reports an override naming no DesignPoint field.
var ErrUnknownField = errors.New("unknown DesignPoint field")

// ErrUnsupportedField reports an override naming a field whose type the
// string setter does not handle (nested structs like DRAM).
var ErrUnsupportedField = errors.New("DesignPoint field cannot be set from a string")

// FieldError wraps an override failure with the field it targeted.
// errors.Is sees through it to ErrUnknownField / ErrUnsupportedField /
// the strconv parse error.
type FieldError struct {
	Field string
	Err   error
}

func (e *FieldError) Error() string { return fmt.Sprintf("field %s: %v", e.Field, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *FieldError) Unwrap() error { return e.Err }

// FieldOverride is one parsed "Field=value" design-point override. The
// field name must match the Go field name of DesignPoint exactly.
type FieldOverride struct {
	Field string
	Value string
}

// ParseOverride splits a "Field=value" string. The value may be empty
// (clears a string field); the field name may not.
func ParseOverride(s string) (FieldOverride, error) {
	name, val, ok := strings.Cut(s, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return FieldOverride{}, fmt.Errorf("override %q is not of the form Field=value", s)
	}
	return FieldOverride{Field: name, Value: strings.TrimSpace(val)}, nil
}

// ParseOverrides parses a list of "Field=value" strings, failing on the
// first malformed element.
func ParseOverrides(ss []string) ([]FieldOverride, error) {
	out := make([]FieldOverride, 0, len(ss))
	for _, s := range ss {
		ov, err := ParseOverride(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ov)
	}
	return out, nil
}

// Apply sets the named field on dp, converting the string value to the
// field's type. Unknown fields, unsupported field types, and
// unparseable values all return a *FieldError.
func (o FieldOverride) Apply(dp *DesignPoint) error {
	f := reflect.ValueOf(dp).Elem().FieldByName(o.Field)
	if !f.IsValid() {
		return &FieldError{Field: o.Field, Err: fmt.Errorf("%w (settable fields: %s)",
			ErrUnknownField, strings.Join(OverridableFields(), " "))}
	}
	switch f.Kind() {
	case reflect.String:
		f.SetString(o.Value)
	case reflect.Bool:
		b, err := strconv.ParseBool(o.Value)
		if err != nil {
			return &FieldError{Field: o.Field, Err: err}
		}
		f.SetBool(b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v, err := strconv.ParseInt(o.Value, 10, 64)
		if err != nil {
			return &FieldError{Field: o.Field, Err: err}
		}
		if f.OverflowInt(v) {
			return &FieldError{Field: o.Field, Err: fmt.Errorf("value %d overflows %s", v, f.Type())}
		}
		f.SetInt(v)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v, err := strconv.ParseUint(o.Value, 10, 64)
		if err != nil {
			return &FieldError{Field: o.Field, Err: err}
		}
		if f.OverflowUint(v) {
			return &FieldError{Field: o.Field, Err: fmt.Errorf("value %d overflows %s", v, f.Type())}
		}
		f.SetUint(v)
	case reflect.Slice:
		if f.Type().Elem().Kind() != reflect.Int {
			return &FieldError{Field: o.Field, Err: ErrUnsupportedField}
		}
		var elems []int
		if o.Value != "" {
			for _, part := range strings.Split(o.Value, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return &FieldError{Field: o.Field, Err: err}
				}
				elems = append(elems, v)
			}
		}
		f.Set(reflect.ValueOf(elems))
	default:
		return &FieldError{Field: o.Field, Err: ErrUnsupportedField}
	}
	return nil
}

// ApplyOverrides applies the overrides to dp in order, failing on the
// first error.
func ApplyOverrides(dp *DesignPoint, ovs []FieldOverride) error {
	for _, ov := range ovs {
		if err := ov.Apply(dp); err != nil {
			return err
		}
	}
	return nil
}

// OverridableFields returns the sorted DesignPoint field names Apply can
// set — every field except ones with nested struct types.
func OverridableFields() []string {
	t := reflect.TypeOf(DesignPoint{})
	var out []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		switch f.Type.Kind() {
		case reflect.String, reflect.Bool,
			reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			out = append(out, f.Name)
		case reflect.Slice:
			if f.Type.Elem().Kind() == reflect.Int {
				out = append(out, f.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// UsesMinorBits reports whether the design point's behaviour depends on
// MinorBits: split-counter encryption (CounterSC, also the zero-value
// default) and the split-counter tree consume it; MoC/GC counters and
// the HT/SIT trees ignore it (SIT hardwires 56-bit counters). Sweeping
// MinorBits on a design point where this is false varies a label, not a
// machine.
func (dp DesignPoint) UsesMinorBits() bool {
	return dp.Counter == CounterSC || dp.Counter == "" ||
		dp.Tree == TreeSCT || dp.Tree == ""
}
