package machine

import (
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/secmem"
)

func TestConfigDefaults(t *testing.T) {
	for _, dp := range []DesignPoint{ConfigSCT(), ConfigHT(), ConfigSGX()} {
		sys := NewSystem(dp)
		if sys.Ctrl == nil || sys.System == nil {
			t.Fatalf("%s: incomplete system", dp.Name)
		}
		if sys.DP.Name != dp.Name {
			t.Fatalf("design point not preserved")
		}
	}
}

func TestSCTGeometryMatchesTableI(t *testing.T) {
	sys := NewSystem(ConfigSCT())
	tree := sys.Ctrl.Tree()
	if tree.Name() != "SCT" || tree.StoredLevels() != 6 {
		t.Fatalf("tree %s with %d levels", tree.Name(), tree.StoredLevels())
	}
	if tree.Arity(0) != 32 || tree.Arity(1) != 16 {
		t.Fatal("arities not 32-ary L0 / 16-ary L1+")
	}
	// One counter block per page over 64 GiB.
	if tree.CounterBlockCapacity() != 1<<24 {
		t.Fatalf("counter blocks = %d", tree.CounterBlockCapacity())
	}
	if sys.Ctrl.Counters().Name() != "SC" {
		t.Fatal("encryption scheme not SC")
	}
}

func TestSGXGeometryMatchesTableI(t *testing.T) {
	sys := NewSystem(ConfigSGX())
	tree := sys.Ctrl.Tree()
	if tree.Name() != "SIT" || tree.StoredLevels() != 3 {
		t.Fatalf("tree %s with %d stored levels", tree.Name(), tree.StoredLevels())
	}
	// L0 node covers one page: 8 counter blocks of 8 counters each.
	if tree.CoverageCounterBlocks(0) != 8 {
		t.Fatalf("L0 coverage = %d counter blocks", tree.CoverageCounterBlocks(0))
	}
	if sys.Ctrl.Counters().Name() != "MoC" {
		t.Fatal("encryption scheme not MoC")
	}
	// The §VIII-B page-group property: pages p and p+7 share L1; p and p+8
	// do not.
	cb := func(p arch.PageID) arch.BlockID { return sys.Ctrl.Counters().CounterBlock(p.Block(0)) }
	l1 := func(p arch.PageID) int { return tree.Path(cb(p))[1].Index }
	if l1(0) != l1(7) || l1(0) == l1(8) {
		t.Fatal("SIT 8-page L1 grouping violated")
	}
}

func TestGCBitsPlumbed(t *testing.T) {
	dp := ConfigSCT()
	dp.Counter = CounterGC
	dp.GCBits = 4
	dp.SecurePages = 1 << 12
	sys := NewSystem(dp)
	p := sys.AllocPage(0)
	overflowed := false
	for i := 0; i < 40 && !overflowed; i++ {
		res := sys.WriteThrough(0, p.Block(0), [arch.BlockSize]byte{byte(i)})
		overflowed = res.Report.Overflow
	}
	if !overflowed {
		t.Fatal("4-bit global counter never overflowed in 40 writes")
	}
}

func TestUnknownKindsPanic(t *testing.T) {
	bad := ConfigSCT()
	bad.Counter = "bogus"
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unknown counter scheme accepted")
			}
		}()
		NewSystem(bad)
	}()
	bad2 := ConfigSCT()
	bad2.Tree = "bogus"
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unknown tree accepted")
			}
		}()
		NewSystem(bad2)
	}()
}

func TestAccessPathsOnAllConfigs(t *testing.T) {
	for _, dp := range []DesignPoint{ConfigSCT(), ConfigHT(), ConfigSGX()} {
		sys := NewSystem(dp)
		p := sys.AllocPage(0)
		b := p.Block(0)
		_, cold := sys.Read(0, b)
		if cold.Report.Path != secmem.PathTreeMiss {
			t.Fatalf("%s: cold path = %v", dp.Name, cold.Report.Path)
		}
		_, hot := sys.Read(0, b)
		if hot.Report.Path != secmem.PathCacheHit {
			t.Fatalf("%s: hot path = %v", dp.Name, hot.Report.Path)
		}
		sys.Flush(0, b)
		_, warm := sys.Read(0, b)
		if warm.Report.Path != secmem.PathCounterHit {
			t.Fatalf("%s: warm path = %v", dp.Name, warm.Report.Path)
		}
		if sys.TamperDetections() != 0 {
			t.Fatalf("%s: spurious tamper detection", dp.Name)
		}
	}
}

func TestInsecureBaselineFlat(t *testing.T) {
	dp := ConfigSCT()
	dp.Insecure = true
	dp.SecurePages = 1 << 12
	sys := NewSystem(dp)
	p := sys.AllocPage(0)
	b := p.Block(0)
	var data [arch.BlockSize]byte
	data[0] = 7
	sys.Write(0, b, data)
	sys.Flush(0, b)
	got, res := sys.Read(0, b)
	if got != data {
		t.Fatal("plain round trip broken")
	}
	// No metadata machinery: no counter misses, no tree loads, ever.
	st := sys.Ctrl.Stats()
	if st.CounterMisses != 0 || st.TreeNodeLoads != 0 {
		t.Fatalf("insecure baseline touched metadata: %+v", st)
	}
	if res.Report.TreeLevelsLoaded != 0 {
		t.Fatal("plain read reported tree levels")
	}
}

func TestCombinedDefences(t *testing.T) {
	// Both §IX defences at once: isolated per-domain trees AND a
	// randomized metadata cache. The machine still runs; both attack
	// construction paths fail for their own reasons.
	dp := ConfigSCT()
	dp.SecurePages = 1 << 16
	dp.IsolatedDomains = 4
	dp.RandomizedMeta = true
	sys := NewSystem(dp)
	p := sys.AllocPage(0)
	sys.WriteThrough(0, p.Block(0), [arch.BlockSize]byte{1})
	got, _ := sys.Read(0, p.Block(0))
	if got[0] != 1 {
		t.Fatal("combined-defence machine broken")
	}
	if sys.Ctrl.Meta() != nil {
		t.Fatal("randomized meta cache exposes geometry")
	}
	if sys.TamperDetections() != 0 {
		t.Fatal("false tamper under combined defences")
	}
}
