package machine

import (
	"errors"
	"reflect"
	"testing"
)

func TestOverrideApplyKinds(t *testing.T) {
	dp := ConfigSCT()
	for _, s := range []string{
		"MinorBits=6",
		"MetaKB=64",
		"FastCrypto=true",
		"Cores=8",
		"NoiseInterval=8000",
		"Seed=42",
		"Counter=MoC",
		"TreeArities=8,8,8",
	} {
		ov, err := ParseOverride(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := ov.Apply(&dp); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if dp.MinorBits != 6 || dp.MetaKB != 64 || !dp.FastCrypto || dp.Cores != 8 {
		t.Fatalf("overrides not applied: %+v", dp)
	}
	if dp.NoiseInterval != 8000 || dp.Seed != 42 || dp.Counter != CounterMoC {
		t.Fatalf("overrides not applied: %+v", dp)
	}
	if !reflect.DeepEqual(dp.TreeArities, []int{8, 8, 8}) {
		t.Fatalf("slice override not applied: %v", dp.TreeArities)
	}
}

func TestOverrideTypedErrors(t *testing.T) {
	dp := ConfigSCT()
	err := (FieldOverride{Field: "NoSuchField", Value: "1"}).Apply(&dp)
	if !errors.Is(err, ErrUnknownField) {
		t.Fatalf("unknown field error = %v", err)
	}
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Field != "NoSuchField" {
		t.Fatalf("FieldError not exposed: %v", err)
	}

	err = (FieldOverride{Field: "DRAM", Value: "x"}).Apply(&dp)
	if !errors.Is(err, ErrUnsupportedField) {
		t.Fatalf("nested struct field error = %v", err)
	}

	if err := (FieldOverride{Field: "MinorBits", Value: "seven"}).Apply(&dp); err == nil {
		t.Fatal("unparseable value accepted")
	}
	if err := (FieldOverride{Field: "MinorBits", Value: "-1"}).Apply(&dp); err == nil {
		t.Fatal("negative value accepted for uint field")
	}
}

// TestOverrideErrorPathTable sweeps every reachable Apply failure:
// unknown fields, the unsupported nested-struct kind, and unparseable
// values for each settable kind. Every failure must surface as a
// *FieldError naming the field, with the sentinel (or strconv error)
// visible to errors.Is through it.
func TestOverrideErrorPathTable(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want error // sentinel expected via errors.Is; nil = any error
	}{
		{"unknown field", "NoSuchField=1", ErrUnknownField},
		{"unknown field case-sensitive", "minorbits=6", ErrUnknownField},
		{"nested struct unsupported", "DRAM=x", ErrUnsupportedField},
		{"uint from word", "MinorBits=seven", nil},
		{"uint from negative", "MinorBits=-1", nil},
		{"uint64 from float", "Seed=1.5", nil},
		{"int from float", "Cores=1.5", nil},
		{"bool from word", "FastCrypto=maybe", nil},
		{"int slice bad element", "TreeArities=8,x,8", nil},
		{"int slice empty element", "TreeArities=8,,8", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ov, err := ParseOverride(tc.spec)
			if err != nil {
				t.Fatalf("ParseOverride(%q): %v", tc.spec, err)
			}
			dp := ConfigSCT()
			before := dp
			err = ov.Apply(&dp)
			if err == nil {
				t.Fatalf("Apply(%q) succeeded", tc.spec)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("Apply(%q) = %v, want errors.Is(%v)", tc.spec, err, tc.want)
			}
			var fe *FieldError
			if !errors.As(err, &fe) || fe.Field != ov.Field {
				t.Errorf("Apply(%q): error %v does not name field %q", tc.spec, err, ov.Field)
			}
			if !reflect.DeepEqual(dp, before) {
				t.Errorf("Apply(%q) failed but mutated the design point", tc.spec)
			}
		})
	}
}

// TestOverrideAxisRemapEquivalence pins the contract the sweep CLI's
// -set remapping relies on: for a field the grid owns as an axis,
// applying the override to a design point is exactly what building the
// design point from the axis value produces — so `-set MinorBits=6`
// and `-minor 6` cannot drift apart at the machine layer.
func TestOverrideAxisRemapEquivalence(t *testing.T) {
	for _, spec := range []string{"MinorBits=6", "MetaKB=64", "NoiseInterval=8000"} {
		ov, err := ParseOverride(spec)
		if err != nil {
			t.Fatal(err)
		}
		viaOverride := ConfigSCT()
		if err := ov.Apply(&viaOverride); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		direct := ConfigSCT()
		switch ov.Field {
		case "MinorBits":
			direct.MinorBits = 6
		case "MetaKB":
			direct.MetaKB = 64
		case "NoiseInterval":
			direct.NoiseInterval = 8000
		}
		if !reflect.DeepEqual(viaOverride, direct) {
			t.Errorf("%s: override result diverges from direct field set:\n%+v\n%+v", spec, viaOverride, direct)
		}
	}
}

func TestParseOverride(t *testing.T) {
	if _, err := ParseOverride("MinorBits"); err == nil {
		t.Fatal("missing '=' accepted")
	}
	if _, err := ParseOverride("=6"); err == nil {
		t.Fatal("empty field name accepted")
	}
	ov, err := ParseOverride(" MinorBits = 6 ")
	if err != nil || ov.Field != "MinorBits" || ov.Value != "6" {
		t.Fatalf("whitespace not trimmed: %+v %v", ov, err)
	}
	if _, err := ParseOverrides([]string{"A=1", "broken"}); err == nil {
		t.Fatal("malformed list element accepted")
	}
}

func TestOverridableFields(t *testing.T) {
	fields := OverridableFields()
	want := map[string]bool{"MinorBits": true, "MetaKB": true, "FastCrypto": true, "TreeArities": true}
	for _, f := range fields {
		delete(want, f)
		if f == "DRAM" {
			t.Fatal("nested struct field listed as settable")
		}
	}
	if len(want) != 0 {
		t.Fatalf("settable fields missing from OverridableFields: %v (got %v)", want, fields)
	}
}

func TestUsesMinorBits(t *testing.T) {
	if !ConfigSCT().UsesMinorBits() {
		t.Fatal("SCT must use MinorBits (SC counters + SCT tree)")
	}
	if !ConfigHT().UsesMinorBits() {
		t.Fatal("HT must use MinorBits (SC counters)")
	}
	if ConfigSGX().UsesMinorBits() {
		t.Fatal("SGX must not use MinorBits (MoC counters + SIT tree hardwire 56 bits)")
	}
	if (DesignPoint{}).UsesMinorBits() != true {
		t.Fatal("zero-value design point defaults to SC counters")
	}
}
