package faults

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// DefaultStall is how long an injected stall blocks before giving up.
// It is deliberately far above any sensible per-trial deadline, so a
// stalled trial is always reported by the runner's timeout rather than
// by the stall expiring on its own — but it does expire, so a sweep run
// without deadlines still terminates.
const DefaultStall = 10 * time.Second

// ErrInjected marks a harness-injected trial failure (err and expired
// stall kinds). Callers can errors.Is against it to distinguish planned
// chaos from organic failures.
var ErrInjected = errors.New("faults: injected failure")

// Harness applies the plan's harness-level entries: it wraps trials so
// the planned attempts of the planned cells panic, stall, or error, and
// tears the checkpoint file at the planned append. Safe for concurrent
// use — trials run on the runner's worker pool.
type Harness struct {
	stall      time.Duration
	truncAfter int

	mu       sync.Mutex
	entries  []HarnessEntry
	attempts map[int]int
	crashed  bool

	// Disconnect entries keep their own counter map: a disconnect is
	// consulted by the dispatch worker before a leased cell runs, not by
	// WrapTrial, and the two must not share attempt counts (a dropped
	// lease never reaches the trial).
	disconnects []HarnessEntry
	dropSeen    map[int]int
}

// NewHarness builds the harness applying the plan's harness-level
// entries, or nil when the plan has none.
func (p *Plan) NewHarness() *Harness {
	if !p.HasHarness() {
		return nil
	}
	h := &Harness{stall: DefaultStall, attempts: make(map[int]int), dropSeen: make(map[int]int)}
	for _, he := range p.Harness {
		switch he.Kind {
		case HarnessTrunc:
			if h.truncAfter == 0 || he.Cell < h.truncAfter {
				h.truncAfter = he.Cell
			}
		case HarnessDisconnect, HarnessFlap:
			// Identical at the worker (drop the connection); flap differs
			// only in what the surrounding run promises — a supervised
			// fleet that respawns and reattaches.
			h.disconnects = append(h.disconnects, he)
		default:
			h.entries = append(h.entries, he)
		}
	}
	return h
}

// SetStall overrides how long injected stalls block (tests shorten it).
func (h *Harness) SetStall(d time.Duration) { h.stall = d }

// WrapTrial wraps a trial so the planned leading attempts for the cell
// fail the planned way. Unplanned cells and attempts past the planned
// count run the real trial untouched.
func (h *Harness) WrapTrial(cell int, run func() (any, error)) func() (any, error) {
	if h == nil {
		return run
	}
	return func() (any, error) {
		h.mu.Lock()
		h.attempts[cell]++
		attempt := h.attempts[cell]
		var hit *HarnessEntry
		for i := range h.entries {
			e := &h.entries[i]
			if e.Cell == cell && attempt <= e.Fails {
				hit = e
				break
			}
		}
		h.mu.Unlock()
		if hit == nil {
			return run()
		}
		switch hit.Kind {
		case HarnessPanic:
			panic(fmt.Sprintf("faults: injected panic (cell %d attempt %d)", cell, attempt))
		case HarnessStall:
			// Block well past any per-trial deadline; the runner's timeout
			// is what should report this trial, the expiry below only
			// bounds runs configured without one.
			time.Sleep(h.stall) //metalint:allow wallclock injected stall must consume real time for the runner deadline to fire
			return nil, fmt.Errorf("%w: stall expired after %v (cell %d attempt %d)", ErrInjected, h.stall, cell, attempt)
		default: // HarnessErr
			return nil, fmt.Errorf("%w: injected error (cell %d attempt %d)", ErrInjected, cell, attempt)
		}
	}
}

// Disconnect is the dispatch worker's fault hook: it reports whether
// the worker should drop its coordinator connection instead of running
// the cell, consuming one planned drop per call. With a shared
// in-process harness the planned drops for a cell fire on its first
// Fails lease offers wherever they land, exactly once each; with
// per-process harnesses (subprocess workers) each worker counts its own
// offers, so a cell re-leased to a fresh worker can drop again — either
// way the coordinator's retry budget bounds the chaos.
func (h *Harness) Disconnect(cell int) bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, he := range h.disconnects {
		if he.Cell != cell {
			continue
		}
		h.dropSeen[cell]++
		return h.dropSeen[cell] <= he.Fails
	}
	return false
}

// HasDisconnects reports whether the harness plans any disconnect
// faults (and hence needs a distributed run to exercise them).
func (h *Harness) HasDisconnects() bool {
	if h == nil {
		return false
	}
	return len(h.disconnects) > 0
}

// AfterAppend is the checkpoint tamper hook: the checkpoint calls it
// after its n-th successful append (n is 1-based) with the file path.
// At the planned append it tears a few bytes off the file's tail —
// leaving a torn trailing line, exactly what a crash mid-append leaves
// behind — and returns true, telling the checkpoint to simulate the
// writer's death by silently dropping all further persistence.
func (h *Harness) AfterAppend(path string, n int) (crashed bool) {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.crashed {
		return true
	}
	if h.truncAfter == 0 || n != h.truncAfter {
		return false
	}
	if st, err := os.Stat(path); err == nil && st.Size() > 9 {
		_ = os.Truncate(path, st.Size()-9)
	}
	h.crashed = true
	return true
}

// Crashed reports whether the planned checkpoint tear has fired.
func (h *Harness) Crashed() bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.crashed
}
