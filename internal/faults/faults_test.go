package faults

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"metaleak/internal/arch"
	"metaleak/internal/secmem"
)

func TestParseGrammar(t *testing.T) {
	p, err := Parse("machine:mac@40;machine:any@auto6/256; harness:panic@3x2 ;harness:trunc@2;harness:err@1")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Machine) != 2 || len(p.Harness) != 3 {
		t.Fatalf("parsed %d machine + %d harness entries, want 2+3", len(p.Machine), len(p.Harness))
	}
	if p.Machine[0].Class != secmem.InjectMAC || len(p.Machine[0].At) != 1 || p.Machine[0].At[0] != 40 {
		t.Errorf("machine[0] = %+v, want mac@40", p.Machine[0])
	}
	if !p.Machine[1].Any || p.Machine[1].Auto != 6 || p.Machine[1].Horizon != 256 {
		t.Errorf("machine[1] = %+v, want any auto6/256", p.Machine[1])
	}
	if p.Harness[0].Kind != HarnessPanic || p.Harness[0].Cell != 3 || p.Harness[0].Fails != 2 {
		t.Errorf("harness[0] = %+v, want panic cell 3 x2", p.Harness[0])
	}
	if p.Harness[1].Kind != HarnessTrunc || p.Harness[1].Cell != 2 {
		t.Errorf("harness[1] = %+v, want trunc@2", p.Harness[1])
	}
	if p.Harness[2].Fails != 1 {
		t.Errorf("harness err default fails = %d, want 1", p.Harness[2].Fails)
	}
	if got := p.MachineSpec(); got != "machine:mac@40;machine:any@auto6/256" {
		t.Errorf("MachineSpec() = %q", got)
	}
	if empty, err := Parse("  "); err != nil || empty.HasMachine() || empty.HasHarness() {
		t.Errorf("blank spec: %+v, %v", empty, err)
	}
}

// TestParseDisconnect: the disconnect kind parses like the other
// harness kinds, routes to the worker-side hook instead of WrapTrial,
// and re-renders through HarnessSpec so a distributed job can carry it.
func TestParseDisconnect(t *testing.T) {
	p, err := Parse("machine:mac@40;harness:disconnect@2x2;harness:err@5")
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasDisconnect() {
		t.Error("HasDisconnect() = false")
	}
	if p.Harness[0].Kind != HarnessDisconnect || p.Harness[0].Cell != 2 || p.Harness[0].Fails != 2 {
		t.Errorf("harness[0] = %+v, want disconnect cell 2 x2", p.Harness[0])
	}
	if got := p.HarnessSpec(); got != "harness:disconnect@2x2;harness:err@5" {
		t.Errorf("HarnessSpec() = %q", got)
	}
	if got := p.MachineSpec(); got != "machine:mac@40" {
		t.Errorf("MachineSpec() = %q", got)
	}
	if HarnessDisconnect.String() != "disconnect" {
		t.Errorf("String() = %q", HarnessDisconnect)
	}
	if q := MustParse("harness:err@1"); q.HasDisconnect() {
		t.Error("err-only plan claims a disconnect")
	}
}

// TestParseFlap: the flap kind (disconnect-then-reconnect) parses,
// counts as a disconnect for the needs-distributed check, routes to the
// worker-side drop hook, and re-renders through HarnessSpec.
func TestParseFlap(t *testing.T) {
	p, err := Parse("harness:flap@1x2;harness:flap@4")
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasDisconnect() {
		t.Error("flap plan: HasDisconnect() = false")
	}
	if p.Harness[0].Kind != HarnessFlap || p.Harness[0].Cell != 1 || p.Harness[0].Fails != 2 {
		t.Errorf("harness[0] = %+v, want flap cell 1 x2", p.Harness[0])
	}
	if got := p.HarnessSpec(); got != "harness:flap@1x2;harness:flap@4" {
		t.Errorf("HarnessSpec() = %q", got)
	}
	if HarnessFlap.String() != "flap" {
		t.Errorf("String() = %q", HarnessFlap)
	}
	h := p.NewHarness()
	if !h.HasDisconnects() {
		t.Error("flap harness: HasDisconnects() = false")
	}
	if !h.Disconnect(1) || !h.Disconnect(1) || h.Disconnect(1) {
		t.Error("flap drops did not fire exactly twice for cell 1")
	}
	if !h.Disconnect(4) || h.Disconnect(4) {
		t.Error("flap drops did not fire exactly once for cell 4")
	}
	if h.Disconnect(0) {
		t.Error("unplanned cell dropped")
	}
}

// TestHarnessDisconnect: planned drops fire on the cell's first Fails
// offers and never touch WrapTrial's attempt counting.
func TestHarnessDisconnect(t *testing.T) {
	h := MustParse("harness:disconnect@3x2;harness:err@3").NewHarness()
	if !h.HasDisconnects() {
		t.Fatal("HasDisconnects() = false")
	}
	if h.Disconnect(1) {
		t.Error("unplanned cell dropped")
	}
	if !h.Disconnect(3) || !h.Disconnect(3) {
		t.Error("planned drops did not fire twice")
	}
	if h.Disconnect(3) {
		t.Error("drop fired past its budget")
	}
	// The err@3 entry still owns the trial-level attempt counter.
	if _, err := h.WrapTrial(3, func() (any, error) { return nil, nil })(); !errors.Is(err, ErrInjected) {
		t.Errorf("WrapTrial attempt after drops: err = %v, want injected", err)
	}
	var nilH *Harness
	if nilH.Disconnect(0) || nilH.HasDisconnects() {
		t.Error("nil harness must be inert")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"machine:mac",             // no @where
		"nowhere:mac@1",           // unknown surface
		"machine:quantum@1",       // unknown class
		"machine:mac@0",           // ordinals are 1-based
		"machine:mac@auto0",       // zero count
		"machine:mac@auto3/0",     // zero horizon
		"harness:flake@1",         // unknown kind
		"harness:panic@-1",        // negative cell
		"harness:panic@1x0",       // zero attempt count
		"harness:trunc@0",         // trunc ordinal is 1-based
		"harness:trunc@2x3",       // trunc takes no attempt count
		"machine:mac@40;harness:", // trailing junk entry
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	p := MustParse("machine:any@auto8/64;machine:minor@5")
	a := p.Injector(42)
	b := p.Injector(42)
	if a.Planned() != 9 || b.Planned() != 9 {
		t.Fatalf("planned %d/%d, want 9", a.Planned(), b.Planned())
	}
	blk := arch.PageID(1).Block(0)
	for seq := uint64(1); seq <= 64; seq++ {
		ca := a.Inject(seq, blk, false)
		cb := b.Inject(seq, blk, false)
		if len(ca) != len(cb) {
			t.Fatalf("seq %d: %v vs %v", seq, ca, cb)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("seq %d: %v vs %v", seq, ca, cb)
			}
		}
	}
	if a.Outstanding() != 0 {
		t.Errorf("after full read drive, %d outstanding", a.Outstanding())
	}
	if c := p.Injector(43); c.Planned() != 9 {
		t.Errorf("different seed changed the planned count: %d", c.Planned())
	}
}

// TestInjectorDefersWriteOnlyClasses checks the read-deferral rule:
// ciphertext and MAC corruption planned at a write is held for the next
// read (a write would immediately overwrite it), while counter/node
// classes fire at the write itself.
func TestInjectorDefersWriteOnlyClasses(t *testing.T) {
	in := MustParse("machine:ciphertext@3;machine:minor@3").Injector(1)
	blk := arch.PageID(0).Block(0)
	if got := in.Inject(3, blk, true); len(got) != 1 || got[0] != secmem.InjectMinor {
		t.Fatalf("write at seq 3 applied %v, want [minor]", got)
	}
	if in.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1 (deferred ciphertext)", in.Outstanding())
	}
	if got := in.Inject(4, blk, true); len(got) != 0 {
		t.Fatalf("second write drained the deferral: %v", got)
	}
	if got := in.Inject(5, blk, false); len(got) != 1 || got[0] != secmem.InjectCiphertext {
		t.Fatalf("read applied %v, want deferred [ciphertext]", got)
	}
	if in.Outstanding() != 0 {
		t.Errorf("outstanding = %d after drain", in.Outstanding())
	}
}

func TestHarnessWrapTrial(t *testing.T) {
	h := MustParse("harness:err@2x2;harness:panic@5").NewHarness()
	ran := 0
	trial := h.WrapTrial(2, func() (any, error) { ran++; return "ok", nil })
	for attempt := 1; attempt <= 2; attempt++ {
		if _, err := trial(); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: err = %v, want injected", attempt, err)
		}
	}
	if res, err := trial(); err != nil || res != "ok" || ran != 1 {
		t.Fatalf("attempt 3: (%v, %v), ran %d", res, err, ran)
	}

	panicked := false
	func() {
		defer func() { panicked = recover() != nil }()
		h.WrapTrial(5, func() (any, error) { return nil, nil })()
	}()
	if !panicked {
		t.Error("planned panic did not fire")
	}

	// Unplanned cells pass through untouched.
	if res, err := h.WrapTrial(9, func() (any, error) { return 7, nil })(); err != nil || res != 7 {
		t.Errorf("unplanned cell: (%v, %v)", res, err)
	}
}

func TestHarnessStallExpires(t *testing.T) {
	h := MustParse("harness:stall@0").NewHarness()
	h.SetStall(5 * time.Millisecond)
	if _, err := h.WrapTrial(0, func() (any, error) { return nil, nil })(); !errors.Is(err, ErrInjected) {
		t.Fatalf("expired stall err = %v, want injected", err)
	}
}

func TestHarnessAfterAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.jsonl")
	content := strings.Repeat("x", 40) + "\n" + strings.Repeat("y", 40) + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	h := MustParse("harness:trunc@2").NewHarness()
	if h.AfterAppend(path, 1) {
		t.Fatal("crashed at append 1, planned for 2")
	}
	if !h.AfterAppend(path, 2) || !h.Crashed() {
		t.Fatal("did not crash at planned append")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(content)-9 {
		t.Errorf("file is %d bytes after tear, want %d", len(got), len(content)-9)
	}
	if !h.AfterAppend(path, 3) {
		t.Error("post-crash appends must stay crashed")
	}
	if len(mustRead(t, path)) != len(content)-9 {
		t.Error("post-crash AfterAppend re-tore the file")
	}

	var nilH *Harness
	if nilH.AfterAppend(path, 1) || nilH.Crashed() {
		t.Error("nil harness must be inert")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
