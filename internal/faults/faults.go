// Package faults is the seeded, deterministic fault-plan engine: it
// parses a compact fault specification into a Plan and turns the plan
// into concrete injectors for the two surfaces faults can hit —
//
//   - the simulated machine, where planned corruptions of ciphertext,
//     MACs, encryption counters, and integrity-tree nodes land in the
//     secure memory controller (secmem.Injector) and must be caught by
//     the MAC check and the Algorithm 2 tree walk;
//   - the experiment harness, where planned trial panics, stalls,
//     errors, and checkpoint-line truncation exercise the runner's
//     retry/timeout/quarantine machinery and the checkpoint's
//     torn-line salvage.
//
// Everything is a pure function of the spec and a seed: the same plan
// against the same machine produces byte-identical injections, so a
// faulted run is as reproducible as an honest one — the property the
// repo's determinism gate (metalint) exists to protect.
//
// # Spec grammar
//
// A spec is ';'-separated entries:
//
//	machine:CLASS@N[,N...]      corrupt CLASS before access ordinal N
//	machine:CLASS@autoK[/H]     K seeded corruptions within accesses 1..H
//	harness:KIND@CELL[xN]       fail CELL's first N attempts (default 1)
//	harness:trunc@K             tear the checkpoint after its Kth append
//
// CLASS is ciphertext, mac, minor, major, node, row, or any (class
// drawn from the seed per injection; H defaults to 512). KIND is
// panic, stall, err, disconnect, or flap — the last two only meaningful
// under a distributed sweep, where they make the worker holding CELL's
// lease drop its coordinator connection (the in-process analog of
// kill -9) so the drop/revoke/re-lease path is exercised. disconnect
// and flap inject identically at the worker; they differ in what the
// run promises about recovery: a disconnect consumes the cell's lease
// budget (the fleet is unsupervised, the cell marches toward
// quarantine), while flap expects a supervised fleet — the worker
// respawns, redials, and the cell re-deals without losing an attempt,
// which is exactly the invariant `metaleak chaos` asserts. Examples:
//
//	machine:mac@40
//	machine:any@auto6/256
//	harness:panic@3x2;harness:trunc@2
//	harness:flap@1x2;harness:flap@4
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"metaleak/internal/arch"
	"metaleak/internal/secmem"
)

// defaultHorizon bounds auto-planned access ordinals when the spec
// names none.
const defaultHorizon = 512

// HarnessKind names one harness-level fault flavour.
type HarnessKind uint8

// Harness fault kinds.
const (
	// HarnessPanic makes the cell's trial panic (exercises the runner's
	// panic containment and retry).
	HarnessPanic HarnessKind = iota
	// HarnessStall makes the trial block past any per-trial deadline
	// (exercises timeout detection).
	HarnessStall
	// HarnessErr makes the trial fail with an injected error.
	HarnessErr
	// HarnessTrunc tears the checkpoint file mid-append and stops
	// persistence, simulating a crash of the writing process.
	HarnessTrunc
	// HarnessDisconnect makes the dispatch worker holding the cell's
	// lease drop its coordinator connection before running it — the
	// worker-side analog of a SIGKILL — exercising the coordinator's
	// lease revocation and re-deal. Only distributed sweeps consult it;
	// single-process runs ignore it.
	HarnessDisconnect
	// HarnessFlap is a disconnect-then-reconnect: the worker drops its
	// connection exactly like HarnessDisconnect, but the run is expected
	// to be supervised — the supervisor respawns the worker, dial retry
	// reattaches it, and the coordinator's revive budget re-deals the
	// cell without consuming attempts. Chaos uses it to prove a flapping
	// fleet converges byte-identical to a clean run with zero
	// quarantined cells.
	HarnessFlap
)

// String renders the kind name used in specs.
func (k HarnessKind) String() string {
	switch k {
	case HarnessPanic:
		return "panic"
	case HarnessStall:
		return "stall"
	case HarnessErr:
		return "err"
	case HarnessTrunc:
		return "trunc"
	case HarnessDisconnect:
		return "disconnect"
	case HarnessFlap:
		return "flap"
	}
	return "unknown"
}

// MachineEntry is one parsed machine-level fault.
type MachineEntry struct {
	// Class is the metadata class to corrupt; ignored when Any is set.
	Class secmem.InjectClass
	// Any draws the class from the seed per injection.
	Any bool
	// At lists explicit access ordinals; empty means auto-planning.
	At []uint64
	// Auto is the seeded injection count when At is empty.
	Auto int
	// Horizon bounds auto-planned ordinals to [1, Horizon].
	Horizon uint64
}

// HarnessEntry is one parsed harness-level fault.
type HarnessEntry struct {
	Kind HarnessKind
	// Cell is the sweep cell (or trial) index the fault targets; for
	// trunc it is the append ordinal after which the tear happens.
	Cell int
	// Fails is how many leading attempts of the cell fail.
	Fails int
}

// Plan is a parsed fault specification.
type Plan struct {
	// Spec is the normalized input string.
	Spec    string
	Machine []MachineEntry
	Harness []HarnessEntry

	machineRaw []string
	harnessRaw []string
}

// HasMachine reports whether any machine-level entries are planned.
func (p *Plan) HasMachine() bool { return len(p.Machine) > 0 }

// HasHarness reports whether any harness-level entries are planned.
func (p *Plan) HasHarness() bool { return len(p.Harness) > 0 }

// MachineSpec re-renders only the machine-level entries — the part of a
// mixed spec that must travel with the DesignPoint (and hence the
// checkpoint fingerprint), while harness entries stay with the runner.
func (p *Plan) MachineSpec() string { return strings.Join(p.machineRaw, ";") }

// HarnessSpec re-renders only the harness-level entries — the part of a
// mixed spec a distributed sweep ships to its workers inside the job,
// so worker-side faults (disconnect) fire in the process actually
// holding the lease.
func (p *Plan) HarnessSpec() string { return strings.Join(p.harnessRaw, ";") }

// HasDisconnect reports whether any disconnect or flap entries are
// planned — both drop worker connections, so they require a distributed
// run to mean anything, and the CLI rejects them otherwise instead of
// silently ignoring the plan.
func (p *Plan) HasDisconnect() bool {
	for _, he := range p.Harness {
		if he.Kind == HarnessDisconnect || he.Kind == HarnessFlap {
			return true
		}
	}
	return false
}

// Parse parses a fault specification. An empty spec yields an empty
// plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{Spec: strings.TrimSpace(spec)}
	for _, raw := range strings.Split(spec, ";") {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			continue
		}
		surface, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("faults: entry %q: want surface:kind@where", entry)
		}
		kind, where, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("faults: entry %q: want surface:kind@where", entry)
		}
		kind = strings.ToLower(strings.TrimSpace(kind))
		where = strings.TrimSpace(where)
		switch strings.ToLower(strings.TrimSpace(surface)) {
		case "machine":
			me, err := parseMachine(kind, where)
			if err != nil {
				return nil, fmt.Errorf("faults: entry %q: %w", entry, err)
			}
			p.Machine = append(p.Machine, me)
			p.machineRaw = append(p.machineRaw, entry)
		case "harness":
			he, err := parseHarness(kind, where)
			if err != nil {
				return nil, fmt.Errorf("faults: entry %q: %w", entry, err)
			}
			p.Harness = append(p.Harness, he)
			p.harnessRaw = append(p.harnessRaw, entry)
		default:
			return nil, fmt.Errorf("faults: entry %q: unknown surface %q (machine or harness)", entry, surface)
		}
	}
	return p, nil
}

// MustParse is Parse for specs known good at compile time; it panics on
// error (machine.NewSystem-style construction, where the CLI has
// already vetted the spec).
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func parseMachine(class, where string) (MachineEntry, error) {
	me := MachineEntry{Horizon: defaultHorizon}
	switch class {
	case "ciphertext":
		me.Class = secmem.InjectCiphertext
	case "mac":
		me.Class = secmem.InjectMAC
	case "minor":
		me.Class = secmem.InjectMinor
	case "major":
		me.Class = secmem.InjectMajor
	case "node":
		me.Class = secmem.InjectNode
	case "row":
		me.Class = secmem.InjectRow
	case "any":
		me.Any = true
	default:
		return me, fmt.Errorf("unknown class %q (ciphertext, mac, minor, major, node, row, or any)", class)
	}
	if rest, ok := strings.CutPrefix(where, "auto"); ok {
		count := rest
		if c, h, ok := strings.Cut(rest, "/"); ok {
			count = c
			hv, err := strconv.ParseUint(strings.TrimSpace(h), 10, 64)
			if err != nil || hv == 0 {
				return me, fmt.Errorf("bad auto horizon %q", h)
			}
			me.Horizon = hv
		}
		n, err := strconv.Atoi(strings.TrimSpace(count))
		if err != nil || n <= 0 {
			return me, fmt.Errorf("bad auto count %q", count)
		}
		me.Auto = n
		return me, nil
	}
	for _, f := range strings.Split(where, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil || v == 0 {
			return me, fmt.Errorf("bad access ordinal %q (1-based)", f)
		}
		me.At = append(me.At, v)
	}
	return me, nil
}

func parseHarness(kind, where string) (HarnessEntry, error) {
	he := HarnessEntry{Fails: 1}
	switch kind {
	case "panic":
		he.Kind = HarnessPanic
	case "stall":
		he.Kind = HarnessStall
	case "err":
		he.Kind = HarnessErr
	case "trunc":
		he.Kind = HarnessTrunc
	case "disconnect":
		he.Kind = HarnessDisconnect
	case "flap":
		he.Kind = HarnessFlap
	default:
		return he, fmt.Errorf("unknown kind %q (panic, stall, err, disconnect, flap, or trunc)", kind)
	}
	cell := where
	if c, n, ok := strings.Cut(where, "x"); ok {
		if he.Kind == HarnessTrunc {
			return he, fmt.Errorf("trunc takes a bare append ordinal, not an attempt count")
		}
		cell = c
		v, err := strconv.Atoi(strings.TrimSpace(n))
		if err != nil || v <= 0 {
			return he, fmt.Errorf("bad attempt count %q", n)
		}
		he.Fails = v
	}
	v, err := strconv.Atoi(strings.TrimSpace(cell))
	if err != nil || v < 0 {
		return he, fmt.Errorf("bad cell index %q", cell)
	}
	if he.Kind == HarnessTrunc && v == 0 {
		return he, fmt.Errorf("trunc append ordinal is 1-based")
	}
	he.Cell = v
	return he, nil
}

// anyClasses is the draw set for machine:any entries.
var anyClasses = []secmem.InjectClass{
	secmem.InjectCiphertext, secmem.InjectMAC, secmem.InjectMinor,
	secmem.InjectMajor, secmem.InjectNode,
}

// Injector resolves the plan's machine-level entries against a seed and
// returns a secmem.Injector scheduling them, or nil when the plan has
// none. Resolution is deterministic: auto entries draw ordinals (and,
// for "any", classes) from an arch.NewRNG stream split off the seed, so
// one (spec, seed) pair always plans the identical injection schedule.
func (p *Plan) Injector(seed uint64) *Injector {
	if !p.HasMachine() {
		return nil
	}
	in := &Injector{sched: make(map[uint64][]secmem.InjectClass)}
	rng := arch.NewRNG(seed, 0xFA, 0x17)
	for _, me := range p.Machine {
		at := me.At
		if len(at) == 0 {
			at = make([]uint64, me.Auto)
			for i := range at {
				at[i] = 1 + rng.Uint64()%me.Horizon
			}
			sort.Slice(at, func(i, j int) bool { return at[i] < at[j] })
		}
		for _, seq := range at {
			cl := me.Class
			if me.Any {
				cl = anyClasses[rng.Uint64()%uint64(len(anyClasses))]
			}
			in.sched[seq] = append(in.sched[seq], cl)
			in.planned++
		}
	}
	return in
}

// Injector schedules machine-level corruptions by access ordinal. It
// implements secmem.Injector. One injector serves one machine (the
// controller is single-threaded; so is this).
type Injector struct {
	sched   map[uint64][]secmem.InjectClass
	pending []secmem.InjectClass
	planned int
	fired   int
}

// Inject implements secmem.Injector. Ciphertext and MAC corruptions due
// at a write are deferred to the next read: a write overwrites both, so
// injecting them there would be self-healing noise instead of a
// detectable fault.
func (in *Injector) Inject(seq uint64, b arch.BlockID, write bool) []secmem.InjectClass {
	due := in.sched[seq]
	if len(due) == 0 && (write || len(in.pending) == 0) {
		return nil
	}
	delete(in.sched, seq)
	var out []secmem.InjectClass
	if !write && len(in.pending) > 0 {
		out = append(out, in.pending...)
		in.pending = in.pending[:0]
	}
	for _, cl := range due {
		if write && (cl == secmem.InjectCiphertext || cl == secmem.InjectMAC) {
			in.pending = append(in.pending, cl)
			continue
		}
		out = append(out, cl)
	}
	in.fired += len(out)
	return out
}

// Planned returns the total number of injections the schedule holds.
func (in *Injector) Planned() int { return in.planned }

// Outstanding returns how many planned injections have not fired yet —
// still scheduled at future ordinals, or deferred waiting for a read.
// A probe that claims full coverage must drive this to zero.
func (in *Injector) Outstanding() int { return in.planned - in.fired }
