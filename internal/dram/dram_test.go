package dram

import (
	"testing"
	"testing/quick"

	"metaleak/internal/arch"
)

func TestRowHitFasterThanMiss(t *testing.T) {
	d := New(DefaultConfig())
	b := arch.BlockID(100)
	cold := d.Read(0, b)
	t2 := d.Read(cold, b) // same row, now open
	if t2-cold >= cold {
		t.Fatalf("row hit (%d) not faster than miss (%d)", t2-cold, cold)
	}
}

func TestRowConflictSlower(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	b1 := arch.BlockID(0)
	// A block in the same bank but a different row.
	var b2 arch.BlockID
	for cand := arch.BlockID(1); ; cand += arch.BlockID(cfg.RowBytes / arch.BlockSize) {
		if d.BankOf(cand) == d.BankOf(b1) && d.RowOf(cand) != d.RowOf(b1) {
			b2 = cand
			break
		}
	}
	t1 := d.Read(0, b1)
	t2 := d.Read(t1, b2)
	lat2 := t2 - t1
	// Second access should pay a row conflict, costing more than a row hit.
	if lat2 <= cfg.RowHit+cfg.Bus {
		t.Fatalf("conflict latency %d not above row-hit %d", lat2, cfg.RowHit+cfg.Bus)
	}
}

func TestBankContentionDelaysRead(t *testing.T) {
	d := New(DefaultConfig())
	b := arch.BlockID(0)
	// Occupy the bank with a burst of accesses at time 0.
	var end arch.Cycles
	for i := 0; i < 10; i++ {
		end = d.access(0, b, d.cfg.WriteLat)
	}
	// A read issued at time 0 to the same bank completes only after.
	done := d.Read(0, b)
	if done < end {
		t.Fatalf("read completed at %d before bank freed at %d", done, end)
	}
	// A read to a different bank is unaffected.
	other := arch.BlockID(0)
	for cand := arch.BlockID(1); ; cand++ {
		if d.BankOf(cand) != d.BankOf(b) {
			other = cand
			break
		}
	}
	d2 := New(DefaultConfig())
	fast := d2.Read(0, other)
	if fast >= done {
		t.Fatalf("independent bank read %d not faster than contended %d", fast, done)
	}
}

func TestWriteMerging(t *testing.T) {
	d := New(DefaultConfig())
	b := arch.BlockID(7)
	d.Write(0, b)
	d.Write(1, b)
	d.Write(2, b)
	if d.PendingWrites() != 1 {
		t.Fatalf("writes did not merge: %d pending", d.PendingWrites())
	}
	if d.Stats().WriteMerges != 2 {
		t.Fatalf("merge count = %d", d.Stats().WriteMerges)
	}
}

func TestWriteQueueForcedDrain(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	for i := 0; i < cfg.WriteQueueDepth+1; i++ {
		d.Write(arch.Cycles(i), arch.BlockID(i*997)) // distinct blocks
	}
	if d.PendingWrites() > cfg.WriteQueueDepth {
		t.Fatalf("queue exceeded depth: %d", d.PendingWrites())
	}
	if d.Stats().Drains == 0 {
		t.Fatal("no forced drain happened")
	}
}

func TestFlushWritesEmptiesQueueAndOccupiesBanks(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 20; i++ {
		d.Write(0, arch.BlockID(i*131))
	}
	end := d.FlushWrites(100)
	if d.PendingWrites() != 0 {
		t.Fatal("flush left pending writes")
	}
	if end <= 100 {
		t.Fatal("flush cost no time")
	}
}

func TestRefreshNoise(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefreshEvery = 1000
	cfg.RefreshPenalty = 50
	d := New(cfg)
	d.Read(1500, arch.BlockID(1))
	if d.Stats().Refreshes != 1 {
		t.Fatalf("refreshes = %d", d.Stats().Refreshes)
	}
}

// Property: completion time never precedes issue time, and consecutive
// reads to one bank never complete out of order.
func TestQuickMonotoneCompletion(t *testing.T) {
	d := New(DefaultConfig())
	var last arch.Cycles
	f := func(raw uint16, gap uint8) bool {
		b := arch.BlockID(raw)
		issue := last + arch.Cycles(gap)
		done := d.Read(issue, b)
		if done < issue {
			return false
		}
		if d.BankBusyUntil(d.BankOf(b)) > done {
			return false
		}
		last = issue
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: all banks are reachable, i.e. the XOR bank hash does not
// degenerate (every bank index appears for some block).
func TestBankHashCoversAllBanks(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	seen := make(map[int]bool)
	for b := arch.BlockID(0); b < 1<<16; b += 64 {
		seen[d.BankOf(b)] = true
	}
	if len(seen) != cfg.Banks() {
		t.Fatalf("bank hash reaches %d/%d banks", len(seen), cfg.Banks())
	}
}

func TestPageSharesBank(t *testing.T) {
	d := New(DefaultConfig())
	p := arch.PageID(42)
	bank := d.BankOf(p.Block(0))
	for i := 1; i < arch.BlocksPerPage; i++ {
		if d.BankOf(p.Block(i)) != bank {
			t.Fatalf("block %d of page in bank %d != %d", i, d.BankOf(p.Block(i)), bank)
		}
	}
}

func TestBackgroundOccupiesBankOnly(t *testing.T) {
	d := New(DefaultConfig())
	b := arch.BlockID(0)
	// Post a long background burst at t=0.
	for i := 0; i < 20; i++ {
		d.Background(0, b, 100)
	}
	// A read to the same bank at t=0 waits behind the burst...
	busy := d.BankBusyUntil(d.BankOf(b))
	if busy < 2000 {
		t.Fatalf("burst occupied only %d cycles", busy)
	}
	done := d.Read(0, b)
	if done < busy {
		t.Fatalf("read completed at %d inside the burst window ending %d", done, busy)
	}
	// ...while a different bank is free.
	var other arch.BlockID
	for cand := arch.BlockID(1); ; cand++ {
		if d.BankOf(cand) != d.BankOf(b) {
			other = cand
			break
		}
	}
	if fast := d.Read(0, other); fast >= busy {
		t.Fatalf("independent bank delayed by background burst: %d", fast)
	}
}

func TestDrainServicesOldestFirst(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	// Fill the queue exactly; record the first-enqueued block's bank.
	first := arch.BlockID(7)
	d.Write(0, first)
	for i := 1; i < cfg.WriteQueueDepth; i++ {
		d.Write(0, arch.BlockID(1000+i*997))
	}
	if d.PendingWrites() != cfg.WriteQueueDepth {
		t.Fatalf("queue depth %d", d.PendingWrites())
	}
	// Next write forces a drain of the front batch, which contains first.
	d.Write(0, arch.BlockID(999999))
	if d.BankBusyUntil(d.BankOf(first)) == 0 {
		t.Fatal("oldest write not serviced by forced drain")
	}
}
