// Package dram models the main memory of the simulated machine: channels,
// ranks and banks with open-row policy, an FR-FCFS-approximating read path,
// and a 64-entry write queue with merging — the pieces of Table I's memory
// controller that MetaLeak's timing observables depend on.
//
// Two properties matter for the attacks and are modelled carefully:
//
//  1. Bank contention: a read issued to a bank that is busy (e.g. because a
//     counter-overflow re-encryption burst is draining into it) is delayed
//     until the bank frees up. This is the observable of MetaLeak-C
//     (Fig. 8: two latency bands ~2000 cycles apart).
//  2. Write buffering and merging: writes are not serviced immediately, and
//     back-to-back writes to the same block merge in the queue. The
//     attacker must flush the queue with redundant writes (§VI-B).
package dram

import (
	"metaleak/internal/arch"
)

// Config describes the DRAM geometry and timing. The defaults produced by
// DefaultConfig correspond to the dual-channel, 2 ranks/channel system of
// Table I.
type Config struct {
	Channels     int
	RanksPerChan int
	BanksPerRank int
	RowBytes     int // row buffer size per bank

	// Timing, in cycles.
	RowHit      arch.Cycles // CAS only
	RowMiss     arch.Cycles // activate + CAS (bank idle/precharged)
	RowConflict arch.Cycles // precharge + activate + CAS
	Bus         arch.Cycles // data transfer
	WriteLat    arch.Cycles // bank occupancy per serviced write

	WriteQueueDepth int // entries before a forced drain (Table I: 64)
	DrainBatch      int // writes drained per forced drain

	// RefreshEvery/RefreshPenalty inject periodic refresh delay as noise.
	// Zero disables refresh noise.
	RefreshEvery   arch.Cycles
	RefreshPenalty arch.Cycles
}

// DefaultConfig returns the Table I memory system.
func DefaultConfig() Config {
	return Config{
		Channels:        2,
		RanksPerChan:    2,
		BanksPerRank:    8,
		RowBytes:        8192,
		RowHit:          36,
		RowMiss:         66,
		RowConflict:     96,
		Bus:             4,
		WriteLat:        36,
		WriteQueueDepth: 64,
		DrainBatch:      16,
		RefreshEvery:    0,
		RefreshPenalty:  0,
	}
}

// Banks returns the total number of banks.
func (c Config) Banks() int { return c.Channels * c.RanksPerChan * c.BanksPerRank }

type bank struct {
	openRow   int64 // -1: precharged
	busyUntil arch.Cycles
}

type writeReq struct {
	block arch.BlockID
}

// Stats counts DRAM events.
type Stats struct {
	Reads       uint64
	Writes      uint64 // enqueued
	WriteMerges uint64
	RowHits     uint64
	RowMisses   uint64
	Drains      uint64
	Refreshes   uint64
}

// DRAM is the main memory model. Not safe for concurrent use.
type DRAM struct {
	cfg   Config
	banks []bank
	wq    []writeReq
	// wqSet indexes the blocks currently in wq so the merge check in Write
	// is a map probe instead of an O(depth) scan (merging guarantees at
	// most one queue entry per block, so set membership is exact).
	wqSet       map[arch.BlockID]struct{}
	stats       Stats
	nextRefresh arch.Cycles
}

// New builds a DRAM model.
func New(cfg Config) *DRAM {
	d := &DRAM{
		cfg:   cfg,
		banks: make([]bank, cfg.Banks()),
		wqSet: make(map[arch.BlockID]struct{}, cfg.WriteQueueDepth),
	}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	if cfg.RefreshEvery > 0 {
		d.nextRefresh = cfg.RefreshEvery
	}
	return d
}

// Config returns the DRAM configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a snapshot of the event counters.
func (d *DRAM) Stats() Stats { return d.stats }

func (d *DRAM) blocksPerRow() uint64 { return uint64(d.cfg.RowBytes / arch.BlockSize) }

// BankOf returns the bank index a block maps to. Row-granular
// interleaving with an XOR-based bank hash (standard in modern memory
// controllers) spreads nearby metadata regions across banks, while the 64
// blocks of a page still share a bank and (typically) a row — which is
// what makes re-encryption bursts serialize behind one bank.
func (d *DRAM) BankOf(b arch.BlockID) int {
	row := uint64(b) / d.blocksPerRow()
	h := row ^ row>>5 ^ row>>10 ^ row>>17
	return int(h % uint64(d.cfg.Banks()))
}

// RowOf returns the identity of the row a block maps to (used only for
// open-row comparisons, so the global row index serves).
func (d *DRAM) RowOf(b arch.BlockID) int64 {
	return int64(uint64(b) / d.blocksPerRow())
}

// SameRow reports whether two blocks share a physical DRAM row (same
// bank, same row): the blast radius of a row-level fault — a disturbed
// wordline corrupts neighbouring blocks together, not one at a time.
func (d *DRAM) SameRow(a, b arch.BlockID) bool {
	return d.RowOf(a) == d.RowOf(b) && d.BankOf(a) == d.BankOf(b)
}

// access performs one bank access starting no earlier than now and returns
// its completion time.
func (d *DRAM) access(now arch.Cycles, b arch.BlockID, occupancy arch.Cycles) arch.Cycles {
	bk := &d.banks[d.BankOf(b)]
	row := d.RowOf(b)
	start := now
	if bk.busyUntil > start {
		start = bk.busyUntil
	}
	var lat arch.Cycles
	switch {
	case bk.openRow == row:
		lat = d.cfg.RowHit
		d.stats.RowHits++
	case bk.openRow == -1:
		lat = d.cfg.RowMiss
		d.stats.RowMisses++
	default:
		lat = d.cfg.RowConflict
		d.stats.RowMisses++
	}
	if occupancy > lat {
		lat = occupancy
	}
	bk.openRow = row
	bk.busyUntil = start + lat
	return start + lat + d.cfg.Bus
}

// Read services a read for the block, returning its completion time. Reads
// have priority over buffered writes (FR-FCFS read-first approximation),
// but a bank already busy servicing earlier traffic delays the read — the
// key contention observable.
func (d *DRAM) Read(now arch.Cycles, b arch.BlockID) arch.Cycles {
	d.stats.Reads++
	now = d.maybeRefresh(now)
	if len(d.wq) >= d.cfg.WriteQueueDepth {
		now = d.drain(now, d.cfg.DrainBatch)
	}
	return d.access(now, b, 0)
}

// Write enqueues a write for the block. If a write to the same block is
// already pending the two merge. When the queue is full a batch of writes
// is drained into the banks first. The returned time is when the enqueue
// completes from the issuing side (not when data reaches the array).
func (d *DRAM) Write(now arch.Cycles, b arch.BlockID) arch.Cycles {
	d.stats.Writes++
	now = d.maybeRefresh(now)
	if _, pending := d.wqSet[b]; pending {
		d.stats.WriteMerges++
		return now + 1
	}
	if len(d.wq) >= d.cfg.WriteQueueDepth {
		now = d.drain(now, d.cfg.DrainBatch)
	}
	d.wq = append(d.wq, writeReq{block: b})
	d.wqSet[b] = struct{}{}
	return now + 1
}

// drain services up to n queued writes, occupying their banks.
func (d *DRAM) drain(now arch.Cycles, n int) arch.Cycles {
	if n > len(d.wq) {
		n = len(d.wq)
	}
	d.stats.Drains++
	end := now
	for i := 0; i < n; i++ {
		done := d.access(now, d.wq[i].block, d.cfg.WriteLat)
		if done > end {
			end = done
		}
		delete(d.wqSet, d.wq[i].block)
	}
	d.wq = d.wq[n:]
	return now // the issuing side does not stall for the drain itself
}

// FlushWrites forces the entire write queue into the banks (the effect the
// attacker achieves with redundant writes in §VI-B). It returns when the
// last write completes.
func (d *DRAM) FlushWrites(now arch.Cycles) arch.Cycles {
	end := now
	for _, w := range d.wq {
		done := d.access(now, w.block, d.cfg.WriteLat)
		if done > end {
			end = done
		}
		delete(d.wqSet, w.block)
	}
	d.wq = d.wq[:0]
	return end
}

// PendingWrites returns the current write queue depth.
func (d *DRAM) PendingWrites() int { return len(d.wq) }

// BankBusyUntil exposes a bank's busy horizon (diagnostics and tests).
func (d *DRAM) BankBusyUntil(bankIdx int) arch.Cycles { return d.banks[bankIdx].busyUntil }

func (d *DRAM) maybeRefresh(now arch.Cycles) arch.Cycles {
	if d.cfg.RefreshEvery == 0 {
		return now
	}
	if now >= d.nextRefresh {
		d.stats.Refreshes++
		d.nextRefresh = now + d.cfg.RefreshEvery
		return now + d.cfg.RefreshPenalty
	}
	return now
}

// Background occupies a block's bank starting no earlier than now, without
// reporting completion to the issuer — the model for hardware-managed
// bursts (counter-overflow re-encryption, subtree re-hashing) that proceed
// behind the memory controller while execution continues. Foreground reads
// to the same bank are delayed until the burst drains past them.
func (d *DRAM) Background(now arch.Cycles, b arch.BlockID, occupancy arch.Cycles) {
	//metalint:allow cycleleak fire-and-forget by design: the burst's completion time is invisible to the issuer, only bank occupancy matters
	d.access(now, b, occupancy)
}
