// Package hunt is the dynamic half of the automated leakage search
// (DESIGN.md §13): a fully deterministic differential fuzzer. It
// generates seeded random victim access patterns, runs each program
// twice under two secrets on the *same* machine seed, and diffs the two
// metadata-access traces under the design point's leakage contract
// (internal/contract). Any divergence is a channel, found with no
// hand-written attack; a divergence outside the contract's allowed set
// is a broken defence; a required channel that never diverges is a
// broken (or defeated) attack model. The static half is the secretflow
// taint analyzer — every classified dynamic channel cross-checks
// against its committed leakage inventory (inventory.go).
package hunt

import (
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/contract"
	"metaleak/internal/machine"
	"metaleak/internal/sim"
	"metaleak/internal/trace"
)

// OpKind enumerates the generated victims' operation alphabet. The
// secret-dependent ops mirror the paper's three victim shapes: a
// secret-indexed table walk (§VIII-A jpeg), a secret-scheduled write
// burst (§VI counter overflow), and secret-dependent idling (§VII
// contention windows).
type OpKind uint8

// The operation alphabet.
const (
	// OpTouch is a cleansed read of a fixed page — the §III
	// cache-cleansing victim policy, so the access reaches the MC.
	OpTouch OpKind = iota
	// OpWrite is a write-through store to a fixed page.
	OpWrite
	// OpSecretTouch is a cleansed read of the page indexed by the next
	// secret nibble — the secret-indexed lookup every table-driven
	// victim performs.
	OpSecretTouch
	// OpSecretWrite is a write-through store to one of two blocks of a
	// fixed page, picked by the next secret bit. Both blocks share the
	// page's counter group, so nothing structural diverges — until the
	// per-block minor counters overflow on secret-dependent schedules
	// (VUL-1).
	OpSecretWrite
	// OpSecretIdle idles for a fixed window or not at all, picked by
	// the next secret bit — the data-dependent compute time every
	// non-constant-time victim has.
	OpSecretIdle
	// OpIdle idles for a fixed window.
	OpIdle

	numOpKinds
)

var opNames = [numOpKinds]string{
	"touch", "write", "sec-touch", "sec-write", "sec-idle", "idle",
}

// String names the op kind.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one victim operation.
type Op struct {
	Kind OpKind
	// Arg is the fixed-page index (OpTouch/OpWrite/OpSecretWrite) or
	// the idle window in cycles (OpIdle); unused otherwise.
	Arg int
}

// Program is one generated victim: a seeded random operation sequence
// over a fixed page layout.
type Program struct {
	Seed uint64
	Ops  []Op
}

// Generation and layout parameters. The page frames are fixed by the
// program (frame = index * frameStride), so the victim's address layout
// is part of the program identity, not the machine seed: both runs of
// a differential pair see the identical layout.
const (
	// fixedPages is how many secret-independent pages a program uses.
	fixedPages = 8
	// secretPages is the size of the secret-indexed table (one nibble).
	secretPages = 16
	// frameStride spaces the program's page frames. It exceeds the
	// 128-block DRAM row (so consecutive pages' counter blocks occupy
	// different rows, hence different banks under the XOR hash) and is
	// odd (so metadata-cache sets spread).
	frameStride = 131
	// secretIdleCycles is OpSecretIdle's window.
	secretIdleCycles = 3000
)

// Generate builds the seeded random victim program: nops operations
// drawn uniformly from the full alphabet, which keeps roughly half of
// them secret-dependent.
func Generate(seed uint64, nops int) Program {
	return GenerateMix(seed, nops, nil)
}

// GenerateMix is Generate restricted to an op alphabet — the directed
// corpus behind the control suite, which isolates one secret-dependent
// op per known channel (only secret writes for the overflow hunt, only
// secret touches for the walk hunt). nil or empty means the full
// alphabet.
func GenerateMix(seed uint64, nops int, kinds []OpKind) Program {
	if len(kinds) == 0 {
		kinds = make([]OpKind, numOpKinds)
		for i := range kinds {
			kinds[i] = OpKind(i)
		}
	}
	rng := arch.NewRNG(seed, 0x47)
	ops := make([]Op, nops)
	for i := range ops {
		k := kinds[rng.Intn(len(kinds))]
		arg := 0
		switch k {
		case OpTouch, OpWrite, OpSecretWrite:
			arg = rng.Intn(fixedPages)
		case OpIdle:
			arg = 500 + rng.Intn(2000)
		}
		ops[i] = Op{Kind: k, Arg: arg}
	}
	return Program{Seed: seed, Ops: ops}
}

// Secrets derives a differential secret pair: two independent random
// byte strings of length n from the pair seed. Both runs of a cell use
// the same machine seed and program; only this pair differs.
func Secrets(seed uint64, n int) ([]byte, []byte) {
	if n <= 0 {
		n = 8
	}
	a := make([]byte, n)
	b := make([]byte, n)
	rngA := arch.NewRNG(seed, 0x5A)
	rngB := arch.NewRNG(seed, 0x5B)
	same := true
	for i := range a {
		a[i] = byte(rngA.Uint64())
		b[i] = byte(rngB.Uint64())
		same = same && a[i] == b[i]
	}
	if same {
		// A colliding pair would make the differential run vacuous.
		b[0] ^= 1
	}
	return a, b
}

// bitReader feeds a program's secret-dependent ops from the secret,
// cycling when the program consumes more bits than the secret holds.
type bitReader struct {
	secret []byte
	pos    int // bit cursor
}

func (r *bitReader) bit() int {
	if len(r.secret) == 0 {
		return 0
	}
	i := r.pos % (len(r.secret) * 8)
	r.pos++
	return int(r.secret[i/8]>>(i%8)) & 1
}

func (r *bitReader) nibble() int {
	v := 0
	for i := 0; i < 4; i++ {
		v |= r.bit() << i
	}
	return v
}

// Run executes the program on a fresh machine built from dp and returns
// the victim-core trace — every demand access and explicit write-back
// the memory controller saw.
//
// The secret is deliberately NOT a secretflow source (//metalint:secret):
// it is the hunt's own generated probe, and the point of the dynamic
// search is to measure its propagation on the machine rather than in
// the taint model. The static/dynamic link runs the other way —
// CrossCheck (inventory.go) maps every divergence the fuzzer finds
// back to the analyzer's committed leakage inventory.
func Run(dp machine.DesignPoint, prog Program, secret []byte) ([]sim.TraceEvent, error) {
	sys := machine.NewSystem(dp)
	fixed := make([]arch.PageID, fixedPages)
	table := make([]arch.PageID, secretPages)
	for i := range fixed {
		frame := arch.PageID(i * frameStride)
		if err := sys.AllocFrame(0, frame); err != nil {
			return nil, fmt.Errorf("hunt: fixed page %d: %w", i, err)
		}
		fixed[i] = frame
	}
	for i := range table {
		frame := arch.PageID((fixedPages + i) * frameStride)
		if err := sys.AllocFrame(0, frame); err != nil {
			return nil, fmt.Errorf("hunt: table page %d: %w", i, err)
		}
		table[i] = frame
	}

	rec := trace.New(1 << 16)
	rec.Filter = func(ev sim.TraceEvent) bool { return ev.Core == 0 }
	detach := rec.Attach(sys.System)
	defer detach()

	bits := bitReader{secret: secret}
	for i, op := range prog.Ops {
		tag := byte(i)
		switch op.Kind {
		case OpTouch:
			b := fixed[op.Arg].Block(0)
			sys.Flush(0, b)
			sys.Touch(0, b)
		case OpWrite:
			sys.WriteThrough(0, fixed[op.Arg].Block(0), [arch.BlockSize]byte{tag})
		case OpSecretTouch:
			// The hunted table walk: the nibble picks which metadata
			// page the MC touches (inventory channel "addr").
			pg := table[bits.nibble()]
			b := pg.Block(0)
			sys.Flush(0, b)
			sys.Touch(0, b)
		case OpSecretWrite:
			// The hunted write split: per-block minor counters overflow
			// on secret-dependent schedules (inventory channel
			// "ctr-bump").
			blk := fixed[op.Arg].Block(bits.bit())
			sys.WriteThrough(0, blk, [arch.BlockSize]byte{tag})
		case OpSecretIdle:
			// The hunted timing split: the idle window shifts every
			// later access (inventory channel "trip-count").
			if bits.bit() == 1 {
				sys.Idle(secretIdleCycles)
			}
		case OpIdle:
			sys.Idle(arch.Cycles(op.Arg))
		}
	}
	if rec.Total() > uint64(len(rec.Events())) {
		return nil, fmt.Errorf("hunt: trace ring overflowed (%d events for %d slots)", rec.Total(), len(rec.Events()))
	}
	return rec.Events(), nil
}

// channelOrder maps diverging components to channel names in
// classification priority order: the most structural (and most
// paper-specific) observable wins — an overflow divergence is the
// counter-overflow channel even though it always drags latency and
// timing along.
var channelOrder = []struct {
	comp contract.Component
	name string
}{
	{contract.CompOverflow, "ctr-overflow"}, // §VI, VUL-1
	{contract.CompTree, "tree-walk"},        // HT/SIT walk depth
	{contract.CompPath, "meta-path"},        // Fig. 5 path class
	{contract.CompSet, "meta-set"},          // §V mEvict/mReload
	{contract.CompBank, "bank-contention"},  // §VII MetaLeak-C
	{contract.CompCount, "access-count"},    // trace-length channel
	{contract.CompLatency, "latency"},       // raw latency band
	{contract.CompTime, "timing"},           // completion-time skew
}

// Classify names the channel of a divergence from the components that
// diverged at its first observation.
func Classify(first contract.Mask) string {
	for _, e := range channelOrder {
		if first.Has(e.comp) {
			return e.name
		}
	}
	return ""
}

// Channels lists every channel name Classify can produce, in priority
// order.
func Channels() []string {
	out := make([]string, len(channelOrder))
	for i, e := range channelOrder {
		out[i] = e.name
	}
	return out
}

// Verdict is the outcome of one differential pair: one program, one
// machine seed, two secrets.
type Verdict struct {
	// Diverged reports whether the two observation streams differ at
	// all under the design's contract projection.
	Diverged bool
	// Channel classifies the divergence from its first diverging
	// observation ("" when none).
	Channel string
	// First is the index of the first diverging observation (-1 when
	// none); FirstComponents the components diverging there.
	First           int
	FirstComponents string
	// Components is the union of diverging components over the stream.
	Components string
	// Count is the number of diverging positions in the common prefix —
	// the channel's crude bandwidth, which defences attenuate.
	Count int
	// Violation names observable diverging components outside the
	// contract's allowed set ("" when the run is in-model): the design
	// leaks more than it declares.
	Violation string
	// Missing names required components that did not diverge in this
	// pair ("" when all fired): aggregated over a corpus, a channel the
	// attack model declares live but the search cannot reproduce.
	Missing string
	// ObsA and ObsB are the observation-stream lengths of the two runs.
	ObsA, ObsB int
	// Contract is the rendered contract the pair was judged under.
	Contract string
}

// RunPair runs one differential pair and judges it under the design
// point's contract. Both runs share dp (including dp.Seed) and prog;
// only the secret differs — so any trace divergence is, by
// construction, secret-dependent behaviour.
func RunPair(dp machine.DesignPoint, prog Program, secretA, secretB []byte) (Verdict, error) {
	ct, err := contract.For(dp)
	if err != nil {
		return Verdict{}, fmt.Errorf("hunt: %w", err)
	}
	evA, err := Run(dp, prog, secretA)
	if err != nil {
		return Verdict{}, err
	}
	evB, err := Run(dp, prog, secretB)
	if err != nil {
		return Verdict{}, err
	}
	// Structural validation first: a divergence on an illegal trace
	// would be a simulator defect, not a channel.
	if err := contract.Check(dp, evA); err != nil {
		return Verdict{}, fmt.Errorf("hunt: run A: %w", err)
	}
	if err := contract.Check(dp, evB); err != nil {
		return Verdict{}, fmt.Errorf("hunt: run B: %w", err)
	}
	proj := contract.NewProjector(dp, ct)
	obsA := proj.Observe(evA)
	obsB := proj.Observe(evB)
	d := contract.DiffObs(obsA, obsB)
	v := Verdict{
		Diverged: d.Diverged(),
		First:    d.First,
		Count:    d.Count,
		ObsA:     len(obsA),
		ObsB:     len(obsB),
		Contract: ct.String(),
	}
	if d.Diverged() {
		v.Channel = Classify(d.FirstMask)
		v.FirstComponents = d.FirstMask.String()
		v.Components = d.Mask.String()
	}
	if viol := ct.Violations(d.Mask); viol != 0 {
		v.Violation = viol.String()
	}
	if missing := ct.Required &^ d.Mask; missing != 0 {
		v.Missing = missing.String()
	}
	return v, nil
}
