package hunt

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metaleak/internal/contract"
	"metaleak/internal/machine"
)

var update = flag.Bool("update", false, "rewrite the golden verdict files")

// control is one positive/negative pair of the satellite control suite:
// a known-leaky configuration the hunt must rediscover, and the paper's
// defence against it.
type control struct {
	name    string
	leaky   machine.DesignPoint
	defence machine.DesignPoint
	mix     []OpKind
	seeds   []uint64
	// channel is what every leaky-run divergence must classify to.
	channel string
	// eliminated asserts the defence produces no divergence at all;
	// otherwise the defence must strictly attenuate (lower total Count).
	eliminated bool
	// reclassified asserts the defence takes the channel's component off
	// the vantage, so surviving divergences classify to something else.
	reclassified bool
}

// writeMix isolates the counter write path; touchMix the metadata read
// path. Both keep the secret-independent ops so the programs exercise
// real cache state, not just the channel.
var (
	writeMix = []OpKind{OpWrite, OpSecretWrite, OpIdle}
	touchMix = []OpKind{OpTouch, OpSecretTouch, OpIdle}
)

// walkContract is the §VI-B walk-depth attacker: a vantage that
// resolves only how deep each integrity-tree walk went. Narrowing the
// observable is how a contract directs the hunt at one channel.
const walkContract = "observe=tree,count;allow=tree,count;require=tree"

func controls() []control {
	// SCT counter overflow (VUL-1): 2-bit minors overflow every 4
	// writes, so secret-scheduled writes to one counter group diverge in
	// the overflow stream. The paper's mitigation direction — wider
	// minors — pushes the first overflow past the program horizon.
	ovfLeaky := machine.ConfigSCT()
	ovfLeaky.Seed = 42
	ovfLeaky.MinorBits = 2
	ovfDef := ovfLeaky
	ovfDef.MinorBits = 12

	// HT tree-walk depth: a thrashing metadata cache makes the walk
	// depth track which table page the secret picked. A provisioned
	// cache (Table I's 256 KB) attenuates the channel to the cold-walk
	// residue.
	walkLeaky := machine.ConfigHT()
	walkLeaky.Seed = 42
	walkLeaky.MetaKB = 1
	walkLeaky.Contract = walkContract
	walkDef := walkLeaky
	walkDef.MetaKB = 256

	// MetaLeak-C bank contention: under MIRAGE set probing is gone, so
	// the counter block's DRAM bank is the first structural divergence.
	// The §IX-C isolated-domain defence takes bank off the vantage
	// entirely.
	bankLeaky := machine.ConfigSCT()
	bankLeaky.Seed = 42
	bankLeaky.RandomizedMeta = true
	bankDef := bankLeaky
	bankDef.IsolatedDomains = 4

	return []control{
		{
			name: "ctr-overflow", leaky: ovfLeaky, defence: ovfDef,
			mix: writeMix, seeds: []uint64{0, 1, 2, 3, 4, 5},
			channel: "ctr-overflow", eliminated: true,
		},
		{
			name: "tree-walk", leaky: walkLeaky, defence: walkDef,
			mix: touchMix, seeds: []uint64{0, 1, 2, 3, 4, 5},
			channel: "tree-walk",
		},
		{
			name: "bank-contention", leaky: bankLeaky, defence: bankDef,
			mix: touchMix, seeds: []uint64{0, 1, 2, 3, 4, 5},
			channel: "bank-contention", reclassified: true,
		},
	}
}

func verdictLine(scenario string, seed uint64, v Verdict) string {
	return fmt.Sprintf("%s/%d ch=%s first=%s union=%s count=%d viol=%s miss=%s obs=%d/%d",
		scenario, seed, orNone(v.Channel), orNone(v.FirstComponents), orNone(v.Components),
		v.Count, orNone(v.Violation), orNone(v.Missing), v.ObsA, v.ObsB)
}

func orNone(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func runControl(t *testing.T, scenario string, dp machine.DesignPoint, mix []OpKind, seeds []uint64) ([]Verdict, []string) {
	t.Helper()
	verdicts := make([]Verdict, 0, len(seeds))
	lines := make([]string, 0, len(seeds))
	for _, s := range seeds {
		prog := GenerateMix(s, 64, mix)
		sa, sb := Secrets(s+1000, 8)
		v, err := RunPair(dp, prog, sa, sb)
		if err != nil {
			t.Fatalf("%s seed %d: %v", scenario, s, err)
		}
		verdicts = append(verdicts, v)
		lines = append(lines, verdictLine(scenario, s, v))
	}
	return verdicts, lines
}

// TestControls is the positive/negative control suite: each known-leaky
// configuration must produce divergences classified to its channel,
// each defence must eliminate or strictly attenuate them, and the full
// verdict set is pinned by a golden file.
func TestControls(t *testing.T) {
	var golden []string
	found := map[string]bool{}
	for _, c := range controls() {
		leakyV, leakyLines := runControl(t, c.name+"/leaky", c.leaky, c.mix, c.seeds)
		defV, defLines := runControl(t, c.name+"/defence", c.defence, c.mix, c.seeds)
		golden = append(golden, leakyLines...)
		golden = append(golden, defLines...)

		leakyCount, defCount := 0, 0
		for i, v := range leakyV {
			if !v.Diverged {
				t.Errorf("%s seed %d: leaky config did not diverge", c.name, c.seeds[i])
				continue
			}
			if v.Channel != c.channel {
				t.Errorf("%s seed %d: classified %q, want %q", c.name, c.seeds[i], v.Channel, c.channel)
			}
			found[v.Channel] = true
			leakyCount += v.Count
		}
		for i, v := range defV {
			defCount += v.Count
			if c.eliminated && v.Diverged {
				t.Errorf("%s seed %d: defence still diverges: %s", c.name, c.seeds[i], v.Components)
			}
			if c.reclassified && v.Channel == c.channel {
				t.Errorf("%s seed %d: defence still classifies as %s", c.name, c.seeds[i], c.channel)
			}
		}
		if !c.eliminated && defCount >= leakyCount {
			t.Errorf("%s: defence does not attenuate: %d -> %d diverging observations",
				c.name, leakyCount, defCount)
		}
	}

	// The acceptance bar: the fuzzer rediscovers all three paper
	// channels with no hand-written attack.
	for _, ch := range []string{"ctr-overflow", "tree-walk", "bank-contention"} {
		if !found[ch] {
			t.Errorf("hunt never rediscovered the %s channel", ch)
		}
	}

	compareGolden(t, "controls.golden", strings.Join(golden, "\n")+"\n")
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("verdicts drifted from %s (re-run with -update after auditing):\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestOverLeakyConfigViolatesContract pins the contract checker's
// teeth: a design whose declared contract is narrower than its actual
// behaviour must produce a Violation verdict — this is what `make
// check` runs to catch a defence that silently regressed.
func TestOverLeakyConfigViolatesContract(t *testing.T) {
	dp := machine.ConfigSCT()
	dp.Seed = 42
	dp.MinorBits = 2
	// The design claims only timing leaks; the overflow burst proves
	// otherwise.
	dp.Contract = "allow=lat,time;require=none"
	prog := GenerateMix(3, 64, writeMix)
	sa, sb := Secrets(1003, 8)
	v, err := RunPair(dp, prog, sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Diverged || v.Violation == "" {
		t.Fatalf("over-leaky config produced no violation: %+v", v)
	}
	if !strings.Contains(v.Violation, "ovf") {
		t.Fatalf("violation %q does not name the overflow channel", v.Violation)
	}
}

// TestDeterminism: the whole pipeline — generation, secrets, execution,
// projection, verdict — is a pure function of the seeds.
func TestDeterminism(t *testing.T) {
	dp := machine.ConfigSCT()
	dp.Seed = 7
	prog := Generate(11, 48)
	prog2 := Generate(11, 48)
	if fmt.Sprint(prog) != fmt.Sprint(prog2) {
		t.Fatal("Generate is not deterministic")
	}
	sa, sb := Secrets(11, 8)
	sa2, sb2 := Secrets(11, 8)
	if string(sa) != string(sa2) || string(sb) != string(sb2) {
		t.Fatal("Secrets is not deterministic")
	}
	if string(sa) == string(sb) {
		t.Fatal("secret pair collided")
	}
	v1, err := RunPair(dp, prog, sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := RunPair(dp, prog, sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("verdicts differ across identical runs:\n%+v\n%+v", v1, v2)
	}
	// Identical secrets cannot diverge: the differential baseline.
	same, err := RunPair(dp, prog, sa, sa)
	if err != nil {
		t.Fatal(err)
	}
	if same.Diverged {
		t.Fatalf("identical secrets diverged: %+v", same)
	}
}

// TestCrossCheckAgainstCommittedInventory closes the static/dynamic
// loop: every channel the control suite rediscovers dynamically must be
// predicted by at least one committed secretflow leak site. A zero here
// means the taint model and the machine disagree about what leaks.
func TestCrossCheckAgainstCommittedInventory(t *testing.T) {
	counts, err := LoadInventory(filepath.Join("..", "..", "leakage-inventory.json"))
	if err != nil {
		t.Fatal(err)
	}
	results := CrossCheck([]string{"ctr-overflow", "tree-walk", "bank-contention", ""}, counts)
	if len(results) != 3 {
		t.Fatalf("cross-check results: %+v", results)
	}
	for _, r := range results {
		if r.Sites == 0 {
			t.Errorf("dynamic channel %s has no static counterpart (%v) in the inventory",
				r.Channel, r.Static)
		}
	}
	// Unknown channels must surface (Sites 0), not vanish.
	if r := CrossCheck([]string{"made-up"}, counts); len(r) != 1 || r[0].Sites != 0 {
		t.Fatalf("unmapped channel: %+v", r)
	}
}

func TestClassifyPriority(t *testing.T) {
	if got := len(Channels()); got != 8 {
		t.Fatalf("channel list: %d entries", got)
	}
	for i, name := range Channels() {
		m := contract.Mask(0)
		// A mask holding this channel's component plus every
		// lower-priority one must classify to this channel.
		for _, e := range channelOrder[i:] {
			m = m.With(e.comp)
		}
		if got := Classify(m); got != name {
			t.Errorf("Classify(%s) = %q, want %q", m, got, name)
		}
	}
	if Classify(0) != "" {
		t.Error("empty mask classified")
	}
}
