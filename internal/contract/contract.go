// Package contract encodes per-DesignPoint leakage contracts — the
// verification backbone of DESIGN.md §13. A contract pins down, for one
// secure-processor configuration, exactly what an attacker at the
// memory controller may observe (the *observable* projection of a
// trace), which of those observables the design admits leaking (the
// *allowed* set — the paper's published channels), and which channels
// its attack model requires to be live (the *required* set). A
// differential run that diverges outside the allowed set is a broken
// defence ("leaks more than declared"); a corpus in which a required
// component never diverges is a broken attack model ("leaks less than
// declared"). The hunt fuzzer (internal/hunt) checks both on every
// trace it records.
package contract

import (
	"fmt"
	"strings"

	"metaleak/internal/arch"
	"metaleak/internal/dram"
	"metaleak/internal/machine"
	"metaleak/internal/secmem"
	"metaleak/internal/sim"
)

// Component is one observable dimension of a metadata access as seen
// from the memory bus.
type Component uint8

// The observable components, in classification priority order is NOT
// implied here — this is declaration order for rendering; priority
// lives with the hunt's classifier.
const (
	// CompSet is the metadata-cache set index of the access's counter
	// block — the mEvict/mReload observable (§V).
	CompSet Component = iota
	// CompBank is the DRAM bank its counter block maps to — the
	// MetaLeak-C contention observable (§VII).
	CompBank
	// CompPath is the Fig. 5 access-path class (cache/counter/tree
	// hit/miss).
	CompPath
	// CompTree is the number of integrity-tree levels fetched from
	// memory — the HT tree-walk depth observable.
	CompTree
	// CompOverflow is whether the access fired a counter (or tree)
	// overflow — the VUL-1 re-encryption trigger (§VI).
	CompOverflow
	// CompLatency is the access's latency band (32-cycle buckets) — the
	// timing observable every primitive ultimately measures.
	CompLatency
	// CompTime is the access's completion cycle.
	CompTime
	// CompCount is the number of memory-reaching accesses (trace
	// length under the observation projection).
	CompCount

	numComponents
)

var componentNames = [numComponents]string{
	"set", "bank", "path", "tree", "ovf", "lat", "time", "count",
}

// String returns the component's contract-grammar name.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("component(%d)", int(c))
}

// ParseComponent resolves a contract-grammar component name.
func ParseComponent(s string) (Component, error) {
	for i, n := range componentNames {
		if n == s {
			return Component(i), nil
		}
	}
	return 0, fmt.Errorf("unknown contract component %q (one of %s)",
		s, strings.Join(componentNames[:], ", "))
}

// Components lists every component in declaration order.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Mask is a set of components.
type Mask uint16

// With returns the mask with the components added.
func (m Mask) With(cs ...Component) Mask {
	for _, c := range cs {
		m |= 1 << c
	}
	return m
}

// Has reports whether the component is in the mask.
func (m Mask) Has(c Component) bool { return m&(1<<c) != 0 }

// String renders the mask's components joined by '+' in declaration
// order, or "none" when empty.
func (m Mask) String() string {
	var parts []string
	for c := Component(0); c < numComponents; c++ {
		if m.Has(c) {
			parts = append(parts, c.String())
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// parseMaskList parses a comma-separated component list ("none" for
// the empty mask).
func parseMaskList(s string) (Mask, error) {
	if s == "none" {
		return 0, nil
	}
	var m Mask
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := ParseComponent(part)
		if err != nil {
			return 0, err
		}
		m = m.With(c)
	}
	return m, nil
}

// Contract is one design point's leakage specification.
type Contract struct {
	// Observable is the projection: the components an attacker at the
	// memory controller can measure on this design at all. Components
	// outside it are erased before any comparison (e.g. RandomizedMeta
	// removes set — conflict-based set probing is impossible under
	// MIRAGE).
	Observable Mask
	// Allowed is the declared leakage: differential divergence on these
	// components is in-model. Divergence on Observable components
	// outside Allowed is a contract violation — the design leaks more
	// than it declares.
	Allowed Mask
	// Required is the attack model's live channels: components the
	// design's threat analysis claims *do* diverge under a
	// secret-dependent workload. A hunt corpus in which one never
	// diverges means the design leaks less than declared — a broken (or
	// defeated) attack model, which is what a working defence looks
	// like.
	Required Mask
}

// String renders the contract in its own grammar.
func (c Contract) String() string {
	return fmt.Sprintf("observe=%s;allow=%s;require=%s",
		c.Observable, c.Allowed, c.Required)
}

// Violations returns the diverging components the contract does not
// allow.
func (c Contract) Violations(diverged Mask) Mask {
	return diverged & c.Observable &^ c.Allowed
}

// For derives the design point's contract: the default for its
// configuration, then dp.Contract's overrides on top. The default
// declares the paper's full observable surface as allowed (the
// baseline designs are leaky by design — that is the paper's point)
// and requires the channels the design's Table I row exposes.
func For(dp machine.DesignPoint) (Contract, error) {
	obs := Mask(0).With(CompBank, CompLatency, CompTime, CompCount)
	var req Mask
	if !dp.Insecure {
		obs = obs.With(CompPath, CompTree, CompOverflow)
		if !dp.RandomizedMeta {
			obs = obs.With(CompSet)
		}
		switch dp.Tree {
		case machine.TreeSCT, "":
			// Split-counter trees expose the overflow burst (VUL-1) and
			// the shared walk state.
			req = req.With(CompOverflow, CompTree)
		case machine.TreeHT, machine.TreeSIT:
			req = req.With(CompTree)
		}
		if dp.IsolatedDomains > 0 {
			// §IX-C: per-domain trees with private roots and partitioned
			// metadata — the attacker can no longer resolve the victim's
			// metadata addresses, so the structural observables (set,
			// bank, tree depth) leave the vantage; only volume and
			// timing remain.
			obs &^= Mask(0).With(CompSet, CompBank, CompTree)
		}
		req &= obs
	}
	c := Contract{Observable: obs, Allowed: obs, Required: req}
	if err := c.apply(dp.Contract); err != nil {
		return Contract{}, err
	}
	if bad := c.Allowed &^ c.Observable; bad != 0 {
		return Contract{}, fmt.Errorf("contract allows unobservable components %s", bad)
	}
	if bad := c.Required &^ c.Allowed; bad != 0 {
		return Contract{}, fmt.Errorf("contract requires components it does not allow: %s", bad)
	}
	return c, nil
}

// apply folds a contract spec string into the derived default. Grammar:
//
//	spec    := "none" | clause (";" clause)*
//	clause  := ("observe" | "allow" | "require") "=" list
//	list    := "none" | component ("," component)*
//
// "none" alone declares a leak-free design: nothing is allowed and
// nothing required — every observable divergence becomes a violation.
func (c *Contract) apply(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	if spec == "none" {
		c.Allowed = 0
		c.Required = 0
		return nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, list, ok := strings.Cut(clause, "=")
		if !ok {
			return fmt.Errorf("contract clause %q is not key=components", clause)
		}
		m, err := parseMaskList(strings.TrimSpace(list))
		if err != nil {
			return fmt.Errorf("contract clause %q: %w", clause, err)
		}
		switch strings.TrimSpace(key) {
		case "observe":
			c.Observable = m
		case "allow":
			c.Allowed = m
		case "require":
			c.Required = m
		default:
			return fmt.Errorf("contract clause %q: unknown key (observe, allow, or require)", clause)
		}
	}
	return nil
}

// Obs is one memory-reaching access under a contract's observation
// projection. Components outside the contract's Observable mask are
// zero in every Obs, so they can never register divergence.
type Obs struct {
	Set      uint32
	Bank     uint16
	Path     uint8
	Tree     uint8
	Overflow bool
	Lat      uint32 // 32-cycle latency band
	Time     uint64 // completion cycle
}

// Projector maps raw trace events onto a design point's observation
// space. It replicates the machine's metadata address mapping (counter
// block of a data block, metadata-cache set, DRAM bank hash) from the
// design point alone, so a contract check needs no live machine.
type Projector struct {
	observable   Mask
	insecure     bool
	pageCounters bool // SC-style: one counter block per data page
	sets         uint64
	blocksPerRow uint64
	banks        uint64
}

// NewProjector builds the projector for a design point under a
// contract, applying the same defaults machine.NewSystem applies.
func NewProjector(dp machine.DesignPoint, c Contract) Projector {
	metaKB, ways := dp.MetaKB, dp.MetaWays
	if metaKB == 0 {
		metaKB = 256
	}
	if ways == 0 {
		ways = 8
	}
	d := dp.DRAM
	if d.Banks() == 0 {
		d = dram.DefaultConfig()
	}
	return Projector{
		observable:   c.Observable,
		insecure:     dp.Insecure,
		pageCounters: dp.Counter == machine.CounterSC || dp.Counter == "",
		sets:         uint64(metaKB * 1024 / arch.BlockSize / ways),
		blocksPerRow: uint64(d.RowBytes / arch.BlockSize),
		banks:        uint64(d.Banks()),
	}
}

// metaBlock returns the metadata block an access's counter lives in —
// the address whose cache set and DRAM bank the attacker's probes
// resolve. The insecure baseline has no metadata; its observable
// address is the data block itself.
func (p Projector) metaBlock(b arch.BlockID) arch.BlockID {
	if p.insecure {
		return b
	}
	if p.pageCounters {
		return arch.CounterBase.Block() + arch.BlockID(b.Page())
	}
	return arch.CounterBase.Block() + arch.BlockID(uint64(b)/8)
}

// Project maps one event onto the observation space.
func (p Projector) Project(ev sim.TraceEvent) Obs {
	var o Obs
	mb := p.metaBlock(ev.Block)
	if p.observable.Has(CompSet) {
		if p.sets&(p.sets-1) == 0 {
			o.Set = uint32(uint64(mb) & (p.sets - 1))
		} else {
			o.Set = uint32(uint64(mb) % p.sets)
		}
	}
	if p.observable.Has(CompBank) {
		row := uint64(mb) / p.blocksPerRow
		h := row ^ row>>5 ^ row>>10 ^ row>>17
		o.Bank = uint16(h % p.banks)
	}
	if p.observable.Has(CompPath) {
		o.Path = uint8(ev.Path)
	}
	if p.observable.Has(CompTree) {
		o.Tree = uint8(ev.TreeLevels)
	}
	if p.observable.Has(CompOverflow) {
		o.Overflow = ev.Overflow
	}
	if p.observable.Has(CompLatency) {
		o.Lat = uint32(ev.Latency / 32)
	}
	if p.observable.Has(CompTime) {
		o.Time = uint64(ev.Now)
	}
	return o
}

// Observe projects a trace onto the observation stream: the
// memory-reaching accesses (core-cache hits never leave the package —
// no bus transaction, nothing to observe), each reduced to its
// observable components.
func (p Projector) Observe(events []sim.TraceEvent) []Obs {
	var out []Obs
	for _, ev := range events {
		if ev.Path == secmem.PathCacheHit {
			continue
		}
		out = append(out, p.Project(ev))
	}
	return out
}

// ObsDivergence locates how two observation streams differ, component
// by component.
type ObsDivergence struct {
	LenA, LenB int
	// First is the index of the first diverging observation (-1 when
	// the streams are identical; the common length for a pure length
	// divergence).
	First int
	// FirstMask is the components diverging at First (CompCount for a
	// pure length divergence).
	FirstMask Mask
	// Mask is the union of diverging components, including CompCount on
	// a length mismatch.
	Mask Mask
	// Count is the number of diverging positions in the common prefix.
	Count int
}

// Diverged reports whether the streams differ at all.
func (d ObsDivergence) Diverged() bool { return d.Mask != 0 }

// obsDiff compares two observations component-wise.
func obsDiff(a, b Obs) Mask {
	var m Mask
	if a.Set != b.Set {
		m = m.With(CompSet)
	}
	if a.Bank != b.Bank {
		m = m.With(CompBank)
	}
	if a.Path != b.Path {
		m = m.With(CompPath)
	}
	if a.Tree != b.Tree {
		m = m.With(CompTree)
	}
	if a.Overflow != b.Overflow {
		m = m.With(CompOverflow)
	}
	if a.Lat != b.Lat {
		m = m.With(CompLatency)
	}
	if a.Time != b.Time {
		m = m.With(CompTime)
	}
	return m
}

// DiffObs compares two observation streams position by position over
// their common prefix. Length divergence registers as CompCount — the
// access count is itself an observable.
func DiffObs(a, b []Obs) ObsDivergence {
	d := ObsDivergence{LenA: len(a), LenB: len(b), First: -1}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		m := obsDiff(a[i], b[i])
		if m == 0 {
			continue
		}
		if d.First < 0 {
			d.First = i
			d.FirstMask = m
		}
		d.Mask |= m
		d.Count++
	}
	if len(a) != len(b) {
		d.Mask = d.Mask.With(CompCount)
		if d.First < 0 {
			d.First = n
			d.FirstMask = Mask(0).With(CompCount)
		}
	}
	return d
}

// maxTreeLevels returns the deepest stored tree level a design point
// can fetch, mirroring machine.buildTree's arity defaults.
func maxTreeLevels(dp machine.DesignPoint) int {
	if n := len(dp.TreeArities); n > 0 {
		return n
	}
	switch dp.Tree {
	case machine.TreeSIT:
		return 3
	default: // SCT (and the zero default), HT
		return 6
	}
}

// Check validates a trace against the design point's structural
// invariants — the shape every legal trace has regardless of secrets.
// A violation means the simulator (or a fault injection) produced an
// access no real machine of this configuration could produce: the
// trace-level analogue of the zero-silent-escape tamper matrix.
func Check(dp machine.DesignPoint, events []sim.TraceEvent) error {
	maxLv := maxTreeLevels(dp)
	for i, ev := range events {
		fail := func(msg string, args ...any) error {
			return fmt.Errorf("trace event %d (seq %d, block %#x): %s",
				i, ev.Seq, uint64(ev.Block), fmt.Sprintf(msg, args...))
		}
		if ev.Path < secmem.PathCacheHit || ev.Path > secmem.PathTreeMiss {
			return fail("access path %d outside Fig. 5's 1..4", ev.Path)
		}
		if ev.TreeLevels < 0 || ev.TreeLevels > maxLv {
			return fail("tree levels %d outside [0,%d]", ev.TreeLevels, maxLv)
		}
		if ev.Path != secmem.PathTreeMiss && ev.TreeLevels != 0 {
			return fail("path %d fetched %d tree levels (only a tree miss loads nodes)", ev.Path, ev.TreeLevels)
		}
		if ev.Path == secmem.PathTreeMiss && ev.TreeLevels == 0 {
			return fail("tree miss fetched no tree levels")
		}
		if ev.Overflow && !ev.Write {
			return fail("overflow on a read (counters only bump on the write path)")
		}
		if ev.Overflow && ev.Path == secmem.PathCacheHit {
			return fail("overflow on a core-cache hit (no counter was touched)")
		}
		if dp.Insecure {
			if ev.Path > secmem.PathCounterHit || ev.TreeLevels != 0 || ev.Overflow {
				return fail("metadata activity (path %d, tree %d, ovf %t) on the insecure baseline",
					ev.Path, ev.TreeLevels, ev.Overflow)
			}
		}
	}
	return nil
}
