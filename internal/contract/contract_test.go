package contract

import (
	"strings"
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/machine"
	"metaleak/internal/secmem"
	"metaleak/internal/sim"
	"metaleak/internal/trace"
)

func TestDefaultContracts(t *testing.T) {
	sct, err := For(machine.ConfigSCT())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Component{CompSet, CompBank, CompOverflow, CompTree, CompLatency, CompTime, CompCount} {
		if !sct.Observable.Has(c) {
			t.Fatalf("sct observable missing %s: %s", c, sct)
		}
	}
	if !sct.Required.Has(CompOverflow) {
		t.Fatalf("sct should require the overflow channel: %s", sct)
	}

	rand := machine.ConfigSCT()
	rand.RandomizedMeta = true
	rc, err := For(rand)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Observable.Has(CompSet) {
		t.Fatalf("RandomizedMeta must remove set from the observable: %s", rc)
	}

	insec := machine.ConfigSCT()
	insec.Insecure = true
	ic, err := For(insec)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Observable.Has(CompOverflow) || ic.Observable.Has(CompTree) || ic.Required != 0 {
		t.Fatalf("insecure baseline has no metadata observables: %s", ic)
	}
}

func TestContractGrammar(t *testing.T) {
	dp := machine.ConfigSCT()
	dp.Contract = "allow=lat,time;require=none"
	c, err := For(dp)
	if err != nil {
		t.Fatal(err)
	}
	if c.Allowed != Mask(0).With(CompLatency, CompTime) || c.Required != 0 {
		t.Fatalf("parsed contract: %s", c)
	}
	// A set divergence is now out of model; latency is not.
	if v := c.Violations(Mask(0).With(CompSet, CompLatency)); v != Mask(0).With(CompSet) {
		t.Fatalf("violations: %s", v)
	}

	dp.Contract = "none"
	c, err = For(dp)
	if err != nil {
		t.Fatal(err)
	}
	if c.Allowed != 0 || c.Required != 0 {
		t.Fatalf("\"none\" contract: %s", c)
	}

	for _, bad := range []string{
		"allow=wibble",
		"permit=lat",
		"allow",
		"require=ovf;allow=lat", // requires what it does not allow
	} {
		dp.Contract = bad
		if _, err := For(dp); err == nil {
			t.Fatalf("contract %q accepted", bad)
		}
	}
	// Allowing a component the vantage cannot observe is contradictory.
	rand := machine.ConfigSCT()
	rand.RandomizedMeta = true
	rand.Contract = "allow=set"
	if _, err := For(rand); err == nil {
		t.Fatal("allow=set accepted under RandomizedMeta")
	}
}

func TestMaskRender(t *testing.T) {
	m := Mask(0).With(CompOverflow, CompSet)
	if m.String() != "set+ovf" {
		t.Fatalf("mask render: %q", m)
	}
	if Mask(0).String() != "none" {
		t.Fatalf("empty mask render: %q", Mask(0))
	}
	back, err := parseMaskList("set,ovf")
	if err != nil || back != m {
		t.Fatalf("parse round trip: %v %v", back, err)
	}
}

// TestProjectionMatchesMachine pins the projector's metadata address
// math to the machine's: the counter block of page p on SC designs is
// CounterBase + p, and observations of accesses to different pages land
// in different sets exactly when the counter blocks do.
func TestProjectionMatchesMachine(t *testing.T) {
	dp := machine.ConfigSCT()
	c, err := For(dp)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProjector(dp, c)
	b0 := arch.PageID(0).Block(0)
	b1 := arch.PageID(0).Block(63)
	if p.metaBlock(b0) != arch.CounterBase.Block() || p.metaBlock(b0) != p.metaBlock(b1) {
		t.Fatalf("SC counter blocks: %#x vs %#x", uint64(p.metaBlock(b0)), uint64(p.metaBlock(b1)))
	}
	if p.metaBlock(arch.PageID(5).Block(0)) != arch.CounterBase.Block()+5 {
		t.Fatal("SC counter block is not page-granular")
	}
	ev := func(b arch.BlockID) sim.TraceEvent {
		return sim.TraceEvent{Block: b, Path: secmem.PathTreeMiss, TreeLevels: 1}
	}
	// 256 KiB / 64 B / 8 ways = 512 sets; pages 0 and 512 share a set
	// but pages 0 and 1 do not.
	zero := p.Project(ev(arch.PageID(0).Block(0)))
	same := p.Project(ev(arch.PageID(512).Block(0)))
	one := p.Project(ev(arch.PageID(1).Block(0)))
	if zero.Set != same.Set || zero.Set == one.Set {
		t.Fatalf("set projection: %d %d %d", zero.Set, same.Set, one.Set)
	}

	moc := machine.ConfigSGX()
	cm, err := For(moc)
	if err != nil {
		t.Fatal(err)
	}
	pm := NewProjector(moc, cm)
	if pm.metaBlock(arch.BlockID(16)) != arch.CounterBase.Block()+2 {
		t.Fatal("MoC counter block is not 8-counters-per-block")
	}
}

func TestObserveFiltersCacheHits(t *testing.T) {
	dp := machine.ConfigSCT()
	c, err := For(dp)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProjector(dp, c)
	events := []sim.TraceEvent{
		{Path: secmem.PathCacheHit},
		{Path: secmem.PathCounterHit, Latency: 100},
		{Path: secmem.PathCacheHit},
		{Path: secmem.PathTreeMiss, TreeLevels: 2, Latency: 400},
	}
	obs := p.Observe(events)
	if len(obs) != 2 || obs[0].Lat != 100/32 || obs[1].Tree != 2 {
		t.Fatalf("observation stream: %+v", obs)
	}
}

func TestDiffObs(t *testing.T) {
	a := []Obs{{Set: 1}, {Set: 2}, {Set: 3}}
	b := []Obs{{Set: 1}, {Set: 9, Lat: 4}, {Set: 3}}
	d := DiffObs(a, b)
	if !d.Diverged() || d.First != 1 || d.FirstMask != Mask(0).With(CompSet, CompLatency) || d.Count != 1 {
		t.Fatalf("diff: %+v", d)
	}
	if d2 := DiffObs(a, a[:2]); !d2.Mask.Has(CompCount) || d2.First != 2 {
		t.Fatalf("length diff: %+v", d2)
	}
	if d3 := DiffObs(a, a); d3.Diverged() || d3.First != -1 {
		t.Fatalf("self diff: %+v", d3)
	}
}

// TestCheckRealTrace runs a real machine and validates its trace, then
// corrupts events every way the checker knows and expects a failure
// for each.
func TestCheckRealTrace(t *testing.T) {
	dp := machine.ConfigSCT()
	dp.Seed = 7
	sys := machine.NewSystem(dp)
	rec := trace.New(1 << 12)
	detach := rec.Attach(sys.System)
	pg := sys.AllocPage(0)
	for i := 0; i < 32; i++ {
		b := pg.Block(i % arch.BlocksPerPage)
		sys.Flush(0, b)
		sys.Touch(0, b)
		sys.WriteThrough(0, b, [arch.BlockSize]byte{byte(i)})
	}
	detach()
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	if err := Check(dp, evs); err != nil {
		t.Fatalf("legal trace rejected: %v", err)
	}

	cases := map[string]sim.TraceEvent{
		"bad path":                 {Path: 9},
		"levels on counter hit":    {Path: secmem.PathCounterHit, TreeLevels: 1},
		"tree miss without levels": {Path: secmem.PathTreeMiss, TreeLevels: 0},
		"overflow on read":         {Path: secmem.PathCounterHit, Overflow: true},
		"overflow on cache hit":    {Path: secmem.PathCacheHit, Write: true, Overflow: true},
	}
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	for _, name := range names {
		if err := Check(dp, []sim.TraceEvent{cases[name]}); err == nil {
			t.Fatalf("%s: corrupted trace accepted", name)
		}
	}

	insec := dp
	insec.Insecure = true
	bad := []sim.TraceEvent{{Path: secmem.PathTreeMiss, TreeLevels: 1}}
	if err := Check(insec, bad); err == nil || !strings.Contains(err.Error(), "insecure") {
		t.Fatalf("insecure check: %v", err)
	}
}
