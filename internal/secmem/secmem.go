// Package secmem implements the secure memory controller of the simulated
// processor: the component that services last-level-cache misses by
// reading/writing encrypted memory, maintaining encryption counters,
// verifying and lazily updating the integrity tree, and caching metadata
// in the shared counter-and-tree cache of Table I.
//
// The controller realizes the four read paths of Fig. 5 and the
// write/overflow behaviour of Algorithm 1 and §V. Every access returns a
// Report with the path taken and the simulated latency, which is what the
// MetaLeak primitives observe.
package secmem

import (
	"metaleak/internal/arch"
	"metaleak/internal/cache"
	"metaleak/internal/crypto"
	"metaleak/internal/ctr"
	"metaleak/internal/dram"
	"metaleak/internal/itree"
	"metaleak/internal/mirage"
)

// Path identifies which of the Fig. 5 access paths an access took. Path 1
// (all on-chip data-cache hits) never reaches the controller; the sim layer
// reports it.
type Path int

const (
	// PathCacheHit is an access satisfied by the core-side caches (Fig 5a).
	PathCacheHit Path = 1
	// PathCounterHit is a data miss whose counter was on-chip (Fig 5b).
	PathCounterHit Path = 2
	// PathTreeHit is a data and counter miss whose tree leaf was on-chip
	// (Fig 5c).
	PathTreeHit Path = 3
	// PathTreeMiss additionally missed one or more tree levels (Fig 5d).
	PathTreeMiss Path = 4
)

// Report describes one serviced access.
type Report struct {
	Latency          arch.Cycles
	Path             Path
	CounterHit       bool
	TreeLevelsLoaded int  // node blocks fetched from memory
	Overflow         bool // an encryption counter overflowed (writes only)
	TreeOverflow     bool // a tree minor counter overflowed (write-backs)
	Reencrypted      int  // blocks re-encrypted due to counter overflow
	Rehashed         int  // metadata blocks re-hashed due to tree overflow
	Tampered         bool // integrity verification failed
}

// overflowStall is the fixed bookkeeping stall the triggering operation
// pays when overflow handling kicks off (the burst itself runs in the
// background; see Fig. 8).
const overflowStall = 200

// Config parameterizes the controller.
type Config struct {
	DRAM   dram.Config
	Meta   cache.Config // shared counter & tree cache (Table I: 256 KB, 8-way)
	Engine crypto.Config

	// QueueDelay models read-queue service time at the MC.
	QueueDelay arch.Cycles
	// TreeStepDelay models the per-level serialization of the integrity
	// tree walk: node fetches overlap across banks, but each level's
	// verification issue lags the previous by this delay (dependent MSHR
	// allocation and hash pipelining). Fig. 6/7 show ~30 cycles per level
	// in the simulated design and ~100 on SGX hardware.
	TreeStepDelay arch.Cycles
	// MACLatency models the fixed MAC fetch+check cost. Per §IV-B this is
	// constant and pattern-agnostic, so it is charged as a flat cost.
	MACLatency arch.Cycles

	// Plain disables all protection (no encryption, MAC, counters, or
	// tree): the insecure baseline against which the secure designs'
	// overhead — and MetaLeak's attack surface — is measured.
	Plain bool

	// RandomizedMeta replaces the set-associative metadata cache with a
	// MIRAGE instance (the §IX-B defence actually deployed): there is no
	// stable address-to-set mapping for eviction sets to target. Meta()
	// then returns nil and conflict-based mEvict is impossible; only
	// volume-based eviction remains (Fig. 18).
	RandomizedMeta *mirage.Config
}

// MetaCache abstracts the shared metadata cache: the set-associative
// default or the MIRAGE-randomized variant.
type MetaCache interface {
	Access(b arch.BlockID, write bool) bool
	Insert(b arch.BlockID, dirty bool) (cache.Eviction, bool)
	Contains(b arch.BlockID) bool
	HitLatency() arch.Cycles
	// Invalidate drops b without writeback (fault injection: the on-chip
	// copy is discarded so the next access must reload — and re-verify —
	// the block from memory).
	Invalidate(b arch.BlockID) (wasPresent, wasDirty bool)
}

// mirageMeta adapts a MIRAGE cache to the MetaCache contract.
type mirageMeta struct {
	c   *mirage.Cache
	hit arch.Cycles
}

func (m *mirageMeta) Access(b arch.BlockID, write bool) bool { return m.c.AccessW(b, write) }

func (m *mirageMeta) Insert(b arch.BlockID, dirty bool) (cache.Eviction, bool) {
	ev, ok := m.c.InsertReport(b, dirty)
	return cache.Eviction{Block: ev.Block, Dirty: ev.Dirty}, ok
}

func (m *mirageMeta) Contains(b arch.BlockID) bool { return m.c.Contains(b) }

func (m *mirageMeta) HitLatency() arch.Cycles { return m.hit }

func (m *mirageMeta) Invalidate(b arch.BlockID) (bool, bool) { return m.c.Invalidate(b) }

// Stats aggregates controller-level events.
type Stats struct {
	Reads             uint64
	Writes            uint64
	CounterHits       uint64
	CounterMisses     uint64
	TreeNodeLoads     uint64
	CounterOverflows  uint64
	TreeOverflows     uint64
	ReencryptedBlocks uint64
	RehashedBlocks    uint64
	TamperDetections  uint64
	CounterWritebacks uint64
	NodeWritebacks    uint64
	// FaultsInjected counts corruptions applied by an attached Injector
	// (one per corrupted block, so a row fault counts its whole blast
	// radius). Tests compare it against TamperDetections to prove no
	// injected corruption escaped verification.
	FaultsInjected uint64
}

// stored is one block's off-chip state: its ciphertext (plaintext in the
// Plain baseline) and its MAC, kept in one heap object so the hot path
// pays a single map lookup and works on the block in place instead of
// copying 64 bytes in and out of two maps.
type stored struct {
	ct  crypto.Block
	mac uint64
}

// zeroBlock is the all-zero plaintext that lazily materialized blocks
// encrypt. Read-only.
var zeroBlock crypto.Block

// Controller is the secure memory controller. Not safe for concurrent use.
type Controller struct {
	cfg     Config
	dram    *dram.DRAM
	meta    MetaCache
	setMeta *cache.Cache // nil when the metadata cache is randomized
	eng     *crypto.Engine
	ctrs    ctr.Scheme
	tree    itree.Tree
	store   map[arch.BlockID]*stored // off-chip backing store
	stats   Stats

	// loaded and work are per-access scratch slices (the tree-walk node
	// list and the dirty-eviction work list); reusing them keeps the
	// steady-state access path allocation-free.
	loaded []itree.NodeRef
	work   []arch.BlockID

	// Fault injection (nil in honest runs): inj is consulted before every
	// serviced access with the 1-based access ordinal, and the faults it
	// returns corrupt off-chip state before the access proceeds.
	inj       Injector
	accessSeq uint64
	faultLog  []InjectedFault

	// Tree-overflow fallout discovered during eviction handling, surfaced
	// in the next Write report.
	pendingTreeOverflow bool
	pendingRehashed     int
}

// New wires a controller from its parts. The counter scheme and tree are
// injected so that every §IV design point (GC/MoC/SC × HT/SCT/SIT) runs on
// the same controller.
func New(cfg Config, scheme ctr.Scheme, tree itree.Tree) *Controller {
	c := &Controller{
		cfg:   cfg,
		dram:  dram.New(cfg.DRAM),
		eng:   crypto.New(cfg.Engine),
		ctrs:  scheme,
		tree:  tree,
		store: make(map[arch.BlockID]*stored),
	}
	if cfg.RandomizedMeta != nil {
		c.meta = &mirageMeta{c: mirage.New(*cfg.RandomizedMeta), hit: cfg.Meta.HitLatency}
	} else {
		c.setMeta = cache.New(cfg.Meta)
		c.meta = c.setMeta
	}
	return c
}

// Stats returns a snapshot of the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// Meta exposes the set-associative metadata cache's geometry (attack
// construction and tests need it; mutating it directly would be cheating
// and nothing does). It returns nil when the metadata cache is randomized
// — there is no geometry to exploit, which is the §IX-B defence's point.
func (c *Controller) Meta() *cache.Cache { return c.setMeta }

// MetaContains reports metadata residency regardless of implementation.
func (c *Controller) MetaContains(b arch.BlockID) bool { return c.meta.Contains(b) }

// MetaRandomized reports whether the metadata cache is MIRAGE-organized.
func (c *Controller) MetaRandomized() bool { return c.setMeta == nil }

// DRAM exposes the memory model (bank mapping for attack address choice).
func (c *Controller) DRAM() *dram.DRAM { return c.dram }

// Tree exposes the integrity tree (address arithmetic for attacks).
func (c *Controller) Tree() itree.Tree { return c.tree }

// Counters exposes the encryption counter scheme.
func (c *Controller) Counters() ctr.Scheme { return c.ctrs }

// Engine exposes the crypto engine.
func (c *Controller) Engine() *crypto.Engine { return c.eng }

// ensureInit lazily materializes a block's ciphertext (zero plaintext) the
// first time it is touched, as if the secure region were zero-initialized
// at enclave build time. It returns the block's backing-store entry.
func (c *Controller) ensureInit(b arch.BlockID) *stored {
	if st, ok := c.store[b]; ok {
		return st
	}
	st := &stored{}
	v := c.ctrs.Value(b)
	c.eng.EncryptTo(&st.ct, &zeroBlock, b, v)
	st.mac = c.eng.MACOf(&st.ct, b, v)
	c.store[b] = st
	return st
}

// fetchCounter brings b's counter block on-chip, verifying it through the
// tree (Algorithm 2), and returns the updated time plus path information.
func (c *Controller) fetchCounter(now arch.Cycles, b arch.BlockID, rep *Report) arch.Cycles {
	cb := c.ctrs.CounterBlock(b)
	if c.meta.Access(cb, false) {
		rep.CounterHit = true
		c.stats.CounterHits++
		return now + c.meta.HitLatency()
	}
	c.stats.CounterMisses++
	// Load the counter block from memory.
	now = c.dram.Read(now, cb)
	// Walk the tree bottom-up to the first cached node (Algorithm 2). The
	// whole path's addresses are computable from the counter address, so
	// the memory controller overlaps the node reads across banks, but each
	// level's issue lags the previous by TreeStepDelay (dependent lookup
	// and verification pipelining) — this is what gives the per-level
	// latency steps of Fig. 6/7.
	loaded := c.loaded[:0]
	issue := now
	done := now
	for _, ref := range c.tree.Path(cb) {
		nb := c.tree.NodeBlockID(ref)
		if c.meta.Access(nb, false) {
			done += c.meta.HitLatency()
			break
		}
		start := issue + arch.Cycles(len(loaded))*c.cfg.TreeStepDelay
		if fin := c.dram.Read(start, nb); fin > done {
			done = fin
		}
		loaded = append(loaded, ref)
	}
	c.loaded = loaded
	now = done
	// Verify bottom-up: counter block against its leaf, then each loaded
	// node against its parent. One hash each.
	if !c.tree.VerifyCounterBlock(cb, c.ctrs.BlockBytes(cb)) {
		rep.Tampered = true
		c.stats.TamperDetections++
	}
	now += c.eng.HashLatency()
	for _, ref := range loaded {
		if !c.tree.VerifyNode(ref) {
			rep.Tampered = true
			c.stats.TamperDetections++
		}
		now += c.eng.HashLatency()
	}
	// Fill the metadata cache (counter block and loaded nodes), handling
	// any dirty evictions this causes.
	now = c.insertMeta(now, cb, false)
	for _, ref := range loaded {
		now = c.insertMeta(now, c.tree.NodeBlockID(ref), false)
	}
	rep.TreeLevelsLoaded = len(loaded)
	c.stats.TreeNodeLoads += uint64(len(loaded))
	return now
}

// Read services a last-level-cache read miss for block b, returning the
// decrypted plaintext and the access report. The caller (sim layer) passes
// its current time; the report's Latency covers only the controller part.
func (c *Controller) Read(now arch.Cycles, b arch.BlockID) (crypto.Block, Report) {
	start := now
	rep := Report{}
	c.stats.Reads++
	c.preAccess(b, false)
	if c.cfg.Plain {
		now += c.cfg.QueueDelay
		now = c.dram.Read(now, b)
		rep.Path = PathCounterHit // no metadata paths exist
		rep.Latency = now - start
		if st, ok := c.store[b]; ok {
			return st.ct, rep
		}
		return crypto.Block{}, rep
	}
	st := c.ensureInit(b)
	now += c.cfg.QueueDelay
	// Data fetch and (fixed-cost) MAC fetch+check proceed first.
	now = c.dram.Read(now, b)
	now += c.cfg.MACLatency
	// Counter (and, if needed, tree) access.
	now = c.fetchCounter(now, b, &rep)
	if !rep.CounterHit {
		// OTP generation could not be overlapped with the data fetch.
		now += c.eng.AESLatency()
	}
	// Decrypt and authenticate (functionally real).
	v := c.ctrs.Value(b)
	if c.eng.MACOf(&st.ct, b, v) != st.mac {
		rep.Tampered = true
		c.stats.TamperDetections++
	}
	var plain crypto.Block
	c.eng.DecryptTo(&plain, &st.ct, b, v)
	rep.Path = PathCounterHit
	if !rep.CounterHit {
		if rep.TreeLevelsLoaded == 0 {
			rep.Path = PathTreeHit
		} else {
			rep.Path = PathTreeMiss
		}
	}
	rep.Latency = now - start
	return plain, rep
}

// Write services a write-back of block b with the given plaintext
// (Algorithm 1): the counter is fetched and incremented, overflow
// re-encrypts the counter-sharing group, and the new ciphertext is queued
// to memory.
func (c *Controller) Write(now arch.Cycles, b arch.BlockID, plain crypto.Block) Report {
	start := now
	rep := Report{}
	c.stats.Writes++
	c.preAccess(b, true)
	if c.cfg.Plain {
		now += c.cfg.QueueDelay
		st, ok := c.store[b]
		if !ok {
			st = &stored{}
			c.store[b] = st
		}
		st.ct = plain
		now = c.dram.Write(now, b)
		rep.Path = PathCounterHit
		rep.Latency = now - start
		return rep
	}
	st := c.ensureInit(b)
	now += c.cfg.QueueDelay
	// The counter must be on-chip to encrypt the outgoing data.
	now = c.fetchCounter(now, b, &rep)
	newVal, ov := c.ctrs.Increment(b)
	c.meta.Access(c.ctrs.CounterBlock(b), true) // counter block now dirty
	if ov != nil {
		// Counter overflow: re-encrypt the counter-sharing group
		// (Algorithm 1 line 5) — the long path of VUL-1. The burst is
		// hardware-managed: the memory controller posts the group's reads
		// and writes as a background sweep that occupies the affected banks
		// (delaying foreground reads, the Fig. 8 observable) while the
		// triggering write itself stalls only for the bookkeeping.
		rep.Overflow = true
		rep.Reencrypted = len(ov.Reencrypt)
		c.stats.CounterOverflows++
		c.stats.ReencryptedBlocks += uint64(len(ov.Reencrypt))
		burst := now
		var scratch crypto.Block
		for _, ch := range ov.Reencrypt {
			// Untouched group members materialize at their OLD seed (they
			// were conceptually encrypted with it since initialization);
			// initializing at the new seed and then decrypting with the
			// old would scramble them.
			gst, ok := c.store[ch.Block]
			if !ok {
				gst = &stored{}
				c.eng.EncryptTo(&gst.ct, &zeroBlock, ch.Block, ch.Old)
				gst.mac = c.eng.MACOf(&gst.ct, ch.Block, ch.Old)
				c.store[ch.Block] = gst
			}
			c.eng.DecryptTo(&scratch, &gst.ct, ch.Block, ch.Old)
			c.eng.EncryptTo(&gst.ct, &scratch, ch.Block, ch.New)
			gst.mac = c.eng.MACOf(&gst.ct, ch.Block, ch.New)
			c.dram.Background(burst, ch.Block, c.cfg.DRAM.WriteLat+2*c.eng.AESLatency())
		}
		now += overflowStall
	}
	// Encrypt and queue the target block.
	now += c.eng.AESLatency()
	c.eng.EncryptTo(&st.ct, &plain, b, newVal)
	st.mac = c.eng.MACOf(&st.ct, b, newVal)
	now += c.cfg.MACLatency
	now = c.dram.Write(now, b)
	rep.Path = PathCounterHit
	if !rep.CounterHit {
		if rep.TreeLevelsLoaded == 0 {
			rep.Path = PathTreeHit
		} else {
			rep.Path = PathTreeMiss
		}
	}
	rep.Latency = now - start
	// Report tree overflow that dirty-eviction handling produced.
	if c.pendingTreeOverflow {
		rep.TreeOverflow = true
		rep.Rehashed = c.pendingRehashed
		c.pendingTreeOverflow = false
		c.pendingRehashed = 0
	}
	return rep
}

// FlushWriteQueue forces the DRAM write queue to drain — the effect the
// attacker's redundant writes achieve in the mPreset step (§VI-B).
func (c *Controller) FlushWriteQueue(now arch.Cycles) arch.Cycles {
	return c.dram.FlushWrites(now)
}
