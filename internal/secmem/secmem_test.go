package secmem

import (
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/cache"
	"metaleak/internal/crypto"
	"metaleak/internal/ctr"
	"metaleak/internal/dram"
	"metaleak/internal/itree"
)

// build constructs a small SCT controller for tests: SC counters, a
// 3-level tree, and a tiny metadata cache so evictions are easy to force.
func build(metaKB int) (*Controller, *ctr.SC, *itree.VTree) {
	sc := ctr.NewSC(ctr.SCConfig{})
	eng := crypto.Config{AESLatency: 20, HashLatency: 12}
	h := crypto.New(eng)
	tree := itree.NewVTree(itree.VTreeConfig{
		Name: "SCT", Arities: []int{32, 16, 16}, MinorBits: 7, CounterBlocks: 32 * 16 * 16,
	}, h)
	cfg := Config{
		DRAM:   dram.DefaultConfig(),
		Meta:   cache.Config{Name: "meta", SizeBytes: metaKB * 1024, Ways: 8, HitLatency: 2},
		Engine: eng, QueueDelay: 10, MACLatency: 30,
	}
	return New(cfg, sc, tree), sc, tree
}

func TestReadPathsClassification(t *testing.T) {
	c, _, _ := build(256)
	b := arch.PageID(0).Block(0)
	_, rep := c.Read(0, b)
	if rep.Path != PathTreeMiss || rep.TreeLevelsLoaded == 0 {
		t.Fatalf("cold read path=%v levels=%d", rep.Path, rep.TreeLevelsLoaded)
	}
	_, rep = c.Read(1000, b)
	if rep.Path != PathCounterHit {
		t.Fatalf("warm read path=%v", rep.Path)
	}
	// A page whose counter block shares the (now cached) leaf node.
	b2 := arch.PageID(1).Block(0)
	_, rep = c.Read(2000, b2)
	if rep.Path != PathTreeHit {
		t.Fatalf("leaf-shared read path=%v levels=%d", rep.Path, rep.TreeLevelsLoaded)
	}
	// A page far away: its leaf misses but upper levels hit.
	b3 := arch.PageID(32 * 16).Block(0) // different L1 subtree
	_, rep = c.Read(3000, b3)
	if rep.Path != PathTreeMiss || rep.TreeLevelsLoaded == 0 || rep.TreeLevelsLoaded >= 3 {
		t.Fatalf("far read path=%v levels=%d", rep.Path, rep.TreeLevelsLoaded)
	}
}

func TestLatencyOrderingAcrossPaths(t *testing.T) {
	c, _, _ := build(256)
	b := arch.PageID(0).Block(0)
	_, cold := c.Read(0, b)
	_, warm := c.Read(10000, b)
	_, leafShared := c.Read(20000, arch.PageID(1).Block(0))
	if !(warm.Latency < leafShared.Latency && leafShared.Latency < cold.Latency) {
		t.Fatalf("band ordering violated: %d %d %d", warm.Latency, leafShared.Latency, cold.Latency)
	}
}

func TestWriteEncryptsAndReadDecrypts(t *testing.T) {
	c, _, _ := build(256)
	b := arch.PageID(2).Block(7)
	var plain crypto.Block
	copy(plain[:], "metaleak secure memory block")
	c.Write(0, b, plain)
	// Off-chip bytes must differ from plaintext.
	if c.store[b].ct == plain {
		t.Fatal("backing store holds plaintext")
	}
	got, rep := c.Read(1000, b)
	if got != plain {
		t.Fatal("decryption mismatch")
	}
	if rep.Tampered {
		t.Fatal("false tamper detection")
	}
}

func TestSpoofingDetected(t *testing.T) {
	c, _, _ := build(256)
	b := arch.PageID(3).Block(1)
	var plain crypto.Block
	plain[9] = 42
	c.Write(0, b, plain)
	c.TamperFlipBit(b, 13)
	_, rep := c.Read(1000, b)
	if !rep.Tampered {
		t.Fatal("bit-flip spoofing not detected")
	}
}

func TestSplicingDetected(t *testing.T) {
	c, _, _ := build(256)
	b1 := arch.PageID(4).Block(0)
	b2 := arch.PageID(4).Block(1)
	var p1, p2 crypto.Block
	p1[0], p2[0] = 1, 2
	c.Write(0, b1, p1)
	c.Write(100, b2, p2)
	c.TamperSplice(b1, b2)
	_, rep := c.Read(1000, b1)
	if !rep.Tampered {
		t.Fatal("splicing not detected")
	}
}

func TestReplayDetected(t *testing.T) {
	c, _, _ := build(256)
	b := arch.PageID(5).Block(0)
	var v1, v2 crypto.Block
	v1[0], v2[0] = 1, 2
	c.Write(0, b, v1)
	snap := c.Snapshot(b)
	c.Write(100, b, v2)  // counter advances
	c.TamperReplay(snap) // stale but self-consistent ciphertext+MAC
	_, rep := c.Read(1000, b)
	if !rep.Tampered {
		t.Fatal("replay not detected")
	}
}

func TestHonestTrafficNeverTampers(t *testing.T) {
	c, _, _ := build(8) // tiny metadata cache: force writebacks and refills
	now := arch.Cycles(0)
	var plain crypto.Block
	sets := c.Meta().Config().Sets()
	for i := 0; i < 400; i++ {
		// Pages chosen so their counter blocks collide in one metadata
		// cache set, forcing dirty evictions and lazy tree updates.
		b := arch.PageID((i % 20) * sets).Block(i % arch.BlocksPerPage)
		plain[0] = byte(i)
		rep := c.Write(now, b, plain)
		if rep.Tampered {
			t.Fatalf("false tamper on write %d", i)
		}
		now += rep.Latency + 50
		got, rrep := c.Read(now, b)
		if rrep.Tampered {
			t.Fatalf("false tamper on read %d", i)
		}
		if got[0] != byte(i) {
			t.Fatalf("data corruption at %d", i)
		}
		now += rrep.Latency + 50
	}
	if c.Stats().CounterWritebacks == 0 {
		t.Fatal("test never exercised counter writebacks; enlarge traffic")
	}
	if c.Stats().NodeWritebacks == 0 {
		t.Fatal("test never exercised node writebacks")
	}
}

func TestEncryptionCounterOverflowReencrypts(t *testing.T) {
	c, sc, _ := build(256)
	b := arch.PageID(6).Block(0)
	sibling := arch.PageID(6).Block(5)
	var sdata crypto.Block
	sdata[0] = 77
	c.Write(0, sibling, sdata)
	var plain crypto.Block
	var rep Report
	now := arch.Cycles(1000)
	for i := uint64(0); i <= sc.MinorMax(); i++ {
		rep = c.Write(now, b, plain)
		now += rep.Latency + 10
	}
	if !rep.Overflow {
		t.Fatal("no overflow reported")
	}
	if rep.Reencrypted != arch.BlocksPerPage-1 {
		t.Fatalf("re-encrypted %d blocks", rep.Reencrypted)
	}
	// Sibling data must survive re-encryption.
	got, rrep := c.Read(now, sibling)
	if rrep.Tampered || got != sdata {
		t.Fatal("sibling corrupted by group re-encryption")
	}
}

func TestOverflowWriteMuchSlower(t *testing.T) {
	c, sc, _ := build(256)
	b := arch.PageID(7).Block(0)
	var plain crypto.Block
	now := arch.Cycles(0)
	var normal, overflow arch.Cycles
	for i := uint64(0); i <= sc.MinorMax(); i++ {
		rep := c.Write(now, b, plain)
		if rep.Overflow {
			overflow = rep.Latency
		} else {
			normal = rep.Latency
		}
		now += rep.Latency + 10
	}
	if overflow < 4*normal {
		t.Fatalf("overflow write (%d) not >> normal write (%d)", overflow, normal)
	}
}

func TestTreeCounterOverflowViaWritebacks(t *testing.T) {
	// Force 2^7 writebacks of one counter block by cycling it through a
	// tiny metadata cache; the tree leaf minor must eventually overflow.
	c, sc, tree := build(8)
	target := arch.PageID(0)
	var plain crypto.Block
	now := arch.Cycles(0)
	overflows := func() uint64 { return c.Stats().TreeOverflows }
	start := overflows()
	// Each iteration: write target page (dirties counter), then thrash the
	// metadata cache set with other counter blocks to force writeback.
	sets := c.Meta().Config().Sets()
	for i := 0; i < int(tree.MinorMax())+2; i++ {
		rep := c.Write(now, target.Block(i%2), plain)
		now += rep.Latency + 10
		cbTarget := sc.CounterBlock(target.Block(0))
		for w := 1; w <= c.Meta().Config().Ways+1; w++ {
			p := arch.PageID(int(target) + w*sets)
			_, r := c.Read(now, p.Block(0))
			now += r.Latency + 10
			_ = cbTarget
		}
	}
	if overflows() == start {
		t.Fatal("tree counter never overflowed despite saturating writebacks")
	}
}

func TestFlushWriteQueue(t *testing.T) {
	c, _, _ := build(256)
	var plain crypto.Block
	now := arch.Cycles(0)
	for i := 0; i < 10; i++ {
		rep := c.Write(now, arch.PageID(8+i).Block(0), plain)
		now += rep.Latency
	}
	if c.DRAM().PendingWrites() == 0 {
		t.Fatal("expected buffered writes")
	}
	c.FlushWriteQueue(now)
	if c.DRAM().PendingWrites() != 0 {
		t.Fatal("flush left writes pending")
	}
}

// TestStatefulFuzz drives a long pseudo-random sequence of reads, writes,
// flush-like refetches, and page hops through the controller and checks
// the two global invariants: every read returns the last-written data,
// and honest traffic never trips tamper detection — across counter
// overflows, metadata write-backs, and tree updates.
func TestStatefulFuzz(t *testing.T) {
	c, _, _ := build(8) // tiny metadata cache: maximal write-back churn
	rng := arch.NewRNG(0xF022)
	shadow := make(map[arch.BlockID]byte)
	now := arch.Cycles(0)
	pages := 40
	for i := 0; i < 5000; i++ {
		p := arch.PageID(rng.Intn(pages) * 16) // collide in metadata sets
		b := p.Block(rng.Intn(arch.BlocksPerPage))
		if rng.Bool(0.5) {
			// Writes concentrate on a hot set so encryption minors (128
			// writes/block) and tree minors (128 write-backs/block)
			// genuinely overflow during the run.
			p = arch.PageID(rng.Intn(3) * 16)
			b = p.Block(rng.Intn(3))
			v := byte(rng.Uint64())
			var data crypto.Block
			data[0] = v
			rep := c.Write(now, b, data)
			if rep.Tampered {
				t.Fatalf("op %d: false tamper on write", i)
			}
			shadow[b] = v
			now += rep.Latency + arch.Cycles(rng.Intn(50))
		} else {
			got, rep := c.Read(now, b)
			if rep.Tampered {
				t.Fatalf("op %d: false tamper on read", i)
			}
			if got[0] != shadow[b] {
				t.Fatalf("op %d: read %d want %d at block %v", i, got[0], shadow[b], b)
			}
			now += rep.Latency + arch.Cycles(rng.Intn(50))
		}
	}
	st := c.Stats()
	if st.CounterOverflows == 0 {
		t.Fatal("fuzz never overflowed an encryption counter; weaken it less")
	}
	if st.TreeOverflows == 0 {
		t.Fatal("fuzz never overflowed a tree counter")
	}
	if st.NodeWritebacks == 0 || st.CounterWritebacks == 0 {
		t.Fatal("fuzz never exercised lazy tree updates")
	}
}

// TestStatefulFuzzAllDesigns repeats a shorter fuzz on every counter
// scheme and tree combination the builder supports.
func TestStatefulFuzzAllDesigns(t *testing.T) {
	engCfg := crypto.Config{AESLatency: 20, HashLatency: 12}
	builds := []struct {
		name   string
		scheme ctr.Scheme
		tree   itree.Tree
	}{
		{"SC+SCT", ctr.NewSC(ctr.SCConfig{}), itree.NewVTree(itree.VTreeConfig{
			Name: "SCT", Arities: []int{32, 16, 16}, MinorBits: 7, CounterBlocks: 1 << 13,
		}, crypto.New(engCfg))},
		{"SC+HT", ctr.NewSC(ctr.SCConfig{}), itree.NewHTree(itree.HTreeConfig{
			Arities: []int{8, 8, 8, 8}, CounterBlocks: 1 << 13,
		}, crypto.New(engCfg))},
		{"MoC+SIT", ctr.NewMoC(ctr.MoCConfig{Bits: 56}), itree.NewVTree(itree.VTreeConfig{
			Name: "SIT", Arities: []int{8, 8, 8}, MinorBits: 56, CounterBlocks: 1 << 13 * 8,
		}, crypto.New(engCfg))},
		{"GC+SCT", ctr.NewGC(ctr.GCConfig{Bits: 10}), itree.NewVTree(itree.VTreeConfig{
			Name: "SCT", Arities: []int{32, 16, 16}, MinorBits: 7, CounterBlocks: 1 << 16,
		}, crypto.New(engCfg))},
	}
	for _, bc := range builds {
		t.Run(bc.name, func(t *testing.T) {
			c := New(Config{
				DRAM:          dram.DefaultConfig(),
				Meta:          cache.Config{Name: "meta", SizeBytes: 8 * 1024, Ways: 8, HitLatency: 2},
				Engine:        engCfg,
				QueueDelay:    10,
				MACLatency:    30,
				TreeStepDelay: 30,
			}, bc.scheme, bc.tree)
			rng := arch.NewRNG(uint64(len(bc.name)))
			shadow := make(map[arch.BlockID]byte)
			now := arch.Cycles(0)
			for i := 0; i < 1200; i++ {
				p := arch.PageID(rng.Intn(30) * 16)
				b := p.Block(rng.Intn(arch.BlocksPerPage))
				if rng.Bool(0.5) {
					var data crypto.Block
					data[0] = byte(i)
					if rep := c.Write(now, b, data); rep.Tampered {
						t.Fatalf("%s op %d: false tamper on write", bc.name, i)
					}
					shadow[b] = byte(i)
				} else {
					got, rep := c.Read(now, b)
					if rep.Tampered {
						t.Fatalf("%s op %d: false tamper on read", bc.name, i)
					}
					if got[0] != shadow[b] {
						t.Fatalf("%s op %d: data corruption", bc.name, i)
					}
				}
				now += 300
			}
		})
	}
}

// epochBuild constructs a controller over a whole-memory-re-key scheme
// (MoC or GC) with a tiny counter width so overflow is cheap to force.
func epochBuild(scheme ctr.Scheme) *Controller {
	eng := crypto.Config{AESLatency: 20, HashLatency: 12}
	h := crypto.New(eng)
	tree := itree.NewVTree(itree.VTreeConfig{
		Name: "SIT", Arities: []int{8, 8, 8}, MinorBits: 56, CounterBlocks: 512,
	}, h)
	cfg := Config{
		DRAM:   dram.DefaultConfig(),
		Meta:   cache.Config{Name: "meta", SizeBytes: 256 * 1024, Ways: 8, HitLatency: 2},
		Engine: eng, QueueDelay: 10, MACLatency: 30,
	}
	return New(cfg, scheme, tree)
}

// TestEpochRekeyCoversReadOnlyBlocks is the regression test for the epoch
// re-key staleness bug: a block that was only ever READ is materialized at
// the old epoch's seed, so a whole-memory re-key (MoC/GC counter overflow
// triggered by a different block) must re-encrypt it too. The buggy
// schemes enumerated only ever-written blocks, and the next read of the
// read-only block failed its MAC check — a spurious tamper detection with
// no attacker present.
func TestEpochRekeyCoversReadOnlyBlocks(t *testing.T) {
	cases := []struct {
		name   string
		scheme ctr.Scheme
	}{
		{"MoC", ctr.NewMoC(ctr.MoCConfig{Bits: 4})},
		{"GC", ctr.NewGC(ctr.GCConfig{Bits: 4})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := epochBuild(tc.scheme)
			ro := arch.PageID(0).Block(0) // read-only from here on
			w := arch.PageID(0).Block(8)  // lives in a different counter block
			plain, rep := c.Read(0, ro)
			if rep.Tampered {
				t.Fatal("tamper on first read")
			}
			var data crypto.Block
			copy(data[:], "epoch re-key probe")
			now := arch.Cycles(1000)
			overflowed := false
			for i := 0; i < 40 && !overflowed; i++ {
				wrep := c.Write(now, w, data)
				now += 100000
				overflowed = wrep.Overflow
			}
			if !overflowed {
				t.Fatal("counter never overflowed")
			}
			got, rep2 := c.Read(now, ro)
			if got != plain {
				t.Fatal("re-key scrambled a read-only block's plaintext")
			}
			if rep2.Tampered || c.Stats().TamperDetections != 0 {
				t.Fatalf("spurious tamper detections after epoch re-key: %d", c.Stats().TamperDetections)
			}
		})
	}
}
