package secmem

import "metaleak/internal/arch"

// Tamper-injection hooks. These model the physical attacker of §II-B
// (spoofing, splicing, replay) by mutating the off-chip backing store
// behind the controller's back; tests assert that the MAC and integrity
// tree detect every one of them.

// BlockSnapshot captures a block's off-chip state (ciphertext + MAC) for a
// later replay.
type BlockSnapshot struct {
	Block arch.BlockID
	ct    [arch.BlockSize]byte
	mac   uint64
	ok    bool
}

// TamperFlipBit flips one bit of a block's ciphertext in memory (data
// spoofing).
func (c *Controller) TamperFlipBit(b arch.BlockID, bit int) {
	st := c.ensureInit(b)
	st.ct[bit/8%arch.BlockSize] ^= 1 << (bit % 8)
}

// TamperMAC flips one bit of a block's stored MAC in memory (the
// authentication tag itself is off-chip state an attacker can corrupt).
func (c *Controller) TamperMAC(b arch.BlockID, bit int) {
	c.ensureInit(b).mac ^= 1 << (bit % 64)
}

// TamperSplice swaps the off-chip contents (ciphertext and MAC) of two
// blocks (data splicing).
func (c *Controller) TamperSplice(b1, b2 arch.BlockID) {
	c.ensureInit(b1)
	c.ensureInit(b2)
	c.store[b1], c.store[b2] = c.store[b2], c.store[b1]
}

// Snapshot captures a block's current off-chip state.
func (c *Controller) Snapshot(b arch.BlockID) BlockSnapshot {
	st := c.ensureInit(b)
	return BlockSnapshot{Block: b, ct: st.ct, mac: st.mac, ok: true}
}

// TamperReplay restores an earlier snapshot of a block (data replay: a
// stale but self-consistent ciphertext+MAC pair).
func (c *Controller) TamperReplay(s BlockSnapshot) {
	if !s.ok {
		panic("secmem: replaying empty snapshot")
	}
	st := c.ensureInit(s.Block)
	st.ct = s.ct
	st.mac = s.mac
}
