package secmem

import (
	"metaleak/internal/arch"
	"metaleak/internal/itree"
)

// This file implements the lazy metadata update machinery of §V: dirty
// counter blocks leaving the metadata cache update their integrity tree
// leaf; dirty node blocks leaving update their parent. Updates can cascade
// (the parent must itself come on-chip and becomes dirty), so evictions are
// processed through a work list rather than recursion.

// insertMeta fills a metadata block into the metadata cache and processes
// the eviction chain it may trigger. It returns the advanced time.
func (c *Controller) insertMeta(now arch.Cycles, b arch.BlockID, dirty bool) arch.Cycles {
	ev, evicted := c.meta.Insert(b, dirty)
	if !evicted || !ev.Dirty {
		return now
	}
	// The controller's reusable work slice serves as the FIFO (indexing
	// instead of re-slicing, so the backing array survives for the next
	// eviction chain). Chains never nest: writebackMeta appends to this
	// same list rather than recursing into insertMeta.
	c.work = append(c.work[:0], ev.Block)
	for i := 0; i < len(c.work); i++ {
		now = c.writebackMeta(now, c.work[i], &c.work)
	}
	return now
}

// writebackMeta handles one dirty metadata block leaving the cache. New
// evictions caused by fetching the updated ancestor are appended to work.
func (c *Controller) writebackMeta(now arch.Cycles, b arch.BlockID, work *[]arch.BlockID) arch.Cycles {
	switch {
	case b.IsCounter():
		c.stats.CounterWritebacks++
		// The leaf node must be brought on-chip (and verified against its
		// OLD contents) BEFORE the update mutates it: verifying after the
		// mutation would compare fresh contents against the stale stored
		// hash and report phantom tampering.
		leaf := c.tree.LeafRef(b)
		now = c.touchNodeDirty(now, leaf, work)
		up := c.tree.WritebackCounterBlock(b, c.ctrs.BlockBytes(b))
		now = c.applyTreeUpdate(now, up)
	case b.IsTree():
		ref, ok := c.tree.RefOfBlock(b)
		if !ok {
			break
		}
		c.stats.NodeWritebacks++
		// Same ordering: fetch-and-verify the parent before updating it.
		if parent, hasParent := c.tree.Parent(ref); hasParent {
			now = c.touchNodeDirty(now, parent, work)
		}
		up := c.tree.WritebackNode(ref)
		now = c.applyTreeUpdate(now, up)
	}
	// The block itself goes to memory.
	now += c.eng.HashLatency()
	c.dram.Write(now, b)
	return now
}

// touchNodeDirty ensures a tree node block is in the metadata cache and
// marks it dirty, charging a fetch if it was absent. Evictions go to work.
func (c *Controller) touchNodeDirty(now arch.Cycles, ref itree.NodeRef, work *[]arch.BlockID) arch.Cycles {
	nb := c.tree.NodeBlockID(ref)
	if c.meta.Access(nb, true) {
		return now + c.meta.HitLatency()
	}
	now = c.dram.Read(now, nb)
	if !c.tree.VerifyNode(ref) {
		c.stats.TamperDetections++
	}
	now += c.eng.HashLatency()
	ev, evicted := c.meta.Insert(nb, true)
	if evicted && ev.Dirty {
		*work = append(*work, ev.Block)
	}
	return now
}

// applyTreeUpdate charges the cost of a tree-counter overflow: every
// re-hashed metadata block must be read from memory, re-hashed, and
// written back (the subtree re-hash of §IV-C). The burst occupies the
// affected banks in the background — which is exactly what makes overflow
// observable to a concurrent timed read (Fig. 8). The overflow is
// recorded so the in-flight Write's report can surface it.
func (c *Controller) applyTreeUpdate(now arch.Cycles, up *itree.Update) arch.Cycles {
	if up == nil || !up.Overflow {
		return now
	}
	c.stats.TreeOverflows++
	c.stats.RehashedBlocks += uint64(len(up.Rehashed))
	c.pendingTreeOverflow = true
	c.pendingRehashed += len(up.Rehashed)
	// The subtree sweep (read, re-hash, write back every affected metadata
	// block) is posted as a background burst occupying the blocks' banks;
	// the triggering operation stalls only for the bookkeeping.
	for _, b := range up.Rehashed {
		c.dram.Background(now, b, c.cfg.DRAM.RowHit+c.cfg.DRAM.WriteLat+c.eng.HashLatency())
	}
	return now + overflowStall
}
