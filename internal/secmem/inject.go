package secmem

import (
	"sort"

	"metaleak/internal/arch"
)

// This file is the machine-level fault-injection surface: a pluggable
// Injector corrupts off-chip state (ciphertext, MACs, encryption
// counters, tree nodes, whole DRAM rows) immediately before planned
// accesses, and the controller's ordinary verification machinery — the
// per-read MAC check and the Algorithm 2 tree walk — is what must catch
// every corruption. The hooks are written so detection is *guaranteed*
// to be exercised, not accidental:
//
//   - counter and node corruption first establishes the lazily-computed
//     tree hash over the honest contents (otherwise the first-ever
//     verification would adopt the corruption as truth), then corrupts,
//     then invalidates the on-chip metadata copy so the tampered state
//     must be reloaded — and verified — from memory;
//   - ciphertext and MAC corruption is meaningful only on the read path
//     (a write overwrites both), which the fault planner accounts for by
//     deferring those classes to the next read.

// InjectClass names one metadata class a fault can corrupt.
type InjectClass uint8

// Fault classes, in the order of the paper's metadata taxonomy.
const (
	// InjectCiphertext flips one bit of the accessed block's ciphertext.
	InjectCiphertext InjectClass = iota
	// InjectMAC flips one bit of the accessed block's stored MAC.
	InjectMAC
	// InjectMinor flips the accessed block's minor encryption counter.
	InjectMinor
	// InjectMajor flips the shared major counter covering the block.
	InjectMajor
	// InjectNode corrupts the integrity-tree leaf covering the block's
	// counter.
	InjectNode
	// InjectRow flips a ciphertext bit in every materialized block
	// sharing the accessed block's DRAM row (spatially correlated
	// corruption; caught by later reads or an AuditIntegrity sweep).
	InjectRow
)

// String renders the class name used in fault specs and reports.
func (cl InjectClass) String() string {
	switch cl {
	case InjectCiphertext:
		return "ciphertext"
	case InjectMAC:
		return "mac"
	case InjectMinor:
		return "minor"
	case InjectMajor:
		return "major"
	case InjectNode:
		return "node"
	case InjectRow:
		return "row"
	}
	return "unknown"
}

// Injector plans machine-level faults. Inject is consulted once per
// serviced access — seq is the 1-based access ordinal, b the accessed
// block, write the direction — and returns the classes to corrupt
// before the access proceeds. Implementations live in internal/faults;
// the controller only applies what they return.
type Injector interface {
	Inject(seq uint64, b arch.BlockID, write bool) []InjectClass
}

// InjectedFault records one applied corruption.
type InjectedFault struct {
	Seq   uint64
	Block arch.BlockID
	Class InjectClass
}

// SetInjector attaches (or, with nil, detaches) a fault injector.
func (c *Controller) SetInjector(inj Injector) { c.inj = inj }

// AccessSeq returns the 1-based ordinal of the last serviced access —
// the coordinate system fault plans schedule in.
func (c *Controller) AccessSeq() uint64 { return c.accessSeq }

// FaultLog returns every corruption applied so far, in application
// order. Tests correlate it with TamperDetections for exact
// fault-to-detection attribution.
func (c *Controller) FaultLog() []InjectedFault { return c.faultLog }

// preAccess advances the access ordinal and applies any faults the
// injector plans for this access.
func (c *Controller) preAccess(b arch.BlockID, write bool) {
	c.accessSeq++
	if c.inj == nil {
		return
	}
	for _, cl := range c.inj.Inject(c.accessSeq, b, write) {
		c.applyFault(cl, b)
	}
}

// applyFault corrupts off-chip state for one fault class targeting the
// access to b.
func (c *Controller) applyFault(cl InjectClass, b arch.BlockID) {
	seq := c.accessSeq
	record := func(blk arch.BlockID) {
		c.stats.FaultsInjected++
		c.faultLog = append(c.faultLog, InjectedFault{Seq: seq, Block: blk, Class: cl})
	}
	switch cl {
	case InjectCiphertext:
		c.TamperFlipBit(b, int(seq*17)%(8*arch.BlockSize))
		record(b)
	case InjectMAC:
		c.TamperMAC(b, int(seq%64))
		record(b)
	case InjectMinor, InjectMajor:
		cb := c.ctrs.CounterBlock(b)
		// Establish the tree's binding over the honest contents before
		// corrupting, so verification compares tampered state against
		// honest history rather than lazily adopting it.
		c.tree.VerifyCounterBlock(cb, c.ctrs.BlockBytes(cb))
		c.ctrs.CorruptCounter(b, cl == InjectMajor)
		// Drop the on-chip copy: the next counter fetch misses and walks
		// the tree over the corrupted contents.
		c.meta.Invalidate(cb)
		record(cb)
	case InjectNode:
		cb := c.ctrs.CounterBlock(b)
		leaf := c.tree.LeafRef(cb)
		c.tree.CorruptNode(leaf)
		// Drop both the counter block and the leaf node from the cache:
		// the next fetch of b's counter reloads the whole path and
		// VerifyNode sees the corruption in the same access.
		c.meta.Invalidate(cb)
		c.meta.Invalidate(c.tree.NodeBlockID(leaf))
		record(c.tree.NodeBlockID(leaf))
	case InjectRow:
		// Corrupt every materialized block sharing b's DRAM row, in
		// block order (map iteration must not leak into the fault log).
		c.ensureInit(b)
		row := make([]arch.BlockID, 0, 8)
		for blk := range c.store {
			if c.dram.SameRow(blk, b) {
				row = append(row, blk)
			}
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		for _, blk := range row {
			c.TamperFlipBit(blk, int(seq*13)%(8*arch.BlockSize))
			record(blk)
		}
	}
}

// AuditIntegrity MAC-checks every materialized block — the end-of-run
// integrity scrub that closes the detection window for corruption in
// blocks the workload never re-read (row faults especially). Failures
// count as tamper detections; the number of failing blocks is returned.
// The insecure baseline has no MACs and audits vacuously to zero.
func (c *Controller) AuditIntegrity() int {
	if c.cfg.Plain {
		return 0
	}
	blocks := make([]arch.BlockID, 0, len(c.store))
	for b := range c.store {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	bad := 0
	for _, b := range blocks {
		st := c.store[b]
		if c.eng.MACOf(&st.ct, b, c.ctrs.Value(b)) != st.mac {
			bad++
			c.stats.TamperDetections++
		}
	}
	return bad
}
