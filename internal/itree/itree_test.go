package itree

import (
	"testing"
	"testing/quick"

	"metaleak/internal/arch"
	"metaleak/internal/crypto"
)

func hasher() Hasher {
	return crypto.New(crypto.Config{AESLatency: 20, HashLatency: 12})
}

func cb(i int) arch.BlockID { return arch.CounterBase.Block() + arch.BlockID(i) }

func newSCT(nCB int) *VTree {
	return NewVTree(VTreeConfig{
		Name: "SCT", Arities: []int{32, 16, 16}, MinorBits: 7, CounterBlocks: nCB,
	}, hasher())
}

func newSIT(nCB int) *VTree {
	return NewVTree(VTreeConfig{
		Name: "SIT", Arities: []int{8, 8, 8}, MinorBits: 56, CounterBlocks: nCB,
	}, hasher())
}

func newHT(nCB int) *HTree {
	return NewHTree(HTreeConfig{Arities: []int{8, 8, 8}, CounterBlocks: nCB}, hasher())
}

func TestGeometryCounts(t *testing.T) {
	tr := newSCT(32 * 16 * 16)
	if tr.StoredLevels() != 3 {
		t.Fatalf("levels = %d", tr.StoredLevels())
	}
	want := []int{16 * 16, 16, 1}
	for l, w := range want {
		if tr.geo.counts[l] != w {
			t.Fatalf("level %d count = %d want %d", l, tr.geo.counts[l], w)
		}
	}
}

func TestPathBottomUp(t *testing.T) {
	tr := newSCT(32 * 16 * 16)
	path := tr.Path(cb(33)) // leaf index 1
	if len(path) != 3 {
		t.Fatalf("path length = %d", len(path))
	}
	if path[0] != (NodeRef{0, 1}) || path[1] != (NodeRef{1, 0}) || path[2] != (NodeRef{2, 0}) {
		t.Fatalf("path = %v", path)
	}
}

func TestNodeBlockAddressingRoundTrip(t *testing.T) {
	tr := newSCT(32 * 16 * 16)
	for _, ref := range []NodeRef{{0, 0}, {0, 255}, {1, 15}, {2, 0}} {
		b := tr.NodeBlockID(ref)
		if !b.IsTree() {
			t.Fatalf("%v not in tree region", ref)
		}
		got, ok := tr.RefOfBlock(b)
		if !ok || got != ref {
			t.Fatalf("round trip %v -> %v (%v)", ref, got, ok)
		}
	}
	if _, ok := tr.RefOfBlock(arch.BlockID(5)); ok {
		t.Fatal("data block resolved as tree node")
	}
}

func TestCoverage(t *testing.T) {
	tr := newSCT(32 * 16 * 16)
	if tr.CoverageCounterBlocks(0) != 32 {
		t.Fatalf("L0 coverage = %d", tr.CoverageCounterBlocks(0))
	}
	if tr.CoverageCounterBlocks(1) != 32*16 {
		t.Fatalf("L1 coverage = %d", tr.CoverageCounterBlocks(1))
	}
}

func TestVerifyAfterWritebackHonest(t *testing.T) {
	tr := newSCT(32 * 16 * 16)
	var contents [arch.BlockSize]byte
	contents[0] = 1
	if !tr.VerifyCounterBlock(cb(0), contents) {
		t.Fatal("lazy first verify rejected")
	}
	// A writeback with new contents, then verification of those contents.
	contents[0] = 2
	if up := tr.WritebackCounterBlock(cb(0), contents); up != nil {
		t.Fatal("unexpected overflow on first writeback")
	}
	if !tr.VerifyCounterBlock(cb(0), contents) {
		t.Fatal("verify rejected honest contents after writeback")
	}
}

func TestVerifyDetectsStaleCounterBlock(t *testing.T) {
	tr := newSCT(32 * 16 * 16)
	var v1, v2 [arch.BlockSize]byte
	v1[0], v2[0] = 1, 2
	tr.VerifyCounterBlock(cb(0), v1) // establish
	tr.WritebackCounterBlock(cb(0), v2)
	// Replaying the stale contents must fail (replay detection).
	if tr.VerifyCounterBlock(cb(0), v1) {
		t.Fatal("replayed counter block accepted")
	}
}

func TestVerifyNodeDetectsCorruption(t *testing.T) {
	for _, tr := range []Tree{newSCT(32 * 16 * 16), newSIT(512), Tree(newHT(512))} {
		ref := NodeRef{0, 0}
		if !tr.VerifyNode(ref) {
			t.Fatalf("%s: lazy node verify rejected", tr.Name())
		}
		switch tt := tr.(type) {
		case *VTree:
			tt.CorruptNode(ref)
		case *HTree:
			// Corrupt the stored child-hash and then check the node via its
			// parent after a writeback (HT corruption surfaces one level up).
			tt.WritebackNode(ref)
			tt.CorruptNode(ref)
			if tt.VerifyNode(ref) {
				t.Fatal("HT: corrupted node accepted")
			}
			continue
		}
		if tr.VerifyNode(ref) {
			t.Fatalf("%s: corrupted node accepted", tr.Name())
		}
	}
}

func TestCounterHashCorruptionDetected(t *testing.T) {
	tr := newSCT(32 * 16 * 16)
	var contents [arch.BlockSize]byte
	tr.VerifyCounterBlock(cb(3), contents)
	tr.CorruptCounterHash(cb(3))
	if tr.VerifyCounterBlock(cb(3), contents) {
		t.Fatal("corrupted counter hash accepted")
	}
}

func TestLazyMinorIncrementPerWriteback(t *testing.T) {
	tr := newSCT(32 * 16 * 16)
	var contents [arch.BlockSize]byte
	leaf := tr.LeafRef(cb(5))
	for i := 1; i <= 3; i++ {
		tr.WritebackCounterBlock(cb(5), contents)
		if got := tr.MinorValue(leaf, 5); got != uint64(i) {
			t.Fatalf("after %d writebacks minor = %d", i, got)
		}
	}
	// A different counter block under the same leaf uses its own slot.
	tr.WritebackCounterBlock(cb(6), contents)
	if tr.MinorValue(leaf, 5) != 3 || tr.MinorValue(leaf, 6) != 1 {
		t.Fatal("minor slots not independent")
	}
}

func TestTreeMinorOverflowResetsSubtree(t *testing.T) {
	tr := newSCT(32 * 16 * 16)
	var contents [arch.BlockSize]byte
	leaf := tr.LeafRef(cb(0))
	var up *Update
	for i := uint64(0); i <= tr.MinorMax(); i++ {
		up = tr.WritebackCounterBlock(cb(0), contents)
	}
	if up == nil || !up.Overflow {
		t.Fatalf("no overflow after %d writebacks", tr.MinorMax()+1)
	}
	if up.OverflowRef != leaf {
		t.Fatalf("overflow at %v want %v", up.OverflowRef, leaf)
	}
	if len(up.Rehashed) == 0 {
		t.Fatal("overflow re-hashed nothing")
	}
	if tr.MinorValue(leaf, 0) != 1 {
		t.Fatalf("triggering minor after overflow = %d", tr.MinorValue(leaf, 0))
	}
	// The node and its content remain verifiable after the reset.
	if !tr.VerifyCounterBlock(cb(0), contents) {
		t.Fatal("post-overflow verification of triggering block failed")
	}
}

func TestNodeWritebackPropagatesUp(t *testing.T) {
	tr := newSCT(32 * 16 * 16)
	l1 := NodeRef{1, 0}
	if tr.MinorValue(l1, 0) != 0 {
		t.Fatal("dirty world")
	}
	tr.WritebackNode(NodeRef{0, 0})
	if tr.MinorValue(l1, 0) != 1 {
		t.Fatalf("L1 minor = %d after L0 writeback", tr.MinorValue(l1, 0))
	}
	// Node verifies against the updated parent version.
	if !tr.VerifyNode(NodeRef{0, 0}) {
		t.Fatal("node stale after its own writeback")
	}
}

func TestSITWideCountersDoNotOverflow(t *testing.T) {
	tr := newSIT(512)
	var contents [arch.BlockSize]byte
	for i := 0; i < 300; i++ {
		if up := tr.WritebackCounterBlock(cb(0), contents); up != nil {
			t.Fatal("56-bit counter overflowed in 300 writebacks")
		}
	}
}

func TestHTNoOverflowEver(t *testing.T) {
	tr := newHT(512)
	var contents [arch.BlockSize]byte
	for i := 0; i < 200; i++ {
		if up := tr.WritebackCounterBlock(cb(1), contents); up != nil {
			t.Fatal("hash tree reported an overflow")
		}
	}
}

func TestHTDetectsReplayedCounterBlock(t *testing.T) {
	tr := newHT(512)
	var v1, v2 [arch.BlockSize]byte
	v1[0], v2[0] = 1, 2
	tr.VerifyCounterBlock(cb(0), v1)
	tr.WritebackCounterBlock(cb(0), v2)
	if tr.VerifyCounterBlock(cb(0), v1) {
		t.Fatal("HT accepted replayed counter block")
	}
	if !tr.VerifyCounterBlock(cb(0), v2) {
		t.Fatal("HT rejected fresh counter block")
	}
}

// Property: Path always starts at the leaf covering cb, is strictly
// increasing in level, and every consecutive pair is child/parent.
func TestQuickPathWellFormed(t *testing.T) {
	trees := []Tree{newSCT(32 * 16 * 16), newSIT(512), newHT(512)}
	for _, tr := range trees {
		tr := tr
		f := func(raw uint16) bool {
			idx := int(raw) % tr.CounterBlockCapacity()
			p := tr.Path(cb(idx))
			if len(p) != tr.StoredLevels() {
				return false
			}
			if p[0] != tr.LeafRef(cb(idx)) {
				return false
			}
			for i := 0; i+1 < len(p); i++ {
				parent, ok := tr.Parent(p[i])
				if !ok || parent != p[i+1] {
					return false
				}
			}
			_, ok := tr.Parent(p[len(p)-1])
			return !ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
	}
}

// Property: writeback-then-verify always succeeds for arbitrary contents
// sequences (the no-false-positive requirement of integrity checking).
func TestQuickWritebackVerifyNoFalsePositives(t *testing.T) {
	trees := []Tree{newSCT(32 * 16), newSIT(512), newHT(512)}
	for _, tr := range trees {
		tr := tr
		f := func(raw uint16, c [arch.BlockSize]byte) bool {
			idx := int(raw) % tr.CounterBlockCapacity()
			tr.WritebackCounterBlock(cb(idx), c)
			return tr.VerifyCounterBlock(cb(idx), c)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
	}
}

func TestOutOfRangeCounterBlockPanics(t *testing.T) {
	tr := newSCT(32)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range counter block")
		}
	}()
	tr.LeafRef(cb(32))
}

func TestTreeInterfaceAccessorsAllKinds(t *testing.T) {
	trees := []Tree{
		newSCT(32 * 16 * 16),
		newSIT(512),
		newHT(512),
		NewPartitioned(VTreeConfig{
			Name: "SCT", Arities: []int{32, 16}, MinorBits: 7, CounterBlocks: 2 * 32 * 16,
		}, 2, hasher()),
	}
	for _, tr := range trees {
		if tr.Name() == "" {
			t.Fatal("empty tree name")
		}
		if tr.StoredLevels() < 2 || tr.Arity(0) < 2 {
			t.Fatalf("%s: degenerate geometry", tr.Name())
		}
		if tr.CounterBlockCapacity() <= 0 {
			t.Fatalf("%s: no capacity", tr.Name())
		}
		if tr.CoverageCounterBlocks(0) != tr.Arity(0) {
			t.Fatalf("%s: leaf coverage != arity", tr.Name())
		}
		// Leaf/parent/path/block addressing agree for an arbitrary block.
		probe := cb(tr.CounterBlockCapacity() / 2)
		leaf := tr.LeafRef(probe)
		if tr.Path(probe)[0] != leaf {
			t.Fatalf("%s: path head != leaf", tr.Name())
		}
		nb := tr.NodeBlockID(leaf)
		if got, ok := tr.RefOfBlock(nb); !ok || got != leaf {
			t.Fatalf("%s: block addressing broken", tr.Name())
		}
		if _, ok := tr.RefOfBlock(arch.BlockID(1)); ok {
			t.Fatalf("%s: data block resolved as node", tr.Name())
		}
		parent, ok := tr.Parent(leaf)
		if !ok || parent.Level != 1 {
			t.Fatalf("%s: leaf parent wrong: %v %v", tr.Name(), parent, ok)
		}
		if leaf.String() == "" {
			t.Fatal("empty ref string")
		}
	}
}

func TestHTCorruptCounterHashDetected(t *testing.T) {
	tr := newHT(512)
	var contents [arch.BlockSize]byte
	contents[0] = 9
	tr.WritebackCounterBlock(cb(7), contents)
	if !tr.VerifyCounterBlock(cb(7), contents) {
		t.Fatal("honest verify failed")
	}
	tr.CorruptCounterHash(cb(7))
	if tr.VerifyCounterBlock(cb(7), contents) {
		t.Fatal("corrupted leaf hash accepted")
	}
}

func TestHTRootVerification(t *testing.T) {
	tr := newHT(512)
	top := NodeRef{Level: 2, Index: 0}
	// Fresh top node verifies against the constant init hash.
	if !tr.VerifyNode(top) {
		t.Fatal("initial top node rejected")
	}
	// After a writeback the root updates; verification still passes...
	tr.WritebackNode(NodeRef{Level: 1, Index: 0})
	tr.WritebackNode(top)
	if !tr.VerifyNode(top) {
		t.Fatal("top node rejected after writeback")
	}
	// ...until the node contents are tampered.
	tr.CorruptNode(top)
	if tr.VerifyNode(top) {
		t.Fatal("tampered top node accepted")
	}
}

func TestPartitionedInterfaceThroughControllerPath(t *testing.T) {
	// Partitioned writeback/verify round trip for a node (the secmem
	// integration path).
	p := NewPartitioned(VTreeConfig{
		Name: "SCT", Arities: []int{32, 16}, MinorBits: 7, CounterBlocks: 2 * 32 * 16,
	}, 2, hasher())
	ref := p.LeafRef(cb(40)) // domain 0
	if up := p.WritebackNode(ref); up != nil {
		t.Fatal("unexpected overflow")
	}
	if !p.VerifyNode(ref) {
		t.Fatal("node stale after writeback")
	}
	// Second-domain node addressing is disjoint and consistent.
	ref2 := p.LeafRef(cb(512 + 40))
	if p.NodeBlockID(ref2) == p.NodeBlockID(ref) {
		t.Fatal("cross-domain node collision")
	}
}
