package itree

import (
	"encoding/binary"

	"metaleak/internal/arch"
)

// HTreeConfig parameterizes the hash tree (8-ary Bonsai Merkle tree over
// encryption counter blocks, the HT configuration of Table I).
type HTreeConfig struct {
	Arities       []int // Table I: six levels of arity 8
	CounterBlocks int
	// InitCounterBlock is the initial (pre-first-write) serialization of a
	// counter block; all schemes in this repository zero-initialize, so
	// the zero value is correct.
	InitCounterBlock [arch.BlockSize]byte
}

// hnode is one hash-tree node block: one hash per child. Nodes materialize
// fully initialized (the tree is conceptually built over the zeroed secure
// region at setup time), so verification never mutates state — the
// property that keeps parent hashes consistent with child contents.
type hnode struct {
	hashes []uint64
}

// HTree is the hash-based integrity tree. It implements Tree. Hash trees
// have no counters, hence no overflow: WritebackNode/WritebackCounterBlock
// always return nil Updates — the absence MetaLeak-C exploits in SCT is
// structural here, which the ablation benchmarks demonstrate.
type HTree struct {
	cfg   HTreeConfig
	geo   geometry
	h     Hasher
	nodes []map[int]*hnode
	root  map[int]uint64 // on-chip hashes of the top stored level
	// initHash[l] is the hash every level-l entry starts with: the hash of
	// a fully-initialized child (counter block for l == 0, child node
	// block otherwise). Constant per level because the whole region
	// zero-initializes.
	initHash []uint64
	// hashBuf and cbBuf are scratch buffers for node serialization and
	// counter-block hashing: a stack buffer passed to the Hasher interface
	// escapes, costing an allocation per hash. Single-threaded by design.
	hashBuf []byte
	cbBuf   [arch.BlockSize]byte
}

// NewHTree builds a hash tree.
func NewHTree(cfg HTreeConfig, h Hasher) *HTree {
	t := &HTree{
		cfg:  cfg,
		geo:  newGeometry(cfg.CounterBlocks, cfg.Arities),
		h:    h,
		root: make(map[int]uint64),
	}
	t.nodes = make([]map[int]*hnode, len(cfg.Arities))
	for i := range t.nodes {
		t.nodes[i] = make(map[int]*hnode)
	}
	t.initHash = make([]uint64, len(cfg.Arities)+1)
	t.initHash[0] = h.HashBytes(cfg.InitCounterBlock[:])
	for l := 0; l < len(cfg.Arities); l++ {
		n := &hnode{hashes: make([]uint64, cfg.Arities[l])}
		for i := range n.hashes {
			n.hashes[i] = t.initHash[l]
		}
		t.initHash[l+1] = h.HashBytes(n.bytes())
	}
	return t
}

// Name implements Tree.
func (t *HTree) Name() string { return "HT" }

// StoredLevels implements Tree.
func (t *HTree) StoredLevels() int { return len(t.cfg.Arities) }

// Arity implements Tree.
func (t *HTree) Arity(level int) int { return t.cfg.Arities[level] }

// CounterBlockCapacity implements Tree.
func (t *HTree) CounterBlockCapacity() int { return t.cfg.CounterBlocks }

// LeafRef implements Tree.
func (t *HTree) LeafRef(cb arch.BlockID) NodeRef { return t.geo.leafRef(cb) }

// Parent implements Tree.
func (t *HTree) Parent(ref NodeRef) (NodeRef, bool) { return t.geo.parent(ref) }

// NodeBlockID implements Tree.
func (t *HTree) NodeBlockID(ref NodeRef) arch.BlockID { return t.geo.nodeBlockID(ref) }

// RefOfBlock implements Tree.
func (t *HTree) RefOfBlock(b arch.BlockID) (NodeRef, bool) { return t.geo.refOfBlock(b) }

// Path implements Tree.
func (t *HTree) Path(cb arch.BlockID) []NodeRef { return t.geo.path(cb) }

// CoverageCounterBlocks implements Tree.
func (t *HTree) CoverageCounterBlocks(level int) int { return t.geo.coverage(level) }

func (t *HTree) node(ref NodeRef) *hnode {
	n := t.nodes[ref.Level][ref.Index]
	if n == nil {
		a := t.cfg.Arities[ref.Level]
		n = &hnode{hashes: make([]uint64, a)}
		for i := range n.hashes {
			n.hashes[i] = t.initHash[ref.Level]
		}
		t.nodes[ref.Level][ref.Index] = n
	}
	return n
}

// bytes serializes a node block for hashing by its parent.
func (n *hnode) bytes() []byte {
	buf := make([]byte, 8*len(n.hashes))
	for i, h := range n.hashes {
		binary.LittleEndian.PutUint64(buf[8*i:], h)
	}
	return buf
}

// hashOfNode computes the hash of a node block's contents, serializing
// into the tree's scratch buffer.
func (t *HTree) hashOfNode(ref NodeRef) uint64 {
	n := t.node(ref)
	need := 8 * len(n.hashes)
	if cap(t.hashBuf) < need {
		t.hashBuf = make([]byte, need)
	}
	buf := t.hashBuf[:need]
	for i, h := range n.hashes {
		binary.LittleEndian.PutUint64(buf[8*i:], h)
	}
	return t.h.HashBytes(buf)
}

// hashCounterContents hashes a counter block's raw contents via the
// scratch buffer (a 64-byte copy instead of a 64-byte heap escape).
func (t *HTree) hashCounterContents(contents [arch.BlockSize]byte) uint64 {
	t.cbBuf = contents
	return t.h.HashBytes(t.cbBuf[:])
}

// VerifyCounterBlock implements Tree: the leaf hash must match
// H(contents). Verification never mutates tree state.
func (t *HTree) VerifyCounterBlock(cb arch.BlockID, contents [arch.BlockSize]byte) bool {
	leaf := t.node(t.LeafRef(cb))
	slot := t.geo.cbIndex(cb) % t.cfg.Arities[0]
	return leaf.hashes[slot] == t.hashCounterContents(contents)
}

// VerifyNode implements Tree: a node block is checked against the hash its
// parent (or the on-chip root) holds for it.
func (t *HTree) VerifyNode(ref NodeRef) bool {
	want := t.hashOfNode(ref)
	p, ok := t.geo.parent(ref)
	if !ok {
		if got, present := t.root[ref.Index]; present {
			return got == want
		}
		return t.initHash[len(t.cfg.Arities)] == want
	}
	pn := t.node(p)
	slot := ref.Index % t.cfg.Arities[p.Level]
	return pn.hashes[slot] == want
}

// WritebackCounterBlock implements Tree: refresh the leaf hash. Hash trees
// never overflow, so the Update is always nil.
func (t *HTree) WritebackCounterBlock(cb arch.BlockID, contents [arch.BlockSize]byte) *Update {
	leaf := t.node(t.LeafRef(cb))
	slot := t.geo.cbIndex(cb) % t.cfg.Arities[0]
	leaf.hashes[slot] = t.hashCounterContents(contents)
	return nil
}

// WritebackNode implements Tree: refresh the parent's (or root's) hash of
// this node.
func (t *HTree) WritebackNode(ref NodeRef) *Update {
	want := t.hashOfNode(ref)
	p, ok := t.geo.parent(ref)
	if !ok {
		t.root[ref.Index] = want
		return nil
	}
	pn := t.node(p)
	slot := ref.Index % t.cfg.Arities[p.Level]
	pn.hashes[slot] = want
	return nil
}

// CorruptNode flips one hash entry in a node (tamper injection for tests).
func (t *HTree) CorruptNode(ref NodeRef) {
	t.node(ref).hashes[0] ^= 0xdeadbeef
}

// CorruptCounterHash flips the leaf hash covering the counter block
// (tamper injection for tests).
func (t *HTree) CorruptCounterHash(cb arch.BlockID) {
	leaf := t.node(t.LeafRef(cb))
	slot := t.geo.cbIndex(cb) % t.cfg.Arities[0]
	leaf.hashes[slot] ^= 0xdeadbeef
}
