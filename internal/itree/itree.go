// Package itree implements the integrity verification trees of §IV-C of
// the paper: the hash tree (HT, an 8-ary Bonsai Merkle tree per Rogers et
// al.), the split-counter tree (SCT, per VAULT/Synergy), and the SGX
// integrity tree (SIT, 8-ary with 56-bit monolithic counters per Gueron).
//
// All trees are built over encryption counter blocks (the Bonsai
// organization), are maintained lazily — a node is updated only when its
// dirty child leaves the metadata cache — and keep their root on-chip.
// Hashes are real (computed by the crypto engine), so tampering with
// counter state or node state is genuinely detected; tests rely on this.
//
// Tree node blocks live in the arch.TreeBase region and are cacheable in
// the metadata cache exactly like counter blocks; which node blocks are
// on-chip is the controller's business (package secmem) — this package
// owns the authoritative node state and the verification/update rules
// (Algorithm 2 and the overflow handling of §IV-C).
package itree

import (
	"fmt"

	"metaleak/internal/arch"
)

// NodeRef names one tree node block by stored level (0 = leaf level) and
// index within that level.
type NodeRef struct {
	Level int
	Index int
}

// String renders the reference as e.g. "L1[42]".
func (r NodeRef) String() string { return fmt.Sprintf("L%d[%d]", r.Level, r.Index) }

// Update reports the side effects of a lazy tree update. A nil *Update or
// one with Overflow == false means the common fast path.
type Update struct {
	// Overflow is true when a tree minor counter overflowed.
	Overflow bool
	// OverflowRef is the node whose minor overflowed.
	OverflowRef NodeRef
	// Rehashed lists the metadata blocks (node blocks and counter blocks)
	// whose hashes had to be recomputed because of the overflow — the cost
	// driver of §V's write-latency bands.
	Rehashed []arch.BlockID
}

// Tree is the interface the secure memory controller programs against.
type Tree interface {
	// Name returns "HT", "SCT" or "SIT".
	Name() string
	// StoredLevels returns the number of levels kept in memory (the root
	// above them is on-chip).
	StoredLevels() int
	// Arity returns the fan-in of nodes at the given stored level.
	Arity(level int) int
	// CounterBlockCapacity returns how many counter blocks the tree covers.
	CounterBlockCapacity() int
	// LeafRef returns the leaf (L0) node covering a counter block.
	LeafRef(cb arch.BlockID) NodeRef
	// Parent returns the parent node of ref, or ok=false when the parent is
	// the on-chip root.
	Parent(ref NodeRef) (parent NodeRef, ok bool)
	// NodeBlockID returns the memory block holding the node.
	NodeBlockID(ref NodeRef) arch.BlockID
	// RefOfBlock inverts NodeBlockID; ok=false if b is not a node block of
	// this tree.
	RefOfBlock(b arch.BlockID) (NodeRef, bool)
	// Path returns the node references from the leaf covering cb up to the
	// top stored level, bottom-up (the Algorithm 2 walk order). The path of
	// a counter block is static, so implementations memoize and return a
	// shared slice: callers must not mutate it.
	Path(cb arch.BlockID) []NodeRef
	// CoverageCounterBlocks returns how many counter blocks one node at the
	// level covers (the spatial coverage of Fig. 12).
	CoverageCounterBlocks(level int) int

	// VerifyCounterBlock checks a counter block's contents (as loaded from
	// memory) against the tree. False means tampering was detected.
	VerifyCounterBlock(cb arch.BlockID, contents [arch.BlockSize]byte) bool
	// VerifyNode checks a node block (as loaded from memory) against its
	// parent. False means tampering was detected.
	VerifyNode(ref NodeRef) bool
	// WritebackCounterBlock performs the lazy update for a dirty counter
	// block leaving the metadata cache.
	WritebackCounterBlock(cb arch.BlockID, contents [arch.BlockSize]byte) *Update
	// WritebackNode performs the lazy update for a dirty node block leaving
	// the metadata cache.
	WritebackNode(ref NodeRef) *Update

	// CorruptNode flips stored node state (tamper injection: physical
	// spoofing of a node block in memory). The node's hash is established
	// first if it never was, so a later VerifyNode compares corrupted
	// state against honest history instead of lazily adopting the
	// corruption as truth.
	CorruptNode(ref NodeRef)
	// CorruptCounterHash flips the stored hash binding a counter block to
	// the tree (tamper injection), with the same establish-first rule.
	CorruptCounterHash(cb arch.BlockID)
}

// Hasher is the slice of the crypto engine the trees need.
type Hasher interface {
	HashBytes([]byte) uint64
}

// geometry holds the level layout shared by all tree kinds. cbOff and
// nodeOff shift the covered counter-block range and the node-block region
// respectively, so several trees (the per-domain forest of the §IX-C
// mitigation) can coexist without overlapping.
type geometry struct {
	arities []int
	counts  []int // node-block count per stored level
	bases   []int // cumulative node-block offset of each level
	nCB     int
	cbOff   int
	nodeOff int
	// pathCache memoizes path() per counter block: the walk is pure
	// address arithmetic, so the controller's per-miss tree walk need not
	// re-derive (and re-allocate) it. Callers treat paths as read-only.
	pathCache map[arch.BlockID][]NodeRef
}

func newGeometry(nCB int, arities []int) geometry {
	if nCB <= 0 || len(arities) == 0 {
		panic("itree: empty geometry")
	}
	g := geometry{arities: arities, nCB: nCB, pathCache: make(map[arch.BlockID][]NodeRef)}
	g.counts = make([]int, len(arities))
	g.bases = make([]int, len(arities))
	prev := nCB
	off := 0
	for l, a := range arities {
		if a < 2 {
			panic("itree: arity must be >= 2")
		}
		g.counts[l] = (prev + a - 1) / a
		g.bases[l] = off
		off += g.counts[l]
		prev = g.counts[l]
	}
	return g
}

func (g *geometry) treeBase() arch.BlockID { return arch.TreeBase.Block() }

func (g *geometry) cbIndex(cb arch.BlockID) int {
	idx := int(cb-arch.CounterBase.Block()) - g.cbOff
	if idx < 0 || idx >= g.nCB {
		panic(fmt.Sprintf("itree: counter block %#x outside covered region", uint64(cb)))
	}
	return idx
}

func (g *geometry) leafRef(cb arch.BlockID) NodeRef {
	return NodeRef{Level: 0, Index: g.cbIndex(cb) / g.arities[0]}
}

func (g *geometry) parent(ref NodeRef) (NodeRef, bool) {
	if ref.Level+1 >= len(g.arities) {
		return NodeRef{}, false
	}
	return NodeRef{Level: ref.Level + 1, Index: ref.Index / g.arities[ref.Level+1]}, true
}

func (g *geometry) nodeBlockID(ref NodeRef) arch.BlockID {
	return g.treeBase() + arch.BlockID(g.nodeOff+g.bases[ref.Level]+ref.Index)
}

func (g *geometry) refOfBlock(b arch.BlockID) (NodeRef, bool) {
	if !b.IsTree() {
		return NodeRef{}, false
	}
	off := int(b-g.treeBase()) - g.nodeOff
	if off < 0 {
		return NodeRef{}, false
	}
	for l := len(g.counts) - 1; l >= 0; l-- {
		if off >= g.bases[l] {
			idx := off - g.bases[l]
			if idx >= g.counts[l] {
				return NodeRef{}, false
			}
			return NodeRef{Level: l, Index: idx}, true
		}
	}
	return NodeRef{}, false
}

func (g *geometry) path(cb arch.BlockID) []NodeRef {
	if p, ok := g.pathCache[cb]; ok {
		return p
	}
	out := make([]NodeRef, 0, len(g.arities))
	ref := g.leafRef(cb)
	out = append(out, ref)
	for {
		p, ok := g.parent(ref)
		if !ok {
			g.pathCache[cb] = out
			return out
		}
		out = append(out, p)
		ref = p
	}
}

func (g *geometry) coverage(level int) int {
	c := 1
	for l := 0; l <= level && l < len(g.arities); l++ {
		c *= g.arities[l]
	}
	return c
}
