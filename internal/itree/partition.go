package itree

import (
	"fmt"

	"metaleak/internal/arch"
)

// Partitioned is the §IX-C mitigation: instead of one logically global
// integrity tree, the secure region is divided into per-domain slices,
// each covered by its own tree with its own on-chip root. Mutually
// distrusting domains share no non-root tree node at any level, which
// removes the implicit metadata sharing MetaLeak-T exploits and the
// shared version counters MetaLeak-C modulates.
//
// The partitioning here is static ("isolation techniques that support
// only a limited number of security domains with fixed tree sizes", as
// the paper puts it) — it demonstrates the security property while
// exhibiting exactly the costs the paper warns about: memory stranding
// (a domain cannot grow into another's slice) and extra on-chip roots.
//
// Node references are globalized: a node at stored level l with
// domain-local index i in domain d has Index = d*levelCount(l) + i, so
// the controller can treat the forest as one Tree.
type Partitioned struct {
	domains []*VTree
	// per-domain geometry (identical across domains).
	counts  []int
	sliceCB int
	nCB     int
	// pathCache memoizes the globalized Path per counter block (the
	// per-domain paths are already memoized; this avoids re-globalizing).
	pathCache map[arch.BlockID][]NodeRef
}

// NewPartitioned builds a forest of `domains` identical trees, each
// covering an equal slice of the counter-block space. base.CounterBlocks
// is the TOTAL coverage and must divide evenly.
func NewPartitioned(base VTreeConfig, domains int, h Hasher) *Partitioned {
	if domains < 1 {
		panic("itree: need at least one domain")
	}
	if base.CounterBlocks%domains != 0 {
		panic(fmt.Sprintf("itree: %d counter blocks not divisible by %d domains",
			base.CounterBlocks, domains))
	}
	slice := base.CounterBlocks / domains
	p := &Partitioned{
		sliceCB:   slice,
		nCB:       base.CounterBlocks,
		pathCache: make(map[arch.BlockID][]NodeRef),
	}
	// Per-domain node-block footprint, to lay domains out contiguously in
	// the tree region.
	geo := newGeometry(slice, base.Arities)
	footprint := 0
	for _, c := range geo.counts {
		footprint += c
	}
	p.counts = geo.counts
	for d := 0; d < domains; d++ {
		cfg := base
		cfg.Name = fmt.Sprintf("%s/dom%d", base.Name, d)
		cfg.CounterBlocks = slice
		cfg.CounterBlockOffset = d * slice
		cfg.NodeBlockOffset = d * footprint
		p.domains = append(p.domains, NewVTree(cfg, h))
	}
	return p
}

// Domains returns the number of isolated domains.
func (p *Partitioned) Domains() int { return len(p.domains) }

// DomainOfCounterBlock returns the domain covering a counter block.
func (p *Partitioned) DomainOfCounterBlock(cb arch.BlockID) int {
	idx := int(cb - arch.CounterBase.Block())
	if idx < 0 || idx >= p.nCB {
		panic(fmt.Sprintf("itree: counter block %#x outside covered region", uint64(cb)))
	}
	return idx / p.sliceCB
}

// globalize converts a domain-local reference to forest scope.
func (p *Partitioned) globalize(d int, ref NodeRef) NodeRef {
	return NodeRef{Level: ref.Level, Index: d*p.counts[ref.Level] + ref.Index}
}

// localize inverts globalize.
func (p *Partitioned) localize(ref NodeRef) (int, NodeRef) {
	n := p.counts[ref.Level]
	return ref.Index / n, NodeRef{Level: ref.Level, Index: ref.Index % n}
}

// Name implements Tree.
func (p *Partitioned) Name() string { return p.domains[0].Name() + "-ISO" }

// StoredLevels implements Tree.
func (p *Partitioned) StoredLevels() int { return p.domains[0].StoredLevels() }

// Arity implements Tree.
func (p *Partitioned) Arity(level int) int { return p.domains[0].Arity(level) }

// CounterBlockCapacity implements Tree.
func (p *Partitioned) CounterBlockCapacity() int { return p.nCB }

// CoverageCounterBlocks implements Tree.
func (p *Partitioned) CoverageCounterBlocks(level int) int {
	return p.domains[0].CoverageCounterBlocks(level)
}

// LeafRef implements Tree.
func (p *Partitioned) LeafRef(cb arch.BlockID) NodeRef {
	d := p.DomainOfCounterBlock(cb)
	return p.globalize(d, p.domains[d].LeafRef(cb))
}

// Parent implements Tree.
func (p *Partitioned) Parent(ref NodeRef) (NodeRef, bool) {
	d, local := p.localize(ref)
	parent, ok := p.domains[d].Parent(local)
	if !ok {
		return NodeRef{}, false
	}
	return p.globalize(d, parent), true
}

// NodeBlockID implements Tree.
func (p *Partitioned) NodeBlockID(ref NodeRef) arch.BlockID {
	d, local := p.localize(ref)
	return p.domains[d].NodeBlockID(local)
}

// RefOfBlock implements Tree.
func (p *Partitioned) RefOfBlock(b arch.BlockID) (NodeRef, bool) {
	for d, t := range p.domains {
		if ref, ok := t.RefOfBlock(b); ok {
			return p.globalize(d, ref), true
		}
	}
	return NodeRef{}, false
}

// Path implements Tree.
func (p *Partitioned) Path(cb arch.BlockID) []NodeRef {
	if out, ok := p.pathCache[cb]; ok {
		return out
	}
	d := p.DomainOfCounterBlock(cb)
	local := p.domains[d].Path(cb)
	out := make([]NodeRef, len(local))
	for i, ref := range local {
		out[i] = p.globalize(d, ref)
	}
	p.pathCache[cb] = out
	return out
}

// VerifyCounterBlock implements Tree.
func (p *Partitioned) VerifyCounterBlock(cb arch.BlockID, contents [arch.BlockSize]byte) bool {
	return p.domains[p.DomainOfCounterBlock(cb)].VerifyCounterBlock(cb, contents)
}

// VerifyNode implements Tree.
func (p *Partitioned) VerifyNode(ref NodeRef) bool {
	d, local := p.localize(ref)
	return p.domains[d].VerifyNode(local)
}

// WritebackCounterBlock implements Tree.
func (p *Partitioned) WritebackCounterBlock(cb arch.BlockID, contents [arch.BlockSize]byte) *Update {
	d := p.DomainOfCounterBlock(cb)
	return p.globalizeUpdate(d, p.domains[d].WritebackCounterBlock(cb, contents))
}

// WritebackNode implements Tree.
func (p *Partitioned) WritebackNode(ref NodeRef) *Update {
	d, local := p.localize(ref)
	return p.globalizeUpdate(d, p.domains[d].WritebackNode(local))
}

func (p *Partitioned) globalizeUpdate(d int, up *Update) *Update {
	if up == nil {
		return nil
	}
	up.OverflowRef = p.globalize(d, up.OverflowRef)
	// Rehashed holds block IDs, which are already globally unique.
	return up
}

// CorruptNode implements Tree: the corruption lands in the owning domain.
func (p *Partitioned) CorruptNode(ref NodeRef) {
	d, local := p.localize(ref)
	p.domains[d].CorruptNode(local)
}

// CorruptCounterHash implements Tree.
func (p *Partitioned) CorruptCounterHash(cb arch.BlockID) {
	p.domains[p.DomainOfCounterBlock(cb)].CorruptCounterHash(cb)
}

// RootCount returns the total number of on-chip root entries the forest
// needs — the hardware cost of isolation the paper's §IX-C flags.
func (p *Partitioned) RootCount() int {
	top := len(p.counts) - 1
	return len(p.domains) * p.counts[top]
}
