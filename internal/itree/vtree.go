package itree

import (
	"encoding/binary"

	"metaleak/internal/arch"
)

// VTreeConfig parameterizes a version-counter tree. It covers both the
// split-counter tree (SCT: small minors that overflow, per-node major) and
// the SGX integrity tree (SIT: wide monolithic counters that never
// overflow in practice).
type VTreeConfig struct {
	Name      string // "SCT" or "SIT"
	Arities   []int  // fan-in per stored level, leaf first (SCT: 32,16,...; SIT: 8,8,8)
	MinorBits uint   // per-child version counter width (SCT: 7; SIT: 56)
	// CounterBlocks is the number of encryption counter blocks covered.
	CounterBlocks int
	// CounterBlockOffset shifts the covered counter-block range and
	// NodeBlockOffset shifts the node-block region — used by the
	// per-domain forest (Partitioned) to keep domains disjoint.
	CounterBlockOffset int
	NodeBlockOffset    int
}

// vnode is the authoritative state of one tree node block: a shared major
// counter, one version ("minor") counter per child, and the embedded hash
// that binds them to the parent's version counter for this node.
type vnode struct {
	major   uint64
	minors  []uint64
	hash    uint64
	hashSet bool
}

// VTree is a version-counter integrity tree. It implements Tree.
type VTree struct {
	cfg   VTreeConfig
	geo   geometry
	h     Hasher
	nodes []map[int]*vnode // per level, sparse
	// ctrHash holds the per-counter-block hash binding counter contents to
	// the L0 version counter (the embedded per-block hash of Fig. 4b).
	ctrHash map[arch.BlockID]uint64
	// root holds the on-chip version counters for the top stored level.
	root map[int]uint64
	// hashBuf and cbBuf are scratch buffers for hashNode/hashCounterBlock.
	// Passing a local buffer to the Hasher interface forces it to escape,
	// so a fresh allocation per hash; the tree is single-threaded like the
	// rest of the simulator, so one reusable buffer each suffices.
	hashBuf []byte
	cbBuf   [8 + arch.BlockSize]byte
}

// NewVTree builds a version-counter tree.
func NewVTree(cfg VTreeConfig, h Hasher) *VTree {
	if cfg.MinorBits == 0 || cfg.MinorBits > 63 {
		panic("itree: VTree MinorBits must be in [1,63]")
	}
	geo := newGeometry(cfg.CounterBlocks, cfg.Arities)
	geo.cbOff = cfg.CounterBlockOffset
	geo.nodeOff = cfg.NodeBlockOffset
	t := &VTree{
		cfg:     cfg,
		geo:     geo,
		h:       h,
		ctrHash: make(map[arch.BlockID]uint64),
		root:    make(map[int]uint64),
	}
	t.nodes = make([]map[int]*vnode, len(cfg.Arities))
	for i := range t.nodes {
		t.nodes[i] = make(map[int]*vnode)
	}
	return t
}

// Name implements Tree.
func (t *VTree) Name() string { return t.cfg.Name }

// StoredLevels implements Tree.
func (t *VTree) StoredLevels() int { return len(t.cfg.Arities) }

// Arity implements Tree.
func (t *VTree) Arity(level int) int { return t.cfg.Arities[level] }

// CounterBlockCapacity implements Tree.
func (t *VTree) CounterBlockCapacity() int { return t.cfg.CounterBlocks }

// LeafRef implements Tree.
func (t *VTree) LeafRef(cb arch.BlockID) NodeRef { return t.geo.leafRef(cb) }

// Parent implements Tree.
func (t *VTree) Parent(ref NodeRef) (NodeRef, bool) { return t.geo.parent(ref) }

// NodeBlockID implements Tree.
func (t *VTree) NodeBlockID(ref NodeRef) arch.BlockID { return t.geo.nodeBlockID(ref) }

// RefOfBlock implements Tree.
func (t *VTree) RefOfBlock(b arch.BlockID) (NodeRef, bool) { return t.geo.refOfBlock(b) }

// Path implements Tree.
func (t *VTree) Path(cb arch.BlockID) []NodeRef { return t.geo.path(cb) }

// CoverageCounterBlocks implements Tree.
func (t *VTree) CoverageCounterBlocks(level int) int { return t.geo.coverage(level) }

// MinorMax returns the saturation value of a tree minor counter.
func (t *VTree) MinorMax() uint64 { return 1<<t.cfg.MinorBits - 1 }

func (t *VTree) node(ref NodeRef) *vnode {
	n := t.nodes[ref.Level][ref.Index]
	if n == nil {
		n = &vnode{minors: make([]uint64, t.cfg.Arities[ref.Level])}
		t.nodes[ref.Level][ref.Index] = n
	}
	return n
}

// childSlot returns the minor-counter slot inside ref's parent (or the
// on-chip root) that versions ref, along with the parent node (nil when the
// parent is the root).
func (t *VTree) childSlot(ref NodeRef) (parent *vnode, slot int, isRoot bool) {
	p, ok := t.geo.parent(ref)
	if !ok {
		return nil, ref.Index, true
	}
	return t.node(p), ref.Index % t.cfg.Arities[p.Level], false
}

// parentMinor reads the version counter that the parent currently holds
// for ref.
func (t *VTree) parentMinor(ref NodeRef) uint64 {
	parent, slot, isRoot := t.childSlot(ref)
	if isRoot {
		return t.root[slot]
	}
	return parent.minors[slot]
}

// MinorValue exposes the version counter a node holds for its child slot —
// the state MetaLeak-C presets and overflows. Attack and test use.
func (t *VTree) MinorValue(ref NodeRef, slot int) uint64 {
	return t.node(ref).minors[slot]
}

// hashNode computes the embedded hash of a node: H(parent minor ‖ major ‖
// minors), per the SCT construction in §IV-C.
func (t *VTree) hashNode(ref NodeRef, n *vnode) uint64 {
	need := 16 + 8*len(n.minors)
	if cap(t.hashBuf) < need {
		t.hashBuf = make([]byte, need)
	}
	buf := t.hashBuf[:need]
	binary.LittleEndian.PutUint64(buf[0:8], t.parentMinor(ref))
	binary.LittleEndian.PutUint64(buf[8:16], n.major)
	for i, m := range n.minors {
		binary.LittleEndian.PutUint64(buf[16+8*i:], m)
	}
	return t.h.HashBytes(buf)
}

// hashCounterBlock computes the hash binding counter-block contents to its
// L0 version counter.
func (t *VTree) hashCounterBlock(cb arch.BlockID, contents [arch.BlockSize]byte) uint64 {
	leaf := t.LeafRef(cb)
	slot := t.geo.cbIndex(cb) % t.cfg.Arities[0]
	buf := &t.cbBuf
	binary.LittleEndian.PutUint64(buf[0:8], t.node(leaf).minors[slot])
	copy(buf[8:], contents[:])
	return t.h.HashBytes(buf[:])
}

// VerifyCounterBlock implements Tree. The first-ever verification of a
// counter block lazily establishes its hash (the tree-construction-at-init
// equivalence): counters only mutate while cached, so a block can never be
// filled with contents that differ from its last writeback.
func (t *VTree) VerifyCounterBlock(cb arch.BlockID, contents [arch.BlockSize]byte) bool {
	want := t.hashCounterBlock(cb, contents)
	got, ok := t.ctrHash[cb]
	if !ok {
		t.ctrHash[cb] = want
		return true
	}
	return got == want
}

// VerifyNode implements Tree (one step of Algorithm 2).
func (t *VTree) VerifyNode(ref NodeRef) bool {
	n := t.node(ref)
	want := t.hashNode(ref, n)
	if !n.hashSet {
		n.hash = want
		n.hashSet = true
		return true
	}
	return n.hash == want
}

// bumpMinor increments the version counter for ref inside its parent (or
// the root), handling overflow. It returns the overflow fallout, if any.
func (t *VTree) bumpMinor(ref NodeRef) *Update {
	parent, slot, isRoot := t.childSlot(ref)
	if isRoot {
		t.root[slot]++ // on-chip counters are wide; no overflow
		return nil
	}
	if parent.minors[slot] < t.MinorMax() {
		parent.minors[slot]++
		return nil
	}
	// Tree minor overflow (§IV-C): the node's major is incremented, its
	// minors reset, and the whole subtree under it re-hashed.
	p, _ := t.geo.parent(ref)
	up := &Update{Overflow: true, OverflowRef: p}
	t.resetSubtree(p, up)
	parent.minors[slot] = 1 // the triggering child's fresh version
	return up
}

// resetSubtree implements the overflow handling of §IV-C: the node and
// ALL its descendant node blocks have their majors incremented and minors
// reset, and every hash in the subtree must be recomputed — the hardware
// cannot skip any of them, because each child's embedded hash covers its
// parent's (now reset) version counter. The full subtree therefore counts
// as re-hash traffic, which is what makes tree-counter overflow so
// expensive and so observable (Fig. 8).
//
// State updates touch every descendant node; counter-block hash entries
// that were never established are simply left to lazy re-initialization
// (equivalent, since their recomputed value is whatever the next fill
// observes).
func (t *VTree) resetSubtree(ref NodeRef, up *Update) {
	n := t.node(ref)
	n.major++
	for i := range n.minors {
		n.minors[i] = 0
	}
	n.hashSet = false
	up.Rehashed = append(up.Rehashed, t.NodeBlockID(ref))
	if ref.Level == 0 {
		// Every counter block under this leaf node is re-hashed.
		base := ref.Index * t.cfg.Arities[0]
		for i := 0; i < t.cfg.Arities[0]; i++ {
			cbIdx := base + i
			if cbIdx >= t.geo.nCB {
				break
			}
			cb := arch.CounterBase.Block() + arch.BlockID(t.geo.cbOff+cbIdx)
			delete(t.ctrHash, cb)
			up.Rehashed = append(up.Rehashed, cb)
		}
		return
	}
	childLevel := ref.Level - 1
	a := t.cfg.Arities[ref.Level]
	for i := 0; i < a; i++ {
		childIdx := ref.Index*a + i
		if childIdx >= t.geo.counts[childLevel] {
			break
		}
		t.resetSubtree(NodeRef{Level: childLevel, Index: childIdx}, up)
	}
}

// WritebackCounterBlock implements Tree: the lazy update when a dirty
// counter block leaves the metadata cache. The L0 version counter for the
// block advances (possibly overflowing) and the block's hash is refreshed.
func (t *VTree) WritebackCounterBlock(cb arch.BlockID, contents [arch.BlockSize]byte) *Update {
	leaf := t.LeafRef(cb)
	slot := t.geo.cbIndex(cb) % t.cfg.Arities[0]
	n := t.node(leaf)
	var up *Update
	if n.minors[slot] < t.MinorMax() {
		n.minors[slot]++
	} else {
		up = &Update{Overflow: true, OverflowRef: leaf}
		t.resetSubtree(leaf, up)
		n.minors[slot] = 1
	}
	t.ctrHash[cb] = t.hashCounterBlock(cb, contents)
	return up
}

// WritebackNode implements Tree: the lazy update when a dirty node block
// leaves the metadata cache. The parent's version counter for this node
// advances (possibly overflowing) and the node's embedded hash is
// recomputed against the new version.
func (t *VTree) WritebackNode(ref NodeRef) *Update {
	up := t.bumpMinor(ref)
	n := t.node(ref)
	n.hash = t.hashNode(ref, n)
	n.hashSet = true
	return up
}

// CorruptNode flips the stored hash of a node — a tamper injection hook
// for tests (simulating physical replay/spoofing of a node block).
func (t *VTree) CorruptNode(ref NodeRef) {
	n := t.node(ref)
	if !n.hashSet {
		n.hash = t.hashNode(ref, n)
		n.hashSet = true
	}
	n.hash ^= 0xdeadbeef
}

// CorruptCounterHash flips the stored hash of a counter block (tamper
// injection for tests).
func (t *VTree) CorruptCounterHash(cb arch.BlockID) {
	if h, ok := t.ctrHash[cb]; ok {
		t.ctrHash[cb] = h ^ 0xdeadbeef
	} else {
		t.ctrHash[cb] = 0xdeadbeef
	}
}
