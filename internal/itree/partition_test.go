package itree

import (
	"testing"

	"metaleak/internal/arch"
)

func newForest(nCB, domains int) *Partitioned {
	return NewPartitioned(VTreeConfig{
		Name: "SCT", Arities: []int{32, 16, 16}, MinorBits: 7, CounterBlocks: nCB,
	}, domains, hasher())
}

func TestPartitionedGeometryDisjoint(t *testing.T) {
	p := newForest(4*32*16*16, 4)
	if p.Domains() != 4 {
		t.Fatalf("domains = %d", p.Domains())
	}
	// Node blocks of different domains never collide.
	seen := make(map[arch.BlockID]int)
	for d := 0; d < 4; d++ {
		cb := arch.CounterBase.Block() + arch.BlockID(d*p.sliceCB)
		for _, ref := range p.Path(cb) {
			nb := p.NodeBlockID(ref)
			if prev, ok := seen[nb]; ok && prev != d {
				t.Fatalf("node block %#x shared by domains %d and %d", uint64(nb), prev, d)
			}
			seen[nb] = d
		}
	}
}

func TestPartitionedNoSharedNodesAcrossDomains(t *testing.T) {
	// The security property of §IX-C: two counter blocks in different
	// domains share NO tree node at ANY level.
	p := newForest(2*32*16*16, 2)
	cbA := arch.CounterBase.Block() + arch.BlockID(0)
	cbB := arch.CounterBase.Block() + arch.BlockID(p.sliceCB) // other domain
	pathA, pathB := p.Path(cbA), p.Path(cbB)
	inA := make(map[NodeRef]bool)
	for _, r := range pathA {
		inA[r] = true
	}
	for _, r := range pathB {
		if inA[r] {
			t.Fatalf("node %v shared across domains", r)
		}
	}
	// Whereas within one domain, the top node IS shared.
	cbA2 := cbA + 1
	if p.Path(cbA2)[len(pathA)-1] != pathA[len(pathA)-1] {
		t.Fatal("same-domain blocks no longer share their top node")
	}
}

func TestPartitionedRefRoundTrip(t *testing.T) {
	p := newForest(4*32*16*16, 4)
	for d := 0; d < 4; d++ {
		cb := arch.CounterBase.Block() + arch.BlockID(d*p.sliceCB+7)
		for _, ref := range p.Path(cb) {
			nb := p.NodeBlockID(ref)
			got, ok := p.RefOfBlock(nb)
			if !ok || got != ref {
				t.Fatalf("round trip %v -> %#x -> %v (%v)", ref, uint64(nb), got, ok)
			}
		}
	}
}

func TestPartitionedVerifyAndWriteback(t *testing.T) {
	p := newForest(2*32*16, 2)
	var c1, c2 [arch.BlockSize]byte
	c1[0], c2[0] = 1, 2
	cbA := arch.CounterBase.Block() + arch.BlockID(3)
	cbB := arch.CounterBase.Block() + arch.BlockID(p.sliceCB+3)
	p.WritebackCounterBlock(cbA, c1)
	p.WritebackCounterBlock(cbB, c2)
	if !p.VerifyCounterBlock(cbA, c1) || !p.VerifyCounterBlock(cbB, c2) {
		t.Fatal("honest verification failed")
	}
	// Replay detection still works per domain.
	p.WritebackCounterBlock(cbA, c2)
	if p.VerifyCounterBlock(cbA, c1) {
		t.Fatal("replay accepted in partitioned tree")
	}
}

func TestPartitionedOverflowStaysInDomain(t *testing.T) {
	p := newForest(2*32*16, 2)
	var contents [arch.BlockSize]byte
	cbA := arch.CounterBase.Block() + arch.BlockID(0)
	var up *Update
	for i := uint64(0); i <= p.domains[0].MinorMax(); i++ {
		up = p.WritebackCounterBlock(cbA, contents)
	}
	if up == nil || !up.Overflow {
		t.Fatal("no overflow")
	}
	// Every re-hashed block must belong to domain 0's slice.
	for _, b := range up.Rehashed {
		if b.IsCounter() {
			if p.DomainOfCounterBlock(b) != 0 {
				t.Fatalf("re-hash crossed domains: counter block %#x", uint64(b))
			}
		} else if ref, ok := p.RefOfBlock(b); !ok {
			t.Fatalf("re-hashed unknown block %#x", uint64(b))
		} else if d, _ := p.localize(ref); d != 0 {
			t.Fatalf("re-hash crossed domains: node %v", ref)
		}
	}
}

func TestPartitionedRootCount(t *testing.T) {
	p := newForest(4*32*16*16, 4)
	// Each domain's top stored level has 1 node -> 4 roots total.
	if p.RootCount() != 4 {
		t.Fatalf("root count = %d", p.RootCount())
	}
}

func TestPartitionedBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible domains")
		}
	}()
	newForest(1000, 3)
}
