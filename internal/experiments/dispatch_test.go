package experiments

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/dispatch"
	"metaleak/internal/faults"
)

// renderAll produces every operator-facing rendering of a row set —
// wide CSV, long CSV, and the canonical JSON the checkpoint persists —
// concatenated into one byte string. Two runs are "byte-identical"
// exactly when these bytes match.
func renderAll(t *testing.T, rows []SweepRow) string {
	t.Helper()
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	w.Write(CSVHeader())
	for _, r := range rows {
		w.Write(r.CSVRecord())
	}
	w.Flush()
	buf.WriteString("--long--\n")
	w.Write(LongHeader())
	for _, r := range rows {
		for _, rec := range r.LongRecords() {
			w.Write(rec)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("--json--\n")
	for _, r := range rows {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.String()
}

// TestDispatchByteIdentical is the dispatcher's core property on
// randomized seeded grids: for any worker count, steal schedule, or
// mid-run worker death (with retry budget to absorb it), the
// distributed sweep's CSV, long, and JSON outputs are byte-identical
// to the in-process -par run. Which process ran a cell is pure
// scheduling and must never reach the output.
func TestDispatchByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs twelve sweeps")
	}
	ctx := context.Background()
	minorPool := [][]uint{{7}, {6, 7}, {7, 8}}
	for i := 0; i < 3; i++ {
		rng := rand.New(rand.NewSource(int64(0xD15BA + i)))
		axes := SweepAxes{
			Configs:   []string{"sct"},
			MinorBits: minorPool[rng.Intn(len(minorPool))],
			MetaKB:    []int{64},
			Noise:     []arch.Cycles{0},
			Seeds:     1 + rng.Intn(2),
			Seed:      rng.Uint64(),
			Bits:      8,
			Set:       []string{"SecurePages=16384", "FastCrypto=true"},
		}
		if rng.Intn(2) == 0 {
			axes.Configs = []string{"sct", "sgx"}
		}
		name := fmt.Sprintf("grid%d", i)

		baseline, err := SweepOpts(ctx, axes, SweepOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%s: -par 4 baseline: %v", name, err)
		}
		want := renderAll(t, baseline)

		for _, workers := range []int{1, 4} {
			rows, err := runLocalDispatch(ctx, axes, SweepOptions{}, DispatchOptions{}, workers, nil)
			if err != nil {
				t.Fatalf("%s: %d-worker run: %v", name, workers, err)
			}
			if got := renderAll(t, rows); got != want {
				t.Errorf("%s: %d-worker output differs from -par 4:\n%s", name, workers,
					firstDiff(want, got))
			}
		}

		// One worker dies mid-run holding a random cell; the lease
		// re-issues against the retry budget and the scar is invisible.
		victim := rng.Intn(len(baseline))
		plan, err := faults.Parse(fmt.Sprintf("harness:disconnect@%dx1", victim))
		if err != nil {
			t.Fatal(err)
		}
		rows, err := runLocalDispatch(ctx, axes, SweepOptions{Retries: 1}, DispatchOptions{}, 4, plan.NewHarness())
		if err != nil {
			t.Fatalf("%s: kill-mid-run run: %v", name, err)
		}
		if got := renderAll(t, rows); got != want {
			t.Errorf("%s: output after killing the worker on cell %d differs from -par 4:\n%s",
				name, victim, firstDiff(want, got))
		}
	}
}

// firstDiff locates the first differing line of two renderings, so a
// byte-identity failure reports the divergent row instead of two
// full dumps.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\nwant %q\ngot  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("want %d lines, got %d", len(wl), len(gl))
}

// TestDispatchQuarantinedRowMatchesInProcess: a cell whose every lease
// dies renders exactly like an in-process quarantined cell — joined
// attempt errors, attempt count, quarantine flag — with the fixed
// disconnect message (no worker IDs, no timing).
func TestDispatchQuarantinedRowMatchesInProcess(t *testing.T) {
	ctx := context.Background()
	axes := tinyAxes()
	axes.Set = []string{"FastCrypto=true"}
	plan, err := faults.Parse("harness:disconnect@1x2")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := runLocalDispatch(ctx, axes, SweepOptions{Retries: 1}, DispatchOptions{}, 3, plan.NewHarness())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	q := rows[1]
	wantErr := dispatch.DisconnectErr + "\n" + dispatch.DisconnectErr
	if !q.Quarantined || q.Attempts != 2 || q.Err != wantErr {
		t.Fatalf("quarantined row = %+v\nwant Quarantined, 2 attempts, Err %q", q, wantErr)
	}
	if rec := q.CSVRecord(); rec[len(rec)-1] != "true" || rec[len(rec)-2] != "2" {
		t.Fatalf("quarantine did not reach the CSV rendering: %v", rec)
	}
}

// TestDispatchVersionSkewRefused: a worker whose binary expands a
// different grid than the coordinator's job fingerprint refuses the
// job instead of contributing wrong rows.
func TestDispatchVersionSkewRefused(t *testing.T) {
	axes := tinyAxes()
	spec, err := json.Marshal(SweepJob{Axes: axes, Fingerprint: "not-the-real-fingerprint"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSweepSession(spec); err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("skewed job error = %v, want version-skew refusal", err)
	}
}

// TestChaosDispatchInvariants runs the chaos driver's dispatch leg —
// identity, drop/re-lease recovery, and drop quarantine — under the
// test harness so `go test` covers what `metaleak chaos` gates in CI.
func TestChaosDispatchInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four sweeps")
	}
	if err := ChaosDispatch(context.Background(), 0xC4A05); err != nil {
		t.Fatal(err)
	}
}
