package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metaleak/internal/arch"
)

func sampleRow(idx, rep int) SweepRow {
	return SweepRow{
		SweepCell: SweepCell{
			Index: idx, Config: "sct", MinorBits: 7, MetaKB: 64,
			Noise: 0, Rep: rep, Seed: uint64(1000 + rep),
		},
		CovertAccuracy: 0.4 + float64(rep)/10, MonitorAccuracy: 0.9,
	}
}

// TestCellFingerprintGridIndependent: the content address covers every
// field the measurement depends on and excludes the grid index — the
// property that lets overlapping grids share cells.
func TestCellFingerprintGridIndependent(t *testing.T) {
	a := sampleRow(3, 1).SweepCell
	b := a
	b.Index = 17 // same design point landing elsewhere in a bigger grid
	if CellFingerprint(a, 8, nil) != CellFingerprint(b, 8, nil) {
		t.Error("grid index reached the fingerprint")
	}
	for name, mutate := range map[string]func(*SweepCell){
		"config": func(c *SweepCell) { c.Config = "sgx" },
		"minor":  func(c *SweepCell) { c.MinorBits = 6 },
		"meta":   func(c *SweepCell) { c.MetaKB = 256 },
		"noise":  func(c *SweepCell) { c.Noise = 8000 },
		"rep":    func(c *SweepCell) { c.Rep = 2 },
		"seed":   func(c *SweepCell) { c.Seed = 2 },
	} {
		m := a
		mutate(&m)
		if CellFingerprint(a, 8, nil) == CellFingerprint(m, 8, nil) {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
	if CellFingerprint(a, 8, nil) == CellFingerprint(a, 16, nil) {
		t.Error("bit budget did not change the fingerprint")
	}
	if CellFingerprint(a, 8, nil) == CellFingerprint(a, 8, []string{"FastCrypto=true"}) {
		t.Error("-set overrides did not change the fingerprint")
	}
}

// TestResultCacheRoundTrip: Put/Get through a persisted file, reload
// from disk, index normalization, and the refusal to cache failures.
func TestResultCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	rc, err := OpenResultCache(path)
	if err != nil {
		t.Fatal(err)
	}
	row := sampleRow(3, 1)
	key := CellFingerprint(row.SweepCell, 8, nil)
	rc.Put(key, row)

	bad := sampleRow(9, 2)
	bad.Err = "boom"
	rc.Put(CellFingerprint(bad.SweepCell, 8, nil), bad)
	if rc.Len() != 1 {
		t.Fatalf("cache holds %d rows, want 1 (failed row must not cache)", rc.Len())
	}
	got, ok := rc.Get(key)
	if !ok || got.Index != 0 || got.Rep != 1 || got.CovertAccuracy != row.CovertAccuracy {
		t.Fatalf("Get = (%+v, %v), want the put row with Index normalized to 0", got, ok)
	}
	if err := rc.Err(); err != nil {
		t.Fatal(err)
	}
	rc.Close()

	// Reload from disk: the persisted entry survives; re-putting it must
	// not grow the file.
	before := mustSize(t, path)
	rc2, err := OpenResultCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	if rc2.Len() != 1 || rc2.Discarded() != "" {
		t.Fatalf("reloaded cache: %d rows, discarded %q", rc2.Len(), rc2.Discarded())
	}
	if _, ok := rc2.Get(key); !ok {
		t.Fatal("persisted row missing after reload")
	}
	rc2.Put(key, row)
	if mustSize(t, path) != before {
		t.Error("re-putting a cached key grew the file")
	}
}

// TestResultCacheSalvagesTornLine: a crash mid-append leaves one
// unterminated trailing line; open cuts it off, reports it, and keeps
// every complete entry.
func TestResultCacheSalvagesTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	rc, err := OpenResultCache(path)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := sampleRow(0, 0), sampleRow(1, 1)
	k1 := CellFingerprint(r1.SweepCell, 8, nil)
	rc.Put(k1, r1)
	rc.Put(CellFingerprint(r2.SweepCell, 8, nil), r2)
	rc.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	torn, err := OpenResultCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer torn.Close()
	if torn.Len() != 1 || torn.Discarded() == "" {
		t.Fatalf("salvage kept %d rows, discarded %q; want 1 row + a reported tear", torn.Len(), torn.Discarded())
	}
	if _, ok := torn.Get(k1); !ok {
		t.Error("complete entry lost in the salvage")
	}

	// A wrong-format file is refused outright, never "salvaged".
	bogus := filepath.Join(t.TempDir(), "bogus.jsonl")
	if err := os.WriteFile(bogus, []byte("{\"Format\":\"something-else/v9\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenResultCache(bogus); err == nil || !strings.Contains(err.Error(), cellCacheFormat) {
		t.Errorf("wrong-format open: %v, want a format refusal", err)
	}
}

// TestDispatchCacheServesResubmission: end-to-end through
// SweepDispatch — a populated cache serves an identical grid with zero
// workers attached, and OnRow tells cached from computed rows.
func TestDispatchCacheServesResubmission(t *testing.T) {
	ctx := context.Background()
	axes := SweepAxes{
		Configs:   []string{"sct"},
		MinorBits: []uint{7},
		MetaKB:    []int{64},
		Noise:     []arch.Cycles{0},
		Seeds:     2,
		Seed:      21,
		Bits:      8,
		Set:       []string{"SecurePages=16384", "FastCrypto=true"},
	}
	cache, err := OpenResultCache("")
	if err != nil {
		t.Fatal(err)
	}
	first, err := runLocalDispatch(ctx, axes, SweepOptions{}, DispatchOptions{Cache: cache}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != len(first) {
		t.Fatalf("cache holds %d cells, want %d", cache.Len(), len(first))
	}

	var cached, computed int
	var hits []string
	again, err := runLocalDispatch(ctx, axes, SweepOptions{
		Log: func(format string, args ...any) { hits = append(hits, format) },
	}, DispatchOptions{
		Cache: cache,
		OnRow: func(_ SweepRow, fromCache bool) {
			if fromCache {
				cached++
			} else {
				computed++
			}
		},
	}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cached != len(first) || computed != 0 {
		t.Fatalf("resubmission: %d cached + %d computed, want %d + 0", cached, computed, len(first))
	}
	if err := rowsIdentical(first, again); err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, h := range hits {
		if strings.Contains(h, "served from cache") {
			served++
		}
	}
	if served != len(first) {
		t.Errorf("logged %d cache-served cells, want %d", served, len(first))
	}
}

// TestChaosServeInvariants runs the chaos driver's serve leg — flap
// recovery under supervision, cache-served resubmission, and
// overlapping-grid reuse — so `go test` covers what `metaleak chaos`
// gates in CI.
func TestChaosServeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six sweeps")
	}
	if err := ChaosServe(context.Background(), t.TempDir(), 0xC4A05); err != nil {
		t.Fatal(err)
	}
}

// TestResultCacheEviction: the byte-cap GC evicts oldest-first, keeps
// the footprint under the cap, compacts the file atomically (no .gc
// temp left behind, appends keep working afterwards), trims an
// inherited over-cap file at open, and never evicts the newest entry.
func TestResultCacheEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	unbounded, err := OpenResultCache(path)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 6)
	for i := range keys {
		row := sampleRow(i, i)
		keys[i] = CellFingerprint(row.SweepCell, 8, nil)
		unbounded.Put(keys[i], row)
	}
	if unbounded.Evictions() != 0 {
		t.Fatalf("unbounded cache evicted %d entries", unbounded.Evictions())
	}
	fullBytes := unbounded.Bytes()
	perEntry := (fullBytes - int64(len(`{"Format":"`+cellCacheFormat+`"}`)) - 1) / int64(len(keys))
	unbounded.Close()

	// Reopen with a cap that fits roughly half the entries: the oldest
	// half evicts at open (inherited over-cap file), newest survive.
	cap3 := fullBytes - 3*perEntry
	rc, err := OpenResultCacheCap(path, cap3)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Bytes() > cap3 {
		t.Errorf("footprint %d over the %d cap after open", rc.Bytes(), cap3)
	}
	if rc.Evictions() == 0 || rc.Len() >= len(keys) {
		t.Fatalf("inherited over-cap file not trimmed: %d entries, %d evictions", rc.Len(), rc.Evictions())
	}
	if _, ok := rc.Get(keys[0]); ok {
		t.Error("oldest entry survived the trim")
	}
	if _, ok := rc.Get(keys[len(keys)-1]); !ok {
		t.Error("newest entry evicted")
	}
	if _, err := os.Stat(path + ".gc"); !os.IsNotExist(err) {
		t.Errorf("compaction temp file left behind: %v", err)
	}

	// The compacted file must itself be a well-formed cache holding
	// exactly the survivors.
	survivors := rc.Len()
	reload, err := OpenResultCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if reload.Len() != survivors || reload.Discarded() != "" {
		t.Fatalf("compacted file reloads %d entries (discarded %q), want %d",
			reload.Len(), reload.Discarded(), survivors)
	}
	reload.Close()

	// Appends keep working after a compaction closed and renamed the
	// file out from under the append handle.
	extra := sampleRow(7, 7)
	ek := CellFingerprint(extra.SweepCell, 8, nil)
	rc.Put(ek, extra)
	if err := rc.Err(); err != nil {
		t.Fatal(err)
	}
	if _, ok := rc.Get(ek); !ok {
		t.Fatal("post-compaction put missing")
	}
	if rc.Bytes() > cap3 {
		t.Errorf("footprint %d over the %d cap after post-compaction put", rc.Bytes(), cap3)
	}
	rc.Close()

	// A cap smaller than any single row still keeps the newest entry:
	// an empty cache would make every cap smaller than one row useless.
	tiny, err := OpenResultCacheCap(filepath.Join(t.TempDir(), "tiny.jsonl"), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tiny.Close()
	for i := 0; i < 3; i++ {
		row := sampleRow(i, i)
		tiny.Put(CellFingerprint(row.SweepCell, 8, nil), row)
		if tiny.Len() != 1 {
			t.Fatalf("tiny cache holds %d entries after put %d, want exactly the newest", tiny.Len(), i)
		}
	}
	last := sampleRow(2, 2)
	if _, ok := tiny.Get(CellFingerprint(last.SweepCell, 8, nil)); !ok {
		t.Error("tiny cache lost the newest entry")
	}
	if err := tiny.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestResultCacheEvictionSalvage: the cap and the torn-tail salvage
// compose — a crash mid-append on an over-cap file still opens, cuts
// the tear, then trims.
func TestResultCacheEvictionSalvage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	rc, err := OpenResultCache(path)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 4)
	for i := range keys {
		row := sampleRow(i, i)
		keys[i] = CellFingerprint(row.SweepCell, 8, nil)
		rc.Put(keys[i], row)
	}
	full := rc.Bytes()
	rc.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	torn, err := OpenResultCacheCap(path, full/2)
	if err != nil {
		t.Fatal(err)
	}
	defer torn.Close()
	if torn.Discarded() == "" {
		t.Error("tear not reported")
	}
	if torn.Bytes() > full/2 {
		t.Errorf("footprint %d over the %d cap", torn.Bytes(), full/2)
	}
	// keys[3] died in the tear; of the survivors the newest is keys[2].
	if _, ok := torn.Get(keys[2]); !ok {
		t.Error("newest complete entry lost")
	}
	if _, ok := torn.Get(keys[0]); ok {
		t.Error("oldest entry survived an over-cap open")
	}
}

func mustSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}
