package experiments

import (
	"context"
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/core"
	"metaleak/internal/machine"
)

// attackerPair builds a trojan/spy pair on cores 0 and 1.
func attackerPair(sys *machine.System) (*core.Attacker, *core.Attacker) {
	trojan := core.NewAttacker(sys.System, sys.Ctrl, 0, sys.DP.SGX)
	spy := core.NewAttacker(sys.System, sys.Ctrl, 1, sys.DP.SGX)
	return trojan, spy
}

// Fig11 runs the MetaLeak-T covert channel on the SCT design and the SGX
// (SIT) calibration, transmitting o.Bits random bits under background
// noise, and reports bit accuracy plus a latency-trace snippet.
func Fig11(o Options) (*Result, error) { return SpecFig11(o).Run(context.Background(), 1) }

// fig11Partial is one configuration's transmission outcome.
type fig11Partial struct {
	row          []string
	trace        []arch.Cycles
	boundaryMiss int
	bitsSent     int
}

// SpecFig11 declares Fig11 as four independent trials — SCT, HT,
// cross-socket SCT, and the SGX calibration each transmit on their own
// machine — merged into the figure's accuracy table plus the SCT trace
// snippet.
func SpecFig11(o Options) *Spec {
	o = o.withDefaults()
	run := func(dp machine.DesignPoint, level int, noise arch.Cycles, seed uint64) (any, error) {
		dp.Seed = seed
		dp.NoiseInterval = noise
		dp.NoisePages = 1024 // wide working set: every metadata cache set sees traffic
		sys := machine.NewSystem(dp)
		trojan, spy := attackerPair(sys)
		ch, err := core.NewCovertT(trojan, spy, level)
		if err != nil {
			return nil, err
		}
		rng := arch.NewRNG(seed ^ 0xb175)
		start := sys.Now()
		for i := 0; i < o.Bits; i++ {
			ch.SendBit(rng.Bool(0.5))
		}
		return &fig11Partial{
			row: []string{
				dp.Name, fmt.Sprintf("L%d", level), fmt.Sprintf("%d", ch.BitsSent),
				pct(ch.Accuracy()), cyc(ch.CyclesPerBit(sys.Now() - start)),
			},
			trace:        ch.Trace,
			boundaryMiss: ch.BoundaryMiss,
			bitsSent:     ch.BitsSent,
		}, nil
	}
	// Cross-socket: the spy's core sits on socket 1; the metadata (and the
	// channel) live with the memory controller on socket 0.
	xs := machine.ConfigSCT()
	xs.Name = "SCT x-socket"
	xs.SocketOf = []int{0, 1, 0, 0}
	return &Spec{
		ID:    "fig11",
		Title: "MetaLeak-T covert channel accuracy and latency trace",
		Trials: []Trial{
			{Name: "fig11/sct", Run: func() (any, error) {
				return run(machine.ConfigSCT(), 0, 30000, o.Seed+11)
			}},
			// The hash-tree design leaks identically (§V: "similar latency
			// distributions in a simulated HT-based design").
			{Name: "fig11/ht", Run: func() (any, error) {
				return run(machine.ConfigHT(), 0, 30000, o.Seed+1113)
			}},
			{Name: "fig11/xsocket", Run: func() (any, error) {
				return run(xs, 0, 30000, o.Seed+1112)
			}},
			{Name: "fig11/sgx", Run: func() (any, error) {
				return run(machine.ConfigSGX(), 1, 9000, o.Seed+1111)
			}},
		},
		Merge: func(parts []any) (*Result, error) {
			r := &Result{
				ID:     "fig11",
				Title:  "MetaLeak-T covert channel accuracy and latency trace",
				Header: []string{"config", "tree level", "bits", "accuracy", "cycles/bit"},
			}
			for _, p := range parts {
				r.Rows = append(r.Rows, p.(*fig11Partial).row)
			}
			// Trace snippet: the spy's transmission-set reload latencies over
			// the final eight bit windows of the SCT run.
			sct := parts[0].(*fig11Partial)
			snippet := "final 8 bit windows, tx reload latencies: "
			n := len(sct.trace)
			if n >= 8 {
				for i := n - 8; i < n; i++ {
					snippet += fmt.Sprintf("%d ", sct.trace[i])
				}
			}
			r.Notes = append(r.Notes, snippet,
				fmt.Sprintf("spy threshold (SCT tx set): boundary misses %d/%d", sct.boundaryMiss, sct.bitsSent))
			r.PaperClaim = "99.3% bit accuracy on SCT; 94.3% on SGX's SIT; operates across cores and sockets"
			r.Measured = fmt.Sprintf("%s on SCT; %s on HT; %s cross-socket; %s on SGX",
				r.Rows[0][3], r.Rows[1][3], r.Rows[2][3], r.Rows[3][3])
			return r, nil
		},
	}
}

// Fig12 sweeps the exploited tree node level, measuring the
// mEvict+mReload interval (temporal resolution) and the node's spatial
// coverage, which grows exponentially with level.
func Fig12(o Options) (*Result, error) { return SpecFig12(o).Run(context.Background(), 1) }

// SpecFig12 declares Fig12: the per-level monitors share one machine's
// metadata cache history, so it stays one trial.
func SpecFig12(o Options) *Spec {
	return single("fig12", "mEvict+mReload interval and coverage vs. exploited tree level (SCT)",
		func() (*Result, error) { return fig12(o) })
}

func fig12(o Options) (*Result, error) {
	o = o.withDefaults()
	dp := machine.ConfigSCT()
	dp.Seed = o.Seed + 12
	sys := machine.NewSystem(dp)
	a := core.NewAttacker(sys.System, sys.Ctrl, 0, false)
	vic := sys.AllocPage(1)

	r := &Result{
		ID:     "fig12",
		Title:  "mEvict+mReload interval and coverage vs. exploited tree level (SCT)",
		Header: []string{"level", "interval (cycles)", "coverage (data)", "eviction sets"},
	}
	tree := sys.Ctrl.Tree()
	blocksPerCB := len(sys.Ctrl.Counters().DataBlocksOf(arch.CounterBase.Block()))
	for level := 0; level < tree.StoredLevels()-1; level++ {
		m, err := a.NewMonitor(vic, level)
		if err != nil {
			return nil, err
		}
		m.Calibrate(6)
		rounds := 20
		start := sys.Now()
		for i := 0; i < rounds; i++ {
			m.Evict()
			m.Reload()
		}
		interval := float64(sys.Now()-start) / float64(rounds)
		covBytes := tree.CoverageCounterBlocks(level) * blocksPerCB * arch.BlockSize
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("L%d", level),
			cyc(interval),
			byteSize(covBytes),
			fmt.Sprintf("%d", level+2),
		})
	}
	r.PaperClaim = "interval grows with level; leaf coverage 32KB-class, x16 per level above"
	r.Measured = fmt.Sprintf("interval %s -> %s cycles across levels; coverage %s -> %s",
		r.Rows[0][1], r.Rows[len(r.Rows)-1][1], r.Rows[0][2], r.Rows[len(r.Rows)-1][2])
	return r, nil
}

func byteSize(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// Fig14 runs the MetaLeak-C covert channel: 7-bit symbols encoded in the
// number of writes modulating a shared tree minor counter.
func Fig14(o Options) (*Result, error) { return SpecFig14(o).Run(context.Background(), 1) }

// SpecFig14 declares Fig14: one shared minor counter carries the whole
// transmission, so it stays one trial.
func SpecFig14(o Options) *Spec {
	return single("fig14", "MetaLeak-C covert channel: 7-bit symbols via counter modulation",
		func() (*Result, error) { return fig14(o) })
}

func fig14(o Options) (*Result, error) {
	o = o.withDefaults()
	dp := machine.ConfigSCT()
	dp.Seed = o.Seed + 14
	dp.FastCrypto = true // each symbol costs ~128 saturating writes
	sys := machine.NewSystem(dp)
	trojan, spy := attackerPair(sys)
	ch, err := core.NewCovertC(trojan, spy, arch.PageID(1<<13), 0)
	if err != nil {
		return nil, err
	}
	rng := arch.NewRNG(o.Seed ^ 0xc14)
	sent := make([]int, o.Symbols)
	for i := range sent {
		sent[i] = rng.Intn(ch.MaxSymbol() + 1)
	}
	got, err := ch.Send(sent)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:     "fig14",
		Title:  "MetaLeak-C covert channel: 7-bit symbols via counter modulation",
		Header: []string{"symbols", "accuracy", "bits/symbol"},
		Rows: [][]string{{
			fmt.Sprintf("%d", ch.SymbolsSent), pct(ch.Accuracy()), "7",
		}},
	}
	n := 4
	if len(sent) < n {
		n = len(sent)
	}
	snip := "transmission windows (sent -> decoded, probe writes m): "
	for i := 0; i < n; i++ {
		snip += fmt.Sprintf("[%d -> %d, m=%d] ", sent[i], got[i], ch.Trace[i])
	}
	r.Notes = append(r.Notes, snip)
	r.PaperClaim = "99.7% average transmission accuracy"
	r.Measured = fmt.Sprintf("%s over %d symbols", pct(ch.Accuracy()), ch.SymbolsSent)
	return r, nil
}

// coreAttacker builds an unprivileged attacker on core 0 of the system.
func coreAttacker(sys *machine.System) *core.Attacker {
	return core.NewAttacker(sys.System, sys.Ctrl, 0, sys.DP.SGX)
}
