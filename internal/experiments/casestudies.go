package experiments

import (
	"context"
	"fmt"
	"strings"

	"metaleak/internal/arch"
	"metaleak/internal/core"
	"metaleak/internal/jpeg"
	"metaleak/internal/machine"
	"metaleak/internal/mpi"
	"metaleak/internal/reconstruct"
	"metaleak/internal/victim"
)

// jpegAttackT mounts the §VIII-A1 attack on one image and returns the
// recovered trace, the oracle, and the images.
func jpegAttackT(sys *machine.System, kind jpeg.SyntheticKind, size int) (rec []bool, tr *victim.CoefTrace, original, recovered, oracle *jpeg.Image, err error) {
	attacker := core.NewAttacker(sys.System, sys.Ctrl, 0, sys.DP.SGX)
	frames, err := attacker.PlaceVictimPages(1, 2, 0)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	vp := victim.NewProc(sys.System, 1)
	jv := &victim.JPEGVictim{Proc: vp, RPage: frames[0], NbitsPage: frames[1]}
	dm, err := attacker.NewDualMonitor(jv.RPage, jv.NbitsPage, 0)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	im, err := jpeg.Synthetic(kind, size, size)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	iv := &victim.Interleave{
		Before: dm.Evict,
		After:  func() { rec = append(rec, !dm.Classify()) },
	}
	// No step jitter here: the coefficient trace is scored positionally,
	// so a single synchronization slip would cascade — the paper's jpeg
	// attack keeps alignment via the loop's boundary structure.
	_, tr, err = jv.Encode(im, iv)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	recovered = reconstruct.ImageFromTrace(rec, tr.W, tr.H, tr.Quality)
	oracle = reconstruct.OracleImage(tr)
	return rec, tr, im, recovered, oracle, nil
}

// Fig15 reproduces the libjpeg image-reconstruction case study with
// MetaLeak-T on the SCT design.
func Fig15(o Options) (*Result, error) { return SpecFig15(o).Run(context.Background(), 1) }

// fig15Partial is one image's attack outcome.
type fig15Partial struct {
	row   []string
	acc   float64
	notes []string
}

// SpecFig15 declares Fig15 as one trial per victim image, each mounting
// the attack on its own machine.
func SpecFig15(o Options) *Spec {
	o = o.withDefaults()
	kinds := []jpeg.SyntheticKind{jpeg.PatternCircle, jpeg.PatternStripes, jpeg.PatternText}
	trials := make([]Trial, len(kinds))
	for i, kind := range kinds {
		i, kind := i, kind
		trials[i] = Trial{
			Name: fmt.Sprintf("fig15/%s", kind),
			Run: func() (any, error) {
				dp := machine.ConfigSCT()
				dp.Seed = o.Seed + 15 + uint64(i)
				dp.NoiseInterval = 30000
				dp.NoisePages = 1024
				sys := machine.NewSystem(dp)
				rec, tr, original, recovered, oracle, err := jpegAttackT(sys, kind, o.ImageSize)
				if err != nil {
					return nil, err
				}
				acc := reconstruct.TraceAccuracy(rec, tr.NonZero)
				p := &fig15Partial{
					row: []string{
						string(kind), fmt.Sprintf("%d", len(tr.NonZero)), pct(acc),
						pct(reconstruct.PixelSimilarity(recovered, oracle)),
					},
					acc: acc,
				}
				if kind == jpeg.PatternText {
					p.notes = []string{
						"original image:", original.ASCII(o.ImageSize),
						"attacker reconstruction:", recovered.ASCII(o.ImageSize),
					}
				}
				return p, nil
			},
		}
	}
	return &Spec{
		ID:     "fig15",
		Title:  "Image reconstruction from libjpeg with MetaLeak-T (SCT)",
		Trials: trials,
		Merge: func(parts []any) (*Result, error) {
			r := &Result{
				ID:     "fig15",
				Title:  "Image reconstruction from libjpeg with MetaLeak-T (SCT)",
				Header: []string{"image", "coefficients", "stealing accuracy", "similarity to oracle"},
			}
			var accSum float64
			for _, part := range parts {
				p := part.(*fig15Partial)
				accSum += p.acc
				r.Rows = append(r.Rows, p.row)
				r.Notes = append(r.Notes, p.notes...)
			}
			r.PaperClaim = "up to 97% stealing accuracy (94.3% overall); reconstructions close to the oracle"
			r.Measured = fmt.Sprintf("mean stealing accuracy %s across %d images", pct(accSum/float64(len(parts))), len(parts))
			return r, nil
		},
	}
}

// Fig15C reproduces the §VIII-A2 variant: recovering the zero-elements of
// the entropy blocks by observing victim writes to r with
// mPreset+mOverflow on a shared tree minor at the 2nd level.
func Fig15C(o Options) (*Result, error) { return SpecFig15C(o).Run(context.Background(), 1) }

// SpecFig15C declares Fig15C: one victim encode under one counter
// monitor, one trial.
func SpecFig15C(o Options) *Spec {
	return single("fig15c", "Zero-coefficient recovery from libjpeg writes with MetaLeak-C (SCT, tree L2 minor)",
		func() (*Result, error) { return fig15C(o) })
}

func fig15C(o Options) (*Result, error) {
	o = o.withDefaults()
	dp := machine.ConfigSCT()
	dp.Seed = o.Seed + 152
	dp.FastCrypto = true // ~128 attacker writes per probed coefficient
	sys := machine.NewSystem(dp)
	attacker := core.NewAttacker(sys.System, sys.Ctrl, 0, false)
	frames, err := attacker.PlaceVictimPages(1, 2, 1)
	if err != nil {
		return nil, err
	}
	vp := victim.NewProc(sys.System, 1)
	jv := &victim.JPEGVictim{Proc: vp, RPage: frames[0], NbitsPage: frames[1], WriteR: true}

	// The attacker shares a minor counter at the 2nd tree level on the
	// verification path of r (child = victim L1 node).
	rBlock := jv.RPage.Block(0)
	cm, err := attacker.NewCounterMonitor(jv.RPage, 1, rBlock)
	if err != nil {
		return nil, err
	}
	cm.Calibrate()
	max := cm.MinorMax()

	size := o.ImageSize / 3
	if size < 8 {
		size = 8
	}
	im, _ := jpeg.Synthetic(jpeg.PatternCircle, size, size)
	var recovered []bool
	iv := &victim.Interleave{
		Before: func() { cm.Preset(max - 1) },
		After: func() {
			cm.PropagateVictim(rBlock)
			m, err := cm.ProbeOverflow(4)
			wrote := err == nil && m == 1
			recovered = append(recovered, !wrote) // wrote r => zero coefficient
		},
	}
	_, tr, err := jv.Encode(im, iv)
	if err != nil {
		return nil, err
	}
	acc := reconstruct.TraceAccuracy(recovered, tr.NonZero)
	r := &Result{
		ID:     "fig15c",
		Title:  "Zero-coefficient recovery from libjpeg writes with MetaLeak-C (SCT, tree L2 minor)",
		Header: []string{"image", "coefficients", "zero-element accuracy"},
		Rows: [][]string{{
			string(jpeg.PatternCircle), fmt.Sprintf("%d", len(tr.NonZero)), pct(acc),
		}},
	}
	r.PaperClaim = "97.2% zero-element recovery accuracy"
	r.Measured = fmt.Sprintf("%s over %d coefficients", pct(acc), len(tr.NonZero))
	return r, nil
}

// rsaAttack mounts the §VIII-B1 attack on one machine at one tree level.
// stepSkip/stepDouble model SGX-Step synchronization imprecision (0 for
// the perfectly stepped simulator).
func rsaAttack(sys *machine.System, level, expBits int, seed uint64, stepSkip, stepDouble float64) (bitAcc float64, traceLen int, err error) {
	acc, n, _, err := rsaAttackTraced(sys, level, expBits, seed, stepSkip, stepDouble)
	return acc, n, err
}

// rsaAttackTraced additionally returns the first reload-latency pairs
// (square monitor, multiply monitor) — the Fig. 16 observation trace.
func rsaAttackTraced(sys *machine.System, level, expBits int, seed uint64, stepSkip, stepDouble float64) (bitAcc float64, traceLen int, trace []string, err error) {
	attacker := core.NewAttacker(sys.System, sys.Ctrl, 0, sys.DP.SGX)
	frames, err := attacker.PlaceVictimPages(1, 2, level)
	if err != nil {
		return 0, 0, nil, err
	}
	vp := victim.NewProc(sys.System, 1)
	rv := &victim.RSAVictim{Proc: vp, SqrPage: frames[0], MulPage: frames[1]}
	dm, err := attacker.NewDualMonitor(rv.SqrPage, rv.MulPage, level)
	if err != nil {
		return 0, 0, nil, err
	}
	rng := arch.NewRNG(seed)
	exp := mpi.Random(rng, expBits)
	modulus := mpi.Random(rng, 2*expBits)
	if !modulus.IsOdd() {
		modulus = modulus.Add(mpi.New(1))
	}
	var ops []victim.Op
	iv := &victim.Interleave{
		Before: dm.Evict,
		After: func() {
			isSqr, aLat, bLat := dm.ClassifyDetail()
			if len(trace) < 10 {
				op := "M"
				if isSqr {
					op = "S"
				}
				trace = append(trace, fmt.Sprintf("[sqr=%d mul=%d -> %s]", aLat, bLat, op))
			}
			if isSqr {
				ops = append(ops, victim.OpSquare)
			} else {
				ops = append(ops, victim.OpMultiply)
			}
		},
	}
	iv = victim.Jitter(iv, arch.NewRNG(seed^0x57e9), stepSkip, stepDouble)
	_, _ = rv.ModExp(mpi.New(65537), exp, modulus, iv)
	bits := reconstruct.ExponentFromOps(ops)
	want := reconstruct.BitsOfExponent(exp)
	// Alignment-aware scoring: trace misreads insert/delete bits, which an
	// attacker realigns using the known square-and-multiply structure.
	return reconstruct.AlignedAccuracy(bits, want), len(ops), trace, nil
}

// Fig16 reproduces the libgcrypt RSA exponent recovery on the SGX
// calibration (integrity tree L1 sharing) and the simulated SCT design.
func Fig16(o Options) (*Result, error) { return SpecFig16(o).Run(context.Background(), 1) }

// fig16Partial is one configuration's recovery outcome.
type fig16Partial struct {
	row   []string
	notes []string
	acc   float64
}

// SpecFig16 declares Fig16 as two independent trials: the SGX enclave
// attack and the simulated-SCT attack each drive their own machine.
func SpecFig16(o Options) *Spec {
	o = o.withDefaults()
	return &Spec{
		ID:    "fig16",
		Title: "RSA square-and-multiply exponent recovery (libgcrypt pattern)",
		Trials: []Trial{
			{Name: "fig16/sgx", Run: func() (any, error) {
				sgx := machine.ConfigSGX()
				sgx.Seed = o.Seed + 16
				sgx.NoiseInterval = 15000
				sgx.NoisePages = 1024
				// SGX-Step on hardware misses/doubles a few percent of single
				// steps; the jitter knob reproduces that imprecision
				// (EXPERIMENTS.md).
				acc, n, trace, err := rsaAttackTraced(machine.NewSystem(sgx), 1, o.ExpBits, o.Seed+161, 0.04, 0.02)
				if err != nil {
					return nil, err
				}
				return &fig16Partial{
					row:   []string{"SGX", "L1", fmt.Sprintf("%d", n), pct(acc)},
					notes: []string{"mEvict+mReload observations (first steps, SGX): " + strings.Join(trace, " ")},
					acc:   acc,
				}, nil
			}},
			{Name: "fig16/sct", Run: func() (any, error) {
				sct := machine.ConfigSCT()
				sct.Seed = o.Seed + 162
				sct.NoiseInterval = 30000
				sct.NoisePages = 1024
				acc, n, err := rsaAttack(machine.NewSystem(sct), 0, o.ExpBits, o.Seed+163, 0.01, 0.01)
				if err != nil {
					return nil, err
				}
				return &fig16Partial{
					row: []string{"SCT", "L0", fmt.Sprintf("%d", n), pct(acc)},
					acc: acc,
				}, nil
			}},
		},
		Merge: func(parts []any) (*Result, error) {
			sgx, sct := parts[0].(*fig16Partial), parts[1].(*fig16Partial)
			r := &Result{
				ID:     "fig16",
				Title:  "RSA square-and-multiply exponent recovery (libgcrypt pattern)",
				Header: []string{"config", "tree level", "ops observed", "exponent bit accuracy"},
				Rows:   [][]string{sgx.row, sct.row},
				Notes:  sgx.notes,
			}
			r.PaperClaim = "91.2% exponent recovery in SGX enclave; 95.1% on simulated SCT"
			r.Measured = fmt.Sprintf("SGX %s, SCT %s", pct(sgx.acc), pct(sct.acc))
			return r, nil
		},
	}
}

// Fig17 reproduces the mbedTLS private-key-loading attack: recovering the
// shift/sub operation trace of the modular inversion in SGX.
func Fig17(o Options) (*Result, error) { return SpecFig17(o).Run(context.Background(), 1) }

// SpecFig17 declares Fig17: one key load under one dual monitor, one
// trial.
func SpecFig17(o Options) *Spec {
	return single("fig17", "mbedTLS key-loading shift/sub trace recovery (SGX, tree L1)",
		func() (*Result, error) { return fig17(o) })
}

func fig17(o Options) (*Result, error) {
	o = o.withDefaults()
	dp := machine.ConfigSGX()
	dp.Seed = o.Seed + 17
	dp.NoiseInterval = 9000
	dp.NoisePages = 1024
	sys := machine.NewSystem(dp)
	attacker := core.NewAttacker(sys.System, sys.Ctrl, 0, true)
	frames, err := attacker.PlaceVictimPages(1, 2, 1)
	if err != nil {
		return nil, err
	}
	vp := victim.NewProc(sys.System, 1)
	kv := &victim.KeyLoadVictim{Proc: vp, ShiftPage: frames[0], SubPage: frames[1]}
	dm, err := attacker.NewDualMonitor(kv.ShiftPage, kv.SubPage, 1)
	if err != nil {
		return nil, err
	}
	rng := arch.NewRNG(o.Seed ^ 0x17)
	p := mpi.RandomPrime(rng, o.PrimeBits)
	q := mpi.RandomPrime(rng, o.PrimeBits)
	var ops []victim.Op
	iv := &victim.Interleave{
		Before: dm.Evict,
		After: func() {
			if dm.Classify() {
				ops = append(ops, victim.OpShift)
			} else {
				ops = append(ops, victim.OpSub)
			}
		},
	}
	iv = victim.Jitter(iv, arch.NewRNG(o.Seed^0x17e9), 0.04, 0.02)
	_, oracleOps, err := kv.LoadKey(p, q, mpi.New(65537), iv)
	if err != nil {
		return nil, err
	}
	acc := reconstruct.AlignedOpAccuracy(ops, oracleOps)
	r := &Result{
		ID:     "fig17",
		Title:  "mbedTLS key-loading shift/sub trace recovery (SGX, tree L1)",
		Header: []string{"primes", "operations", "trace accuracy", "spy threshold (shift mon)"},
		Rows: [][]string{{
			fmt.Sprintf("2 x %d-bit", o.PrimeBits),
			fmt.Sprintf("%d", len(oracleOps)),
			pct(acc),
			fmt.Sprintf("%d cycles", dm.MonA.Threshold),
		}},
	}
	r.PaperClaim = "90.7% accuracy detecting Shift and Sub accesses (600-cycle leaf-hit threshold)"
	r.Measured = fmt.Sprintf("%s over %d operations", pct(acc), len(oracleOps))
	return r, nil
}
