package experiments

import (
	"context"
	"fmt"
	"strings"

	"metaleak/internal/arch"
	"metaleak/internal/core"
	"metaleak/internal/machine"
	"metaleak/internal/runner"
	"metaleak/internal/stats"
)

// The sweep engine crosses the machine.DesignPoint ablation axes into a
// grid of cells, runs every cell as an independent trial on the worker
// pool, and aggregates replications per grid point with the mergeable
// accumulators. Unlike the figure experiments — which fail the whole run
// on any error — a sweep is exploratory: a cell whose design point is
// broken (say, a minor width the tree rejects) reports its error in the
// row and the rest of the grid still completes.

// SweepAxes enumerates the design-point grid of `metaleak sweep`. The
// cross product Configs x MinorBits x MetaKB x Noise, replicated Seeds
// times, defines the cell list; every cell's machine seed is derived
// from (Seed, axis indices, rep) through an arch.NewRNG stream, so the
// grid shape — not the completion order — determines every result.
type SweepAxes struct {
	Configs   []string      // base design points: "sct", "ht", "sgx"
	MinorBits []uint        // SC/SCT minor counter widths
	MetaKB    []int         // metadata cache sizes
	Noise     []arch.Cycles // background-traffic burst intervals (0 = off)
	Seeds     int           // replications per grid point
	Seed      uint64        // base seed
	Bits      int           // covert transmission length per cell
}

// DefaultSweepAxes returns a single-cell grid at the paper's SCT design
// point — the identity sweep, useful as a smoke test.
func DefaultSweepAxes() SweepAxes {
	return SweepAxes{
		Configs:   []string{"sct"},
		MinorBits: []uint{7},
		MetaKB:    []int{256},
		Noise:     []arch.Cycles{0},
		Seeds:     1,
		Bits:      120,
	}
}

// SweepCell is one point of the expanded grid.
type SweepCell struct {
	Index     int // position in deterministic grid order
	Config    string
	MinorBits uint
	MetaKB    int
	Noise     arch.Cycles
	Rep       int
	Seed      uint64 // derived machine seed for this cell
}

// SweepRow is one cell's measurements. Err is non-empty when the cell
// failed (the rest of the sweep is unaffected).
type SweepRow struct {
	SweepCell
	CovertAccuracy  float64
	CyclesPerBit    float64
	MonitorAccuracy float64
	Err             string `json:",omitempty"`
}

// CSVHeader returns the column names of CSVRecord.
func CSVHeader() []string {
	return []string{"config", "minor_bits", "meta_kb", "noise", "rep", "seed",
		"covert_accuracy", "cycles_per_bit", "monitor_accuracy", "err"}
}

// CSVRecord renders the row for `metaleak sweep`'s CSV output.
func (r SweepRow) CSVRecord() []string {
	return []string{
		r.Config,
		fmt.Sprintf("%d", r.MinorBits),
		fmt.Sprintf("%d", r.MetaKB),
		fmt.Sprintf("%d", r.Noise),
		fmt.Sprintf("%d", r.Rep),
		fmt.Sprintf("%d", r.Seed),
		fmt.Sprintf("%.4f", r.CovertAccuracy),
		fmt.Sprintf("%.1f", r.CyclesPerBit),
		fmt.Sprintf("%.4f", r.MonitorAccuracy),
		r.Err,
	}
}

// Cells expands the grid in deterministic nested order (configs
// outermost, reps innermost).
func (a SweepAxes) Cells() []SweepCell {
	var cells []SweepCell
	for ci, cfg := range a.Configs {
		for mi, minor := range a.MinorBits {
			for ki, kb := range a.MetaKB {
				for ni, noise := range a.Noise {
					for rep := 0; rep < a.Seeds; rep++ {
						cells = append(cells, SweepCell{
							Index:     len(cells),
							Config:    cfg,
							MinorBits: minor,
							MetaKB:    kb,
							Noise:     noise,
							Rep:       rep,
							Seed: arch.NewRNG(a.Seed,
								uint64(ci), uint64(mi), uint64(ki), uint64(ni), uint64(rep)).Uint64(),
						})
					}
				}
			}
		}
	}
	return cells
}

// sweepConfig resolves a config name to its base design point and the
// tree level the attacks target (the SGX calibration shares at L1, the
// simulated designs at L0).
func sweepConfig(name string) (machine.DesignPoint, int, error) {
	switch strings.ToLower(name) {
	case "sct":
		return machine.ConfigSCT(), 0, nil
	case "ht":
		return machine.ConfigHT(), 0, nil
	case "sgx":
		return machine.ConfigSGX(), 1, nil
	}
	return machine.DesignPoint{}, 0, fmt.Errorf("sweep: unknown config %q (sct, ht, or sgx)", name)
}

// runSweepCell measures one cell: the MetaLeak-T covert channel's bit
// accuracy and cost, and the single-node monitor's classification
// accuracy, each on its own machine seeded from the cell.
func runSweepCell(c SweepCell, bits int) (SweepRow, error) {
	row := SweepRow{SweepCell: c}
	base, level, err := sweepConfig(c.Config)
	if err != nil {
		return row, err
	}
	base.MinorBits = c.MinorBits
	base.MetaKB = c.MetaKB
	base.NoiseInterval = c.Noise
	if c.Noise > 0 {
		base.NoisePages = 1024
	}

	// Covert-channel probe.
	dp := base
	dp.Seed = arch.NewRNG(c.Seed, 1).Uint64()
	sys := machine.NewSystem(dp)
	trojan, spy := attackerPair(sys)
	ch, err := core.NewCovertT(trojan, spy, level)
	if err != nil {
		return row, err
	}
	rng := arch.NewRNG(c.Seed, 2)
	start := sys.Now()
	for i := 0; i < bits; i++ {
		ch.SendBit(rng.Bool(0.5))
	}
	row.CovertAccuracy = ch.Accuracy()
	row.CyclesPerBit = ch.CyclesPerBit(sys.Now() - start)

	// Monitor probe.
	dpM := base
	dpM.Seed = arch.NewRNG(c.Seed, 3).Uint64()
	sysM := machine.NewSystem(dpM)
	attacker := coreAttacker(sysM)
	vicPage := sysM.AllocPage(1)
	m, err := attacker.NewMonitor(vicPage, level)
	if err != nil {
		return row, err
	}
	m.Calibrate(8)
	correct, rounds := 0, 40
	for i := 0; i < rounds; i++ {
		m.Evict()
		want := i%2 == 0
		if want {
			sysM.Flush(1, vicPage.Block(0))
			sysM.Touch(1, vicPage.Block(0))
		}
		got, _ := m.Reload()
		if got == want {
			correct++
		}
	}
	row.MonitorAccuracy = float64(correct) / float64(rounds)
	return row, nil
}

// Sweep runs the whole grid with at most `workers` cells in flight and
// returns one row per cell in grid order. Cell failures land in the
// rows' Err fields; only a cancelled context aborts the sweep.
func Sweep(ctx context.Context, axes SweepAxes, workers int) ([]SweepRow, error) {
	if axes.Bits <= 0 {
		axes.Bits = DefaultSweepAxes().Bits
	}
	if axes.Seeds <= 0 {
		axes.Seeds = 1
	}
	cells := axes.Cells()
	trials := make([]runner.Trial, len(cells))
	for i, c := range cells {
		c := c
		trials[i] = func() (any, error) { return runSweepCell(c, axes.Bits) }
	}
	parts, errs := runner.RunAll(ctx, trials, workers)
	rows := make([]SweepRow, len(cells))
	for i := range cells {
		switch {
		case errs[i] != nil:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			rows[i] = SweepRow{SweepCell: cells[i], Err: errs[i].Error()}
		default:
			rows[i] = parts[i].(SweepRow)
		}
	}
	return rows, nil
}

// SweepPoint aggregates one grid point's replications.
type SweepPoint struct {
	Config    string
	MinorBits uint
	MetaKB    int
	Noise     arch.Cycles
	Covert    stats.MeanVar
	Monitor   stats.MeanVar
	Errs      int
}

// Aggregate folds the rows' replications per grid point, preserving grid
// order. The accumulators merge associatively, so the fold is
// independent of how the rows were produced.
func (a SweepAxes) Aggregate(rows []SweepRow) []SweepPoint {
	byKey := map[string]*SweepPoint{}
	var order []*SweepPoint
	for _, r := range rows {
		key := fmt.Sprintf("%s/%d/%d/%d", r.Config, r.MinorBits, r.MetaKB, r.Noise)
		p := byKey[key]
		if p == nil {
			p = &SweepPoint{Config: r.Config, MinorBits: r.MinorBits, MetaKB: r.MetaKB, Noise: r.Noise}
			byKey[key] = p
			order = append(order, p)
		}
		if r.Err != "" {
			p.Errs++
			continue
		}
		p.Covert.Add(r.CovertAccuracy)
		p.Monitor.Add(r.MonitorAccuracy)
	}
	out := make([]SweepPoint, len(order))
	for i, p := range order {
		out[i] = *p
	}
	return out
}
