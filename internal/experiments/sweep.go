package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"metaleak/internal/arch"
	"metaleak/internal/core"
	"metaleak/internal/faults"
	"metaleak/internal/machine"
	"metaleak/internal/runner"
	"metaleak/internal/stats"
)

// The sweep engine crosses the machine.DesignPoint ablation axes into a
// grid of cells, runs every cell as an independent trial on the worker
// pool, and aggregates replications per grid point with the mergeable
// accumulators. Unlike the figure experiments — which fail the whole run
// on any error — a sweep is exploratory: a cell whose design point is
// broken (say, a minor width the tree rejects) reports its error in the
// row and the rest of the grid still completes.

// SweepAxes enumerates the design-point grid of `metaleak sweep`. The
// cross product Configs x MinorBits x MetaKB x Noise, replicated Seeds
// times, defines the cell list; every cell's machine seed is derived
// from (Seed, axis indices, rep) through an arch.NewRNG stream, so the
// grid shape — not the completion order — determines every result.
type SweepAxes struct {
	Configs   []string      // base design points: "sct", "ht", "sgx"
	MinorBits []uint        // SC/SCT minor counter widths
	MetaKB    []int         // metadata cache sizes
	Noise     []arch.Cycles // background-traffic burst intervals (0 = off)
	Seeds     int           // replications per grid point
	Seed      uint64        // base seed
	Bits      int           // covert transmission length per cell

	// Set holds "Field=value" DesignPoint overrides applied to every
	// cell's base design point before the axis fields — so the axes win
	// on MinorBits/MetaKB/NoiseInterval (override those through the axis
	// itself; the CLI's -set remaps them automatically). Overrides are
	// part of the sweep's identity: they feed the checkpoint fingerprint.
	Set []string
}

// DefaultSweepAxes returns a single-cell grid at the paper's SCT design
// point — the identity sweep, useful as a smoke test.
func DefaultSweepAxes() SweepAxes {
	return SweepAxes{
		Configs:   []string{"sct"},
		MinorBits: []uint{7},
		MetaKB:    []int{256},
		Noise:     []arch.Cycles{0},
		Seeds:     1,
		Bits:      120,
	}
}

// SweepCell is one point of the expanded grid.
type SweepCell struct {
	Index     int // position in deterministic grid order
	Config    string
	MinorBits uint
	MetaKB    int
	Noise     arch.Cycles
	Rep       int
	Seed      uint64 // derived machine seed for this cell
	// MinorNA marks a cell whose design point ignores MinorBits (e.g.
	// sgx: MoC counters + SIT's hardwired 56-bit counters). The minor
	// axis is collapsed to one such cell per (config, meta, noise, rep)
	// and rendered "na", so the grid never reports minor-width variation
	// that no machine actually had.
	MinorNA bool `json:",omitempty"`
}

// MinorLabel renders the cell's minor-width axis value; "na" when the
// design point ignores it.
func (c SweepCell) MinorLabel() string {
	if c.MinorNA {
		return "na"
	}
	return fmt.Sprintf("%d", c.MinorBits)
}

// SweepRow is one cell's measurements. Err is non-empty when the cell
// failed (the rest of the sweep is unaffected). Under a retry policy a
// failed cell is quarantined: Quarantined marks it and Attempts records
// the attempt budget it consumed. Both stay zero outside retry runs, so
// plain sweeps render byte-identically to what they always did.
type SweepRow struct {
	SweepCell
	CovertAccuracy  float64
	CyclesPerBit    float64
	MonitorAccuracy float64
	Err             string `json:",omitempty"`
	Attempts        int    `json:",omitempty"`
	Quarantined     bool   `json:",omitempty"`
}

// CSVHeader returns the column names of CSVRecord.
func CSVHeader() []string {
	return []string{"config", "minor_bits", "meta_kb", "noise", "rep", "seed",
		"covert_accuracy", "cycles_per_bit", "monitor_accuracy", "err", "attempts", "quarantined"}
}

// CSVRecord renders the row for `metaleak sweep`'s CSV output.
func (r SweepRow) CSVRecord() []string {
	quarantined := ""
	if r.Quarantined {
		quarantined = "true"
	}
	attempts := ""
	if r.Attempts > 0 {
		attempts = fmt.Sprintf("%d", r.Attempts)
	}
	return []string{
		r.Config,
		r.MinorLabel(),
		fmt.Sprintf("%d", r.MetaKB),
		fmt.Sprintf("%d", r.Noise),
		fmt.Sprintf("%d", r.Rep),
		fmt.Sprintf("%d", r.Seed),
		fmt.Sprintf("%.4f", r.CovertAccuracy),
		fmt.Sprintf("%.1f", r.CyclesPerBit),
		fmt.Sprintf("%.4f", r.MonitorAccuracy),
		r.Err,
		attempts,
		quarantined,
	}
}

// LongHeader returns the column names of LongRecords — the long/tidy
// output format: one (cell, metric, value) record per measurement,
// ready for a plotting library's group-by without any reshaping.
func LongHeader() []string {
	return []string{"config", "minor_bits", "meta_kb", "noise", "rep", "seed", "metric", "value"}
}

// LongRecords renders the row in long format: one record per metric; a
// failed cell yields a single "err" record carrying the message.
func (r SweepRow) LongRecords() [][]string {
	key := []string{
		r.Config,
		r.MinorLabel(),
		fmt.Sprintf("%d", r.MetaKB),
		fmt.Sprintf("%d", r.Noise),
		fmt.Sprintf("%d", r.Rep),
		fmt.Sprintf("%d", r.Seed),
	}
	mk := func(metric, value string) []string {
		return append(append(make([]string, 0, len(key)+2), key...), metric, value)
	}
	if r.Err != "" {
		out := [][]string{mk("err", r.Err)}
		if r.Quarantined {
			out = append(out, mk("quarantined_after_attempts", fmt.Sprintf("%d", r.Attempts)))
		}
		return out
	}
	return [][]string{
		mk("covert_accuracy", fmt.Sprintf("%.4f", r.CovertAccuracy)),
		mk("cycles_per_bit", fmt.Sprintf("%.1f", r.CyclesPerBit)),
		mk("monitor_accuracy", fmt.Sprintf("%.4f", r.MonitorAccuracy)),
	}
}

// Validate rejects axis values the machine builder would silently
// normalize to a different design point: minor width 0 (ctr.NewSC and
// buildTree both remap it to the 7-bit Table I default) and
// non-positive metadata cache sizes (NewSystem remaps to 256 KiB).
// Without this check the grid emits rows labeled as axis variation that
// ran byte-identical machines.
func (a SweepAxes) Validate() error {
	for _, m := range a.MinorBits {
		if m == 0 {
			return fmt.Errorf("sweep: minor width 0 would be silently normalized to the 7-bit default; pass an explicit width in 1..16")
		}
		if m > 16 {
			return fmt.Errorf("sweep: minor width %d exceeds the 16-bit minor counter storage", m)
		}
	}
	for _, kb := range a.MetaKB {
		if kb <= 0 {
			return fmt.Errorf("sweep: metadata cache size %d KiB would be silently normalized to the 256 KiB default; pass a positive size", kb)
		}
	}
	return nil
}

// Cells expands the grid in deterministic nested order (configs
// outermost, reps innermost). For a config whose resolved design point
// ignores MinorBits the minor axis is collapsed to a single MinorNA
// cell — expanding it would produce rows labeled as different minor
// widths that ran identical machines.
func (a SweepAxes) Cells() []SweepCell {
	// Best-effort parse here: Sweep validates overrides up front;
	// unknown configs stay fully expanded and fail per cell, in-row.
	ovs, _ := machine.ParseOverrides(a.Set)
	var cells []SweepCell
	for ci, cfg := range a.Configs {
		minorNA := false
		if base, _, err := sweepConfig(cfg); err == nil {
			if machine.ApplyOverrides(&base, ovs) == nil {
				minorNA = !base.UsesMinorBits()
			}
		}
		for mi, minor := range a.MinorBits {
			if minorNA {
				if mi > 0 {
					continue
				}
				minor = 0
			}
			for ki, kb := range a.MetaKB {
				for ni, noise := range a.Noise {
					for rep := 0; rep < a.Seeds; rep++ {
						cells = append(cells, SweepCell{
							Index:     len(cells),
							Config:    cfg,
							MinorBits: minor,
							MetaKB:    kb,
							Noise:     noise,
							Rep:       rep,
							MinorNA:   minorNA,
							Seed: arch.NewRNG(a.Seed,
								uint64(ci), uint64(mi), uint64(ki), uint64(ni), uint64(rep)).Uint64(),
						})
					}
				}
			}
		}
	}
	return cells
}

// sweepConfig resolves a config name to its base design point and the
// tree level the attacks target (the SGX calibration shares at L1, the
// simulated designs at L0).
func sweepConfig(name string) (machine.DesignPoint, int, error) {
	switch strings.ToLower(name) {
	case "sct":
		return machine.ConfigSCT(), 0, nil
	case "ht":
		return machine.ConfigHT(), 0, nil
	case "sgx":
		return machine.ConfigSGX(), 1, nil
	}
	return machine.DesignPoint{}, 0, fmt.Errorf("sweep: unknown config %q (sct, ht, or sgx)", name)
}

// runSweepCell measures one cell: the MetaLeak-T covert channel's bit
// accuracy and cost, and the single-node monitor's classification
// accuracy, each on its own machine seeded from the cell. Overrides
// apply before the axis fields, so the axes win on the fields they own.
func runSweepCell(c SweepCell, bits int, ovs []machine.FieldOverride) (SweepRow, error) {
	row := SweepRow{SweepCell: c}
	base, level, err := sweepConfig(c.Config)
	if err != nil {
		return row, err
	}
	if err := machine.ApplyOverrides(&base, ovs); err != nil {
		return row, err
	}
	if !c.MinorNA {
		base.MinorBits = c.MinorBits
	}
	base.MetaKB = c.MetaKB
	base.NoiseInterval = c.Noise
	if c.Noise > 0 && base.NoisePages == 0 {
		base.NoisePages = 1024
	}

	// Covert-channel probe.
	dp := base
	dp.Seed = arch.NewRNG(c.Seed, 1).Uint64()
	sys := machine.NewSystem(dp)
	trojan, spy := attackerPair(sys)
	ch, err := core.NewCovertT(trojan, spy, level)
	if err != nil {
		return row, err
	}
	rng := arch.NewRNG(c.Seed, 2)
	start := sys.Now()
	for i := 0; i < bits; i++ {
		ch.SendBit(rng.Bool(0.5))
	}
	row.CovertAccuracy = ch.Accuracy()
	row.CyclesPerBit = ch.CyclesPerBit(sys.Now() - start)

	// Monitor probe.
	dpM := base
	dpM.Seed = arch.NewRNG(c.Seed, 3).Uint64()
	sysM := machine.NewSystem(dpM)
	attacker := coreAttacker(sysM)
	vicPage := sysM.AllocPage(1)
	m, err := attacker.NewMonitor(vicPage, level)
	if err != nil {
		return row, err
	}
	m.Calibrate(8)
	correct, rounds := 0, 40
	for i := 0; i < rounds; i++ {
		m.Evict()
		want := i%2 == 0
		if want {
			sysM.Flush(1, vicPage.Block(0))
			sysM.Touch(1, vicPage.Block(0))
		}
		got, _ := m.Reload()
		if got == want {
			correct++
		}
	}
	row.MonitorAccuracy = float64(correct) / float64(rounds)
	return row, nil
}

// SweepOptions configures how a sweep executes — none of it changes
// what the cells compute, only how failures and durability are handled,
// so every option combination yields byte-identical rows for the cells
// that succeed.
type SweepOptions struct {
	// Workers caps concurrent cells; <= 0 selects GOMAXPROCS.
	Workers int
	// Checkpoint, when non-empty, persists completed rows to this file
	// and resumes from it.
	Checkpoint string
	// Timeout bounds each cell attempt; 0 disables stall detection.
	Timeout time.Duration
	// Retries grants failed cells extra attempts; a cell that exhausts
	// them is quarantined (reported in its row, excluded from resume's
	// completed set so a later run retries it).
	Retries int
	// Backoff paces retry attempts; nil retries immediately.
	Backoff func(attempt int) time.Duration
	// Faults, when non-nil, injects the plan's harness-level failures:
	// trial panics/stalls/errors by cell index, and checkpoint-file
	// truncation. Machine-level faults do not go here — they travel as a
	// FaultSpec design-point override in the axes, where they are part
	// of the sweep's identity.
	Faults *faults.Harness
	// Log, when non-nil, receives human-readable warnings (e.g. a torn
	// checkpoint line salvaged at resume). Results never depend on it.
	Log func(format string, args ...any)
}

// Sweep runs the whole grid with at most `workers` cells in flight and
// returns one row per cell in grid order. Cell failures land in the
// rows' Err fields. Cancellation mid-grid returns the rows of every
// cell that did complete (still in grid order) alongside the context's
// error — Ctrl-C near the end of a long sweep reports the finished
// work instead of discarding it.
func Sweep(ctx context.Context, axes SweepAxes, workers int) ([]SweepRow, error) {
	return SweepOpts(ctx, axes, SweepOptions{Workers: workers})
}

// SweepCheckpointed is Sweep with durability: when checkpoint names a
// file, every completed row is appended there as it finishes, and a
// rerun with the same axes loads the file, skips the cells it already
// holds, re-runs only missing or failed ones, and returns the merged
// grid-order rows — byte-identical to an uninterrupted run. A
// checkpoint written by different axes (detected by fingerprint) fails
// loudly instead of merging unrelated grids.
func SweepCheckpointed(ctx context.Context, axes SweepAxes, workers int, checkpoint string) ([]SweepRow, error) {
	return SweepOpts(ctx, axes, SweepOptions{Workers: workers, Checkpoint: checkpoint})
}

// SweepOpts runs the grid under the full execution policy: bounded
// per-cell deadlines, bounded retries with deterministic backoff, cell
// quarantine, checkpoint durability with torn-line salvage, and
// (under test) injected harness faults. The grid's results remain a
// pure function of the axes: policy decides whether a cell's row is a
// measurement or a quarantine report, never what the measurement is.
func SweepOpts(ctx context.Context, axes SweepAxes, opts SweepOptions) ([]SweepRow, error) {
	prep, err := sweepPrep(axes, opts)
	if err != nil {
		return nil, err
	}
	axes, cells, cp, done := prep.axes, prep.cells, prep.cp, prep.done
	ovs := prep.ovs
	if cp != nil {
		defer cp.Close()
	}

	pol := runner.Policy{
		Workers: opts.Workers,
		Timeout: opts.Timeout,
		Retries: opts.Retries,
		Backoff: opts.Backoff,
	}
	pending := prep.pending
	trials := make([]runner.Trial, len(pending))
	for ti, i := range pending {
		c := cells[i]
		// Harness faults target grid cell indices, not trial slots: the
		// plan must hit the same cell whether or not a resume skipped
		// earlier cells.
		trials[ti] = opts.Faults.WrapTrial(c.Index, func() (any, error) {
			return runSweepCell(c, axes.Bits, ovs)
		})
	}
	var onDone func(int, any, error)
	if cp != nil {
		onDone = func(ti int, res any, err error) {
			if row, ok := settledRow(cells[pending[ti]], res, err, pol); ok {
				cp.Append(row)
			}
		}
	}
	parts, errs := runner.RunAllPolicy(ctx, trials, pol, onDone)

	rows := make([]SweepRow, 0, len(cells))
	interrupted := false
	ti := 0
	for i := range cells {
		if row, ok := done[i]; ok {
			rows = append(rows, row)
			continue
		}
		row, ok := settledRow(cells[i], parts[ti], errs[ti], pol)
		ti++
		if !ok {
			interrupted = true
			continue
		}
		rows = append(rows, row)
	}
	if cp != nil {
		if err := cp.Err(); err != nil {
			return rows, err
		}
	}
	if interrupted {
		return rows, ctx.Err()
	}
	return rows, nil
}

// sweepPrep is the shared prologue of the single-process and
// distributed sweep paths: normalize and validate the axes, parse and
// vet the design-point overrides, expand the grid, and open the
// checkpoint (loading already-completed rows). Callers own closing
// prep.cp when non-nil.
type sweepPrelude struct {
	axes    SweepAxes
	ovs     []machine.FieldOverride
	cells   []SweepCell
	cp      *Checkpoint
	done    map[int]SweepRow
	pending []int // grid indices still to run, ascending
}

func sweepPrep(axes SweepAxes, opts SweepOptions) (*sweepPrelude, error) {
	axes = axes.normalized()
	if err := axes.Validate(); err != nil {
		return nil, err
	}
	ovs, err := machine.ParseOverrides(axes.Set)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	// Vet the overrides against a scratch design point up front, so a
	// field typo fails the sweep once instead of failing every cell.
	scratch := machine.ConfigSCT()
	if err := machine.ApplyOverrides(&scratch, ovs); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	prep := &sweepPrelude{axes: axes, ovs: ovs, cells: axes.Cells(), done: map[int]SweepRow{}}

	if opts.Checkpoint != "" {
		cp, err := OpenCheckpoint(opts.Checkpoint, axes)
		if err != nil {
			return nil, err
		}
		prep.cp = cp
		if opts.Faults != nil {
			cp.SetTamperer(opts.Faults.AfterAppend)
		}
		if d := cp.Discarded(); d != "" && opts.Log != nil {
			opts.Log("checkpoint %s: discarded torn trailing line (%d bytes, crash mid-append); its cell will re-run", opts.Checkpoint, len(d))
		}
		prep.done = cp.Completed()
	}
	for i := range prep.cells {
		if _, ok := prep.done[i]; !ok {
			prep.pending = append(prep.pending, i)
		}
	}
	return prep, nil
}

// settledRow converts one trial outcome into a row. Cells skipped by
// cancellation report ok=false — they produced no result and must not
// be recorded as failures (the pre-fix bug: ctx.Err() at collection
// time discarded every completed row and disguised genuine failures).
// Under a retry policy a failed cell's row is marked quarantined and
// carries its attempt count; recovered cells (failed attempts followed
// by a success) stay indistinguishable from clean ones — the retry is
// execution machinery, not measurement.
func settledRow(c SweepCell, res any, err error, pol runner.Policy) (SweepRow, bool) {
	switch {
	case err == nil:
		return res.(SweepRow), true
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return SweepRow{}, false
	default:
		// Strip the runner's "trial N:" prefix: trial indices depend on
		// how many cells a resume skipped, and the row must not.
		row := SweepRow{SweepCell: c, Err: err.Error()}
		var te *runner.TrialError
		if errors.As(err, &te) {
			row.Err = te.Err.Error()
			if pol.Retries > 0 {
				row.Attempts = te.Attempts
				row.Quarantined = true
			}
		}
		return row, true
	}
}

// SweepPoint aggregates one grid point's replications.
type SweepPoint struct {
	Config    string
	MinorBits uint
	MinorNA   bool `json:",omitempty"`
	MetaKB    int
	Noise     arch.Cycles
	Covert    stats.MeanVar
	Monitor   stats.MeanVar
	Errs      int
}

// MinorLabel renders the point's minor-width axis value; "na" when the
// config's design point ignores it.
func (p SweepPoint) MinorLabel() string {
	if p.MinorNA {
		return "na"
	}
	return fmt.Sprintf("%d", p.MinorBits)
}

// Aggregate folds the rows' replications per grid point, preserving grid
// order. The accumulators merge associatively, so the fold is
// independent of how the rows were produced. MinorNA rows aggregate
// under the "na" label, never as distinct minor-width points.
func (a SweepAxes) Aggregate(rows []SweepRow) []SweepPoint {
	byKey := map[string]*SweepPoint{}
	var order []*SweepPoint
	for _, r := range rows {
		key := fmt.Sprintf("%s/%s/%d/%d", r.Config, r.MinorLabel(), r.MetaKB, r.Noise)
		p := byKey[key]
		if p == nil {
			p = &SweepPoint{Config: r.Config, MinorBits: r.MinorBits, MinorNA: r.MinorNA,
				MetaKB: r.MetaKB, Noise: r.Noise}
			byKey[key] = p
			order = append(order, p)
		}
		if r.Err != "" {
			p.Errs++
			continue
		}
		p.Covert.Add(r.CovertAccuracy)
		p.Monitor.Add(r.MonitorAccuracy)
	}
	out := make([]SweepPoint, len(order))
	for i, p := range order {
		out[i] = *p
	}
	return out
}
