package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"metaleak/internal/arch"
)

func tinyAxes() SweepAxes {
	return SweepAxes{
		Configs:   []string{"sct"},
		MinorBits: []uint{6, 7},
		MetaKB:    []int{64},
		Noise:     []arch.Cycles{0},
		Seeds:     2,
		Seed:      9,
		Bits:      16,
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	axes := tinyAxes()
	seq, err := Sweep(context.Background(), axes, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(context.Background(), axes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep differs across worker counts:\nseq %+v\npar %+v", seq, par)
	}
	if len(seq) != 4 {
		t.Fatalf("2 minors x 2 reps should be 4 cells, got %d", len(seq))
	}
	for i, r := range seq {
		if r.Index != i {
			t.Fatalf("row %d carries index %d", i, r.Index)
		}
		if r.Err != "" {
			t.Fatalf("cell %d failed: %s", i, r.Err)
		}
	}
}

func TestSweepCellFailureIsolated(t *testing.T) {
	axes := tinyAxes()
	axes.Configs = []string{"sct", "bogus"}
	axes.MinorBits = []uint{7}
	axes.Seeds = 1
	rows, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Err != "" {
		t.Fatalf("healthy cell failed: %s", rows[0].Err)
	}
	if !strings.Contains(rows[1].Err, "unknown config") {
		t.Fatalf("broken cell error %q", rows[1].Err)
	}

	points := axes.Aggregate(rows)
	if len(points) != 2 {
		t.Fatalf("got %d aggregate points", len(points))
	}
	if points[0].Covert.N != 1 || points[0].Errs != 0 {
		t.Fatalf("healthy point %+v", points[0])
	}
	if points[1].Covert.N != 0 || points[1].Errs != 1 {
		t.Fatalf("broken point %+v", points[1])
	}
}

func TestSweepSeedsPerturbCells(t *testing.T) {
	axes := tinyAxes()
	cells := axes.Cells()
	seen := map[uint64]bool{}
	for _, c := range cells {
		if seen[c.Seed] {
			t.Fatalf("derived seed %d repeats across cells", c.Seed)
		}
		seen[c.Seed] = true
	}
	axes2 := axes
	axes2.Seed = axes.Seed + 1
	if axes2.Cells()[0].Seed == cells[0].Seed {
		t.Fatal("base seed does not perturb cell seeds")
	}
}
