package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"metaleak/internal/arch"
)

func tinyAxes() SweepAxes {
	return SweepAxes{
		Configs:   []string{"sct"},
		MinorBits: []uint{6, 7},
		MetaKB:    []int{64},
		Noise:     []arch.Cycles{0},
		Seeds:     2,
		Seed:      9,
		Bits:      16,
	}
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	axes := tinyAxes()
	seq, err := Sweep(context.Background(), axes, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(context.Background(), axes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep differs across worker counts:\nseq %+v\npar %+v", seq, par)
	}
	if len(seq) != 4 {
		t.Fatalf("2 minors x 2 reps should be 4 cells, got %d", len(seq))
	}
	for i, r := range seq {
		if r.Index != i {
			t.Fatalf("row %d carries index %d", i, r.Index)
		}
		if r.Err != "" {
			t.Fatalf("cell %d failed: %s", i, r.Err)
		}
	}
}

func TestSweepCellFailureIsolated(t *testing.T) {
	axes := tinyAxes()
	axes.Configs = []string{"sct", "bogus"}
	axes.MinorBits = []uint{7}
	axes.Seeds = 1
	rows, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Err != "" {
		t.Fatalf("healthy cell failed: %s", rows[0].Err)
	}
	if !strings.Contains(rows[1].Err, "unknown config") {
		t.Fatalf("broken cell error %q", rows[1].Err)
	}

	points := axes.Aggregate(rows)
	if len(points) != 2 {
		t.Fatalf("got %d aggregate points", len(points))
	}
	if points[0].Covert.N != 1 || points[0].Errs != 0 {
		t.Fatalf("healthy point %+v", points[0])
	}
	if points[1].Covert.N != 0 || points[1].Errs != 1 {
		t.Fatalf("broken point %+v", points[1])
	}
}

// TestSweepRejectsNormalizedAxisValues pins the silent-axis fix: minor
// width 0 (remapped to 7 by ctr.NewSC and buildTree) and non-positive
// metadata sizes (remapped to 256 KiB) must be rejected, not run as
// phantom design points.
func TestSweepRejectsNormalizedAxisValues(t *testing.T) {
	for _, tc := range []func(*SweepAxes){
		func(a *SweepAxes) { a.MinorBits = []uint{0} },
		func(a *SweepAxes) { a.MinorBits = []uint{7, 0} },
		func(a *SweepAxes) { a.MinorBits = []uint{17} },
		func(a *SweepAxes) { a.MetaKB = []int{0} },
		func(a *SweepAxes) { a.MetaKB = []int{-64} },
	} {
		axes := tinyAxes()
		tc(&axes)
		if err := axes.Validate(); err == nil {
			t.Fatalf("axes %+v accepted", axes)
		}
		if _, err := Sweep(context.Background(), axes, 1); err == nil {
			t.Fatalf("Sweep accepted axes %+v", axes)
		}
	}
	if err := tinyAxes().Validate(); err != nil {
		t.Fatalf("valid axes rejected: %v", err)
	}
}

// TestSweepSGXMinorCollapse pins the phantom-variation fix: sgx ignores
// MinorBits (MoC counters, SIT's hardwired 56-bit counters), so the
// minor axis collapses to one marked cell instead of emitting rows
// labeled as different widths that ran identical machines.
func TestSweepSGXMinorCollapse(t *testing.T) {
	axes := tinyAxes()
	axes.Configs = []string{"sct", "sgx"}
	axes.MinorBits = []uint{6, 7}
	axes.Seeds = 1
	cells := axes.Cells()
	var sct, sgx int
	for _, c := range cells {
		switch c.Config {
		case "sct":
			sct++
			if c.MinorNA {
				t.Fatalf("sct cell marked MinorNA: %+v", c)
			}
		case "sgx":
			sgx++
			if !c.MinorNA || c.MinorLabel() != "na" {
				t.Fatalf("sgx cell not collapsed: %+v", c)
			}
		}
	}
	if sct != 2 || sgx != 1 {
		t.Fatalf("got %d sct / %d sgx cells, want 2/1", sct, sgx)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d carries index %d after collapse", i, c.Index)
		}
	}

	rows, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	points := axes.Aggregate(rows)
	if len(points) != 3 {
		t.Fatalf("got %d aggregate points, want 3 (sct×2 minors + sgx×na): %+v", len(points), points)
	}
	last := points[len(points)-1]
	if last.Config != "sgx" || last.MinorLabel() != "na" || last.Covert.N != 1 {
		t.Fatalf("sgx aggregate %+v", last)
	}
	rec := rows[len(rows)-1].CSVRecord()
	if rec[0] != "sgx" || rec[1] != "na" {
		t.Fatalf("sgx CSV record %v", rec)
	}
}

// TestSweepOverrides: Set overrides reach every cell's design point and
// are vetted up front.
func TestSweepOverrides(t *testing.T) {
	axes := tinyAxes()
	axes.MinorBits = []uint{7}
	axes.Seeds = 1
	plain, err := Sweep(context.Background(), axes, 1)
	if err != nil {
		t.Fatal(err)
	}
	axes.Set = []string{"QueueDelay=80"}
	slow, err := Sweep(context.Background(), axes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].CyclesPerBit == slow[0].CyclesPerBit {
		t.Fatal("QueueDelay override did not reach the cell's machine")
	}

	axes.Set = []string{"NoSuchField=1"}
	if _, err := Sweep(context.Background(), axes, 1); err == nil {
		t.Fatal("unknown override field accepted")
	}
	axes.Set = []string{"broken"}
	if _, err := Sweep(context.Background(), axes, 1); err == nil {
		t.Fatal("malformed override accepted")
	}
}

// TestSweepLongRecords checks the long-format rendering: three metric
// records per healthy cell, one err record for a failed one.
func TestSweepLongRecords(t *testing.T) {
	row := SweepRow{
		SweepCell:       SweepCell{Config: "sct", MinorBits: 7, MetaKB: 256, Rep: 1, Seed: 5},
		CovertAccuracy:  0.75,
		CyclesPerBit:    1234.5,
		MonitorAccuracy: 1,
	}
	recs := row.LongRecords()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %v", len(recs), recs)
	}
	if len(recs[0]) != len(LongHeader()) {
		t.Fatalf("record width %d != header width %d", len(recs[0]), len(LongHeader()))
	}
	if recs[0][6] != "covert_accuracy" || recs[0][7] != "0.7500" {
		t.Fatalf("covert record %v", recs[0])
	}
	if recs[1][6] != "cycles_per_bit" || recs[1][7] != "1234.5" {
		t.Fatalf("cycles record %v", recs[1])
	}

	row.Err = "boom"
	recs = row.LongRecords()
	if len(recs) != 1 || recs[0][6] != "err" || recs[0][7] != "boom" {
		t.Fatalf("err records %v", recs)
	}
}

func TestSweepSeedsPerturbCells(t *testing.T) {
	axes := tinyAxes()
	cells := axes.Cells()
	seen := map[uint64]bool{}
	for _, c := range cells {
		if seen[c.Seed] {
			t.Fatalf("derived seed %d repeats across cells", c.Seed)
		}
		seen[c.Seed] = true
	}
	axes2 := axes
	axes2.Seed = axes.Seed + 1
	if axes2.Cells()[0].Seed == cells[0].Seed {
		t.Fatal("base seed does not perturb cell seeds")
	}
}
