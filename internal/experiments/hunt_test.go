package experiments

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
)

func huntTestAxes() HuntAxes {
	return HuntAxes{
		Configs:   []string{"sct", "ht"},
		Programs:  2,
		Pairs:     2,
		Ops:       32,
		SecretLen: 8,
		Seed:      9,
	}
}

// TestHuntWorkerCountInvariant is the hunt's core execution contract:
// verdict rows are a pure function of the axes, byte-identical for any
// -par worker count.
func TestHuntWorkerCountInvariant(t *testing.T) {
	axes := huntTestAxes()
	base, err := Hunt(context.Background(), axes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(axes.Cells()) {
		t.Fatalf("rows: %d, want %d", len(base), len(axes.Cells()))
	}
	diverged := 0
	for _, r := range base {
		if r.Err != "" {
			t.Fatalf("cell %d failed: %s", r.Index, r.Err)
		}
		if r.Diverged {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("no cell diverged — the fuzzer found nothing on leaky baselines")
	}
	for _, workers := range []int{2, 7} {
		rows, err := Hunt(context.Background(), axes, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, rows) {
			t.Fatalf("workers=%d rows differ from workers=1", workers)
		}
	}
}

// TestHuntCheckpointResume: an interrupted hunt resumes to the same
// bytes, and a checkpoint from different axes is refused.
func TestHuntCheckpointResume(t *testing.T) {
	axes := huntTestAxes()
	dir := t.TempDir()
	path := filepath.Join(dir, "hunt.ckpt")

	full, err := Hunt(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}

	// First run: record everything.
	rows1, err := HuntOpts(context.Background(), axes, SweepOptions{Workers: 2, Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, rows1) {
		t.Fatal("checkpointed run differs from plain run")
	}
	// Resume with everything complete: no cell re-runs, same bytes.
	rows2, err := HuntOpts(context.Background(), axes, SweepOptions{Workers: 2, Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, rows2) {
		t.Fatal("resumed run differs")
	}

	other := axes
	other.Seed++
	if _, err := OpenHuntCheckpoint(path, other); err == nil {
		t.Fatal("checkpoint from different axes accepted")
	}
	if _, err := OpenCheckpoint(path, DefaultSweepAxes()); err == nil {
		t.Fatal("hunt checkpoint accepted as a sweep checkpoint")
	}
}

// TestHuntDispatchByteIdentical: the distributed path returns the same
// bytes as the in-process pool for any worker fleet size, routed
// through the Kind-dispatching session initializer the worker binary
// uses.
func TestHuntDispatchByteIdentical(t *testing.T) {
	axes := huntTestAxes()
	want, err := Hunt(context.Background(), axes, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3} {
		rows, err := runLocalHuntDispatch(context.Background(), axes, SweepOptions{}, DispatchOptions{}, n)
		if err != nil {
			t.Fatalf("workers=%d: %v", n, err)
		}
		if !reflect.DeepEqual(want, rows) {
			t.Fatalf("workers=%d dispatch rows differ from in-process", n)
		}
	}
}

// TestJobSessionRouting: NewJobSession accepts tagged hunt and sweep
// jobs plus legacy untagged sweep jobs, and refuses unknown kinds.
func TestJobSessionRouting(t *testing.T) {
	sweepSpec, err := json.Marshal(SweepJob{
		Kind: "sweep", Axes: DefaultSweepAxes().normalized(),
		Fingerprint: DefaultSweepAxes().Fingerprint(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewJobSession(sweepSpec); err != nil {
		t.Fatalf("tagged sweep job: %v", err)
	}

	legacy, err := json.Marshal(SweepJob{
		Axes:        DefaultSweepAxes().normalized(),
		Fingerprint: DefaultSweepAxes().Fingerprint(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewJobSession(legacy); err != nil {
		t.Fatalf("legacy untagged sweep job: %v", err)
	}

	ha := huntTestAxes()
	huntSpec, err := json.Marshal(HuntJob{Kind: "hunt", Axes: ha, Fingerprint: ha.Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewJobSession(huntSpec); err != nil {
		t.Fatalf("hunt job: %v", err)
	}

	if _, err := NewJobSession(json.RawMessage(`{"Kind":"wibble"}`)); err == nil {
		t.Fatal("unknown job kind accepted")
	}

	// Version skew: a worker expanding a different grid refuses the job.
	skew := ha
	skew.Programs++
	skewSpec, err := json.Marshal(HuntJob{Kind: "hunt", Axes: skew, Fingerprint: ha.Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewJobSession(skewSpec); err == nil {
		t.Fatal("fingerprint-skewed hunt job accepted")
	}
}

// TestHuntFingerprintCoversIdentity: every axis that changes what runs
// changes the fingerprint.
func TestHuntFingerprintCoversIdentity(t *testing.T) {
	base := huntTestAxes()
	fp := base.Fingerprint()
	mutations := map[string]HuntAxes{}
	m := base
	m.Configs = []string{"sct"}
	mutations["configs"] = m
	m = base
	m.Programs = 3
	mutations["programs"] = m
	m = base
	m.Pairs = 1
	mutations["pairs"] = m
	m = base
	m.Ops = 16
	mutations["ops"] = m
	m = base
	m.SecretLen = 4
	mutations["secretlen"] = m
	m = base
	m.Seed++
	mutations["seed"] = m
	m = base
	m.Set = []string{"MinorBits=2"}
	mutations["set"] = m
	for name, ax := range mutations {
		if ax.Fingerprint() == fp {
			t.Errorf("%s mutation did not change the fingerprint", name)
		}
	}
}
