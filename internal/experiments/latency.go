package experiments

import (
	"context"
	"fmt"
	"sort"

	"metaleak/internal/arch"
	"metaleak/internal/core"
	"metaleak/internal/machine"
	"metaleak/internal/secmem"
	"metaleak/internal/stats"
)

// Table1 prints the simulated and SGX configurations (the reproduction's
// Table I).
func Table1(o Options) (*Result, error) { return SpecTable1(o).Run(context.Background(), 1) }

// SpecTable1 declares Table1 as a spec: one pure trial, nothing to merge.
func SpecTable1(o Options) *Spec {
	return single("table1", "Simulated secure processors and the SGX configuration",
		func() (*Result, error) { return table1(o) })
}

func table1(o Options) (*Result, error) {
	r := &Result{
		ID:     "table1",
		Title:  "Simulated secure processors and the SGX configuration",
		Header: []string{"config", "encryption", "integrity tree", "secure region", "meta cache"},
	}
	row := func(dp machine.DesignPoint) []string {
		enc := fmt.Sprintf("%s counters", dp.Counter)
		if dp.Counter == machine.CounterSC {
			enc = fmt.Sprintf("SC (64-bit major, %d-bit minors)", dp.MinorBits)
		}
		if dp.Counter == machine.CounterMoC {
			enc = fmt.Sprintf("MoC (%d-bit monolithic)", dp.MoCBits)
		}
		tree := fmt.Sprintf("%s, arities %v", dp.Tree, dp.TreeArities)
		region := fmt.Sprintf("%d MiB", dp.SecurePages*arch.PageSize/(1<<20))
		meta := fmt.Sprintf("%d KiB, %d-way", dp.MetaKB, dp.MetaWays)
		return []string{dp.Name, enc, tree, region, meta}
	}
	for _, dp := range []machine.DesignPoint{machine.ConfigSCT(), machine.ConfigHT(), machine.ConfigSGX()} {
		r.Rows = append(r.Rows, row(dp))
	}
	r.PaperClaim = "Table I: SCT 32/16-ary 6-level over 64 GB; HT 8-ary BMT; SGX SIT 8-ary 4-level over EPC"
	r.Measured = "configurations reproduced structurally"
	return r, nil
}

// pathBuckets drives one machine through a mixed access pattern and
// collects read latencies per Fig. 5 path class.
func pathBuckets(dp machine.DesignPoint, samples int, seed uint64) map[string]sample {
	dp.Seed = seed
	sys := machine.NewSystem(dp)
	rng := arch.NewRNG(seed ^ 0xf16)
	buckets := make(map[string]sample)
	record := func(key string, lat arch.Cycles) {
		buckets[key] = append(buckets[key], lat)
	}
	classify := func(rep secmem.Report) string {
		switch rep.Path {
		case secmem.PathCacheHit:
			return "path1 (cache hit)"
		case secmem.PathCounterHit:
			return "path2 (counter hit)"
		case secmem.PathTreeHit:
			return "path3 (tree leaf hit)"
		default:
			return fmt.Sprintf("path4 (%d tree levels loaded)", rep.TreeLevelsLoaded)
		}
	}
	limit := sys.SecurePages()
	groups := samples / 4
	if groups < 1 {
		groups = 1
	}
	for g := 0; g < groups; g++ {
		// A far page: exercises path 4 with a history-dependent number of
		// levels loaded.
		var base arch.PageID
		for {
			base = arch.PageID(rng.Intn(limit - 2))
			if sys.Owner(base) == -1 && sys.Owner(base+1) == -1 {
				break
			}
		}
		if err := sys.AllocFrame(0, base); err != nil {
			continue
		}
		if err := sys.AllocFrame(0, base+1); err != nil {
			continue
		}
		b := base.Block(0)
		_, res := sys.Read(0, b)
		record(classify(res.Report), res.Latency)
		// A block with a different counter block under the now-cached leaf:
		// the adjacent page for page-granular counter blocks (SC), or the
		// next counter-octet of the same page for SIT/MoC. Path 3.
		_, res = sys.Read(0, (base + 1).Block(0))
		record(classify(res.Report), res.Latency)
		_, res = sys.Read(0, base.Block(8))
		record(classify(res.Report), res.Latency)
		// Re-read: path 1.
		_, res = sys.Read(0, b)
		record(classify(res.Report), res.Latency)
		// Flush the data line only: path 2.
		sys.Flush(0, b)
		_, res = sys.Read(0, b)
		record(classify(res.Report), res.Latency)
	}
	return buckets
}

func bucketResult(id, title string, buckets map[string]sample) *Result {
	r := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"access path", "samples", "min", "mean", "p95"},
	}
	// Stable row order: path1..path4 by name.
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := buckets[k]
		r.Rows = append(r.Rows, []string{
			k,
			fmt.Sprintf("%d", len(s)),
			fmt.Sprintf("%d", s.percentile(0)),
			cyc(s.mean()),
			fmt.Sprintf("%d", s.percentile(0.95)),
		})
	}
	return r
}

// Fig6 reproduces the latency distributions across access paths on the
// simulated SCT design (and reports the HT design alongside, per §V),
// including the §V "Memory Write Latency" characterization.
func Fig6(o Options) (*Result, error) { return SpecFig6(o).Run(context.Background(), 1) }

// SpecFig6 declares Fig6 as three independent trials — the SCT sweep,
// the HT sweep, and the write-path characterization each drive their
// own machine — merged into the figure's single table.
func SpecFig6(o Options) *Spec {
	o = o.withDefaults()
	const title = "Read latency across metadata access paths (simulated SCT)"
	return &Spec{
		ID:    "fig6",
		Title: title,
		Trials: []Trial{
			{Name: "fig6/sct", Run: func() (any, error) {
				return pathBuckets(machine.ConfigSCT(), o.Samples, o.Seed+6), nil
			}},
			{Name: "fig6/ht", Run: func() (any, error) {
				return pathBuckets(machine.ConfigHT(), o.Samples/2, o.Seed+66), nil
			}},
			{Name: "fig6/write", Run: func() (any, error) {
				warm, cold := writeBuckets(machine.ConfigSCT(), o.Samples/4, o.Seed+67)
				return [2]stats.Sample{warm, cold}, nil
			}},
		},
		Merge: func(parts []any) (*Result, error) {
			buckets := parts[0].(map[string]sample)
			ht := parts[1].(map[string]sample)
			wc := parts[2].([2]stats.Sample)
			r := bucketResult("fig6", title, buckets)
			r.Notes = append(r.Notes, "HT design (same experiment):")
			for _, row := range bucketResult("", "", ht).Rows {
				r.Notes = append(r.Notes, fmt.Sprintf("  %-32s mean %s", row[0], row[3]))
			}
			// §V Memory Write Latency: the write path exhibits the same
			// counter/tree-dependent variation as reads.
			warm, cold := wc[0], wc[1]
			r.Notes = append(r.Notes,
				fmt.Sprintf("write path, counter on-chip:  %s", warm.Summary()),
				fmt.Sprintf("write path, counter+tree cold: %s", cold.Summary()))
			r.PaperClaim = "distinct bands ~30..450 cycles; ~450 when all tree levels miss; HT similar; writes show the same variation"
			r.Measured = summarizeBands(buckets)
			return r, nil
		},
	}
}

// writeBuckets measures write-through latencies with warm vs. cold
// metadata (the §V write-path characterization).
func writeBuckets(dp machine.DesignPoint, samples int, seed uint64) (warm, cold stats.Sample) {
	dp.Seed = seed
	sys := machine.NewSystem(dp)
	rng := arch.NewRNG(seed ^ 0x6f17)
	for i := 0; i < samples; i++ {
		var p arch.PageID
		for {
			p = arch.PageID(rng.Intn(sys.SecurePages()))
			if sys.Owner(p) == -1 {
				break
			}
		}
		if err := sys.AllocFrame(0, p); err != nil {
			continue
		}
		b := p.Block(0)
		res := sys.WriteThrough(0, b, [arch.BlockSize]byte{byte(i)})
		cold.Add(res.Latency)
		res = sys.WriteThrough(0, b, [arch.BlockSize]byte{byte(i + 1)})
		warm.Add(res.Latency)
	}
	return warm, cold
}

// Fig7 is Fig6 on the SGX (SIT) configuration.
func Fig7(o Options) (*Result, error) { return SpecFig7(o).Run(context.Background(), 1) }

// SpecFig7 declares Fig7: one machine, one trial.
func SpecFig7(o Options) *Spec {
	o = o.withDefaults()
	return single("fig7", "Read latency across access paths (SGX/SIT calibration)",
		func() (*Result, error) {
			buckets := pathBuckets(machine.ConfigSGX(), o.Samples, o.Seed+7)
			r := bucketResult("fig7", "Read latency across access paths (SGX/SIT calibration)", buckets)
			r.PaperClaim = "bands ~150..700 cycles; ~250 with tree leaf cached, ~650 with all levels missed"
			r.Measured = summarizeBands(buckets)
			return r, nil
		})
}

func summarizeBands(buckets map[string]sample) string {
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s mean=%s; ", k, cyc(buckets[k].mean()))
	}
	return out
}

// Fig8 reproduces the memory read latency impact of tree counter
// overflow: a timed read to a block in a bank carrying the subtree
// re-hash traffic lands in a far slower band when the preceding write
// overflowed the tree minor.
func Fig8(o Options) (*Result, error) { return SpecFig8(o).Run(context.Background(), 1) }

// SpecFig8 declares Fig8: the overflow cycles share one counter
// monitor's machine history, so it stays one trial.
func SpecFig8(o Options) *Spec {
	return single("fig8", "Read latency with and without tree counter overflow (SCT)",
		func() (*Result, error) { return fig8(o) })
}

func fig8(o Options) (*Result, error) {
	o = o.withDefaults()
	dp := machine.ConfigSCT()
	dp.Seed = o.Seed + 8
	dp.FastCrypto = true // Fig8 needs thousands of saturating writes
	sys := machine.NewSystem(dp)
	a := core.NewAttacker(sys.System, sys.Ctrl, 0, false)
	cm, err := a.NewCounterMonitor(arch.PageID(1<<12), -1)
	if err != nil {
		return nil, err
	}
	cm.Calibrate()

	// The monitor's Bump already performs the paper's measurement: a timed
	// read (to a block sharing a bank with the subtree's counter blocks)
	// interleaved with the write activity. Classify each bump's probe
	// latency by the ground-truth overflow position in the cycle.
	cycles := o.Samples / 100
	if cycles < 8 {
		cycles = 8
	}
	var noOv, ov sample
	max := int(cm.MinorMax())
	for c := 0; c < cycles; c++ {
		// Post-overflow state is 1; bump to saturation, sampling normal
		// reads along the way.
		for k := 1; k < max; k++ {
			_, lat := cm.Bump()
			if k%16 == 0 {
				noOv = append(noOv, lat)
			}
		}
		// The saturating write is in place; the next bump overflows.
		_, lat := cm.Bump()
		ov = append(ov, lat)
	}
	r := &Result{
		ID:     "fig8",
		Title:  "Read latency with and without tree counter overflow (SCT)",
		Header: []string{"condition", "samples", "min", "mean", "p95"},
		Rows: [][]string{
			{"no overflow", fmt.Sprintf("%d", len(noOv)), fmt.Sprintf("%d", noOv.percentile(0)), cyc(noOv.mean()), fmt.Sprintf("%d", noOv.percentile(0.95))},
			{"overflow", fmt.Sprintf("%d", len(ov)), fmt.Sprintf("%d", ov.percentile(0)), cyc(ov.mean()), fmt.Sprintf("%d", ov.percentile(0.95))},
		},
	}
	// Render the two distributions (the textual analogue of the figure).
	all := append(stats.Sample{}, stats.Sample(noOv)...)
	all = append(all, stats.Sample(ov)...)
	r.Notes = append(r.Notes, "combined latency distribution:", stats.NewHistogram(all, 12).ASCII(36))
	r.PaperClaim = "two distinct latency bands ~2000 cycles apart"
	r.Measured = fmt.Sprintf("no-overflow mean=%s, overflow mean=%s (gap %.0f cycles)",
		cyc(noOv.mean()), cyc(ov.mean()), ov.mean()-noOv.mean())
	return r, nil
}
