package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"metaleak/internal/arch"
	"metaleak/internal/dispatch"
	"metaleak/internal/hunt"
	"metaleak/internal/machine"
	"metaleak/internal/runner"
)

// The hunt engine drives the differential leakage fuzzer
// (internal/hunt) through the same spec/trial/merge harness as the
// sweep: a deterministic grid of (config x program x secret pair)
// cells, each an independent trial, each yielding one verdict row. The
// execution contract is identical — rows are a pure function of the
// axes and the cell index, so any -par worker count, any steal
// schedule, and any resume produce byte-identical output.

// HuntAxes enumerates the differential-fuzzing grid of `metaleak hunt`:
// every config is crossed with Programs generated victim programs and
// Pairs secret pairs per program.
type HuntAxes struct {
	Configs []string // base design points: "sct", "ht", "sgx"
	// Set holds "Field=value" DesignPoint overrides applied to every
	// cell (the sweep's -set mechanism, including Contract=... and
	// FaultSpec=...). Part of the grid's identity and fingerprint.
	Set []string
	// Programs is the number of generated victim programs per config;
	// Pairs the number of differential secret pairs per program.
	Programs int
	Pairs    int
	// Ops is each program's operation count; SecretLen each secret's
	// byte length.
	Ops       int
	SecretLen int
	Seed      uint64
}

// DefaultHuntAxes is the smoke grid: one config, a handful of programs.
func DefaultHuntAxes() HuntAxes {
	return HuntAxes{
		Configs:   []string{"sct"},
		Programs:  4,
		Pairs:     2,
		Ops:       64,
		SecretLen: 8,
	}
}

// normalized applies the defaults Hunt applies, so fingerprints agree
// with what actually runs.
func (a HuntAxes) normalized() HuntAxes {
	d := DefaultHuntAxes()
	if a.Programs <= 0 {
		a.Programs = d.Programs
	}
	if a.Pairs <= 0 {
		a.Pairs = d.Pairs
	}
	if a.Ops <= 0 {
		a.Ops = d.Ops
	}
	if a.SecretLen <= 0 {
		a.SecretLen = d.SecretLen
	}
	return a
}

// Validate rejects grids that cannot mean anything.
func (a HuntAxes) Validate() error {
	if len(a.Configs) == 0 {
		return fmt.Errorf("hunt: no configs")
	}
	return nil
}

// HuntCell is one point of the expanded grid: one program run twice
// under one secret pair on one machine seed.
type HuntCell struct {
	Index   int // position in deterministic grid order
	Config  string
	Program int
	Pair    int
	// ProgSeed generates the victim program, PairSeed the secret pair,
	// Seed the machine. All three derive from the base seed and the axis
	// indices, never from completion order.
	ProgSeed uint64
	PairSeed uint64
	Seed     uint64
}

// Cells expands the grid in deterministic nested order (configs
// outermost, pairs innermost). Programs are shared across configs by
// index — the same ProgSeed regardless of config — so per-config rows
// for the same program are directly comparable.
func (a HuntAxes) Cells() []HuntCell {
	a = a.normalized()
	var cells []HuntCell
	for ci, cfg := range a.Configs {
		for p := 0; p < a.Programs; p++ {
			for q := 0; q < a.Pairs; q++ {
				cells = append(cells, HuntCell{
					Index:    len(cells),
					Config:   cfg,
					Program:  p,
					Pair:     q,
					ProgSeed: arch.NewRNG(a.Seed, 0x50, uint64(p)).Uint64(),
					PairSeed: arch.NewRNG(a.Seed, 0x5E, uint64(p), uint64(q)).Uint64(),
					Seed:     arch.NewRNG(a.Seed, 0x3A, uint64(ci), uint64(p), uint64(q)).Uint64(),
				})
			}
		}
	}
	return cells
}

// HuntRow is one cell's verdict. Err is non-empty when the cell failed;
// the rest of the grid is unaffected.
type HuntRow struct {
	HuntCell
	hunt.Verdict
	Err         string `json:",omitempty"`
	Attempts    int    `json:",omitempty"`
	Quarantined bool   `json:",omitempty"`
}

// HuntCSVHeader returns the column names of HuntRow.CSVRecord.
func HuntCSVHeader() []string {
	return []string{"config", "program", "pair", "prog_seed", "pair_seed", "seed",
		"diverged", "channel", "first", "first_components", "components", "count",
		"violation", "missing", "obs_a", "obs_b", "contract", "err", "attempts", "quarantined"}
}

// CSVRecord renders the row for `metaleak hunt`'s CSV output.
func (r HuntRow) CSVRecord() []string {
	diverged := "false"
	if r.Diverged {
		diverged = "true"
	}
	quarantined := ""
	if r.Quarantined {
		quarantined = "true"
	}
	attempts := ""
	if r.Attempts > 0 {
		attempts = fmt.Sprintf("%d", r.Attempts)
	}
	return []string{
		r.Config,
		fmt.Sprintf("%d", r.Program),
		fmt.Sprintf("%d", r.Pair),
		fmt.Sprintf("%d", r.ProgSeed),
		fmt.Sprintf("%d", r.PairSeed),
		fmt.Sprintf("%d", r.Seed),
		diverged,
		r.Channel,
		fmt.Sprintf("%d", r.First),
		r.FirstComponents,
		r.Components,
		fmt.Sprintf("%d", r.Count),
		r.Violation,
		r.Missing,
		fmt.Sprintf("%d", r.ObsA),
		fmt.Sprintf("%d", r.ObsB),
		r.Contract,
		r.Err,
		attempts,
		quarantined,
	}
}

// runHuntCell runs one differential pair: regenerate the program and
// secrets from the cell's seeds, build the design point (overrides
// before the machine seed, which the cell owns), and judge the pair
// under the design's contract.
func runHuntCell(c HuntCell, a HuntAxes, ovs []machine.FieldOverride) (HuntRow, error) {
	row := HuntRow{HuntCell: c}
	base, _, err := sweepConfig(c.Config)
	if err != nil {
		return row, err
	}
	if err := machine.ApplyOverrides(&base, ovs); err != nil {
		return row, err
	}
	base.Seed = c.Seed
	prog := hunt.Generate(c.ProgSeed, a.Ops)
	sa, sb := hunt.Secrets(c.PairSeed, a.SecretLen)
	v, err := hunt.RunPair(base, prog, sa, sb)
	if err != nil {
		return row, err
	}
	row.Verdict = v
	return row, nil
}

// HuntSummary aggregates a hunt's rows: divergence and violation
// totals, and the channel census the acceptance criteria key on.
type HuntSummary struct {
	Cells      int
	Diverged   int
	Violations int
	Missing    int
	Errs       int
	// Channels counts classified divergences per channel name, rendered
	// in hunt.Channels() priority order by the CLI.
	Channels map[string]int
}

// Summarize folds the rows.
func Summarize(rows []HuntRow) HuntSummary {
	s := HuntSummary{Cells: len(rows), Channels: map[string]int{}}
	for _, r := range rows {
		if r.Err != "" {
			s.Errs++
			continue
		}
		if r.Diverged {
			s.Diverged++
			s.Channels[r.Channel]++
		}
		if r.Violation != "" {
			s.Violations++
		}
		if r.Missing != "" {
			s.Missing++
		}
	}
	return s
}

// huntPrep mirrors sweepPrep: normalize, validate, vet overrides,
// expand, and open the checkpoint.
type huntPrelude struct {
	axes    HuntAxes
	ovs     []machine.FieldOverride
	cells   []HuntCell
	cp      *HuntCheckpoint
	done    map[int]HuntRow
	pending []int
}

func huntPrep(axes HuntAxes, opts SweepOptions) (*huntPrelude, error) {
	axes = axes.normalized()
	if err := axes.Validate(); err != nil {
		return nil, err
	}
	ovs, err := machine.ParseOverrides(axes.Set)
	if err != nil {
		return nil, fmt.Errorf("hunt: %w", err)
	}
	scratch := machine.ConfigSCT()
	if err := machine.ApplyOverrides(&scratch, ovs); err != nil {
		return nil, fmt.Errorf("hunt: %w", err)
	}
	prep := &huntPrelude{axes: axes, ovs: ovs, cells: axes.Cells(), done: map[int]HuntRow{}}

	if opts.Checkpoint != "" {
		cp, err := OpenHuntCheckpoint(opts.Checkpoint, axes)
		if err != nil {
			return nil, err
		}
		prep.cp = cp
		if opts.Faults != nil {
			cp.SetTamperer(opts.Faults.AfterAppend)
		}
		if d := cp.Discarded(); d != "" && opts.Log != nil {
			opts.Log("checkpoint %s: discarded torn trailing line (%d bytes, crash mid-append); its cell will re-run", opts.Checkpoint, len(d))
		}
		prep.done = cp.Completed()
	}
	for i := range prep.cells {
		if _, ok := prep.done[i]; !ok {
			prep.pending = append(prep.pending, i)
		}
	}
	return prep, nil
}

// settledHuntRow mirrors settledRow for hunt cells.
func settledHuntRow(c HuntCell, res any, err error, pol runner.Policy) (HuntRow, bool) {
	switch {
	case err == nil:
		return res.(HuntRow), true
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return HuntRow{}, false
	default:
		row := HuntRow{HuntCell: c, Err: err.Error()}
		var te *runner.TrialError
		if errors.As(err, &te) {
			row.Err = te.Err.Error()
			if pol.Retries > 0 {
				row.Attempts = te.Attempts
				row.Quarantined = true
			}
		}
		return row, true
	}
}

// Hunt runs the whole grid with at most `workers` cells in flight.
func Hunt(ctx context.Context, axes HuntAxes, workers int) ([]HuntRow, error) {
	return HuntOpts(ctx, axes, SweepOptions{Workers: workers})
}

// HuntOpts runs the grid under the full execution policy — the hunt
// twin of SweepOpts, sharing its options type because the policy knobs
// (workers, checkpoint, deadlines, retries, harness faults) are
// engine-independent.
func HuntOpts(ctx context.Context, axes HuntAxes, opts SweepOptions) ([]HuntRow, error) {
	prep, err := huntPrep(axes, opts)
	if err != nil {
		return nil, err
	}
	axes, cells, cp, done := prep.axes, prep.cells, prep.cp, prep.done
	ovs := prep.ovs
	if cp != nil {
		defer cp.Close()
	}

	pol := runner.Policy{
		Workers: opts.Workers,
		Timeout: opts.Timeout,
		Retries: opts.Retries,
		Backoff: opts.Backoff,
	}
	pending := prep.pending
	trials := make([]runner.Trial, len(pending))
	for ti, i := range pending {
		c := cells[i]
		trials[ti] = opts.Faults.WrapTrial(c.Index, func() (any, error) {
			return runHuntCell(c, axes, ovs)
		})
	}
	var onDone func(int, any, error)
	if cp != nil {
		onDone = func(ti int, res any, err error) {
			if row, ok := settledHuntRow(cells[pending[ti]], res, err, pol); ok {
				cp.Append(row)
			}
		}
	}
	parts, errs := runner.RunAllPolicy(ctx, trials, pol, onDone)

	rows := make([]HuntRow, 0, len(cells))
	interrupted := false
	ti := 0
	for i := range cells {
		if row, ok := done[i]; ok {
			rows = append(rows, row)
			continue
		}
		row, ok := settledHuntRow(cells[i], parts[ti], errs[ti], pol)
		ti++
		if !ok {
			interrupted = true
			continue
		}
		rows = append(rows, row)
	}
	if cp != nil {
		if err := cp.Err(); err != nil {
			return rows, err
		}
	}
	if interrupted {
		return rows, ctx.Err()
	}
	return rows, nil
}

// HuntJob is the opaque job spec a hunt coordinator ships to workers;
// Kind routes it (NewJobSession) so one worker binary serves both
// engines.
type HuntJob struct {
	Kind        string // "hunt"
	Axes        HuntAxes
	Fingerprint string
	Timeout     time.Duration
	HarnessSpec string
}

// NewHuntSession initializes a worker-side dispatch session from a
// HuntJob payload.
func NewHuntSession(spec json.RawMessage) (dispatch.Session, error) {
	var job HuntJob
	if err := json.Unmarshal(spec, &job); err != nil {
		return dispatch.Session{}, fmt.Errorf("hunt job: %w", err)
	}
	h, err := harnessFromSpec(job.HarnessSpec)
	if err != nil {
		return dispatch.Session{}, fmt.Errorf("hunt job: %w", err)
	}
	prep, err := huntPrep(job.Axes, SweepOptions{})
	if err != nil {
		return dispatch.Session{}, err
	}
	if fp := prep.axes.Fingerprint(); fp != job.Fingerprint {
		return dispatch.Session{}, fmt.Errorf(
			"hunt job: grid fingerprint mismatch (coordinator %.12s…, worker %.12s…): worker binary expands a different grid — version skew",
			job.Fingerprint, fp)
	}
	cells, ovs, axes := prep.cells, prep.ovs, prep.axes
	run := func(ctx context.Context, cell int) (json.RawMessage, error) {
		if cell < 0 || cell >= len(cells) {
			return nil, fmt.Errorf("leased cell %d outside grid of %d", cell, len(cells))
		}
		c := cells[cell]
		trial := h.WrapTrial(c.Index, func() (any, error) {
			return runHuntCell(c, axes, ovs)
		})
		res, errs := runner.RunAllPolicy(ctx, []runner.Trial{trial},
			runner.Policy{Workers: 1, Timeout: job.Timeout}, nil)
		if errs[0] != nil {
			return nil, attemptCause(errs[0])
		}
		payload, err := json.Marshal(res[0].(HuntRow))
		if err != nil {
			return nil, err
		}
		return payload, nil
	}
	return dispatch.Session{Run: run, Drop: func(cell int) bool {
		if cell < 0 || cell >= len(cells) {
			return false
		}
		return h.Disconnect(cells[cell].Index)
	}}, nil
}

// HuntDispatch runs the grid distributed, mirroring SweepDispatch:
// work-stealing leases over ln, checkpoint streaming, grid-order rows
// byte-identical to HuntOpts for any worker fleet.
func HuntDispatch(ctx context.Context, axes HuntAxes, opts SweepOptions, dopts DispatchOptions, ln net.Listener) ([]HuntRow, error) {
	prep, err := huntPrep(axes, opts)
	if err != nil {
		ln.Close()
		return nil, err
	}
	if prep.cp != nil {
		defer prep.cp.Close()
	}

	if len(prep.pending) == 0 {
		ln.Close()
		rows := make([]HuntRow, 0, len(prep.cells))
		for i := range prep.cells {
			rows = append(rows, prep.done[i])
		}
		if prep.cp != nil {
			if err := prep.cp.Err(); err != nil {
				return rows, err
			}
		}
		return rows, nil
	}

	job := HuntJob{
		Kind:        "hunt",
		Axes:        prep.axes,
		Fingerprint: prep.axes.Fingerprint(),
		Timeout:     opts.Timeout,
		HarnessSpec: dopts.HarnessSpec,
	}
	spec, err := json.Marshal(job)
	if err != nil {
		ln.Close()
		return nil, err
	}

	retries := opts.Retries
	cells := prep.cells
	co := dispatch.NewCoordinator(spec, prep.pending, dispatch.Options{
		LeaseTimeout: dopts.LeaseTimeout,
		MaxLeases:    1 + retries,
		Token:        dopts.Token,
		Revive:       dopts.Revive,
		RetryBackoff: dopts.RetryBackoff,
		Log:          opts.Log,
		OnSettled: func(cell int, s dispatch.Settled) {
			if prep.cp == nil {
				return
			}
			if row, ok := huntDispatchRow(cells[cell], s, retries); ok {
				prep.cp.Append(row)
			}
		},
	})
	settled, runErr := co.Run(ctx, ln)

	rows := make([]HuntRow, 0, len(cells))
	interrupted := false
	for i := range cells {
		if row, ok := prep.done[i]; ok {
			rows = append(rows, row)
			continue
		}
		s, ok := settled[i]
		if !ok {
			interrupted = true
			continue
		}
		if row, ok := huntDispatchRow(cells[i], s, retries); ok {
			rows = append(rows, row)
		} else {
			interrupted = true
		}
	}
	if prep.cp != nil {
		if err := prep.cp.Err(); err != nil {
			return rows, err
		}
	}
	if runErr != nil {
		return rows, runErr
	}
	if interrupted {
		return rows, ctx.Err()
	}
	return rows, nil
}

// runLocalHuntDispatch is HuntDispatch with n in-process worker
// goroutines attached over loopback TCP, each initializing through the
// same Kind-routing NewJobSession the `metaleak worker` subprocess
// uses — the tests' model of a mixed fleet.
func runLocalHuntDispatch(ctx context.Context, axes HuntAxes, opts SweepOptions, dopts DispatchOptions, n int) ([]HuntRow, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &dispatch.Worker{
			ID:        fmt.Sprintf("hunt-local-%d", i),
			Heartbeat: 50 * time.Millisecond,
			Init:      NewJobSession,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := dispatch.Dial(addr)
			if err != nil {
				return
			}
			w.Run(ctx, conn)
		}()
	}
	rows, err := HuntDispatch(ctx, axes, opts, dopts, ln)
	wg.Wait()
	return rows, err
}

// huntDispatchRow mirrors dispatchRow for hunt cells.
func huntDispatchRow(c HuntCell, s dispatch.Settled, retries int) (HuntRow, bool) {
	if s.Err == "" {
		var row HuntRow
		if err := json.Unmarshal(s.Payload, &row); err != nil {
			row = HuntRow{HuntCell: c, Err: fmt.Sprintf("undecodable result payload: %v", err)}
			if retries > 0 {
				row.Attempts = s.Attempts
				row.Quarantined = true
			}
			return row, true
		}
		return row, true
	}
	if strings.Contains(s.Err, "context canceled") && len(s.Errs) == 1 {
		return HuntRow{}, false
	}
	row := HuntRow{HuntCell: c, Err: s.Err}
	if retries > 0 {
		row.Attempts = s.Attempts
		row.Quarantined = true
	}
	return row, true
}
