package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// tiny returns the smallest options that still run every pipeline.
func tiny() Options {
	return Options{
		Samples:   120,
		Bits:      24,
		Symbols:   4,
		ImageSize: 16,
		ExpBits:   24,
		PrimeBits: 32,
		Trials:    4,
		Seed:      77,
	}
}

func TestRegistryCoversAllPaperArtifacts(t *testing.T) {
	want := []string{
		"table1", "fig6", "fig7", "fig8", "fig11", "fig12", "fig14",
		"fig15", "fig15c", "fig16", "fig17", "fig18",
		"ablctr", "abltree", "ablmeta", "ablsec", "ablminor", "ablnoise",
		"defiso", "defrand", "defladder",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(IDs()), len(want))
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{
		ID:         "x",
		Title:      "T",
		Header:     []string{"a", "bb"},
		Rows:       [][]string{{"1", "2"}},
		Notes:      []string{"note"},
		PaperClaim: "claim",
		Measured:   "measured",
	}
	s := r.String()
	for _, frag := range []string{"== x: T ==", "a", "bb", "note", "claim", "measured"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendering missing %q:\n%s", frag, s)
		}
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d config rows", len(r.Rows))
	}
}

func TestFig6BandsOrdered(t *testing.T) {
	r, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Rows are sorted path1..path4*; means must be increasing across
	// well-populated buckets (tiny buckets carry sampling noise).
	var prev float64 = -1
	for _, row := range r.Rows {
		if atofOrFail(t, row[1]) < 5 {
			continue
		}
		mean := atofOrFail(t, row[3])
		if mean < prev {
			t.Fatalf("band means not monotone: %v", r.Rows)
		}
		prev = mean
	}
	if len(r.Rows) < 4 {
		t.Fatalf("only %d path classes observed", len(r.Rows))
	}
}

func TestFig7BandsOrdered(t *testing.T) {
	r, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for _, row := range r.Rows {
		if atofOrFail(t, row[1]) < 5 {
			continue
		}
		mean := atofOrFail(t, row[3])
		if mean < prev {
			t.Fatalf("SGX band means not monotone: %v", r.Rows)
		}
		prev = mean
	}
}

func TestFig8GapIsLarge(t *testing.T) {
	r, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	normal := atofOrFail(t, r.Rows[0][3])
	overflow := atofOrFail(t, r.Rows[1][3])
	if overflow < normal+1000 {
		t.Fatalf("overflow band %v not well above normal %v", overflow, normal)
	}
}

func TestFig11Accuracy(t *testing.T) {
	r, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if acc := pctOrFail(t, row[3]); acc < 0.85 {
			t.Fatalf("%s covert accuracy %.2f < 0.85", row[0], acc)
		}
	}
}

func TestFig12MonotoneCoverage(t *testing.T) {
	r, err := Fig12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 4 {
		t.Fatalf("only %d levels", len(r.Rows))
	}
}

func TestFig14Accuracy(t *testing.T) {
	r, err := Fig14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if acc := pctOrFail(t, r.Rows[0][1]); acc < 0.7 {
		t.Fatalf("MetaLeak-C accuracy %.2f", acc)
	}
}

func TestFig15Accuracy(t *testing.T) {
	r, err := Fig15(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if acc := pctOrFail(t, row[2]); acc < 0.85 {
			t.Fatalf("stealing accuracy %.2f for %s", acc, row[0])
		}
	}
}

func TestFig16Accuracy(t *testing.T) {
	r, err := Fig16(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if acc := pctOrFail(t, row[3]); acc < 0.8 {
			t.Fatalf("%s exponent accuracy %.2f", row[0], acc)
		}
	}
}

func TestFig17Accuracy(t *testing.T) {
	r, err := Fig17(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if acc := pctOrFail(t, r.Rows[0][2]); acc < 0.8 {
		t.Fatalf("shift/sub accuracy %.2f", acc)
	}
}

func TestFig18Monotoneish(t *testing.T) {
	r, err := Fig18(tiny())
	if err != nil {
		t.Fatal(err)
	}
	first := pctOrFail(t, r.Rows[0][1])
	last := pctOrFail(t, r.Rows[len(r.Rows)-1][1])
	if last <= first {
		t.Fatalf("eviction probability did not rise: %.2f -> %.2f", first, last)
	}
}

func TestAblations(t *testing.T) {
	for _, id := range []string{"ablctr", "abltree", "ablmeta", "ablsec", "ablminor"} {
		r, err := Registry[id](tiny()).Run(context.Background(), 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.Rows) < 3 {
			t.Fatalf("%s: only %d rows", id, len(r.Rows))
		}
	}
}

func TestAblationNoiseDegradesGracefully(t *testing.T) {
	r, err := AblationNoise(tiny())
	if err != nil {
		t.Fatal(err)
	}
	quiet := pctOrFail(t, r.Rows[0][1])
	noisy := pctOrFail(t, r.Rows[len(r.Rows)-1][1])
	if quiet < 0.99 {
		t.Fatalf("noise-off accuracy %.2f", quiet)
	}
	if noisy > quiet {
		t.Fatalf("noise improved accuracy: %.2f > %.2f", noisy, quiet)
	}
}

func TestDefenseIsolation(t *testing.T) {
	r, err := DefenseIsolation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Measured, "blocked at 6/6") {
		t.Fatalf("isolation did not block all levels: %s", r.Measured)
	}
	if !strings.Contains(r.Measured, "MetaLeak-C blocked") {
		t.Fatalf("isolation did not block MetaLeak-C: %s", r.Measured)
	}
}

func TestAblationSecureOverheadShowsSlowdown(t *testing.T) {
	r, err := AblationSecureOverhead(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The secure configs' cold reads must be slower than the baseline's.
	base := atofOrFail(t, r.Rows[0][1])
	for _, row := range r.Rows[1:] {
		if atofOrFail(t, row[1]) <= base {
			t.Fatalf("%s cold read not slower than insecure baseline", row[0])
		}
	}
}

func TestDefenseRandomizedMeta(t *testing.T) {
	r, err := DefenseRandomizedMeta(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Rows[1][2], "impossible") {
		t.Fatalf("conflict strategy not blocked: %v", r.Rows[1])
	}
	if acc := pctOrFail(t, r.Rows[2][2]); acc < 0.75 {
		t.Fatalf("volume strategy accuracy %.2f", acc)
	}
}

func TestDefenseLadder(t *testing.T) {
	r, err := DefenseLadder(tiny())
	if err != nil {
		t.Fatal(err)
	}
	smRecovery := pctOrFail(t, r.Rows[0][3])
	ladderRecovery := pctOrFail(t, r.Rows[1][3])
	if smRecovery < 0.9 {
		t.Fatalf("square-and-multiply recovery only %.2f", smRecovery)
	}
	if ladderRecovery > 0.75 {
		t.Fatalf("ladder leaked: recovery %.2f", ladderRecovery)
	}
	// The channel itself still works: op classification stays high on the
	// hardened victim too.
	if opAcc := pctOrFail(t, r.Rows[1][2]); opAcc < 0.9 {
		t.Fatalf("op classification collapsed on ladder: %.2f", opAcc)
	}
}

func atofOrFail(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
		t.Fatalf("bad number %q: %v", s, err)
	}
	return v
}

func pctOrFail(t *testing.T, s string) float64 {
	t.Helper()
	return atofOrFail(t, strings.TrimSuffix(s, "%")) / 100
}

func TestMarkdownRendering(t *testing.T) {
	r := &Result{
		ID: "x", Title: "T",
		Header:     []string{"a", "b"},
		Rows:       [][]string{{"1", "2"}},
		Notes:      []string{"single line", "multi\nline"},
		PaperClaim: "claim", Measured: "measured",
	}
	md := r.Markdown()
	for _, frag := range []string{"### `x` — T", "| a | b |", "| 1 | 2 |", "```", "*Paper:* claim", "*Measured:* measured"} {
		if !strings.Contains(md, frag) {
			t.Fatalf("markdown missing %q:\n%s", frag, md)
		}
	}
}

// TestDeterminism asserts that an experiment re-run with the same options
// reproduces its rows exactly — the property the whole evaluation's
// reproducibility rests on.
func TestDeterminism(t *testing.T) {
	for _, id := range []string{"fig6", "fig8", "fig18"} {
		a, err := Registry[id](tiny()).Run(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Registry[id](tiny()).Run(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row count differs across runs", id)
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j] != b.Rows[i][j] {
					t.Fatalf("%s: row %d col %d: %q vs %q", id, i, j, a.Rows[i][j], b.Rows[i][j])
				}
			}
		}
	}
}

// TestSeedChangesResults asserts the seed actually perturbs stochastic
// experiments (guarding against an ignored Seed field).
func TestSeedChangesResults(t *testing.T) {
	o1, o2 := tiny(), tiny()
	o2.Seed = o1.Seed + 1000
	a, err := Fig18(o1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig18(o2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Rows {
		if a.Rows[i][1] != b.Rows[i][1] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical Fig18 sweeps")
	}
}
