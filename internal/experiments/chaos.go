package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"metaleak/internal/arch"
	"metaleak/internal/crypto"
	"metaleak/internal/dispatch"
	"metaleak/internal/faults"
	"metaleak/internal/machine"
	"metaleak/internal/runner"
	"metaleak/internal/secmem"
)

// The chaos drivers are the executable form of the repo's robustness
// claims, run by `metaleak chaos` and the test suite:
//
//   - ChaosMatrix proves the machine-level claim: every planned
//     corruption of every metadata class, on every secure design point,
//     on both the read and the writeback path, is caught by the
//     controller's ordinary verification — zero silent escapes.
//   - ChaosSweep proves the harness-level claim: a sweep under injected
//     panics, errors, stalls, and checkpoint truncation completes,
//     quarantines what cannot be recovered, and produces byte-identical
//     rows for unaffected cells at any parallelism and across a
//     crash/resume.

// ChaosCase identifies one cell of the tamper-detection matrix.
type ChaosCase struct {
	Config string
	Class  secmem.InjectClass
	Write  bool // fault planned at a writeback-path access
}

// Op renders the access direction the fault was planned at.
func (c ChaosCase) Op() string {
	if c.Write {
		return "write"
	}
	return "read"
}

// ChaosOutcome is one matrix cell's verdict.
type ChaosOutcome struct {
	ChaosCase
	// Injected counts corruptions actually applied (a row fault counts
	// its whole blast radius).
	Injected uint64
	// Detected counts the tamper detections the injections provoked.
	Detected uint64
	// Undelivered counts planned injections that never fired — a plan
	// bug, counted as an escape.
	Undelivered int
}

// Escaped reports whether any corruption went undetected (or was never
// delivered, which would make "detected" vacuous).
func (o ChaosOutcome) Escaped() bool {
	return o.Undelivered > 0 || o.Injected == 0 || o.Detected == 0
}

// chaosDesigns enumerates the secure design points the matrix covers:
// the paper's three base configs plus each defence/ablation knob that
// touches the metadata pipeline. The insecure baseline is deliberately
// absent — it detects nothing by construction.
func chaosDesigns() []machine.DesignPoint {
	small := func(dp machine.DesignPoint, name string) machine.DesignPoint {
		dp.Name = name
		dp.SecurePages = 1 << 14
		return dp
	}
	sct := small(machine.ConfigSCT(), "sct")
	ht := small(machine.ConfigHT(), "ht")
	sgx := small(machine.ConfigSGX(), "sgx")
	gc := small(machine.ConfigSCT(), "sct+gc")
	gc.Counter = machine.CounterGC
	mirage := small(machine.ConfigSCT(), "sct+mirage")
	mirage.RandomizedMeta = true
	iso := small(machine.ConfigSCT(), "sct+iso4")
	iso.IsolatedDomains = 4
	fast := small(machine.ConfigSCT(), "sct+fastcrypto")
	fast.FastCrypto = true
	return []machine.DesignPoint{sct, ht, sgx, gc, mirage, iso, fast}
}

// chaosClasses is the metadata taxonomy the matrix crosses with the
// designs — every class the fault engine can corrupt.
var chaosClasses = []secmem.InjectClass{
	secmem.InjectCiphertext, secmem.InjectMAC, secmem.InjectMinor,
	secmem.InjectMajor, secmem.InjectNode, secmem.InjectRow,
}

// ChaosMatrix runs the full tamper-detection matrix: every secure
// design point × every metadata class × both access directions, one
// fresh machine per cell, every fault planned through the spec grammar
// and delivered through the production injection path. The returned
// outcomes are in deterministic matrix order.
func ChaosMatrix(seed uint64) []ChaosOutcome {
	var out []ChaosOutcome
	for di, dp := range chaosDesigns() {
		for ci, cl := range chaosClasses {
			for _, write := range []bool{false, true} {
				cs := ChaosCase{Config: dp.Name, Class: cl, Write: write}
				out = append(out, chaosCase(cs, dp,
					arch.NewRNG(seed, uint64(di), uint64(ci)).Uint64()))
			}
		}
	}
	return out
}

// chaosCase drives one matrix cell: warm a machine, plan exactly one
// fault at the next access through the real spec/injector path, perform
// the access, then close the detection window (a follow-up read for
// deferred classes, an integrity audit for row blast radii) and score.
func chaosCase(cs ChaosCase, dp machine.DesignPoint, seed uint64) ChaosOutcome {
	dp.Seed = seed
	sys := machine.NewSystem(dp)
	ctrl := sys.Ctrl

	// Warm-up: materialize a row's worth of neighbours around the target
	// block and establish MACs, counters, and tree state, so every fault
	// class has honest history to corrupt.
	page := arch.PageID(3)
	target := page.Block(1)
	now := arch.Cycles(0)
	for i := 0; i < 8; i++ {
		var plain crypto.Block
		plain[0] = byte(0xA0 + i)
		ctrl.Write(now, page.Block(i), plain)
		now += 10_000
	}
	for i := 0; i < 8; i++ {
		ctrl.Read(now, page.Block(i))
		now += 10_000
	}

	// Plan one fault of the case's class at the very next access,
	// through the production grammar and injector.
	plan := faults.MustParse(fmt.Sprintf("machine:%s@%d", cs.Class, ctrl.AccessSeq()+1))
	inj := plan.Injector(seed)
	ctrl.SetInjector(inj)

	before := ctrl.Stats().TamperDetections
	if cs.Write {
		var plain crypto.Block
		plain[0] = 0x5A
		ctrl.Write(now, target, plain)
	} else {
		ctrl.Read(now, target)
	}
	now += 10_000
	// Close the window: deferred classes (ciphertext/MAC planned at a
	// write) fire on this read; row blast radii are swept by the audit.
	ctrl.Read(now, target)
	now += 10_000
	ctrl.AuditIntegrity()
	ctrl.SetInjector(nil)

	st := ctrl.Stats()
	return ChaosOutcome{
		ChaosCase:   cs,
		Injected:    st.FaultsInjected,
		Detected:    st.TamperDetections - before,
		Undelivered: inj.Outstanding(),
	}
}

// ChaosSweep checks the harness-level invariants end to end inside dir
// (a scratch directory for checkpoint files). It returns the first
// violated invariant, or nil when all hold:
//
//  1. Recovery: a sweep whose cells panic and error on leading attempts,
//     run with retries, completes with rows byte-identical to a
//     fault-free sweep — at -par 1 and -par 8.
//  2. Quarantine: a cell that exhausts its attempt budget is reported
//     as a structured failure row; every other cell's row is untouched.
//  3. Crash/resume: a sweep whose checkpoint writer "dies" mid-append
//     (torn trailing line) resumes — salvaging complete rows, logging
//     the torn one — and converges to the fault-free rows.
func ChaosSweep(ctx context.Context, dir string, seed uint64) error {
	axes := SweepAxes{
		Configs:   []string{"sct"},
		MinorBits: []uint{7},
		MetaKB:    []int{64},
		Noise:     []arch.Cycles{0},
		Seeds:     4,
		Seed:      seed,
		Bits:      8,
		Set:       []string{"SecurePages=16384", "FastCrypto=true"},
	}

	clean, err := SweepOpts(ctx, axes, SweepOptions{Workers: 1})
	if err != nil {
		return fmt.Errorf("chaos sweep: clean run: %w", err)
	}

	// 1. Recovery under panics and repeated errors, both parallelisms.
	recoveryPlan := faults.MustParse("harness:panic@1;harness:err@2x2")
	for _, par := range []int{1, 8} {
		rows, err := SweepOpts(ctx, axes, SweepOptions{
			Workers: par,
			Retries: 2,
			Backoff: func(int) time.Duration { return 0 },
			Faults:  recoveryPlan.NewHarness(),
		})
		if err != nil {
			return fmt.Errorf("chaos sweep: faulted run (par %d): %w", par, err)
		}
		if err := rowsIdentical(clean, rows); err != nil {
			return fmt.Errorf("chaos sweep: recovered rows differ from clean at par %d: %w", par, err)
		}
	}

	// 2. Quarantine: cell 0 fails more times than the budget allows.
	qPlan := faults.MustParse("harness:err@0x3")
	rows, err := SweepOpts(ctx, axes, SweepOptions{
		Workers: 2,
		Retries: 1,
		Faults:  qPlan.NewHarness(),
	})
	if err != nil {
		return fmt.Errorf("chaos sweep: quarantine run: %w", err)
	}
	if len(rows) != len(clean) {
		return fmt.Errorf("chaos sweep: quarantine run returned %d rows, want %d", len(rows), len(clean))
	}
	q := rows[0]
	if !q.Quarantined || q.Attempts != 2 || q.Err == "" {
		return fmt.Errorf("chaos sweep: cell 0 not quarantined as expected: %+v", q)
	}
	if err := rowsIdentical(clean[1:], rows[1:]); err != nil {
		return fmt.Errorf("chaos sweep: quarantine perturbed unaffected rows: %w", err)
	}

	// 3. Crash mid-append, then resume from the torn file.
	cpPath := dir + "/chaos-checkpoint.jsonl"
	os.Remove(cpPath)
	truncPlan := faults.MustParse("harness:trunc@2")
	crashed, err := SweepOpts(ctx, axes, SweepOptions{
		Workers:    1,
		Checkpoint: cpPath,
		Faults:     truncPlan.NewHarness(),
	})
	if err != nil {
		return fmt.Errorf("chaos sweep: crashing run: %w", err)
	}
	if err := rowsIdentical(clean, crashed); err != nil {
		return fmt.Errorf("chaos sweep: crashing run's in-memory rows differ: %w", err)
	}
	cp, err := OpenCheckpoint(cpPath, axes)
	if err != nil {
		return fmt.Errorf("chaos sweep: resume open after tear: %w", err)
	}
	torn := cp.Discarded()
	salvaged := len(cp.Completed())
	cp.Close()
	if torn == "" {
		return fmt.Errorf("chaos sweep: expected a torn trailing line to salvage, found none")
	}
	if salvaged != 1 {
		return fmt.Errorf("chaos sweep: salvaged %d rows from torn checkpoint, want 1", salvaged)
	}
	resumed, err := SweepOpts(ctx, axes, SweepOptions{Workers: 2, Checkpoint: cpPath})
	if err != nil {
		return fmt.Errorf("chaos sweep: resumed run: %w", err)
	}
	if err := rowsIdentical(clean, resumed); err != nil {
		return fmt.Errorf("chaos sweep: resumed rows differ from clean: %w", err)
	}
	os.Remove(cpPath)
	return nil
}

// ChaosDispatch checks the distributed-sweep invariants end to end,
// using in-process workers over loopback TCP (the wire path is the real
// one; only process isolation is elided — subprocess workers are
// covered by the CLI tests and the CI smoke job). It returns the first
// violated invariant, or nil when all hold:
//
//  1. Identity: a 4-worker distributed run's rows are byte-identical to
//     the single-process sweep.
//  2. Drop/re-lease recovery: a worker that drops its connection while
//     holding a lease (harness:disconnect) loses the cell to a
//     surviving worker, and with retry budget left the finished grid is
//     still byte-identical — zero lost cells, zero visible scars.
//  3. Drop quarantine: a cell whose every lease dies exhausts its
//     budget and settles as a quarantined row carrying one
//     "worker disconnected mid-lease" error per revoked lease; every
//     other cell's row is untouched.
func ChaosDispatch(ctx context.Context, seed uint64) error {
	axes := SweepAxes{
		Configs:   []string{"sct"},
		MinorBits: []uint{7},
		MetaKB:    []int{64},
		Noise:     []arch.Cycles{0},
		Seeds:     4,
		Seed:      seed,
		Bits:      8,
		Set:       []string{"SecurePages=16384", "FastCrypto=true"},
	}
	clean, err := SweepOpts(ctx, axes, SweepOptions{Workers: 1})
	if err != nil {
		return fmt.Errorf("chaos dispatch: clean run: %w", err)
	}

	// 1. Identity at 4 workers, no faults.
	rows, err := runLocalDispatch(ctx, axes, SweepOptions{}, DispatchOptions{}, 4, nil)
	if err != nil {
		return fmt.Errorf("chaos dispatch: 4-worker run: %w", err)
	}
	if err := rowsIdentical(clean, rows); err != nil {
		return fmt.Errorf("chaos dispatch: 4-worker rows differ from single-process: %w", err)
	}

	// 2. One planned drop on cell 1's first lease; a retry recovers it.
	dropPlan := faults.MustParse("harness:disconnect@1x1")
	rows, err = runLocalDispatch(ctx, axes, SweepOptions{Retries: 1}, DispatchOptions{}, 4, dropPlan.NewHarness())
	if err != nil {
		return fmt.Errorf("chaos dispatch: drop/re-lease run: %w", err)
	}
	if err := rowsIdentical(clean, rows); err != nil {
		return fmt.Errorf("chaos dispatch: re-leased rows differ from clean: %w", err)
	}

	// 3. Every lease of cell 0 dies: the cell quarantines, nothing else
	// moves. Two drops against a 1-retry budget (2 leases) kill exactly
	// two of the four workers; the survivors finish the grid.
	qPlan := faults.MustParse("harness:disconnect@0x2")
	rows, err = runLocalDispatch(ctx, axes, SweepOptions{Retries: 1}, DispatchOptions{}, 4, qPlan.NewHarness())
	if err != nil {
		return fmt.Errorf("chaos dispatch: quarantine run: %w", err)
	}
	if len(rows) != len(clean) {
		return fmt.Errorf("chaos dispatch: quarantine run lost cells: %d rows, want %d", len(rows), len(clean))
	}
	q := rows[0]
	wantErr := dispatch.DisconnectErr + "\n" + dispatch.DisconnectErr
	if !q.Quarantined || q.Attempts != 2 || q.Err != wantErr {
		return fmt.Errorf("chaos dispatch: cell 0 not quarantined as expected: %+v", q)
	}
	if err := rowsIdentical(clean[1:], rows[1:]); err != nil {
		return fmt.Errorf("chaos dispatch: quarantine perturbed unaffected rows: %w", err)
	}
	return nil
}

// ChaosServe checks the self-healing service invariants end to end
// inside dir (a scratch directory for the cell-cache file) — the
// in-process model of `metaleak serve`'s supervised fleet and
// content-addressed result cache. It returns the first violated
// invariant, or nil when all hold:
//
//  1. Flap recovery: a supervised 2-worker fleet whose workers die on
//     planned leases (harness:flap) and are respawned with backoff,
//     against a coordinator revive budget and ZERO retries, completes
//     with rows byte-identical to the clean sweep — no quarantined
//     cells, no attempt-count scars, because revived leases never
//     consume the attempt budget.
//  2. Cache identity: a sweep run against a persisted result cache
//     populates it; reopening the cache file and resubmitting the
//     identical grid completes with zero workers attached, every row
//     cache-served, byte-identical to the clean sweep.
//  3. Overlap reuse: a *larger* grid (one more seed rep) against the
//     same cache computes only the genuinely new cells — the
//     content address excludes the grid index, so shared design
//     points are shared cells.
func ChaosServe(ctx context.Context, dir string, seed uint64) error {
	axes := SweepAxes{
		Configs:   []string{"sct"},
		MinorBits: []uint{7},
		MetaKB:    []int{64},
		Noise:     []arch.Cycles{0},
		Seeds:     6,
		Seed:      seed,
		Bits:      8,
		Set:       []string{"SecurePages=16384", "FastCrypto=true"},
	}
	clean, err := SweepOpts(ctx, axes, SweepOptions{Workers: 1})
	if err != nil {
		return fmt.Errorf("chaos serve: clean run: %w", err)
	}

	// 1. Flap recovery: the fleet loses a worker on cell 1's lease twice
	// and on cell 4's once; the supervisor respawns each death, the
	// revived worker re-dials, and the revive budget re-deals the revoked
	// leases without touching the (empty) retry budget.
	flapPlan := faults.MustParse("harness:flap@1x2;harness:flap@4")
	rows, err := runSupervisedDispatch(ctx, axes, SweepOptions{}, DispatchOptions{
		Revive:       8,
		RetryBackoff: runner.ExpBackoff(time.Millisecond),
	}, 2, flapPlan.NewHarness())
	if err != nil {
		return fmt.Errorf("chaos serve: flapping run: %w", err)
	}
	for i, r := range rows {
		if r.Quarantined || r.Err != "" {
			return fmt.Errorf("chaos serve: flapping run scarred cell %d: %+v", i, r)
		}
	}
	if err := rowsIdentical(clean, rows); err != nil {
		return fmt.Errorf("chaos serve: flapping rows differ from clean: %w", err)
	}

	// 2. Cache identity. First pass populates the persisted cache…
	cachePath := dir + "/chaos-cellcache.jsonl"
	os.Remove(cachePath)
	cache, err := OpenResultCache(cachePath)
	if err != nil {
		return fmt.Errorf("chaos serve: open cache: %w", err)
	}
	rows, err = runLocalDispatch(ctx, axes, SweepOptions{}, DispatchOptions{Cache: cache}, 2, nil)
	if err != nil {
		return fmt.Errorf("chaos serve: cache-populating run: %w", err)
	}
	if err := rowsIdentical(clean, rows); err != nil {
		return fmt.Errorf("chaos serve: cache-populating rows differ from clean: %w", err)
	}
	if cache.Len() != len(clean) {
		return fmt.Errorf("chaos serve: cache holds %d cells after populate, want %d", cache.Len(), len(clean))
	}
	if err := cache.Err(); err != nil {
		return fmt.Errorf("chaos serve: cache persistence: %w", err)
	}
	cache.Close()

	// …then the reloaded file serves the identical grid with zero
	// workers: every pending cell is a cache hit, so the fast path never
	// even starts the coordinator.
	cache, err = OpenResultCache(cachePath)
	if err != nil {
		return fmt.Errorf("chaos serve: reopen cache: %w", err)
	}
	var cached, computed int
	rows, err = runLocalDispatch(ctx, axes, SweepOptions{}, DispatchOptions{
		Cache: cache,
		OnRow: func(_ SweepRow, fromCache bool) {
			if fromCache {
				cached++
			} else {
				computed++
			}
		},
	}, 0, nil)
	if err != nil {
		return fmt.Errorf("chaos serve: cache-served run: %w", err)
	}
	if cached != len(clean) || computed != 0 {
		return fmt.Errorf("chaos serve: resubmission served %d cached + %d computed, want %d + 0",
			cached, computed, len(clean))
	}
	if err := rowsIdentical(clean, rows); err != nil {
		return fmt.Errorf("chaos serve: cache-served rows differ from clean: %w", err)
	}

	// 3. Overlap reuse: one more seed rep grows the grid; only the new
	// cells compute.
	big := axes
	big.Seeds = axes.Seeds + 1
	bigClean, err := SweepOpts(ctx, big, SweepOptions{Workers: 1})
	if err != nil {
		return fmt.Errorf("chaos serve: big clean run: %w", err)
	}
	cached, computed = 0, 0
	rows, err = runLocalDispatch(ctx, big, SweepOptions{}, DispatchOptions{
		Cache: cache,
		OnRow: func(_ SweepRow, fromCache bool) {
			if fromCache {
				cached++
			} else {
				computed++
			}
		},
	}, 2, nil)
	if err != nil {
		return fmt.Errorf("chaos serve: overlapping run: %w", err)
	}
	if want := len(bigClean) - len(clean); cached != len(clean) || computed != want {
		return fmt.Errorf("chaos serve: overlapping grid served %d cached + %d computed, want %d + %d",
			cached, computed, len(clean), want)
	}
	if err := rowsIdentical(bigClean, rows); err != nil {
		return fmt.Errorf("chaos serve: overlapping rows differ from clean: %w", err)
	}
	cache.Close()
	os.Remove(cachePath)
	return nil
}

// rowsIdentical compares two row slices byte-for-byte through their
// canonical JSON encoding — the same bytes the checkpoint persists.
func rowsIdentical(want, got []SweepRow) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d rows vs %d", len(got), len(want))
	}
	for i := range want {
		w, err := json.Marshal(want[i])
		if err != nil {
			return err
		}
		g, err := json.Marshal(got[i])
		if err != nil {
			return err
		}
		if !bytes.Equal(w, g) {
			return fmt.Errorf("row %d: %s != %s", i, g, w)
		}
	}
	return nil
}
