package experiments

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"sync"
)

// The checkpoint layer makes long sweeps restartable. A checkpoint file
// is JSONL: a header line naming the format and the sweep's fingerprint,
// then one completed SweepRow per line in cell-index order. Every append
// rewrites the whole file to a sibling .tmp and renames it over the
// checkpoint — the file on disk is always a complete, parseable
// prefix-of-the-grid state, no matter where a SIGKILL lands. Grids are
// a few thousand cells at most and each cell simulates millions of
// cycles, so the rewrite cost is noise next to the work it protects.
//
// The fingerprint ties a checkpoint to the exact grid that wrote it:
// the hash covers every expanded cell (config, axis labels, rep, and the
// cell's derived machine seed), the per-cell bit budget, and the
// design-point overrides. Resuming with any other axes fails loudly
// instead of silently merging rows from unrelated grids.

// checkpointFormat identifies the file layout; bump on changes.
const checkpointFormat = "metaleak-sweep-checkpoint/v1"

type checkpointHeader struct {
	Format      string
	Fingerprint string
	Cells       int
}

// normalized applies the defaults Sweep applies, so fingerprints agree
// with what actually runs.
func (a SweepAxes) normalized() SweepAxes {
	if a.Bits <= 0 {
		a.Bits = DefaultSweepAxes().Bits
	}
	if a.Seeds <= 0 {
		a.Seeds = 1
	}
	return a
}

// Fingerprint identifies the sweep for checkpoint compatibility: a hash
// of the expanded cell list (axis labels, reps, and derived per-cell
// seeds — so the base seed is covered transitively), the per-cell bit
// budget, and the design-point overrides.
func (a SweepAxes) Fingerprint() string {
	a = a.normalized()
	h := sha256.New()
	fmt.Fprintf(h, "v1 seed=%d bits=%d set=%q\n", a.Seed, a.Bits, a.Set)
	for _, c := range a.Cells() {
		fmt.Fprintf(h, "%d %s %s %d %d %d %d\n",
			c.Index, c.Config, c.MinorLabel(), c.MetaKB, c.Noise, c.Rep, c.Seed)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Checkpoint is the durable record of a sweep in progress: completed
// rows keyed by cell index, flushed to disk on every append.
type Checkpoint struct {
	path   string
	header checkpointHeader
	cells  []SweepCell

	mu   sync.Mutex
	rows map[int]SweepRow
	err  error // first persistence failure; appends stop after it
}

// OpenCheckpoint opens (or starts) the checkpoint for a sweep. A
// missing file begins an empty checkpoint; an existing one must carry
// the axes' fingerprint and well-formed rows belonging to the grid, or
// the open fails — a checkpoint from a different sweep is never merged.
func OpenCheckpoint(path string, axes SweepAxes) (*Checkpoint, error) {
	axes = axes.normalized()
	cells := axes.Cells()
	cp := &Checkpoint{
		path: path,
		header: checkpointHeader{
			Format:      checkpointFormat,
			Fingerprint: axes.Fingerprint(),
			Cells:       len(cells),
		},
		cells: cells,
		rows:  map[int]SweepRow{},
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return cp, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("checkpoint %s: empty file (expected a %s header)", path, checkpointFormat)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Format != checkpointFormat {
		return nil, fmt.Errorf("checkpoint %s: not a %s file", path, checkpointFormat)
	}
	if hdr.Fingerprint != cp.header.Fingerprint {
		return nil, fmt.Errorf("checkpoint %s: fingerprint %.12s… does not match this sweep's %.12s… — "+
			"it was written by different axes (configs, widths, sizes, noise, seeds, bits, or -set overrides); "+
			"rerun with the original arguments or remove the file", path, hdr.Fingerprint, cp.header.Fingerprint)
	}
	for line := 2; sc.Scan(); line++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var row SweepRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, fmt.Errorf("checkpoint %s: line %d: %w", path, line, err)
		}
		if row.Index < 0 || row.Index >= len(cells) {
			return nil, fmt.Errorf("checkpoint %s: line %d: cell index %d outside the %d-cell grid",
				path, line, row.Index, len(cells))
		}
		if row.SweepCell != cells[row.Index] {
			return nil, fmt.Errorf("checkpoint %s: line %d: cell %d does not match the grid (file %+v, grid %+v)",
				path, line, row.Index, row.SweepCell, cells[row.Index])
		}
		cp.rows[row.Index] = row
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return cp, nil
}

// Completed returns the checkpointed rows that finished without error,
// keyed by cell index. Failed rows are deliberately excluded: resume
// re-runs them — a deterministic failure reproduces the identical row,
// and a transient one (a since-fixed config, a freed resource) gets its
// retry.
func (c *Checkpoint) Completed() map[int]SweepRow {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]SweepRow, len(c.rows))
	for i, r := range c.rows {
		if r.Err == "" {
			out[i] = r
		}
	}
	return out
}

// Append records a settled row and flushes the file atomically. Safe
// for concurrent use; after the first persistence failure further
// appends are dropped and Err reports the failure.
func (c *Checkpoint) Append(row SweepRow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	c.rows[row.Index] = row
	c.err = c.flushLocked()
}

// Err returns the first persistence failure, if any.
func (c *Checkpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// flushLocked rewrites the whole checkpoint to path.tmp and renames it
// over path: the visible file atomically moves between valid states.
func (c *Checkpoint) flushLocked() error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(c.header); err != nil {
		return err
	}
	idx := make([]int, 0, len(c.rows))
	for i := range c.rows {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		if err := enc.Encode(c.rows[i]); err != nil {
			return err
		}
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	return nil
}
