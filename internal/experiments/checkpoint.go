package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// The checkpoint layer makes long sweeps restartable. A checkpoint file
// is JSONL: a header line naming the format and the sweep's fingerprint,
// then one completed SweepRow per line in completion order (duplicates
// allowed; the last line for a cell wins). Rows are appended — O(1) per
// settled cell — and every line ends with '\n', which makes the failure
// mode of a crash legible: the only damage a SIGKILL mid-append can do
// is one unterminated trailing line. Resume salvages around exactly
// that: complete lines are loaded, a torn tail is logged, cut off, and
// its cell re-run (deterministically reproducing the lost row). Damage
// anywhere else — a complete line that does not parse or does not
// belong to the grid — is not a crash signature and still fails loudly.
//
// The fingerprint ties a checkpoint to the exact grid that wrote it:
// the hash covers every expanded cell (config, axis labels, rep, and the
// cell's derived machine seed), the per-cell bit budget, and the
// design-point overrides — including any machine-level fault plan, which
// travels as a FaultSpec override. Resuming with any other axes fails
// loudly instead of silently merging rows from unrelated grids.

// checkpointFormat identifies the file layout; bump on changes.
const checkpointFormat = "metaleak-sweep-checkpoint/v1"

type checkpointHeader struct {
	Format      string
	Fingerprint string
	Cells       int
}

// normalized applies the defaults Sweep applies, so fingerprints agree
// with what actually runs.
func (a SweepAxes) normalized() SweepAxes {
	if a.Bits <= 0 {
		a.Bits = DefaultSweepAxes().Bits
	}
	if a.Seeds <= 0 {
		a.Seeds = 1
	}
	return a
}

// Fingerprint identifies the sweep for checkpoint compatibility: a hash
// of the expanded cell list (axis labels, reps, and derived per-cell
// seeds — so the base seed is covered transitively), the per-cell bit
// budget, and the design-point overrides.
func (a SweepAxes) Fingerprint() string {
	a = a.normalized()
	h := sha256.New()
	fmt.Fprintf(h, "v1 seed=%d bits=%d set=%q\n", a.Seed, a.Bits, a.Set)
	for _, c := range a.Cells() {
		fmt.Fprintf(h, "%d %s %s %d %d %d %d\n",
			c.Index, c.Config, c.MinorLabel(), c.MetaKB, c.Noise, c.Rep, c.Seed)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Checkpoint is the durable record of a sweep in progress: completed
// rows keyed by cell index, appended to disk as they settle.
type Checkpoint struct {
	path   string
	header checkpointHeader
	cells  []SweepCell

	mu        sync.Mutex
	rows      map[int]SweepRow
	f         *os.File // lazily opened append handle
	appends   int
	tamper    func(path string, appendN int) bool
	crashed   bool   // simulated writer death (fault injection)
	discarded string // torn trailing line salvaged away at open
	err       error  // first persistence failure; appends stop after it
}

// OpenCheckpoint opens (or starts) the checkpoint for a sweep. A
// missing or empty file begins an empty checkpoint; an existing one
// must carry the axes' fingerprint and well-formed rows belonging to
// the grid, or the open fails — a checkpoint from a different sweep is
// never merged. The one exception is the crash signature of the append
// discipline itself: an unterminated trailing line (a write torn by
// SIGKILL or power loss mid-append) is salvaged — logged via
// Discarded, cut off the file, and its cell left to re-run — instead
// of failing the whole resume.
func OpenCheckpoint(path string, axes SweepAxes) (*Checkpoint, error) {
	axes = axes.normalized()
	cells := axes.Cells()
	cp := &Checkpoint{
		path: path,
		header: checkpointHeader{
			Format:      checkpointFormat,
			Fingerprint: axes.Fingerprint(),
			Cells:       len(cells),
		},
		cells: cells,
		rows:  map[int]SweepRow{},
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) || (err == nil && len(data) == 0) {
		return cp, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}

	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		// The file is a single torn line: a crash before the header's
		// append completed. Nothing is salvageable, but nothing is lost
		// either — start fresh.
		cp.discarded = string(data)
		if err := os.Truncate(path, 0); err != nil {
			return nil, fmt.Errorf("checkpoint %s: cutting torn header: %w", path, err)
		}
		return cp, nil
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(data[:nl], &hdr); err != nil || hdr.Format != checkpointFormat {
		return nil, fmt.Errorf("checkpoint %s: not a %s file", path, checkpointFormat)
	}
	if hdr.Fingerprint != cp.header.Fingerprint {
		return nil, fmt.Errorf("checkpoint %s: fingerprint %.12s… does not match this sweep's %.12s… — "+
			"it was written by different axes (configs, widths, sizes, noise, seeds, bits, or -set overrides); "+
			"rerun with the original arguments or remove the file", path, hdr.Fingerprint, cp.header.Fingerprint)
	}

	off := nl + 1
	rest := data[off:]
	for line := 2; len(rest) > 0; line++ {
		idx := bytes.IndexByte(rest, '\n')
		if idx < 0 {
			// Torn trailing line: the crash signature. Salvage everything
			// before it and cut the tear off so appends resume cleanly.
			cp.discarded = string(rest)
			if err := os.Truncate(path, int64(off)); err != nil {
				return nil, fmt.Errorf("checkpoint %s: cutting torn line: %w", path, err)
			}
			break
		}
		seg := rest[:idx]
		off += idx + 1
		rest = rest[idx+1:]
		if len(bytes.TrimSpace(seg)) == 0 {
			continue
		}
		var row SweepRow
		if err := json.Unmarshal(seg, &row); err != nil {
			return nil, fmt.Errorf("checkpoint %s: line %d: %w", path, line, err)
		}
		if row.Index < 0 || row.Index >= len(cells) {
			return nil, fmt.Errorf("checkpoint %s: line %d: cell index %d outside the %d-cell grid",
				path, line, row.Index, len(cells))
		}
		if row.SweepCell != cells[row.Index] {
			return nil, fmt.Errorf("checkpoint %s: line %d: cell %d does not match the grid (file %+v, grid %+v)",
				path, line, row.Index, row.SweepCell, cells[row.Index])
		}
		cp.rows[row.Index] = row
	}
	return cp, nil
}

// Discarded returns the torn trailing line OpenCheckpoint salvaged
// away, if any — callers surface it as a warning so the data loss
// (exactly one re-runnable cell) is visible, not silent.
func (c *Checkpoint) Discarded() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.discarded
}

// SetTamperer installs the fault-injection hook: after every successful
// append it receives the file path and the 1-based append count, and a
// true return simulates the writing process dying — the file is left
// exactly as the tamperer arranged it and every later append is
// silently dropped, which is what death looks like to the file.
func (c *Checkpoint) SetTamperer(fn func(path string, appendN int) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tamper = fn
}

// Completed returns the checkpointed rows that finished without error,
// keyed by cell index. Failed rows are deliberately excluded: resume
// re-runs them — a deterministic failure reproduces the identical row,
// and a transient one (a since-fixed config, a freed resource) gets its
// retry.
func (c *Checkpoint) Completed() map[int]SweepRow {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]SweepRow, len(c.rows))
	for i, r := range c.rows {
		if r.Err == "" {
			out[i] = r
		}
	}
	return out
}

// Append records a settled row and appends it to the file. Safe for
// concurrent use; after the first persistence failure further appends
// are dropped and Err reports the failure.
func (c *Checkpoint) Append(row SweepRow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil || c.crashed {
		return
	}
	c.rows[row.Index] = row
	c.err = c.appendLocked(row)
}

// Err returns the first persistence failure, if any. A simulated crash
// from the tamper hook is not a failure — it is the scenario under
// test.
func (c *Checkpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close releases the append handle. The file needs no finalization —
// every append left it complete.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// appendLocked writes one row line, opening the file (and writing the
// header) on first use. Lines are written in single Write calls ending
// in '\n', so the only state a crash can leave behind is a torn final
// line — the exact shape OpenCheckpoint knows how to salvage.
func (c *Checkpoint) appendLocked(row SweepRow) error {
	if c.f == nil {
		f, err := os.OpenFile(c.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("checkpoint %s: %w", c.path, err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("checkpoint %s: %w", c.path, err)
		}
		if st.Size() == 0 {
			hdr, err := json.Marshal(c.header)
			if err != nil {
				f.Close()
				return err
			}
			if _, err := f.Write(append(hdr, '\n')); err != nil {
				f.Close()
				return fmt.Errorf("checkpoint %s: %w", c.path, err)
			}
		}
		c.f = f
	}
	line, err := json.Marshal(row)
	if err != nil {
		return err
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	c.appends++
	if c.tamper != nil && c.tamper(c.path, c.appends) {
		c.crashed = true
		c.f.Close()
		c.f = nil
	}
	return nil
}
