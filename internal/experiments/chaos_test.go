package experiments

import (
	"context"
	"testing"
	"time"

	"metaleak/internal/arch"
	"metaleak/internal/faults"
)

// TestChaosMatrix is the tamper-detection matrix: every secure config ×
// every metadata class × both access directions must detect its
// injected corruption — zero silent escapes, and zero undelivered
// faults (an undelivered fault would make the "detected" claim
// vacuous).
func TestChaosMatrix(t *testing.T) {
	outcomes := ChaosMatrix(0xC4A05)
	if len(outcomes) != 7*6*2 {
		t.Fatalf("matrix has %d cells, want %d", len(outcomes), 7*6*2)
	}
	for _, o := range outcomes {
		if o.Escaped() {
			t.Errorf("%s/%s/%s: escaped (injected %d, detected %d, undelivered %d)",
				o.Config, o.Class, o.Op(), o.Injected, o.Detected, o.Undelivered)
		}
	}
}

// TestChaosMatrixDeterministic pins the engine's reproducibility: the
// same seed yields the identical outcome list.
func TestChaosMatrixDeterministic(t *testing.T) {
	a := ChaosMatrix(7)
	b := ChaosMatrix(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cell %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestChaosSweep runs the harness-level self-test: recovery under
// injected panics/errors at both parallelisms, quarantine of a cell
// that exhausts its attempts, and crash/resume across a torn
// checkpoint.
func TestChaosSweep(t *testing.T) {
	if err := ChaosSweep(context.Background(), t.TempDir(), 11); err != nil {
		t.Fatal(err)
	}
}

// TestSweepStallTimeout checks the remaining harness fault kind: an
// injected stall trips the per-attempt deadline and the retry recovers
// the cell.
func TestSweepStallTimeout(t *testing.T) {
	axes := SweepAxes{
		Configs:   []string{"sct"},
		MinorBits: []uint{7},
		MetaKB:    []int{64},
		Noise:     []arch.Cycles{0},
		Seeds:     2,
		Seed:      3,
		Bits:      8,
		Set:       []string{"SecurePages=16384", "FastCrypto=true"},
	}
	clean, err := SweepOpts(context.Background(), axes, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.MustParse("harness:stall@1")
	h := plan.NewHarness()
	// The deadline must sit far above a genuine cell's runtime (which
	// balloons under -race) and far below the stall, so only the
	// injected fault can trip it.
	h.SetStall(time.Minute)
	rows, err := SweepOpts(context.Background(), axes, SweepOptions{
		Workers: 2,
		Timeout: 5 * time.Second,
		Retries: 1,
		Faults:  h,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rowsIdentical(clean, rows); err != nil {
		t.Fatalf("rows after stall recovery differ: %v", err)
	}
}
