package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestFingerprintCoversSweepIdentity(t *testing.T) {
	base := tinyAxes()
	fp := base.Fingerprint()
	if fp != base.Fingerprint() {
		t.Fatal("fingerprint is not stable")
	}
	perturb := []func(*SweepAxes){
		func(a *SweepAxes) { a.Seed++ },
		func(a *SweepAxes) { a.Bits++ },
		func(a *SweepAxes) { a.Seeds++ },
		func(a *SweepAxes) { a.MinorBits = []uint{5, 7} },
		func(a *SweepAxes) { a.Configs = []string{"ht"} },
		func(a *SweepAxes) { a.Set = []string{"FastCrypto=true"} },
	}
	for i, f := range perturb {
		a := tinyAxes()
		f(&a)
		if a.Fingerprint() == fp {
			t.Fatalf("perturbation %d does not change the fingerprint", i)
		}
	}
}

// TestResumeByteIdentical is the acceptance property: a sweep
// interrupted mid-grid and resumed from its checkpoint produces output
// identical to an uninterrupted run, for more than one worker count.
// The interrupted state is constructed exactly as a killed run leaves
// it: a checkpoint holding the first k completed rows.
func TestResumeByteIdentical(t *testing.T) {
	axes := tinyAxes()
	want, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, k := range []int{0, 1, len(want)} {
			path := filepath.Join(t.TempDir(), "cp.jsonl")
			cp, err := OpenCheckpoint(path, axes)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range want[:k] {
				cp.Append(row)
			}
			if err := cp.Err(); err != nil {
				t.Fatal(err)
			}
			got, err := SweepCheckpointed(context.Background(), axes, workers, path)
			if err != nil {
				t.Fatalf("workers=%d k=%d: %v", workers, k, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d k=%d: resumed rows differ:\n got %+v\nwant %+v", workers, k, got, want)
			}
			// The persisted file itself must round-trip: a second resume
			// runs nothing and still reproduces the grid.
			again, err := SweepCheckpointed(context.Background(), axes, workers, path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, want) {
				t.Fatalf("workers=%d k=%d: second resume differs", workers, k)
			}
		}
	}
}

// TestResumeReRunsFailedCells: failed rows in a checkpoint are retried
// on resume; a deterministic failure reproduces the identical row.
func TestResumeReRunsFailedCells(t *testing.T) {
	axes := tinyAxes()
	axes.Configs = []string{"sct", "bogus"}
	axes.MinorBits = []uint{7}
	axes.Seeds = 1
	want, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want[1].Err == "" {
		t.Fatal("fixture lost its failing cell")
	}
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpoint(path, axes)
	if err != nil {
		t.Fatal(err)
	}
	cp.Append(want[1]) // only the failed row is checkpointed
	got, err := SweepCheckpointed(context.Background(), axes, 2, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resume with a failed row differs:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointFingerprintMismatchFailsLoudly(t *testing.T) {
	axes := tinyAxes()
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	if _, err := SweepCheckpointed(context.Background(), axes, 2, path); err != nil {
		t.Fatal(err)
	}
	other := tinyAxes()
	other.Seed++
	_, err := SweepCheckpointed(context.Background(), other, 2, path)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched checkpoint accepted: %v", err)
	}
}

func TestCheckpointRejectsCorruptFiles(t *testing.T) {
	axes := tinyAxes()
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.jsonl": "not json at all\n",
		// A complete (newline-terminated) body line that is not a row is
		// NOT a crash signature — crashes tear the tail, they do not
		// rewrite the middle — so it still fails loudly.
		"midline.jsonl": "", // filled in below with a valid header
	} {
		path := filepath.Join(dir, name)
		if name == "midline.jsonl" {
			good, err := os.ReadFile(writeCheckpointFixture(t, dir, axes))
			if err != nil {
				t.Fatal(err)
			}
			content = string(good) + "not a row\n"
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCheckpoint(path, axes); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}

	// A row whose cell does not belong to the grid is rejected even
	// under a matching header.
	path := filepath.Join(dir, "tampered.jsonl")
	cp, err := OpenCheckpoint(path, axes)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	row.Seed++ // no longer the grid's cell
	cp.Append(row)
	if _, err := OpenCheckpoint(path, axes); err == nil {
		t.Fatal("tampered cell accepted")
	}
}

// writeCheckpointFixture writes a checkpoint file containing only the
// valid header line for axes and returns its path.
func writeCheckpointFixture(t *testing.T, dir string, axes SweepAxes) string {
	t.Helper()
	axes = axes.normalized()
	hdr, err := json.Marshal(checkpointHeader{
		Format:      checkpointFormat,
		Fingerprint: axes.Fingerprint(),
		Cells:       len(axes.Cells()),
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fixture.jsonl")
	if err := os.WriteFile(path, append(hdr, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckpointEmptyFileIsFresh: a zero-byte file is the signature of
// a crash between create and the header append — it begins an empty
// checkpoint rather than failing the resume.
func TestCheckpointEmptyFileIsFresh(t *testing.T) {
	axes := tinyAxes()
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := OpenCheckpoint(path, axes)
	if err != nil {
		t.Fatalf("empty file rejected: %v", err)
	}
	if cp.Discarded() != "" || len(cp.Completed()) != 0 {
		t.Fatalf("empty file is not a fresh checkpoint: discarded=%q rows=%d",
			cp.Discarded(), len(cp.Completed()))
	}
}

// TestCheckpointSalvagesTornTrailingLine: a checkpoint whose final line
// was torn mid-append (the SIGKILL signature) salvages every complete
// row, reports the tear via Discarded, cuts it off the file, and the
// resumed sweep reproduces the uninterrupted output exactly.
func TestCheckpointSalvagesTornTrailingLine(t *testing.T) {
	axes := tinyAxes()
	want, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpoint(path, axes)
	if err != nil {
		t.Fatal(err)
	}
	cp.Append(want[0])
	cp.Append(want[1])
	if err := cp.Err(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	data := mustReadFile(t, path)
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	salvaged, err := OpenCheckpoint(path, axes)
	if err != nil {
		t.Fatalf("torn trailing line rejected: %v", err)
	}
	if salvaged.Discarded() == "" {
		t.Error("tear salvaged silently — Discarded is empty")
	}
	done := salvaged.Completed()
	if len(done) != 1 {
		t.Fatalf("salvaged %d rows, want 1", len(done))
	}
	if got, ok := done[want[0].Index]; !ok || !reflect.DeepEqual(got, want[0]) {
		t.Fatalf("salvaged row = %+v, want %+v", got, want[0])
	}
	if after := mustReadFile(t, path); !bytes.HasSuffix(after, []byte("\n")) {
		t.Error("open did not cut the torn line off the file")
	}
	if err := salvaged.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := SweepCheckpointed(context.Background(), axes, 2, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resume after salvage differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestCheckpointTornHeaderStartsFresh: a file holding a single
// unterminated line is a crash before the header append completed —
// nothing is salvageable, so resume starts fresh and still converges.
func TestCheckpointTornHeaderStartsFresh(t *testing.T) {
	axes := tinyAxes()
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	if err := os.WriteFile(path, []byte(`{"Format":"metaleak-swe`), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := OpenCheckpoint(path, axes)
	if err != nil {
		t.Fatalf("torn header rejected: %v", err)
	}
	if cp.Discarded() == "" || len(cp.Completed()) != 0 {
		t.Fatalf("torn header: discarded=%q rows=%d", cp.Discarded(), len(cp.Completed()))
	}
	if got := mustReadFile(t, path); len(got) != 0 {
		t.Errorf("torn header left %d bytes, want 0", len(got))
	}
	want, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepCheckpointed(context.Background(), axes, 2, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sweep after torn header differs:\n got %+v\nwant %+v", got, want)
	}
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCancelledSweepReportsCompletedRows pins the satellite fix: a
// cancelled context no longer discards completed rows. With every cell
// but one checkpointed and the context already cancelled, the sweep
// returns the completed rows alongside the cancellation error.
func TestCancelledSweepReportsCompletedRows(t *testing.T) {
	axes := tinyAxes()
	want, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpoint(path, axes)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range want[:len(want)-1] {
		cp.Append(row)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := SweepCheckpointed(ctx, axes, 2, path)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !reflect.DeepEqual(rows, want[:len(want)-1]) {
		t.Fatalf("cancelled sweep dropped completed rows:\n got %+v\nwant %+v", rows, want[:len(want)-1])
	}

	// Without a checkpoint, a cancelled-before-start sweep reports no
	// rows but still distinguishes cancellation from cell failure.
	rows, err = Sweep(ctx, axes, 2)
	if !errors.Is(err, context.Canceled) || len(rows) != 0 {
		t.Fatalf("fresh cancelled sweep: rows=%d err=%v", len(rows), err)
	}
}
