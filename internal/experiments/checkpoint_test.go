package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestFingerprintCoversSweepIdentity(t *testing.T) {
	base := tinyAxes()
	fp := base.Fingerprint()
	if fp != base.Fingerprint() {
		t.Fatal("fingerprint is not stable")
	}
	perturb := []func(*SweepAxes){
		func(a *SweepAxes) { a.Seed++ },
		func(a *SweepAxes) { a.Bits++ },
		func(a *SweepAxes) { a.Seeds++ },
		func(a *SweepAxes) { a.MinorBits = []uint{5, 7} },
		func(a *SweepAxes) { a.Configs = []string{"ht"} },
		func(a *SweepAxes) { a.Set = []string{"FastCrypto=true"} },
	}
	for i, f := range perturb {
		a := tinyAxes()
		f(&a)
		if a.Fingerprint() == fp {
			t.Fatalf("perturbation %d does not change the fingerprint", i)
		}
	}
}

// TestResumeByteIdentical is the acceptance property: a sweep
// interrupted mid-grid and resumed from its checkpoint produces output
// identical to an uninterrupted run, for more than one worker count.
// The interrupted state is constructed exactly as a killed run leaves
// it: a checkpoint holding the first k completed rows.
func TestResumeByteIdentical(t *testing.T) {
	axes := tinyAxes()
	want, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, k := range []int{0, 1, len(want)} {
			path := filepath.Join(t.TempDir(), "cp.jsonl")
			cp, err := OpenCheckpoint(path, axes)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range want[:k] {
				cp.Append(row)
			}
			if err := cp.Err(); err != nil {
				t.Fatal(err)
			}
			got, err := SweepCheckpointed(context.Background(), axes, workers, path)
			if err != nil {
				t.Fatalf("workers=%d k=%d: %v", workers, k, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d k=%d: resumed rows differ:\n got %+v\nwant %+v", workers, k, got, want)
			}
			// The persisted file itself must round-trip: a second resume
			// runs nothing and still reproduces the grid.
			again, err := SweepCheckpointed(context.Background(), axes, workers, path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, want) {
				t.Fatalf("workers=%d k=%d: second resume differs", workers, k)
			}
		}
	}
}

// TestResumeReRunsFailedCells: failed rows in a checkpoint are retried
// on resume; a deterministic failure reproduces the identical row.
func TestResumeReRunsFailedCells(t *testing.T) {
	axes := tinyAxes()
	axes.Configs = []string{"sct", "bogus"}
	axes.MinorBits = []uint{7}
	axes.Seeds = 1
	want, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want[1].Err == "" {
		t.Fatal("fixture lost its failing cell")
	}
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpoint(path, axes)
	if err != nil {
		t.Fatal(err)
	}
	cp.Append(want[1]) // only the failed row is checkpointed
	got, err := SweepCheckpointed(context.Background(), axes, 2, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resume with a failed row differs:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointFingerprintMismatchFailsLoudly(t *testing.T) {
	axes := tinyAxes()
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	if _, err := SweepCheckpointed(context.Background(), axes, 2, path); err != nil {
		t.Fatal(err)
	}
	other := tinyAxes()
	other.Seed++
	_, err := SweepCheckpointed(context.Background(), other, 2, path)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched checkpoint accepted: %v", err)
	}
}

func TestCheckpointRejectsCorruptFiles(t *testing.T) {
	axes := tinyAxes()
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.jsonl": "not json at all\n",
		"empty.jsonl":   "",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCheckpoint(path, axes); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}

	// A row whose cell does not belong to the grid is rejected even
	// under a matching header.
	path := filepath.Join(dir, "tampered.jsonl")
	cp, err := OpenCheckpoint(path, axes)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	row.Seed++ // no longer the grid's cell
	cp.Append(row)
	if _, err := OpenCheckpoint(path, axes); err == nil {
		t.Fatal("tampered cell accepted")
	}
}

// TestCancelledSweepReportsCompletedRows pins the satellite fix: a
// cancelled context no longer discards completed rows. With every cell
// but one checkpointed and the context already cancelled, the sweep
// returns the completed rows alongside the cancellation error.
func TestCancelledSweepReportsCompletedRows(t *testing.T) {
	axes := tinyAxes()
	want, err := Sweep(context.Background(), axes, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	cp, err := OpenCheckpoint(path, axes)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range want[:len(want)-1] {
		cp.Append(row)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := SweepCheckpointed(ctx, axes, 2, path)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !reflect.DeepEqual(rows, want[:len(want)-1]) {
		t.Fatalf("cancelled sweep dropped completed rows:\n got %+v\nwant %+v", rows, want[:len(want)-1])
	}

	// Without a checkpoint, a cancelled-before-start sweep reports no
	// rows but still distinguishes cancellation from cell failure.
	rows, err = Sweep(ctx, axes, 2)
	if !errors.Is(err, context.Canceled) || len(rows) != 0 {
		t.Fatalf("fresh cancelled sweep: rows=%d err=%v", len(rows), err)
	}
}
