package experiments

import (
	"encoding/csv"
	"encoding/json"
	"io"
)

// The sweep's output renderers live here, shared by `metaleak sweep`
// and the serve endpoints — one implementation, so a row fetched over
// HTTP is byte-identical to the same row on the CLI's stdout by
// construction, which is the property the serve smoke test diffs.

// WriteRowsCSV renders rows as `metaleak sweep`'s CSV: wide by default,
// or long (one (cell, metric, value) record per measurement) when long
// is set.
func WriteRowsCSV(w io.Writer, rows []SweepRow, long bool) error {
	cw := csv.NewWriter(w)
	header := CSVHeader()
	if long {
		header = LongHeader()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if long {
			for _, rec := range r.LongRecords() {
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
			continue
		}
		if err := cw.Write(r.CSVRecord()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepJSON renders rows plus their per-point aggregates as
// `metaleak sweep -json`'s document.
func WriteSweepJSON(w io.Writer, axes SweepAxes, rows []SweepRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Rows   []SweepRow
		Points []SweepPoint
	}{rows, axes.Aggregate(rows)})
}
