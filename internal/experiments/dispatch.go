package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"metaleak/internal/dispatch"
	"metaleak/internal/faults"
	"metaleak/internal/runner"
)

// This file binds the generic coordinator/worker protocol of
// internal/dispatch to the sweep engine. The contract is the same one
// the in-process runner honors: distribution is pure scheduling. A
// cell's row is a function of the axes and the cell index — which
// worker process ran it, in what steal order, and after how many
// revoked leases never appears in the output — so SweepDispatch's
// merged rows are byte-identical to SweepOpts' for any worker count,
// steal schedule, or mid-run worker death.

// SweepJob is the opaque job spec a sweep coordinator ships to its
// workers: everything a worker needs to expand the identical grid and
// run any cell of it.
type SweepJob struct {
	// Kind tags the engine for NewJobSession routing ("sweep"); empty is
	// accepted for specs written before hunt jobs existed.
	Kind string `json:",omitempty"`
	// Axes is the normalized sweep grid (including -set overrides, and
	// hence any machine-level fault spec riding them).
	Axes SweepAxes
	// Fingerprint is the coordinator's Axes.Fingerprint(); a worker
	// whose own expansion fingerprints differently is running skewed
	// code and refuses the job rather than contributing wrong rows.
	Fingerprint string
	// Timeout is the per-attempt deadline each worker applies locally;
	// 0 disables stall detection.
	Timeout time.Duration
	// HarnessSpec carries the plan's harness-level fault entries
	// (re-rendered by faults.Plan.HarnessSpec) so worker-side faults —
	// disconnect above all — fire in the process holding the lease.
	HarnessSpec string
}

// NewSweepSession initializes a worker-side dispatch session from a
// SweepJob payload, building the session's fault harness from the
// job's harness spec (per-process attempt counting). It is the Init
// hook `metaleak worker` uses.
func NewSweepSession(spec json.RawMessage) (dispatch.Session, error) {
	var h *faults.Harness
	var job SweepJob
	if err := json.Unmarshal(spec, &job); err != nil {
		return dispatch.Session{}, fmt.Errorf("sweep job: %w", err)
	}
	if job.HarnessSpec != "" {
		plan, err := faults.Parse(job.HarnessSpec)
		if err != nil {
			return dispatch.Session{}, fmt.Errorf("sweep job: %w", err)
		}
		h = plan.NewHarness()
	}
	return newSweepSession(job, h)
}

// NewSweepSessionHarness is NewSweepSession with a caller-supplied
// harness (ignoring the job's spec) — in-process workers share one
// harness so planned faults count attempts globally and fire
// deterministically, the shape the chaos invariants assert.
func NewSweepSessionHarness(spec json.RawMessage, h *faults.Harness) (dispatch.Session, error) {
	var job SweepJob
	if err := json.Unmarshal(spec, &job); err != nil {
		return dispatch.Session{}, fmt.Errorf("sweep job: %w", err)
	}
	return newSweepSession(job, h)
}

func newSweepSession(job SweepJob, h *faults.Harness) (dispatch.Session, error) {
	prep, err := sweepPrep(job.Axes, SweepOptions{})
	if err != nil {
		return dispatch.Session{}, err
	}
	if fp := prep.axes.Fingerprint(); fp != job.Fingerprint {
		return dispatch.Session{}, fmt.Errorf(
			"sweep job: grid fingerprint mismatch (coordinator %.12s…, worker %.12s…): worker binary expands a different grid — version skew",
			job.Fingerprint, fp)
	}
	cells, ovs, bits := prep.cells, prep.ovs, prep.axes.Bits
	run := func(ctx context.Context, cell int) (json.RawMessage, error) {
		if cell < 0 || cell >= len(cells) {
			return nil, fmt.Errorf("leased cell %d outside grid of %d", cell, len(cells))
		}
		c := cells[cell]
		trial := h.WrapTrial(c.Index, func() (any, error) {
			return runSweepCell(c, bits, ovs)
		})
		// One lease is one attempt: run it under the same single-attempt
		// deadline machinery the in-process pool uses, so stalls and
		// panics settle to the identical error strings. Retries are the
		// coordinator's job (lease budget), not the worker's.
		res, errs := runner.RunAllPolicy(ctx, []runner.Trial{trial},
			runner.Policy{Workers: 1, Timeout: job.Timeout}, nil)
		if errs[0] != nil {
			return nil, attemptCause(errs[0])
		}
		payload, err := json.Marshal(res[0].(SweepRow))
		if err != nil {
			return nil, err
		}
		return payload, nil
	}
	return dispatch.Session{Run: run, Drop: func(cell int) bool {
		if cell < 0 || cell >= len(cells) {
			return false
		}
		return h.Disconnect(cells[cell].Index)
	}}, nil
}

// attemptCause strips the runner's TrialError envelope so the attempt
// error the coordinator records is the same string settledRow would put
// in a single-process row ("trial N:" prefixes depend on pool slot
// numbering and must not leak into results).
func attemptCause(err error) error {
	var te *runner.TrialError
	if errors.As(err, &te) && te.Err != nil {
		return te.Err
	}
	return err
}

// DispatchOptions configures the coordinator side of a distributed
// sweep, on top of the usual SweepOptions.
type DispatchOptions struct {
	// LeaseTimeout is how long a worker may stay silent before its
	// leases revoke; <= 0 selects the dispatch default (10s).
	LeaseTimeout time.Duration
	// HarnessSpec is shipped to workers inside the job (see
	// SweepJob.HarnessSpec).
	HarnessSpec string
	// Token is the shared-secret auth for the worker listener; workers
	// not presenting it are refused (dispatch.Options.Token).
	Token string
	// Revive is the per-cell budget of lease revocations absorbed
	// without consuming attempts — the supervised-fleet mode
	// (dispatch.Options.Revive). 0 keeps the historic accounting.
	Revive int
	// RetryBackoff paces re-leases of failed or revoked cells
	// (dispatch.Options.RetryBackoff). Nil re-leases immediately.
	RetryBackoff func(attempt int) time.Duration
	// Cache, when non-nil, is the content-addressed result cache:
	// pending cells already in it are served without computing (logged
	// per cell through opts.Log), and every freshly settled clean row is
	// added. The key excludes the grid index, so overlapping grids share
	// cells.
	Cache *ResultCache
	// OnRow, when non-nil, observes every row of the final output as it
	// becomes known: rows settled before dispatch (checkpoint- or
	// cache-served, cached=true) in grid order up front, then each
	// live-computed row (cached=false) in completion order.
	OnRow func(row SweepRow, cached bool)
}

// SweepDispatch runs the grid distributed: it accepts workers on ln,
// deals pending cells via work-stealing leases, re-leases cells from
// dead workers (each revocation consuming one attempt of the cell's
// 1+Retries budget, exactly like a failed in-process attempt), streams
// settled rows into the checkpoint, and returns rows in grid order —
// byte-identical to SweepOpts with the same axes and policy. Of opts,
// Workers and Backoff are ignored (concurrency is however many workers
// attach; there is no inter-lease pause) and Faults only drives the
// checkpoint tamper hook — worker-side faults travel via
// dopts.HarnessSpec.
func SweepDispatch(ctx context.Context, axes SweepAxes, opts SweepOptions, dopts DispatchOptions, ln net.Listener) ([]SweepRow, error) {
	prep, err := sweepPrep(axes, opts)
	if err != nil {
		ln.Close()
		return nil, err
	}
	if prep.cp != nil {
		defer prep.cp.Close()
	}

	// Content-addressed cache: serve pending cells some earlier sweep
	// (any grid, any client) already computed. Served rows join the
	// checkpoint so a later resume of this grid no longer needs the
	// cache.
	if dopts.Cache != nil {
		kept := prep.pending[:0]
		for _, i := range prep.pending {
			key := CellFingerprint(prep.cells[i], prep.axes.Bits, prep.axes.Set)
			row, ok := dopts.Cache.Get(key)
			if !ok {
				kept = append(kept, i)
				continue
			}
			row.SweepCell = prep.cells[i] // re-stamp the grid index; the key covers every other field
			prep.done[i] = row
			if opts.Log != nil {
				opts.Log("sweep: cell %d served from cache (%.12s…)", i, key)
			}
			if prep.cp != nil {
				prep.cp.Append(row)
			}
		}
		prep.pending = kept
	}
	if dopts.OnRow != nil {
		for i := range prep.cells {
			if row, ok := prep.done[i]; ok {
				dopts.OnRow(row, true)
			}
		}
	}

	// Fully satisfied without computing: skip the coordinator entirely —
	// a resubmitted spec completes even with zero workers attached.
	if len(prep.pending) == 0 {
		ln.Close()
		rows := make([]SweepRow, 0, len(prep.cells))
		for i := range prep.cells {
			rows = append(rows, prep.done[i])
		}
		if prep.cp != nil {
			if err := prep.cp.Err(); err != nil {
				return rows, err
			}
		}
		return rows, nil
	}

	job := SweepJob{
		Kind:        "sweep",
		Axes:        prep.axes,
		Fingerprint: prep.axes.Fingerprint(),
		Timeout:     opts.Timeout,
		HarnessSpec: dopts.HarnessSpec,
	}
	spec, err := json.Marshal(job)
	if err != nil {
		ln.Close()
		return nil, err
	}

	retries := opts.Retries
	cells := prep.cells
	co := dispatch.NewCoordinator(spec, prep.pending, dispatch.Options{
		LeaseTimeout: dopts.LeaseTimeout,
		MaxLeases:    1 + retries,
		Token:        dopts.Token,
		Revive:       dopts.Revive,
		RetryBackoff: dopts.RetryBackoff,
		Log:          opts.Log,
		OnSettled: func(cell int, s dispatch.Settled) {
			if prep.cp == nil && dopts.Cache == nil && dopts.OnRow == nil {
				return
			}
			row, ok := dispatchRow(cells[cell], s, retries)
			if !ok {
				return
			}
			if prep.cp != nil {
				prep.cp.Append(row)
			}
			if dopts.Cache != nil {
				dopts.Cache.Put(CellFingerprint(row.SweepCell, prep.axes.Bits, prep.axes.Set), row)
			}
			if dopts.OnRow != nil {
				dopts.OnRow(row, false)
			}
		},
	})
	settled, runErr := co.Run(ctx, ln)

	rows := make([]SweepRow, 0, len(cells))
	interrupted := false
	for i := range cells {
		if row, ok := prep.done[i]; ok {
			rows = append(rows, row)
			continue
		}
		s, ok := settled[i]
		if !ok {
			interrupted = true
			continue
		}
		if row, ok := dispatchRow(cells[i], s, retries); ok {
			rows = append(rows, row)
		} else {
			interrupted = true
		}
	}
	if prep.cp != nil {
		if err := prep.cp.Err(); err != nil {
			return rows, err
		}
	}
	if runErr != nil {
		return rows, runErr
	}
	if interrupted {
		return rows, ctx.Err()
	}
	return rows, nil
}

// runLocalDispatch is the in-process distributed path the chaos driver
// and tests use: SweepDispatch with n worker goroutines attached over
// loopback TCP, all sharing one fault harness so planned worker faults
// (disconnect above all) count attempts globally and fire
// deterministically. Subprocess workers (`metaleak worker`) go through
// NewSweepSession instead.
func runLocalDispatch(ctx context.Context, axes SweepAxes, opts SweepOptions, dopts DispatchOptions, n int, h *faults.Harness) ([]SweepRow, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &dispatch.Worker{
			ID:        fmt.Sprintf("local-%d", i),
			Heartbeat: 50 * time.Millisecond,
			Init: func(spec json.RawMessage) (dispatch.Session, error) {
				return NewSweepSessionHarness(spec, h)
			},
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := dispatch.Dial(addr)
			if err != nil {
				return
			}
			w.Run(ctx, conn)
		}()
	}
	rows, err := SweepDispatch(ctx, axes, opts, dopts, ln)
	wg.Wait()
	return rows, err
}

// runSupervisedDispatch is runLocalDispatch with self-healing: the n
// in-process workers run under a dispatch.Supervisor, so a worker that
// dies mid-grid (a flap plan's drop, a panic) is respawned with
// deterministic backoff and redials the coordinator with DialRetry.
// Paired with dopts.Revive on the coordinator it is the in-process
// model of `metaleak serve`'s fleet: a flapping run converges to the
// clean rows with zero quarantined cells.
func runSupervisedDispatch(ctx context.Context, axes SweepAxes, opts SweepOptions, dopts DispatchOptions, n int, h *faults.Harness) ([]SweepRow, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	fctx, fcancel := context.WithCancel(ctx)
	defer fcancel()
	sup := &dispatch.Supervisor{
		Workers: n,
		Backoff: runner.ExpBackoff(time.Millisecond),
		Log:     opts.Log,
		Start: func(ctx context.Context, slot, attempt int) error {
			w := &dispatch.Worker{
				ID:        fmt.Sprintf("sup-%d-%d", slot, attempt),
				Heartbeat: 50 * time.Millisecond,
				Token:     dopts.Token,
				Init: func(spec json.RawMessage) (dispatch.Session, error) {
					return NewSweepSessionHarness(spec, h)
				},
			}
			conn, err := dispatch.DialRetry(ctx, addr, 5, runner.ExpBackoff(5*time.Millisecond))
			if err != nil {
				return err
			}
			return w.Run(ctx, conn)
		},
	}
	supDone := make(chan error, 1)
	go func() { supDone <- sup.Run(fctx) }()
	rows, err := SweepDispatch(ctx, axes, opts, dopts, ln)
	fcancel() // release slots mid-respawn; drained slots already exited
	if serr := <-supDone; serr != nil && err == nil {
		err = serr
	}
	return rows, err
}

// dispatchRow converts one settled dispatch outcome into a row,
// mirroring settledRow byte for byte: a failed cell's Err joins every
// attempt's error with newlines (the same rendering errors.Join gives
// the in-process pool), and Attempts/Quarantined only appear under a
// retry policy.
func dispatchRow(c SweepCell, s dispatch.Settled, retries int) (SweepRow, bool) {
	if s.Err == "" {
		var row SweepRow
		if err := json.Unmarshal(s.Payload, &row); err != nil {
			row = SweepRow{SweepCell: c, Err: fmt.Sprintf("undecodable result payload: %v", err)}
			if retries > 0 {
				row.Attempts = s.Attempts
				row.Quarantined = true
			}
			return row, true
		}
		return row, true
	}
	if strings.Contains(s.Err, "context canceled") && len(s.Errs) == 1 {
		// A worker caught the cancellation before the coordinator did:
		// not a measurement, not a failure — the cell simply didn't run.
		return SweepRow{}, false
	}
	row := SweepRow{SweepCell: c, Err: s.Err}
	if retries > 0 {
		row.Attempts = s.Attempts
		row.Quarantined = true
	}
	return row, true
}
