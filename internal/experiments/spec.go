package experiments

import (
	"context"
	"errors"
	"fmt"

	"metaleak/internal/faults"
	"metaleak/internal/runner"
)

// Trial is one independent unit of an experiment. Each trial builds its
// own machine(s) from seeds derived deterministically from Options.Seed
// and the trial's identity, and returns a partial result for Merge; it
// must not share mutable state with any other trial of the spec.
type Trial struct {
	// Name labels the trial in errors and progress output ("fig11/sct").
	Name string
	// Run executes the trial and returns its partial result.
	Run func() (any, error)
}

// Spec declares one experiment as a bundle of independent trials plus a
// pure merge — the shape every figure of the paper actually has. The
// runner may execute trials in any order and with any parallelism;
// Merge always receives the partials in trial-index order, so the
// assembled Result is byte-identical for any worker count.
type Spec struct {
	// ID is the registry key ("fig6", "table1", ...).
	ID string
	// Title matches the assembled Result's title.
	Title string
	// Trials are the independent units of work.
	Trials []Trial
	// Merge assembles the final Result from the trial partials,
	// index-aligned with Trials. It must be pure and order-independent:
	// no machine access, no RNG draws, no dependence on completion
	// order — only on the partials themselves.
	Merge func(parts []any) (*Result, error)
}

// Run executes the spec's trials with at most `workers` in flight
// (workers <= 0 selects GOMAXPROCS) and merges the partials. Output is
// identical for every worker count, including 1.
func (s *Spec) Run(ctx context.Context, workers int) (*Result, error) {
	return s.RunPolicy(ctx, runner.Policy{Workers: workers}, nil)
}

// RunPolicy is Run under a failure policy (per-trial deadlines, bounded
// retries) and, under test, injected harness faults wrapped around the
// trials by index. An experiment — unlike a sweep — has no per-cell
// failure rows to quarantine into: a trial that exhausts its attempts
// still fails the whole experiment, the policy only decides how hard it
// tried first.
func (s *Spec) RunPolicy(ctx context.Context, pol runner.Policy, h *faults.Harness) (*Result, error) {
	trials := make([]runner.Trial, len(s.Trials))
	for i := range s.Trials {
		trials[i] = h.WrapTrial(i, s.Trials[i].Run)
	}
	parts, errs := runner.RunAllPolicy(ctx, trials, pol, nil)
	var failed []error
	for _, err := range errs {
		if err != nil {
			failed = append(failed, err)
		}
	}
	if len(failed) > 0 {
		return nil, fmt.Errorf("%s: %w", s.ID, errors.Join(failed...))
	}
	return s.Merge(parts)
}

// single wraps a monolithic experiment body as a one-trial spec — the
// migration shape for experiments whose samples share machine history
// (e.g. path-4 latencies depend on what the previous group loaded) and
// therefore cannot be split without changing their results.
func single(id, title string, run func() (*Result, error)) *Spec {
	return &Spec{
		ID:    id,
		Title: title,
		Trials: []Trial{{
			Name: id,
			Run:  func() (any, error) { return run() },
		}},
		Merge: func(parts []any) (*Result, error) {
			return parts[0].(*Result), nil
		},
	}
}

// Run builds and executes one registered experiment at the given trial
// parallelism.
func Run(ctx context.Context, id string, o Options, workers int) (*Result, error) {
	mk, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return mk(o).Run(ctx, workers)
}

// RunPolicy builds and executes one registered experiment under a
// failure policy and optional injected harness faults.
func RunPolicy(ctx context.Context, id string, o Options, pol runner.Policy, h *faults.Harness) (*Result, error) {
	mk, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return mk(o).RunPolicy(ctx, pol, h)
}
