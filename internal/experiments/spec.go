package experiments

import (
	"context"
	"fmt"

	"metaleak/internal/runner"
)

// Trial is one independent unit of an experiment. Each trial builds its
// own machine(s) from seeds derived deterministically from Options.Seed
// and the trial's identity, and returns a partial result for Merge; it
// must not share mutable state with any other trial of the spec.
type Trial struct {
	// Name labels the trial in errors and progress output ("fig11/sct").
	Name string
	// Run executes the trial and returns its partial result.
	Run func() (any, error)
}

// Spec declares one experiment as a bundle of independent trials plus a
// pure merge — the shape every figure of the paper actually has. The
// runner may execute trials in any order and with any parallelism;
// Merge always receives the partials in trial-index order, so the
// assembled Result is byte-identical for any worker count.
type Spec struct {
	// ID is the registry key ("fig6", "table1", ...).
	ID string
	// Title matches the assembled Result's title.
	Title string
	// Trials are the independent units of work.
	Trials []Trial
	// Merge assembles the final Result from the trial partials,
	// index-aligned with Trials. It must be pure and order-independent:
	// no machine access, no RNG draws, no dependence on completion
	// order — only on the partials themselves.
	Merge func(parts []any) (*Result, error)
}

// Run executes the spec's trials with at most `workers` in flight
// (workers <= 0 selects GOMAXPROCS) and merges the partials. Output is
// identical for every worker count, including 1.
func (s *Spec) Run(ctx context.Context, workers int) (*Result, error) {
	trials := make([]runner.Trial, len(s.Trials))
	for i := range s.Trials {
		trials[i] = s.Trials[i].Run
	}
	parts, err := runner.Run(ctx, trials, workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.ID, err)
	}
	return s.Merge(parts)
}

// single wraps a monolithic experiment body as a one-trial spec — the
// migration shape for experiments whose samples share machine history
// (e.g. path-4 latencies depend on what the previous group loaded) and
// therefore cannot be split without changing their results.
func single(id, title string, run func() (*Result, error)) *Spec {
	return &Spec{
		ID:    id,
		Title: title,
		Trials: []Trial{{
			Name: id,
			Run:  func() (any, error) { return run() },
		}},
		Merge: func(parts []any) (*Result, error) {
			return parts[0].(*Result), nil
		},
	}
}

// Run builds and executes one registered experiment at the given trial
// parallelism.
func Run(ctx context.Context, id string, o Options, workers int) (*Result, error) {
	mk, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return mk(o).Run(ctx, workers)
}
