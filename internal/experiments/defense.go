package experiments

import (
	"context"
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/core"
	"metaleak/internal/machine"
	"metaleak/internal/mirage"
	"metaleak/internal/stats"
)

// Fig18 reproduces the §IX-B defence study: the probability that a target
// metadata block is evicted from a MIRAGE-organized metadata cache after N
// random block accesses. Randomized caches stop eviction-set construction
// but not eviction itself, so MetaLeak-T's mEvict still succeeds — it just
// needs enough traffic.
func Fig18(o Options) (*Result, error) { return SpecFig18(o).Run(context.Background(), 1) }

// fig18Points are the random-access counts of the sweep's x axis.
var fig18Points = []int{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000, 12000}

// SpecFig18 declares Fig18 as one trial per (access-count, repetition)
// pair — each builds its own MIRAGE cache from a seed derived from the
// pair alone, so the partial counters fold per point in any completion
// order. This is the most parallel experiment in the registry.
func SpecFig18(o Options) *Spec {
	o = o.withDefaults()
	var trials []Trial
	for _, n := range fig18Points {
		for trial := 0; trial < o.Trials; trial++ {
			n, trial := n, trial
			trials = append(trials, Trial{
				Name: fmt.Sprintf("fig18/n%d/t%d", n, trial),
				Run: func() (any, error) {
					cfg := mirage.DefaultConfig()
					cfg.Seed = o.Seed + uint64(n)*131 + uint64(trial)
					c := mirage.New(cfg)
					// Warm to steady state, install the target, then hammer
					// with distinct random blocks.
					for i := 0; i < 2*cfg.DataBlocks; i++ {
						c.Access(arch.BlockID(i))
					}
					target := arch.BlockID(1 << 40)
					c.Access(target)
					for i := 0; i < n; i++ {
						c.Access(arch.BlockID(1<<20 + n*100000 + i))
					}
					var ctr stats.Counter
					ctr.Observe(!c.Contains(target))
					return ctr, nil
				},
			})
		}
	}
	return &Spec{
		ID:     "fig18",
		Title:  "Eviction accuracy vs. random accesses under MIRAGE (2-skew, 8+6 ways)",
		Trials: trials,
		Merge: func(parts []any) (*Result, error) {
			r := &Result{
				ID:     "fig18",
				Title:  "Eviction accuracy vs. random accesses under MIRAGE (2-skew, 8+6 ways)",
				Header: []string{"random accesses", "eviction probability"},
			}
			var at7000 float64
			for pi, n := range fig18Points {
				var ctr stats.Counter
				for _, part := range parts[pi*o.Trials : (pi+1)*o.Trials] {
					ctr = ctr.Merge(part.(stats.Counter))
				}
				p := ctr.Rate()
				if n == 7000 {
					at7000 = p
				}
				r.Rows = append(r.Rows, []string{fmt.Sprintf("%d", n), pct(p)})
			}
			r.PaperClaim = "~7000 random accesses evict the target with >90% accuracy (16-way 256KB metadata cache)"
			r.Measured = fmt.Sprintf("%.1f%% at 7000 accesses; monotone rise to >90%% within the sweep", 100*at7000)
			return r, nil
		},
	}
}

// AblationCounters quantifies VUL-1 across the §IV-A counter schemes:
// the counter-sharing group size and the cost of an overflowing write
// relative to a normal one. Counter widths are shrunk so overflows are
// reachable; the *ratios* are the design-space signal.
func AblationCounters(o Options) (*Result, error) {
	return SpecAblationCounters(o).Run(context.Background(), 1)
}

// SpecAblationCounters declares the counter-scheme ablation as one trial
// per scheme, each driving its own machine to an overflow.
func SpecAblationCounters(o Options) *Spec {
	o = o.withDefaults()
	run := func(dp machine.DesignPoint, touch int) (any, error) {
		dp.Seed = o.Seed + 90
		dp.SecurePages = 1 << 14
		sys := machine.NewSystem(dp)
		// Touch a working set so the whole-memory schemes have something
		// to re-encrypt.
		for i := 0; i < touch; i++ {
			p := sys.AllocPage(0)
			sys.Write(0, p.Block(0), [arch.BlockSize]byte{1})
			sys.Flush(0, p.Block(0))
		}
		target := sys.AllocPage(0).Block(0)
		var normal, overflow sample
		groupSize := 0
		for i := 0; i < 600 && len(overflow) < 3; i++ {
			res := sys.WriteThrough(0, target, [arch.BlockSize]byte{byte(i)})
			if res.Report.Overflow {
				overflow = append(overflow, res.Latency)
				if res.Report.Reencrypted+1 > groupSize {
					groupSize = res.Report.Reencrypted + 1
				}
			} else {
				normal = append(normal, res.Latency)
			}
		}
		if len(overflow) == 0 {
			return nil, fmt.Errorf("experiments: no overflow for %s", dp.Name)
		}
		// The group re-encryption runs as a background burst; its bank
		// occupancy is the observable. Measure a timed read right after the
		// last overflow into the re-encrypted page's bank.
		probeDelay := sys.TimedRead(0, target)
		return []string{
			dp.Name,
			fmt.Sprintf("%d blocks", groupSize),
			cyc(normal.mean()),
			cyc(overflow.mean()),
			fmt.Sprintf("%.1fx (read after: %d)", overflow.mean()/normal.mean(), probeDelay),
		}, nil
	}
	gc := machine.ConfigSCT()
	gc.Name, gc.Counter, gc.GCBits = "GC", machine.CounterGC, 8
	moc := machine.ConfigSCT()
	moc.Name, moc.Counter, moc.MoCBits = "MoC", machine.CounterMoC, 8
	sc := machine.ConfigSCT()
	sc.Name = "SC"
	schemes := []struct {
		dp    machine.DesignPoint
		touch int
	}{{gc, 48}, {moc, 48}, {sc, 8}}
	trials := make([]Trial, len(schemes))
	for i, cfg := range schemes {
		cfg := cfg
		trials[i] = Trial{
			Name: "ablctr/" + cfg.dp.Name,
			Run:  func() (any, error) { return run(cfg.dp, cfg.touch) },
		}
	}
	return &Spec{
		ID:     "ablctr",
		Title:  "Ablation: counter schemes — overflow group and write-latency blowup",
		Trials: trials,
		Merge: func(parts []any) (*Result, error) {
			r := &Result{
				ID:     "ablctr",
				Title:  "Ablation: counter schemes — overflow group and write-latency blowup",
				Header: []string{"scheme", "group size G", "normal write", "overflow write", "blowup"},
			}
			for _, part := range parts {
				r.Rows = append(r.Rows, part.([]string))
			}
			r.PaperClaim = "Algorithm 1: overflow re-encrypts the counter-sharing group — all of memory for GC/MoC, one page for SC"
			r.Measured = "group sizes and write blowups as above"
			return r, nil
		},
	}
}

// AblationTrees contrasts the integrity tree designs: verification
// latency of the cold path and, crucially, whether tree-counter overflow
// (the MetaLeak-C channel) exists at all.
func AblationTrees(o Options) (*Result, error) {
	return SpecAblationTrees(o).Run(context.Background(), 1)
}

// SpecAblationTrees declares the tree ablation as one trial per design.
func SpecAblationTrees(o Options) *Spec {
	o = o.withDefaults()
	bases := []machine.DesignPoint{machine.ConfigSCT(), machine.ConfigHT(), machine.ConfigSGX()}
	trials := make([]Trial, len(bases))
	for i, base := range bases {
		base := base
		trials[i] = Trial{
			Name: "abltree/" + base.Name,
			Run: func() (any, error) {
				dp := base
				dp.Seed = o.Seed + 91
				dp.SecurePages = 1 << 14
				dp.MetaKB = 16 // tiny metadata cache: force write-back churn
				dp.FastCrypto = true
				sys := machine.NewSystem(dp)
				var cold sample
				for i := 0; i < 64; i++ {
					p := sys.AllocPage(0)
					_, res := sys.Read(0, p.Block(0))
					cold = append(cold, res.Latency)
				}
				// Saturating write pressure: pages whose counter blocks collide in
				// one metadata cache set, so every write cycles a counter block out
				// (a write-back) and tree version counters advance.
				sets := sys.Ctrl.Meta().Config().Sets()
				var pages []arch.PageID
				for f := arch.PageID(0); len(pages) < 24 && int(f) < sys.SecurePages(); f += arch.PageID(sets) {
					if sys.Owner(f) != -1 {
						continue
					}
					if err := sys.AllocFrame(0, f); err == nil {
						pages = append(pages, f)
					}
				}
				for i := 0; i < 7000; i++ {
					p := pages[i%len(pages)]
					sys.WriteThrough(0, p.Block((i/len(pages))%arch.BlocksPerPage), [arch.BlockSize]byte{byte(i)})
				}
				ov := sys.Ctrl.Stats().TreeOverflows
				viable := "no"
				if ov > 0 {
					viable = "yes"
				}
				return []string{dp.Name, cyc(cold.mean()), fmt.Sprintf("%d", ov), viable}, nil
			},
		}
	}
	return &Spec{
		ID:     "abltree",
		Title:  "Ablation: integrity trees — cold-path latency and overflow channel",
		Trials: trials,
		Merge: func(parts []any) (*Result, error) {
			r := &Result{
				ID:     "abltree",
				Title:  "Ablation: integrity trees — cold-path latency and overflow channel",
				Header: []string{"tree", "cold read mean", "tree overflows under write pressure", "MetaLeak-C viable"},
			}
			for _, part := range parts {
				r.Rows = append(r.Rows, part.([]string))
			}
			r.PaperClaim = "SCT's 7-bit tree minors overflow (VUL-1 at tree scale); HT has no counters, SIT's 56-bit never overflow"
			r.Measured = "overflow counts as above"
			return r, nil
		},
	}
}

// AblationMetaCache sweeps the metadata cache size: larger caches slow
// the mEvict step (bigger eviction sets are unnecessary — sets stay 8-way
// — but hit rates rise) while the channel persists at every size.
func AblationMetaCache(o Options) (*Result, error) {
	return SpecAblationMetaCache(o).Run(context.Background(), 1)
}

// SpecAblationMetaCache declares the cache-size sweep as one trial per
// size.
func SpecAblationMetaCache(o Options) *Spec {
	o = o.withDefaults()
	sizes := []int{64, 128, 256, 512}
	trials := make([]Trial, len(sizes))
	for i, kb := range sizes {
		kb := kb
		trials[i] = Trial{
			Name: fmt.Sprintf("ablmeta/%dk", kb),
			Run: func() (any, error) {
				dp := machine.ConfigSCT()
				dp.Seed = o.Seed + 92 + uint64(kb)
				dp.MetaKB = kb
				sys := machine.NewSystem(dp)
				attacker := coreAttacker(sys)
				vicPage := sys.AllocPage(1)
				m, err := attacker.NewMonitor(vicPage, 0)
				if err != nil {
					return nil, err
				}
				m.Calibrate(8)
				correct, rounds := 0, 40
				start := sys.Now()
				for i := 0; i < rounds; i++ {
					m.Evict()
					want := i%2 == 0
					if want {
						sys.Flush(1, vicPage.Block(0))
						sys.Touch(1, vicPage.Block(0))
					}
					got, _ := m.Reload()
					if got == want {
						correct++
					}
				}
				interval := float64(sys.Now()-start) / float64(rounds)
				return []string{
					fmt.Sprintf("%dKiB", kb), cyc(interval),
					pct(float64(correct) / float64(rounds)),
				}, nil
			},
		}
	}
	return &Spec{
		ID:     "ablmeta",
		Title:  "Ablation: metadata cache size vs. mEvict+mReload round and accuracy",
		Trials: trials,
		Merge: func(parts []any) (*Result, error) {
			r := &Result{
				ID:     "ablmeta",
				Title:  "Ablation: metadata cache size vs. mEvict+mReload round and accuracy",
				Header: []string{"meta cache", "round interval (cycles)", "monitor accuracy (40 rounds)"},
			}
			for _, part := range parts {
				r.Rows = append(r.Rows, part.([]string))
			}
			r.PaperClaim = "(design-space extension) the channel is not an artifact of one cache size"
			r.Measured = "accuracy stays high across sizes"
			return r, nil
		},
	}
}

// AblationMinorWidth sweeps the split-counter minor width — the Table I
// design chooses 7 bits, trading counter storage against overflow
// frequency. The sweep shows both sides of VUL-1: narrower minors
// overflow more often (more observable events), wider minors raise the
// attacker's mPreset cost exponentially.
func AblationMinorWidth(o Options) (*Result, error) {
	return SpecAblationMinorWidth(o).Run(context.Background(), 1)
}

// SpecAblationMinorWidth declares the minor-width sweep as one trial per
// width.
func SpecAblationMinorWidth(o Options) *Spec {
	o = o.withDefaults()
	widths := []uint{5, 6, 7, 8}
	trials := make([]Trial, len(widths))
	for i, bits := range widths {
		bits := bits
		trials[i] = Trial{
			Name: fmt.Sprintf("ablminor/%db", bits),
			Run: func() (any, error) {
				dp := machine.ConfigSCT()
				dp.Seed = o.Seed + 97 + uint64(bits)
				dp.SecurePages = 1 << 14
				dp.MinorBits = bits
				dp.FastCrypto = true
				sys := machine.NewSystem(dp)
				p := sys.AllocPage(0)
				b := p.Block(0)
				overflows := 0
				for i := 0; i < 2000; i++ {
					if res := sys.WriteThrough(0, b, [arch.BlockSize]byte{byte(i)}); res.Report.Overflow {
						overflows++
					}
				}
				return []string{
					fmt.Sprintf("%d", bits),
					fmt.Sprintf("%d", 1<<bits),
					fmt.Sprintf("%d", overflows),
					fmt.Sprintf("%d", 1<<bits-2),
				}, nil
			},
		}
	}
	return &Spec{
		ID:     "ablminor",
		Title:  "Ablation: SC/SCT minor counter width vs. overflow behaviour",
		Trials: trials,
		Merge: func(parts []any) (*Result, error) {
			r := &Result{
				ID:     "ablminor",
				Title:  "Ablation: SC/SCT minor counter width vs. overflow behaviour",
				Header: []string{"minor bits", "writes to enc overflow", "enc overflows (2000 writes)", "mPreset bumps (MetaLeak-C)"},
			}
			for _, part := range parts {
				r.Rows = append(r.Rows, part.([]string))
			}
			r.PaperClaim = "(design space) 7-bit minors are the standard point; counter width bounds both overflow noise and attack preset cost"
			r.Measured = "overflow counts scale as 2000/2^bits; preset cost as 2^bits-2"
			return r, nil
		},
	}
}

// AblationNoise sweeps the background-traffic intensity against both
// MetaLeak-T shapes. A notable structural finding: the single-node
// side-channel monitor is essentially noise-immune (the reload follows
// the victim access within a handful of cycles, and the watched node sits
// at MRU whenever it matters), while the covert channel — whose windows
// span two signals and two reloads plus a trained threshold — degrades
// smoothly, which is where the paper's sub-100% accuracies come from.
func AblationNoise(o Options) (*Result, error) {
	return SpecAblationNoise(o).Run(context.Background(), 1)
}

// SpecAblationNoise declares the noise sweep as one trial per traffic
// intensity.
func SpecAblationNoise(o Options) *Spec {
	o = o.withDefaults()
	intervals := []arch.Cycles{0, 30000, 8000, 2000, 800}
	trials := make([]Trial, len(intervals))
	for i, interval := range intervals {
		interval := interval
		trials[i] = Trial{
			Name: fmt.Sprintf("ablnoise/%d", interval),
			Run: func() (any, error) {
				dp := machine.ConfigSCT()
				dp.Seed = o.Seed + 99
				dp.SecurePages = 1 << 16
				dp.NoiseInterval = interval
				dp.NoisePages = 1024
				sys := machine.NewSystem(dp)
				victimPage := sys.AllocPage(1)
				attacker := core.NewAttacker(sys.System, sys.Ctrl, 0, false)
				m, err := attacker.NewMonitor(victimPage, 0)
				if err != nil {
					return nil, err
				}
				m.Calibrate(10)
				correct, rounds := 0, 100
				for i := 0; i < rounds; i++ {
					m.Evict()
					want := i%2 == 0
					if want {
						sys.Flush(1, victimPage.Block(0))
						sys.Touch(1, victimPage.Block(0))
					}
					got, _ := m.Reload()
					if got == want {
						correct++
					}
				}
				monAcc := float64(correct) / float64(rounds)

				trojan := core.NewAttacker(sys.System, sys.Ctrl, 2, false)
				spy := core.NewAttacker(sys.System, sys.Ctrl, 1, false)
				ch, err := core.NewCovertT(trojan, spy, 0)
				if err != nil {
					return nil, err
				}
				rng := arch.NewRNG(o.Seed ^ uint64(interval) ^ 0xab)
				bits := 4 * o.Bits // error rates are sub-percent; sample enough
				for i := 0; i < bits; i++ {
					ch.SendBit(rng.Bool(0.5))
				}

				label := "off"
				if interval > 0 {
					label = fmt.Sprintf("%d", interval)
				}
				return []string{label, pct(monAcc),
					fmt.Sprintf("%s (%d errs, %d boundary misses)", pct(ch.Accuracy()), ch.BitErrors, ch.BoundaryMiss)}, nil
			},
		}
	}
	return &Spec{
		ID:     "ablnoise",
		Title:  "Ablation: background traffic intensity vs. MetaLeak-T",
		Trials: trials,
		Merge: func(parts []any) (*Result, error) {
			r := &Result{
				ID:     "ablnoise",
				Title:  "Ablation: background traffic intensity vs. MetaLeak-T",
				Header: []string{"noise burst interval (cycles)", "side-channel monitor (100 rounds)", "covert channel"},
			}
			for _, part := range parts {
				r.Rows = append(r.Rows, part.([]string))
			}
			r.PaperClaim = "(methodology) the paper's sub-100% numbers absorb co-running noise and synchronization slip"
			r.Measured = fmt.Sprintf("monitor stays at %s across the sweep; covert channel errors are rare stochastic collisions "+
				"(boundary misses grow with traffic); the bigger hardware effect is stepping jitter (see fig16)",
				r.Rows[0][1])
			return r, nil
		},
	}
}
