package experiments

import (
	"context"
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/core"
	"metaleak/internal/machine"
	"metaleak/internal/mpi"
	"metaleak/internal/reconstruct"
	"metaleak/internal/stats"
	"metaleak/internal/victim"
)

// DefenseIsolation evaluates the §IX-C mitigation: per-domain integrity
// trees with private on-chip roots. The attack construction itself must
// fail — there is no shared non-root node to monitor and no shared
// version counter to modulate — while honest execution and tamper
// detection keep working. The costs the paper flags (extra roots, memory
// stranding from fixed partitioning) are reported.
func DefenseIsolation(o Options) (*Result, error) {
	return SpecDefenseIsolation(o).Run(context.Background(), 1)
}

// SpecDefenseIsolation declares the isolation defence: every probe runs
// against the same four-domain machine, one trial.
func SpecDefenseIsolation(o Options) *Spec {
	return single("defiso", "Defence: per-domain integrity trees (§IX-C) vs. MetaLeak",
		func() (*Result, error) { return defenseIsolation(o) })
}

func defenseIsolation(o Options) (*Result, error) {
	o = o.withDefaults()
	dp := machine.ConfigSCT()
	dp.Seed = o.Seed + 93
	dp.SecurePages = 1 << 20
	dp.IsolatedDomains = 4
	sys := machine.NewSystem(dp)
	victimPage := sys.AllocPage(1)
	attacker := core.NewAttacker(sys.System, sys.Ctrl, 0, true)

	r := &Result{
		ID:     "defiso",
		Title:  "Defence: per-domain integrity trees (§IX-C) vs. MetaLeak",
		Header: []string{"attack step", "outcome"},
	}
	levels := sys.Ctrl.Tree().StoredLevels()
	blocked := 0
	for level := 0; level < levels; level++ {
		if _, err := attacker.NewMonitor(victimPage, level); err != nil {
			blocked++
		}
	}
	r.Rows = append(r.Rows, []string{
		"MetaLeak-T monitor construction",
		fmt.Sprintf("blocked at %d/%d tree levels (no claimable frame shares a node with the victim)", blocked, levels),
	})
	_, cmErr := attacker.NewCounterMonitor(victimPage, 1, victimPage.Block(0))
	outcome := "blocked (no shared version counter reachable)"
	if cmErr == nil {
		outcome = "NOT blocked"
	}
	r.Rows = append(r.Rows, []string{"MetaLeak-C counter monitor", outcome})

	// Functionality and integrity still hold.
	var lat stats.Sample
	for core := 0; core < 4; core++ {
		p := sys.AllocPage(core)
		res := sys.WriteThrough(core, p.Block(0), [arch.BlockSize]byte{byte(core)})
		lat.Add(res.Latency)
		if _, rr := sys.Read(core, p.Block(0)); rr.Report.Tampered {
			return nil, fmt.Errorf("defiso: false tamper detection")
		}
	}
	r.Rows = append(r.Rows, []string{"honest execution", fmt.Sprintf("intact (write-through %s)", lat.Summary())})

	r.Notes = append(r.Notes,
		fmt.Sprintf("cost: %d on-chip roots instead of 1; fixed %d-page domain slices (memory stranding, as §IX-C warns)",
			isoRootCount(sys), dp.SecurePages/dp.IsolatedDomains))
	r.PaperClaim = "isolated per-domain trees remove non-root node sharing; fixed partitioning is inflexible"
	r.Measured = fmt.Sprintf("MetaLeak-T blocked at %d/%d levels; MetaLeak-C blocked; functionality preserved", blocked, levels)
	return r, nil
}

func isoRootCount(sys *machine.System) int {
	type rooted interface{ RootCount() int }
	if t, ok := sys.Ctrl.Tree().(rooted); ok {
		return t.RootCount()
	}
	return 1
}

// ablsecPartial is one configuration's latency profile.
type ablsecPartial struct {
	name              string
	cold, warm, write stats.Sample
}

// AblationSecureOverhead compares the secure designs against an
// unprotected baseline — the cost of the metadata machinery whose timing
// variation MetaLeak exploits. (VUL-1/VUL-2 exist precisely because this
// machinery is not free.)
func AblationSecureOverhead(o Options) (*Result, error) {
	return SpecAblationSecureOverhead(o).Run(context.Background(), 1)
}

// SpecAblationSecureOverhead declares the overhead study as one trial
// per configuration (the insecure baseline first); the merge computes
// every slowdown against the baseline partial.
func SpecAblationSecureOverhead(o Options) *Spec {
	o = o.withDefaults()
	measure := func(dp machine.DesignPoint) (any, error) {
		p := &ablsecPartial{name: dp.Name}
		dp.Seed = o.Seed + 94
		if dp.SecurePages > 1<<16 {
			dp.SecurePages = 1 << 16
		}
		sys := machine.NewSystem(dp)
		for i := 0; i < 200; i++ {
			pg := sys.AllocPage(0)
			b := pg.Block(0)
			_, res := sys.Read(0, b)
			p.cold.Add(res.Latency)
			sys.Flush(0, b)
			_, res = sys.Read(0, b)
			p.warm.Add(res.Latency)
			wres := sys.WriteThrough(0, b, [arch.BlockSize]byte{byte(i)})
			p.write.Add(wres.Latency)
		}
		return p, nil
	}
	base := machine.ConfigSCT()
	base.Name = "insecure"
	base.Insecure = true
	points := []machine.DesignPoint{base, machine.ConfigSCT(), machine.ConfigHT(), machine.ConfigSGX()}
	trials := make([]Trial, len(points))
	for i, dp := range points {
		dp := dp
		trials[i] = Trial{
			Name: "ablsec/" + dp.Name,
			Run:  func() (any, error) { return measure(dp) },
		}
	}
	return &Spec{
		ID:     "ablsec",
		Title:  "Ablation: secure-memory overhead vs. unprotected baseline",
		Trials: trials,
		Merge: func(parts []any) (*Result, error) {
			r := &Result{
				ID:     "ablsec",
				Title:  "Ablation: secure-memory overhead vs. unprotected baseline",
				Header: []string{"config", "cold read", "warm-metadata read", "write-through", "read slowdown"},
			}
			baseline := parts[0].(*ablsecPartial)
			r.Rows = append(r.Rows, []string{"insecure",
				cyc(baseline.cold.Mean()), cyc(baseline.warm.Mean()), cyc(baseline.write.Mean()), "1.0x"})
			for _, part := range parts[1:] {
				p := part.(*ablsecPartial)
				r.Rows = append(r.Rows, []string{
					p.name, cyc(p.cold.Mean()), cyc(p.warm.Mean()), cyc(p.write.Mean()),
					fmt.Sprintf("%.1fx", p.cold.Mean()/baseline.cold.Mean()),
				})
			}
			r.PaperClaim = "(context) metadata maintenance is the overhead that creates VUL-1/VUL-2's timing surface"
			r.Measured = "secure cold reads pay the counter fetch + tree walk over the flat baseline"
			return r, nil
		},
	}
}

// defrandPartial is one configuration's monitor outcome.
type defrandPartial struct {
	rows [][]string
	acc  float64
	cyc  float64
}

// runDefrandRounds drives one evict/victim/reload loop and reports the
// classification accuracy and per-round cost.
func runDefrandRounds(evict func(), reload func() (bool, arch.Cycles), victim func(), sys *machine.System) (float64, float64) {
	correct, rounds := 0, 60
	start := sys.Now()
	for i := 0; i < rounds; i++ {
		evict()
		want := i%2 == 0
		if want {
			victim()
		}
		got, _ := reload()
		if got == want {
			correct++
		}
	}
	return float64(correct) / float64(rounds), float64(sys.Now()-start) / float64(rounds)
}

// DefenseRandomizedMeta deploys MIRAGE as the metadata cache (§IX-B) and
// measures both halves of the paper's argument: conflict-based mEvict
// becomes impossible (no set geometry), yet MetaLeak-T survives via
// volume-based eviction — at a cost quantified against the baseline.
func DefenseRandomizedMeta(o Options) (*Result, error) {
	return SpecDefenseRandomizedMeta(o).Run(context.Background(), 1)
}

// SpecDefenseRandomizedMeta declares the MIRAGE defence as two trials —
// the set-associative baseline machine and the MIRAGE machine — merged
// into the comparison table with the relative round cost.
func SpecDefenseRandomizedMeta(o Options) *Spec {
	o = o.withDefaults()
	base := machine.ConfigSCT()
	base.Seed = o.Seed + 95
	base.SecurePages = 1 << 16
	base.MetaKB = 16
	base.FastCrypto = true
	return &Spec{
		ID:    "defrand",
		Title: "Defence: MIRAGE-randomized metadata cache vs. MetaLeak-T",
		Trials: []Trial{
			{Name: "defrand/baseline", Run: func() (any, error) {
				// Baseline: set-associative metadata cache, conflict-based
				// monitor.
				bSys := machine.NewSystem(base)
				bVictim := bSys.AllocPage(1)
				bAtk := core.NewAttacker(bSys.System, bSys.Ctrl, 0, false)
				bMon, err := bAtk.NewMonitor(bVictim, 0)
				if err != nil {
					return nil, err
				}
				bMon.Calibrate(8)
				bAcc, bCyc := runDefrandRounds(bMon.Evict, bMon.Reload, func() {
					bSys.Flush(1, bVictim.Block(0))
					bSys.Touch(1, bVictim.Block(0))
				}, bSys)
				return &defrandPartial{
					rows: [][]string{{"set-associative (baseline)", "conflict eviction sets", pct(bAcc), cyc(bCyc)}},
					acc:  bAcc,
					cyc:  bCyc,
				}, nil
			}},
			{Name: "defrand/mirage", Run: func() (any, error) {
				// Defended: MIRAGE metadata cache.
				dp := base
				dp.Seed = o.Seed + 96
				dp.RandomizedMeta = true
				sys := machine.NewSystem(dp)
				victimPage := sys.AllocPage(1)
				attacker := core.NewAttacker(sys.System, sys.Ctrl, 0, false)
				if _, err := attacker.NewMonitor(victimPage, 0); err == nil {
					return nil, fmt.Errorf("defrand: conflict monitor unexpectedly built")
				}
				vm, err := attacker.NewVolumeMonitor(victimPage, 0, 800)
				if err != nil {
					return nil, err
				}
				vm.Calibrate(10)
				vAcc, vCyc := runDefrandRounds(vm.Evict, vm.Reload, func() {
					sys.Flush(1, victimPage.Block(0))
					sys.Touch(1, victimPage.Block(0))
				}, sys)
				return &defrandPartial{
					rows: [][]string{
						{"MIRAGE metadata cache", "conflict eviction sets", "impossible (no set mapping)", "-"},
						{"MIRAGE metadata cache", "volume flooding (Fig. 18)", pct(vAcc), cyc(vCyc)},
					},
					acc: vAcc,
					cyc: vCyc,
				}, nil
			}},
		},
		Merge: func(parts []any) (*Result, error) {
			baseline, mirage := parts[0].(*defrandPartial), parts[1].(*defrandPartial)
			r := &Result{
				ID:     "defrand",
				Title:  "Defence: MIRAGE-randomized metadata cache vs. MetaLeak-T",
				Header: []string{"configuration", "mEvict strategy", "accuracy (60 rounds)", "cycles/round"},
			}
			r.Rows = append(r.Rows, baseline.rows...)
			r.Rows = append(r.Rows, mirage.rows...)
			r.PaperClaim = "randomization defeats eviction-set construction but not MetaLeak: ~7000 random accesses still evict the target (Fig. 18 / §IX-B)"
			r.Measured = fmt.Sprintf("conflict mEvict impossible; volume mEvict %s accurate at %.0fx the baseline round cost",
				pct(mirage.acc), mirage.cyc/baseline.cyc)
			return r, nil
		},
	}
}

// DefenseLadder evaluates the classic software countermeasure: the same
// MetaLeak-T attack against the square-and-multiply victim and against a
// Montgomery-ladder victim. The attacker's page classification stays
// near-perfect in both cases — but the ladder's access sequence carries no
// key information, so recovery collapses to coin-flipping.
func DefenseLadder(o Options) (*Result, error) {
	return SpecDefenseLadder(o).Run(context.Background(), 1)
}

// SpecDefenseLadder declares the ladder study as one trial per victim
// implementation, each attacked on its own machine.
func SpecDefenseLadder(o Options) *Spec {
	o = o.withDefaults()
	type expRun func(v *victim.RSAVictim, base, e, m mpi.Int, iv *victim.Interleave) (mpi.Int, []victim.Op)
	run := func(name string, f expRun) (any, error) {
		dp := machine.ConfigSCT()
		dp.Seed = o.Seed + 98
		dp.SecurePages = 1 << 16
		sys := machine.NewSystem(dp)
		attacker := core.NewAttacker(sys.System, sys.Ctrl, 0, false)
		frames, err := attacker.PlaceVictimPages(1, 2, 0)
		if err != nil {
			return nil, err
		}
		rv := &victim.RSAVictim{Proc: victim.NewProc(sys.System, 1), SqrPage: frames[0], MulPage: frames[1]}
		dm, err := attacker.NewDualMonitor(rv.SqrPage, rv.MulPage, 0)
		if err != nil {
			return nil, err
		}
		rng := arch.NewRNG(o.Seed ^ 0x1ad)
		exp := mpi.Random(rng, o.ExpBits)
		modulus := mpi.Random(rng, 2*o.ExpBits)
		if !modulus.IsOdd() {
			modulus = modulus.Add(mpi.New(1))
		}
		var ops []victim.Op
		iv := &victim.Interleave{
			Before: dm.Evict,
			After: func() {
				if dm.Classify() {
					ops = append(ops, victim.OpSquare)
				} else {
					ops = append(ops, victim.OpMultiply)
				}
			},
		}
		_, oracle := f(rv, mpi.New(65537), exp, modulus, iv)
		opAcc := reconstruct.OpAccuracy(ops, oracle)
		bits := reconstruct.ExponentFromOps(ops)
		want := reconstruct.BitsOfExponent(exp)
		bitAcc := reconstruct.AlignedAccuracy(bits, want)
		return []string{
			name, fmt.Sprintf("%d", len(oracle)), pct(opAcc), pct(bitAcc),
		}, nil
	}
	return &Spec{
		ID:    "defladder",
		Title: "Defence: constant-sequence exponentiation (Montgomery ladder) vs. MetaLeak-T",
		Trials: []Trial{
			{Name: "defladder/sqmul", Run: func() (any, error) {
				return run("square-and-multiply (libgcrypt 1.5.2)", (*victim.RSAVictim).ModExp)
			}},
			{Name: "defladder/ladder", Run: func() (any, error) {
				return run("Montgomery ladder (hardened)", (*victim.RSAVictim).ModExpLadder)
			}},
		},
		Merge: func(parts []any) (*Result, error) {
			r := &Result{
				ID:     "defladder",
				Title:  "Defence: constant-sequence exponentiation (Montgomery ladder) vs. MetaLeak-T",
				Header: []string{"victim implementation", "ops observed", "op classification", "exponent recovery"},
			}
			for _, part := range parts {
				r.Rows = append(r.Rows, part.([]string))
			}
			r.PaperClaim = "(§IX context) constant-sequence implementations remove the call-sequence leak even though the channel itself persists"
			r.Measured = fmt.Sprintf("ops classified %s vs %s; key recovery %s vs %s",
				r.Rows[0][2], r.Rows[1][2], r.Rows[0][3], r.Rows[1][3])
			return r, nil
		},
	}
}
