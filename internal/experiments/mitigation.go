package experiments

import (
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/core"
	"metaleak/internal/machine"
	"metaleak/internal/mpi"
	"metaleak/internal/reconstruct"
	"metaleak/internal/stats"
	"metaleak/internal/victim"
)

// DefenseIsolation evaluates the §IX-C mitigation: per-domain integrity
// trees with private on-chip roots. The attack construction itself must
// fail — there is no shared non-root node to monitor and no shared
// version counter to modulate — while honest execution and tamper
// detection keep working. The costs the paper flags (extra roots, memory
// stranding from fixed partitioning) are reported.
func DefenseIsolation(o Options) (*Result, error) {
	o = o.withDefaults()
	dp := machine.ConfigSCT()
	dp.Seed = o.Seed + 93
	dp.SecurePages = 1 << 20
	dp.IsolatedDomains = 4
	sys := machine.NewSystem(dp)
	victimPage := sys.AllocPage(1)
	attacker := core.NewAttacker(sys.System, sys.Ctrl, 0, true)

	r := &Result{
		ID:     "defiso",
		Title:  "Defence: per-domain integrity trees (§IX-C) vs. MetaLeak",
		Header: []string{"attack step", "outcome"},
	}
	levels := sys.Ctrl.Tree().StoredLevels()
	blocked := 0
	for level := 0; level < levels; level++ {
		if _, err := attacker.NewMonitor(victimPage, level); err != nil {
			blocked++
		}
	}
	r.Rows = append(r.Rows, []string{
		"MetaLeak-T monitor construction",
		fmt.Sprintf("blocked at %d/%d tree levels (no claimable frame shares a node with the victim)", blocked, levels),
	})
	_, cmErr := attacker.NewCounterMonitor(victimPage, 1, victimPage.Block(0))
	outcome := "blocked (no shared version counter reachable)"
	if cmErr == nil {
		outcome = "NOT blocked"
	}
	r.Rows = append(r.Rows, []string{"MetaLeak-C counter monitor", outcome})

	// Functionality and integrity still hold.
	var lat stats.Sample
	for core := 0; core < 4; core++ {
		p := sys.AllocPage(core)
		res := sys.WriteThrough(core, p.Block(0), [arch.BlockSize]byte{byte(core)})
		lat.Add(res.Latency)
		if _, rr := sys.Read(core, p.Block(0)); rr.Report.Tampered {
			return nil, fmt.Errorf("defiso: false tamper detection")
		}
	}
	r.Rows = append(r.Rows, []string{"honest execution", fmt.Sprintf("intact (write-through %s)", lat.Summary())})

	r.Notes = append(r.Notes,
		fmt.Sprintf("cost: %d on-chip roots instead of 1; fixed %d-page domain slices (memory stranding, as §IX-C warns)",
			isoRootCount(sys), dp.SecurePages/dp.IsolatedDomains))
	r.PaperClaim = "isolated per-domain trees remove non-root node sharing; fixed partitioning is inflexible"
	r.Measured = fmt.Sprintf("MetaLeak-T blocked at %d/%d levels; MetaLeak-C blocked; functionality preserved", blocked, levels)
	return r, nil
}

func isoRootCount(sys *machine.System) int {
	type rooted interface{ RootCount() int }
	if t, ok := sys.Ctrl.Tree().(rooted); ok {
		return t.RootCount()
	}
	return 1
}

// AblationSecureOverhead compares the secure designs against an
// unprotected baseline — the cost of the metadata machinery whose timing
// variation MetaLeak exploits. (VUL-1/VUL-2 exist precisely because this
// machinery is not free.)
func AblationSecureOverhead(o Options) (*Result, error) {
	o = o.withDefaults()
	r := &Result{
		ID:     "ablsec",
		Title:  "Ablation: secure-memory overhead vs. unprotected baseline",
		Header: []string{"config", "cold read", "warm-metadata read", "write-through", "read slowdown"},
	}
	measure := func(dp machine.DesignPoint) (cold, warm, write stats.Sample) {
		dp.Seed = o.Seed + 94
		if dp.SecurePages > 1<<16 {
			dp.SecurePages = 1 << 16
		}
		sys := machine.NewSystem(dp)
		for i := 0; i < 200; i++ {
			p := sys.AllocPage(0)
			b := p.Block(0)
			_, res := sys.Read(0, b)
			cold.Add(res.Latency)
			sys.Flush(0, b)
			_, res = sys.Read(0, b)
			warm.Add(res.Latency)
			wres := sys.WriteThrough(0, b, [arch.BlockSize]byte{byte(i)})
			write.Add(wres.Latency)
		}
		return cold, warm, write
	}
	base := machine.ConfigSCT()
	base.Name = "insecure"
	base.Insecure = true
	bCold, bWarm, bWrite := measure(base)
	r.Rows = append(r.Rows, []string{"insecure", cyc(bCold.Mean()), cyc(bWarm.Mean()), cyc(bWrite.Mean()), "1.0x"})
	for _, dp := range []machine.DesignPoint{machine.ConfigSCT(), machine.ConfigHT(), machine.ConfigSGX()} {
		c, w, wr := measure(dp)
		r.Rows = append(r.Rows, []string{
			dp.Name, cyc(c.Mean()), cyc(w.Mean()), cyc(wr.Mean()),
			fmt.Sprintf("%.1fx", c.Mean()/bCold.Mean()),
		})
	}
	r.PaperClaim = "(context) metadata maintenance is the overhead that creates VUL-1/VUL-2's timing surface"
	r.Measured = "secure cold reads pay the counter fetch + tree walk over the flat baseline"
	return r, nil
}

// DefenseRandomizedMeta deploys MIRAGE as the metadata cache (§IX-B) and
// measures both halves of the paper's argument: conflict-based mEvict
// becomes impossible (no set geometry), yet MetaLeak-T survives via
// volume-based eviction — at a cost quantified against the baseline.
func DefenseRandomizedMeta(o Options) (*Result, error) {
	o = o.withDefaults()
	r := &Result{
		ID:     "defrand",
		Title:  "Defence: MIRAGE-randomized metadata cache vs. MetaLeak-T",
		Header: []string{"configuration", "mEvict strategy", "accuracy (60 rounds)", "cycles/round"},
	}

	runRounds := func(evict func(), reload func() (bool, arch.Cycles), victim func(), sys *machine.System) (float64, float64) {
		correct, rounds := 0, 60
		start := sys.Now()
		for i := 0; i < rounds; i++ {
			evict()
			want := i%2 == 0
			if want {
				victim()
			}
			got, _ := reload()
			if got == want {
				correct++
			}
		}
		return float64(correct) / float64(rounds), float64(sys.Now()-start) / float64(rounds)
	}

	// Baseline: set-associative metadata cache, conflict-based monitor.
	base := machine.ConfigSCT()
	base.Seed = o.Seed + 95
	base.SecurePages = 1 << 16
	base.MetaKB = 16
	base.FastCrypto = true
	bSys := machine.NewSystem(base)
	bVictim := bSys.AllocPage(1)
	bAtk := core.NewAttacker(bSys.System, bSys.Ctrl, 0, false)
	bMon, err := bAtk.NewMonitor(bVictim, 0)
	if err != nil {
		return nil, err
	}
	bMon.Calibrate(8)
	bAcc, bCyc := runRounds(bMon.Evict, bMon.Reload, func() {
		bSys.Flush(1, bVictim.Block(0))
		bSys.Touch(1, bVictim.Block(0))
	}, bSys)
	r.Rows = append(r.Rows, []string{"set-associative (baseline)", "conflict eviction sets", pct(bAcc), cyc(bCyc)})

	// Defended: MIRAGE metadata cache.
	dp := base
	dp.Seed = o.Seed + 96
	dp.RandomizedMeta = true
	sys := machine.NewSystem(dp)
	victimPage := sys.AllocPage(1)
	attacker := core.NewAttacker(sys.System, sys.Ctrl, 0, false)
	if _, err := attacker.NewMonitor(victimPage, 0); err == nil {
		return nil, fmt.Errorf("defrand: conflict monitor unexpectedly built")
	}
	r.Rows = append(r.Rows, []string{"MIRAGE metadata cache", "conflict eviction sets", "impossible (no set mapping)", "-"})

	vm, err := attacker.NewVolumeMonitor(victimPage, 0, 800)
	if err != nil {
		return nil, err
	}
	vm.Calibrate(10)
	vAcc, vCyc := runRounds(vm.Evict, vm.Reload, func() {
		sys.Flush(1, victimPage.Block(0))
		sys.Touch(1, victimPage.Block(0))
	}, sys)
	r.Rows = append(r.Rows, []string{"MIRAGE metadata cache", "volume flooding (Fig. 18)", pct(vAcc), cyc(vCyc)})

	r.PaperClaim = "randomization defeats eviction-set construction but not MetaLeak: ~7000 random accesses still evict the target (Fig. 18 / §IX-B)"
	r.Measured = fmt.Sprintf("conflict mEvict impossible; volume mEvict %s accurate at %.0fx the baseline round cost",
		pct(vAcc), vCyc/bCyc)
	return r, nil
}

// DefenseLadder evaluates the classic software countermeasure: the same
// MetaLeak-T attack against the square-and-multiply victim and against a
// Montgomery-ladder victim. The attacker's page classification stays
// near-perfect in both cases — but the ladder's access sequence carries no
// key information, so recovery collapses to coin-flipping.
func DefenseLadder(o Options) (*Result, error) {
	o = o.withDefaults()
	r := &Result{
		ID:     "defladder",
		Title:  "Defence: constant-sequence exponentiation (Montgomery ladder) vs. MetaLeak-T",
		Header: []string{"victim implementation", "ops observed", "op classification", "exponent recovery"},
	}
	type expRun func(v *victim.RSAVictim, base, e, m mpi.Int, iv *victim.Interleave) (mpi.Int, []victim.Op)
	run := func(name string, f expRun) error {
		dp := machine.ConfigSCT()
		dp.Seed = o.Seed + 98
		dp.SecurePages = 1 << 16
		sys := machine.NewSystem(dp)
		attacker := core.NewAttacker(sys.System, sys.Ctrl, 0, false)
		frames, err := attacker.PlaceVictimPages(1, 2, 0)
		if err != nil {
			return err
		}
		rv := &victim.RSAVictim{Proc: victim.NewProc(sys.System, 1), SqrPage: frames[0], MulPage: frames[1]}
		dm, err := attacker.NewDualMonitor(rv.SqrPage, rv.MulPage, 0)
		if err != nil {
			return err
		}
		rng := arch.NewRNG(o.Seed ^ 0x1ad)
		exp := mpi.Random(rng, o.ExpBits)
		modulus := mpi.Random(rng, 2*o.ExpBits)
		if !modulus.IsOdd() {
			modulus = modulus.Add(mpi.New(1))
		}
		var ops []victim.Op
		iv := &victim.Interleave{
			Before: dm.Evict,
			After: func() {
				if dm.Classify() {
					ops = append(ops, victim.OpSquare)
				} else {
					ops = append(ops, victim.OpMultiply)
				}
			},
		}
		_, oracle := f(rv, mpi.New(65537), exp, modulus, iv)
		opAcc := reconstruct.OpAccuracy(ops, oracle)
		bits := reconstruct.ExponentFromOps(ops)
		want := reconstruct.BitsOfExponent(exp)
		bitAcc := reconstruct.AlignedAccuracy(bits, want)
		r.Rows = append(r.Rows, []string{
			name, fmt.Sprintf("%d", len(oracle)), pct(opAcc), pct(bitAcc),
		})
		return nil
	}
	if err := run("square-and-multiply (libgcrypt 1.5.2)", (*victim.RSAVictim).ModExp); err != nil {
		return nil, err
	}
	if err := run("Montgomery ladder (hardened)", (*victim.RSAVictim).ModExpLadder); err != nil {
		return nil, err
	}
	r.PaperClaim = "(§IX context) constant-sequence implementations remove the call-sequence leak even though the channel itself persists"
	r.Measured = fmt.Sprintf("ops classified %s vs %s; key recovery %s vs %s",
		r.Rows[0][2], r.Rows[1][2], r.Rows[0][3], r.Rows[1][3])
	return r, nil
}
