package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"metaleak/internal/dispatch"
	"metaleak/internal/faults"
)

// The hunt checkpoint follows the sweep checkpoint's append discipline
// exactly (see checkpoint.go for the crash-salvage rationale): a JSONL
// file of one header then completed HuntRow lines, every line written
// in a single '\n'-terminated Write, torn trailing lines salvaged at
// open. It has its own format string and fingerprint because a hunt
// grid and a sweep grid are never interchangeable — resuming one from
// the other must fail loudly at the header, not at a row.

// huntCheckpointFormat identifies the file layout; bump on changes.
const huntCheckpointFormat = "metaleak-hunt-checkpoint/v1"

// Fingerprint identifies the hunt grid for checkpoint and dispatch
// compatibility: a hash of the expanded cell list (with every derived
// seed, covering the base seed transitively), the program/secret
// shapes, and the design-point overrides.
func (a HuntAxes) Fingerprint() string {
	a = a.normalized()
	h := sha256.New()
	fmt.Fprintf(h, "hunt/v1 seed=%d ops=%d secretlen=%d set=%q\n", a.Seed, a.Ops, a.SecretLen, a.Set)
	for _, c := range a.Cells() {
		fmt.Fprintf(h, "%d %s %d %d %d %d %d\n",
			c.Index, c.Config, c.Program, c.Pair, c.ProgSeed, c.PairSeed, c.Seed)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// HuntCheckpoint is the durable record of a hunt in progress.
type HuntCheckpoint struct {
	path   string
	header checkpointHeader
	cells  []HuntCell

	mu        sync.Mutex
	rows      map[int]HuntRow
	f         *os.File
	appends   int
	tamper    func(path string, appendN int) bool
	crashed   bool
	discarded string
	err       error
}

// OpenHuntCheckpoint opens (or starts) the checkpoint for a hunt grid,
// with the same salvage and refusal semantics as OpenCheckpoint.
func OpenHuntCheckpoint(path string, axes HuntAxes) (*HuntCheckpoint, error) {
	axes = axes.normalized()
	cells := axes.Cells()
	cp := &HuntCheckpoint{
		path: path,
		header: checkpointHeader{
			Format:      huntCheckpointFormat,
			Fingerprint: axes.Fingerprint(),
			Cells:       len(cells),
		},
		cells: cells,
		rows:  map[int]HuntRow{},
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) || (err == nil && len(data) == 0) {
		return cp, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}

	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		cp.discarded = string(data)
		if err := os.Truncate(path, 0); err != nil {
			return nil, fmt.Errorf("checkpoint %s: cutting torn header: %w", path, err)
		}
		return cp, nil
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(data[:nl], &hdr); err != nil || hdr.Format != huntCheckpointFormat {
		return nil, fmt.Errorf("checkpoint %s: not a %s file", path, huntCheckpointFormat)
	}
	if hdr.Fingerprint != cp.header.Fingerprint {
		return nil, fmt.Errorf("checkpoint %s: fingerprint %.12s… does not match this hunt's %.12s… — "+
			"it was written by different axes (configs, programs, pairs, ops, secret length, seed, or -set overrides); "+
			"rerun with the original arguments or remove the file", path, hdr.Fingerprint, cp.header.Fingerprint)
	}

	off := nl + 1
	rest := data[off:]
	for line := 2; len(rest) > 0; line++ {
		idx := bytes.IndexByte(rest, '\n')
		if idx < 0 {
			cp.discarded = string(rest)
			if err := os.Truncate(path, int64(off)); err != nil {
				return nil, fmt.Errorf("checkpoint %s: cutting torn line: %w", path, err)
			}
			break
		}
		seg := rest[:idx]
		off += idx + 1
		rest = rest[idx+1:]
		if len(bytes.TrimSpace(seg)) == 0 {
			continue
		}
		var row HuntRow
		if err := json.Unmarshal(seg, &row); err != nil {
			return nil, fmt.Errorf("checkpoint %s: line %d: %w", path, line, err)
		}
		if row.Index < 0 || row.Index >= len(cells) {
			return nil, fmt.Errorf("checkpoint %s: line %d: cell index %d outside the %d-cell grid",
				path, line, row.Index, len(cells))
		}
		if row.HuntCell != cells[row.Index] {
			return nil, fmt.Errorf("checkpoint %s: line %d: cell %d does not match the grid (file %+v, grid %+v)",
				path, line, row.Index, row.HuntCell, cells[row.Index])
		}
		cp.rows[row.Index] = row
	}
	return cp, nil
}

// Discarded returns the torn trailing line salvaged away at open.
func (c *HuntCheckpoint) Discarded() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.discarded
}

// SetTamperer installs the fault-injection hook (see
// Checkpoint.SetTamperer).
func (c *HuntCheckpoint) SetTamperer(fn func(path string, appendN int) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tamper = fn
}

// Completed returns the checkpointed rows that finished without error;
// failed rows re-run on resume.
func (c *HuntCheckpoint) Completed() map[int]HuntRow {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]HuntRow, len(c.rows))
	for i, r := range c.rows {
		if r.Err == "" {
			out[i] = r
		}
	}
	return out
}

// Append records a settled row and appends it to the file.
func (c *HuntCheckpoint) Append(row HuntRow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil || c.crashed {
		return
	}
	c.rows[row.Index] = row
	c.err = c.appendLocked(row)
}

// Err returns the first persistence failure, if any.
func (c *HuntCheckpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close releases the append handle.
func (c *HuntCheckpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

func (c *HuntCheckpoint) appendLocked(row HuntRow) error {
	if c.f == nil {
		f, err := os.OpenFile(c.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("checkpoint %s: %w", c.path, err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("checkpoint %s: %w", c.path, err)
		}
		if st.Size() == 0 {
			hdr, err := json.Marshal(c.header)
			if err != nil {
				f.Close()
				return err
			}
			if _, err := f.Write(append(hdr, '\n')); err != nil {
				f.Close()
				return fmt.Errorf("checkpoint %s: %w", c.path, err)
			}
		}
		c.f = f
	}
	line, err := json.Marshal(row)
	if err != nil {
		return err
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	c.appends++
	if c.tamper != nil && c.tamper(c.path, c.appends) {
		c.crashed = true
		c.f.Close()
		c.f = nil
	}
	return nil
}

// harnessFromSpec builds a per-process fault harness from a job's
// harness spec; empty means no planned faults.
func harnessFromSpec(spec string) (*faults.Harness, error) {
	if spec == "" {
		return nil, nil
	}
	plan, err := faults.Parse(spec)
	if err != nil {
		return nil, err
	}
	return plan.NewHarness(), nil
}

// jobKind probes a dispatch job payload for its engine tag. Sweep jobs
// predate the tag, so "" routes to the sweep engine.
type jobKind struct {
	Kind string
}

// NewJobSession routes a worker-side job payload to the engine that
// wrote it: "hunt" to the differential fuzzer, "" or "sweep" to the
// sweep. It is the Init hook `metaleak worker` uses, so one worker
// binary serves any coordinator.
func NewJobSession(spec json.RawMessage) (dispatch.Session, error) {
	var k jobKind
	if err := json.Unmarshal(spec, &k); err != nil {
		return dispatch.Session{}, fmt.Errorf("job: %w", err)
	}
	switch k.Kind {
	case "", "sweep":
		return NewSweepSession(spec)
	case "hunt":
		return NewHuntSession(spec)
	}
	return dispatch.Session{}, fmt.Errorf("job: unknown kind %q (sweep or hunt)", k.Kind)
}
