// Package experiments regenerates every table and figure of the paper's
// evaluation (§V, §VI, §VIII, §IX-B) on the simulated secure processors.
// Each experiment returns a Result with the same rows/series the paper
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Every experiment is declared as a Spec: a list of independent Trials
// (each builds its own machines from seeds derived from Options.Seed
// and the trial's identity) plus a pure Merge that assembles the
// partials in trial-index order. internal/runner executes the trials on
// a bounded worker pool, so `metaleak run <id> -par N` produces
// byte-identical output for every N — including N=1, the historic
// sequential behaviour. The legacy one-call entry points (Fig6, ...)
// remain as sequential wrappers over their specs.
//
// Experiments accept an Options to trade runtime for sample count; the
// zero value selects defaults sized for interactive runs, and Full()
// selects the paper-scale parameters.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"metaleak/internal/arch"
	"metaleak/internal/runner"
)

// Options scales the experiments.
type Options struct {
	// Samples scales per-class sample counts (Fig. 6/7/8).
	Samples int
	// Bits is the covert-channel transmission length (Fig. 11).
	Bits int
	// Symbols is the MetaLeak-C covert transmission length (Fig. 14).
	Symbols int
	// ImageSize is the square edge of the Fig. 15 victim images.
	ImageSize int
	// ExpBits is the RSA exponent length for Fig. 16.
	ExpBits int
	// PrimeBits is the RSA prime length for Fig. 17.
	PrimeBits int
	// Trials is the per-point repetition count for Fig. 18.
	Trials int
	// Seed perturbs every deterministic RNG in the run.
	Seed uint64
}

// Default returns interactive-scale options.
func Default() Options {
	return Options{
		Samples:   1000,
		Bits:      250,
		Symbols:   60,
		ImageSize: 48,
		ExpBits:   192,
		PrimeBits: 128,
		Trials:    40,
	}
}

// Full returns paper-scale options (minutes of runtime).
func Full() Options {
	return Options{
		Samples:   10000,
		Bits:      1000,
		Symbols:   1000,
		ImageSize: 64,
		ExpBits:   512,
		PrimeBits: 256,
		Trials:    100,
	}
}

func (o Options) withDefaults() Options {
	d := Default()
	if o.Samples == 0 {
		o.Samples = d.Samples
	}
	if o.Bits == 0 {
		o.Bits = d.Bits
	}
	if o.Symbols == 0 {
		o.Symbols = d.Symbols
	}
	if o.ImageSize == 0 {
		o.ImageSize = d.ImageSize
	}
	if o.ExpBits == 0 {
		o.ExpBits = d.ExpBits
	}
	if o.PrimeBits == 0 {
		o.PrimeBits = d.PrimeBits
	}
	if o.Trials == 0 {
		o.Trials = d.Trials
	}
	return o
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string // "fig6", "table1", ...
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry free-form findings (trace snippets, ASCII art).
	Notes []string
	// PaperClaim and Measured summarize the comparison for EXPERIMENTS.md.
	PaperClaim string
	Measured   string
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Header) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cells []string) {
			for i, c := range cells {
				if i < len(widths) {
					fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
				} else {
					sb.WriteString(c + "  ")
				}
			}
			sb.WriteString("\n")
		}
		line(r.Header)
		for _, row := range r.Rows {
			line(row)
		}
	}
	for _, n := range r.Notes {
		sb.WriteString(n + "\n")
	}
	if r.PaperClaim != "" {
		fmt.Fprintf(&sb, "paper:    %s\n", r.PaperClaim)
	}
	if r.Measured != "" {
		fmt.Fprintf(&sb, "measured: %s\n", r.Measured)
	}
	return sb.String()
}

// Registry maps experiment IDs to their spec constructors. A spec
// enumerates the experiment's independent trials plus the pure merge
// that assembles them (see spec.go); `Run` or Spec.Run executes one.
var Registry = map[string]func(Options) *Spec{
	"table1":    SpecTable1,
	"fig6":      SpecFig6,
	"fig7":      SpecFig7,
	"fig8":      SpecFig8,
	"fig11":     SpecFig11,
	"fig12":     SpecFig12,
	"fig14":     SpecFig14,
	"fig15":     SpecFig15,
	"fig15c":    SpecFig15C,
	"fig16":     SpecFig16,
	"fig17":     SpecFig17,
	"fig18":     SpecFig18,
	"ablctr":    SpecAblationCounters,
	"abltree":   SpecAblationTrees,
	"ablmeta":   SpecAblationMetaCache,
	"ablsec":    SpecAblationSecureOverhead,
	"defiso":    SpecDefenseIsolation,
	"defrand":   SpecDefenseRandomizedMeta,
	"ablminor":  SpecAblationMinorWidth,
	"defladder": SpecDefenseLadder,
	"ablnoise":  SpecAblationNoise,
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// stats helpers --------------------------------------------------------------

type sample []arch.Cycles

func (s sample) sorted() sample {
	out := append(sample(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s sample) mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	return sum / float64(len(s))
}

func (s sample) percentile(p float64) arch.Cycles {
	if len(s) == 0 {
		return 0
	}
	sorted := s.sorted()
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func cyc(v float64) string { return fmt.Sprintf("%.0f", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Markdown renders the result as a GitHub-flavoured markdown section —
// the building block of `metaleak report`.
func (r *Result) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### `%s` — %s\n\n", r.ID, r.Title)
	if len(r.Header) > 0 {
		sb.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
		sb.WriteString("|" + strings.Repeat("---|", len(r.Header)) + "\n")
		for _, row := range r.Rows {
			sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
		sb.WriteString("\n")
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "\n") {
			sb.WriteString("```\n" + strings.TrimRight(n, "\n") + "\n```\n\n")
		} else {
			sb.WriteString(n + "\n\n")
		}
	}
	if r.PaperClaim != "" {
		fmt.Fprintf(&sb, "*Paper:* %s\n\n", r.PaperClaim)
	}
	if r.Measured != "" {
		fmt.Fprintf(&sb, "*Measured:* %s\n\n", r.Measured)
	}
	return sb.String()
}

// Report runs every registered experiment sequentially and renders one
// markdown document (the regenerated evaluation).
func Report(o Options) (string, error) {
	return ReportContext(context.Background(), o, 1)
}

// ReportContext regenerates the whole evaluation at the given trial
// parallelism. Every spec's trials are flattened into one runner pool —
// workers stay busy across experiment boundaries instead of draining at
// each figure — and each spec's merge consumes its own index-aligned
// slice of the partials, so the document is byte-identical for any
// worker count.
func ReportContext(ctx context.Context, o Options, workers int) (string, error) {
	ids := IDs()
	specs := make([]*Spec, len(ids))
	offsets := make([]int, len(ids))
	var flat []runner.Trial
	for i, id := range ids {
		specs[i] = Registry[id](o)
		offsets[i] = len(flat)
		for _, tr := range specs[i].Trials {
			flat = append(flat, tr.Run)
		}
	}
	parts, err := runner.Run(ctx, flat, workers)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("# MetaLeak — regenerated evaluation\n\n")
	sb.WriteString("Produced by `metaleak report`; see EXPERIMENTS.md for the paper comparison.\n\n")
	for i, spec := range specs {
		res, err := spec.Merge(parts[offsets[i] : offsets[i]+len(spec.Trials)])
		if err != nil {
			return "", fmt.Errorf("%s: %w", ids[i], err)
		}
		sb.WriteString(res.Markdown())
	}
	return sb.String(), nil
}
