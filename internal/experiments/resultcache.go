package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// The result cache is the content-addressed half of the sweep service:
// one completed cell's row, keyed by everything that determines it and
// nothing that doesn't. A sweep checkpoint is keyed by the whole grid's
// fingerprint, so it only ever serves an exact resubmission; the cell
// cache is keyed per cell, so *overlapping* grids — the same design
// points swept again with more reps, or submitted by a different client
// — reuse every cell they share and compute only the new ones. The file
// layout deliberately mirrors the checkpoint: JSONL with a header line,
// O(1) appends, and the crash signature confined to one torn trailing
// line that load salvages away.

// cellCacheFormat identifies the cache file layout; bump on changes.
const cellCacheFormat = "metaleak-cellcache/v1"

// CellFingerprint is the content address of one sweep cell's result: a
// hash of the cell's full identity — config, axis values, rep, and the
// derived machine seed — plus the per-cell bit budget and the
// design-point overrides, and *not* the cell's grid index. Everything
// runSweepCell reads is covered, so equal fingerprints compute
// byte-identical rows; the index is excluded, so the same design point
// at the same derived seed hashes equally wherever it lands in a grid.
func CellFingerprint(c SweepCell, bits int, set []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "cell/v1 %s %s %d %d %d %d bits=%d set=%q\n",
		c.Config, c.MinorLabel(), c.MetaKB, c.Noise, c.Rep, c.Seed, bits, set)
	return hex.EncodeToString(h.Sum(nil))
}

type cacheEntry struct {
	Key string
	Row SweepRow
}

// ResultCache is a content-addressed store of completed cell rows,
// optionally persisted as JSONL. Only clean measurements are cached —
// a failed cell may have failed transiently, and a later sweep deserves
// its retry. Safe for concurrent use.
//
// With a byte cap (OpenResultCacheCap) the cache garbage-collects
// itself: once its canonical footprint exceeds the cap, the oldest
// entries are evicted first — an evicted cell simply recomputes on its
// next request — and the file is compacted atomically (written to a
// sibling temp file, then renamed over), so a crash at any point leaves
// either the old complete file or the new complete file, never a mix.
type ResultCache struct {
	mu        sync.Mutex
	rows      map[string]SweepRow
	order     []string         // insertion order, oldest first; eviction order
	sizes     map[string]int64 // canonical per-entry footprint (line + '\n')
	bytes     int64            // canonical footprint: header + all entry lines
	maxBytes  int64            // GC threshold; 0 = unbounded
	evictions int
	path      string
	f         *os.File // lazily opened append handle
	discarded string   // torn trailing line salvaged away at open
	err       error    // first persistence failure; appends stop after it
}

// OpenResultCache opens (or starts) a persisted result cache at path,
// or a memory-only cache when path is empty. A missing or empty file
// begins an empty cache; an existing one must be well-formed apart from
// the append discipline's own crash signature — an unterminated
// trailing line, which is salvaged (cut off, reported via Discarded)
// instead of failing the open. The cache is unbounded; see
// OpenResultCacheCap for the size-capped variant.
func OpenResultCache(path string) (*ResultCache, error) {
	return OpenResultCacheCap(path, 0)
}

// OpenResultCacheCap is OpenResultCache with a garbage-collection cap:
// whenever the cache's canonical footprint exceeds maxBytes (0 =
// unbounded), the oldest entries are evicted until it fits and the file
// is compacted. An inherited over-cap file is trimmed at open.
func OpenResultCacheCap(path string, maxBytes int64) (*ResultCache, error) {
	rc := &ResultCache{rows: map[string]SweepRow{}, sizes: map[string]int64{}, path: path, maxBytes: maxBytes}
	hdrLine, err := json.Marshal(struct{ Format string }{cellCacheFormat})
	if err != nil {
		return nil, err
	}
	rc.bytes = int64(len(hdrLine)) + 1
	if path == "" {
		return rc, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) || (err == nil && len(data) == 0) {
		return rc, nil
	}
	if err != nil {
		return nil, fmt.Errorf("result cache %s: %w", path, err)
	}

	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		// A single torn line: a crash before the header's append
		// completed. Nothing salvageable, nothing lost — start fresh.
		rc.discarded = string(data)
		if err := os.Truncate(path, 0); err != nil {
			return nil, fmt.Errorf("result cache %s: cutting torn header: %w", path, err)
		}
		return rc, nil
	}
	var hdr struct{ Format string }
	if err := json.Unmarshal(data[:nl], &hdr); err != nil || hdr.Format != cellCacheFormat {
		return nil, fmt.Errorf("result cache %s: not a %s file", path, cellCacheFormat)
	}

	off := nl + 1
	rest := data[off:]
	for line := 2; len(rest) > 0; line++ {
		idx := bytes.IndexByte(rest, '\n')
		if idx < 0 {
			// Torn trailing line: the crash signature. Salvage everything
			// before it and cut the tear off so appends resume cleanly.
			rc.discarded = string(rest)
			if err := os.Truncate(path, int64(off)); err != nil {
				return nil, fmt.Errorf("result cache %s: cutting torn line: %w", path, err)
			}
			break
		}
		seg := rest[:idx]
		off += idx + 1
		rest = rest[idx+1:]
		if len(bytes.TrimSpace(seg)) == 0 {
			continue
		}
		var e cacheEntry
		if err := json.Unmarshal(seg, &e); err != nil {
			return nil, fmt.Errorf("result cache %s: line %d: %w", path, line, err)
		}
		if len(e.Key) != sha256.Size*2 {
			return nil, fmt.Errorf("result cache %s: line %d: malformed key %q", path, line, e.Key)
		}
		if e.Row.Err != "" {
			return nil, fmt.Errorf("result cache %s: line %d: cached row carries an error (%q) — only clean measurements belong here", path, line, e.Row.Err)
		}
		canon, err := json.Marshal(e)
		if err != nil {
			return nil, err
		}
		if old, ok := rc.sizes[e.Key]; ok {
			// Duplicates allowed, last wins — and the later line is the
			// younger one, so refresh its age for eviction purposes.
			rc.bytes -= old
			for i, k := range rc.order {
				if k == e.Key {
					rc.order = append(rc.order[:i], rc.order[i+1:]...)
					break
				}
			}
		}
		rc.rows[e.Key] = e.Row
		rc.sizes[e.Key] = int64(len(canon)) + 1
		rc.bytes += rc.sizes[e.Key]
		rc.order = append(rc.order, e.Key)
	}
	// An inherited file over the cap trims immediately, so a restarted
	// service with a lowered cap converges without waiting for traffic.
	if err := rc.gcLocked(); err != nil {
		return nil, err
	}
	return rc, nil
}

// Get returns the cached row for a cell fingerprint. The returned row's
// grid index is meaningless (normalized to 0 on Put): the caller
// re-stamps row.SweepCell with its own grid's cell, which the key
// guarantees is identical in every field the measurement depends on.
func (rc *ResultCache) Get(key string) (SweepRow, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	row, ok := rc.rows[key]
	return row, ok
}

// Put records one completed cell. Rows carrying an error are ignored
// (a failure may be transient; never serve it from cache), as are keys
// already present (re-running a cached grid must not grow the file).
// Under a byte cap, an insert that pushes the footprint over it evicts
// the oldest entries and compacts the file.
func (rc *ResultCache) Put(key string, row SweepRow) {
	if row.Err != "" {
		return
	}
	row.Index = 0 // grid-dependent; the key is grid-independent
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.rows[key]; ok {
		return
	}
	e := cacheEntry{Key: key, Row: row}
	line, err := json.Marshal(e)
	if err != nil {
		if rc.err == nil {
			rc.err = err
		}
		return
	}
	rc.rows[key] = row
	rc.sizes[key] = int64(len(line)) + 1
	rc.bytes += rc.sizes[key]
	rc.order = append(rc.order, key)
	if rc.path != "" && rc.err == nil {
		rc.err = rc.appendLocked(e)
	}
	if err := rc.gcLocked(); err != nil && rc.err == nil {
		rc.err = err
	}
}

// Len returns the number of cached cells.
func (rc *ResultCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.rows)
}

// Bytes returns the cache's canonical footprint: the file size a
// freshly compacted cache would occupy (header plus one line per
// entry). An append-only file with superseded duplicates can be
// larger until the next GC compaction rewrites it.
func (rc *ResultCache) Bytes() int64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bytes
}

// Evictions returns how many entries the byte-cap GC has dropped.
func (rc *ResultCache) Evictions() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.evictions
}

// gcLocked evicts oldest-first until the footprint fits the cap, then
// compacts the file. The newest entry always survives, even if it
// alone exceeds the cap — evicting it would make the cache useless at
// any cap smaller than one row.
func (rc *ResultCache) gcLocked() error {
	if rc.maxBytes <= 0 || rc.bytes <= rc.maxBytes {
		return nil
	}
	for len(rc.order) > 1 && rc.bytes > rc.maxBytes {
		key := rc.order[0]
		rc.order = rc.order[1:]
		rc.bytes -= rc.sizes[key]
		delete(rc.rows, key)
		delete(rc.sizes, key)
		rc.evictions++
	}
	if rc.path == "" || rc.err != nil {
		return nil // memory-only, or persistence already failed
	}
	return rc.compactLocked()
}

// compactLocked rewrites the file to exactly the surviving entries —
// header plus one line per entry in age order — via a sibling temp file
// renamed over the original. The rename is atomic, so a crash at any
// point leaves either the old complete file or the new complete file;
// either opens cleanly, the torn-line salvage never has to run on a
// compaction.
func (rc *ResultCache) compactLocked() error {
	var buf bytes.Buffer
	hdr, err := json.Marshal(struct{ Format string }{cellCacheFormat})
	if err != nil {
		return err
	}
	buf.Write(hdr)
	buf.WriteByte('\n')
	for _, key := range rc.order {
		line, err := json.Marshal(cacheEntry{Key: key, Row: rc.rows[key]})
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := rc.path + ".gc"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("result cache %s: compacting: %w", rc.path, err)
	}
	if rc.f != nil {
		rc.f.Close()
		rc.f = nil // next append reopens the compacted file
	}
	if err := os.Rename(tmp, rc.path); err != nil {
		return fmt.Errorf("result cache %s: compacting: %w", rc.path, err)
	}
	rc.bytes = int64(buf.Len())
	return nil
}

// Discarded returns the torn trailing line OpenResultCache salvaged
// away, if any — callers surface it as a warning so the data loss
// (exactly one re-computable cell) is visible, not silent.
func (rc *ResultCache) Discarded() string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.discarded
}

// Err returns the first persistence failure, if any. The cache keeps
// serving from memory after one — persistence is an optimization, not
// correctness.
func (rc *ResultCache) Err() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.err
}

// Close releases the append handle. The file needs no finalization —
// every append left it complete.
func (rc *ResultCache) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.f == nil {
		return nil
	}
	err := rc.f.Close()
	rc.f = nil
	return err
}

// appendLocked writes one entry line, opening the file (and writing the
// header) on first use. Lines are single Write calls ending in '\n', so
// the only state a crash can leave behind is a torn final line — the
// exact shape OpenResultCache knows how to salvage.
func (rc *ResultCache) appendLocked(e cacheEntry) error {
	if rc.f == nil {
		f, err := os.OpenFile(rc.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("result cache %s: %w", rc.path, err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("result cache %s: %w", rc.path, err)
		}
		if st.Size() == 0 {
			hdr, err := json.Marshal(struct{ Format string }{cellCacheFormat})
			if err != nil {
				f.Close()
				return err
			}
			if _, err := f.Write(append(hdr, '\n')); err != nil {
				f.Close()
				return fmt.Errorf("result cache %s: %w", rc.path, err)
			}
		}
		rc.f = f
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := rc.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("result cache %s: %w", rc.path, err)
	}
	return nil
}
