package trace

import (
	"encoding/binary"
	"errors"
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/secmem"
	"metaleak/internal/sim"
)

// Binary trace format: the persistence layer for recorded traces, so an
// experiment's raw access stream can be archived and re-analyzed without
// re-running the simulation. The encoding is delta/varint-compressed:
// recorded traces have slowly-advancing sequence numbers, clocks, and
// block addresses, so consecutive events differ by small values and the
// common event costs a handful of bytes instead of the ~60 of the raw
// struct.
//
// Layout:
//
//	magic "MLT1"
//	uvarint event count
//	per event:
//	  flags byte (bit0 Write, bit1 Overflow)
//	  zigzag-varint delta of Seq, Now, Block (vs. previous event)
//	  uvarint Latency
//	  zigzag-varint Core, Path, TreeLevels
//
// Deltas are signed so any event slice round-trips, not only
// time-ordered ones (the decoder must accept what a fuzzer or a foreign
// writer produces without panicking).

// codecMagic identifies the format; bump the digit on layout changes.
const codecMagic = "MLT1"

const (
	flagWrite    = 1 << 0
	flagOverflow = 1 << 1
)

// EncodeEvents serializes events into the binary trace format.
func EncodeEvents(events []sim.TraceEvent) []byte {
	buf := make([]byte, 0, len(codecMagic)+binary.MaxVarintLen64+20*len(events))
	buf = append(buf, codecMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(events)))
	var prev sim.TraceEvent
	for _, ev := range events {
		var flags byte
		if ev.Write {
			flags |= flagWrite
		}
		if ev.Overflow {
			flags |= flagOverflow
		}
		buf = append(buf, flags)
		buf = binary.AppendVarint(buf, int64(ev.Seq-prev.Seq))
		buf = binary.AppendVarint(buf, int64(ev.Now-prev.Now))
		buf = binary.AppendVarint(buf, int64(ev.Block-prev.Block))
		buf = binary.AppendUvarint(buf, uint64(ev.Latency))
		buf = binary.AppendVarint(buf, int64(ev.Core))
		buf = binary.AppendVarint(buf, int64(ev.Path))
		buf = binary.AppendVarint(buf, int64(ev.TreeLevels))
		prev = ev
	}
	return buf
}

// DecodeError locates a decode failure precisely in the input: Offset
// is the absolute byte offset at which decoding stopped, and Record is
// the index of the event being decoded when it stopped (-1 when the
// failure precedes the event stream — magic, count — or follows it —
// trailing bytes). A tool that hits one can report which record of an
// archived trace is damaged and how many bytes of it survive, instead
// of a bare "malformed input".
type DecodeError struct {
	Offset int64 // byte offset where decoding stopped
	Record int   // event index being decoded, or -1 outside the stream
	Err    error // what went wrong there
}

func (e *DecodeError) Error() string {
	if e.Record < 0 {
		return fmt.Sprintf("trace: byte %d: %v", e.Offset, e.Err)
	}
	return fmt.Sprintf("trace: record %d (byte %d): %v", e.Record, e.Offset, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// decodeState walks the buffer with explicit error tracking so each
// field read stays a one-liner; off tracks the absolute input offset
// for error reporting.
type decodeState struct {
	buf []byte
	off int64
	err error
}

func (d *decodeState) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errors.New("truncated or malformed uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	d.off += int64(n)
	return v
}

func (d *decodeState) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.err = errors.New("truncated or malformed varint")
		return 0
	}
	d.buf = d.buf[n:]
	d.off += int64(n)
	return v
}

func (d *decodeState) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.err = errors.New("truncated event")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	d.off++
	return b
}

// DecodeEvents parses a binary trace produced by EncodeEvents. It
// rejects malformed input with a *DecodeError — locating the damage by
// byte offset and record index, never panicking — and bounds its
// allocation by the input size rather than the claimed event count.
func DecodeEvents(data []byte) ([]sim.TraceEvent, error) {
	if len(data) < len(codecMagic) || string(data[:len(codecMagic)]) != codecMagic {
		return nil, &DecodeError{Record: -1,
			Err: fmt.Errorf("bad magic (not a %s trace)", codecMagic)}
	}
	d := &decodeState{buf: data[len(codecMagic):], off: int64(len(codecMagic))}
	count := d.uvarint()
	if d.err != nil {
		return nil, &DecodeError{Offset: d.off, Record: -1, Err: d.err}
	}
	// Each event occupies at least 8 bytes (flags + 7 one-byte varints);
	// a count beyond that is lying about the payload.
	if count > uint64(len(d.buf))/8 {
		return nil, &DecodeError{Offset: d.off, Record: -1,
			Err: fmt.Errorf("claimed %d events in %d payload bytes", count, len(d.buf))}
	}
	events := make([]sim.TraceEvent, 0, count)
	var prev sim.TraceEvent
	for i := uint64(0); i < count; i++ {
		start := d.off
		flags := d.byte()
		ev := sim.TraceEvent{
			Write:    flags&flagWrite != 0,
			Overflow: flags&flagOverflow != 0,
		}
		ev.Seq = prev.Seq + uint64(d.varint())
		ev.Now = prev.Now + arch.Cycles(d.varint())
		ev.Block = prev.Block + arch.BlockID(d.varint())
		ev.Latency = arch.Cycles(d.uvarint())
		ev.Core = int(d.varint())
		ev.Path = secmem.Path(d.varint())
		ev.TreeLevels = int(d.varint())
		if d.err != nil {
			return nil, &DecodeError{Offset: start, Record: int(i),
				Err: fmt.Errorf("%w (%d of %d events decoded)", d.err, i, count)}
		}
		events = append(events, ev)
		prev = ev
	}
	if len(d.buf) != 0 {
		return nil, &DecodeError{Offset: d.off, Record: -1,
			Err: fmt.Errorf("%d trailing bytes after %d events", len(d.buf), count)}
	}
	return events, nil
}

// MarshalBinary serializes the recorder's retained events (oldest
// first); the ring position and filter are not part of the format.
func (r *Recorder) MarshalBinary() ([]byte, error) {
	return EncodeEvents(r.Events()), nil
}

// UnmarshalBinary replaces the recorder's contents with the decoded
// events (capacity permitting, oldest dropped first, as if they had
// been recorded live).
func (r *Recorder) UnmarshalBinary(data []byte) error {
	events, err := DecodeEvents(data)
	if err != nil {
		return err
	}
	if r.capacity < 1 {
		// A zero-value Recorder (the usual encoding.BinaryUnmarshaler
		// receiver) sizes itself to hold the whole decoded trace.
		r.capacity = max(1, len(events))
	}
	r.buf, r.start, r.total = nil, 0, 0
	hook := r.Hook()
	for _, ev := range events {
		hook(ev)
	}
	return nil
}
