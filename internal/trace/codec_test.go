package trace

import (
	"math"
	"reflect"
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/secmem"
	"metaleak/internal/sim"
)

// sampleEvents builds a plausible recorded stream: advancing seq/clock,
// clustered blocks, mixed paths — the shape the delta encoding targets.
func sampleEvents(n int) []sim.TraceEvent {
	events := make([]sim.TraceEvent, n)
	now := arch.Cycles(1000)
	for i := range events {
		now += arch.Cycles(3 + i%200)
		events[i] = sim.TraceEvent{
			Seq:        uint64(i),
			Now:        now,
			Core:       i % 4,
			Block:      arch.BlockID(1<<20 + i*64%4096),
			Write:      i%3 == 0,
			Latency:    arch.Cycles(4 + i%700),
			Path:       secmem.Path(1 + i%5),
			TreeLevels: i % 9,
			Overflow:   i%97 == 0,
		}
	}
	return events
}

func TestCodecRoundTrip(t *testing.T) {
	cases := map[string][]sim.TraceEvent{
		"empty":  {},
		"single": sampleEvents(1),
		"stream": sampleEvents(500),
		"extremes": {
			{Seq: math.MaxUint64, Now: math.MaxUint64, Block: math.MaxUint64,
				Latency: math.MaxUint64, Core: math.MaxInt, Path: secmem.Path(math.MinInt),
				TreeLevels: math.MinInt, Write: true, Overflow: true},
			{}, // forces maximally negative deltas
		},
	}
	for name, events := range cases {
		data := EncodeEvents(events)
		got, err := DecodeEvents(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(got) != len(events) {
			t.Fatalf("%s: got %d events, want %d", name, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("%s: event %d = %+v, want %+v", name, i, got[i], events[i])
			}
		}
	}
}

func TestCodecCompression(t *testing.T) {
	events := sampleEvents(1000)
	data := EncodeEvents(events)
	perEvent := len(data) / len(events)
	if perEvent > 16 {
		t.Errorf("encoding averages %d bytes/event; the delta format should stay under 16", perEvent)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := EncodeEvents(sampleEvents(8))
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("XXXX\x00"),
		"short magic":  []byte("ML"),
		"truncated":    valid[:len(valid)-3],
		"trailing":     append(append([]byte{}, valid...), 0xfe),
		"lying count":  append([]byte(codecMagic), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
		"no count":     []byte(codecMagic),
		"giant varint": append([]byte(codecMagic), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80),
	}
	for name, data := range cases {
		if _, err := DecodeEvents(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

func TestRecorderBinaryRoundTrip(t *testing.T) {
	r := New(64)
	hook := r.Hook()
	for _, ev := range sampleEvents(100) { // overflows the ring: keeps last 64
		hook(ev)
	}
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(64)
	if err := r2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2.Events(), r.Events()) {
		t.Error("recorder round-trip changed the retained events")
	}

	// encoding.BinaryUnmarshaler is conventionally driven through a
	// zero-value receiver; it must size itself to the decoded trace.
	var r3 Recorder
	if err := r3.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r3.Events(), r.Events()) {
		t.Error("zero-value recorder round-trip changed the retained events")
	}
}

// FuzzTraceRoundTrip feeds arbitrary bytes to the decoder: it must never
// panic, and whatever it accepts must survive encode/decode unchanged
// (the canonical-form round-trip).
func FuzzTraceRoundTrip(f *testing.F) {
	// Seed corpus: real-shaped traces (the delta encoder's target
	// distribution), the empty trace, edge values, and junk.
	f.Add(EncodeEvents(sampleEvents(50)))
	f.Add(EncodeEvents(sampleEvents(1)))
	f.Add(EncodeEvents(nil))
	f.Add(EncodeEvents([]sim.TraceEvent{{Seq: math.MaxUint64, Core: -1, Path: -7, TreeLevels: -1}}))
	f.Add([]byte(codecMagic))
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeEvents(data)
		if err != nil {
			return // malformed input is fine, panicking is not
		}
		reenc := EncodeEvents(events)
		again, err := DecodeEvents(reenc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded trace failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}
