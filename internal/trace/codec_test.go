package trace

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/secmem"
	"metaleak/internal/sim"
)

// sampleEvents builds a plausible recorded stream: advancing seq/clock,
// clustered blocks, mixed paths — the shape the delta encoding targets.
func sampleEvents(n int) []sim.TraceEvent {
	events := make([]sim.TraceEvent, n)
	now := arch.Cycles(1000)
	for i := range events {
		now += arch.Cycles(3 + i%200)
		events[i] = sim.TraceEvent{
			Seq:        uint64(i),
			Now:        now,
			Core:       i % 4,
			Block:      arch.BlockID(1<<20 + i*64%4096),
			Write:      i%3 == 0,
			Latency:    arch.Cycles(4 + i%700),
			Path:       secmem.Path(1 + i%5),
			TreeLevels: i % 9,
			Overflow:   i%97 == 0,
		}
	}
	return events
}

func TestCodecRoundTrip(t *testing.T) {
	cases := map[string][]sim.TraceEvent{
		"empty":  {},
		"single": sampleEvents(1),
		"stream": sampleEvents(500),
		"extremes": {
			{Seq: math.MaxUint64, Now: math.MaxUint64, Block: math.MaxUint64,
				Latency: math.MaxUint64, Core: math.MaxInt, Path: secmem.Path(math.MinInt),
				TreeLevels: math.MinInt, Write: true, Overflow: true},
			{}, // forces maximally negative deltas
		},
	}
	for name, events := range cases {
		data := EncodeEvents(events)
		got, err := DecodeEvents(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(got) != len(events) {
			t.Fatalf("%s: got %d events, want %d", name, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("%s: event %d = %+v, want %+v", name, i, got[i], events[i])
			}
		}
	}
}

func TestCodecCompression(t *testing.T) {
	events := sampleEvents(1000)
	data := EncodeEvents(events)
	perEvent := len(data) / len(events)
	if perEvent > 16 {
		t.Errorf("encoding averages %d bytes/event; the delta format should stay under 16", perEvent)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := EncodeEvents(sampleEvents(8))
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("XXXX\x00"),
		"short magic":  []byte("ML"),
		"truncated":    valid[:len(valid)-3],
		"trailing":     append(append([]byte{}, valid...), 0xfe),
		"lying count":  append([]byte(codecMagic), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
		"no count":     []byte(codecMagic),
		"giant varint": append([]byte(codecMagic), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80),
	}
	for name, data := range cases {
		if _, err := DecodeEvents(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

// TestDecodeErrorLocation: decode failures are *DecodeError values that
// locate the damage — byte offset and record index — so a tool can say
// which record of an archive is torn, not just that something is.
func TestDecodeErrorLocation(t *testing.T) {
	valid := EncodeEvents(sampleEvents(8))

	// Truncation mid-stream: the error names a record within the count
	// and an offset inside the surviving bytes.
	trunc := valid[:len(valid)-3]
	_, err := DecodeEvents(trunc)
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("truncated trace error is %T (%v), want *DecodeError", err, err)
	}
	if de.Record < 0 || de.Record >= 8 {
		t.Errorf("truncated trace record = %d, want within [0,8)", de.Record)
	}
	if de.Offset <= int64(len(codecMagic)) || de.Offset > int64(len(trunc)) {
		t.Errorf("truncated trace offset = %d, want within (%d,%d]", de.Offset, len(codecMagic), len(trunc))
	}
	if !strings.Contains(de.Error(), "record") || !strings.Contains(de.Error(), "byte") {
		t.Errorf("error does not locate the damage: %q", de.Error())
	}

	// Failures outside the event stream report Record -1.
	for name, data := range map[string][]byte{
		"bad magic": []byte("XXXX\x00"),
		"trailing":  append(append([]byte{}, valid...), 0xfe),
		"no count":  []byte(codecMagic),
	} {
		_, err := DecodeEvents(data)
		if !errors.As(err, &de) {
			t.Fatalf("%s: error is %T (%v), want *DecodeError", name, err, err)
		}
		if de.Record != -1 {
			t.Errorf("%s: record = %d, want -1", name, de.Record)
		}
	}

	// Trailing-byte damage is located at the end of the valid stream.
	_, err = DecodeEvents(append(append([]byte{}, valid...), 0xfe, 0xfe))
	if errors.As(err, &de) && de.Offset != int64(len(valid)) {
		t.Errorf("trailing damage offset = %d, want %d", de.Offset, len(valid))
	}
}

func TestRecorderBinaryRoundTrip(t *testing.T) {
	r := New(64)
	hook := r.Hook()
	for _, ev := range sampleEvents(100) { // overflows the ring: keeps last 64
		hook(ev)
	}
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(64)
	if err := r2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2.Events(), r.Events()) {
		t.Error("recorder round-trip changed the retained events")
	}

	// encoding.BinaryUnmarshaler is conventionally driven through a
	// zero-value receiver; it must size itself to the decoded trace.
	var r3 Recorder
	if err := r3.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r3.Events(), r.Events()) {
		t.Error("zero-value recorder round-trip changed the retained events")
	}
}

// FuzzTraceRoundTrip feeds arbitrary bytes to the decoder: it must never
// panic, and whatever it accepts must survive encode/decode unchanged
// (the canonical-form round-trip).
func FuzzTraceRoundTrip(f *testing.F) {
	// Seed corpus: real-shaped traces (the delta encoder's target
	// distribution), the empty trace, edge values, and junk.
	f.Add(EncodeEvents(sampleEvents(50)))
	f.Add(EncodeEvents(sampleEvents(1)))
	f.Add(EncodeEvents(nil))
	f.Add(EncodeEvents([]sim.TraceEvent{{Seq: math.MaxUint64, Core: -1, Path: -7, TreeLevels: -1}}))
	f.Add([]byte(codecMagic))
	f.Add([]byte("not a trace at all"))
	// Truncation seeds: real traces cut at every interesting boundary —
	// mid-magic, mid-count, mid-record, and one byte short — so the
	// corpus explores the torn-file shapes the structured DecodeError
	// exists to locate.
	whole := EncodeEvents(sampleEvents(50))
	for _, cut := range []int{2, len(codecMagic), len(codecMagic) + 1, 9, len(whole) / 2, len(whole) - 1} {
		f.Add(append([]byte{}, whole[:cut]...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeEvents(data)
		if err != nil {
			return // malformed input is fine, panicking is not
		}
		reenc := EncodeEvents(events)
		again, err := DecodeEvents(reenc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded trace failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}
