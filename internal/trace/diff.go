package trace

import (
	"strings"

	"metaleak/internal/sim"
)

// The diff comparator is the forensic half of differential leakage
// hunting (DESIGN.md §13): given two traces of the same program run
// under two secrets on the same machine seed, any field-level
// difference is secret-dependent behaviour. This comparator reports
// *raw* divergence — every TraceEvent field, including the virtual
// block address, which a real attacker cannot see. The observation-
// projected diff an attacker's vantage justifies lives in
// internal/contract; this one answers "where exactly did the two
// executions first part ways", which is what you want when root-causing
// a divergence the contract layer flagged.

// DiffField is a bitmask naming the TraceEvent fields (plus the trace
// length) on which two traces differ.
type DiffField uint16

// Field bits, in TraceEvent declaration order; DiffLen marks a length
// mismatch (one trace has events the other does not).
const (
	DiffSeq DiffField = 1 << iota
	DiffNow
	DiffCore
	DiffBlock
	DiffWrite
	DiffLatency
	DiffPath
	DiffTreeLevels
	DiffOverflow
	DiffLen
)

var diffFieldNames = []struct {
	f    DiffField
	name string
}{
	{DiffSeq, "seq"},
	{DiffNow, "now"},
	{DiffCore, "core"},
	{DiffBlock, "block"},
	{DiffWrite, "write"},
	{DiffLatency, "latency"},
	{DiffPath, "path"},
	{DiffTreeLevels, "tree"},
	{DiffOverflow, "overflow"},
	{DiffLen, "len"},
}

// String renders the set bits joined by '+' ("now+block+latency"), or
// "none" for the empty mask.
func (f DiffField) String() string {
	var parts []string
	for _, e := range diffFieldNames {
		if f&e.f != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Divergence summarizes how two traces differ. The zero value (First
// -1 aside) means "identical".
type Divergence struct {
	LenA, LenB int
	// First is the index of the first differing position: an index into
	// the common prefix when a field differs there, the common-prefix
	// length when only the lengths differ, and -1 when the traces are
	// identical.
	First int
	// FirstFields is the field set differing at First (DiffLen for a
	// pure length divergence).
	FirstFields DiffField
	// Fields is the union of differing fields over all compared
	// positions, including DiffLen on a length mismatch.
	Fields DiffField
	// Count is the number of positions in the common prefix with at
	// least one differing field.
	Count int
}

// Diverged reports whether the traces differ at all.
func (d Divergence) Diverged() bool { return d.Fields != 0 }

// fieldDiff compares two events field by field.
func fieldDiff(a, b sim.TraceEvent) DiffField {
	var f DiffField
	if a.Seq != b.Seq {
		f |= DiffSeq
	}
	if a.Now != b.Now {
		f |= DiffNow
	}
	if a.Core != b.Core {
		f |= DiffCore
	}
	if a.Block != b.Block {
		f |= DiffBlock
	}
	if a.Write != b.Write {
		f |= DiffWrite
	}
	if a.Latency != b.Latency {
		f |= DiffLatency
	}
	if a.Path != b.Path {
		f |= DiffPath
	}
	if a.TreeLevels != b.TreeLevels {
		f |= DiffTreeLevels
	}
	if a.Overflow != b.Overflow {
		f |= DiffOverflow
	}
	return f
}

// Diff compares two traces position by position over their common
// prefix and reports where and how they diverge. It is symmetric up to
// the LenA/LenB labels: Diff(b, a) swaps those and nothing else.
func Diff(a, b []sim.TraceEvent) Divergence {
	d := Divergence{LenA: len(a), LenB: len(b), First: -1}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		f := fieldDiff(a[i], b[i])
		if f == 0 {
			continue
		}
		if d.First < 0 {
			d.First = i
			d.FirstFields = f
		}
		d.Fields |= f
		d.Count++
	}
	if len(a) != len(b) {
		d.Fields |= DiffLen
		if d.First < 0 {
			d.First = n
			d.FirstFields = DiffLen
		}
	}
	return d
}
