// Package trace records and renders memory-access traces from the
// simulator — the artifact a side-channel researcher actually inspects:
// which accesses took which metadata path, where the latency bands sit,
// and where overflows fired. Recorders attach to a system through
// sim.System.SetTraceHook and cost nothing when detached.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"metaleak/internal/secmem"
	"metaleak/internal/sim"
)

// Recorder keeps the most recent events in a ring buffer.
type Recorder struct {
	capacity int
	buf      []sim.TraceEvent
	start    int // index of the oldest event
	total    uint64
	// Filter, when non-nil, selects which events are kept.
	Filter func(sim.TraceEvent) bool
}

// New builds a recorder holding up to capacity events.
func New(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{capacity: capacity}
}

// Hook returns the function to install with SetTraceHook.
func (r *Recorder) Hook() func(sim.TraceEvent) {
	return func(ev sim.TraceEvent) {
		if r.Filter != nil && !r.Filter(ev) {
			return
		}
		r.total++
		if len(r.buf) < r.capacity {
			r.buf = append(r.buf, ev)
			return
		}
		r.buf[r.start] = ev
		r.start = (r.start + 1) % r.capacity
	}
}

// Attach installs the recorder on a system and returns a detach function.
func (r *Recorder) Attach(s *sim.System) func() {
	s.SetTraceHook(r.Hook())
	return func() { s.SetTraceHook(nil) }
}

// Total returns how many events matched (including ones the ring dropped).
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []sim.TraceEvent {
	out := make([]sim.TraceEvent, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// WriteCSV dumps the retained events as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "seq,cycle,core,block,write,latency,path,tree_levels,overflow"); err != nil {
		return err
	}
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%#x,%t,%d,%d,%d,%t\n",
			ev.Seq, ev.Now, ev.Core, uint64(ev.Block), ev.Write,
			ev.Latency, ev.Path, ev.TreeLevels, ev.Overflow); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders per-path counts and latency means plus overflow totals.
func (r *Recorder) Summary() string {
	type agg struct {
		n   int
		sum uint64
	}
	paths := make(map[secmem.Path]*agg)
	overflows := 0
	for _, ev := range r.Events() {
		a := paths[ev.Path]
		if a == nil {
			a = &agg{}
			paths[ev.Path] = a
		}
		a.n++
		a.sum += uint64(ev.Latency)
		if ev.Overflow {
			overflows++
		}
	}
	keys := make([]int, 0, len(paths))
	for p := range paths {
		keys = append(keys, int(p))
	}
	sort.Ints(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d events recorded (%d total matched)\n", len(r.Events()), r.total)
	for _, k := range keys {
		a := paths[secmem.Path(k)]
		fmt.Fprintf(&sb, "  path %d: %6d accesses, mean %5.0f cycles\n",
			k, a.n, float64(a.sum)/float64(a.n))
	}
	fmt.Fprintf(&sb, "  overflow events: %d\n", overflows)
	return sb.String()
}
