package trace

import (
	"testing"

	"metaleak/internal/sim"
)

func TestDiffIdentical(t *testing.T) {
	evs := sampleEvents(40)
	d := Diff(evs, evs)
	if d.Diverged() || d.First != -1 || d.Fields != 0 || d.Count != 0 {
		t.Fatalf("identical traces diverged: %+v", d)
	}
	if d.LenA != 40 || d.LenB != 40 {
		t.Fatalf("lengths: %+v", d)
	}
}

func TestDiffFirstAndFields(t *testing.T) {
	a := sampleEvents(10)
	b := sampleEvents(10)
	b[3].Latency += 100
	b[3].Path++
	b[7].Overflow = !b[7].Overflow
	d := Diff(a, b)
	if !d.Diverged() {
		t.Fatal("divergence missed")
	}
	if d.First != 3 || d.FirstFields != DiffLatency|DiffPath {
		t.Fatalf("first divergence: %+v (fields %s)", d, d.FirstFields)
	}
	if d.Fields != DiffLatency|DiffPath|DiffOverflow {
		t.Fatalf("field union: %s", d.Fields)
	}
	if d.Count != 2 {
		t.Fatalf("count: %d", d.Count)
	}
}

func TestDiffLengthOnly(t *testing.T) {
	a := sampleEvents(10)
	d := Diff(a, a[:6])
	if !d.Diverged() || d.Fields != DiffLen || d.First != 6 || d.FirstFields != DiffLen {
		t.Fatalf("truncated trace: %+v (fields %s)", d, d.Fields)
	}
	if d.Count != 0 {
		t.Fatalf("count over common prefix: %d", d.Count)
	}
}

func TestDiffEmpty(t *testing.T) {
	if d := Diff(nil, nil); d.Diverged() || d.First != -1 {
		t.Fatalf("empty vs empty: %+v", d)
	}
	if d := Diff(sampleEvents(1), nil); !d.Diverged() || d.Fields != DiffLen || d.First != 0 {
		t.Fatalf("one vs empty: %+v", d)
	}
}

func TestDiffFieldString(t *testing.T) {
	if s := (DiffLatency | DiffBlock).String(); s != "block+latency" {
		t.Fatalf("mask render: %q", s)
	}
	if s := DiffField(0).String(); s != "none" {
		t.Fatalf("empty mask render: %q", s)
	}
}

// interleaveEvents merges two traces by alternating events — the
// attacker/victim co-schedule shape, and a seed pattern that makes
// every field diverge early.
func interleaveEvents(a, b []sim.TraceEvent) []sim.TraceEvent {
	var out []sim.TraceEvent
	for i := 0; i < len(a) || i < len(b); i++ {
		if i < len(a) {
			out = append(out, a[i])
		}
		if i < len(b) {
			out = append(out, b[i])
		}
	}
	return out
}

// FuzzTraceDiff drives the comparator with arbitrary decoded trace
// pairs and checks its algebra: reflexivity (a trace never diverges
// from itself), symmetry up to the length labels, and bounds on the
// reported indices and counts.
func FuzzTraceDiff(f *testing.F) {
	long := sampleEvents(50)
	short := sampleEvents(12)
	shifted := sampleEvents(50)
	for i := range shifted {
		shifted[i].Latency += 64
		shifted[i].Now += 640
	}
	enc := EncodeEvents
	// Seeds: identical pair, disjoint pair, truncated pair (same prefix,
	// different length), interleaved traces, and raw junk.
	f.Add(enc(long), enc(long))
	f.Add(enc(long), enc(short))
	f.Add(enc(long), enc(long[:20]))
	f.Add(enc(long), enc(shifted))
	f.Add(enc(interleaveEvents(long, shifted)), enc(long))
	f.Add(enc(interleaveEvents(short, long)), enc(interleaveEvents(long, short)))
	f.Add(enc(long)[:10], enc(long))
	f.Add([]byte("junk"), enc(nil))

	f.Fuzz(func(t *testing.T, da, db []byte) {
		a, errA := DecodeEvents(da)
		b, errB := DecodeEvents(db)
		if errA != nil || errB != nil {
			return // undecodable inputs are the codec fuzzer's concern
		}
		if d := Diff(a, a); d.Diverged() || d.First != -1 || d.Count != 0 {
			t.Fatalf("self-diff diverged: %+v", d)
		}
		d := Diff(a, b)
		r := Diff(b, a)
		if d.Fields != r.Fields || d.First != r.First || d.FirstFields != r.FirstFields ||
			d.Count != r.Count || d.LenA != r.LenB || d.LenB != r.LenA {
			t.Fatalf("asymmetric diff: %+v vs %+v", d, r)
		}
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if d.Count < 0 || d.Count > n {
			t.Fatalf("count %d outside common prefix %d", d.Count, n)
		}
		switch {
		case d.First == -1:
			if d.Diverged() || len(a) != len(b) {
				t.Fatalf("no first index but diverged: %+v", d)
			}
		case d.First < 0 || d.First > n:
			t.Fatalf("first index %d outside [0,%d]", d.First, n)
		case d.FirstFields == 0 || d.FirstFields&^d.Fields != 0:
			t.Fatalf("first fields %s not within union %s", d.FirstFields, d.Fields)
		}
		if d.Diverged() != (len(a) != len(b) || d.Count > 0) {
			t.Fatalf("Diverged() inconsistent: %+v", d)
		}
	})
}
