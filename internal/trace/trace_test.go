package trace

import (
	"strings"
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/machine"
	"metaleak/internal/secmem"
	"metaleak/internal/sim"
)

func sys(t *testing.T) *machine.System {
	t.Helper()
	dp := machine.ConfigSCT()
	dp.SecurePages = 1 << 14
	dp.Seed = 9
	return machine.NewSystem(dp)
}

func TestRecorderCapturesAccesses(t *testing.T) {
	s := sys(t)
	r := New(128)
	detach := r.Attach(s.System)
	p := s.AllocPage(0)
	s.Read(0, p.Block(0))
	s.Read(0, p.Block(0))
	s.Flush(0, p.Block(0))
	s.Read(0, p.Block(0))
	detach()
	s.Read(0, p.Block(1)) // after detach: unrecorded

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events recorded", len(evs))
	}
	if evs[0].Path != secmem.PathTreeMiss || evs[1].Path != secmem.PathCacheHit || evs[2].Path != secmem.PathCounterHit {
		t.Fatalf("paths %v %v %v", evs[0].Path, evs[1].Path, evs[2].Path)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq || evs[i].Now < evs[i-1].Now {
			t.Fatal("events out of order")
		}
	}
}

func TestRecorderRingDropsOldest(t *testing.T) {
	s := sys(t)
	r := New(4)
	r.Attach(s.System)
	p := s.AllocPage(0)
	for i := 0; i < 10; i++ {
		s.Read(0, p.Block(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d", len(evs))
	}
	if r.Total() != 10 {
		t.Fatalf("total %d", r.Total())
	}
	// The retained events are the most recent four, in order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatal("ring not contiguous")
		}
	}
}

func TestRecorderFilter(t *testing.T) {
	s := sys(t)
	r := New(64)
	r.Filter = func(ev sim.TraceEvent) bool { return ev.Write }
	r.Attach(s.System)
	p := s.AllocPage(0)
	s.Read(0, p.Block(0))
	s.Write(0, p.Block(1), [64]byte{1})
	if len(r.Events()) != 1 || !r.Events()[0].Write {
		t.Fatalf("filter failed: %v", r.Events())
	}
}

// TestRingWraparoundOrdering feeds more events than the ring holds and
// checks Events() returns the survivors oldest-first — the ordering the
// replay/checkpoint flow depends on — with the ring's start index
// mid-buffer (10 events into a 4-slot ring leaves start at 2).
func TestRingWraparoundOrdering(t *testing.T) {
	r := New(4)
	hook := r.Hook()
	for i := 0; i < 10; i++ {
		hook(sim.TraceEvent{Seq: uint64(i), Now: arch.Cycles(100 * i)})
	}
	evs := r.Events()
	if len(evs) != 4 || r.Total() != 10 {
		t.Fatalf("ring holds %d of %d", len(evs), r.Total())
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first after overwrite)", i, ev.Seq, want)
		}
	}
}

// TestZeroValueUnmarshalSelfSizes checks the encoding.BinaryUnmarshaler
// path: a zero-value Recorder (capacity 0, never passed through New)
// sizes itself to hold the whole decoded trace, preserves ordering, and
// behaves as a live ring afterwards.
func TestZeroValueUnmarshalSelfSizes(t *testing.T) {
	events := make([]sim.TraceEvent, 5)
	for i := range events {
		events[i] = sim.TraceEvent{Seq: uint64(i + 1), Now: arch.Cycles(10 * i), Core: i % 2}
	}
	var rec Recorder
	if err := rec.UnmarshalBinary(EncodeEvents(events)); err != nil {
		t.Fatal(err)
	}
	got := rec.Events()
	if len(got) != len(events) {
		t.Fatalf("self-sized recorder holds %d of %d events", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
	// The self-sized capacity is the decoded length: one more event
	// wraps the ring and drops the oldest, oldest-first order intact.
	rec.Hook()(sim.TraceEvent{Seq: 99})
	got = rec.Events()
	if len(got) != len(events) || got[0].Seq != 2 || got[len(got)-1].Seq != 99 {
		t.Fatalf("post-unmarshal ring misbehaves: %+v", got)
	}

	// An empty trace self-sizes to a usable (capacity 1) recorder.
	var empty Recorder
	if err := empty.UnmarshalBinary(EncodeEvents(nil)); err != nil {
		t.Fatal(err)
	}
	if len(empty.Events()) != 0 {
		t.Fatalf("empty trace decoded to %d events", len(empty.Events()))
	}
	empty.Hook()(sim.TraceEvent{Seq: 1})
	if len(empty.Events()) != 1 {
		t.Fatal("recorder unusable after empty unmarshal")
	}
}

// TestWraparoundMarshalRoundTrip: a wrapped ring marshals its retained
// events oldest-first, and a zero-value recorder round-trips them.
func TestWraparoundMarshalRoundTrip(t *testing.T) {
	r := New(3)
	hook := r.Hook()
	for i := 0; i < 8; i++ {
		hook(sim.TraceEvent{Seq: uint64(i), Block: arch.BlockID(i * 7)})
	}
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Recorder
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	want := r.Events()
	got := back.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip lost events: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestCSVAndSummary(t *testing.T) {
	s := sys(t)
	r := New(64)
	r.Attach(s.System)
	p := s.AllocPage(0)
	s.Read(0, p.Block(0))
	s.Read(0, p.Block(0))
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "seq,") {
		t.Fatalf("csv:\n%s", sb.String())
	}
	sum := r.Summary()
	if !strings.Contains(sum, "path 1") || !strings.Contains(sum, "path 4") {
		t.Fatalf("summary:\n%s", sum)
	}
}
