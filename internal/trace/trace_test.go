package trace

import (
	"strings"
	"testing"

	"metaleak/internal/machine"
	"metaleak/internal/secmem"
	"metaleak/internal/sim"
)

func sys(t *testing.T) *machine.System {
	t.Helper()
	dp := machine.ConfigSCT()
	dp.SecurePages = 1 << 14
	dp.Seed = 9
	return machine.NewSystem(dp)
}

func TestRecorderCapturesAccesses(t *testing.T) {
	s := sys(t)
	r := New(128)
	detach := r.Attach(s.System)
	p := s.AllocPage(0)
	s.Read(0, p.Block(0))
	s.Read(0, p.Block(0))
	s.Flush(0, p.Block(0))
	s.Read(0, p.Block(0))
	detach()
	s.Read(0, p.Block(1)) // after detach: unrecorded

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events recorded", len(evs))
	}
	if evs[0].Path != secmem.PathTreeMiss || evs[1].Path != secmem.PathCacheHit || evs[2].Path != secmem.PathCounterHit {
		t.Fatalf("paths %v %v %v", evs[0].Path, evs[1].Path, evs[2].Path)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq || evs[i].Now < evs[i-1].Now {
			t.Fatal("events out of order")
		}
	}
}

func TestRecorderRingDropsOldest(t *testing.T) {
	s := sys(t)
	r := New(4)
	r.Attach(s.System)
	p := s.AllocPage(0)
	for i := 0; i < 10; i++ {
		s.Read(0, p.Block(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d", len(evs))
	}
	if r.Total() != 10 {
		t.Fatalf("total %d", r.Total())
	}
	// The retained events are the most recent four, in order.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatal("ring not contiguous")
		}
	}
}

func TestRecorderFilter(t *testing.T) {
	s := sys(t)
	r := New(64)
	r.Filter = func(ev sim.TraceEvent) bool { return ev.Write }
	r.Attach(s.System)
	p := s.AllocPage(0)
	s.Read(0, p.Block(0))
	s.Write(0, p.Block(1), [64]byte{1})
	if len(r.Events()) != 1 || !r.Events()[0].Write {
		t.Fatalf("filter failed: %v", r.Events())
	}
}

func TestCSVAndSummary(t *testing.T) {
	s := sys(t)
	r := New(64)
	r.Attach(s.System)
	p := s.AllocPage(0)
	s.Read(0, p.Block(0))
	s.Read(0, p.Block(0))
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "seq,") {
		t.Fatalf("csv:\n%s", sb.String())
	}
	sum := r.Summary()
	if !strings.Contains(sum, "path 1") || !strings.Contains(sum, "path 4") {
		t.Fatalf("summary:\n%s", sum)
	}
}
