// Package victim implements the paper's victim programs as processes on
// the simulated secure machine: the libjpeg-style image compressor
// (§VIII-A), the libgcrypt-style RSA square-and-multiply (§VIII-B1), and
// the mbedTLS-style private-key loading (§VIII-B2).
//
// Each victim performs its real computation (the JPEG codec and the mpi
// arithmetic are functional), while its secret-dependent routines or
// variables are pinned to dedicated simulated pages. Around every leaky
// step the victim yields to an interleave callback pair — the simulator's
// stand-in for the attacker's synchronization handle (SGX-Step single
// stepping under the privileged threat model, or scheduling-based
// slow-downs in the unprivileged one).
//
// Victims honour the threat model of §III: their sensitive accesses reach
// the memory controller (cache cleansing on every leaky touch, write-
// through for leaky stores).
package victim

import (
	"metaleak/internal/arch"
	"metaleak/internal/sim"
)

// Interleave is the attacker's synchronization handle: Before runs before
// each leaky victim step, After immediately after it. Either may be nil.
type Interleave struct {
	Before func()
	After  func()
}

func (iv *Interleave) before() {
	if iv != nil && iv.Before != nil {
		iv.Before()
	}
}

func (iv *Interleave) after() {
	if iv != nil && iv.After != nil {
		iv.After()
	}
}

// Proc is a victim process: a core and its owned pages on the machine.
type Proc struct {
	Sys  *sim.System
	Core int
}

// NewProc binds a victim to a core.
func NewProc(sys *sim.System, core int) *Proc {
	return &Proc{Sys: sys, Core: core}
}

// AllocPage allocates one page to the victim.
func (p *Proc) AllocPage() arch.PageID { return p.Sys.AllocPage(p.Core) }

// TouchPage performs one cleansed access to the page's first block: the
// line is flushed first so the access reaches the memory controller and
// exercises the metadata path (the §III cache-cleansing policy; under
// SGX-Step every interrupt empties the victim's cache state anyway).
func (p *Proc) TouchPage(pg arch.PageID) {
	b := pg.Block(0)
	p.Sys.Flush(p.Core, b)
	p.Sys.Touch(p.Core, b)
}

// WritePage performs one write-through store to the page's first block
// (the persistent-application write pattern of §III).
func (p *Proc) WritePage(pg arch.PageID, tag byte) {
	p.Sys.WriteThrough(p.Core, pg.Block(0), [arch.BlockSize]byte{tag})
}

// Jitter wraps an interleave with SGX-Step imprecision: with probability
// skip, a victim step is missed entirely (the interrupt landed late and
// the enclave retired the instruction before the attacker's window), and
// with probability double, a window fires with no victim progress (zero
// stepping). The paper's real-hardware accuracies (91-94%) absorb exactly
// this kind of synchronization slip; the knob reproduces it on demand.
func Jitter(iv *Interleave, rng *arch.RNG, skip, double float64) *Interleave {
	if iv == nil {
		return nil
	}
	return &Interleave{
		Before: func() {
			if rng.Bool(double) {
				// A spurious empty window: the attacker evicts and reloads
				// around nothing.
				iv.before()
				iv.after()
			}
			iv.before()
		},
		After: func() {
			if rng.Bool(skip) {
				// Missed window: the victim's access already happened; the
				// attacker's measurement pairs with the NEXT step. Model by
				// swallowing this After (the attacker observes one fewer
				// event than the victim performed).
				return
			}
			iv.after()
		},
	}
}
