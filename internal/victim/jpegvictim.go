package victim

import (
	"metaleak/internal/arch"
	"metaleak/internal/jpeg"
)

// JPEGVictim runs the libjpeg-style encoder inside the protected region.
// Per Listing 1, its entropy loop touches the page of the run-length
// counter r for every zero AC coefficient and the page of nbits for every
// non-zero one; the two variables live in two different pages "by default"
// (§VIII-A1), which the attacker exploits.
type JPEGVictim struct {
	*Proc
	// RPage holds the variable r; NbitsPage holds nbits.
	RPage, NbitsPage arch.PageID
	// WriteR additionally makes the zero branch store to r (r++ is a
	// write), the observable of the MetaLeak-C case study (§VIII-A2).
	WriteR bool
	// Quality is the encoder quality factor (default 75).
	Quality int
}

// NewJPEGVictim allocates the victim's two variable pages.
func NewJPEGVictim(p *Proc) *JPEGVictim {
	return &JPEGVictim{
		Proc:  p,
		RPage: p.AllocPage(), NbitsPage: p.AllocPage(),
	}
}

// CoefTrace is the ground-truth oracle trace of one encoding run: one
// entry per AC coefficient in scan order, true for non-zero (the Fig. 15
// "Oracle" reconstruction uses exactly this).
type CoefTrace struct {
	W, H    int
	Quality int
	NonZero []bool
}

// Encode compresses the image, yielding to the interleave around every AC
// coefficient, and returns the encoder result plus the oracle trace.
func (v *JPEGVictim) Encode(im *jpeg.Image, iv *Interleave) (*jpeg.Result, *CoefTrace, error) {
	q := v.Quality
	if q == 0 {
		q = 75
	}
	trace := &CoefTrace{W: im.W, H: im.H, Quality: q}
	pending := false
	step := func(nonzero bool) {
		if pending {
			iv.after()
		}
		iv.before()
		if nonzero {
			v.TouchPage(v.NbitsPage)
		} else if v.WriteR {
			v.WritePage(v.RPage, byte(len(trace.NonZero)))
		} else {
			v.TouchPage(v.RPage)
		}
		trace.NonZero = append(trace.NonZero, nonzero)
		pending = true
	}
	enc := &jpeg.Encoder{
		Quality: q,
		Hooks: &jpeg.Hooks{
			ZeroCoef:    func(k int) { step(false) },
			NonzeroCoef: func(k, nbits int) { step(true) },
		},
	}
	res, err := enc.Encode(im)
	if pending {
		iv.after()
	}
	if err != nil { //metalint:leaky out-of-model encode error path; image-dependent only through bitstream failures
		return nil, nil, err
	}
	return res, trace, nil
}
