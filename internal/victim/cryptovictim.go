package victim

import (
	"metaleak/internal/arch"
	"metaleak/internal/mpi"
)

// Op labels one leaky arithmetic operation of a cryptographic victim.
type Op byte

// Operation labels.
const (
	OpSquare   Op = 'S' // _gcry_mpih_sqr_n_basecase
	OpMultiply Op = 'M' // _gcry_mpih_mul_karatsuba_case
	OpShift    Op = 'R' // mbedtls_mpi_shift_r
	OpSub      Op = 'B' // mbedtls_mpi_sub_mpi
)

// RSAVictim runs libgcrypt-1.5.2-style square-and-multiply modular
// exponentiation in the enclave. The square and multiply routines reside
// in separate pages (the -disable-asm build of §VIII-B1), so the call
// sequence — and with it the secret exponent — shows up as page-granular
// access activity.
type RSAVictim struct {
	*Proc
	SqrPage, MulPage arch.PageID
}

// NewRSAVictim allocates the two function pages.
func NewRSAVictim(p *Proc) *RSAVictim {
	return &RSAVictim{Proc: p, SqrPage: p.AllocPage(), MulPage: p.AllocPage()}
}

// ModExp computes base^exp mod m, touching the function page of each
// operation and yielding to the interleave around it. It returns the
// result and the ground-truth operation trace.
func (v *RSAVictim) ModExp(base, exp, m mpi.Int, iv *Interleave) (mpi.Int, []Op) {
	var trace []Op
	pending := false
	step := func(op Op, pg arch.PageID) {
		if pending {
			iv.after()
		}
		iv.before()
		v.TouchPage(pg)
		trace = append(trace, op)
		pending = true
	}
	r := mpi.ModExp(base, exp, m, &mpi.Hooks{
		Square:   func() { step(OpSquare, v.SqrPage) },
		Multiply: func() { step(OpMultiply, v.MulPage) },
	})
	if pending {
		iv.after()
	}
	return r, trace
}

// KeyLoadVictim runs mbedTLS-3.4-style private key loading: the modular
// inversion d = e^-1 mod (p-1)(q-1), computed by a binary extended GCD
// whose right-shift and subtract routines live in separate pages
// (§VIII-B2).
type KeyLoadVictim struct {
	*Proc
	ShiftPage, SubPage arch.PageID
}

// NewKeyLoadVictim allocates the two function pages.
func NewKeyLoadVictim(p *Proc) *KeyLoadVictim {
	return &KeyLoadVictim{Proc: p, ShiftPage: p.AllocPage(), SubPage: p.AllocPage()}
}

// LoadKey derives the private exponent from the RSA primes and public
// exponent, yielding around every shift and subtract. It returns d and
// the ground-truth operation trace.
//
//metalint:secret p,q -- the RSA primes: the itree channel recovers the shift/sub schedule they drive
func (v *KeyLoadVictim) LoadKey(p, q, e mpi.Int, iv *Interleave) (mpi.Int, []Op, error) {
	var trace []Op
	pending := false
	step := func(op Op, pg arch.PageID) {
		if pending {
			iv.after()
		}
		iv.before()
		v.TouchPage(pg)
		trace = append(trace, op)
		pending = true
	}
	one := mpi.New(1)
	phi := p.Sub(one).Mul(q.Sub(one))
	d, ok := mpi.ModInverse(e, phi, &mpi.Hooks{
		Shift: func() { step(OpShift, v.ShiftPage) },
		Sub:   func() { step(OpSub, v.SubPage) },
	})
	if pending {
		iv.after()
	}
	if !ok {
		return mpi.Int{}, nil, errNoInverse
	}
	return d, trace, nil
}

type constError string

func (e constError) Error() string { return string(e) }

const errNoInverse = constError("victim: e has no inverse modulo phi(n)")

// ModExpLadder is the victim hardened with the Montgomery ladder: every
// exponent bit performs exactly one multiply and one square, so the page
// access sequence is independent of the secret. The attacker still
// observes the accesses perfectly — they just carry no information.
func (v *RSAVictim) ModExpLadder(base, exp, m mpi.Int, iv *Interleave) (mpi.Int, []Op) {
	var trace []Op
	pending := false
	step := func(op Op, pg arch.PageID) {
		if pending {
			iv.after()
		}
		iv.before()
		v.TouchPage(pg)
		trace = append(trace, op)
		pending = true
	}
	r := mpi.ModExpLadder(base, exp, m, &mpi.Hooks{
		Square:   func() { step(OpSquare, v.SqrPage) },
		Multiply: func() { step(OpMultiply, v.MulPage) },
	})
	if pending {
		iv.after()
	}
	return r, trace
}
