package victim

import (
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/cache"
	"metaleak/internal/crypto"
	"metaleak/internal/ctr"
	"metaleak/internal/dram"
	"metaleak/internal/itree"
	"metaleak/internal/jpeg"
	"metaleak/internal/mpi"
	"metaleak/internal/secmem"
	"metaleak/internal/sim"
)

func newSys(t *testing.T) *sim.System {
	t.Helper()
	engCfg := crypto.Config{AESLatency: 20, HashLatency: 12}
	mc := secmem.New(secmem.Config{
		DRAM:          dram.DefaultConfig(),
		Meta:          cache.Config{Name: "meta", SizeBytes: 256 * 1024, Ways: 8, HitLatency: 2},
		Engine:        engCfg,
		QueueDelay:    10,
		MACLatency:    30,
		TreeStepDelay: 30,
	}, ctr.NewSC(ctr.SCConfig{}), itree.NewVTree(itree.VTreeConfig{
		Name: "SCT", Arities: []int{32, 16, 16}, MinorBits: 7, CounterBlocks: 1 << 14,
	}, crypto.New(engCfg)))
	return sim.New(sim.Config{
		Cores:       2,
		L1:          cache.Config{Name: "L1", SizeBytes: 32 * 1024, Ways: 8, HitLatency: 1},
		L2:          cache.Config{Name: "L2", SizeBytes: 1 << 20, Ways: 4, HitLatency: 10},
		L3:          cache.Config{Name: "L3", SizeBytes: 8 << 20, Ways: 16, HitLatency: 29},
		SecurePages: 1 << 14,
		Seed:        3,
	}, mc)
}

func TestJPEGVictimTraceMatchesEncoder(t *testing.T) {
	sys := newSys(t)
	jv := NewJPEGVictim(NewProc(sys, 0))
	im, _ := jpeg.Synthetic(jpeg.PatternCircle, 24, 24)
	res, tr, err := jv.Encode(im, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Trace length: 63 AC coefficients per block.
	want := len(res.Blocks) * 63
	if len(tr.NonZero) != want {
		t.Fatalf("trace length %d want %d", len(tr.NonZero), want)
	}
	// Trace must agree with the quantized blocks.
	idx := 0
	for _, blk := range res.Blocks {
		for k := 1; k < 64; k++ {
			if tr.NonZero[idx] != (blk[jpeg.NaturalOrder(k)] != 0) {
				t.Fatalf("trace disagrees with coefficients at %d", idx)
			}
			idx++
		}
	}
}

func TestJPEGVictimInterleaveBalanced(t *testing.T) {
	sys := newSys(t)
	jv := NewJPEGVictim(NewProc(sys, 0))
	im, _ := jpeg.Synthetic(jpeg.PatternStripes, 16, 16)
	var before, after int
	iv := &Interleave{
		Before: func() { before++ },
		After:  func() { after++ },
	}
	_, tr, err := jv.Encode(im, iv)
	if err != nil {
		t.Fatal(err)
	}
	if before != after || before != len(tr.NonZero) {
		t.Fatalf("interleave before=%d after=%d trace=%d", before, after, len(tr.NonZero))
	}
}

func TestJPEGVictimTouchesReachController(t *testing.T) {
	sys := newSys(t)
	jv := NewJPEGVictim(NewProc(sys, 0))
	im, _ := jpeg.Synthetic(jpeg.PatternChecker, 16, 16)
	readsBefore := sys.MC().Stats().Reads
	if _, _, err := jv.Encode(im, nil); err != nil {
		t.Fatal(err)
	}
	if sys.MC().Stats().Reads == readsBefore {
		t.Fatal("victim accesses never reached the memory controller")
	}
}

func TestJPEGVictimWriteRMode(t *testing.T) {
	sys := newSys(t)
	jv := NewJPEGVictim(NewProc(sys, 0))
	jv.WriteR = true
	im, _ := jpeg.Synthetic(jpeg.PatternCircle, 16, 16)
	writesBefore := sys.MC().Stats().Writes
	_, tr, err := jv.Encode(im, nil)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, nz := range tr.NonZero {
		if !nz {
			zeros++
		}
	}
	if got := sys.MC().Stats().Writes - writesBefore; got < uint64(zeros) {
		t.Fatalf("only %d MC writes for %d zero coefficients", got, zeros)
	}
}

func TestRSAVictimComputesAndTraces(t *testing.T) {
	sys := newSys(t)
	rv := NewRSAVictim(NewProc(sys, 0))
	base, exp := mpi.New(7), mpi.FromHex("b5")
	m := mpi.FromHex("1fffffffffffffff")
	got, trace := rv.ModExp(base, exp, m, nil)
	if got.Cmp(mpi.ModExp(base, exp, m, nil)) != 0 {
		t.Fatal("victim result differs from reference")
	}
	// Trace structure: squares = bit length, multiplies = popcount.
	sq, mul := 0, 0
	for _, op := range trace {
		switch op {
		case OpSquare:
			sq++
		case OpMultiply:
			mul++
		default:
			t.Fatalf("unexpected op %c", op)
		}
	}
	if sq != exp.BitLen() {
		t.Fatalf("squares %d want %d", sq, exp.BitLen())
	}
	wantMul := 0
	for i := 0; i < exp.BitLen(); i++ {
		if exp.Bit(i) == 1 {
			wantMul++
		}
	}
	if mul != wantMul {
		t.Fatalf("multiplies %d want %d", mul, wantMul)
	}
}

func TestKeyLoadVictimComputesD(t *testing.T) {
	sys := newSys(t)
	kv := NewKeyLoadVictim(NewProc(sys, 0))
	rng := arch.NewRNG(17)
	p := mpi.RandomPrime(rng, 64)
	q := mpi.RandomPrime(rng, 64)
	e := mpi.New(65537)
	d, trace, err := kv.LoadKey(p, q, e, nil)
	if err != nil {
		t.Fatal(err)
	}
	phi := p.Sub(mpi.New(1)).Mul(q.Sub(mpi.New(1)))
	if e.Mul(d).Mod(phi).Cmp(mpi.New(1)) != 0 {
		t.Fatal("victim produced wrong private exponent")
	}
	shifts, subs := 0, 0
	for _, op := range trace {
		switch op {
		case OpShift:
			shifts++
		case OpSub:
			subs++
		}
	}
	if shifts == 0 || subs == 0 {
		t.Fatalf("degenerate trace: %d shifts, %d subs", shifts, subs)
	}
}

func TestVictimPagesDistinct(t *testing.T) {
	sys := newSys(t)
	jv := NewJPEGVictim(NewProc(sys, 0))
	if jv.RPage == jv.NbitsPage {
		t.Fatal("r and nbits share a page")
	}
	rv := NewRSAVictim(NewProc(sys, 0))
	if rv.SqrPage == rv.MulPage {
		t.Fatal("sqr and mul share a page")
	}
}

func TestJitterPassesThroughAtZero(t *testing.T) {
	before, after := 0, 0
	iv := Jitter(&Interleave{
		Before: func() { before++ },
		After:  func() { after++ },
	}, arch.NewRNG(1), 0, 0)
	for i := 0; i < 10; i++ {
		iv.before()
		iv.after()
	}
	if before != 10 || after != 10 {
		t.Fatalf("zero jitter altered counts: %d/%d", before, after)
	}
}

func TestJitterSkipsAndDoubles(t *testing.T) {
	before, after := 0, 0
	iv := Jitter(&Interleave{
		Before: func() { before++ },
		After:  func() { after++ },
	}, arch.NewRNG(2), 0.3, 0.2)
	for i := 0; i < 500; i++ {
		iv.before()
		iv.after()
	}
	if after >= before {
		t.Fatalf("skips did not reduce observed events: before=%d after=%d", before, after)
	}
	if before <= 500 {
		t.Fatalf("doubles did not add spurious windows: before=%d", before)
	}
}

func TestJitterNil(t *testing.T) {
	if Jitter(nil, arch.NewRNG(1), 0.5, 0.5) != nil {
		t.Fatal("nil interleave should stay nil")
	}
}
