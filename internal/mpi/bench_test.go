package mpi

import (
	"testing"

	"metaleak/internal/arch"
)

func benchOperands(bits int) (Int, Int) {
	rng := arch.NewRNG(42)
	return Random(rng, bits), Random(rng, bits)
}

func BenchmarkMulBasecase256(b *testing.B) {
	x, y := benchOperands(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.abs.mulBase(y.abs)
	}
}

func BenchmarkMulKaratsuba2048(b *testing.B) {
	x, y := benchOperands(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.abs.mul(y.abs)
	}
}

func BenchmarkSqr1024(b *testing.B) {
	x, _ := benchOperands(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Sqr()
	}
}

func BenchmarkDivMod2048by1024(b *testing.B) {
	x, _ := benchOperands(2048)
	_, y := benchOperands(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = x.QuoRem(y)
	}
}

func BenchmarkModExp512(b *testing.B) {
	rng := arch.NewRNG(43)
	base := Random(rng, 512)
	exp := Random(rng, 512)
	m := Random(rng, 512)
	if !m.IsOdd() {
		m = m.Add(New(1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ModExp(base, exp, m, nil)
	}
}

func BenchmarkModExpMont512(b *testing.B) {
	rng := arch.NewRNG(43)
	base := Random(rng, 512)
	exp := Random(rng, 512)
	m := Random(rng, 512)
	if !m.IsOdd() {
		m = m.Add(New(1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ModExpMont(base, exp, m, nil)
	}
}

func BenchmarkModInverse512(b *testing.B) {
	rng := arch.NewRNG(44)
	m := Random(rng, 512)
	if !m.IsOdd() {
		m = m.Add(New(1))
	}
	a := Random(rng, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ModInverse(a, m, nil)
	}
}
