package mpi

import (
	"math/big"
	"testing"

	"metaleak/internal/arch"
)

func TestMontgomeryContextConstants(t *testing.T) {
	m := FromHex("c353930b3361f2a1d7fba01d4b8e1a4f") // odd
	ctx := newMontCtx(m)
	// mInv0: m[0] * (-mInv0) ≡ 1 (mod 2^32)
	if m.abs[0]*(-ctx.mInv0) != 1 {
		t.Fatalf("mInv0 wrong: %#x", ctx.mInv0)
	}
	// one == R mod m
	want := New(1).Shl(uint(32 * ctx.k)).Mod(m)
	if ctx.one.Cmp(want) != 0 {
		t.Fatal("R mod m wrong")
	}
}

func TestMontgomeryRoundTrip(t *testing.T) {
	rng := arch.NewRNG(21)
	for i := 0; i < 40; i++ {
		m := Random(rng, 96+i*17)
		if !m.IsOdd() {
			m = m.Add(New(1))
		}
		ctx := newMontCtx(m)
		a := Random(rng, m.BitLen()-1)
		if got := ctx.fromMont(ctx.toMont(a)); got.Cmp(a.Mod(m)) != 0 {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestMontgomeryMulAgainstBig(t *testing.T) {
	rng := arch.NewRNG(22)
	for i := 0; i < 40; i++ {
		m := Random(rng, 128+i*13)
		if !m.IsOdd() {
			m = m.Add(New(1))
		}
		ctx := newMontCtx(m)
		a := Random(rng, m.BitLen()-1)
		b := Random(rng, m.BitLen()-2)
		got := ctx.fromMont(ctx.mul(ctx.toMont(a), ctx.toMont(b)))
		want := new(big.Int).Mul(toBig(a), toBig(b))
		want.Mod(want, toBig(m))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("montgomery mul mismatch at %d", i)
		}
	}
}

func TestModExpMontMatchesModExp(t *testing.T) {
	rng := arch.NewRNG(23)
	for i := 0; i < 25; i++ {
		m := Random(rng, 192)
		if !m.IsOdd() {
			m = m.Add(New(1))
		}
		base := Random(rng, 160)
		exp := Random(rng, 96)
		if ModExpMont(base, exp, m, nil).Cmp(ModExp(base, exp, m, nil)) != 0 {
			t.Fatalf("ModExpMont disagrees at %d", i)
		}
	}
}

func TestModExpLadderMatchesModExp(t *testing.T) {
	rng := arch.NewRNG(24)
	for i := 0; i < 25; i++ {
		m := Random(rng, 192)
		if !m.IsOdd() {
			m = m.Add(New(1))
		}
		base := Random(rng, 160)
		exp := Random(rng, 96)
		if ModExpLadder(base, exp, m, nil).Cmp(ModExp(base, exp, m, nil)) != 0 {
			t.Fatalf("ModExpLadder disagrees at %d", i)
		}
	}
}

func TestLadderTraceIsExponentIndependent(t *testing.T) {
	// The countermeasure's defining property: identical hook traces for
	// different exponents of the same length.
	traceOf := func(exp Int) string {
		var tr []byte
		h := &Hooks{
			Square:   func() { tr = append(tr, 'S') },
			Multiply: func() { tr = append(tr, 'M') },
		}
		ModExpLadder(New(3), exp, FromHex("ffffffffffffffc5"), h)
		return string(tr)
	}
	t1 := traceOf(FromHex("8000000000000000")) // 1 then 63 zeros
	t2 := traceOf(FromHex("ffffffffffffffff")) // all ones
	if t1 != t2 {
		t.Fatalf("ladder trace depends on exponent:\n%s\n%s", t1, t2)
	}
	// Whereas square-and-multiply traces differ.
	s1, s2 := "", ""
	h1 := &Hooks{Square: func() { s1 += "S" }, Multiply: func() { s1 += "M" }}
	h2 := &Hooks{Square: func() { s2 += "S" }, Multiply: func() { s2 += "M" }}
	ModExp(New(3), FromHex("8000000000000000"), FromHex("ffffffffffffffc5"), h1)
	ModExp(New(3), FromHex("ffffffffffffffff"), FromHex("ffffffffffffffc5"), h2)
	if s1 == s2 {
		t.Fatal("square-and-multiply traces unexpectedly identical")
	}
}

func TestMontgomeryEvenModulusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on even modulus")
		}
	}()
	newMontCtx(New(100))
}
