package mpi

// Montgomery arithmetic: the multiplication strategy production
// bignum libraries (including later libgcrypt versions) use for modular
// exponentiation. Functionally equivalent to the plain square-and-multiply
// path — property tests assert agreement — but it also powers the
// Montgomery-ladder exponentiation, the classic *software* countermeasure
// against call-sequence leaks like the one MetaLeak reads (§VIII-B1):
// every ladder step performs exactly one multiply and one square
// regardless of the exponent bit.

// montCtx caches the per-modulus Montgomery constants for R = 2^(32k).
type montCtx struct {
	m     Int
	k     int    // limbs in m
	mInv0 uint32 // -m^{-1} mod 2^32
	r2    Int    // R^2 mod m, for conversion into the domain
	one   Int    // R mod m (the Montgomery representation of 1)
}

// newMontCtx prepares constants for an odd modulus. It panics on an even
// or zero modulus (a caller bug: RSA moduli are odd).
func newMontCtx(m Int) *montCtx {
	if m.IsZero() || !m.IsOdd() || m.Sign() < 0 { //metalint:leaky access-sequence operand-dependent step in Montgomery arithmetic
		panic("mpi: Montgomery context requires a positive odd modulus")
	}
	k := len(m.abs)
	ctx := &montCtx{m: m, k: k}
	// -m^{-1} mod 2^32 by Newton-Hensel lifting: x_{n+1} = x_n(2 - m0*x_n).
	m0 := m.abs[0]
	x := m0 // m0 odd => x ≡ m0^{-1} (mod 2^3) after start; lift doubles precision
	for i := 0; i < 5; i++ {
		x *= 2 - m0*x
	}
	ctx.mInv0 = -x
	// R mod m and R^2 mod m.
	r := New(1).Shl(uint(32 * k)).Mod(m)
	ctx.one = r
	ctx.r2 = r.Mul(r).Mod(m)
	return ctx
}

// redc computes t * R^{-1} mod m for t < m*R (the Montgomery reduction),
// using the word-by-word algorithm.
func (ctx *montCtx) redc(t nat) Int {
	// Work buffer of 2k+1 limbs.
	buf := make(nat, 2*ctx.k+1) //metalint:leaky addr workspace sized by the modulus
	copy(buf, t)
	for i := 0; i < ctx.k; i++ { //metalint:leaky trip-count trip count follows operand bit/limb structure
		u := buf[i] * ctx.mInv0
		// buf += u * m << (32*i)
		var carry uint64
		for j := 0; j < ctx.k; j++ { //metalint:leaky trip-count trip count follows operand bit/limb structure
			s := uint64(buf[i+j]) + uint64(u)*uint64(ctx.m.abs[j]) + carry
			buf[i+j] = uint32(s)
			carry = s >> 32
		}
		for j := i + ctx.k; carry > 0 && j < len(buf); j++ { //metalint:leaky trip-count trip count follows operand bit/limb structure
			s := uint64(buf[j]) + carry //metalint:leaky addr limb addressing follows operand size
			buf[j] = uint32(s) //metalint:leaky addr limb addressing follows operand size
			carry = s >> 32
		}
	}
	res := Int{abs: nat(buf[ctx.k:]).norm()}
	if res.Cmp(ctx.m) >= 0 {
		res = res.Sub(ctx.m)
	}
	return res
}

// mul multiplies two values in the Montgomery domain.
func (ctx *montCtx) mul(a, b Int) Int {
	prod := a.abs.mul(b.abs)
	return ctx.redc(prod)
}

// toMont converts into the Montgomery domain (a*R mod m).
func (ctx *montCtx) toMont(a Int) Int { return ctx.mul(a.Mod(ctx.m), ctx.r2) }

// fromMont converts back (a*R^{-1} mod m).
func (ctx *montCtx) fromMont(a Int) Int { return ctx.redc(append(nat(nil), a.abs...)) } //metalint:leaky access-sequence limb copy of a secret operand

// ModExpMont computes base^exp mod m (odd m) with Montgomery
// multiplication and the same left-to-right square-and-multiply schedule
// as ModExp — and therefore the same leak. It exists to validate the
// Montgomery machinery and to contrast with ModExpLadder.
//
//metalint:secret exp -- same exponent secret as ModExp, on the Montgomery path
func ModExpMont(base, exp, m Int, h *Hooks) Int {
	ctx := newMontCtx(m)
	r := ctx.one
	b := ctx.toMont(base)
	for i := exp.BitLen() - 1; i >= 0; i-- { //metalint:leaky trip-count one iteration per exponent bit on the Montgomery path
		h.square()
		r = ctx.mul(r, r)
		if exp.Bit(i) == 1 { //metalint:leaky access-sequence same set-bit multiply leak as ModExp, in Montgomery form
			h.multiply()
			r = ctx.mul(r, b)
		}
	}
	return ctx.fromMont(r)
}

// ModExpLadder computes base^exp mod m (odd m) with the Montgomery
// ladder: each exponent bit performs exactly one multiply and one square,
// in the same order, regardless of the bit's value. The hook trace is
// therefore independent of the exponent — the software countermeasure
// whose effect the defladder experiment measures.
//
//metalint:secret exp -- the exponent stays secret on the ladder; its residual leaks are balanced branches
func ModExpLadder(base, exp, m Int, h *Hooks) Int {
	ctx := newMontCtx(m)
	r0 := ctx.one
	r1 := ctx.toMont(base)
	for i := exp.BitLen() - 1; i >= 0; i-- { //metalint:leaky trip-count ladder runs one iteration per exponent bit; trip count still leaks the bit-length
		if exp.Bit(i) == 0 { //metalint:leaky access-sequence balanced ladder branch: both arms multiply+square, the bit only swaps operands
			h.multiply()
			r1 = ctx.mul(r0, r1)
			h.square()
			r0 = ctx.mul(r0, r0)
		} else {
			h.multiply()
			r0 = ctx.mul(r0, r1)
			h.square()
			r1 = ctx.mul(r1, r1)
		}
	}
	return ctx.fromMont(r0)
}
