package mpi

import "metaleak/internal/arch"

// Hooks are instrumentation points that fire when the secret-dependent
// arithmetic routines of the paper's victims execute. The victim layer
// maps each hook to a touch of that routine's simulated code page; nil
// hooks are skipped. This mirrors how libgcrypt's square/multiply and
// mbedTLS's shift/subtract live in distinct pages (§VIII-B).
type Hooks struct {
	Square   func() // _gcry_mpih_sqr_n_basecase analogue
	Multiply func() // _gcry_mpih_mul_karatsuba_case analogue
	Shift    func() // mbedtls_mpi_shift_r analogue
	Sub      func() // mbedtls_mpi_sub_mpi analogue
}

func (h *Hooks) square() {
	if h != nil && h.Square != nil {
		h.Square()
	}
}
func (h *Hooks) multiply() {
	if h != nil && h.Multiply != nil {
		h.Multiply()
	}
}
func (h *Hooks) shift() {
	if h != nil && h.Shift != nil {
		h.Shift()
	}
}
func (h *Hooks) subtract() {
	if h != nil && h.Sub != nil {
		h.Sub()
	}
}

// ModExp computes base^exp mod m by left-to-right square-and-multiply —
// the libgcrypt 1.5.2 algorithm of Listing 2: every exponent bit squares;
// every set bit additionally multiplies. Hooks fire per operation.
//
//metalint:secret exp -- the private exponent: the bit-sequence the paper's ctr channel recovers
func ModExp(base, exp, m Int, h *Hooks) Int {
	if m.IsZero() { //metalint:leaky access-sequence operand-dependent step in modular arithmetic
		panic("mpi: modulus is zero")
	}
	r := New(1)
	b := base.Mod(m)
	for i := exp.BitLen() - 1; i >= 0; i-- { //metalint:leaky trip-count one iteration per exponent bit: BitLen sets Listing 2's outer schedule
		h.square()
		r = r.Sqr().Mod(m)
		if exp.Bit(i) == 1 { //metalint:leaky access-sequence the flagship leak: a multiply happens only for set exponent bits (Listing 2; recovered by the ctr channel)
			h.multiply()
			r = r.Mul(b).Mod(m)
		}
	}
	// A zero exponent skips the loop entirely; 1 still needs reduction
	// for m == 1.
	return r.Mod(m)
}

// ModInverse computes x with a*x ≡ 1 (mod m) for gcd(a, m) = 1, by the
// full binary extended GCD (HAC Algorithm 14.61) — the modular-inversion
// pattern of mbedTLS private-key loading, built from right shifts and
// subtractions. The modulus may be even (as φ(n) is in RSA key loading)
// as long as a is then odd. Hooks fire per shift and per subtraction,
// producing the operation trace the Fig. 17 attack recovers. It returns
// ok=false when the inverse does not exist.
func ModInverse(a, m Int, h *Hooks) (Int, bool) {
	if m.IsZero() { //metalint:leaky access-sequence operand-dependent step in modular arithmetic
		panic("mpi: ModInverse with zero modulus")
	}
	if m.Cmp(New(1)) == 0 {
		// Everything is congruent mod 1; the inverse is 0 by convention
		// (matching math/big).
		return Int{}, true
	}
	a = a.Mod(m)
	if a.IsZero() { //metalint:leaky access-sequence operand-dependent step in modular arithmetic
		return Int{}, false
	}
	if !a.IsOdd() && !m.IsOdd() { //metalint:leaky access-sequence operand-dependent step in modular arithmetic
		return Int{}, false // gcd is even
	}
	x, y := a, m
	u, v := x, y
	bigA, bigB := New(1), New(0)
	bigC, bigD := New(0), New(1)
	// Invariants: A*x + B*y == u, C*x + D*y == v.
	for !u.IsZero() { //metalint:leaky trip-count trip count follows operand bit/limb structure
		for !u.IsOdd() { //metalint:leaky trip-count trip count follows operand bit/limb structure
			h.shift()
			u = u.Shr(1)
			if !bigA.IsOdd() && !bigB.IsOdd() { //metalint:leaky access-sequence operand-dependent step in modular arithmetic
				bigA, bigB = bigA.Shr(1), bigB.Shr(1)
			} else {
				bigA = bigA.Add(y).Shr(1)
				bigB = bigB.Sub(x).Shr(1)
			}
		}
		for !v.IsOdd() { //metalint:leaky trip-count trip count follows operand bit/limb structure
			h.shift()
			v = v.Shr(1)
			if !bigC.IsOdd() && !bigD.IsOdd() { //metalint:leaky access-sequence operand-dependent step in modular arithmetic
				bigC, bigD = bigC.Shr(1), bigD.Shr(1)
			} else {
				bigC = bigC.Add(y).Shr(1)
				bigD = bigD.Sub(x).Shr(1)
			}
		}
		if u.Cmp(v) >= 0 {
			h.subtract()
			u = u.Sub(v)
			bigA = bigA.Sub(bigC)
			bigB = bigB.Sub(bigD)
		} else {
			h.subtract()
			v = v.Sub(u)
			bigC = bigC.Sub(bigA)
			bigD = bigD.Sub(bigB)
		}
	}
	if v.Cmp(New(1)) != 0 {
		return Int{}, false
	}
	return bigC.Mod(m), true
}

// GCD returns the greatest common divisor of |x| and |y|.
func GCD(x, y Int) Int {
	a, b := mk(false, x.abs), mk(false, y.abs)
	for !b.IsZero() { //metalint:leaky trip-count trip count follows operand bit/limb structure
		a, b = b, a.Mod(b)
	}
	return a
}

// Random returns a uniformly random value with exactly the given bit
// length (top bit set), drawn from the deterministic generator.
func Random(rng *arch.RNG, bitLen int) Int {
	if bitLen <= 0 { //metalint:leaky access-sequence operand-dependent step in modular arithmetic
		return Int{}
	}
	limbs := (bitLen + 31) / 32
	x := make(nat, limbs) //metalint:leaky addr workspace sized by the modulus
	for i := range x { //metalint:leaky trip-count trip count follows operand bit/limb structure
		x[i] = uint32(rng.Uint64()) //metalint:leaky addr limb addressing follows operand size
	}
	top := uint(bitLen-1) % 32
	x[limbs-1] &= (1 << (top + 1)) - 1 //metalint:leaky addr limb addressing follows operand size
	x[limbs-1] |= 1 << top //metalint:leaky addr limb addressing follows operand size
	return Int{abs: x.norm()}
}

// IsProbablePrime runs n rounds of Miller-Rabin with deterministic
// pseudo-random bases.
func IsProbablePrime(p Int, rounds int, rng *arch.RNG) bool {
	if p.Cmp(New(4)) < 0 {
		return p.Cmp(New(2)) == 0 || p.Cmp(New(3)) == 0
	}
	if !p.IsOdd() { //metalint:leaky access-sequence operand-dependent step in modular arithmetic
		return false
	}
	// p - 1 = d * 2^s
	d := p.Sub(New(1))
	s := 0
	for !d.IsOdd() { //metalint:leaky trip-count trip count follows operand bit/limb structure
		d = d.Shr(1)
		s++
	}
	pm1 := p.Sub(New(1))
	for i := 0; i < rounds; i++ {
		a := Random(rng, p.BitLen()-1).Mod(p.Sub(New(3))).Add(New(2))
		x := ModExp(a, d, p, nil)
		if x.Cmp(New(1)) == 0 || x.Cmp(pm1) == 0 {
			continue
		}
		composite := true
		for r := 1; r < s; r++ {
			x = x.Sqr().Mod(p)
			if x.Cmp(pm1) == 0 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// RandomPrime generates a probable prime of the given bit length.
func RandomPrime(rng *arch.RNG, bitLen int) Int {
	for {
		cand := Random(rng, bitLen)
		if !cand.IsOdd() { //metalint:leaky access-sequence operand-dependent step in modular arithmetic
			cand = cand.Add(New(1))
		}
		if IsProbablePrime(cand, 12, rng) {
			return cand
		}
	}
}
