package mpi

import (
	"fmt"
	"strings"
)

// Int is an arbitrary-precision signed integer. Values are immutable:
// every operation returns a fresh Int. The zero value is 0.
type Int struct {
	neg bool
	abs nat
}

// New returns an Int with the given uint64 value.
func New(v uint64) Int {
	if v == 0 {
		return Int{}
	}
	return Int{abs: nat{uint32(v), uint32(v >> 32)}.norm()}
}

// FromBytes interprets big-endian bytes as an unsigned integer.
func FromBytes(b []byte) Int {
	var x nat
	for _, c := range b {
		x = x.shl(8).add(nat{uint32(c)}.norm())
	}
	return Int{abs: x}
}

// Bytes returns the big-endian magnitude (empty for zero).
func (x Int) Bytes() []byte {
	var out []byte
	for i := len(x.abs) - 1; i >= 0; i-- { //metalint:leaky trip-count per-limb walk of a secret integer
		l := x.abs[i] //metalint:leaky addr digit/limb access into a secret integer
		out = append(out, byte(l>>24), byte(l>>16), byte(l>>8), byte(l))
	}
	for len(out) > 0 && out[0] == 0 { //metalint:leaky trip-count per-limb walk of a secret integer
		out = out[1:]
	}
	return out
}

// FromHex parses a hexadecimal string (no prefix). It panics on invalid
// input; it is intended for literals in tests and fixtures.
func FromHex(s string) Int {
	s = strings.TrimPrefix(strings.ToLower(s), "0x")
	var x nat
	for _, c := range s {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			panic(fmt.Sprintf("mpi: bad hex digit %q", c))
		}
		x = x.shl(4).add(nat{d}.norm())
	}
	return Int{abs: x}
}

// String renders the value in hexadecimal.
func (x Int) String() string {
	if x.abs.isZero() { //metalint:leaky access-sequence sign/parity/compare branch on a secret integer
		return "0"
	}
	var sb strings.Builder
	if x.neg { //metalint:leaky access-sequence sign/parity/compare branch on a secret integer
		sb.WriteByte('-')
	}
	digits := "0123456789abcdef"
	started := false
	for i := len(x.abs) - 1; i >= 0; i-- { //metalint:leaky trip-count per-limb walk of a secret integer
		for sh := 28; sh >= 0; sh -= 4 {
			d := (x.abs[i] >> uint(sh)) & 0xf //metalint:leaky addr digit/limb access into a secret integer
			if !started && d == 0 { //metalint:leaky access-sequence sign/parity/compare branch on a secret integer
				continue
			}
			started = true
			sb.WriteByte(digits[d]) //metalint:leaky addr digit/limb access into a secret integer
		}
	}
	return sb.String()
}

// Sign returns -1, 0, or +1.
func (x Int) Sign() int {
	if x.abs.isZero() { //metalint:leaky access-sequence sign/parity/compare branch on a secret integer
		return 0
	}
	if x.neg { //metalint:leaky access-sequence sign/parity/compare branch on a secret integer
		return -1
	}
	return 1
}

// IsZero reports whether x == 0.
func (x Int) IsZero() bool { return x.abs.isZero() }

// IsOdd reports whether x is odd.
func (x Int) IsOdd() bool { return x.abs.bit(0) == 1 }

// BitLen returns the bit length of |x|.
func (x Int) BitLen() int { return x.abs.bitLen() }

// Bit returns bit i of |x|.
func (x Int) Bit(i int) uint { return x.abs.bit(i) }

// Uint64 returns the low 64 bits of |x|.
func (x Int) Uint64() uint64 {
	var v uint64
	if len(x.abs) > 0 { //metalint:leaky access-sequence sign/parity/compare branch on a secret integer
		v = uint64(x.abs[0])
	}
	if len(x.abs) > 1 { //metalint:leaky access-sequence sign/parity/compare branch on a secret integer
		v |= uint64(x.abs[1]) << 32
	}
	return v
}

// Cmp compares x and y: -1, 0, +1.
func (x Int) Cmp(y Int) int {
	switch {
	case x.Sign() < y.Sign():
		return -1
	case x.Sign() > y.Sign():
		return 1
	case x.neg: //metalint:leaky access-sequence sign/parity/compare branch on a secret integer
		return y.abs.cmp(x.abs)
	default:
		return x.abs.cmp(y.abs)
	}
}

func mk(neg bool, a nat) Int {
	if a.isZero() { //metalint:leaky access-sequence sign/parity/compare branch on a secret integer
		return Int{}
	}
	return Int{neg: neg, abs: a}
}

// Neg returns -x.
func (x Int) Neg() Int { return mk(!x.neg, x.abs) }

// Add returns x + y.
func (x Int) Add(y Int) Int {
	if x.neg == y.neg { //metalint:leaky access-sequence sign/parity/compare branch on a secret integer
		return mk(x.neg, x.abs.add(y.abs))
	}
	if x.abs.cmp(y.abs) >= 0 {
		return mk(x.neg, x.abs.sub(y.abs))
	}
	return mk(y.neg, y.abs.sub(x.abs))
}

// Sub returns x - y.
func (x Int) Sub(y Int) Int { return x.Add(y.Neg()) }

// Mul returns x * y (Karatsuba above the basecase threshold).
func (x Int) Mul(y Int) Int { return mk(x.neg != y.neg, x.abs.mul(y.abs)) }

// Sqr returns x * x using the dedicated squaring routine.
func (x Int) Sqr() Int { return mk(false, x.abs.sqr()) }

// Shl returns x << s.
func (x Int) Shl(s uint) Int { return mk(x.neg, x.abs.shl(s)) }

// Shr returns |x| >> s with x's sign (arithmetic semantics are not needed
// by any caller; all shift users operate on non-negative values).
func (x Int) Shr(s uint) Int { return mk(x.neg, x.abs.shr(s)) }

// QuoRem returns the truncated quotient and remainder of x / y.
func (x Int) QuoRem(y Int) (Int, Int) {
	q, r := x.abs.divMod(y.abs)
	return mk(x.neg != y.neg, q), mk(x.neg, r)
}

// Mod returns the Euclidean remainder x mod y, always in [0, |y|).
func (x Int) Mod(y Int) Int {
	_, r := x.QuoRem(y)
	if r.neg { //metalint:leaky access-sequence sign/parity/compare branch on a secret integer
		r = r.Add(mk(false, y.abs))
	}
	return r
}
