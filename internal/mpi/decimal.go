package mpi

import (
	"fmt"
	"strings"
)

// Decimal I/O: key material in papers and RFC test vectors is usually
// printed in base 10; these converters round-trip arbitrary-precision
// values without math/big.

// FromDecimal parses a base-10 integer (optional leading '-').
func FromDecimal(s string) (Int, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if s == "" {
		return Int{}, fmt.Errorf("mpi: empty decimal string")
	}
	x := New(0)
	ten := New(10)
	for _, c := range s {
		if c < '0' || c > '9' {
			return Int{}, fmt.Errorf("mpi: bad decimal digit %q", c)
		}
		x = x.Mul(ten).Add(New(uint64(c - '0')))
	}
	if neg {
		x = x.Neg()
	}
	return x, nil
}

// Decimal renders the value in base 10.
func (x Int) Decimal() string {
	if x.IsZero() { //metalint:leaky out-of-model decimal rendering of a secret integer (String/diagnostic path)
		return "0"
	}
	// Repeated division by 1e9 keeps the quotient loop short.
	chunk := New(1_000_000_000)
	var parts []uint64
	v := mk(false, x.abs)
	for !v.IsZero() { //metalint:leaky out-of-model decimal rendering of a secret integer (String/diagnostic path)
		q, r := v.QuoRem(chunk)
		parts = append(parts, r.Uint64())
		v = q
	}
	var sb strings.Builder
	if x.Sign() < 0 {
		sb.WriteByte('-')
	}
	fmt.Fprintf(&sb, "%d", parts[len(parts)-1]) //metalint:leaky out-of-model decimal rendering of a secret integer (String/diagnostic path)
	for i := len(parts) - 2; i >= 0; i-- { //metalint:leaky out-of-model decimal rendering of a secret integer (String/diagnostic path)
		fmt.Fprintf(&sb, "%09d", parts[i]) //metalint:leaky out-of-model decimal rendering of a secret integer (String/diagnostic path)
	}
	return sb.String()
}
