// Package mpi is a from-scratch multi-precision integer library in the
// style of libgcrypt's mpi layer: 32-bit limbs, basecase and Karatsuba
// multiplication, dedicated squaring, Knuth division, square-and-multiply
// modular exponentiation, and a binary extended-GCD modular inverse.
//
// It exists because the paper's cryptographic victims leak through *which
// arithmetic routine runs* (square vs. multiply in libgcrypt's RSA;
// shift vs. subtract in mbedTLS's key loading). The library therefore
// exposes Hooks that fire exactly when those routines execute, letting the
// victim layer pin each routine to its own simulated code page — the same
// page-granular leakage the paper exploits.
package mpi

import "math/bits"

// nat is a little-endian magnitude with no high zero limbs ("normalized").
type nat []uint32

// norm strips high zero limbs.
func (x nat) norm() nat {
	n := len(x)
	for n > 0 && x[n-1] == 0 { //metalint:leaky trip-count per-limb loop; trip count follows operand size
		n--
	}
	return x[:n]
}

func (x nat) isZero() bool { return len(x) == 0 }

// cmp compares magnitudes: -1, 0, +1.
func (x nat) cmp(y nat) int {
	if len(x) != len(y) { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		if len(x) < len(y) { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
			return -1
		}
		return 1
	}
	for i := len(x) - 1; i >= 0; i-- { //metalint:leaky trip-count per-limb loop; trip count follows operand size
		if x[i] != y[i] { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
			if x[i] < y[i] { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
				return -1
			}
			return 1
		}
	}
	return 0
}

// add returns x + y.
func (x nat) add(y nat) nat {
	if len(x) < len(y) { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		x, y = y, x
	}
	z := make(nat, len(x)+1) //metalint:leaky addr scratch sized by operand limb count
	var carry uint64
	for i := 0; i < len(x); i++ { //metalint:leaky trip-count per-limb loop; trip count follows operand size
		s := uint64(x[i]) + carry
		if i < len(y) { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
			s += uint64(y[i])
		}
		z[i] = uint32(s)
		carry = s >> 32
	}
	z[len(x)] = uint32(carry) //metalint:leaky addr limb access at an operand-dependent offset
	return z.norm()
}

// sub returns x - y; it panics if y > x (callers manage signs).
func (x nat) sub(y nat) nat {
	if x.cmp(y) < 0 {
		panic("mpi: nat underflow")
	}
	z := make(nat, len(x)) //metalint:leaky addr scratch sized by operand limb count
	var borrow uint64
	for i := 0; i < len(x); i++ { //metalint:leaky trip-count per-limb loop; trip count follows operand size
		d := uint64(x[i]) - borrow
		if i < len(y) { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
			d -= uint64(y[i])
		}
		z[i] = uint32(d)
		borrow = (d >> 32) & 1
	}
	return z.norm()
}

// shl returns x << s.
func (x nat) shl(s uint) nat {
	if x.isZero() { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		return nil
	}
	limbs, rem := s/32, s%32
	z := make(nat, len(x)+int(limbs)+1) //metalint:leaky addr scratch sized by operand limb count
	for i := len(x) - 1; i >= 0; i-- { //metalint:leaky trip-count per-limb loop; trip count follows operand size
		v := uint64(x[i]) << rem //metalint:leaky addr limb access at an operand-dependent offset
		z[uint(i)+limbs+1] |= uint32(v >> 32) //metalint:leaky addr limb access at an operand-dependent offset
		z[uint(i)+limbs] |= uint32(v) //metalint:leaky addr limb access at an operand-dependent offset
	}
	return z.norm()
}

// shr returns x >> s.
func (x nat) shr(s uint) nat {
	limbs, rem := int(s/32), s%32
	if limbs >= len(x) { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		return nil
	}
	z := make(nat, len(x)-limbs) //metalint:leaky addr scratch sized by operand limb count
	for i := range z { //metalint:leaky trip-count per-limb loop; trip count follows operand size
		v := uint64(x[i+limbs]) >> rem //metalint:leaky addr limb access at an operand-dependent offset
		if rem > 0 && i+limbs+1 < len(x) { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
			v |= uint64(x[i+limbs+1]) << (32 - rem) //metalint:leaky addr limb access at an operand-dependent offset
		}
		z[i] = uint32(v) //metalint:leaky addr limb access at an operand-dependent offset
	}
	return z.norm()
}

// bitLen returns the magnitude's bit length.
func (x nat) bitLen() int {
	if x.isZero() { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		return 0
	}
	return 32*(len(x)-1) + bits.Len32(x[len(x)-1]) //metalint:leaky addr limb access at an operand-dependent offset
}

// bit returns bit i (0 = least significant).
func (x nat) bit(i int) uint {
	limb := i / 32
	if limb >= len(x) { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		return 0
	}
	return uint(x[limb]>>(i%32)) & 1 //metalint:leaky addr limb access at an operand-dependent offset
}

// mulBase is schoolbook multiplication — the analogue of libgcrypt's
// _gcry_mpih_mul basecase.
func (x nat) mulBase(y nat) nat {
	if x.isZero() || y.isZero() { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		return nil
	}
	z := make(nat, len(x)+len(y)) //metalint:leaky addr scratch sized by operand limb count
	for i := 0; i < len(x); i++ { //metalint:leaky trip-count per-limb loop; trip count follows operand size
		var carry uint64
		xi := uint64(x[i])
		for j := 0; j < len(y); j++ { //metalint:leaky trip-count per-limb loop; trip count follows operand size
			s := uint64(z[i+j]) + xi*uint64(y[j]) + carry
			z[i+j] = uint32(s)
			carry = s >> 32
		}
		z[i+len(y)] += uint32(carry) //metalint:leaky addr limb access at an operand-dependent offset
	}
	return z.norm()
}

// karatsubaThreshold is the limb count below which schoolbook wins.
const karatsubaThreshold = 16

// mul multiplies, dispatching to Karatsuba above the threshold — the
// analogue of _gcry_mpih_mul_karatsuba_case.
func (x nat) mul(y nat) nat {
	if len(x) < karatsubaThreshold || len(y) < karatsubaThreshold { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		return x.mulBase(y)
	}
	// Split at half of the shorter operand.
	k := len(x)
	if len(y) < k { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		k = len(y)
	}
	k /= 2
	x0, x1 := nat(x[:k]).norm(), nat(x[k:]).norm()
	y0, y1 := nat(y[:k]).norm(), nat(y[k:]).norm()
	z0 := x0.mul(y0)
	z2 := x1.mul(y1)
	// z1 = (x0+x1)(y0+y1) - z0 - z2
	z1 := x0.add(x1).mul(y0.add(y1)).sub(z0).sub(z2)
	return z0.add(z1.shl(uint(32 * k))).add(z2.shl(uint(64 * k)))
}

// sqrBase is dedicated schoolbook squaring, exploiting the symmetry of the
// partial products — the analogue of _gcry_mpih_sqr_n_basecase. It is the
// routine whose execution leaks exponent zero-bits in the RSA case study.
func (x nat) sqrBase() nat {
	if x.isZero() { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		return nil
	}
	n := len(x)
	z := make(nat, 2*n) //metalint:leaky addr scratch sized by operand limb count
	// Off-diagonal products, each counted once.
	for i := 0; i < n; i++ { //metalint:leaky trip-count per-limb loop; trip count follows operand size
		var carry uint64
		xi := uint64(x[i])
		for j := i + 1; j < n; j++ { //metalint:leaky trip-count per-limb loop; trip count follows operand size
			s := uint64(z[i+j]) + xi*uint64(x[j]) + carry
			z[i+j] = uint32(s)
			carry = s >> 32
		}
		z[i+n] += uint32(carry) //metalint:leaky addr limb access at an operand-dependent offset
	}
	// Double them.
	var carry uint64
	for i := 0; i < 2*n; i++ { //metalint:leaky trip-count per-limb loop; trip count follows operand size
		s := uint64(z[i])*2 + carry
		z[i] = uint32(s)
		carry = s >> 32
	}
	// Add the diagonal squares.
	carry = 0
	for i := 0; i < n; i++ { //metalint:leaky trip-count per-limb loop; trip count follows operand size
		sq := uint64(x[i]) * uint64(x[i])
		lo := uint64(z[2*i]) + (sq & 0xffffffff) + carry
		z[2*i] = uint32(lo)
		hi := uint64(z[2*i+1]) + (sq >> 32) + (lo >> 32)
		z[2*i+1] = uint32(hi)
		carry = hi >> 32
	}
	return z.norm()
}

// sqr squares, dispatching to mul via Karatsuba for large operands.
func (x nat) sqr() nat {
	if len(x) < karatsubaThreshold { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		return x.sqrBase()
	}
	return x.mul(x)
}

// divMod returns (q, r) with x = q*y + r, 0 <= r < y, by Knuth Algorithm D.
func (x nat) divMod(y nat) (nat, nat) {
	if y.isZero() { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		panic("mpi: division by zero")
	}
	if x.cmp(y) < 0 {
		return nil, append(nat(nil), x...).norm() //metalint:leaky access-sequence bulk limb copy of a secret operand
	}
	if len(y) == 1 { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
		q := make(nat, len(x)) //metalint:leaky addr scratch sized by operand limb count
		var rem uint64
		d := uint64(y[0])
		for i := len(x) - 1; i >= 0; i-- { //metalint:leaky trip-count per-limb loop; trip count follows operand size
			cur := rem<<32 | uint64(x[i]) //metalint:leaky addr limb access at an operand-dependent offset
			q[i] = uint32(cur / d) //metalint:leaky addr limb access at an operand-dependent offset
			rem = cur % d
		}
		if rem == 0 { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
			return q.norm(), nil
		}
		return q.norm(), nat{uint32(rem)}
	}
	// Normalize so the divisor's top limb has its high bit set.
	shift := uint(bits.LeadingZeros32(y[len(y)-1])) //metalint:leaky addr limb access at an operand-dependent offset
	u := x.shl(shift)
	v := y.shl(shift)
	n := len(v)
	u = append(u, 0) // extra high limb for the algorithm
	m := len(u) - n - 1
	q := make(nat, m+1) //metalint:leaky addr scratch sized by operand limb count
	vn1 := uint64(v[n-1]) //metalint:leaky addr limb access at an operand-dependent offset
	vn2 := uint64(v[n-2]) //metalint:leaky addr limb access at an operand-dependent offset
	for j := m; j >= 0; j-- { //metalint:leaky trip-count per-limb loop; trip count follows operand size
		ujn := uint64(u[j+n]) //metalint:leaky addr limb access at an operand-dependent offset
		cur := ujn<<32 | uint64(u[j+n-1]) //metalint:leaky addr limb access at an operand-dependent offset
		qhat := cur / vn1
		rhat := cur % vn1
		for qhat >= 1<<32 || qhat*vn2 > (rhat<<32|uint64(u[j+n-2])) { //metalint:leaky trip-count per-limb loop; trip count follows operand size
			qhat--
			rhat += vn1
			if rhat >= 1<<32 { //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
				break
			}
		}
		// u[j..j+n] -= qhat * v (multiply-and-subtract with signed borrow,
		// per Hacker's Delight divmnu).
		var borrow int64
		for i := 0; i < n; i++ { //metalint:leaky trip-count per-limb loop; trip count follows operand size
			p := qhat * uint64(v[i])
			t := int64(uint64(u[j+i])) - borrow - int64(p&0xffffffff) //metalint:leaky addr limb access at an operand-dependent offset
			u[j+i] = uint32(t) //metalint:leaky addr limb access at an operand-dependent offset
			borrow = int64(p>>32) - (t >> 32)
		}
		t := int64(ujn) - borrow
		u[j+n] = uint32(t) //metalint:leaky addr limb access at an operand-dependent offset
		if t < 0 { // borrowed past the top: qhat was one too large //metalint:leaky access-sequence limb-value branch in non-CT mpi arithmetic
			qhat--
			var c uint64
			for i := 0; i < n; i++ { //metalint:leaky trip-count per-limb loop; trip count follows operand size
				s := uint64(u[j+i]) + uint64(v[i]) + c //metalint:leaky addr limb access at an operand-dependent offset
				u[j+i] = uint32(s) //metalint:leaky addr limb access at an operand-dependent offset
				c = s >> 32
			}
			u[j+n] = uint32(uint64(u[j+n]) + c) //metalint:leaky addr limb access at an operand-dependent offset
		}
		q[j] = uint32(qhat) //metalint:leaky addr limb access at an operand-dependent offset
	}
	r := nat(u[:n]).norm().shr(shift)
	return q.norm(), r
}
