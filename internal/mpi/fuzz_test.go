package mpi

import (
	"math/big"
	"testing"
)

// Native fuzz targets cross-checking the arithmetic against math/big on
// arbitrary byte-derived operands.

func FuzzDivMod(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{3, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff}, []byte{1})
	f.Add([]byte{}, []byte{7})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		x, y := FromBytes(a), FromBytes(b)
		if y.IsZero() {
			return
		}
		q, r := x.QuoRem(y)
		bq, br := new(big.Int).QuoRem(toBig(x), toBig(y), new(big.Int))
		if toBig(q).Cmp(bq) != 0 || toBig(r).Cmp(br) != 0 {
			t.Fatalf("divmod mismatch for %x / %x", a, b)
		}
	})
}

func FuzzMulKaratsuba(f *testing.F) {
	f.Add(make([]byte, 70), make([]byte, 90))
	f.Add([]byte{1}, []byte{2})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		x, y := FromBytes(a), FromBytes(b)
		got := x.Mul(y)
		want := new(big.Int).Mul(toBig(x), toBig(y))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("mul mismatch for %x * %x", a, b)
		}
	})
}

func FuzzModInverse(f *testing.F) {
	f.Add([]byte{7}, []byte{11})
	f.Add([]byte{2, 4, 6}, []byte{9, 9})
	f.Fuzz(func(t *testing.T, a, m []byte) {
		x, mod := FromBytes(a), FromBytes(m)
		if mod.IsZero() {
			return
		}
		inv, ok := ModInverse(x, mod, nil)
		want := new(big.Int).ModInverse(toBig(x), toBig(mod))
		if (want == nil) != !ok {
			t.Fatalf("existence mismatch for %x mod %x", a, m)
		}
		if ok && toBig(inv).Cmp(want) != 0 {
			t.Fatalf("inverse mismatch for %x mod %x", a, m)
		}
	})
}

func FuzzDecimal(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		x := FromBytes(raw)
		s := x.Decimal()
		back, err := FromDecimal(s)
		if err != nil || back.Cmp(x) != 0 {
			t.Fatalf("decimal round trip failed for %x", raw)
		}
	})
}
