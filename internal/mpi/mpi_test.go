package mpi

import (
	"math/big"
	"testing"
	"testing/quick"

	"metaleak/internal/arch"
)

// toBig converts an Int to math/big for cross-checking.
func toBig(x Int) *big.Int {
	b := new(big.Int).SetBytes(x.Bytes())
	if x.Sign() < 0 {
		b.Neg(b)
	}
	return b
}

// fromRaw builds a positive Int from arbitrary bytes.
func fromRaw(b []byte) Int { return FromBytes(b) }

func TestBasicValues(t *testing.T) {
	if New(0).Sign() != 0 || !New(0).IsZero() {
		t.Fatal("zero broken")
	}
	x := New(0xdeadbeefcafe)
	if x.Uint64() != 0xdeadbeefcafe {
		t.Fatalf("Uint64 = %x", x.Uint64())
	}
	if x.String() != "deadbeefcafe" {
		t.Fatalf("String = %s", x.String())
	}
	if FromHex("deadbeefcafe").Cmp(x) != 0 {
		t.Fatal("FromHex mismatch")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		x := fromRaw(raw)
		return FromBytes(x.Bytes()).Cmp(x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddSubAgainstBig(t *testing.T) {
	f := func(a, b []byte, an, bn bool) bool {
		x, y := fromRaw(a), fromRaw(b)
		if an {
			x = x.Neg()
		}
		if bn {
			y = y.Neg()
		}
		sum := toBig(x.Add(y))
		diff := toBig(x.Sub(y))
		bx, by := toBig(x), toBig(y)
		return sum.Cmp(new(big.Int).Add(bx, by)) == 0 &&
			diff.Cmp(new(big.Int).Sub(bx, by)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulAgainstBig(t *testing.T) {
	f := func(a, b []byte) bool {
		x, y := fromRaw(a), fromRaw(b)
		return toBig(x.Mul(y)).Cmp(new(big.Int).Mul(toBig(x), toBig(y))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKaratsubaMatchesBasecase(t *testing.T) {
	rng := arch.NewRNG(7)
	for i := 0; i < 40; i++ {
		x := Random(rng, 512+i*37)
		y := Random(rng, 700+i*11)
		kara := x.abs.mul(y.abs)
		base := x.abs.mulBase(y.abs)
		if kara.cmp(base) != 0 {
			t.Fatalf("karatsuba != basecase at iteration %d", i)
		}
	}
}

func TestSqrMatchesMul(t *testing.T) {
	rng := arch.NewRNG(8)
	for i := 1; i < 40; i++ {
		x := Random(rng, i*53)
		if x.Sqr().Cmp(x.Mul(x)) != 0 {
			t.Fatalf("sqr != mul for %d bits", i*53)
		}
	}
}

func TestQuickShiftAgainstBig(t *testing.T) {
	f := func(a []byte, s uint8) bool {
		x := fromRaw(a)
		sh := uint(s % 130)
		l := toBig(x.Shl(sh)).Cmp(new(big.Int).Lsh(toBig(x), sh)) == 0
		r := toBig(x.Shr(sh)).Cmp(new(big.Int).Rsh(toBig(x), sh)) == 0
		return l && r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDivModAgainstBig(t *testing.T) {
	f := func(a, b []byte) bool {
		x, y := fromRaw(a), fromRaw(b)
		if y.IsZero() {
			return true
		}
		q, r := x.QuoRem(y)
		bq, br := new(big.Int).QuoRem(toBig(x), toBig(y), new(big.Int))
		return toBig(q).Cmp(bq) == 0 && toBig(r).Cmp(br) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestDivModLargeOperands(t *testing.T) {
	rng := arch.NewRNG(99)
	for i := 0; i < 60; i++ {
		x := Random(rng, 1024+i*13)
		y := Random(rng, 512+i*7)
		q, r := x.QuoRem(y)
		// x == q*y + r and 0 <= r < y
		if q.Mul(y).Add(r).Cmp(x) != 0 {
			t.Fatalf("q*y+r != x at %d", i)
		}
		if r.Sign() < 0 || r.Cmp(y) >= 0 {
			t.Fatalf("remainder out of range at %d", i)
		}
	}
}

func TestQuickModAgainstBig(t *testing.T) {
	f := func(a, b []byte, an bool) bool {
		x, y := fromRaw(a), fromRaw(b)
		if an {
			x = x.Neg()
		}
		if y.IsZero() {
			return true
		}
		return toBig(x.Mod(y)).Cmp(new(big.Int).Mod(toBig(x), toBig(y))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestModExpAgainstBig(t *testing.T) {
	rng := arch.NewRNG(3)
	for i := 0; i < 25; i++ {
		base := Random(rng, 256)
		exp := Random(rng, 128)
		m := Random(rng, 256)
		if !m.IsOdd() {
			m = m.Add(New(1))
		}
		got := ModExp(base, exp, m, nil)
		want := new(big.Int).Exp(toBig(base), toBig(exp), toBig(m))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("modexp mismatch at %d", i)
		}
	}
}

func TestModExpHookSequenceEncodesExponent(t *testing.T) {
	// The hook trace is exactly the square-and-multiply leakage: one S per
	// bit, an M after the S of every 1-bit.
	var trace []byte
	h := &Hooks{
		Square:   func() { trace = append(trace, 'S') },
		Multiply: func() { trace = append(trace, 'M') },
	}
	exp := FromHex("b5") // 10110101
	ModExp(New(3), exp, FromHex("1fffffffffffffff"), h)
	want := ""
	for i := exp.BitLen() - 1; i >= 0; i-- {
		want += "S"
		if exp.Bit(i) == 1 {
			want += "M"
		}
	}
	if string(trace) != want {
		t.Fatalf("trace %s want %s", trace, want)
	}
}

func TestModExpEdgeCases(t *testing.T) {
	// exp = 0 -> 1 mod m (and 0 when m == 1).
	if got := ModExp(New(5), New(0), New(7), nil); got.Cmp(New(1)) != 0 {
		t.Fatalf("5^0 mod 7 = %s", got)
	}
	if got := ModExp(New(5), New(0), New(1), nil); !got.IsZero() {
		t.Fatalf("5^0 mod 1 = %s", got)
	}
	if got := ModExp(New(0), New(9), New(7), nil); !got.IsZero() {
		t.Fatalf("0^9 mod 7 = %s", got)
	}
	if got := ModExp(New(2), New(10), New(1), nil); !got.IsZero() {
		t.Fatalf("2^10 mod 1 = %s", got)
	}
}

func TestModInverseAgainstBig(t *testing.T) {
	rng := arch.NewRNG(4)
	for i := 0; i < 60; i++ {
		m := Random(rng, 192) // even and odd moduli both exercised
		a := Random(rng, 160)
		inv, ok := ModInverse(a, m, nil)
		want := new(big.Int).ModInverse(toBig(a), toBig(m))
		if (want == nil) != !ok {
			t.Fatalf("existence mismatch at %d: ok=%v want=%v", i, ok, want)
		}
		if ok && toBig(inv).Cmp(want) != 0 {
			t.Fatalf("inverse mismatch at %d", i)
		}
	}
}

func TestModInverseProperty(t *testing.T) {
	rng := arch.NewRNG(5)
	for i := 0; i < 30; i++ {
		m := RandomPrime(rng, 96)
		a := Random(rng, 80)
		inv, ok := ModInverse(a, m, nil)
		if !ok {
			t.Fatalf("no inverse mod prime at %d", i)
		}
		if a.Mul(inv).Mod(m).Cmp(New(1)) != 0 {
			t.Fatalf("a*inv != 1 mod m at %d", i)
		}
	}
}

func TestModInverseHooksFire(t *testing.T) {
	shifts, subs := 0, 0
	h := &Hooks{Shift: func() { shifts++ }, Sub: func() { subs++ }}
	m := FromHex("c353930b3361f2a1d7fba01d4b8e1a4f") // odd
	a := FromHex("1234567890abcdef")
	if _, ok := ModInverse(a, m, h); !ok {
		t.Skip("no inverse for fixture")
	}
	if shifts == 0 || subs == 0 {
		t.Fatalf("hooks did not fire: shifts=%d subs=%d", shifts, subs)
	}
}

func TestGCD(t *testing.T) {
	f := func(a, b []byte) bool {
		x, y := fromRaw(a), fromRaw(b)
		g := GCD(x, y)
		want := new(big.Int).GCD(nil, nil, toBig(x), toBig(y))
		return toBig(g).Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrimality(t *testing.T) {
	rng := arch.NewRNG(11)
	known := []struct {
		v     string
		prime bool
	}{
		{"2", true}, {"3", true}, {"4", false}, {"11", true},
		{"fffffffb", true},  // 4294967291
		{"fffffffd", false}, // 4294967293 = 9241*464773
		{"100000000000000000000000000000000", false},
	}
	for _, k := range known {
		if got := IsProbablePrime(FromHex(k.v), 16, rng); got != k.prime {
			t.Fatalf("IsProbablePrime(%s) = %v", k.v, got)
		}
	}
}

func TestRandomPrimeVerifiesWithBig(t *testing.T) {
	rng := arch.NewRNG(12)
	p := RandomPrime(rng, 128)
	if !toBig(p).ProbablyPrime(20) {
		t.Fatalf("RandomPrime produced composite %s", p)
	}
	if p.BitLen() != 128 {
		t.Fatalf("prime has %d bits", p.BitLen())
	}
}

func TestRandomBitLengthExact(t *testing.T) {
	rng := arch.NewRNG(13)
	for bits := 1; bits < 200; bits += 17 {
		if got := Random(rng, bits).BitLen(); got != bits {
			t.Fatalf("Random(%d) has %d bits", bits, got)
		}
	}
}

func TestModInverseEvenModulusKeyLoad(t *testing.T) {
	// The mbedTLS pattern: d = e^-1 mod (p-1)(q-1), phi even.
	rng := arch.NewRNG(6)
	p := RandomPrime(rng, 96)
	q := RandomPrime(rng, 96)
	e := New(65537)
	phi := p.Sub(New(1)).Mul(q.Sub(New(1)))
	d, ok := ModInverse(e, phi, nil)
	if !ok {
		t.Fatal("no inverse for e mod phi")
	}
	if e.Mul(d).Mod(phi).Cmp(New(1)) != 0 {
		t.Fatal("e*d != 1 mod phi")
	}
	want := new(big.Int).ModInverse(toBig(e), toBig(phi))
	if toBig(d).Cmp(want) != 0 {
		t.Fatal("disagrees with math/big")
	}
}

func TestDivisionByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).QuoRem(New(0))
}

func TestDecimalRoundTrip(t *testing.T) {
	cases := []string{"0", "1", "-1", "999999999", "1000000000",
		"123456789012345678901234567890", "-98765432109876543210"}
	for _, s := range cases {
		x, err := FromDecimal(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got := x.Decimal(); got != s {
			t.Fatalf("round trip %s -> %s", s, got)
		}
	}
	if _, err := FromDecimal("12a3"); err == nil {
		t.Fatal("bad digit accepted")
	}
	if _, err := FromDecimal(""); err == nil {
		t.Fatal("empty string accepted")
	}
}

func TestQuickDecimalAgainstBig(t *testing.T) {
	f := func(raw []byte, neg bool) bool {
		x := fromRaw(raw)
		if neg {
			x = x.Neg()
		}
		return x.Decimal() == toBig(x).String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
