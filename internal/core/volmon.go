package core

import (
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/itree"
)

// VolumeMonitor is mEvict+mReload against a MIRAGE-randomized metadata
// cache (§IX-B): with no stable address-to-set mapping, conflict-based
// eviction sets cannot be built — but every metadata-cache miss evicts a
// uniformly random resident line, so flooding the cache with enough
// attacker counter-block misses flushes the watched node (and the probe's
// own chain, and the victim's chain) with high probability. Fig. 18
// quantifies the cost: thousands of accesses per round instead of tens.
type VolumeMonitor struct {
	A  *Attacker
	Ns itree.NodeRef
	// Probe and Primer play the same roles as in Monitor.
	Probe, Primer arch.BlockID
	// Volume is the number of flooding accesses per Evict.
	Volume int

	traffic []arch.BlockID
	cursor  int

	Threshold arch.Cycles

	// Stats.
	Rounds uint64
	Hits   uint64
}

// NewVolumeMonitor builds a volume-based monitor for the node shared with
// victimPage at the given level. The traffic pool holds `volume` distinct
// counter blocks (enough to keep every flooding access a miss at steady
// state) outside the watched subtree.
func (a *Attacker) NewVolumeMonitor(victimPage arch.PageID, level, volume int) (*VolumeMonitor, error) {
	if volume < 1 {
		return nil, fmt.Errorf("core: volume must be positive")
	}
	victimBlock := victimPage.Block(0)
	ns := a.NodeOfBlock(victimBlock, level)
	taken := make(map[itree.NodeRef]bool)
	for _, ref := range a.pathBelow(victimBlock, level) {
		taken[ref] = true
	}
	m := &VolumeMonitor{A: a, Ns: ns, Volume: volume}

	claim := func(out *arch.BlockID) bool {
		return a.VisitFramesUnder(ns, func(f arch.PageID) bool {
			if !a.disjointBelow(f, level, taken) {
				return false
			}
			if err := a.ClaimFrame(f); err != nil {
				return false
			}
			*out = f.Block(0)
			return true
		})
	}
	if !claim(&m.Probe) {
		return nil, fmt.Errorf("core: no probe frame under %v", ns)
	}
	for _, ref := range a.pathBelow(m.Probe, level) {
		taken[ref] = true
	}
	if !claim(&m.Primer) {
		return nil, fmt.Errorf("core: no primer frame under %v", ns)
	}

	// Flooding pool: distinct counter blocks outside Ns's subtree.
	lo, hi := a.counterIndexRange(ns)
	seenCB := make(map[arch.BlockID]bool)
	limit := arch.PageID(a.Sys.SecurePages())
	for f := arch.PageID(0); f < limit && len(m.traffic) < volume; f++ {
		if a.Sys.Owner(f) != -1 {
			continue
		}
		b := f.Block(0)
		cb := a.MC.Counters().CounterBlock(b)
		idx := int(cb - arch.CounterBase.Block())
		if idx >= lo && idx < hi {
			continue // inside the watched subtree
		}
		if seenCB[cb] {
			continue
		}
		if err := a.ClaimFrame(f); err != nil {
			continue
		}
		seenCB[cb] = true
		m.traffic = append(m.traffic, b)
	}
	if len(m.traffic) < volume {
		return nil, fmt.Errorf("core: flooding pool has only %d/%d blocks", len(m.traffic), volume)
	}
	return m, nil
}

// Evict floods the randomized metadata cache with Volume counter-block
// misses, evicting Ns (and the probe and victim chains) with the Fig. 18
// probability.
func (m *VolumeMonitor) Evict() {
	a := m.A
	for i := 0; i < m.Volume; i++ {
		b := m.traffic[m.cursor]
		m.cursor = (m.cursor + 1) % len(m.traffic)
		a.Sys.Flush(a.Core, b)
		a.Sys.Touch(a.Core, b)
	}
}

// ReloadLatency performs the timed mReload access.
func (m *VolumeMonitor) ReloadLatency() arch.Cycles {
	m.A.Sys.Flush(m.A.Core, m.Probe)
	return m.A.Sys.TimedRead(m.A.Core, m.Probe)
}

// Reload classifies the probe read: true means Ns was on-chip.
func (m *VolumeMonitor) Reload() (bool, arch.Cycles) {
	lat := m.ReloadLatency()
	m.Rounds++
	hit := lat < m.Threshold
	if hit {
		m.Hits++
	}
	return hit, lat
}

// PrimeNs emulates a victim access (calibration only).
func (m *VolumeMonitor) PrimeNs() {
	m.A.Sys.Flush(m.A.Core, m.Primer)
	m.A.Sys.Touch(m.A.Core, m.Primer)
}

// Calibrate trains the threshold exactly like Monitor.Calibrate.
func (m *VolumeMonitor) Calibrate(rounds int) (hitMean, missMean arch.Cycles) {
	var hits, misses []arch.Cycles
	var hitSum, missSum uint64
	for i := 0; i < rounds; i++ {
		m.Evict()
		m.PrimeNs()
		h := m.ReloadLatency()
		hits = append(hits, h)
		hitSum += uint64(h)

		m.Evict()
		ms := m.ReloadLatency()
		misses = append(misses, ms)
		missSum += uint64(ms)
	}
	hitMean = arch.Cycles(hitSum / uint64(rounds))
	missMean = arch.Cycles(missSum / uint64(rounds))
	m.Threshold = midpoint(hits, misses)
	return hitMean, missMean
}
