package core

import (
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/itree"
)

// EvictionSet is a collection of attacker-owned data blocks whose
// encryption counter blocks all map to one metadata cache set. Accessing
// them (with the data itself flushed, so the access reaches the memory
// controller) loads those counter blocks into that set, displacing
// whatever metadata block the attacker wants gone — the indirection at the
// heart of mEvict (§VI-A, challenge 1: programs cannot address metadata).
type EvictionSet struct {
	// Target is the metadata block this set displaces.
	Target arch.BlockID
	// Blocks are the attacker-owned data blocks to access, in order. There
	// are 2× associativity of them so that cycling through the list in
	// order defeats LRU (every access misses).
	Blocks []arch.BlockID
}

// BuildEvictionSet allocates attacker pages whose counter blocks collide
// with the target metadata block's cache set and returns the resulting
// set. Frames whose verification path passes through any node in avoid
// are skipped, so running the set never re-loads the node being evicted.
func (a *Attacker) BuildEvictionSet(target arch.BlockID, avoid []itree.NodeRef) (*EvictionSet, error) {
	meta := a.MC.Meta()
	if meta == nil {
		return nil, fmt.Errorf("core: randomized metadata cache — no stable set mapping for conflict-based eviction (use VolumeMonitor)")
	}
	want := 2 * meta.Config().Ways
	targetSet := meta.SetIndex(target)

	avoidRange := make([][2]int, 0, len(avoid))
	for _, ref := range avoid {
		lo, hi := a.counterIndexRange(ref)
		avoidRange = append(avoidRange, [2]int{lo, hi})
	}
	cbIndexOf := func(cb arch.BlockID) int { return int(cb - arch.CounterBase.Block()) }
	avoided := func(cb arch.BlockID) bool {
		i := cbIndexOf(cb)
		for _, r := range avoidRange {
			if i >= r[0] && i < r[1] {
				return true
			}
		}
		return false
	}

	es := &EvictionSet{Target: target}
	seenCB := make(map[arch.BlockID]bool)
	limit := arch.PageID(a.Sys.SecurePages())
	for frame := arch.PageID(0); frame < limit && len(es.Blocks) < want; frame++ {
		if a.Sys.Owner(frame) != -1 {
			continue
		}
		// Find a block in this frame whose counter block lands in the set.
		var pick arch.BlockID
		found := false
		for i := 0; i < arch.BlocksPerPage; i++ {
			b := frame.Block(i)
			cb := a.MC.Counters().CounterBlock(b)
			if seenCB[cb] || avoided(cb) || meta.SetIndex(cb) != targetSet {
				continue
			}
			pick, found = b, true
			seenCB[cb] = true
			break
		}
		if !found {
			continue
		}
		if err := a.ClaimFrame(frame); err != nil {
			return nil, err
		}
		es.Blocks = append(es.Blocks, pick)
	}
	if len(es.Blocks) < want {
		return nil, fmt.Errorf("core: found only %d/%d eviction blocks for set %d", len(es.Blocks), want, targetSet)
	}
	return es, nil
}

// Warm touches every eviction block once so later runs walk only as far
// as their (then-cached) private leaf nodes and cannot disturb high tree
// levels under observation.
func (a *Attacker) Warm(es *EvictionSet) {
	for _, b := range es.Blocks {
		a.Sys.Flush(a.Core, b)
		a.Sys.Touch(a.Core, b)
	}
}

// RunEviction performs one mEvict pass for the set: each access misses
// the data caches (own-line flush) and forces the block's counter into
// the target metadata set, evicting the prior occupants.
func (a *Attacker) RunEviction(es *EvictionSet) {
	for _, b := range es.Blocks {
		a.Sys.Flush(a.Core, b)
		a.Sys.Touch(a.Core, b)
	}
}

// RunEvictionTimed is RunEviction measuring each access, returning the
// slowest one. A dirty eviction that triggers tree-counter overflow
// handling stalls for the whole subtree re-hash, so the maximum
// single-access latency is the mOverflow observable.
func (a *Attacker) RunEvictionTimed(es *EvictionSet) arch.Cycles {
	var max arch.Cycles
	for _, b := range es.Blocks {
		a.Sys.Flush(a.Core, b)
		if lat := a.Sys.TimedRead(a.Core, b); lat > max {
			max = lat
		}
	}
	return max
}

// evictionPlan deduplicates eviction sets by metadata cache set index:
// monitors that must clear several metadata blocks living in the same set
// need only one eviction set for it.
type evictionPlan struct {
	sets []*EvictionSet
}

// setCache shares eviction sets (keyed by metadata cache set index)
// between the plans of one attack setup, so overlapping plans do not
// hoard duplicate page frames.
type setCache map[int]*EvictionSet

// buildPlan creates eviction sets covering every target metadata block,
// one per distinct cache set, reusing sets from the cache when present.
func (a *Attacker) buildPlan(cache setCache, targets []arch.BlockID, avoid []itree.NodeRef) (*evictionPlan, error) {
	meta := a.MC.Meta()
	if meta == nil {
		return nil, fmt.Errorf("core: randomized metadata cache — conflict-based mEvict unavailable")
	}
	covered := make(map[int]bool)
	plan := &evictionPlan{}
	for _, tgt := range targets {
		si := meta.SetIndex(tgt)
		if covered[si] {
			continue
		}
		covered[si] = true
		es := cache[si]
		if es == nil {
			var err error
			es, err = a.BuildEvictionSet(tgt, avoid)
			if err != nil {
				return nil, err
			}
			cache[si] = es
		}
		plan.sets = append(plan.sets, es)
	}
	return plan, nil
}

// run executes every eviction set in the plan.
func (p *evictionPlan) run(a *Attacker) {
	for _, es := range p.sets {
		a.RunEviction(es)
	}
}

// runTimed executes the plan returning the slowest single access.
func (p *evictionPlan) runTimed(a *Attacker) arch.Cycles {
	var max arch.Cycles
	for _, es := range p.sets {
		if lat := a.RunEvictionTimed(es); lat > max {
			max = lat
		}
	}
	return max
}

// warm touches every set once (see Attacker.Warm).
func (p *evictionPlan) warm(a *Attacker) {
	for _, es := range p.sets {
		a.Warm(es)
	}
}
