package core

import (
	"strings"
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/machine"
)

// isoRig builds an SCT machine with the §IX-C per-domain tree isolation:
// four cores, four domains, each with a private tree and root.
func isoRig(t *testing.T, seed uint64) *machine.System {
	t.Helper()
	dp := machine.ConfigSCT()
	dp.Seed = seed
	dp.SecurePages = 1 << 16
	dp.IsolatedDomains = 4
	return machine.NewSystem(dp)
}

func TestIsolationDefeatsMonitorConstruction(t *testing.T) {
	sys := isoRig(t, 50)
	victimPage := sys.AllocPage(1) // domain 1
	attacker := NewAttacker(sys.System, sys.Ctrl, 0, true)
	for level := 0; level < sys.Ctrl.Tree().StoredLevels(); level++ {
		_, err := attacker.NewMonitor(victimPage, level)
		if err == nil {
			t.Fatalf("level %d: monitor built despite per-domain trees", level)
		}
	}
}

func TestIsolationDefeatsCounterMonitorOnVictim(t *testing.T) {
	sys := isoRig(t, 51)
	victimPage := sys.AllocPage(1)
	attacker := NewAttacker(sys.System, sys.Ctrl, 0, true)
	if _, err := attacker.NewCounterMonitor(victimPage, 1, victimPage.Block(0)); err == nil {
		t.Fatal("counter monitor bound to a victim-domain node despite isolation")
	}
}

func TestIsolationDefeatsPagePlacement(t *testing.T) {
	sys := isoRig(t, 52)
	attacker := NewAttacker(sys.System, sys.Ctrl, 0, true)
	// The §VIII-A1 page massaging: placing victim pages is attacker-driven
	// and still works (pages land in the VICTIM's domain)...
	frames, err := attacker.PlaceVictimPages(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// ...but the attacker cannot claim frames under the victim's nodes.
	ns := attacker.NodeOfPage(frames[0], 0)
	if got := attacker.FramesUnder(ns, 64); len(got) != 0 {
		// Frames exist, but claiming them must fail.
		for _, f := range got {
			if err := attacker.ClaimFrame(f); err == nil {
				t.Fatalf("attacker claimed frame %d in victim domain", f)
			}
		}
	}
}

func TestIsolationPreservesFunctionality(t *testing.T) {
	sys := isoRig(t, 53)
	// Every domain reads and writes normally; tampering is still caught.
	for core := 0; core < 4; core++ {
		p := sys.AllocPage(core)
		b := p.Block(0)
		var data [arch.BlockSize]byte
		data[0] = byte(core + 1)
		sys.WriteThrough(core, b, data)
		got, res := sys.Read(core, b)
		if got != data || res.Report.Tampered {
			t.Fatalf("core %d: round trip broken under isolation", core)
		}
	}
	if sys.TamperDetections() != 0 {
		t.Fatal("false positive under isolation")
	}
	// Replay detection across the partitioned forest.
	p := sys.AllocPage(2)
	b := p.Block(1)
	sys.WriteThrough(2, b, [arch.BlockSize]byte{1})
	snap := sys.Ctrl.Snapshot(b)
	sys.WriteThrough(2, b, [arch.BlockSize]byte{2})
	sys.Ctrl.TamperReplay(snap)
	sys.Flush(2, b)
	sys.Read(2, b)
	if sys.TamperDetections() == 0 {
		t.Fatal("replay undetected under isolation")
	}
}

func TestIsolationSameDomainChannelStillWorks(t *testing.T) {
	// Isolation removes CROSS-domain sharing; two processes inside one
	// domain (same enclave/trust zone) can still monitor each other —
	// which is fine, they already trust each other. This checks the
	// defence is not accidentally breaking the machinery.
	sys := isoRig(t, 54)
	attacker := NewAttacker(sys.System, sys.Ctrl, 0, false)
	ownPage := sys.AllocPage(0)
	m, err := attacker.NewMonitor(ownPage, 0)
	if err != nil {
		t.Fatalf("same-domain monitor should build: %v", err)
	}
	hit, miss := m.Calibrate(8)
	if hit >= miss {
		t.Fatal("same-domain channel lost its signal")
	}
}

func TestIsolationErrorsAreInformative(t *testing.T) {
	sys := isoRig(t, 55)
	victimPage := sys.AllocPage(1)
	attacker := NewAttacker(sys.System, sys.Ctrl, 0, true)
	_, err := attacker.NewMonitor(victimPage, 0)
	if err == nil || !strings.Contains(err.Error(), "probe frame") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
