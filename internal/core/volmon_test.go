package core

import (
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/machine"
)

// randRig builds an SCT machine whose metadata cache is MIRAGE-organized
// (small, so volume eviction is affordable in tests).
func randRig(t *testing.T, seed uint64) *machine.System {
	t.Helper()
	dp := machine.ConfigSCT()
	dp.Seed = seed
	dp.SecurePages = 1 << 16
	dp.MetaKB = 16 // 256-block MIRAGE store
	dp.RandomizedMeta = true
	dp.FastCrypto = true
	return machine.NewSystem(dp)
}

func TestRandomizedMetaBlocksConflictEviction(t *testing.T) {
	sys := randRig(t, 60)
	if sys.Ctrl.Meta() != nil {
		t.Fatal("randomized controller still exposes set geometry")
	}
	if !sys.Ctrl.MetaRandomized() {
		t.Fatal("MetaRandomized not reported")
	}
	victimPage := sys.AllocPage(1)
	attacker := NewAttacker(sys.System, sys.Ctrl, 0, false)
	if _, err := attacker.NewMonitor(victimPage, 0); err == nil {
		t.Fatal("conflict-based monitor built against randomized metadata cache")
	}
	if _, err := attacker.BuildEvictionSet(arch.CounterBase.Block(), nil); err == nil {
		t.Fatal("eviction set built without set geometry")
	}
}

func TestRandomizedMetaFunctionalityIntact(t *testing.T) {
	sys := randRig(t, 61)
	p := sys.AllocPage(0)
	b := p.Block(0)
	var data [arch.BlockSize]byte
	data[0] = 0x77
	sys.WriteThrough(0, b, data)
	got, res := sys.Read(0, b)
	if got != data || res.Report.Tampered {
		t.Fatal("round trip broken under randomized metadata cache")
	}
	// Integrity still enforced.
	snap := sys.Ctrl.Snapshot(b)
	sys.WriteThrough(0, b, [arch.BlockSize]byte{1})
	sys.Ctrl.TamperReplay(snap)
	sys.Flush(0, b)
	sys.Read(0, b)
	if sys.TamperDetections() == 0 {
		t.Fatal("replay undetected under randomized metadata cache")
	}
}

func TestVolumeMonitorBeatsRandomizedMeta(t *testing.T) {
	sys := randRig(t, 62)
	victimPage := sys.AllocPage(1)
	victimBlock := victimPage.Block(0)
	attacker := NewAttacker(sys.System, sys.Ctrl, 0, false)
	// Volume sized at ~3x the 256-block store: eviction probability per
	// round is high (Fig. 18 scaling).
	m, err := attacker.NewVolumeMonitor(victimPage, 0, 800)
	if err != nil {
		t.Fatal(err)
	}
	hit, miss := m.Calibrate(10)
	if hit >= miss {
		t.Fatalf("volume calibration inverted: %d vs %d", hit, miss)
	}
	correct := 0
	const rounds = 30
	for i := 0; i < rounds; i++ {
		m.Evict()
		want := i%2 == 0
		if want {
			sys.Flush(1, victimBlock)
			sys.Touch(1, victimBlock)
		}
		got, _ := m.Reload()
		if got == want {
			correct++
		}
	}
	if correct < rounds*80/100 {
		t.Fatalf("volume monitor accuracy %d/%d under randomized cache", correct, rounds)
	}
}

func TestVolumeMonitorPoolExhaustion(t *testing.T) {
	dp := machine.ConfigSCT()
	dp.Seed = 63
	dp.SecurePages = 256 // tiny region: pool cannot be built
	dp.TreeArities = []int{32, 8}
	dp.RandomizedMeta = true
	sys := machine.NewSystem(dp)
	victimPage := sys.AllocPage(1)
	attacker := NewAttacker(sys.System, sys.Ctrl, 0, false)
	if _, err := attacker.NewVolumeMonitor(victimPage, 0, 100000); err == nil {
		t.Fatal("expected pool exhaustion error")
	}
}
