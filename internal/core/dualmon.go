package core

import (
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/itree"
)

// DualMonitor watches two victim pages at once and classifies each victim
// step as an access to one or the other — the shape of all three case
// studies: r vs. nbits in libjpeg (§VIII-A1), square vs. multiply in
// libgcrypt (§VIII-B1), shift vs. subtract in mbedTLS (§VIII-B2).
type DualMonitor struct {
	MonA, MonB *Monitor
}

// PlaceVictimPages chooses n page frames for the victim's leaky pages and
// assigns them to the victim's core — the page-placement step of
// §VIII-A1: an unprivileged attacker massages the per-core free lists, a
// privileged SGX attacker controls EPC assignment outright. Frames are
// chosen so that their level-l tree nodes are pairwise distinct, live in
// pairwise distinct metadata cache sets, and no frame's metadata chain
// conflict-maps onto another frame's node set.
func (a *Attacker) PlaceVictimPages(victimCore, n, level int) ([]arch.PageID, error) {
	meta := a.MC.Meta()
	var frames []arch.PageID
	var nodeSets []int
	seenNodes := make(map[int]bool)
	limit := arch.PageID(a.Sys.SecurePages())
	for f := arch.PageID(0); f < limit && len(frames) < n; f++ {
		if a.Sys.Owner(f) != -1 {
			continue
		}
		ns := a.NodeOfPage(f, level)
		nodeKey := ns.Index
		if seenNodes[nodeKey] {
			continue
		}
		set := meta.SetIndex(a.tree().NodeBlockID(ns))
		chain := a.chainSets(f.Block(0), level)
		ok := true
		for i, prev := range frames {
			if set == nodeSets[i] {
				ok = false
				break
			}
			if intersects(chain, []int{nodeSets[i]}) {
				ok = false
				break
			}
			if intersects(a.chainSets(prev.Block(0), level), []int{set}) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if err := a.Sys.AllocFrame(victimCore, f); err != nil {
			// Frame not grantable to the victim (e.g. outside its domain
			// under the §IX-C isolation defence): keep searching.
			continue
		}
		frames = append(frames, f)
		nodeSets = append(nodeSets, set)
		seenNodes[nodeKey] = true
	}
	if len(frames) < n {
		return nil, fmt.Errorf("core: placed only %d/%d victim frames", len(frames), n)
	}
	return frames, nil
}

// NewDualMonitor builds monitors for two (already placed) victim pages at
// the given tree level, with mutual set avoidance so that probing one
// cannot disturb the other.
func (a *Attacker) NewDualMonitor(pageA, pageB arch.PageID, level int) (*DualMonitor, error) {
	meta := a.MC.Meta()
	nsA := a.NodeOfPage(pageA, level)
	nsB := a.NodeOfPage(pageB, level)
	if nsA == nsB {
		return nil, fmt.Errorf("core: victim pages share the level-%d node %v", level, nsA)
	}
	setA := meta.SetIndex(a.tree().NodeBlockID(nsA))
	setB := meta.SetIndex(a.tree().NodeBlockID(nsB))
	monA, err := a.NewMonitorSpec(MonitorSpec{
		VictimPage: pageA, Level: level,
		AvoidNodes: []itree.NodeRef{nsA, nsB},
		AvoidSets:  []int{setB},
	})
	if err != nil {
		return nil, err
	}
	monB, err := a.NewMonitorSpec(MonitorSpec{
		VictimPage: pageB, Level: level,
		AvoidNodes: []itree.NodeRef{nsA, nsB},
		AvoidSets:  []int{setA},
	})
	if err != nil {
		return nil, err
	}
	d := &DualMonitor{MonA: monA, MonB: monB}
	d.Train(24)
	return d, nil
}

// Train derives both monitors' thresholds under the attack's operating
// conditions: it runs the full per-step loop (evict both, one victim-like
// access via a primer, reload both) with known ground truth. Isolated
// per-monitor calibration would sample colder tree state than the steady
// attack loop and misplace the thresholds.
func (d *DualMonitor) Train(rounds int) {
	var aHit, aMiss, bHit, bMiss []arch.Cycles
	for i := 0; i < rounds; i++ {
		d.MonA.Evict()
		d.MonB.Evict()
		if i%2 == 0 {
			d.MonA.PrimeNs()
		} else {
			d.MonB.PrimeNs()
		}
		aLat := d.MonA.ReloadLatency()
		bLat := d.MonB.ReloadLatency()
		if i%2 == 0 {
			aHit = append(aHit, aLat)
			bMiss = append(bMiss, bLat)
		} else {
			aMiss = append(aMiss, aLat)
			bHit = append(bHit, bLat)
		}
	}
	d.MonA.Threshold = midpoint(aHit, aMiss)
	d.MonB.Threshold = midpoint(bHit, bMiss)
}

// Evict clears both watched nodes (one mEvict phase).
func (d *DualMonitor) Evict() {
	d.MonA.Evict()
	d.MonB.Evict()
}

// Classify reloads both monitors and decides which page the victim
// touched: true means page A. Ambiguous observations (both or neither
// node present) fall back to the larger threshold margin.
func (d *DualMonitor) Classify() bool {
	isA, _, _ := d.ClassifyDetail()
	return isA
}

// ClassifyDetail is Classify returning the raw reload latencies (the
// Fig. 16/17 trace material).
func (d *DualMonitor) ClassifyDetail() (isA bool, aLat, bLat arch.Cycles) {
	aHit, aLat := d.MonA.Reload()
	bHit, bLat := d.MonB.Reload()
	switch {
	case aHit && !bHit:
		return true, aLat, bLat
	case bHit && !aHit:
		return false, aLat, bLat
	default:
		// Both or neither: compare distances below threshold.
		da := int64(d.MonA.Threshold) - int64(aLat)
		db := int64(d.MonB.Threshold) - int64(bLat)
		return da >= db, aLat, bLat
	}
}
