package core

import (
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/cache"
	"metaleak/internal/crypto"
	"metaleak/internal/ctr"
	"metaleak/internal/dram"
	"metaleak/internal/itree"
	"metaleak/internal/secmem"
	"metaleak/internal/sim"
)

// rig is a small SCT machine for attack tests: 64K secure pages, the
// Table I metadata cache, four cores.
type rig struct {
	sys *sim.System
	mc  *secmem.Controller
}

func newRig(t *testing.T, seed uint64, noiseInterval int) *rig {
	t.Helper()
	return newRigTree(t, seed, noiseInterval, "SCT")
}

func newRigTree(t *testing.T, seed uint64, noiseInterval int, kind string) *rig {
	t.Helper()
	engCfg := crypto.Config{AESLatency: 20, HashLatency: 12}
	h := crypto.New(engCfg)
	pages := 1 << 16
	var tree itree.Tree
	var scheme ctr.Scheme
	switch kind {
	case "SCT":
		scheme = ctr.NewSC(ctr.SCConfig{})
		tree = itree.NewVTree(itree.VTreeConfig{
			Name: "SCT", Arities: []int{32, 16, 16, 16}, MinorBits: 7, CounterBlocks: pages,
		}, h)
	case "SIT":
		scheme = ctr.NewMoC(ctr.MoCConfig{Bits: 56})
		tree = itree.NewVTree(itree.VTreeConfig{
			Name: "SIT", Arities: []int{8, 8, 8}, MinorBits: 56, CounterBlocks: pages * 8,
		}, h)
	default:
		t.Fatalf("unknown tree kind %s", kind)
	}
	// SIT rigs use the slower SGX-like per-level walk serialization
	// (Fig. 7: ~130 cycles/level on hardware).
	step := arch.Cycles(30)
	if kind == "SIT" {
		step = 90
	}
	mc := secmem.New(secmem.Config{
		DRAM:          dram.DefaultConfig(),
		Meta:          cache.Config{Name: "meta", SizeBytes: 256 * 1024, Ways: 8, HitLatency: 2, Seed: seed},
		Engine:        engCfg,
		QueueDelay:    10,
		MACLatency:    30,
		TreeStepDelay: step,
	}, scheme, tree)
	sys := sim.New(sim.Config{
		Cores:         4,
		L1:            cache.Config{Name: "L1", SizeBytes: 32 * 1024, Ways: 8, HitLatency: 1, Seed: seed + 1},
		L2:            cache.Config{Name: "L2", SizeBytes: 1 << 20, Ways: 4, HitLatency: 10, Seed: seed + 2},
		L3:            cache.Config{Name: "L3", SizeBytes: 8 << 20, Ways: 16, HitLatency: 29, Seed: seed + 3},
		SecurePages:   pages,
		NoiseInterval: arch.Cycles(noiseInterval),
		NoisePages:    256,
		Seed:          seed,
	}, mc)
	return &rig{sys: sys, mc: mc}
}

// victim allocates a page for a pseudo-victim on the given core and
// returns a function that performs one secret-dependent access.
func (r *rig) victim(core int) (arch.PageID, func()) {
	p := r.sys.AllocPage(core)
	b := p.Block(0)
	return p, func() {
		r.sys.Flush(core, b) // cache cleansing per the threat model
		r.sys.Touch(core, b)
	}
}

func TestFramesUnderShareNode(t *testing.T) {
	r := newRig(t, 1, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	vp := r.sys.AllocPage(1)
	for level := 0; level < 3; level++ {
		ns := a.NodeOfPage(vp, level)
		frames := a.FramesUnder(ns, 10)
		if len(frames) == 0 {
			t.Fatalf("level %d: no frames", level)
		}
		for _, f := range frames {
			if a.NodeOfPage(f, level) != ns {
				t.Fatalf("level %d: frame %d not under %v", level, f, ns)
			}
		}
	}
}

func TestEvictionSetEvictsTarget(t *testing.T) {
	r := newRig(t, 2, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	// Target: the counter block of an attacker scratch page, loaded first.
	p := r.sys.AllocPage(0)
	b := p.Block(0)
	r.sys.Touch(0, b)
	cb := r.mc.Counters().CounterBlock(b)
	if !r.mc.Meta().Contains(cb) {
		t.Fatal("counter block not cached after touch")
	}
	es, err := a.BuildEvictionSet(cb, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Warm(es)
	// Re-load the target, then evict it.
	r.sys.Flush(0, b)
	r.sys.Touch(0, b)
	a.RunEviction(es)
	if r.mc.Meta().Contains(cb) {
		t.Fatal("eviction set failed to evict target counter block")
	}
}

func TestMonitorDetectsVictimAccessLeafLevel(t *testing.T) {
	r := newRig(t, 3, 0)
	vp, access := r.victim(1)
	a := NewAttacker(r.sys, r.mc, 0, false)
	m, err := a.NewMonitor(vp, 0)
	if err != nil {
		t.Fatal(err)
	}
	hitMean, missMean := m.Calibrate(12)
	if hitMean >= missMean {
		t.Fatalf("calibration inverted: hit=%d miss=%d", hitMean, missMean)
	}
	// 40 rounds alternating victim access / idle; noiseless run must be
	// perfectly classified.
	for i := 0; i < 40; i++ {
		m.Evict()
		want := i%2 == 0
		if want {
			access()
		}
		got, lat := m.Reload()
		if got != want {
			t.Fatalf("round %d: classified %v want %v (lat %d, thr %d)", i, got, want, lat, m.Threshold)
		}
	}
}

func TestMonitorLevelOne(t *testing.T) {
	r := newRig(t, 4, 0)
	vp, access := r.victim(1)
	a := NewAttacker(r.sys, r.mc, 0, false)
	m, err := a.NewMonitor(vp, 1)
	if err != nil {
		t.Fatal(err)
	}
	hit, miss := m.Calibrate(10)
	if hit >= miss {
		t.Fatalf("level-1 calibration inverted: %d vs %d", hit, miss)
	}
	errs := 0
	for i := 0; i < 30; i++ {
		m.Evict()
		want := i%3 == 0
		if want {
			access()
		}
		got, _ := m.Reload()
		if got != want {
			errs++
		}
	}
	if errs > 1 {
		t.Fatalf("%d/30 misclassifications at level 1", errs)
	}
}

func TestMonitorSITLevelOne(t *testing.T) {
	// The SGX configuration of §VIII-B: L1 sharing (L0 covers one page and
	// cannot be shared).
	r := newRigTree(t, 5, 0, "SIT")
	vp, access := r.victim(1)
	a := NewAttacker(r.sys, r.mc, 0, true)
	m, err := a.NewMonitor(vp, 1)
	if err != nil {
		t.Fatal(err)
	}
	hit, miss := m.Calibrate(10)
	if hit >= miss {
		t.Fatalf("SIT calibration inverted: %d vs %d", hit, miss)
	}
	errs := 0
	for i := 0; i < 30; i++ {
		m.Evict()
		want := i%2 == 1
		if want {
			access()
		}
		got, _ := m.Reload()
		if got != want {
			errs++
		}
	}
	if errs > 1 {
		t.Fatalf("%d/30 misclassifications on SIT", errs)
	}
}

func TestMonitorUnderNoise(t *testing.T) {
	r := newRig(t, 6, 20000)
	vp, access := r.victim(1)
	a := NewAttacker(r.sys, r.mc, 0, false)
	m, err := a.NewMonitor(vp, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Calibrate(12)
	correct := 0
	const rounds = 100
	for i := 0; i < rounds; i++ {
		m.Evict()
		want := i%2 == 0
		if want {
			access()
		}
		got, _ := m.Reload()
		if got == want {
			correct++
		}
	}
	if correct < rounds*85/100 {
		t.Fatalf("accuracy %d%% under noise, want >= 85%%", correct*100/rounds)
	}
}

func TestMonitorNeverTouchesVictimMemory(t *testing.T) {
	// The ownership guard in sim panics on cross-domain access; a full
	// monitor lifecycle must not trip it.
	r := newRig(t, 7, 0)
	vp, access := r.victim(1)
	a := NewAttacker(r.sys, r.mc, 0, false)
	m, err := a.NewMonitor(vp, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Calibrate(5)
	for i := 0; i < 10; i++ {
		m.Evict()
		access()
		m.Reload()
	}
	// Ownership still intact: the victim page belongs to core 1.
	if r.sys.Owner(vp) != 1 {
		t.Fatal("victim page ownership changed")
	}
}

func TestFlushWriteQueueDrains(t *testing.T) {
	r := newRig(t, 8, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	p := r.sys.AllocPage(0)
	for i := 0; i < 10; i++ {
		r.sys.WriteThrough(0, p.Block(i), [arch.BlockSize]byte{1})
	}
	before := r.mc.DRAM().Stats().Drains
	a.FlushWriteQueue()
	if r.mc.DRAM().Stats().Drains == before {
		t.Fatal("no forced drains during write-queue flush")
	}
}

func TestProbeLevelsFindsSignalEverywhere(t *testing.T) {
	r := newRig(t, 80, 0)
	vp := r.sys.AllocPage(1)
	a := NewAttacker(r.sys, r.mc, 0, false)
	reports := a.ProbeLevels(vp, 6)
	if len(reports) != r.mc.Tree().StoredLevels() {
		t.Fatalf("%d reports", len(reports))
	}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("level %d: %v", rep.Level, rep.Err)
		}
		if rep.Gap <= 0 {
			t.Fatalf("level %d: no signal (gap %d)", rep.Level, rep.Gap)
		}
	}
}

func TestProbeLevelsUnderIsolationReportsErrors(t *testing.T) {
	sys := isoRig(t, 81)
	vp := sys.AllocPage(1)
	a := NewAttacker(sys.System, sys.Ctrl, 0, true)
	for _, rep := range a.ProbeLevels(vp, 4) {
		if rep.Err == nil {
			t.Fatalf("level %d: monitor built despite isolation", rep.Level)
		}
	}
}
