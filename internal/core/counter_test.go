package core

import (
	"testing"

	"metaleak/internal/arch"
)

func TestCounterMonitorBumpIncrementsMinor(t *testing.T) {
	r := newRig(t, 20, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	anchor := arch.PageID(100)
	cm, err := a.NewCounterMonitor(anchor, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := cm.MinorValue()
	for i := 0; i < 5; i++ {
		cm.Bump()
	}
	after := cm.MinorValue()
	if after != before+5 {
		t.Fatalf("5 bumps moved minor from %d to %d", before, after)
	}
}

func TestCounterMonitorCalibrateFindsOverflowGap(t *testing.T) {
	r := newRig(t, 21, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	cm, err := a.NewCounterMonitor(arch.PageID(200), 0)
	if err != nil {
		t.Fatal(err)
	}
	normal, overflow := cm.Calibrate()
	if overflow < 2*normal {
		t.Fatalf("overflow bump (%d) not well separated from normal (%d)", overflow, normal)
	}
	// Post-calibration state: minor just reset by an overflow.
	if v := cm.MinorValue(); v != 1 {
		t.Fatalf("post-calibration minor = %d, want 1", v)
	}
}

func TestCounterMonitorPresetAndProbe(t *testing.T) {
	r := newRig(t, 22, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	cm, err := a.NewCounterMonitor(arch.PageID(300), 0)
	if err != nil {
		t.Fatal(err)
	}
	cm.Calibrate()
	max := cm.MinorMax() // 127
	cm.Preset(max - 1)   // one short of saturation
	if v := cm.MinorValue(); v != max-1 {
		t.Fatalf("preset left minor at %d want %d", v, max-1)
	}
	// Without a victim write: saturating takes 1 bump, overflow on the 2nd.
	m, err := cm.ProbeOverflow(5)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatalf("probe needed %d bumps, want 2", m)
	}
	if v := cm.MinorValue(); v != 1 {
		t.Fatalf("post-probe minor = %d, want 1", v)
	}
}

func TestCounterMonitorDetectsVictimWriteAtLevelTwo(t *testing.T) {
	// The libjpeg MetaLeak-C setup (§VIII-A2): the attacker shares a minor
	// at the 2nd tree level with the victim's write target.
	r := newRig(t, 23, 0)
	victimCore := 1
	vp := r.sys.AllocPage(victimCore)
	vb := vp.Block(0)
	victimWrite := func() {
		r.sys.WriteThrough(victimCore, vb, [arch.BlockSize]byte{0xaa})
	}

	a := NewAttacker(r.sys, r.mc, 0, false)
	cm, err := a.NewCounterMonitor(vp, 1, vb) // child = victim's L1 node
	if err != nil {
		t.Fatal(err)
	}
	cm.Calibrate()
	max := cm.MinorMax()

	detect := func(expectWrite bool) {
		t.Helper()
		cm.Preset(max - 1)
		if expectWrite {
			victimWrite()
		}
		cm.PropagateVictim(vb)
		m, err := cm.ProbeOverflow(5)
		if err != nil {
			t.Fatal(err)
		}
		wrote := m == 1
		if wrote != expectWrite {
			t.Fatalf("m=%d: inferred write=%v want %v", m, wrote, expectWrite)
		}
	}
	detect(true)
	detect(false)
	detect(true)
	detect(true)
	detect(false)
}

func TestCounterMonitorSymbolRoundTrip(t *testing.T) {
	// Trojan encodes a symbol as s bumps; spy decodes via m additional
	// bumps to overflow: s = max - m.
	r := newRig(t, 24, 0)
	anchor := arch.PageID(400)
	spy := NewAttacker(r.sys, r.mc, 0, false)
	trojan := NewAttacker(r.sys, r.mc, 2, false)
	spyMon, err := spy.NewCounterMonitor(anchor, 0)
	if err != nil {
		t.Fatal(err)
	}
	trojanMon, err := trojan.NewCounterMonitor(anchor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spyMon.Parent != trojanMon.Parent || spyMon.Slot != trojanMon.Slot {
		t.Fatal("spy and trojan monitors target different minors")
	}
	spyMon.Calibrate() // state: 1
	max := int(spyMon.MinorMax())
	for _, s := range []int{5, 0, 100, 126, 63} {
		for i := 0; i < s; i++ {
			trojanMon.Bump()
		}
		m, err := spyMon.ProbeOverflow(max + 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := max - m; got != s {
			t.Fatalf("decoded %d want %d (m=%d)", got, s, m)
		}
	}
}

func TestLeafCounterMonitorFig8Benchmark(t *testing.T) {
	// childLevel == -1: the Fig. 8 microbenchmark target — the leaf minor
	// versioning the attacker's own counter block. Overflow re-hashes only
	// the leaf subtree (1 node + 32 counter blocks).
	r := newRig(t, 25, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	cm, err := a.NewCounterMonitor(arch.PageID(800), -1)
	if err != nil {
		t.Fatal(err)
	}
	if !cm.IsLeafLevel() {
		t.Fatal("not a leaf-level monitor")
	}
	before := cm.MinorValue()
	cm.Bump()
	if cm.MinorValue() != before+1 {
		t.Fatal("leaf bump did not increment the L0 minor")
	}
	normal, overflow := cm.Calibrate()
	if overflow < normal+500 {
		t.Fatalf("leaf overflow band (%d) not separated from normal (%d)", overflow, normal)
	}
	// The leaf subtree is ~33 blocks; the probe delay should be in the
	// Fig. 8 ~2000-cycle class, far below the L1-overflow class (~12000).
	if gap := overflow - normal; gap > 8000 {
		t.Fatalf("leaf overflow gap %d looks like a deeper subtree", gap)
	}
}

func TestCountVictimWritesGeneralized(t *testing.T) {
	// §VI-B: "generalized to infer up to x victim writes by presetting the
	// counter to 2^n - x + 1".
	r := newRig(t, 26, 0)
	victimCore := 1
	vp := r.sys.AllocPage(victimCore)
	a := NewAttacker(r.sys, r.mc, 0, false)
	cm, err := a.NewCounterMonitor(vp, 1, vp.Block(0), vp.Block(1), vp.Block(2))
	if err != nil {
		t.Fatal(err)
	}
	cm.Calibrate()
	const budget = 5
	for _, writes := range []uint64{0, 1, 3, 5} {
		cm.PresetFor(budget)
		// The victim writes `writes` distinct blocks; each write-back
		// propagates one increment up the shared chain.
		for w := uint64(0); w < writes; w++ {
			vb := vp.Block(int(w))
			r.sys.WriteThrough(victimCore, vb, [arch.BlockSize]byte{byte(w + 1)})
			cm.PropagateVictim(vb)
		}
		got, err := cm.CountVictimWrites(budget)
		if err != nil {
			t.Fatal(err)
		}
		if got != writes {
			t.Fatalf("counted %d victim writes, want %d", got, writes)
		}
	}
}

func TestPresetForBounds(t *testing.T) {
	r := newRig(t, 27, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	cm, err := a.NewCounterMonitor(arch.PageID(1000), 0)
	if err != nil {
		t.Fatal(err)
	}
	cm.Calibrate()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero budget")
		}
	}()
	cm.PresetFor(0)
}
