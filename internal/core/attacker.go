// Package core implements the MetaLeak attack framework — the paper's
// primary contribution (§VI). It provides:
//
//   - the attacker toolkit: integrity tree address arithmetic, page
//     placement under chosen tree nodes, and metadata-cache eviction set
//     construction through counter indirection;
//   - mEvict+mReload (MetaLeak-T): observing a victim's accesses through
//     the caching state of shared integrity tree node blocks;
//   - mPreset+mOverflow (MetaLeak-C): observing a victim's writes through
//     tree minor counter saturation and overflow;
//   - the two covert channels of §VI built from those primitives.
//
// Everything here plays by the threat model's rules (§III): the attacker
// owns only its own pages, never reads or writes victim memory, and senses
// the victim purely through metadata-induced timing.
package core

import (
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/itree"
	"metaleak/internal/secmem"
	"metaleak/internal/sim"
)

// Attacker is one attacking process: a core, its owned pages, and the
// address arithmetic it needs. Both side-channel attackers and covert
// channel endpoints (trojan and spy) are Attackers.
type Attacker struct {
	Sys  *sim.System
	MC   *secmem.Controller
	Core int
	// Privileged marks the SGX threat model: the attacker controls page
	// placement directly and can single-step the victim.
	Privileged bool

	rng     *arch.RNG
	scratch []arch.BlockID // own blocks for write-queue flushing
}

// NewAttacker builds an attacker bound to a core.
func NewAttacker(sys *sim.System, mc *secmem.Controller, coreID int, privileged bool) *Attacker {
	return &Attacker{
		Sys:        sys,
		MC:         mc,
		Core:       coreID,
		Privileged: privileged,
		rng:        arch.NewRNG(uint64(coreID)*977 + 13),
	}
}

func (a *Attacker) tree() itree.Tree { return a.MC.Tree() }

// NodeOfBlock returns the tree node at the given level on the
// verification path of a data block's counter.
func (a *Attacker) NodeOfBlock(b arch.BlockID, level int) itree.NodeRef {
	path := a.tree().Path(a.MC.Counters().CounterBlock(b))
	if level < 0 || level >= len(path) {
		panic(fmt.Sprintf("core: level %d outside tree of %d levels", level, len(path)))
	}
	return path[level]
}

// NodeOfPage is NodeOfBlock for a page's first block.
func (a *Attacker) NodeOfPage(p arch.PageID, level int) itree.NodeRef {
	return a.NodeOfBlock(p.Block(0), level)
}

// counterIndexRange returns the [lo, hi) counter-block index range a node
// covers.
func (a *Attacker) counterIndexRange(ref itree.NodeRef) (int, int) {
	cov := a.tree().CoverageCounterBlocks(ref.Level)
	lo := ref.Index * cov
	hi := lo + cov
	if n := a.tree().CounterBlockCapacity(); hi > n {
		hi = n
	}
	return lo, hi
}

// FramesUnder enumerates up to limit page frames whose counter
// verification path passes through ref, skipping frames that are already
// owned. This is the address arithmetic of §VIII-B (the A^l page-group
// formula), generalized to any counter scheme.
func (a *Attacker) FramesUnder(ref itree.NodeRef, limit int) []arch.PageID {
	out := make([]arch.PageID, 0, limit)
	a.VisitFramesUnder(ref, func(p arch.PageID) bool {
		out = append(out, p)
		return len(out) >= limit
	})
	return out
}

// VisitFramesUnder calls fn for every free frame whose verification path
// passes through ref, in address order, until fn returns true. It reports
// whether any call returned true. Unlike FramesUnder it does not
// materialize the frame list, so it scales to high tree levels whose
// coverage is the whole secure region.
func (a *Attacker) VisitFramesUnder(ref itree.NodeRef, fn func(arch.PageID) bool) bool {
	lo, hi := a.counterIndexRange(ref)
	base := arch.CounterBase.Block()
	// Counter-block indices enumerate pages in address order, so a page
	// can only repeat consecutively (several counter blocks covering one
	// page); a last-seen check replaces an unbounded dedup set.
	var last arch.PageID
	first := true
	for i := lo; i < hi; i++ {
		for _, db := range a.MC.Counters().DataBlocksOf(base + arch.BlockID(i)) {
			p := db.Page()
			if !first && p == last {
				continue
			}
			first = false
			last = p
			if a.Sys.Owner(p) == -1 && fn(p) {
				return true
			}
		}
	}
	return false
}

// ClaimFrame allocates a specific frame to this attacker. Unprivileged
// attackers achieve this through per-core free-list massaging (§VIII-A1);
// privileged (SGX) attackers simply control EPC assignment — the simulator
// models both as a targeted allocation.
func (a *Attacker) ClaimFrame(p arch.PageID) error {
	return a.Sys.AllocFrame(a.Core, p)
}

// ClaimUnder allocates n frames under ref and returns them.
func (a *Attacker) ClaimUnder(ref itree.NodeRef, n int) ([]arch.PageID, error) {
	frames := a.FramesUnder(ref, n)
	if len(frames) < n {
		return nil, fmt.Errorf("core: only %d free frames under %v, need %d", len(frames), ref, n)
	}
	for _, f := range frames {
		if err := a.ClaimFrame(f); err != nil {
			return nil, err
		}
	}
	return frames, nil
}

// Scratch returns n attacker-owned blocks in otherwise unused pages,
// allocating them on first use. They serve as write-queue flushing fodder
// and calibration probes.
func (a *Attacker) Scratch(n int) []arch.BlockID {
	for len(a.scratch) < n {
		p := a.Sys.AllocPage(a.Core)
		for i := 0; i < arch.BlocksPerPage; i++ {
			a.scratch = append(a.scratch, p.Block(i))
		}
	}
	return a.scratch[:n]
}

// FlushWriteQueue drains the memory controller's write queue the way the
// paper's attacker does: by issuing redundant writes to its own blocks
// outside any subtree of interest until forced drains empty the queue
// (§VI-B). It returns the number of redundant writes issued.
func (a *Attacker) FlushWriteQueue() int {
	cfg := a.MC.DRAM().Config()
	// Distinct blocks (no merging) so every write occupies a queue slot:
	// after depth+batch of them, every previously queued write has been
	// forced out to the banks.
	total := cfg.WriteQueueDepth + cfg.DrainBatch
	blocks := a.Scratch(total)
	for i := 0; i < total; i++ {
		a.Sys.WriteThrough(a.Core, blocks[i], [arch.BlockSize]byte{byte(i)})
	}
	return total
}
