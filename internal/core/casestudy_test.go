package core

import (
	"testing"

	"metaleak/internal/jpeg"
	"metaleak/internal/mpi"
	"metaleak/internal/reconstruct"
	"metaleak/internal/victim"
)

func TestEndToEndJPEGLeakT(t *testing.T) {
	r := newRig(t, 40, 0)
	attacker := NewAttacker(r.sys, r.mc, 0, false)
	// Page massaging: the attacker places the victim's two variable pages.
	frames, err := attacker.PlaceVictimPages(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	vp := victim.NewProc(r.sys, 1)
	jv := &victim.JPEGVictim{Proc: vp, RPage: frames[0], NbitsPage: frames[1]}

	dm, err := attacker.NewDualMonitor(jv.RPage, jv.NbitsPage, 0)
	if err != nil {
		t.Fatal(err)
	}

	im, _ := jpeg.Synthetic(jpeg.PatternCircle, 32, 32)
	var recovered []bool
	iv := &victim.Interleave{
		Before: dm.Evict,
		After: func() {
			isR := dm.Classify() // MonA watches RPage (zero coefficient)
			recovered = append(recovered, !isR)
		},
	}
	_, oracle, err := jv.Encode(im, iv)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != len(oracle.NonZero) {
		t.Fatalf("trace length %d vs oracle %d", len(recovered), len(oracle.NonZero))
	}
	acc := reconstruct.TraceAccuracy(recovered, oracle.NonZero)
	if acc < 0.93 {
		t.Fatalf("stealing accuracy %.3f < 0.93", acc)
	}
	t.Logf("jpeg MetaLeak-T stealing accuracy: %.3f over %d coefficients", acc, len(oracle.NonZero))

	// The reconstruction pipeline must produce an image resembling the
	// oracle's reconstruction.
	rec := reconstruct.ImageFromTrace(recovered, oracle.W, oracle.H, oracle.Quality)
	orc := reconstruct.OracleImage(oracle)
	if sim := reconstruct.PixelSimilarity(rec, orc); sim < 0.9 {
		t.Fatalf("reconstruction similarity to oracle %.3f < 0.9", sim)
	}
}

func TestEndToEndRSALeakT(t *testing.T) {
	r := newRig(t, 41, 0)
	attacker := NewAttacker(r.sys, r.mc, 0, false)
	frames, err := attacker.PlaceVictimPages(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	vp := victim.NewProc(r.sys, 1)
	rv := &victim.RSAVictim{Proc: vp, SqrPage: frames[0], MulPage: frames[1]}

	dm, err := attacker.NewDualMonitor(rv.SqrPage, rv.MulPage, 0)
	if err != nil {
		t.Fatal(err)
	}

	exp := mpi.FromHex("d3b2a9c1e4f5")
	var ops []victim.Op
	iv := &victim.Interleave{
		Before: dm.Evict,
		After: func() {
			if dm.Classify() {
				ops = append(ops, victim.OpSquare)
			} else {
				ops = append(ops, victim.OpMultiply)
			}
		},
	}
	_, oracleOps := rv.ModExp(mpi.New(3), exp, mpi.FromHex("f123456789abcdef0123456789abcdef"), iv)
	if acc := reconstruct.OpAccuracy(ops, oracleOps); acc < 0.95 {
		t.Fatalf("op trace accuracy %.3f < 0.95", acc)
	}
	bits := reconstruct.ExponentFromOps(ops)
	want := reconstruct.BitsOfExponent(exp)
	if acc := reconstruct.BitAccuracy(bits, want); acc < 0.95 {
		t.Fatalf("exponent recovery %.3f < 0.95", acc)
	}
}

func TestEndToEndKeyLoadLeakT(t *testing.T) {
	r := newRig(t, 42, 0)
	attacker := NewAttacker(r.sys, r.mc, 0, true)
	frames, err := attacker.PlaceVictimPages(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	vp := victim.NewProc(r.sys, 1)
	kv := &victim.KeyLoadVictim{Proc: vp, ShiftPage: frames[0], SubPage: frames[1]}

	dm, err := attacker.NewDualMonitor(kv.ShiftPage, kv.SubPage, 0)
	if err != nil {
		t.Fatal(err)
	}

	p := mpi.FromHex("e35c3f1f7bd5a5cd")
	q := mpi.FromHex("c5a1b2fcc9b5c6e5")
	var ops []victim.Op
	iv := &victim.Interleave{
		Before: dm.Evict,
		After: func() {
			if dm.Classify() {
				ops = append(ops, victim.OpShift)
			} else {
				ops = append(ops, victim.OpSub)
			}
		},
	}
	_, oracleOps, err := kv.LoadKey(p, q, mpi.New(65537), iv)
	if err != nil {
		t.Fatal(err)
	}
	if acc := reconstruct.OpAccuracy(ops, oracleOps); acc < 0.95 {
		t.Fatalf("shift/sub trace accuracy %.3f < 0.95", acc)
	}
}
