package core

import (
	"fmt"

	"metaleak/internal/arch"
	"metaleak/internal/itree"
)

// Monitor implements mEvict+mReload (§VI-A): it watches one shared
// integrity tree node block Ns for evidence of victim accesses.
//
// Setup allocates a probe page whose counter verification path passes
// through Ns (but through none of the victim's lower nodes), plus eviction
// sets for every metadata block that must be out of the cache before a
// measurement:
//
//   - the probe's counter block and its tree nodes strictly below Ns
//     (otherwise the reload walk would stop before reaching Ns),
//   - the victim's counter block and its nodes strictly below Ns
//     (otherwise a repeated victim access would stop at its own cached
//     leaf and never re-touch Ns),
//   - and Ns itself.
//
// One round is: Evict, let the victim run, then Reload (a timed read of
// the probe block). A fast reload means the walk stopped at a cached Ns —
// the victim loaded it; a slow reload means Ns was still absent.
type Monitor struct {
	A  *Attacker
	Ns itree.NodeRef
	// Probe is D_A: the attacker block whose verification path crosses Ns.
	Probe arch.BlockID
	// Primer is another attacker block under Ns (in a third child subtree)
	// used to emulate a victim access during threshold calibration.
	Primer arch.BlockID

	plan      *evictionPlan
	Threshold arch.Cycles

	// Stats.
	Rounds uint64
	Hits   uint64
}

// MonitorSpec parameterizes monitor construction beyond the basic
// (victim page, level) pair. Zero values are valid.
type MonitorSpec struct {
	// VictimPage is the page whose level-Level tree node is watched.
	VictimPage arch.PageID
	// Level is the tree level of the shared node.
	Level int
	// AvoidNodes are additional tree nodes the monitor's eviction traffic
	// must stay clear of (e.g. nodes watched by a concurrent monitor).
	AvoidNodes []itree.NodeRef
	// AvoidSets are metadata-cache set indices the monitor's own reload
	// footprint (probe counter block and below-Ns nodes) must not map to —
	// so reloading this monitor cannot displace another monitor's node.
	AvoidSets []int
}

// pathBelow returns the tree nodes on a block's verification path at
// levels strictly below the given level.
func (a *Attacker) pathBelow(b arch.BlockID, level int) []itree.NodeRef {
	refs := make([]itree.NodeRef, 0, level)
	for l := 0; l < level; l++ {
		refs = append(refs, a.NodeOfBlock(b, l))
	}
	return refs
}

// disjointBelow reports whether a frame's path below the level avoids all
// the given nodes.
func (a *Attacker) disjointBelow(f arch.PageID, level int, taken map[itree.NodeRef]bool) bool {
	for l := 0; l < level; l++ {
		if taken[a.NodeOfPage(f, l)] {
			return false
		}
	}
	return true
}

// chainSets returns the metadata-cache sets that a touch of block b can
// insert into on its way to (but excluding) the level-l node: its counter
// block's set and the sets of its tree nodes below l.
func (a *Attacker) chainSets(b arch.BlockID, level int) []int {
	meta := a.MC.Meta()
	if meta == nil {
		return nil // randomized metadata cache: no set geometry exists
	}
	sets := []int{meta.SetIndex(a.MC.Counters().CounterBlock(b))}
	for l := 0; l < level; l++ {
		sets = append(sets, meta.SetIndex(a.tree().NodeBlockID(a.NodeOfBlock(b, l))))
	}
	return sets
}

func intersects(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// NewMonitor builds a monitor for the tree node shared with victimPage at
// the given level (see NewMonitorSpec for the full-control variant).
func (a *Attacker) NewMonitor(victimPage arch.PageID, level int, extraAvoid ...itree.NodeRef) (*Monitor, error) {
	return a.NewMonitorSpec(MonitorSpec{
		VictimPage: victimPage,
		Level:      level,
		AvoidNodes: extraAvoid,
	})
}

// NewMonitorSpec builds a monitor per the spec. The victim's page must
// already be allocated (the attacker positions its own pages around it,
// per §VIII-A1).
func (a *Attacker) NewMonitorSpec(spec MonitorSpec) (*Monitor, error) {
	victimBlock := spec.VictimPage.Block(0)
	level := spec.Level
	ns := a.NodeOfBlock(victimBlock, level)
	taken := make(map[itree.NodeRef]bool)
	for _, ref := range a.pathBelow(victimBlock, level) {
		taken[ref] = true
	}

	frameOK := func(f arch.PageID) bool {
		return a.disjointBelow(f, level, taken) &&
			!intersects(a.chainSets(f.Block(0), level), spec.AvoidSets)
	}

	// Probe frame: under Ns, lower path disjoint from the victim's, chain
	// sets clear of the forbidden sets.
	m := &Monitor{A: a, Ns: ns}
	claim := func(out *arch.BlockID) func(arch.PageID) bool {
		return func(f arch.PageID) bool {
			if !frameOK(f) {
				return false
			}
			if err := a.ClaimFrame(f); err != nil {
				// Unclaimable (e.g. outside the attacker's domain under the
				// §IX-C isolation defence): keep searching.
				return false
			}
			*out = f.Block(0)
			return true
		}
	}
	if !a.VisitFramesUnder(ns, claim(&m.Probe)) {
		return nil, fmt.Errorf("core: no probe frame under %v satisfying constraints", ns)
	}
	for _, ref := range a.pathBelow(m.Probe, level) {
		taken[ref] = true
	}

	// Primer frame: under Ns, disjoint from both victim and probe below Ns.
	if !a.VisitFramesUnder(ns, claim(&m.Primer)) {
		return nil, fmt.Errorf("core: no primer frame under %v", ns)
	}

	// Eviction plan: counter blocks and below-Ns nodes of probe, primer and
	// victim, plus Ns itself. Eviction traffic must stay outside all those
	// subtrees (and, while cheap, outside Ns entirely).
	ctrs := a.MC.Counters()
	targets := []arch.BlockID{
		ctrs.CounterBlock(m.Probe),
		ctrs.CounterBlock(m.Primer),
		ctrs.CounterBlock(victimBlock),
	}
	var avoid []itree.NodeRef
	for _, b := range []arch.BlockID{m.Probe, m.Primer, victimBlock} {
		for _, ref := range a.pathBelow(b, level) {
			targets = append(targets, a.tree().NodeBlockID(ref))
			avoid = append(avoid, ref)
		}
	}
	targets = append(targets, a.tree().NodeBlockID(ns))
	if level <= 2 {
		avoid = append(avoid, ns)
	}
	avoid = append(avoid, spec.AvoidNodes...)
	plan, err := a.buildPlan(make(setCache), targets, avoid)
	if err != nil {
		return nil, err
	}
	m.plan = plan
	plan.warm(a)
	return m, nil
}

// Evict performs the mEvict step.
func (m *Monitor) Evict() { m.plan.run(m.A) }

// ReloadLatency performs the timed mReload access and returns the raw
// latency.
func (m *Monitor) ReloadLatency() arch.Cycles {
	m.A.Sys.Flush(m.A.Core, m.Probe)
	return m.A.Sys.TimedRead(m.A.Core, m.Probe)
}

// Reload performs mReload and classifies the result: true means Ns was
// cached (the victim accessed a block under it).
func (m *Monitor) Reload() (bool, arch.Cycles) {
	lat := m.ReloadLatency()
	m.Rounds++
	hit := lat < m.Threshold
	if hit {
		m.Hits++
	}
	return hit, lat
}

// PrimeNs emulates a victim access to a block under Ns using the primer
// page (calibration only — a real victim does this step itself). It works
// after an Evict because the primer's own metadata is part of the
// eviction plan.
func (m *Monitor) PrimeNs() {
	m.A.Sys.Flush(m.A.Core, m.Primer)
	m.A.Sys.Touch(m.A.Core, m.Primer)
}

// Calibrate measures the two reload distributions (Ns cached vs. absent)
// and sets the classification threshold between them (quartile-based, see
// midpoint). It returns the two means for inspection.
func (m *Monitor) Calibrate(rounds int) (hitMean, missMean arch.Cycles) {
	var hits, misses []arch.Cycles
	var hitSum, missSum uint64
	for i := 0; i < rounds; i++ {
		m.Evict()
		m.PrimeNs()
		h := m.ReloadLatency()
		hits = append(hits, h)
		hitSum += uint64(h)

		m.Evict()
		ms := m.ReloadLatency()
		misses = append(misses, ms)
		missSum += uint64(ms)
	}
	hitMean = arch.Cycles(hitSum / uint64(rounds))
	missMean = arch.Cycles(missSum / uint64(rounds))
	m.Threshold = midpoint(hits, misses)
	return hitMean, missMean
}

// LevelReport summarizes the signal available at one tree level for a
// victim page (produced by ProbeLevels).
type LevelReport struct {
	Level    int
	HitMean  arch.Cycles
	MissMean arch.Cycles
	// Gap is MissMean - HitMean: the usable signal.
	Gap int64
	// Err is non-nil when no monitor could be built at this level (e.g.
	// under the isolation defence).
	Err error
}

// ProbeLevels surveys every stored tree level of the victim page and
// reports the hit/miss latency gap a monitor would see — the attacker's
// reconnaissance step for choosing the exploitation level (the Fig. 12
// resolution/coverage trade-off made empirical).
func (a *Attacker) ProbeLevels(victimPage arch.PageID, calibrationRounds int) []LevelReport {
	levels := a.tree().StoredLevels()
	out := make([]LevelReport, 0, levels)
	for l := 0; l < levels; l++ {
		rep := LevelReport{Level: l}
		m, err := a.NewMonitor(victimPage, l)
		if err != nil {
			rep.Err = err
			out = append(out, rep)
			continue
		}
		rep.HitMean, rep.MissMean = m.Calibrate(calibrationRounds)
		rep.Gap = int64(rep.MissMean) - int64(rep.HitMean)
		out = append(out, rep)
	}
	return out
}
