package core

import (
	"fmt"
	"sort"

	"metaleak/internal/arch"
	"metaleak/internal/itree"
)

// CounterMonitor implements mPreset+mOverflow (§VI-B): it modulates and
// probes one integrity tree minor counter — the version counter that a
// parent node holds for a shared child node.
//
// The child node (at level >= 1 of a split-counter tree) covers pages from
// several security domains, so both the attacker and the victim can
// advance its version counter without sharing any data: every write-back
// of the child node block, from either domain, increments the parent's
// minor for it.
//
// A "bump" is the attacker's unit operation: one write to an attacker
// block under the child, followed by forced write-backs up the chain
// (counter block -> intermediate nodes -> child node), netting exactly one
// increment of the monitored minor. When the minor is saturated, the bump
// triggers the overflow handling — a subtree re-hash whose cost makes the
// bump dramatically slower, which is the mOverflow observable.
type CounterMonitor struct {
	A *Attacker
	// Child is the shared node whose version counter is monitored.
	Child itree.NodeRef
	// Parent holds the monitored minor; Slot is its index there.
	Parent itree.NodeRef
	Slot   int

	// write rotation state: attacker blocks under Child with write budget
	// (rotating keeps encryption minors away from their own overflow).
	slots  []writeSlot
	cursor int

	// per-page eviction plans for the chain below Child, plus the shared
	// plan for Child's own set.
	pagePlans map[arch.PageID]*evictionPlan
	childPlan *evictionPlan

	// victimPlans force propagation of victim writes up to Child, keyed by
	// the victim's counter block (any block under that counter shares the
	// chain).
	victimPlans map[arch.BlockID]*evictionPlan

	// Probe is the attacker block used for the timed mOverflow read: it
	// maps to the same DRAM bank as the subtree's counter blocks, so the
	// background re-hash burst of an overflow delays it (Fig. 8).
	Probe arch.BlockID
	// BumpThreshold classifies the probe's read latency as overflow.
	BumpThreshold arch.Cycles

	// Stats.
	Bumps     uint64
	Overflows uint64
}

type writeSlot struct {
	block  arch.BlockID
	writes int
}

// encBudget bounds writes per block so attacker traffic never overflows
// its own encryption minors (2^7 = 128 in the SCT configuration).
const encBudget = 100

// NewCounterMonitor builds a monitor for the version counter of the tree
// node at childLevel on the anchor page's verification path. A childLevel
// of -1 selects the leaf-level minor that versions the anchor page's own
// counter block (the Fig. 8 benchmark's target: single-domain, since a
// counter block covers one page); childLevel >= 0 selects the minor of a
// shared tree node (cross-domain, the attack/covert-channel target).
// victimBlocks may name victim locations whose writes the attacker wants
// propagated (their metadata chains get eviction plans too); pass none for
// a pure covert channel endpoint.
func (a *Attacker) NewCounterMonitor(anchor arch.PageID, childLevel int, victimBlocks ...arch.BlockID) (*CounterMonitor, error) {
	if childLevel < -1 {
		return nil, fmt.Errorf("core: child level must be >= -1")
	}
	if childLevel == -1 {
		return a.newLeafCounterMonitor(anchor)
	}
	child := a.NodeOfPage(anchor, childLevel)
	parent, ok := a.tree().Parent(child)
	if !ok {
		return nil, fmt.Errorf("core: node %v has no stored parent", child)
	}
	cm := &CounterMonitor{
		A:           a,
		Child:       child,
		Parent:      parent,
		Slot:        child.Index % a.tree().Arity(parent.Level),
		pagePlans:   make(map[arch.PageID]*evictionPlan),
		victimPlans: make(map[arch.BlockID]*evictionPlan),
	}

	// Claim pages under Child for write fodder, avoiding victim subtrees
	// strictly below Child.
	taken := make(map[itree.NodeRef]bool)
	for _, vb := range victimBlocks {
		for _, ref := range a.pathBelow(vb, childLevel) {
			taken[ref] = true
		}
	}
	var pages []arch.PageID
	for _, f := range a.FramesUnder(child, 4096) {
		if !a.disjointBelow(f, childLevel, taken) {
			continue
		}
		if err := a.ClaimFrame(f); err != nil {
			return nil, err
		}
		pages = append(pages, f)
		if len(pages) >= 8 {
			break
		}
	}
	if len(pages) == 0 {
		return nil, fmt.Errorf("core: no free frames under %v", child)
	}
	for _, p := range pages {
		for i := 0; i < arch.BlocksPerPage; i++ {
			cm.slots = append(cm.slots, writeSlot{block: p.Block(i)})
		}
	}

	// Eviction plans. avoid covers the chains of all participants so the
	// eviction traffic cannot re-warm them.
	var avoid []itree.NodeRef
	avoid = append(avoid, child)
	for _, p := range pages {
		avoid = append(avoid, a.pathBelow(p.Block(0), childLevel+1)...)
	}
	for _, vb := range victimBlocks {
		avoid = append(avoid, a.pathBelow(vb, childLevel+1)...)
	}

	// Plans share eviction sets through a single cache, so chains that
	// collide in the same metadata cache set reuse one set of frames.
	cache := make(setCache)
	for _, p := range pages {
		b := p.Block(0)
		targets := []arch.BlockID{a.MC.Counters().CounterBlock(b)}
		for l := 0; l <= childLevel-1; l++ {
			targets = append(targets, a.tree().NodeBlockID(a.NodeOfBlock(b, l)))
		}
		plan, err := a.buildPlan(cache, targets, avoid)
		if err != nil {
			return nil, err
		}
		cm.pagePlans[p] = plan
		plan.warm(a)
	}
	childPlan, err := a.buildPlan(cache, []arch.BlockID{a.tree().NodeBlockID(child)}, avoid)
	if err != nil {
		return nil, err
	}
	cm.childPlan = childPlan
	childPlan.warm(a)

	for _, vb := range victimBlocks {
		cb := a.MC.Counters().CounterBlock(vb)
		if _, done := cm.victimPlans[cb]; done {
			continue
		}
		targets := []arch.BlockID{cb}
		for l := 0; l <= childLevel-1; l++ {
			targets = append(targets, a.tree().NodeBlockID(a.NodeOfBlock(vb, l)))
		}
		plan, err := a.buildPlan(cache, targets, avoid)
		if err != nil {
			return nil, err
		}
		cm.victimPlans[cb] = plan
		plan.warm(a)
	}

	// The timed probe: an attacker block in the same bank as the subtree's
	// counter blocks, which the overflow re-hash burst will occupy.
	targetBank := a.MC.DRAM().BankOf(a.MC.Counters().CounterBlock(pages[0].Block(0)))
	probeOK := false
	for tries := 0; tries < 8*a.MC.DRAM().Config().Banks() && !probeOK; tries++ {
		p := a.Sys.AllocPage(a.Core)
		if a.MC.DRAM().BankOf(p.Block(0)) == targetBank {
			cm.Probe = p.Block(0)
			probeOK = true
		}
	}
	if !probeOK {
		return nil, fmt.Errorf("core: no probe frame in bank %d", targetBank)
	}
	a.Sys.Touch(a.Core, cm.Probe) // warm its metadata
	return cm, nil
}

// newLeafCounterMonitor builds the childLevel == -1 variant: the
// monitored minor is the leaf node's version counter for the attacker's
// own counter block. The bump chain is just write + counter-block
// eviction, and overflow re-hashes the leaf's 33-block subtree — the
// exact microbenchmark of Fig. 8.
func (a *Attacker) newLeafCounterMonitor(anchor arch.PageID) (*CounterMonitor, error) {
	if a.Sys.Owner(anchor) == -1 {
		if err := a.ClaimFrame(anchor); err != nil {
			return nil, err
		}
	} else if a.Sys.Owner(anchor) != a.Core {
		return nil, fmt.Errorf("core: anchor page %d not attacker-owned", anchor)
	}
	cb := a.MC.Counters().CounterBlock(anchor.Block(0))
	leaf := a.tree().LeafRef(cb)
	cm := &CounterMonitor{
		A:           a,
		Child:       itree.NodeRef{Level: -1, Index: int(cb - arch.CounterBase.Block())},
		Parent:      leaf,
		Slot:        int(cb-arch.CounterBase.Block()) % a.tree().Arity(0),
		pagePlans:   make(map[arch.PageID]*evictionPlan),
		victimPlans: make(map[arch.BlockID]*evictionPlan),
	}
	for i := 0; i < arch.BlocksPerPage; i++ {
		cm.slots = append(cm.slots, writeSlot{block: anchor.Block(i)})
	}
	avoid := []itree.NodeRef{leaf}
	cache := make(setCache)
	plan, err := a.buildPlan(cache, []arch.BlockID{cb}, avoid)
	if err != nil {
		return nil, err
	}
	cm.pagePlans[anchor] = plan
	plan.warm(a)
	// No child node block to evict: the counter-block write-back itself
	// updates the monitored minor, so the probed phase is the page plan.
	cm.childPlan = &evictionPlan{}

	targetBank := a.MC.DRAM().BankOf(cb)
	probeOK := false
	for tries := 0; tries < 8*a.MC.DRAM().Config().Banks() && !probeOK; tries++ {
		p := a.Sys.AllocPage(a.Core)
		if a.MC.DRAM().BankOf(p.Block(0)) == targetBank {
			cm.Probe = p.Block(0)
			probeOK = true
		}
	}
	if !probeOK {
		return nil, fmt.Errorf("core: no probe frame in bank %d", targetBank)
	}
	a.Sys.Touch(a.Core, cm.Probe)
	return cm, nil
}

// nextSlot rotates to an attacker block with remaining write budget.
func (cm *CounterMonitor) nextSlot() *writeSlot {
	for i := 0; i < len(cm.slots); i++ {
		s := &cm.slots[(cm.cursor+i)%len(cm.slots)]
		if s.writes < encBudget {
			cm.cursor = (cm.cursor + i + 1) % len(cm.slots)
			return s
		}
	}
	// All budgets exhausted: reset (encryption overflows become noise, as
	// they would for a real attacker running very long).
	for i := range cm.slots {
		cm.slots[i].writes = 0
	}
	return &cm.slots[cm.cursor]
}

// Bump advances the monitored minor by one and returns whether the bump
// triggered an overflow of that minor, along with the probe read latency
// that decided it. The mOverflow observable is the paper's: after the
// child write-back phase, a timed read to a block in the same bank as the
// subtree's counter blocks contends with the background re-hash burst of
// an overflow and lands in a far slower band (Fig. 8).
func (cm *CounterMonitor) Bump() (overflow bool, probeLat arch.Cycles) {
	s := cm.nextSlot()
	s.writes++
	cm.A.Sys.WriteThrough(cm.A.Core, s.block, [arch.BlockSize]byte{byte(s.writes)})
	// Force the chain below Child: counter block and intermediate nodes —
	// and for the leaf-level monitor this phase IS where the minor
	// increments, so it carries the probes then.
	if len(cm.childPlan.sets) == 0 {
		probeLat = cm.runProbed(cm.pagePlans[s.block.Page()])
	} else {
		cm.pagePlans[s.block.Page()].run(cm.A)
		// Evicting Child performs its write-back, where the monitored minor
		// increments (and may overflow, posting the re-hash burst). The
		// timed probe interleaves with the eviction accesses so that one
		// probe read lands inside the burst window (the paper's
		// concurrent-thread timed read); the slowest probe is the
		// observable.
		probeLat = cm.runProbed(cm.childPlan)
	}
	cm.Bumps++
	overflow = cm.BumpThreshold > 0 && probeLat > cm.BumpThreshold
	if overflow {
		cm.Overflows++
	}
	return overflow, probeLat
}

// runProbed runs an eviction plan one access at a time, issuing a timed
// probe read after each, and returns the slowest probe.
func (cm *CounterMonitor) runProbed(plan *evictionPlan) arch.Cycles {
	a := cm.A
	var max arch.Cycles
	for _, es := range plan.sets {
		for _, b := range es.Blocks {
			a.Sys.Flush(a.Core, b)
			a.Sys.Touch(a.Core, b)
			a.Sys.Flush(a.Core, cm.Probe)
			if lat := a.Sys.TimedRead(a.Core, cm.Probe); lat > max {
				max = lat
			}
		}
	}
	return max
}

// PropagateVictim forces a victim write (if one happened) to propagate up
// to Child by evicting the victim's metadata chain. The victim block must
// have been registered at construction.
func (cm *CounterMonitor) PropagateVictim(vb arch.BlockID) {
	plan, ok := cm.victimPlans[cm.A.MC.Counters().CounterBlock(vb)]
	if !ok {
		panic("core: victim block's counter not registered with monitor")
	}
	plan.run(cm.A)
	cm.childPlan.run(cm.A)
}

// MinorValue returns the monitored minor's ground-truth value. Tests and
// oracle comparisons only — the attack itself never reads it.
func (cm *CounterMonitor) MinorValue() uint64 {
	vt, ok := cm.A.tree().(*itree.VTree)
	if !ok {
		panic("core: counter monitor requires a version tree")
	}
	return vt.MinorValue(cm.Parent, cm.Slot)
}

// IsLeafLevel reports whether this monitor targets the leaf minor of its
// own counter block (the childLevel == -1 variant).
func (cm *CounterMonitor) IsLeafLevel() bool { return cm.Child.Level == -1 }

// MinorMax returns the saturation value of the monitored minor.
func (cm *CounterMonitor) MinorMax() uint64 {
	vt, ok := cm.A.tree().(*itree.VTree)
	if !ok {
		panic("core: counter monitor requires a version tree")
	}
	return vt.MinorMax()
}

// Calibrate measures bump times across at least one overflow period and
// places the threshold between the two clusters. It leaves the counter in
// the just-overflowed state (value 1) and returns the cluster means.
func (cm *CounterMonitor) Calibrate() (normal, overflow arch.Cycles) {
	n := int(cm.MinorMax()) + 2
	times := make([]arch.Cycles, 0, n)
	for i := 0; i < n; i++ {
		_, e := cm.Bump()
		times = append(times, e)
	}
	sorted := append([]arch.Cycles(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// The slowest sample is the overflow; normal is the median.
	overflow = sorted[len(sorted)-1]
	normal = sorted[len(sorted)/2]
	cm.BumpThreshold = normal + (overflow-normal)/2
	// Drive to a fresh overflow so the state is known (slot == 1).
	for i := 0; i < 2*n; i++ {
		if ov, _ := cm.Bump(); ov {
			return normal, overflow
		}
	}
	panic("core: calibration never re-triggered overflow")
}

// Preset performs the mPreset step: from the known post-overflow state it
// advances the minor to the target value (§VI-B step 1). Calibrate must
// have run first.
func (cm *CounterMonitor) Preset(target uint64) {
	if cm.BumpThreshold == 0 {
		panic("core: Preset before Calibrate")
	}
	// Post-overflow (or post-probe) state is 1.
	for v := uint64(1); v < target; v++ {
		cm.Bump()
	}
}

// ProbeOverflow performs the mOverflow step: bump until the overflow is
// observed and return how many bumps m it took. The counter is left in
// the post-overflow state (value 1).
func (cm *CounterMonitor) ProbeOverflow(maxBumps int) (int, error) {
	for m := 1; m <= maxBumps; m++ {
		if ov, _ := cm.Bump(); ov {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: no overflow within %d bumps", maxBumps)
}

// PresetFor prepares the monitored minor to detect up to x victim writes:
// state = max - x (the §VI-B generalization "preset the counter to
// 2^n - x + 1"). Calibrate must have run (state is 1 afterwards).
func (cm *CounterMonitor) PresetFor(x uint64) {
	if x < 1 || x > cm.MinorMax()-1 {
		panic("core: write budget out of range")
	}
	cm.Preset(cm.MinorMax() - x)
}

// CountVictimWrites runs mOverflow and returns how many victim write-backs
// reached the shared counter since PresetFor(x): the probe needs m extra
// bumps, so writes = x + 1 - m. The counter is left post-overflow
// (value 1), ready for the next PresetFor.
func (cm *CounterMonitor) CountVictimWrites(x uint64) (uint64, error) {
	m, err := cm.ProbeOverflow(int(x) + 2)
	if err != nil {
		return 0, err
	}
	if uint64(m) > x+1 {
		return 0, fmt.Errorf("core: probe exceeded budget: m=%d x=%d", m, x)
	}
	return x + 1 - uint64(m), nil
}
