package core

import (
	"fmt"
	"sort"

	"metaleak/internal/arch"
	"metaleak/internal/itree"
)

// CovertT is the MetaLeak-T covert channel of §VI-A: a trojan and a spy on
// different cores, sharing no data, communicate through the caching state
// of two integrity tree node blocks — one carrying the bit ("transmission"
// set), one delimiting bit windows ("boundary" set).
type CovertT struct {
	Trojan *Attacker
	Spy    *Attacker

	// trojan-owned signalling blocks under the two shared nodes.
	txBlock, bdBlock arch.BlockID
	// trojan self-eviction plans: a touch only reaches the shared node if
	// the trojan's own counter (and intermediate nodes) miss on-chip.
	txPlan, bdPlan *evictionPlan

	// spy-side monitors of the two shared nodes.
	txMon, bdMon *Monitor

	// Stats.
	BitsSent     int
	BitErrors    int
	BoundaryMiss int
	// Trace records the spy's transmission-set reload latency per bit
	// (the Fig. 11 trace).
	Trace []arch.Cycles
}

// NewCovertT builds the channel at the given tree level. The two endpoint
// attackers must live on different cores of the same system.
func NewCovertT(trojan, spy *Attacker, level int) (*CovertT, error) {
	if trojan.Sys != spy.Sys {
		return nil, fmt.Errorf("core: endpoints on different systems")
	}
	c := &CovertT{Trojan: trojan, Spy: spy}

	// The trojan picks two signalling pages far enough apart that their
	// level-l nodes differ and land in different metadata cache sets, AND
	// such that neither signalling chain (counter block + below-node tree
	// blocks) conflict-maps onto the other node's cache set — otherwise one
	// signal would evict the other's mark.
	txPage := trojan.Sys.AllocPage(trojan.Core)
	meta := trojan.MC.Meta()
	nsTx := trojan.NodeOfPage(txPage, level)
	txNodeSet := meta.SetIndex(trojan.tree().NodeBlockID(nsTx))
	// One level-l node covers cov counter blocks; translate to pages via
	// the scheme's counter-block fan-out.
	cov := trojan.tree().CoverageCounterBlocks(level)
	blocksPerCB := len(trojan.MC.Counters().DataBlocksOf(arch.CounterBase.Block()))
	stridePages := cov * blocksPerCB / arch.BlocksPerPage
	if stridePages < 1 {
		stridePages = 1
	}
	var bdPage arch.PageID
	found := false
	for stride := 1; stride < 4096 && !found; stride++ {
		cand := txPage + arch.PageID(stride*stridePages)
		if int(cand) >= trojan.Sys.SecurePages() {
			break
		}
		if trojan.Sys.Owner(cand) != -1 {
			continue
		}
		bdNodeSet := meta.SetIndex(trojan.tree().NodeBlockID(trojan.NodeOfPage(cand, level)))
		if bdNodeSet == txNodeSet {
			continue
		}
		if intersects(trojan.chainSets(cand.Block(0), level), []int{txNodeSet}) {
			continue
		}
		if intersects(trojan.chainSets(txPage.Block(0), level), []int{bdNodeSet}) {
			continue
		}
		bdPage = cand
		found = true
	}
	if !found {
		return nil, fmt.Errorf("core: no conflict-free boundary page available")
	}
	if err := trojan.ClaimFrame(bdPage); err != nil {
		return nil, err
	}
	c.txBlock, c.bdBlock = txPage.Block(0), bdPage.Block(0)

	// Both endpoints' eviction traffic must stay clear of BOTH shared
	// nodes: a stray access under either node would set it spuriously.
	nsBd := trojan.NodeOfPage(bdPage, level)
	shared := []itree.NodeRef{nsTx, nsBd}
	bdNodeSet := meta.SetIndex(trojan.tree().NodeBlockID(nsBd))

	// Trojan self-eviction plans for its own chains up to (but excluding)
	// the shared node.
	var err error
	c.txPlan, err = trojan.chainPlan(c.txBlock, level, shared...)
	if err != nil {
		return nil, err
	}
	c.bdPlan, err = trojan.chainPlan(c.bdBlock, level, shared...)
	if err != nil {
		return nil, err
	}

	// Spy monitors on the shared nodes, keyed by the trojan's pages (the
	// endpoints agree on placement out of band). Each monitor's reload
	// footprint must avoid the other node's cache set.
	c.txMon, err = spy.NewMonitorSpec(MonitorSpec{
		VictimPage: txPage, Level: level, AvoidNodes: shared, AvoidSets: []int{bdNodeSet},
	})
	if err != nil {
		return nil, err
	}
	c.bdMon, err = spy.NewMonitorSpec(MonitorSpec{
		VictimPage: bdPage, Level: level, AvoidNodes: shared, AvoidSets: []int{txNodeSet},
	})
	if err != nil {
		return nil, err
	}
	c.Train(24)
	return c, nil
}

// Train runs a known preamble through the full protocol and derives the
// spy's classification thresholds from the observed latency clusters —
// calibration under exactly the operating conditions of the channel.
func (c *CovertT) Train(windows int) {
	var txHit, txMiss, bdHit, bdMiss []arch.Cycles
	for i := 0; i < windows; i++ {
		c.txMon.Evict()
		c.bdMon.Evict()
		bit := i%2 == 0
		if bit {
			c.signal(c.txPlan, c.txBlock)
		}
		sendBd := i%6 != 5 // hold back a few boundary marks for miss samples
		if sendBd {
			c.signal(c.bdPlan, c.bdBlock)
		}
		txLat := c.txMon.ReloadLatency()
		bdLat := c.bdMon.ReloadLatency()
		if bit {
			txHit = append(txHit, txLat)
		} else {
			txMiss = append(txMiss, txLat)
		}
		if sendBd {
			bdHit = append(bdHit, bdLat)
		} else {
			bdMiss = append(bdMiss, bdLat)
		}
	}
	c.txMon.Threshold = midpoint(txHit, txMiss)
	c.bdMon.Threshold = midpoint(bdHit, bdMiss)
}

// midpoint places the threshold between the upper quartile of the fast
// cluster and the lower quartile of the slow one. Quartiles rather than
// means keep the threshold tight against the clusters' near edges even
// when a cluster is bimodal (e.g. the slow class splits by whether a
// higher tree level happened to be cached).
func midpoint(fast, slow []arch.Cycles) arch.Cycles {
	q := func(xs []arch.Cycles, p float64) arch.Cycles {
		if len(xs) == 0 {
			return 0
		}
		sorted := append([]arch.Cycles(nil), xs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[int(p*float64(len(sorted)-1))]
	}
	return (q(fast, 0.75) + q(slow, 0.25)) / 2
}

// chainPlan builds eviction sets for a block's own counter block and tree
// nodes strictly below the given level, with the eviction traffic kept
// outside the block's subtree and any extra nodes.
func (a *Attacker) chainPlan(b arch.BlockID, level int, extraAvoid ...itree.NodeRef) (*evictionPlan, error) {
	targets := []arch.BlockID{a.MC.Counters().CounterBlock(b)}
	avoid := a.pathBelow(b, level+1)
	avoid = append(avoid, extraAvoid...)
	for l := 0; l < level; l++ {
		targets = append(targets, a.tree().NodeBlockID(a.NodeOfBlock(b, l)))
	}
	return a.buildPlan(make(setCache), targets, avoid)
}

// signal makes the trojan touch a shared node: self-evict the chain so the
// verification walk reaches the node, then access the block.
func (c *CovertT) signal(plan *evictionPlan, b arch.BlockID) {
	plan.run(c.Trojan)
	c.Trojan.Sys.Flush(c.Trojan.Core, b)
	c.Trojan.Sys.Touch(c.Trojan.Core, b)
}

// SendBit runs one bit window of the protocol and returns the spy's
// decoded bit.
//
//metalint:secret bit -- the covert payload: the trojan's whole purpose is to leak it
func (c *CovertT) SendBit(bit bool) bool {
	// Spy: mEvict both shared nodes.
	c.txMon.Evict()
	c.bdMon.Evict()
	// Trojan: always mark the boundary; touch the transmission node for 1.
	if bit { //metalint:leaky itree-node the channel itself: the tx node is touched only for a 1 bit
		c.signal(c.txPlan, c.txBlock)
	}
	c.signal(c.bdPlan, c.bdBlock)
	// Spy: mReload both.
	got, lat := c.txMon.Reload()
	c.Trace = append(c.Trace, lat)
	if bd, _ := c.bdMon.Reload(); !bd {
		c.BoundaryMiss++
	}
	c.BitsSent++
	if got != bit { //metalint:leaky out-of-model self-check comparing decoded bit to sent bit
		c.BitErrors++
	}
	return got
}

// Send transmits a bit string and returns the decoded bits.
func (c *CovertT) Send(bits []bool) []bool {
	out := make([]bool, len(bits))
	for i, b := range bits {
		out[i] = c.SendBit(b)
	}
	return out
}

// Accuracy returns the fraction of correctly received bits so far.
func (c *CovertT) Accuracy() float64 {
	if c.BitsSent == 0 {
		return 0
	}
	return 1 - float64(c.BitErrors)/float64(c.BitsSent)
}

// CyclesPerBit reports the average simulated cycles one bit window takes.
func (c *CovertT) CyclesPerBit(total arch.Cycles) float64 {
	if c.BitsSent == 0 {
		return 0
	}
	return float64(total) / float64(c.BitsSent)
}

// ---------------------------------------------------------------------------

// CovertC is the MetaLeak-C covert channel of §VI-B: the trojan encodes a
// 7-bit symbol as a number of version-counter increments of a shared tree
// node; the spy decodes it by counting the additional increments needed to
// overflow the minor. mOverflow resets the counter, so after the initial
// calibration no explicit mPreset is needed (§VI-B).
type CovertC struct {
	Trojan *CounterMonitor
	Spy    *CounterMonitor

	// Stats.
	SymbolsSent  int
	SymbolErrors int
	// Trace records the spy's probe counts per symbol (Fig. 14's decoded
	// write counts).
	Trace []int
}

// NewCovertC builds the channel: both endpoints create counter monitors on
// the same shared child node (anchored at an agreed frame).
func NewCovertC(trojan, spy *Attacker, anchor arch.PageID, childLevel int) (*CovertC, error) {
	tm, err := trojan.NewCounterMonitor(anchor, childLevel)
	if err != nil {
		return nil, err
	}
	sm, err := spy.NewCounterMonitor(anchor, childLevel)
	if err != nil {
		return nil, err
	}
	if tm.Parent != sm.Parent || tm.Slot != sm.Slot {
		return nil, fmt.Errorf("core: endpoints bound to different minors")
	}
	c := &CovertC{Trojan: tm, Spy: sm}
	// The spy calibrates (leaving the counter in the known post-overflow
	// state) and the trojan borrows the threshold for its own bookkeeping.
	sm.Calibrate()
	tm.BumpThreshold = sm.BumpThreshold
	return c, nil
}

// MaxSymbol returns the largest transmissible symbol value.
func (c *CovertC) MaxSymbol() int { return int(c.Spy.MinorMax()) - 1 }

// SendSymbol transmits one symbol (0 <= s <= MaxSymbol) and returns the
// spy's decoded value.
//
//metalint:secret s -- the covert payload symbol, transmitted as a counter-bump count
func (c *CovertC) SendSymbol(s int) (int, error) {
	if s < 0 || s > c.MaxSymbol() { //metalint:leaky out-of-model input validation of the symbol; rejects out-of-range values
		return 0, fmt.Errorf("core: symbol %d out of range [0,%d]", s, c.MaxSymbol())
	}
	for i := 0; i < s; i++ { //metalint:leaky ctr-bump the channel itself: s counter bumps encode the symbol
		c.Trojan.Bump()
	}
	m, err := c.Spy.ProbeOverflow(int(c.Spy.MinorMax()) + 2)
	if err != nil {
		return 0, err
	}
	got := int(c.Spy.MinorMax()) - m
	c.Trace = append(c.Trace, m)
	c.SymbolsSent++
	if got != s { //metalint:leaky out-of-model self-check comparing decoded symbol to sent symbol
		c.SymbolErrors++
	}
	return got, nil
}

// Send transmits a symbol sequence, returning the decoded symbols.
func (c *CovertC) Send(symbols []int) ([]int, error) {
	out := make([]int, len(symbols))
	for i, s := range symbols {
		got, err := c.SendSymbol(s)
		if err != nil { //metalint:leaky out-of-model error propagation embeds the rejected symbol value
			return nil, err
		}
		out[i] = got
	}
	return out, nil
}

// Accuracy returns the fraction of correctly received symbols so far.
func (c *CovertC) Accuracy() float64 {
	if c.SymbolsSent == 0 {
		return 0
	}
	return 1 - float64(c.SymbolErrors)/float64(c.SymbolsSent)
}

// TxThreshold exposes the spy's transmission-set threshold (diagnostics).
func (c *CovertT) TxThreshold() arch.Cycles { return c.txMon.Threshold }

// BdThreshold exposes the spy's boundary-set threshold (diagnostics).
func (c *CovertT) BdThreshold() arch.Cycles { return c.bdMon.Threshold }

// SendBytes transmits a byte string MSB-first and returns the decoded
// bytes (a convenience wrapper over SendBit).
func (c *CovertT) SendBytes(msg []byte) []byte {
	out := make([]byte, len(msg))
	for i, b := range msg {
		var v byte
		for j := 7; j >= 0; j-- {
			v <<= 1
			if c.SendBit(b>>j&1 == 1) {
				v |= 1
			}
		}
		out[i] = v
	}
	return out
}

// SendString is SendBytes for text.
func (c *CovertT) SendString(msg string) string { return string(c.SendBytes([]byte(msg))) }

// SendBytes transmits bytes over the symbol channel, two symbols per
// byte (high two bits, then low six), keeping every symbol inside the
// channel's [0, MaxSymbol] alphabet.
func (c *CovertC) SendBytes(msg []byte) ([]byte, error) {
	out := make([]byte, len(msg))
	for i, b := range msg {
		hi, err := c.SendSymbol(int(b >> 6))
		if err != nil { //metalint:leaky out-of-model error propagation embeds the rejected symbol value
			return nil, err
		}
		lo, err := c.SendSymbol(int(b & 63))
		if err != nil { //metalint:leaky out-of-model error propagation embeds the rejected symbol value
			return nil, err
		}
		out[i] = byte(hi<<6 | lo&63)
	}
	return out, nil
}
