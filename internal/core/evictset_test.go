package core

import (
	"testing"

	"metaleak/internal/arch"
	"metaleak/internal/itree"
)

func TestEvictionSetBlocksShareTargetSet(t *testing.T) {
	r := newRig(t, 70, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	meta := r.mc.Meta()
	// Several targets across regions: counter blocks and tree node blocks.
	targets := []arch.BlockID{
		r.mc.Counters().CounterBlock(arch.PageID(5).Block(0)),
		r.mc.Tree().NodeBlockID(a.NodeOfPage(arch.PageID(77), 0)),
		r.mc.Tree().NodeBlockID(a.NodeOfPage(arch.PageID(4000), 1)),
	}
	for _, tgt := range targets {
		es, err := a.BuildEvictionSet(tgt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(es.Blocks) != 2*meta.Config().Ways {
			t.Fatalf("set has %d blocks, want %d", len(es.Blocks), 2*meta.Config().Ways)
		}
		seen := make(map[arch.BlockID]bool)
		for _, b := range es.Blocks {
			cb := r.mc.Counters().CounterBlock(b)
			if meta.SetIndex(cb) != meta.SetIndex(tgt) {
				t.Fatalf("block %v's counter maps to set %d, want %d",
					b, meta.SetIndex(cb), meta.SetIndex(tgt))
			}
			if seen[cb] {
				t.Fatal("duplicate counter block in eviction set")
			}
			seen[cb] = true
			if r.sys.Owner(b.Page()) != a.Core {
				t.Fatal("eviction block not attacker-owned")
			}
		}
	}
}

func TestEvictionSetRespectsAvoid(t *testing.T) {
	r := newRig(t, 71, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	avoidRef := a.NodeOfPage(arch.PageID(0), 1) // L1 subtree: pages 0..511
	tgt := r.mc.Counters().CounterBlock(arch.PageID(3).Block(0))
	es, err := a.BuildEvictionSet(tgt, []itree.NodeRef{avoidRef})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := a.counterIndexRange(avoidRef)
	for _, b := range es.Blocks {
		cb := r.mc.Counters().CounterBlock(b)
		idx := int(cb - arch.CounterBase.Block())
		if idx >= lo && idx < hi {
			t.Fatalf("eviction block %v inside avoided subtree", b)
		}
	}
}

func TestMonitorStatsAccounting(t *testing.T) {
	r := newRig(t, 72, 0)
	vp, access := r.victim(1)
	a := NewAttacker(r.sys, r.mc, 0, false)
	m, err := a.NewMonitor(vp, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Calibrate(6)
	base := m.Rounds
	for i := 0; i < 10; i++ {
		m.Evict()
		if i < 5 {
			access()
		}
		m.Reload()
	}
	if m.Rounds != base+10 {
		t.Fatalf("rounds %d want %d", m.Rounds, base+10)
	}
	if m.Hits < 4 || m.Hits > base+6 {
		t.Fatalf("hit accounting off: %d", m.Hits)
	}
}

func TestScratchStableAndOwned(t *testing.T) {
	r := newRig(t, 73, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	s1 := a.Scratch(100)
	s2 := a.Scratch(50)
	for i := range s2 {
		if s1[i] != s2[i] {
			t.Fatal("scratch blocks not stable across calls")
		}
	}
	for _, b := range s1 {
		if r.sys.Owner(b.Page()) != 0 {
			t.Fatal("scratch block not owned by attacker")
		}
	}
}

func TestNodeOfBlockBounds(t *testing.T) {
	r := newRig(t, 74, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range level")
		}
	}()
	a.NodeOfBlock(arch.PageID(0).Block(0), 99)
}

func TestClaimUnderExhaustion(t *testing.T) {
	r := newRig(t, 75, 0)
	a := NewAttacker(r.sys, r.mc, 0, false)
	ns := a.NodeOfPage(arch.PageID(0), 0) // leaf: 32 frames total
	if _, err := a.ClaimUnder(ns, 33); err == nil {
		t.Fatal("claimed more frames than the node covers")
	}
	frames, err := a.ClaimUnder(a.NodeOfPage(arch.PageID(64), 0), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if a.NodeOfPage(f, 0) != a.NodeOfPage(arch.PageID(64), 0) {
			t.Fatal("claimed frame outside the node")
		}
	}
}
