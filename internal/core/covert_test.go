package core

import (
	"testing"

	"metaleak/internal/arch"
)

func bitsFromBytes(msg []byte) []bool {
	var out []bool
	for _, b := range msg {
		for i := 7; i >= 0; i-- {
			out = append(out, b>>i&1 == 1)
		}
	}
	return out
}

func TestCovertTPerfectWithoutNoise(t *testing.T) {
	r := newRig(t, 30, 0)
	trojan := NewAttacker(r.sys, r.mc, 0, false)
	spy := NewAttacker(r.sys, r.mc, 1, false)
	ch, err := NewCovertT(trojan, spy, 0)
	if err != nil {
		t.Fatal(err)
	}
	bits := bitsFromBytes([]byte{0x69, 0xa5, 0x3c}) // 01101001 10100101 00111100
	got := ch.Send(bits)
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d flipped (trace %v)", i, ch.Trace[i])
		}
	}
	if ch.Accuracy() != 1 {
		t.Fatalf("accuracy %f", ch.Accuracy())
	}
	if ch.BoundaryMiss != 0 {
		t.Fatalf("boundary missed %d times", ch.BoundaryMiss)
	}
}

func TestCovertTUnderNoiseAboveNinetyPercent(t *testing.T) {
	r := newRig(t, 31, 25000)
	trojan := NewAttacker(r.sys, r.mc, 0, false)
	spy := NewAttacker(r.sys, r.mc, 1, false)
	ch, err := NewCovertT(trojan, spy, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := arch.NewRNG(9)
	bits := make([]bool, 200)
	for i := range bits {
		bits[i] = rng.Bool(0.5)
	}
	ch.Send(bits)
	if acc := ch.Accuracy(); acc < 0.9 {
		t.Fatalf("noisy accuracy %.3f < 0.9", acc)
	}
}

func TestCovertTOnSIT(t *testing.T) {
	// SGX configuration: L1-level sharing (L0 covers one page).
	r := newRigTree(t, 32, 0, "SIT")
	trojan := NewAttacker(r.sys, r.mc, 0, true)
	spy := NewAttacker(r.sys, r.mc, 1, true)
	ch, err := NewCovertT(trojan, spy, 1)
	if err != nil {
		t.Fatal(err)
	}
	bits := bitsFromBytes([]byte{0xc3, 0x5a})
	got := ch.Send(bits)
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	if errs > 1 {
		t.Fatalf("%d/%d bit errors on SIT", errs, len(bits))
	}
}

func TestCovertCRoundTrip(t *testing.T) {
	r := newRig(t, 33, 0)
	trojan := NewAttacker(r.sys, r.mc, 0, false)
	spy := NewAttacker(r.sys, r.mc, 1, false)
	ch, err := NewCovertC(trojan, spy, arch.PageID(600), 0)
	if err != nil {
		t.Fatal(err)
	}
	symbols := []int{0, 1, 42, 100, 126, 7, 63}
	got, err := ch.Send(symbols)
	if err != nil {
		t.Fatal(err)
	}
	for i := range symbols {
		if got[i] != symbols[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], symbols[i])
		}
	}
	if ch.Accuracy() != 1 {
		t.Fatalf("accuracy %f", ch.Accuracy())
	}
}

func TestCovertCSymbolRangeError(t *testing.T) {
	r := newRig(t, 34, 0)
	trojan := NewAttacker(r.sys, r.mc, 0, false)
	spy := NewAttacker(r.sys, r.mc, 1, false)
	ch, err := NewCovertC(trojan, spy, arch.PageID(700), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.SendSymbol(127); err == nil {
		t.Fatal("expected range error for symbol 127")
	}
}

func TestCovertTSendString(t *testing.T) {
	r := newRig(t, 35, 0)
	trojan := NewAttacker(r.sys, r.mc, 0, false)
	spy := NewAttacker(r.sys, r.mc, 1, false)
	ch, err := NewCovertT(trojan, spy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.SendString("Hi!"); got != "Hi!" {
		t.Fatalf("decoded %q", got)
	}
}

func TestCovertCSendBytes(t *testing.T) {
	r := newRig(t, 36, 0)
	trojan := NewAttacker(r.sys, r.mc, 0, false)
	spy := NewAttacker(r.sys, r.mc, 1, false)
	ch, err := NewCovertC(trojan, spy, arch.PageID(900), 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte{0x00, 0x42, 0x7e, 0x7f, 0xff} // spans the escape boundary
	got, err := ch.SendBytes(msg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], msg[i])
		}
	}
}
