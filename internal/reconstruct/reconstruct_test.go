package reconstruct

import (
	"testing"
	"testing/quick"

	"metaleak/internal/jpeg"
	"metaleak/internal/mpi"
	"metaleak/internal/victim"
)

func TestTraceAccuracy(t *testing.T) {
	if TraceAccuracy([]bool{true, false}, []bool{true, false}) != 1 {
		t.Fatal("perfect trace not 1.0")
	}
	if TraceAccuracy([]bool{true, true}, []bool{true, false}) != 0.5 {
		t.Fatal("half-wrong trace not 0.5")
	}
	if TraceAccuracy(nil, nil) != 1 {
		t.Fatal("empty traces not 1.0")
	}
	// Length mismatch counts against accuracy.
	if TraceAccuracy([]bool{true}, []bool{true, true}) != 0.5 {
		t.Fatal("length mismatch not penalized")
	}
}

func TestExponentFromOpsExact(t *testing.T) {
	ops := []victim.Op{
		victim.OpSquare, victim.OpMultiply, // 1
		victim.OpSquare,                    // 0
		victim.OpSquare, victim.OpMultiply, // 1
	}
	bits := ExponentFromOps(ops)
	want := []uint{1, 0, 1}
	if len(bits) != len(want) {
		t.Fatalf("got %v", bits)
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d = %d", i, bits[i])
		}
	}
}

func TestExponentRoundTripThroughModExp(t *testing.T) {
	// Ops produced by a real ModExp decode back to the exponent exactly.
	exp := mpi.FromHex("9e3779b97f4a7c15")
	var ops []victim.Op
	mpi.ModExp(mpi.New(3), exp, mpi.FromHex("ffffffffffffffc5"), &mpi.Hooks{
		Square:   func() { ops = append(ops, victim.OpSquare) },
		Multiply: func() { ops = append(ops, victim.OpMultiply) },
	})
	bits := ExponentFromOps(ops)
	want := BitsOfExponent(exp)
	if BitAccuracy(bits, want) != 1 {
		t.Fatal("oracle ops did not decode to the exponent")
	}
}

func TestBitsOfExponent(t *testing.T) {
	bits := BitsOfExponent(mpi.FromHex("b")) // 1011
	want := []uint{1, 0, 1, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits = %v", bits)
		}
	}
}

func TestAlignedAccuracyToleratesIndels(t *testing.T) {
	want := []uint{1, 0, 1, 1, 0, 1, 0, 0, 1, 1}
	// Positional accuracy collapses after a deletion; aligned stays high.
	deleted := append([]uint{}, want[:3]...)
	deleted = append(deleted, want[4:]...)
	if pos := BitAccuracy(deleted, want); pos > 0.6 {
		t.Fatalf("positional accuracy unexpectedly high: %f", pos)
	}
	if al := AlignedAccuracy(deleted, want); al < 0.85 {
		t.Fatalf("aligned accuracy too low after single deletion: %f", al)
	}
	if AlignedAccuracy(want, want) != 1 {
		t.Fatal("identical sequences not 1.0")
	}
}

func TestQuickAlignedAccuracyBounds(t *testing.T) {
	f := func(a, b []bool) bool {
		ua := make([]uint, len(a))
		ub := make([]uint, len(b))
		for i, v := range a {
			if v {
				ua[i] = 1
			}
		}
		for i, v := range b {
			if v {
				ub[i] = 1
			}
		}
		acc := AlignedAccuracy(ua, ub)
		return acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestImageFromTraceGeometry(t *testing.T) {
	// A 16x16 image has 4 blocks = 252 coefficients.
	trace := make([]bool, 252)
	for i := range trace {
		trace[i] = i%7 == 0
	}
	im := ImageFromTrace(trace, 16, 16, 75)
	if im.W != 16 || im.H != 16 {
		t.Fatalf("image %dx%d", im.W, im.H)
	}
	// An all-zero trace renders flat; the nonzero one must not.
	flat := ImageFromTrace(make([]bool, 252), 16, 16, 75)
	if PixelSimilarity(im, flat) == 1 {
		t.Fatal("active trace rendered identically to empty trace")
	}
}

func TestOracleVsAttackerPipelineAgree(t *testing.T) {
	im, _ := jpeg.Synthetic(jpeg.PatternCircle, 24, 24)
	enc := &jpeg.Encoder{Quality: 75}
	res, err := enc.Encode(im)
	if err != nil {
		t.Fatal(err)
	}
	var trace []bool
	for _, blk := range res.Blocks {
		for k := 1; k < 64; k++ {
			trace = append(trace, blk[jpeg.NaturalOrder(k)] != 0)
		}
	}
	tr := &victim.CoefTrace{W: 24, H: 24, Quality: 75, NonZero: trace}
	a := OracleImage(tr)
	b := ImageFromTrace(trace, 24, 24, 75)
	if PixelSimilarity(a, b) != 1 {
		t.Fatal("oracle and trace pipelines diverge on identical input")
	}
}

func TestPixelSimilarity(t *testing.T) {
	a := jpeg.NewImage(8, 8)
	b := jpeg.NewImage(8, 8)
	if PixelSimilarity(a, b) != 1 {
		t.Fatal("identical images not 1.0")
	}
	for i := range b.Pix {
		b.Pix[i] = 255
	}
	if PixelSimilarity(a, b) != 0 {
		t.Fatal("opposite images not 0.0")
	}
	c := jpeg.NewImage(4, 4)
	if PixelSimilarity(a, c) != 0 {
		t.Fatal("size mismatch not 0")
	}
}

func TestOpAccuracy(t *testing.T) {
	a := []victim.Op{victim.OpSquare, victim.OpMultiply}
	if OpAccuracy(a, a) != 1 {
		t.Fatal("identical ops not 1.0")
	}
	b := []victim.Op{victim.OpSquare, victim.OpSquare}
	if OpAccuracy(a, b) != 0.5 {
		t.Fatal("half-wrong not 0.5")
	}
}
