// Package reconstruct implements the attacker's post-processing of leaked
// traces: rebuilding images from coefficient activity (§VIII-A1),
// recovering RSA exponents from square/multiply traces (§VIII-B1), and
// scoring recovered shift/sub traces (§VIII-B2). It also provides the
// accuracy metrics the paper reports ("stealing accuracy" against the
// instrumentation oracle).
package reconstruct

import (
	"metaleak/internal/jpeg"
	"metaleak/internal/mpi"
	"metaleak/internal/victim"
)

// coefficientsPerBlock is the number of AC coefficients per 8×8 block.
const coefficientsPerBlock = 63

// TraceAccuracy is the paper's stealing accuracy: the fraction of trace
// entries the attack classified like the oracle. Excess entries on either
// side count as errors.
func TraceAccuracy(got, oracle []bool) float64 {
	n := len(oracle)
	if len(got) > n {
		n = len(got)
	}
	if n == 0 {
		return 1
	}
	correct := 0
	for i := 0; i < len(got) && i < len(oracle); i++ {
		if got[i] == oracle[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// OpAccuracy scores a recovered operation trace against the oracle's.
func OpAccuracy(got, oracle []victim.Op) float64 {
	n := len(oracle)
	if len(got) > n {
		n = len(got)
	}
	if n == 0 {
		return 1
	}
	correct := 0
	for i := 0; i < len(got) && i < len(oracle); i++ {
		if got[i] == oracle[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// ImageFromTrace runs the attacker's local reconstruction pipeline
// (§VIII-A1): starting from a blank image's coefficient blocks, the leaked
// zero/non-zero pattern guides the generation of compressed coefficients —
// each coefficient observed as non-zero is given a nominal magnitude of
// one quantization step with an alternating sign, which restores the
// image's spatial-frequency structure (edges and gradients) without
// knowing the exact values. The DC coefficient is unobservable and stays
// at mid-gray.
func ImageFromTrace(nonZero []bool, w, h, quality int) *jpeg.Image {
	bw, bh := (w+7)/8, (h+7)/8
	nBlocks := bw * bh
	blocks := make([][64]int, nBlocks)
	idx := 0
	active := make([]int, nBlocks)
	for b := 0; b < nBlocks; b++ {
		sign := 1
		for k := 1; k <= coefficientsPerBlock; k++ {
			if idx >= len(nonZero) {
				break
			}
			if nonZero[idx] {
				// Nominal magnitude, stronger for low frequencies (where
				// real images concentrate energy), alternating sign.
				mag := 3
				if k > 8 {
					mag = 1
				}
				blocks[b][jpeg.NaturalOrder(k)] = sign * mag
				sign = -sign
				active[b]++
			}
			idx++
		}
	}
	// Blocks with many active coefficients sit on edges/texture; bias
	// their DC darker so uniform regions and busy regions separate — the
	// "discernible features" the paper's reconstruction surfaces.
	for b := range blocks {
		blocks[b][0] = -2 * active[b]
	}
	return jpeg.RenderBlocks(blocks, w, h, quality)
}

// OracleImage renders the oracle's reconstruction (the "Oracle" row of
// Fig. 15): the same pipeline fed with ground-truth instrumentation
// instead of the side channel.
func OracleImage(tr *victim.CoefTrace) *jpeg.Image {
	return ImageFromTrace(tr.NonZero, tr.W, tr.H, tr.Quality)
}

// ExponentFromOps decodes a square-and-multiply operation trace into
// exponent bits, MSB first: every square starts a bit; a multiply right
// after marks it 1 (Listing 2's structure).
func ExponentFromOps(ops []victim.Op) []uint {
	var bits []uint
	for i := 0; i < len(ops); i++ {
		if ops[i] != victim.OpSquare {
			continue // stray multiply: attributed to the previous bit already
		}
		bit := uint(0)
		if i+1 < len(ops) && ops[i+1] == victim.OpMultiply {
			bit = 1
		}
		bits = append(bits, bit)
	}
	return bits
}

// BitsOfExponent returns the exponent's bits MSB-first, for scoring.
func BitsOfExponent(e mpi.Int) []uint {
	n := e.BitLen()
	bits := make([]uint, n)
	for i := 0; i < n; i++ {
		bits[i] = e.Bit(n - 1 - i)
	}
	return bits
}

// BitAccuracy scores recovered bits against the true ones; length
// mismatches count as errors.
func BitAccuracy(got, want []uint) float64 {
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	if n == 0 {
		return 1
	}
	correct := 0
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i] == want[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// PixelSimilarity reports a [0,1] similarity between two images: 1 minus
// the mean absolute pixel difference over the full range. It quantifies
// how much of the original Fig. 15 images survives reconstruction.
func PixelSimilarity(a, b *jpeg.Image) float64 {
	if a.W != b.W || a.H != b.H || len(a.Pix) == 0 {
		return 0
	}
	var sum float64
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	return 1 - sum/float64(len(a.Pix))/255
}

// AlignedAccuracy scores recovered bits against the true ones using edit
// distance, tolerating the insertions/deletions that a misread
// square-and-multiply trace produces (a missed square merges two bits and
// shifts the tail, which positional comparison would count as all-wrong).
// Real attackers realign using the known RSA structure, so alignment-aware
// scoring reflects recoverable information.
func AlignedAccuracy(got, want []uint) float64 {
	n, m := len(got), len(want)
	if m == 0 && n == 0 {
		return 1
	}
	// Levenshtein distance, two-row formulation.
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if got[i-1] == want[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	d := prev[m]
	den := n
	if m > den {
		den = m
	}
	return 1 - float64(d)/float64(den)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// AlignedOpAccuracy is AlignedAccuracy over operation traces (tolerating
// the insertions/deletions synchronization slips produce).
func AlignedOpAccuracy(got, oracle []victim.Op) float64 {
	g := make([]uint, len(got))
	w := make([]uint, len(oracle))
	for i, op := range got {
		g[i] = uint(op)
	}
	for i, op := range oracle {
		w[i] = uint(op)
	}
	return AlignedAccuracy(g, w)
}
