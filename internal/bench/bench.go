// Package bench runs the repository's substrate microbenchmarks in-process
// and emits a machine-readable performance record (the committed
// BENCH_<pr>.json files). The record is what `make bench-gate` compares
// across commits: a >10% ns/op regression on any microbenchmark fails the
// gate, so hot-path performance is a tested property rather than folklore.
//
// The benchmark bodies mirror the root package's bench_test.go substrate
// benchmarks (BenchmarkSecureRead and friends) — they measure host time of
// the simulator's hot loop, not simulated cycles, so they are explicitly
// outside the determinism contract. All timing goes through
// testing.Benchmark; this package never reads the host clock itself.
package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"testing"

	"metaleak"
	"metaleak/internal/arch"
	"metaleak/internal/experiments"
)

// Schema identifies the record layout; bump on incompatible change.
const Schema = "metaleak-bench/v1"

// Measurement is one microbenchmark's result.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// SweepResult is the fixed-grid sweep throughput measurement.
type SweepResult struct {
	// Grid names the fixed sweep grid (axes and sizes) so records are
	// only comparable when the grid matches.
	Grid string `json:"grid"`
	// Cells is the number of grid cells per sweep run.
	Cells int `json:"cells"`
	// CellsPerSec is the measured end-to-end sweep throughput.
	CellsPerSec float64 `json:"cells_per_sec"`
}

// Baseline records a reference measurement set (e.g. the pre-PR numbers a
// speedup claim is made against).
type Baseline struct {
	// Ref names the commit or state the numbers were measured at.
	Ref        string                 `json:"ref"`
	Note       string                 `json:"note,omitempty"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

// Record is the full performance record serialized to BENCH_<pr>.json.
type Record struct {
	Schema     string                 `json:"schema"`
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
	Sweep      SweepResult            `json:"sweep"`
	// Baseline, when present, is the reference the record's headline
	// claim is measured against (not what the gate compares: the gate
	// compares two records' Benchmarks).
	Baseline *Baseline `json:"baseline,omitempty"`
}

// SeedBaseline returns the substrate measurements recorded at this PR's
// seed commit (pre-optimization), on the same host class the committed
// record was produced on. It is embedded in BENCH_8.json so the speedup
// claim and its reference travel together.
func SeedBaseline() *Baseline {
	return &Baseline{
		Ref:  "pre-PR-8 seed (4575fba)",
		Note: "Intel Xeon @ 2.10GHz, linux/amd64; bit-serial GHASH, per-access allocations",
		Benchmarks: map[string]Measurement{
			"SecureRead":        {NsPerOp: 2750, BytesPerOp: 80, AllocsPerOp: 2},
			"SecureWrite":       {NsPerOp: 16244, BytesPerOp: 178, AllocsPerOp: 4},
			"MEvictReloadRound": {NsPerOp: 618687, BytesPerOp: 13384, AllocsPerOp: 203},
			"CounterBump":       {NsPerOp: 48385, BytesPerOp: 10014, AllocsPerOp: 123},
		},
	}
}

// benchmarks lists the substrate microbenchmarks, mirroring the root
// package's bench_test.go bodies.
func benchmarks() []struct {
	Name string
	Body func(b *testing.B)
} {
	return []struct {
		Name string
		Body func(b *testing.B)
	}{
		{"SecureRead", func(b *testing.B) {
			sys := metaleak.NewSystem(metaleak.ConfigSCT())
			p := sys.AllocPage(0)
			blk := p.Block(0)
			sys.Read(0, blk)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Flush(0, blk)
				sys.Read(0, blk)
			}
		}},
		{"SecureWrite", func(b *testing.B) {
			sys := metaleak.NewSystem(metaleak.ConfigSCT())
			p := sys.AllocPage(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.WriteThrough(0, p.Block(i%64), [64]byte{byte(i)})
			}
		}},
		{"MEvictReloadRound", func(b *testing.B) {
			sys := metaleak.NewSystem(metaleak.ConfigSCT())
			a := metaleak.NewAttacker(sys, 0, false)
			vic := sys.AllocPage(1)
			m, err := a.NewMonitor(vic, 0)
			if err != nil {
				b.Fatal(err)
			}
			m.Calibrate(5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Evict()
				m.Reload()
			}
		}},
		{"CounterBump", func(b *testing.B) {
			dp := metaleak.ConfigSCT()
			dp.FastCrypto = true
			sys := metaleak.NewSystem(dp)
			a := metaleak.NewAttacker(sys, 0, false)
			cm, err := a.NewCounterMonitor(metaleak.PageID(1<<12), 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cm.Bump()
			}
		}},
	}
}

// sweepAxes is the fixed grid the throughput measurement runs: one design
// point family, two minor widths, two metadata sizes, one seed — small
// enough for CI, wide enough to exercise machine construction, the covert
// pipeline and result aggregation per cell.
func sweepAxes() experiments.SweepAxes {
	return experiments.SweepAxes{
		Configs:   []string{"sct"},
		MinorBits: []uint{6, 7},
		MetaKB:    []int{64, 256},
		Noise:     []arch.Cycles{0},
		Seeds:     1,
		Seed:      1,
		Bits:      40,
	}
}

// sweepGridName renders the fixed grid's identity for the record.
func sweepGridName(a experiments.SweepAxes) string {
	return fmt.Sprintf("configs=%v minor=%v metaKB=%v noise=%v seeds=%d bits=%d",
		a.Configs, a.MinorBits, a.MetaKB, a.Noise, a.Seeds, a.Bits)
}

// Run executes every microbenchmark plus the fixed-grid sweep and returns
// the assembled record (without a Baseline; callers attach one).
func Run() (Record, error) {
	rec := Record{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]Measurement{},
	}
	for _, bm := range benchmarks() {
		res := testing.Benchmark(bm.Body)
		if res.N == 0 {
			return rec, fmt.Errorf("bench: %s did not run (benchmark body failed)", bm.Name)
		}
		rec.Benchmarks[bm.Name] = Measurement{
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
	}
	axes := sweepAxes()
	cells := len(axes.Cells())
	var sweepErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Sweep(context.Background(), axes, 1); err != nil {
				sweepErr = err
				b.Fatal(err)
			}
		}
	})
	if sweepErr != nil {
		return rec, fmt.Errorf("bench: sweep: %w", sweepErr)
	}
	if res.N == 0 {
		return rec, fmt.Errorf("bench: sweep benchmark did not run")
	}
	nsPerSweep := float64(res.T.Nanoseconds()) / float64(res.N)
	rec.Sweep = SweepResult{
		Grid:        sweepGridName(axes),
		Cells:       cells,
		CellsPerSec: float64(cells) / (nsPerSweep / 1e9),
	}
	return rec, nil
}

// Regression describes one gate violation.
type Regression struct {
	Benchmark string
	PrevNs    float64
	CurrNs    float64
	Ratio     float64 // curr/prev
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%.1f%% slower)",
		r.Benchmark, r.PrevNs, r.CurrNs, (r.Ratio-1)*100)
}

// Gate compares the current record against a previously committed one and
// returns every microbenchmark whose ns/op regressed by more than tol
// (0.10 = 10%). Benchmarks present only on one side are ignored: adding a
// new benchmark must not fail the gate retroactively, and a removed one
// has nothing to compare.
func Gate(prev, curr Record, tol float64) []Regression {
	names := make([]string, 0, len(curr.Benchmarks))
	for name := range curr.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Regression
	for _, name := range names {
		p, ok := prev.Benchmarks[name]
		if !ok || p.NsPerOp <= 0 {
			continue
		}
		c := curr.Benchmarks[name]
		ratio := c.NsPerOp / p.NsPerOp
		if ratio > 1+tol {
			out = append(out, Regression{Benchmark: name, PrevNs: p.NsPerOp, CurrNs: c.NsPerOp, Ratio: ratio})
		}
	}
	return out
}
