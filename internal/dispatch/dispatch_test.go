package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"
)

// The integration tests run real coordinators and workers over loopback
// TCP. The job is trivial arithmetic — payload of cell i is i*Mult — so
// the tests exercise scheduling, revocation, and retry without the
// sweep engine's weight; the sweep-level byte-identity property lives
// in internal/experiments.

// testJob is the opaque job spec of the test workers.
type testJob struct {
	Mult    int
	SleepMs int // per-cell think time (subprocess kill test)
}

// testSession builds a Session computing cell*Mult, failing the cells
// in failCells until their per-session counters expire.
func testSession(job testJob, failCells map[int]int, drop func(int) bool) Session {
	var mu sync.Mutex
	fails := map[int]int{}
	return Session{
		Drop: drop,
		Run: func(ctx context.Context, cell int) (json.RawMessage, error) {
			if job.SleepMs > 0 {
				time.Sleep(time.Duration(job.SleepMs) * time.Millisecond)
			}
			mu.Lock()
			fails[cell]++
			n := fails[cell]
			mu.Unlock()
			if failCells != nil && n <= failCells[cell] {
				return nil, fmt.Errorf("cell %d planned failure %d", cell, n)
			}
			return json.Marshal(cell * job.Mult)
		},
	}
}

// startWorker attaches one in-process worker to addr in a goroutine.
func startWorker(t *testing.T, ctx context.Context, addr, id string, sess Session) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	w := &Worker{ID: id, Heartbeat: 20 * time.Millisecond,
		Init: func(json.RawMessage) (Session, error) { return sess, nil }}
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := Dial(addr)
		if err != nil {
			return
		}
		w.Run(ctx, conn)
	}()
	return &wg
}

func grid(n int) []int {
	cells := make([]int, n)
	for i := range cells {
		cells[i] = i
	}
	return cells
}

func mustListen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func jobSpec(t *testing.T, job testJob) json.RawMessage {
	t.Helper()
	spec, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// checkPayloads asserts every cell settled successfully with i*mult.
func checkPayloads(t *testing.T, settled map[int]Settled, n, mult int) {
	t.Helper()
	if len(settled) != n {
		t.Fatalf("settled %d cells, want %d", len(settled), n)
	}
	for i := 0; i < n; i++ {
		s, ok := settled[i]
		if !ok {
			t.Fatalf("cell %d never settled", i)
		}
		if s.Err != "" {
			t.Fatalf("cell %d failed: %s", i, s.Err)
		}
		var v int
		if err := json.Unmarshal(s.Payload, &v); err != nil || v != i*mult {
			t.Fatalf("cell %d payload = %s (err %v), want %d", i, s.Payload, err, i*mult)
		}
	}
}

// TestDispatchAllCells: every cell settles exactly once for 1 and 3
// workers, and OnSettled fires once per cell.
func TestDispatchAllCells(t *testing.T) {
	for _, workers := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		ln := mustListen(t)
		var mu sync.Mutex
		seen := map[int]int{}
		co := NewCoordinator(jobSpec(t, testJob{Mult: 3}), grid(20), Options{
			OnSettled: func(cell int, s Settled) { mu.Lock(); seen[cell]++; mu.Unlock() },
		})
		var wgs []*sync.WaitGroup
		for i := 0; i < workers; i++ {
			wgs = append(wgs, startWorker(t, ctx, ln.Addr().String(), fmt.Sprintf("w%d", i),
				testSession(testJob{Mult: 3}, nil, nil)))
		}
		settled, err := co.Run(ctx, ln)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkPayloads(t, settled, 20, 3)
		for cell, n := range seen {
			if n != 1 {
				t.Errorf("workers=%d: OnSettled fired %d times for cell %d", workers, n, cell)
			}
		}
		if len(seen) != 20 {
			t.Errorf("workers=%d: OnSettled covered %d cells, want 20", workers, len(seen))
		}
		cancel()
		for _, wg := range wgs {
			wg.Wait()
		}
	}
}

// TestDispatchDropReLease: a worker that abruptly drops while holding a
// lease loses the cell to the surviving worker; the settled cell
// records the revocation as one consumed attempt.
func TestDispatchDropReLease(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	co := NewCoordinator(jobSpec(t, testJob{Mult: 2}), grid(10), Options{MaxLeases: 2})
	dropped := false
	var mu sync.Mutex
	dropOnce := func(cell int) bool {
		mu.Lock()
		defer mu.Unlock()
		if cell == 4 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	// Both workers share the one-shot hook: the steal schedule decides
	// which of them is dealt cell 4, so pinning the hook to one worker
	// would make the test hinge on that race. Whichever worker holds
	// the lease drops; the other survives and absorbs the re-deal.
	wgA := startWorker(t, ctx, ln.Addr().String(), "dropper", testSession(testJob{Mult: 2}, nil, dropOnce))
	wgB := startWorker(t, ctx, ln.Addr().String(), "survivor", testSession(testJob{Mult: 2}, nil, dropOnce))
	settled, err := co.Run(ctx, ln)
	if err != nil {
		t.Fatal(err)
	}
	checkPayloads(t, settled, 10, 2)
	mu.Lock()
	wasDropped := dropped
	mu.Unlock()
	if !wasDropped {
		t.Fatal("drop hook never fired")
	}
	s := settled[4]
	if s.Attempts != 2 || len(s.Errs) != 1 || s.Errs[0] != DisconnectErr {
		t.Errorf("re-leased cell: attempts=%d errs=%v, want 2 attempts with [%q]", s.Attempts, s.Errs, DisconnectErr)
	}
	cancel()
	wgA.Wait()
	wgB.Wait()
}

// TestDispatchQuarantineJoinsErrors: a cell that fails every lease
// settles with all attempt errors joined in attempt order.
func TestDispatchQuarantineJoinsErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	co := NewCoordinator(jobSpec(t, testJob{Mult: 5}), grid(6), Options{MaxLeases: 3})
	// Cell 2 fails forever; cell 3 fails once then recovers.
	sess := testSession(testJob{Mult: 5}, map[int]int{2: 99, 3: 1}, nil)
	wg := startWorker(t, ctx, ln.Addr().String(), "w0", sess)
	settled, err := co.Run(ctx, ln)
	if err != nil {
		t.Fatal(err)
	}
	s := settled[2]
	want := "cell 2 planned failure 1\ncell 2 planned failure 2\ncell 2 planned failure 3"
	if s.Err != want || s.Attempts != 3 || len(s.Errs) != 3 {
		t.Errorf("quarantined cell: err=%q attempts=%d errs=%v\nwant err=%q", s.Err, s.Attempts, s.Errs, want)
	}
	if s3 := settled[3]; s3.Err != "" || s3.Attempts != 2 || len(s3.Errs) != 1 {
		t.Errorf("recovered cell: %+v, want success after 2 attempts with 1 recorded error", s3)
	}
	for _, i := range []int{0, 1, 4, 5} {
		if s := settled[i]; s.Err != "" || s.Attempts != 1 || len(s.Errs) != 0 {
			t.Errorf("clean cell %d carries retry state: %+v", i, s)
		}
	}
	cancel()
	wg.Wait()
}

// TestDispatchLeaseTimeout: a worker that leases a cell and then goes
// silent (no heartbeat, no result — but the connection stays open, so
// only the lease timeout can catch it) is reaped and its cell re-dealt.
func TestDispatchLeaseTimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	co := NewCoordinator(jobSpec(t, testJob{Mult: 7}), grid(4), Options{
		LeaseTimeout: 200 * time.Millisecond,
		MaxLeases:    2,
	})
	type runOut struct {
		settled map[int]Settled
		err     error
	}
	ran := make(chan runOut, 1)
	go func() {
		settled, err := co.Run(ctx, ln)
		ran <- runOut{settled, err}
	}()
	// Raw silent peer: handshake, lease one cell, then nothing.
	leased := make(chan int, 1)
	go func() {
		conn, err := Dial(ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		WriteFrame(conn, Frame{Type: FrameHello, Hello: &Hello{Worker: "silent", Proto: ProtoVersion}})
		if f, err := ReadFrame(br); err != nil || f.Type != FrameJob {
			return
		}
		WriteFrame(conn, Frame{Type: FrameWant})
		if f, err := ReadFrame(br); err == nil && f.Type == FrameLease {
			leased <- f.Lease.Cells[0]
		}
		<-ctx.Done() // hold the conn open, silently
	}()
	var stuck int
	select {
	case stuck = <-leased:
	case <-time.After(5 * time.Second):
		t.Fatal("silent worker never got a lease")
	}
	wg := startWorker(t, ctx, ln.Addr().String(), "healthy", testSession(testJob{Mult: 7}, nil, nil))
	out := <-ran
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkPayloads(t, out.settled, 4, 7)
	if s := out.settled[stuck]; s.Attempts != 2 || len(s.Errs) != 1 || s.Errs[0] != DisconnectErr {
		t.Errorf("timed-out cell %d: %+v, want one revocation then success", stuck, s)
	}
	cancel()
	wg.Wait()
}

// TestDispatchProtoVersionMismatch: a worker speaking the wrong
// protocol version is refused with a fail frame, and the run still
// completes through a healthy worker.
func TestDispatchProtoVersionMismatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	co := NewCoordinator(jobSpec(t, testJob{Mult: 1}), grid(2), Options{})
	refused := make(chan string, 1)
	go func() {
		conn, err := Dial(ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		WriteFrame(conn, Frame{Type: FrameHello, Hello: &Hello{Worker: "fromthefuture", Proto: ProtoVersion + 1}})
		if f, err := ReadFrame(br); err == nil && f.Type == FrameFail {
			refused <- f.Fail.Reason
		} else {
			refused <- fmt.Sprintf("unexpected: %+v, %v", f, err)
		}
	}()
	wg := startWorker(t, ctx, ln.Addr().String(), "current", testSession(testJob{Mult: 1}, nil, nil))
	settled, err := co.Run(ctx, ln)
	if err != nil {
		t.Fatal(err)
	}
	checkPayloads(t, settled, 2, 1)
	select {
	case reason := <-refused:
		if reason == "" || reason[0] == 'u' {
			t.Errorf("refusal = %q, want a version-mismatch fail frame", reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mismatched worker never refused")
	}
	cancel()
	wg.Wait()
}

// TestDispatchCancellation: cancelling the coordinator returns the
// cells settled so far alongside the context error.
func TestDispatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	co := NewCoordinator(jobSpec(t, testJob{Mult: 1}), grid(100), Options{})
	cancel()
	settled, err := co.Run(ctx, ln)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if len(settled) != 0 {
		t.Fatalf("no workers ever attached but %d cells settled", len(settled))
	}
}

// TestDispatchNoCells: an empty grid completes immediately.
func TestDispatchNoCells(t *testing.T) {
	ln := mustListen(t)
	settled, err := NewCoordinator(jobSpec(t, testJob{Mult: 1}), nil, Options{}).Run(context.Background(), ln)
	if err != nil || len(settled) != 0 {
		t.Fatalf("empty grid: %v, %v", settled, err)
	}
}

// TestDispatchSubprocessKill: two real worker processes (this test
// binary re-executed via the TestMain intercept), one SIGKILLed
// mid-run. The grid still completes, the killed worker's leased cells
// are revoked and re-dealt, and every payload is correct.
func TestDispatchSubprocessKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	const cells = 24
	co := NewCoordinator(jobSpec(t, testJob{Mult: 9, SleepMs: 30}), grid(cells), Options{
		LeaseTimeout: 2 * time.Second,
		MaxLeases:    3,
	})
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawn := func() *exec.Cmd {
		cmd := exec.CommandContext(ctx, self)
		cmd.Env = append(os.Environ(), "DISPATCH_TEST_WORKER="+ln.Addr().String())
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	victim := spawn()
	survivor := spawn()
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(200 * time.Millisecond) // let the victim lease mid-grid
		victim.Process.Kill()
		victim.Wait()
	}()
	settled, err := co.Run(ctx, ln)
	if err != nil {
		t.Fatal(err)
	}
	checkPayloads(t, settled, cells, 9)
	<-killed
	revoked := 0
	for _, s := range settled {
		for _, e := range s.Errs {
			if e == DisconnectErr {
				revoked++
			}
		}
	}
	if revoked == 0 {
		t.Error("SIGKILL mid-run revoked no leases (kill landed after the grid finished; widen the grid)")
	}
	cancel()
	survivor.Wait()
}

// TestMain intercepts the DISPATCH_TEST_WORKER re-execution of this
// test binary: instead of running the test suite, the process becomes a
// dispatch worker attached to the given coordinator — a real separate
// process the kill test can SIGKILL.
func TestMain(m *testing.M) {
	if addr := os.Getenv("DISPATCH_TEST_WORKER"); addr != "" {
		conn, err := Dial(addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dispatch test worker:", err)
			os.Exit(1)
		}
		w := &Worker{ID: fmt.Sprintf("sub%d", os.Getpid()), Heartbeat: 50 * time.Millisecond,
			Init: func(spec json.RawMessage) (Session, error) {
				var job testJob
				if err := json.Unmarshal(spec, &job); err != nil {
					return Session{}, err
				}
				return testSession(job, nil, nil), nil
			}}
		if err := w.Run(context.Background(), conn); err != nil {
			fmt.Fprintln(os.Stderr, "dispatch test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}
