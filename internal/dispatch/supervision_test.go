package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// Tests for the self-healing layer: shared-token auth, the job frame's
// advertised lease timeout, revive-budget revocations, retry-backoff
// pacing, dial retry, the fleet supervisor, and the drain-after-cancel
// regression.

// TestDispatchDrainAfterCancel is the deterministic regression test for
// the PR 8 drain-after-cancel fix: a cancellation racing the disconnect
// event of the last worker — whose handling is what quarantines the
// revoked cell and decides the grid — must drain that event and report
// the settled grid instead of "context canceled". Both interleavings
// (cancel first, disconnect first) are exercised by the same body; the
// sleep biases toward the cancel-first ordering the fix exists for.
func TestDispatchDrainAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	co := NewCoordinator(jobSpec(t, testJob{Mult: 1}), grid(1), Options{MaxLeases: 1})

	type runOut struct {
		settled map[int]Settled
		err     error
	}
	ran := make(chan runOut, 1)
	go func() {
		settled, err := co.Run(ctx, ln)
		ran <- runOut{settled, err}
	}()

	// Raw peer: handshake, lease the only cell, then die without a
	// result — after the test cancels the run.
	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	WriteFrame(conn, Frame{Type: FrameHello, Hello: &Hello{Worker: "mortal", Proto: ProtoVersion}})
	if f, err := ReadFrame(br); err != nil || f.Type != FrameJob {
		t.Fatalf("handshake: %+v, %v", f, err)
	}
	WriteFrame(conn, Frame{Type: FrameWant})
	if f, err := ReadFrame(br); err != nil || f.Type != FrameLease {
		t.Fatalf("lease: %+v, %v", f, err)
	}

	cancel()
	time.Sleep(20 * time.Millisecond) // bias: let the cancel enter the drain loop first
	conn.Close()                      // the disconnect event that decides the grid

	out := <-ran
	if out.err != nil {
		t.Fatalf("decided grid reported %v, want nil (drain-after-cancel regression)", out.err)
	}
	s, ok := out.settled[0]
	if !ok {
		t.Fatal("cell 0 never settled")
	}
	if s.Err != DisconnectErr || s.Attempts != 1 {
		t.Errorf("cell 0 = %+v, want quarantine after 1 revoked attempt", s)
	}
}

// TestDispatchAuthToken: a coordinator with a token admits a matching
// worker and refuses a mismatched one with a fail frame — before
// revealing any job details.
func TestDispatchAuthToken(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	co := NewCoordinator(jobSpec(t, testJob{Mult: 4}), grid(5), Options{Token: "s3cret"})

	refused := make(chan string, 1)
	go func() {
		conn, err := Dial(ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		WriteFrame(conn, Frame{Type: FrameHello, Hello: &Hello{Worker: "intruder", Proto: ProtoVersion, Token: "wrong"}})
		if f, err := ReadFrame(br); err == nil && f.Type == FrameFail {
			refused <- f.Fail.Reason
		} else {
			refused <- fmt.Sprintf("unexpected: %+v, %v", f, err)
		}
	}()

	var wg sync.WaitGroup
	w := &Worker{ID: "member", Heartbeat: 20 * time.Millisecond, Token: "s3cret",
		Init: func(json.RawMessage) (Session, error) { return testSession(testJob{Mult: 4}, nil, nil), nil }}
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := Dial(ln.Addr().String())
		if err != nil {
			return
		}
		w.Run(ctx, conn)
	}()

	settled, err := co.Run(ctx, ln)
	if err != nil {
		t.Fatal(err)
	}
	checkPayloads(t, settled, 5, 4)
	select {
	case reason := <-refused:
		if !strings.Contains(reason, "authentication failed") {
			t.Errorf("refusal = %q, want an authentication failure", reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mismatched worker never refused")
	}
	cancel()
	wg.Wait()
}

// TestDispatchHeartbeatVsLeaseTimeout: the job frame advertises the
// coordinator's lease timeout, and a worker whose heartbeat interval is
// not under it fails fast at handshake instead of being silently reaped
// mid-cell.
func TestDispatchHeartbeatVsLeaseTimeout(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	co := NewCoordinator(jobSpec(t, testJob{Mult: 6}), grid(3), Options{
		LeaseTimeout: 250 * time.Millisecond,
	})

	slowErr := make(chan error, 1)
	slow := &Worker{ID: "slowbeat", Heartbeat: time.Second,
		Init: func(json.RawMessage) (Session, error) { return testSession(testJob{Mult: 6}, nil, nil), nil }}
	go func() {
		conn, err := Dial(ln.Addr().String())
		if err != nil {
			slowErr <- err
			return
		}
		slowErr <- slow.Run(ctx, conn)
	}()

	wg := startWorker(t, ctx, ln.Addr().String(), "healthy", testSession(testJob{Mult: 6}, nil, nil))
	settled, err := co.Run(ctx, ln)
	if err != nil {
		t.Fatal(err)
	}
	checkPayloads(t, settled, 3, 6)
	select {
	case err := <-slowErr:
		if err == nil || !strings.Contains(err.Error(), "lease timeout") {
			t.Errorf("slow-heartbeat worker returned %v, want a handshake lease-timeout refusal", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow-heartbeat worker never returned")
	}
	cancel()
	wg.Wait()
}

// TestDispatchReviveAbsorbsDrops: with a Revive budget, a revoked lease
// consumes no attempt and records no error — the dropped cell settles
// clean even at MaxLeases 1, where the historic accounting would have
// quarantined it.
func TestDispatchReviveAbsorbsDrops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	co := NewCoordinator(jobSpec(t, testJob{Mult: 2}), grid(8), Options{
		MaxLeases: 1,
		Revive:    3,
	})
	dropped := false
	var mu sync.Mutex
	dropOnce := func(cell int) bool {
		mu.Lock()
		defer mu.Unlock()
		if cell == 5 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	wgA := startWorker(t, ctx, ln.Addr().String(), "flapper", testSession(testJob{Mult: 2}, nil, dropOnce))
	wgB := startWorker(t, ctx, ln.Addr().String(), "survivor", testSession(testJob{Mult: 2}, nil, dropOnce))
	settled, err := co.Run(ctx, ln)
	if err != nil {
		t.Fatal(err)
	}
	checkPayloads(t, settled, 8, 2)
	mu.Lock()
	wasDropped := dropped
	mu.Unlock()
	if !wasDropped {
		t.Fatal("drop hook never fired")
	}
	if s := settled[5]; s.Attempts != 1 || len(s.Errs) != 0 {
		t.Errorf("revived cell: attempts=%d errs=%v, want a clean single attempt", s.Attempts, s.Errs)
	}
	cancel()
	wgA.Wait()
	wgB.Wait()
}

// TestDispatchRetryBackoffPaces: a configured retry backoff delays the
// re-lease of a failed cell (the cooling queue) without changing its
// outcome.
func TestDispatchRetryBackoffPaces(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	const pause = 150 * time.Millisecond
	co := NewCoordinator(jobSpec(t, testJob{Mult: 3}), grid(2), Options{
		MaxLeases:    2,
		RetryBackoff: func(int) time.Duration { return pause },
	})
	sess := testSession(testJob{Mult: 3}, map[int]int{1: 1}, nil)
	wg := startWorker(t, ctx, ln.Addr().String(), "w0", sess)
	start := time.Now()
	settled, err := co.Run(ctx, ln)
	if err != nil {
		t.Fatal(err)
	}
	checkPayloads(t, settled, 2, 3)
	if s := settled[1]; s.Attempts != 2 || len(s.Errs) != 1 {
		t.Errorf("retried cell: %+v, want success on attempt 2", s)
	}
	if elapsed := time.Since(start); elapsed < pause {
		t.Errorf("run finished in %v, but the retry backoff alone is %v", elapsed, pause)
	}
	cancel()
	wg.Wait()
}

// TestDialRetry: a worker can start before its coordinator — DialRetry
// keeps trying on a deterministic schedule and attaches once the
// listener appears; an address that never appears exhausts the budget
// with the last dial error.
func TestDialRetry(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "late.sock")
	accepted := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		ln, err := Listen(sock)
		if err != nil {
			return
		}
		defer ln.Close()
		if conn, err := ln.Accept(); err == nil {
			conn.Close()
			close(accepted)
		}
	}()
	conn, err := DialRetry(context.Background(), sock, 20, func(int) time.Duration { return 25 * time.Millisecond })
	if err != nil {
		t.Fatalf("DialRetry never attached to the late listener: %v", err)
	}
	conn.Close()
	select {
	case <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("listener never accepted")
	}

	_, err = DialRetry(context.Background(), filepath.Join(t.TempDir(), "never.sock"), 2,
		func(int) time.Duration { return time.Millisecond })
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Errorf("exhausted DialRetry = %v, want a gave-up error", err)
	}
}

// TestSupervisorRespawn: a slot whose worker keeps dying is respawned
// (with attempt numbers counting up) until it drains; a slot that can
// never start exhausts its budget and surfaces the last error.
func TestSupervisorRespawn(t *testing.T) {
	var mu sync.Mutex
	var attempts []int
	sup := &Supervisor{
		Workers: 1,
		Start: func(ctx context.Context, slot, attempt int) error {
			mu.Lock()
			attempts = append(attempts, attempt)
			mu.Unlock()
			if attempt < 3 {
				return fmt.Errorf("death %d", attempt)
			}
			return nil // drained
		},
	}
	if err := sup.Run(context.Background()); err != nil {
		t.Fatalf("supervised slot drained but Run returned %v", err)
	}
	mu.Lock()
	got := fmt.Sprint(attempts)
	mu.Unlock()
	if got != "[1 2 3]" {
		t.Errorf("attempts = %v, want [1 2 3]", got)
	}

	hopeless := &Supervisor{
		Workers:     2,
		MaxRespawns: 2,
		Start: func(ctx context.Context, slot, attempt int) error {
			return fmt.Errorf("slot %d attempt %d", slot, attempt)
		},
	}
	err := hopeless.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "exhausted its 2-respawn budget") {
		t.Errorf("hopeless fleet = %v, want a budget-exhaustion error", err)
	}
}

// TestSupervisedFlap: the full self-healing loop at the dispatch layer —
// a supervised fleet whose workers keep dropping mid-lease (respawned
// with DialRetry) completes the grid with zero quarantined cells and
// clean attempt accounting, because the coordinator's Revive budget
// absorbs every revocation.
func TestSupervisedFlap(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := mustListen(t)
	co := NewCoordinator(jobSpec(t, testJob{Mult: 11}), grid(12), Options{
		MaxLeases:    1,
		Revive:       8,
		RetryBackoff: func(int) time.Duration { return time.Millisecond },
	})

	var mu sync.Mutex
	deaths := 0
	drop := func(cell int) bool {
		mu.Lock()
		defer mu.Unlock()
		if deaths < 3 {
			deaths++
			return true
		}
		return false
	}

	fctx, fcancel := context.WithCancel(ctx)
	defer fcancel()
	supDone := make(chan error, 1)
	sup := &Supervisor{
		Workers: 2,
		Backoff: func(int) time.Duration { return time.Millisecond },
		Start: func(ctx context.Context, slot, attempt int) error {
			conn, err := DialRetry(ctx, ln.Addr().String(), 5, func(int) time.Duration { return 5 * time.Millisecond })
			if err != nil {
				return err
			}
			w := &Worker{ID: fmt.Sprintf("flap-%d-%d", slot, attempt), Heartbeat: 20 * time.Millisecond,
				Init: func(json.RawMessage) (Session, error) { return testSession(testJob{Mult: 11}, nil, drop), nil }}
			return w.Run(ctx, conn)
		},
	}
	go func() { supDone <- sup.Run(fctx) }()

	settled, err := co.Run(ctx, ln)
	fcancel()
	if err != nil {
		t.Fatal(err)
	}
	if serr := <-supDone; serr != nil {
		t.Fatalf("supervisor: %v", serr)
	}
	checkPayloads(t, settled, 12, 11)
	for i, s := range settled {
		if s.Attempts != 1 || len(s.Errs) != 0 {
			t.Errorf("cell %d: attempts=%d errs=%v, want clean single attempt", i, s.Attempts, s.Errs)
		}
	}
	mu.Lock()
	d := deaths
	mu.Unlock()
	if d != 3 {
		t.Errorf("fleet died %d times, want 3", d)
	}
}
