package dispatch

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// sampleFrames covers every frame type with representative payloads.
func sampleFrames() []Frame {
	return []Frame{
		{Type: FrameHello, Hello: &Hello{Worker: "w1", Proto: ProtoVersion}},
		{Type: FrameHello, Hello: &Hello{Worker: "w2", Proto: ProtoVersion, Token: "s3cret"}},
		{Type: FrameJob, Job: &Job{Spec: json.RawMessage(`{"Axes":{"Seeds":3},"Fingerprint":"abc"}`), Cells: 12}},
		{Type: FrameJob, Job: &Job{Spec: json.RawMessage(`{}`), Cells: 4, LeaseTimeout: 10 * time.Second}},
		{Type: FrameWant},
		{Type: FrameLease, Lease: &Lease{Cells: []int{7}}},
		{Type: FrameLease, Lease: &Lease{Cells: []int{0, 3, 11}}},
		{Type: FrameResult, Result: &Result{Cell: 7, Payload: json.RawMessage(`{"CovertAccuracy":0.97}`)}},
		{Type: FrameResult, Result: &Result{Cell: 3, Err: "panic: injected"}},
		{Type: FrameHeartbeat},
		{Type: FrameDrain},
		{Type: FrameFail, Fail: &Fail{Reason: "protocol version 2, coordinator speaks 1"}},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		data, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %q: %v", f.Type, err)
		}
		got, n, err := DecodeFrame(data)
		if err != nil {
			t.Fatalf("decode %q: %v", f.Type, err)
		}
		if n != len(data) {
			t.Errorf("%q consumed %d of %d bytes", f.Type, n, len(data))
		}
		if got.Type != f.Type {
			t.Errorf("round trip changed type: %q -> %q", f.Type, got.Type)
		}
		// Re-encoding the decode must be byte-identical (stable form).
		again, err := EncodeFrame(got)
		if err != nil {
			t.Fatalf("re-encode %q: %v", f.Type, err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%q re-encode differs:\n%q\n%q", f.Type, data, again)
		}
	}
}

func TestFrameStream(t *testing.T) {
	var buf bytes.Buffer
	frames := sampleFrames()
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, want := range frames {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type {
			t.Fatalf("frame %d: %q, want %q", i, got.Type, want.Type)
		}
	}
	if _, err := ReadFrame(br); !errors.Is(err, io.EOF) {
		t.Fatalf("after stream end: %v, want EOF", err)
	}
}

func TestFrameValidate(t *testing.T) {
	bad := []Frame{
		{Type: "gossip"},                                       // unknown type
		{Type: FrameHello},                                     // missing payload
		{Type: FrameHello, Hello: &Hello{Proto: 1}},            // unnamed worker
		{Type: FrameWant, Fail: &Fail{Reason: "x"}},            // payload on a bare frame
		{Type: FrameLease, Lease: &Lease{}},                    // empty lease
		{Type: FrameLease, Lease: &Lease{Cells: []int{-1}}},    // negative cell
		{Type: FrameResult, Result: &Result{Cell: 1}},          // neither payload nor error
		{Type: FrameResult, Result: &Result{Cell: -1, Err: "x"}}, // negative cell
		{Type: FrameResult, Result: &Result{Cell: 1, Payload: json.RawMessage(`{}`), Err: "x"}}, // both
		{Type: FrameResult, Result: &Result{Cell: 1, Payload: json.RawMessage(`{`)}},            // invalid payload JSON
		{Type: FrameJob, Job: &Job{Cells: -1}},                 // negative grid
		{Type: FrameJob, Job: &Job{Cells: 1, LeaseTimeout: -time.Second}}, // negative lease timeout
		{Type: FrameFail, Fail: &Fail{}},                       // reasonless fail
		{Type: FrameHello, Hello: &Hello{Worker: "w"}, Fail: &Fail{Reason: "x"}}, // two payloads
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", f)
		}
		if _, err := EncodeFrame(f); err == nil {
			t.Errorf("EncodeFrame(%+v) accepted", f)
		}
	}
}

// TestDecodeMalformed: every malformed input is a structured *WireError,
// never a panic, and transport-level truncation is reported with its
// offset.
func TestDecodeMalformed(t *testing.T) {
	wire := func(body string) []byte {
		out := make([]byte, 4, 4+len(body))
		binary.BigEndian.PutUint32(out, uint32(len(body)))
		return append(out, body...)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated length prefix"},
		{"short prefix", []byte{0, 0}, "truncated length prefix"},
		{"zero length", wire(""), "zero-length frame"},
		{"oversize", func() []byte {
			d := wire("x")
			binary.BigEndian.PutUint32(d, MaxFrame+1)
			return d
		}(), "exceeds"},
		{"truncated body", wire("{\"Type\":\"want\"}\n")[:10], "truncated frame body"},
		{"no newline", wire(`{"Type":"want"}`), "not newline-terminated"},
		{"embedded newline", wire("{\"Type\":\n\"want\"}\n"), "embedded newline"},
		{"not json", wire("want me\n"), "not valid JSON"},
		{"unknown type", wire("{\"Type\":\"gossip\"}\n"), "unknown frame type"},
		{"contract violation", wire("{\"Type\":\"lease\"}\n"), "must carry exactly"},
	}
	for _, tc := range cases {
		_, _, err := DecodeFrame(tc.data)
		var we *WireError
		if !errors.As(err, &we) {
			t.Errorf("%s: err = %v, want *WireError", tc.name, err)
			continue
		}
		if !strings.Contains(we.Error(), tc.want) {
			t.Errorf("%s: %q does not mention %q", tc.name, we.Error(), tc.want)
		}
	}
}

// FuzzProtocolRoundTrip mirrors FuzzTraceRoundTrip for the dispatcher
// wire codec: any input either decodes into a frame whose re-encoding
// is stable (encode∘decode is idempotent after the first pass), or
// fails with a structured *WireError — never a panic.
func FuzzProtocolRoundTrip(f *testing.F) {
	// Seed corpus: every frame type in wire form, junk, and truncation
	// cuts at the interesting boundaries (mid-prefix, mid-body, one byte
	// short) — the torn shapes the structured WireError exists to locate.
	for _, fr := range sampleFrames() {
		data, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		for _, cut := range []int{2, 4, 5, len(data) / 2, len(data) - 1} {
			if cut < len(data) {
				f.Add(append([]byte{}, data[:cut]...))
			}
		}
	}
	f.Add([]byte("not a frame at all"))
	f.Add([]byte{0, 0, 0, 1, '\n'})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			var we *WireError
			if !errors.As(err, &we) {
				t.Fatalf("malformed input returned unstructured error %T: %v", err, err)
			}
			return // malformed input is fine, panicking is not
		}
		if n <= 4 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		e1, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		d2, n2, err := DecodeFrame(e1)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if n2 != len(e1) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(e1))
		}
		e2, err := EncodeFrame(d2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("canonical form unstable:\n%q\n%q", e1, e2)
		}
		if d2.Type != fr.Type {
			t.Fatalf("round trip changed type: %q -> %q", fr.Type, d2.Type)
		}
	})
}
