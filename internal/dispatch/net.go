package dispatch

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"
)

// Network address convention: "unix:PATH" or any address starting with
// '/' selects a unix socket; everything else is "host:port" TCP. Local
// -workers runs use a unix socket in a private temp dir; -listen and
// worker -connect speak TCP across machines.

// netAddr splits an address string into a net package (network, addr)
// pair per the convention above.
func netAddr(addr string) (string, string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if strings.HasPrefix(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}

// Listen opens the coordinator's listener on addr.
func Listen(addr string) (net.Listener, error) {
	network, a := netAddr(addr)
	ln, err := net.Listen(network, a)
	if err != nil {
		return nil, fmt.Errorf("dispatch: listen %s: %w", addr, err)
	}
	return ln, nil
}

// Dial connects a worker to the coordinator at addr.
func Dial(addr string) (net.Conn, error) {
	network, a := netAddr(addr)
	conn, err := net.Dial(network, a)
	if err != nil {
		return nil, fmt.Errorf("dispatch: dial %s: %w", addr, err)
	}
	return conn, nil
}

// DialRetry is Dial with a bounded, deterministic retry schedule: up to
// 1+retries attempts, pausing backoff(n) before attempt n (n starts at
// 2 for the first retry, mirroring runner.Policy.Backoff). It lets a
// worker start before its coordinator is listening — or redial across
// the gap between a service's back-to-back sweeps — and still attach.
// Pure scheduling: when and how often we dial never reaches a result.
func DialRetry(ctx context.Context, addr string, retries int, backoff func(attempt int) time.Duration) (net.Conn, error) {
	var last error
	for attempt := 1; attempt <= 1+retries; attempt++ {
		if attempt > 1 && backoff != nil {
			if d := backoff(attempt); d > 0 {
				t := time.NewTimer(d) //metalint:allow wallclock dial-retry pacing against a host coordinator, not simulated time
				select {
				case <-ctx.Done():
					t.Stop()
					return nil, ctx.Err()
				case <-t.C:
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		conn, err := Dial(addr)
		if err == nil {
			return conn, nil
		}
		last = err
	}
	if retries > 0 {
		return nil, fmt.Errorf("dispatch: dial %s: gave up after %d attempts: %w", addr, 1+retries, last)
	}
	return nil, last
}

// SpawnLocal starts n copies of binary with args (the coordinator's
// address appended) as local worker processes. extraEnv entries are
// appended to the inherited environment; stderr, when non-nil, receives
// the workers' stderr streams. The processes are killed if ctx is
// cancelled. Callers must Wait on each returned command.
func SpawnLocal(ctx context.Context, n int, binary string, args []string, extraEnv []string, stderr io.Writer) ([]*exec.Cmd, error) {
	var cmds []*exec.Cmd
	for i := 0; i < n; i++ {
		cmd := exec.CommandContext(ctx, binary, args...)
		cmd.Env = append(os.Environ(), extraEnv...)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds {
				c.Process.Kill()
				c.Wait()
			}
			return nil, fmt.Errorf("dispatch: spawn worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}
