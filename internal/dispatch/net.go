package dispatch

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
)

// Network address convention: "unix:PATH" or any address starting with
// '/' selects a unix socket; everything else is "host:port" TCP. Local
// -workers runs use a unix socket in a private temp dir; -listen and
// worker -connect speak TCP across machines.

// netAddr splits an address string into a net package (network, addr)
// pair per the convention above.
func netAddr(addr string) (string, string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if strings.HasPrefix(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}

// Listen opens the coordinator's listener on addr.
func Listen(addr string) (net.Listener, error) {
	network, a := netAddr(addr)
	ln, err := net.Listen(network, a)
	if err != nil {
		return nil, fmt.Errorf("dispatch: listen %s: %w", addr, err)
	}
	return ln, nil
}

// Dial connects a worker to the coordinator at addr.
func Dial(addr string) (net.Conn, error) {
	network, a := netAddr(addr)
	conn, err := net.Dial(network, a)
	if err != nil {
		return nil, fmt.Errorf("dispatch: dial %s: %w", addr, err)
	}
	return conn, nil
}

// SpawnLocal starts n copies of binary with args (the coordinator's
// address appended) as local worker processes. extraEnv entries are
// appended to the inherited environment; stderr, when non-nil, receives
// the workers' stderr streams. The processes are killed if ctx is
// cancelled. Callers must Wait on each returned command.
func SpawnLocal(ctx context.Context, n int, binary string, args []string, extraEnv []string, stderr io.Writer) ([]*exec.Cmd, error) {
	var cmds []*exec.Cmd
	for i := 0; i < n; i++ {
		cmd := exec.CommandContext(ctx, binary, args...)
		cmd.Env = append(os.Environ(), extraEnv...)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds {
				c.Process.Kill()
				c.Wait()
			}
			return nil, fmt.Errorf("dispatch: spawn worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}
